// Package taskqueue implements the paper's task scheduling: one or
// more central LIFO token queues protected by spin locks, plus the
// global TaskCount that tells the control process when the match phase
// is over (§3.2). Tokens carry the address of the destination node
// and, for two-input nodes, the side — the two extra fields the
// parallel token adds over the sequential one.
//
// Layered over the central queues, Deque gives each match process a
// bounded lock-free local pool (deque.go); the central queues then
// serve only as the overflow target and the worker-to-worker transfer
// edge, which is what keeps their spin-lock contention off the match
// hot path.
package taskqueue

import (
	"runtime"
	"sync/atomic"

	"repro/internal/rete"
	"repro/internal/spinlock"
	"repro/internal/wm"
)

// Task is one schedulable unit of match work. Exactly one of Root, Join
// or Term is set: a group of constant-test node activations for a WM
// change, a two-input node activation, or a terminal activation.
type Task struct {
	Root *wm.WME
	Join *rete.JoinNode
	Term *rete.Terminal
	Side rete.Side
	Sign bool
	Wmes []*wm.WME
}

// Reset clears every field so a pooled Task carries nothing stale.
func (t *Task) Reset() { *t = Task{} }

// initialQueueCap pre-sizes each central queue's backing array so the
// steady state never grows it: append churn on the spin-locked path was
// measurable at high worker counts.
const initialQueueCap = 1024

type queue struct {
	lock spinlock.Lock
	// n mirrors len(tasks) so Pop can peek emptiness without the lock
	// (the "test" half of test-and-test-and-set, applied to the queue).
	n     atomic.Int64
	tasks []*Task
	_     [40]byte // keep queues on separate cache lines
}

// Queues is a set of task queues with the shared TaskCount.
type Queues struct {
	qs []queue
	// TaskCount is the number of tokens on the queues (central and
	// local) plus the number being processed; the match phase is
	// finished when it reaches zero.
	TaskCount atomic.Int64
	// rot rotates the fallback scan origin so workers whose preferred
	// queue is empty don't all descend on queue 0 together.
	rot atomic.Int64
}

// New returns n queues (n >= 1).
func New(n int) *Queues {
	if n < 1 {
		n = 1
	}
	q := &Queues{qs: make([]queue, n)}
	for i := range q.qs {
		q.qs[i].tasks = make([]*Task, 0, initialQueueCap)
	}
	return q
}

// Len reports the number of queues.
func (q *Queues) Len() int { return len(q.qs) }

// Push increments TaskCount and pushes t onto queue idx (mod the queue
// count), returning the spins observed on the queue lock.
func (q *Queues) Push(idx int, t *Task) (spins int64) {
	q.TaskCount.Add(1)
	qu := &q.qs[idx%len(q.qs)]
	spins = qu.lock.Acquire()
	qu.tasks = append(qu.tasks, t)
	qu.n.Store(int64(len(qu.tasks)))
	qu.lock.Release()
	return spins
}

// Spill pushes an already-counted task: a worker whose local deque is
// full incremented TaskCount when it spawned the task, so the central
// queue must not count it again.
func (q *Queues) Spill(idx int, t *Task) (spins int64) {
	qu := &q.qs[idx%len(q.qs)]
	spins = qu.lock.Acquire()
	qu.tasks = append(qu.tasks, t)
	qu.n.Store(int64(len(qu.tasks)))
	qu.lock.Release()
	return spins
}

// Requeue pushes a task back without touching TaskCount: the task was
// popped (still counted as in-process by its worker, which will
// decrement once) and must remain pending. Used by the MRSW scheme when
// the line is busy processing the opposite side.
func (q *Queues) Requeue(idx int, t *Task) (spins int64) {
	q.TaskCount.Add(1)
	qu := &q.qs[idx%len(q.qs)]
	spins = qu.lock.Acquire()
	// Requeued tokens go to the bottom of the stack so the conflicting
	// epoch has time to drain before the token is retried.
	qu.tasks = append(qu.tasks, nil)
	copy(qu.tasks[1:], qu.tasks)
	qu.tasks[0] = t
	qu.n.Store(int64(len(qu.tasks)))
	qu.lock.Release()
	return spins
}

// Pop removes a task. It tries the preferred queue first; when that is
// empty the fallback scan over the remaining queues starts at a
// rotating offset, so a burst of workers with empty preferred queues
// spreads across the set instead of all hammering the same neighbour.
// It returns nil when every queue is empty at the time of the scan.
func (q *Queues) Pop(prefer int) (t *Task, spins int64) {
	n := len(q.qs)
	if t, s := q.tryPop(prefer % n); t != nil || n == 1 {
		return t, s
	}
	start := int(q.rot.Add(1))
	for i := 0; i < n-1; i++ {
		idx := (start + i) % n
		if idx == prefer%n {
			continue // already tried
		}
		t, s := q.tryPop(idx)
		spins += s
		if t != nil {
			return t, spins
		}
	}
	return nil, spins
}

// tryPop pops from one queue, or returns nil if it looks or is empty.
func (q *Queues) tryPop(idx int) (t *Task, spins int64) {
	qu := &q.qs[idx]
	if qu.n.Load() == 0 {
		return nil, 0 // cheap emptiness test before locking
	}
	spins = qu.lock.Acquire()
	if m := len(qu.tasks); m > 0 {
		t = qu.tasks[m-1]
		qu.tasks[m-1] = nil
		qu.tasks = qu.tasks[:m-1]
		qu.n.Store(int64(len(qu.tasks)))
	}
	qu.lock.Release()
	return t, spins
}

// Done decrements TaskCount after a worker finishes a task.
func (q *Queues) Done() { q.TaskCount.Add(-1) }

// WaitIdle spins until TaskCount reaches zero (the control process's
// wait at the end of RHS evaluation).
func (q *Queues) WaitIdle() {
	for i := 0; q.TaskCount.Load() != 0; i++ {
		runtime.Gosched()
	}
}

// FreeList is a small bounded spin-locked stack of recyclable tasks.
// The parallel matcher's workers return processed root tasks here so
// the control process's Submit can reuse them instead of allocating —
// the one producer/consumer pair whose free lists cannot be worker-local.
type FreeList struct {
	lock spinlock.Lock
	free []*Task
	cap  int
}

// NewFreeList returns a free list keeping at most capacity tasks
// (capacity <= 0 selects 1024).
func NewFreeList(capacity int) *FreeList {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FreeList{free: make([]*Task, 0, capacity), cap: capacity}
}

// Get pops a recycled task, or returns nil when the list is empty or
// momentarily contended (callers allocate instead — never spin here).
func (f *FreeList) Get() *Task {
	if !f.lock.TryAcquire() {
		return nil
	}
	var t *Task
	if n := len(f.free); n > 0 {
		t = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	}
	f.lock.Release()
	return t
}

// Put recycles a task; it is dropped when the list is full or busy.
func (f *FreeList) Put(t *Task) {
	t.Reset()
	if !f.lock.TryAcquire() {
		return
	}
	if len(f.free) < f.cap {
		f.free = append(f.free, t)
	}
	f.lock.Release()
}
