// Package taskqueue implements the paper's central task scheduling: one
// or more LIFO token queues protected by spin locks, plus the global
// TaskCount that tells the control process when the match phase is over
// (§3.2). Tokens carry the address of the destination node and, for
// two-input nodes, the side — the two extra fields the parallel token
// adds over the sequential one.
package taskqueue

import (
	"runtime"
	"sync/atomic"

	"repro/internal/rete"
	"repro/internal/spinlock"
	"repro/internal/wm"
)

// Task is one schedulable unit of match work. Exactly one of Root, Join
// or Term is set: a group of constant-test node activations for a WM
// change, a two-input node activation, or a terminal activation.
type Task struct {
	Root *wm.WME
	Join *rete.JoinNode
	Term *rete.Terminal
	Side rete.Side
	Sign bool
	Wmes []*wm.WME
}

type queue struct {
	lock spinlock.Lock
	// n mirrors len(tasks) so Pop can peek emptiness without the lock
	// (the "test" half of test-and-test-and-set, applied to the queue).
	n     atomic.Int64
	tasks []*Task
	_     [40]byte // keep queues on separate cache lines
}

// Queues is a set of task queues with the shared TaskCount.
type Queues struct {
	qs []queue
	// TaskCount is the number of tokens on the queues plus the number
	// being processed; the match phase is finished when it reaches zero.
	TaskCount atomic.Int64
}

// New returns n queues (n >= 1).
func New(n int) *Queues {
	if n < 1 {
		n = 1
	}
	return &Queues{qs: make([]queue, n)}
}

// Len reports the number of queues.
func (q *Queues) Len() int { return len(q.qs) }

// Push increments TaskCount and pushes t onto queue idx (mod the queue
// count), returning the spins observed on the queue lock.
func (q *Queues) Push(idx int, t *Task) (spins int64) {
	q.TaskCount.Add(1)
	qu := &q.qs[idx%len(q.qs)]
	spins = qu.lock.Acquire()
	qu.tasks = append(qu.tasks, t)
	qu.n.Store(int64(len(qu.tasks)))
	qu.lock.Release()
	return spins
}

// Requeue pushes a task back without touching TaskCount: the task was
// popped (still counted as in-process by its worker, which will
// decrement once) and must remain pending. Used by the MRSW scheme when
// the line is busy processing the opposite side.
func (q *Queues) Requeue(idx int, t *Task) (spins int64) {
	q.TaskCount.Add(1)
	qu := &q.qs[idx%len(q.qs)]
	spins = qu.lock.Acquire()
	// Requeued tokens go to the bottom of the stack so the conflicting
	// epoch has time to drain before the token is retried.
	qu.tasks = append(qu.tasks, nil)
	copy(qu.tasks[1:], qu.tasks)
	qu.tasks[0] = t
	qu.n.Store(int64(len(qu.tasks)))
	qu.lock.Release()
	return spins
}

// Pop removes a task, preferring queue prefer and scanning the others.
// It returns nil when every queue is empty at the time of the scan.
func (q *Queues) Pop(prefer int) (t *Task, spins int64) {
	n := len(q.qs)
	for i := 0; i < n; i++ {
		qu := &q.qs[(prefer+i)%n]
		if qu.n.Load() == 0 {
			continue // cheap emptiness test before locking
		}
		spins += qu.lock.Acquire()
		if m := len(qu.tasks); m > 0 {
			t = qu.tasks[m-1]
			qu.tasks[m-1] = nil
			qu.tasks = qu.tasks[:m-1]
			qu.n.Store(int64(len(qu.tasks)))
			qu.lock.Release()
			return t, spins
		}
		qu.lock.Release()
	}
	return nil, spins
}

// Done decrements TaskCount after a worker finishes a task.
func (q *Queues) Done() { q.TaskCount.Add(-1) }

// WaitIdle spins until TaskCount reaches zero (the control process's
// wait at the end of RHS evaluation).
func (q *Queues) WaitIdle() {
	for i := 0; q.TaskCount.Load() != 0; i++ {
		runtime.Gosched()
	}
}
