package taskqueue_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/taskqueue"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := taskqueue.NewDeque(8)
	for i := 1; i <= 3; i++ {
		if !d.Push(mkTask(i)) {
			t.Fatalf("push %d failed on non-full deque", i)
		}
	}
	for want := 3; want >= 1; want-- {
		task := d.Pop()
		if task == nil || task.Root.TimeTag != want {
			t.Fatalf("popped %v, want tag %d", task, want)
		}
	}
	if task := d.Pop(); task != nil {
		t.Fatalf("pop on empty returned %v", task)
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := taskqueue.NewDeque(8)
	for i := 1; i <= 3; i++ {
		d.Push(mkTask(i))
	}
	for want := 1; want <= 3; want++ {
		task := d.Steal()
		if task == nil || task.Root.TimeTag != want {
			t.Fatalf("stole %v, want tag %d", task, want)
		}
	}
	if task := d.Steal(); task != nil {
		t.Fatalf("steal on empty returned %v", task)
	}
}

// TestDequeOverflowRefill exercises the spill path: a full deque
// rejects pushes (the matcher then spills to the central queues), and
// space freed by pops or steals becomes pushable again.
func TestDequeOverflowRefill(t *testing.T) {
	d := taskqueue.NewDeque(4)
	if d.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", d.Cap())
	}
	for i := 1; i <= 4; i++ {
		if !d.Push(mkTask(i)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.Push(mkTask(5)) {
		t.Fatal("push succeeded on full deque")
	}
	if task := d.Steal(); task == nil || task.Root.TimeTag != 1 {
		t.Fatalf("steal got %v, want tag 1", task)
	}
	if !d.Push(mkTask(5)) {
		t.Fatal("push failed after steal freed a slot")
	}
	if d.Push(mkTask(6)) {
		t.Fatal("push succeeded on re-filled deque")
	}
	// Drain interleaving owner pops and thief steals; every task must
	// come out exactly once.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		var task *taskqueue.Task
		if i%2 == 0 {
			task = d.Pop()
		} else {
			task = d.Steal()
		}
		if task == nil {
			t.Fatalf("drain step %d got nil", i)
		}
		if seen[task.Root.TimeTag] {
			t.Fatalf("task %d delivered twice", task.Root.TimeTag)
		}
		seen[task.Root.TimeTag] = true
	}
	if d.Size() != 0 {
		t.Fatalf("Size = %d after drain, want 0", d.Size())
	}
}

// TestDequeConcurrentConservation runs one owner (pushing and popping)
// against several thieves and checks that every pushed task is consumed
// exactly once — the invariant the matcher's TaskCount protocol rests
// on. Run under -race this also checks the deque's memory ordering.
func TestDequeConcurrentConservation(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := taskqueue.NewDeque(64)
	var consumed atomic.Int64
	var sum atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if task := d.Steal(); task != nil {
					consumed.Add(1)
					sum.Add(int64(task.Root.TimeTag))
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	// Owner: push every task, popping locally whenever the deque fills.
	for i := 1; i <= total; i++ {
		task := mkTask(i)
		for !d.Push(task) {
			if got := d.Pop(); got != nil {
				consumed.Add(1)
				sum.Add(int64(got.Root.TimeTag))
			}
		}
	}
	for {
		task := d.Pop()
		if task == nil {
			if d.Size() == 0 {
				break
			}
			continue
		}
		consumed.Add(1)
		sum.Add(int64(task.Root.TimeTag))
	}
	// The deque is empty from the owner's view; let the thieves finish
	// any in-flight steal, then stop them.
	for consumed.Load() < total {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d tasks, want %d", got, total)
	}
	wantSum := int64(total) * int64(total+1) / 2
	if got := sum.Load(); got != wantSum {
		t.Fatalf("tag checksum %d, want %d (task lost or duplicated)", got, wantSum)
	}
}

func TestSpillDoesNotDoubleCount(t *testing.T) {
	q := taskqueue.New(2)
	q.TaskCount.Add(1) // the spawner's count for this task
	q.Spill(0, mkTask(1))
	if got := q.TaskCount.Load(); got != 1 {
		t.Fatalf("TaskCount after Spill = %d, want 1", got)
	}
	task, _ := q.Pop(0)
	if task == nil || task.Root.TimeTag != 1 {
		t.Fatalf("pop got %v, want spilled task", task)
	}
	q.Done()
	if got := q.TaskCount.Load(); got != 0 {
		t.Fatalf("TaskCount after Done = %d, want 0", got)
	}
}

func TestFreeListRecycles(t *testing.T) {
	f := taskqueue.NewFreeList(2)
	if f.Get() != nil {
		t.Fatal("Get on empty free list returned a task")
	}
	a, b := mkTask(1), mkTask(2)
	f.Put(a)
	f.Put(b)
	f.Put(mkTask(3)) // beyond capacity: dropped
	first := f.Get()
	second := f.Get()
	if first == nil || second == nil {
		t.Fatal("free list lost a recycled task")
	}
	if first.Root != nil || second.Root != nil {
		t.Fatal("recycled task not reset")
	}
	if f.Get() != nil {
		t.Fatal("free list returned more tasks than were kept")
	}
}
