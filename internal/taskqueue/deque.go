package taskqueue

import "sync/atomic"

// Deque is a bounded lock-free work-stealing deque (the Chase-Lev
// shape, fixed-size): exactly one owner pushes and pops at the bottom
// in LIFO order without ever taking a lock, while any number of
// thieves take from the top in FIFO order with a single CAS. The
// parallel matcher gives each match process one of these as its local
// task pool, so the shared spin-locked queues are touched only when a
// deque overflows (spill) or runs dry (steal/refill) — the paper's
// central-queue contention (§4.2, Table 4-7) moves off the common path.
//
// Boundedness is what makes the fixed buffer safe: a slot is only
// rewritten by Push after top has advanced past it (the size check
// reads top), and top only ever advances through a CAS, so a thief
// that read a slot but loses the CAS never uses the stale pointer.
type Deque struct {
	top atomic.Int64
	_   [56]byte // owner and thieves hammer different words
	bot atomic.Int64
	_   [56]byte
	buf  []atomic.Pointer[Task]
	mask int64
}

// DefaultLocalCap is the per-worker deque capacity used when the
// matcher configuration doesn't choose one.
const DefaultLocalCap = 256

// NewDeque returns a deque holding at least capacity tasks, rounded up
// to a power of two (capacity <= 0 selects DefaultLocalCap).
func NewDeque(capacity int) *Deque {
	if capacity <= 0 {
		capacity = DefaultLocalCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Deque{buf: make([]atomic.Pointer[Task], n), mask: int64(n - 1)}
}

// Cap reports the fixed capacity.
func (d *Deque) Cap() int { return len(d.buf) }

// Size reports the number of queued tasks. Exact for the owner; a
// racy lower bound for anyone else.
func (d *Deque) Size() int64 {
	s := d.bot.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}

// Push appends a task at the bottom. Owner only. It reports false when
// the deque is full — the caller spills to the central queues instead.
func (d *Deque) Push(t *Task) bool {
	b := d.bot.Load()
	if b-d.top.Load() >= int64(len(d.buf)) {
		return false
	}
	d.buf[b&d.mask].Store(t)
	d.bot.Store(b + 1)
	return true
}

// Pop removes the most recently pushed task. Owner only. LIFO keeps
// the owner working depth-first on hot tokens, as the paper's stack
// queues do.
func (d *Deque) Pop() *Task {
	b := d.bot.Load() - 1
	d.bot.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bot.Store(b + 1)
		return nil
	}
	task := d.buf[b&d.mask].Load()
	if t < b {
		return task // more than one element left, no thief can reach it
	}
	// Last element: race the thieves for it via top.
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil // a thief won
	}
	d.bot.Store(b + 1)
	return task
}

// Steal removes the oldest task on behalf of another worker. Any
// goroutine may call it. It returns nil when the deque is empty or the
// CAS race is lost.
func (d *Deque) Steal() *Task {
	t := d.top.Load()
	if t >= d.bot.Load() {
		return nil
	}
	task := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}
