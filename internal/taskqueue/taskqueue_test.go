package taskqueue_test

import (
	"sync"
	"testing"

	"repro/internal/taskqueue"
	"repro/internal/wm"
)

func mkTask(n int) *taskqueue.Task {
	return &taskqueue.Task{Root: &wm.WME{TimeTag: n}}
}

func TestPushPopLIFO(t *testing.T) {
	q := taskqueue.New(1)
	for i := 1; i <= 3; i++ {
		q.Push(0, mkTask(i))
	}
	for want := 3; want >= 1; want-- {
		task, _ := q.Pop(0)
		if task == nil || task.Root.TimeTag != want {
			t.Fatalf("popped %v, want tag %d", task, want)
		}
		q.Done()
	}
	if task, _ := q.Pop(0); task != nil {
		t.Fatalf("pop on empty returned %v", task)
	}
}

func TestTaskCountProtocol(t *testing.T) {
	q := taskqueue.New(2)
	if q.TaskCount.Load() != 0 {
		t.Fatal("fresh queues not idle")
	}
	q.Push(0, mkTask(1))
	q.Push(1, mkTask(2))
	if got := q.TaskCount.Load(); got != 2 {
		t.Fatalf("TaskCount = %d, want 2", got)
	}
	task, _ := q.Pop(0)
	if task == nil {
		t.Fatal("pop failed")
	}
	// Popped but in-process: still counted.
	if got := q.TaskCount.Load(); got != 2 {
		t.Fatalf("TaskCount after pop = %d, want 2 (in-process counts)", got)
	}
	q.Done()
	if got := q.TaskCount.Load(); got != 1 {
		t.Fatalf("TaskCount after done = %d, want 1", got)
	}
}

func TestPopStealsFromOtherQueues(t *testing.T) {
	q := taskqueue.New(4)
	q.Push(3, mkTask(7))
	task, _ := q.Pop(0) // prefers queue 0, must find queue 3
	if task == nil || task.Root.TimeTag != 7 {
		t.Fatalf("steal failed: %v", task)
	}
	q.Done()
}

func TestRequeueGoesToBottom(t *testing.T) {
	q := taskqueue.New(1)
	q.Push(0, mkTask(1))
	q.Push(0, mkTask(2))
	popped, _ := q.Pop(0)
	if popped.Root.TimeTag != 2 {
		t.Fatalf("expected LIFO top 2, got %d", popped.Root.TimeTag)
	}
	q.Requeue(0, popped) // back to the bottom
	q.Done()             // worker releases its in-process claim
	a, _ := q.Pop(0)
	b, _ := q.Pop(0)
	if a.Root.TimeTag != 1 || b.Root.TimeTag != 2 {
		t.Fatalf("order after requeue = %d,%d; want 1,2", a.Root.TimeTag, b.Root.TimeTag)
	}
	q.Done()
	q.Done()
}

func TestWaitIdle(t *testing.T) {
	q := taskqueue.New(2)
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			q.Push(i, mkTask(i))
		}
	}()
	go func() {
		defer wg.Done()
		for done := 0; done < total; {
			if task, _ := q.Pop(0); task != nil {
				q.Done()
				done++
			}
		}
	}()
	wg.Wait()
	q.WaitIdle() // must return promptly with everything drained
	if got := q.TaskCount.Load(); got != 0 {
		t.Fatalf("TaskCount = %d after drain", got)
	}
}

func TestConcurrentPushPop(t *testing.T) {
	q := taskqueue.New(4)
	const perG = 5000
	var popped int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q.Push(g+i, mkTask(i))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for {
				task, _ := q.Pop(0)
				if task == nil {
					mu.Lock()
					done := popped >= 4*perG
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				q.Done()
				local++
				mu.Lock()
				popped += 1
				mu.Unlock()
				if local > 4*perG {
					t.Error("popped more tasks than pushed")
					return
				}
			}
		}()
	}
	wg.Wait()
	if popped != 4*perG {
		t.Fatalf("popped %d, want %d", popped, 4*perG)
	}
}
