package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// pingSrc answers every (req ^n X) with a (resp ^n X): one firing per
// asserted element, so firing counts are exact.
const pingSrc = `
(literalize req n)
(literalize resp n)
(p answer
  (req ^n <n>)
-->
  (make resp ^n <n>)
  (remove 1))
`

// spinSrc counts up forever — only a cycle/time budget stops it.
const spinSrc = `
(literalize count value)
(p inc
  (count ^value <v>)
-->
  (modify 1 ^value (compute <v> + 1)))
(make count ^value 0)
`

func newTestServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Options{DefaultMaxCycles: 1000, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// call issues one JSON request and decodes the response into out.
func call(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
			}
		}
	}
	return resp.StatusCode
}

// assertN posts a batch of n (req ^n i) elements and returns the result.
func assertN(t *testing.T, client *http.Client, base, id string, lo, n int) *server.BatchResult {
	t.Helper()
	req := &server.BatchRequest{}
	for i := lo; i < lo+n; i++ {
		req.Asserts = append(req.Asserts, server.WMEInput{
			Class: "req", Attrs: map[string]any{"n": i},
		})
	}
	var res server.BatchResult
	if code := call(t, client, "POST", base+"/sessions/"+id+"/assert", req, &res); code != http.StatusOK {
		t.Fatalf("assert batch: status %d", code)
	}
	return &res
}

// TestSessionLifecycle walks one session end to end over HTTP: create,
// batched asserts with firings and WM deltas, wm snapshot, retract,
// delete.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	var info server.SessionInfo
	code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if info.ID == "" || info.Backend != "vs2" || info.Rules != 1 {
		t.Fatalf("create info = %+v", info)
	}

	res := assertN(t, c, ts.URL, info.ID, 0, 5)
	if len(res.Firings) != 5 || res.Cycles != 5 {
		t.Fatalf("firings=%d cycles=%d, want 5/5", len(res.Firings), res.Cycles)
	}
	for _, f := range res.Firings {
		if f.Rule != "answer" {
			t.Fatalf("fired %q, want answer", f.Rule)
		}
	}
	// Each req is asserted then removed; each resp stays: 5 adds from
	// the batch + 5 rule-made resps, 5 removes.
	if len(res.WMAdded) != 10 || len(res.WMRemoved) != 5 {
		t.Fatalf("wm_added=%d wm_removed=%d, want 10/5", len(res.WMAdded), len(res.WMRemoved))
	}
	if res.WMSize != 5 {
		t.Fatalf("wm_size = %d, want 5 resps", res.WMSize)
	}

	var wmResp struct {
		Wmes []server.WMEOut `json:"wmes"`
		Size int             `json:"size"`
	}
	if code := call(t, c, "GET", ts.URL+"/sessions/"+info.ID+"/wm", nil, &wmResp); code != http.StatusOK {
		t.Fatalf("wm: status %d", code)
	}
	if wmResp.Size != 5 || len(wmResp.Wmes) != 5 {
		t.Fatalf("wm snapshot size = %d/%d", wmResp.Size, len(wmResp.Wmes))
	}

	// The listing reports live state, not the zero value (it once did).
	var list struct {
		Sessions []server.SessionInfo `json:"sessions"`
	}
	if code := call(t, c, "GET", ts.URL+"/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("sessions: status %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].WMSize != 5 || list.Sessions[0].SharedNet {
		t.Fatalf("sessions listing = %+v, want one unshared session with wm_size 5", list.Sessions)
	}

	// Retract two of the resps by their time tags.
	var ret server.BatchResult
	body := &server.BatchRequest{Retracts: []int{wmResp.Wmes[0].TimeTag, wmResp.Wmes[1].TimeTag}}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/retract", body, &ret); code != http.StatusOK {
		t.Fatalf("retract: status %d", code)
	}
	if len(ret.WMRemoved) != 2 || ret.WMSize != 3 {
		t.Fatalf("retract removed=%d size=%d, want 2/3", len(ret.WMRemoved), ret.WMSize)
	}

	if code := call(t, c, "DELETE", ts.URL+"/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := call(t, c, "GET", ts.URL+"/sessions/"+info.ID+"/wm", nil, nil); code != http.StatusNotFound {
		t.Fatalf("wm after delete: status %d, want 404", code)
	}
}

// TestConcurrentSessionsBothBackends is the acceptance scenario: >= 8
// sessions over both matcher backends running batched asserts
// concurrently, every firing accounted for, and a clean drain at the
// end. go test -race covers the locking.
func TestConcurrentSessionsBothBackends(t *testing.T) {
	srv, ts := newTestServer(t)
	c := ts.Client()

	const sessions = 12
	const batches = 5
	const perBatch = 8
	backends := []string{"vs2", "vs1", "parallel", "parallel"}
	locks := []string{"", "", "simple", "mrsw"}

	ids := make([]string, sessions)
	for i := range ids {
		cfg := server.SessionConfig{
			Program: pingSrc,
			Matcher: backends[i%len(backends)],
			Locks:   locks[i%len(locks)],
			Procs:   2,
		}
		var info server.SessionInfo
		if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		if i > 0 && !info.SharedNet {
			t.Errorf("session %d did not share the compiled network", i)
		}
		ids[i] = info.ID
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				res := assertN(t, c, ts.URL, id, b*perBatch, perBatch)
				if len(res.Firings) != perBatch {
					errs <- fmt.Errorf("session %s batch %d: %d firings, want %d", id, b, len(res.Firings), perBatch)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var snap stats.Snapshot
	if code := call(t, c, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Server.SessionsLive != sessions {
		t.Errorf("sessions_live = %d, want %d", snap.Server.SessionsLive, sessions)
	}
	if want := int64(sessions * batches * perBatch); snap.Server.Firings != want {
		t.Errorf("firings = %d, want %d", snap.Server.Firings, want)
	}
	if snap.Match.WMChanges == 0 || snap.Match.Activations == 0 {
		t.Errorf("match counters empty: %+v", snap.Match)
	}
	if snap.Latency["request"].Count == 0 {
		t.Errorf("request latency histogram empty")
	}

	// Drain: Close tears down every session's goroutines and drains the
	// pool; afterwards the API refuses new work.
	ts.Close()
	srv.Close()
	if _, err := srv.CreateSession(server.SessionConfig{Program: pingSrc}); err == nil {
		t.Error("CreateSession after Close succeeded")
	}
}

// TestRunLimits checks the per-request cycle budget surfaces as
// limit_hit and the session stays usable afterwards.
func TestRunLimits(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	var info server.SessionInfo
	cfg := server.SessionConfig{Program: spinSrc}
	if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var res server.BatchResult
	body := &server.BatchRequest{MaxCycles: 50}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", body, &res); code != http.StatusOK {
		t.Fatalf("assert: status %d", code)
	}
	if !res.LimitHit || res.Cycles != 50 || res.Halted {
		t.Fatalf("limit run: %+v, want limit_hit at 50 cycles", res)
	}
	// Next request keeps counting from where the budget stopped it.
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", body, &res); code != http.StatusOK {
		t.Fatalf("assert 2: status %d", code)
	}
	if !res.LimitHit || res.Cycles != 50 {
		t.Fatalf("second limit run: %+v", res)
	}

	var snap stats.Snapshot
	call(t, c, "GET", ts.URL+"/metrics", nil, &snap)
	if snap.Server.LimitStops != 2 {
		t.Errorf("limit_stops = %d, want 2", snap.Server.LimitStops)
	}
}

// TestBadInputs checks the error statuses: bad program, unknown
// session, unknown class/attr, oversized batch, session cap.
func TestBadInputs(t *testing.T) {
	srv := server.New(server.Options{MaxSessions: 2, MaxBatch: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := ts.Client()

	var apiErr struct {
		Error string `json:"error"`
	}
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: "(p broken"}, &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad program: status %d", code)
	}
	if apiErr.Error == "" {
		t.Errorf("bad program: empty error body")
	}
	if code := call(t, c, "POST", ts.URL+"/sessions/nope/assert", &server.BatchRequest{}, nil); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d", code)
	}

	var info server.SessionInfo
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	bad := &server.BatchRequest{Asserts: []server.WMEInput{{Class: "nosuch", Attrs: nil}}}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", bad, &apiErr); code != http.StatusBadRequest {
		t.Errorf("unknown class: status %d", code)
	}
	bad = &server.BatchRequest{Asserts: []server.WMEInput{{Class: "req", Attrs: map[string]any{"zzz": 1}}}}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", bad, &apiErr); code != http.StatusBadRequest {
		t.Errorf("unknown attr: status %d", code)
	}
	big := &server.BatchRequest{}
	for i := 0; i < 5; i++ {
		big.Asserts = append(big.Asserts, server.WMEInput{Class: "req", Attrs: map[string]any{"n": i}})
	}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", big, &apiErr); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", code)
	}

	// Session cap: one more fits, the next is refused.
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc}, nil); code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc}, &apiErr); code != http.StatusTooManyRequests {
		t.Errorf("session cap: status %d", code)
	}
}

// TestHealthz checks liveness before and after Close.
func TestHealthz(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	var h struct {
		OK       bool `json:"ok"`
		Sessions int  `json:"sessions"`
	}
	if code := call(t, c, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || !h.OK {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	srv.Close()
	if code := call(t, c, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d", code)
	}
}

// TestDeadlineBudget checks the wall-clock limit stops a spinning
// session well before the test would time out.
func TestDeadlineBudget(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()
	var info server.SessionInfo
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: spinSrc}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var res server.BatchResult
	body := &server.BatchRequest{MaxCycles: -1, TimeoutMs: 50}
	start := time.Now()
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/assert", body, &res); code != http.StatusOK {
		t.Fatalf("assert: status %d", code)
	}
	if !res.LimitHit {
		t.Fatalf("deadline run did not report limit_hit: %+v", res)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline run took %v", el)
	}
}
