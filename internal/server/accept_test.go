package server_test

import (
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func reactorSrc(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../examples/reactor/reactor.ops")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestReactorAwaitingInputLoop drives the REACTOR port through the
// daemon's HTTP API: every batch supplies the next chunk of operator
// input, and the session suspends with awaiting_input between chunks.
func TestReactorAwaitingInputLoop(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	var info server.SessionInfo
	code := call(t, client, "POST", ts.URL+"/sessions", server.SessionConfig{
		Program: reactorSrc(t),
		Watch:   1, // trace firings into BatchResult.Output
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	batch := func(accepts ...any) *server.BatchResult {
		t.Helper()
		var res server.BatchResult
		code := call(t, client, "POST", ts.URL+"/sessions/"+info.ID+"/assert",
			server.BatchRequest{Accepts: accepts}, &res)
		if code != http.StatusOK {
			t.Fatalf("batch: %d", code)
		}
		return &res
	}

	// No input buffered: the run suspends before start can fire (its
	// RHS executes an (accept)), so not even the banner prints yet.
	res := batch()
	if !res.AwaitingInput || res.Halted || res.Cycles != 0 {
		t.Fatalf("empty-queue batch: %+v", res)
	}
	// The incident id lets start fire; the first get-value then needs a
	// reading that is not there yet.
	res = batch("case-42")
	if !res.AwaitingInput || !strings.Contains(res.Output, "REACTOR accident diagnosis") {
		t.Fatalf("after id: awaiting=%v output=%q", res.AwaitingInput, res.Output)
	}
	if !strings.Contains(res.Output, "1. start") {
		t.Fatalf("watch 1 trace missing from output: %q", res.Output)
	}
	// All five readings at once: input, classification and diagnosis run
	// to the operator-log prompt, where (acceptline) suspends again.
	res = batch(10, 55, 30, 60, 80)
	if !res.AwaitingInput || !strings.Contains(res.Output, "diagnosis: loca") {
		t.Fatalf("after readings: awaiting=%v output=%q", res.AwaitingInput, res.Output)
	}
	// The log line releases (acceptline); the program signs off.
	res = batch("all", "systems", "nominal")
	if res.AwaitingInput || !res.Halted {
		t.Fatalf("final batch: %+v", res)
	}
	if !strings.Contains(res.Output, "session complete") {
		t.Fatalf("final output: %q", res.Output)
	}

	var wmResp struct {
		Wmes []server.WMEOut `json:"wmes"`
	}
	if code := call(t, client, "GET", ts.URL+"/sessions/"+info.ID+"/wm", nil, &wmResp); code != http.StatusOK {
		t.Fatalf("wm: %d", code)
	}
	var joined strings.Builder
	for _, w := range wmResp.Wmes {
		joined.WriteString(w.Text + "\n")
	}
	if !strings.Contains(joined.String(), "(trace ^elt diagnosis loca confirmed)") ||
		!strings.Contains(joined.String(), "(trace ^elt log all systems nominal)") {
		t.Fatalf("vector WMEs missing from wm:\n%s", joined.String())
	}
}

// TestVectorAttributeAssertJSON asserts a vector attribute through the
// batch API as a JSON array and matches it with a vector CE.
func TestVectorAttributeAssertJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	info, err := srv.CreateSession(server.SessionConfig{Program: `
(literalize msg elt)
(vector-attribute elt)
(literalize seen what)
(p spot (msg ^elt alert <lvl> now) --> (make seen ^what <lvl>))
`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Batch(info.ID, &server.BatchRequest{Asserts: []server.WMEInput{
		{Class: "msg", Attrs: map[string]any{"elt": []any{"alert", "red", "now"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Firings) != 1 || res.Firings[0].Rule != "spot" {
		t.Fatalf("firings: %+v", res.Firings)
	}
	// A scalar attribute must reject array values.
	_, err = srv.Batch(info.ID, &server.BatchRequest{Asserts: []server.WMEInput{
		{Class: "seen", Attrs: map[string]any{"what": []any{"a", "b"}}},
	}})
	if err == nil || !strings.Contains(err.Error(), "not a vector attribute") {
		t.Fatalf("scalar-array assert error: %v", err)
	}
}

// TestKillWhileAwaitingAcceptRecovery is the crash-recovery
// differential over interactive input: a session dies mid-dialogue
// with values still buffered in its accept queue, is recovered from
// the delta log, and must finish identically to an uninterrupted
// control session fed the same script.
func TestKillWhileAwaitingAcceptRecovery(t *testing.T) {
	src := reactorSrc(t)
	dir := t.TempDir()

	finishFrom := func(srv *server.Server, id string) (*server.BatchResult, []string) {
		t.Helper()
		// Remaining readings, then the log line.
		res, err := srv.Batch(id, &server.BatchRequest{Accepts: []any{30, 60, 80}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AwaitingInput {
			t.Fatalf("expected acceptline suspension, got %+v", res)
		}
		res, err = srv.Batch(id, &server.BatchRequest{Accepts: []any{"all", "clear"}})
		if err != nil {
			t.Fatal(err)
		}
		wm, err := srv.WMSnapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		texts := make([]string, 0, len(wm))
		for _, w := range wm {
			texts = append(texts, fmt.Sprintf("%d %s", w.TimeTag, w.Text))
		}
		return res, texts
	}

	// Interrupted session: supply the id plus three readings but let
	// only part of the queue drain before the "crash" — max_cycles 3
	// stops the run with values still pending in the accept queue.
	srv1, _ := newDurServer(t, dir, 0)
	info, err := srv1.CreateSession(server.SessionConfig{Program: src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv1.Batch(info.ID, &server.BatchRequest{
		Accepts:   []any{"case-42", 10, 55},
		MaxCycles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || res.AwaitingInput {
		t.Fatalf("pre-crash batch ran too far: %+v", res)
	}
	srv1.Close() // the crash: committed log, no clean finish

	// Recover and finish.
	srv2, recovered := newDurServer(t, dir, 0)
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	// Drain the still-buffered values first: an empty batch resumes the
	// run exactly where the cycle budget stopped it.
	res, err = srv2.Batch(info.ID, &server.BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AwaitingInput {
		t.Fatalf("recovered session should consume buffered input then suspend: %+v", res)
	}
	gotRes, gotWM := finishFrom(srv2, info.ID)
	if !gotRes.Halted {
		t.Fatal("recovered session did not halt")
	}

	// Control: same script, no interruption, memory-only server.
	ctl := server.New(server.Options{DefaultMaxCycles: 10000, DefaultTimeout: 30 * time.Second})
	defer ctl.Close()
	cinfo, err := ctl.CreateSession(server.SessionConfig{Program: src})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := ctl.Batch(cinfo.ID, &server.BatchRequest{Accepts: []any{"case-42", 10, 55}, MaxCycles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Halted || cres.AwaitingInput {
		t.Fatalf("control pre-batch: %+v", cres)
	}
	cres, err = ctl.Batch(cinfo.ID, &server.BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !cres.AwaitingInput {
		t.Fatalf("control resume: %+v", cres)
	}
	wantRes, wantWM := finishFrom(ctl, cinfo.ID)

	if gotRes.Halted != wantRes.Halted || gotRes.Output != wantRes.Output {
		t.Errorf("recovered finish differs:\n got halted=%v output=%q\nwant halted=%v output=%q",
			gotRes.Halted, gotRes.Output, wantRes.Halted, wantRes.Output)
	}
	if strings.Join(gotWM, "\n") != strings.Join(wantWM, "\n") {
		t.Errorf("final WM differs:\n got:\n%s\nwant:\n%s",
			strings.Join(gotWM, "\n"), strings.Join(wantWM, "\n"))
	}
}
