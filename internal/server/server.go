// Package server hosts many concurrent OPS5 engine sessions behind one
// process — the inference-server layer over the PSM-E engine. Each
// session owns a working memory, a conflict set and a matcher backend
// (sequential vs1/vs2 for small sessions, the parallel PSM-E matcher
// for heavy ones), while all sessions created from the same program
// source share one compiled Rete network read-only, the way the paper's
// k match processes share theirs. Requests are executed by a fixed
// worker pool, WM changes are batched into a single match phase per
// request, per-request cycle/time budgets ride on the engine's RunHook,
// and a panicking session is quarantined instead of taking the daemon
// down. cmd/ops5d exposes the HTTP/JSON API.
package server

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/stats"
	"repro/internal/wm"
	"repro/internal/wmlog"
)

// backend is what every matcher must provide to be hosted: the engine
// protocol plus teardown and counter snapshots.
type backend interface {
	engine.Matcher
	Close()
	MatchStats() stats.Match
}

// Options size the server.
type Options struct {
	// MaxSessions caps live sessions (default 256).
	MaxSessions int
	// Workers sizes the request worker pool (default 2×CPU, min 4).
	Workers int
	// DefaultMaxCycles bounds recognize-act cycles per request when the
	// request doesn't say (default 10000; <0 = unlimited).
	DefaultMaxCycles int
	// DefaultTimeout bounds wall-clock per request run (default 5s).
	DefaultTimeout time.Duration
	// MaxBatch caps WM changes per request (default 4096).
	MaxBatch int
	// DataDir, when set, enables the durability layer: per-session WM
	// delta logs, snapshots and templates persisted under this directory
	// and recovered by EnableDurability on restart.
	DataDir string
	// Durability selects the log sync policy: "none", "commit" (fsync
	// once per batch, the default when a DataDir is set) or "always".
	Durability string
	// SnapshotEvery compacts a session's delta log into a snapshot after
	// this many batches (0 = only on explicit snapshot requests).
	SnapshotEvery int
}

func (o *Options) fill() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 256
	}
	if o.DefaultMaxCycles == 0 {
		o.DefaultMaxCycles = 10000
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.DataDir != "" && o.Durability == "" {
		o.Durability = "commit"
	}
}

// Server is the session manager. Create one with New, serve its
// Handler, and Close it when done.
type Server struct {
	opt  Options
	pool *pool

	mu        sync.RWMutex
	sessions  map[string]*Session
	programs  map[[sha256.Size]byte]*sharedProgram
	templates map[string]*template
	// reserved holds caller-requested session IDs between the uniqueness
	// check and registration, so two concurrent creates (or imports) of
	// the same ID cannot both win.
	reserved map[string]struct{}
	nextID   uint64
	nextTpl  uint64
	closed   bool
	// bootID identifies this server process instance (new on every New);
	// /healthz reports it so a routing proxy can tell a restart — and a
	// stale program-cache view — from a healthy backend.
	bootID string

	// dur is the durability layer, nil when running memory-only. Set
	// once by EnableDurability before serving, then read-only.
	dur *durState

	met metrics
}

// sharedProgram is one compiled program, shared read-only by every
// session created from byte-identical source. newEng serializes
// engine construction: RHS compilation may lazily extend the class
// tables of an undeclared-attribute program, which must not race.
type sharedProgram struct {
	src  string // the exact source the hash covers
	prog *ops5.Program
	// net is the cost-planned network (the default); netSrc keeps the
	// source-order joins for sessions created with reorder_joins "off".
	// Both are compiled up front: the program cache is long-lived and a
	// lazy second compile would race with engine construction.
	net    *rete.Network
	netSrc *rete.Network
	newEng sync.Mutex
	refs   int // live sessions, for the sessions listing
}

// netFor picks the compiled network a session config asks for.
func (sp *sharedProgram) netFor(cfg *SessionConfig) (*rete.Network, error) {
	switch cfg.ReorderJoins {
	case "", "on":
		return sp.net, nil
	case "off":
		return sp.netSrc, nil
	default:
		return nil, fmt.Errorf("unknown reorder_joins %q (want on or off)", cfg.ReorderJoins)
	}
}

// Session is one hosted engine. Its mutex serializes requests: a
// session processes one batch at a time, while different sessions run
// in parallel on the worker pool.
type Session struct {
	ID      string
	Backend string
	Created time.Time

	sp      *sharedProgram
	mu      sync.Mutex
	eng     *engine.Engine
	matcher backend
	broken  error       // set when a panic quarantined the session
	prev    stats.Match // counters already folded into server metrics
	// prevCont mirrors prev for the contention counters of parallel
	// backends (zero for sequential ones), prevConf for the conflict-set
	// counters (the gauge fields fold correctly as deltas too: the sum
	// of per-session net changes is the current total).
	prevCont stats.Contention
	prevConf stats.Conflict
	// prevEpoch mirrors prev for the dynamic-change counters (runtime
	// build/excise applied to this session's private network epoch).
	prevEpoch stats.Epoch
	// prevMem mirrors prev for the token-table memory gauges and resize
	// counters; like Conflict's gauges, per-session net changes sum to
	// the current fleet-wide totals.
	prevMem stats.Memory
	// prevAct mirrors prev for the multi-fire act-phase counters.
	prevAct stats.Act
	// fireBatch is the session's act-phase group size (see
	// SessionConfig.FireBatch), passed to every Run.
	fireBatch int
	// matchBudget is the session's per-cycle match-cost cap (see
	// SessionConfig.MatchBudget), passed to every Run.
	matchBudget int64
	// watch is the resolved trace level (0..2): SessionConfig.Watch
	// merged with the program's (watch ...) declaration.
	watch int

	// cfg is the session's resolved configuration (Program holds the
	// full source, ProgramHash/ID cleared): what export serializes so a
	// migration target rebuilds the same backend.
	cfg SessionConfig

	// Durable state, zero-valued when the server runs memory-only.
	dir      string            // entry directory under the data dir
	progHash [sha256.Size]byte // pins the delta log to the program
	journal  *sessionJournal   // engine journal over the delta log
	template string            // template this session was forked from
	batches  int               // batches since the last snapshot
	prevDur  wmlog.WriterStats // writer counters already folded
}

// New builds a server and starts its worker pool.
func New(opt Options) *Server {
	opt.fill()
	s := &Server{
		opt:       opt,
		sessions:  make(map[string]*Session),
		programs:  make(map[[sha256.Size]byte]*sharedProgram),
		templates: make(map[string]*template),
		reserved:  make(map[string]struct{}),
		bootID:    newBootID(),
	}
	s.pool = newPool(opt.Workers)
	s.met.init()
	return s
}

// Close drains the worker pool and tears down every session. Safe to
// call once; new requests fail afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.sessions = map[string]*Session{}
	tpls := make([]*template, 0, len(s.templates))
	for _, tpl := range s.templates {
		tpls = append(tpls, tpl)
	}
	s.templates = map[string]*template{}
	s.mu.Unlock()

	s.pool.close()
	for _, sess := range live {
		s.teardown(sess)
	}
	for _, tpl := range tpls {
		tpl.mu.Lock()
		tpl.matcher.Close()
		tpl.mu.Unlock()
		s.met.templateClosed()
	}
}

// SessionConfig creates a session.
type SessionConfig struct {
	// Program is OPS5 source. Byte-identical sources share one compiled
	// network.
	Program string `json:"program"`
	// ProgramHash creates the session from an already-registered program
	// (POST /programs) by its hex SHA-256 instead of resending source —
	// the content-addressed fast path a routing proxy uses. Exactly one
	// of Program and ProgramHash must be set. An unknown hash fails with
	// ErrNoProgram (HTTP 424): register the program first.
	ProgramHash string `json:"program_hash,omitempty"`
	// ID requests a specific session ID (proxy-assigned routing keys,
	// migration imports). Empty lets the server pick. A taken ID fails
	// with ErrSessionExists.
	ID string `json:"id,omitempty"`
	// Matcher picks the backend: "vs2" (default), "vs1", or "parallel".
	Matcher string `json:"matcher"`
	// Procs/Queues/Locks configure the parallel backend: k match
	// goroutines, task-queue count, and "simple" or "mrsw" line locks.
	Procs  int    `json:"procs"`
	Queues int    `json:"queues"`
	Locks  string `json:"locks"`
	// HashLines sizes the token hash tables (0 = default).
	HashLines int `json:"hash_lines"`
	// CSShards is the number of conflict-set lock stripes, rounded up to
	// a power of two (0 = default). Matters for parallel backends, whose
	// match workers insert terminal activations concurrently.
	CSShards int `json:"cs_shards"`
	// FireBatch > 1 enables the speculative multi-fire act phase: up to
	// this many dominant instantiations fire per super-cycle when their
	// read and write sets are disjoint, with one match phase per group.
	// Results are identical to serial firing; 0 or 1 keeps the serial
	// act loop. Clamped to 64.
	FireBatch int `json:"fire_batch"`
	// ReorderJoins picks the compiled join order: "" or "on" (the
	// default) uses the cost-planned network, "off" the literal source
	// order. Firing traces are identical either way — the knob exists
	// for measurement and as an escape hatch.
	ReorderJoins string `json:"reorder_joins"`
	// MatchBudget > 0 caps the opposite-memory candidates any one rule's
	// joins may examine in a single cycle. A rule over budget is excised
	// from this session's network (quarantining the rule, not the
	// process) and counted in the epoch budget_trips metric. 0 disables.
	MatchBudget int64 `json:"match_budget"`
	// Unlink enables left/right unlinking of empty beta-memory inputs:
	// right activations into a join whose left memory is empty are
	// buffered instead of probed, and replayed when the join relinks.
	Unlink bool `json:"unlink"`
	// Watch sets the session's trace level, mirroring OPS5 (watch N):
	// 0 defers to the program's own (watch ...) declaration (silent when
	// it has none), 1 traces firings, 2 adds WM changes, and -1 forces
	// silence even when the program asks for tracing. Per-batch trace
	// text comes back in BatchResult.Output.
	Watch int `json:"watch"`
}

// SessionInfo describes a created session.
type SessionInfo struct {
	ID        string `json:"id"`
	Backend   string `json:"backend"`
	Rules     int    `json:"rules"`
	Epoch     int    `json:"epoch"`      // network version; >0 once runtime build/excise ran
	SharedNet bool   `json:"shared_net"` // create: network was cache-hit; listing: other live sessions share it
	WMSize    int    `json:"wm_size"`    // after the program's top-level makes
	Halted    bool   `json:"halted"`
	Template  string `json:"template,omitempty"` // template this session was forked from
}

// Errors the HTTP layer maps to status codes.
var (
	ErrClosed          = errors.New("server closed")
	ErrNoSession       = errors.New("no such session")
	ErrTooManySessions = errors.New("session limit reached")
	ErrSessionBroken   = errors.New("session quarantined after panic")
	ErrBatchTooLarge   = errors.New("batch exceeds limit")
	// ErrNoProgram reports a create-by-hash against an unregistered
	// program (HTTP 424: register via POST /programs, then retry).
	ErrNoProgram = errors.New("no such program")
	// ErrSessionExists reports a requested session ID that is already
	// live (HTTP 409).
	ErrSessionExists = errors.New("session ID already exists")
)

// sharedProg resolves program source to the cached compiled program,
// parsing and compiling on a miss. shared reports a cache hit.
func (s *Server) sharedProg(src string) (sp *sharedProgram, hash [sha256.Size]byte, shared bool, err error) {
	hash = sha256.Sum256([]byte(src))
	s.mu.Lock()
	sp, shared = s.programs[hash]
	s.mu.Unlock()
	if sp != nil {
		return sp, hash, shared, nil
	}
	prog, err := ops5.Parse(src)
	if err != nil {
		return nil, hash, false, fmt.Errorf("parse: %w", err)
	}
	net, err := rete.CompileWithPlan(prog, rete.PlanConfig{Reorder: true})
	if err != nil {
		return nil, hash, false, fmt.Errorf("compile: %w", err)
	}
	netSrc, err := rete.Compile(prog)
	if err != nil {
		return nil, hash, false, fmt.Errorf("compile: %w", err)
	}
	s.met.programCompiled()
	s.mu.Lock()
	if cached, ok := s.programs[hash]; ok {
		sp, shared = cached, true // lost a compile race; use the winner
	} else {
		sp = &sharedProgram{src: src, prog: prog, net: net, netSrc: netSrc}
		s.programs[hash] = sp
	}
	s.mu.Unlock()
	return sp, hash, shared, nil
}

// resolveProgram maps a session config onto its compiled program:
// either by hash against the content-addressed registry (the cluster
// fast path — no source transfer, no compile) or by source, compiling
// on a miss. It normalizes the config so the session's retained cfg —
// and everything persisted or exported from it — always carries the
// full resolved source.
func (s *Server) resolveProgram(cfg *SessionConfig) (sp *sharedProgram, hash [sha256.Size]byte, shared bool, err error) {
	switch {
	case cfg.Program == "" && cfg.ProgramHash == "":
		return nil, hash, false, errors.New("missing program source (or program_hash of a registered program)")
	case cfg.Program != "" && cfg.ProgramHash != "":
		return nil, hash, false, errors.New("program and program_hash are mutually exclusive")
	case cfg.ProgramHash != "":
		sp, hash, err = s.programByHash(cfg.ProgramHash)
		if err != nil {
			return nil, hash, false, err
		}
		shared = true
		s.met.programHit()
	default:
		sp, hash, shared, err = s.sharedProg(cfg.Program)
		if err != nil {
			return nil, hash, false, err
		}
		if shared {
			s.met.programHit()
		}
	}
	cfg.Program = sp.src
	cfg.ProgramHash = ""
	return sp, hash, shared, nil
}

// reserveID allocates the session's ID: the requested one (held in the
// reservation set until the create resolves, so concurrent creates of
// one ID cannot both win) or the next generated s-NNNNNN. It also
// enforces the session cap.
func (s *Server) reserveID(want string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if len(s.sessions) >= s.opt.MaxSessions {
		return "", fmt.Errorf("%w (%d)", ErrTooManySessions, s.opt.MaxSessions)
	}
	if want == "" {
		s.nextID++
		return fmt.Sprintf("s-%06d", s.nextID), nil
	}
	if strings.ContainsAny(want, "/\\ \t\n") {
		return "", fmt.Errorf("bad session ID %q (no slashes or whitespace)", want)
	}
	if _, live := s.sessions[want]; live {
		return "", fmt.Errorf("%w: %q", ErrSessionExists, want)
	}
	if _, pending := s.reserved[want]; pending {
		return "", fmt.Errorf("%w: %q (create in flight)", ErrSessionExists, want)
	}
	s.reserved[want] = struct{}{}
	return want, nil
}

// unreserveID releases a requested-ID reservation (no-op for generated
// IDs). Called once the create has either registered the session or
// failed.
func (s *Server) unreserveID(want string) {
	if want == "" {
		return
	}
	s.mu.Lock()
	delete(s.reserved, want)
	s.mu.Unlock()
}

// CreateSession compiles (or reuses) the program, builds the matcher
// and engine, runs the program's top-level makes, and registers the
// session. The initial match runs on the caller's goroutine under the
// same panic quarantine as requests. With durability enabled the
// session ID is reserved up front so the delta log exists before the
// first journaled change: the log records everything from empty working
// memory, top-level makes included.
func (s *Server) CreateSession(cfg SessionConfig) (*SessionInfo, error) {
	id, err := s.reserveID(cfg.ID)
	if err != nil {
		return nil, err
	}
	defer s.unreserveID(cfg.ID)

	sp, hash, shared, err := s.resolveProgram(&cfg)
	if err != nil {
		return nil, err
	}
	net, err := sp.netFor(&cfg)
	if err != nil {
		return nil, err
	}

	watch, err := resolveWatch(cfg.Watch, sp.prog)
	if err != nil {
		return nil, err
	}

	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	m, backendName, err := newBackend(net, cfg, cs)
	if err != nil {
		return nil, err
	}
	sp.newEng.Lock()
	eng, err := engine.New(sp.prog, net, cs, m, nil)
	sp.newEng.Unlock()
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("rhs compile: %w", err)
	}
	// Hosted sessions read (accept) input from a per-session queue the
	// batch API fills; an empty queue suspends the run (awaiting_input)
	// instead of fabricating end-of-file.
	eng.IO = engine.NewQueueIO(sp.prog.Symbols, false)
	cfg.ID = ""
	sess := &Session{
		ID:          id,
		Backend:     backendName,
		Created:     time.Now(),
		sp:          sp,
		cfg:         cfg,
		eng:         eng,
		matcher:     m,
		progHash:    hash,
		fireBatch:   clampFireBatch(cfg.FireBatch),
		matchBudget: cfg.MatchBudget,
		watch:       watch,
	}
	if s.dur != nil {
		j, dir, err := s.persistSession(id, &cfg, backendName, "", hash, sp.prog.Symbols)
		if err != nil {
			m.Close()
			s.removeDurable(wmlog.KindSession, id)
			return nil, err
		}
		sess.journal = j
		sess.dir = dir
		eng.SetJournal(j)
	}
	if err := s.guard(sess, func() error { return eng.Init() }); err != nil {
		sess.journal.close()
		m.Close()
		s.removeDurable(wmlog.KindSession, id)
		return nil, fmt.Errorf("init: %w", err)
	}
	if sess.journal != nil {
		if err := sess.journal.w.Commit(); err != nil {
			sess.journal.close()
			m.Close()
			s.removeDurable(wmlog.KindSession, id)
			return nil, fmt.Errorf("commit init log: %w", err)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.journal.close()
		m.Close()
		return nil, ErrClosed
	}
	s.sessions[sess.ID] = sess
	sp.refs++
	s.mu.Unlock()

	s.met.sessionCreated()
	s.foldStats(sess)
	return &SessionInfo{
		ID:        sess.ID,
		Backend:   backendName,
		Rules:     len(sp.net.Rules),
		SharedNet: shared,
		WMSize:    eng.WM.Len(),
		Halted:    eng.Halted(),
	}, nil
}

// newBootID draws a random process-instance identifier for /healthz.
func newBootID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// resolveWatch merges the session watch knob with the program's own
// (watch ...) declaration: 0 defers to the program, -1 forces silence,
// 1 and 2 are explicit levels.
func resolveWatch(cfgWatch int, prog *ops5.Program) (int, error) {
	switch {
	case cfgWatch < -1 || cfgWatch > 2:
		return 0, fmt.Errorf("watch level %d out of range (want -1, 0, 1 or 2)", cfgWatch)
	case cfgWatch == -1:
		return 0, nil
	case cfgWatch > 0:
		return cfgWatch, nil
	default:
		if prog.Watch > 0 {
			return prog.Watch, nil
		}
		return 0, nil
	}
}

// clampFireBatch normalizes the session fire-batch knob: non-positive
// means serial, and group size is capped so one super-cycle cannot
// spawn an unbounded number of staging goroutines.
func clampFireBatch(n int) int {
	if n < 0 {
		return 0
	}
	if n > 64 {
		return 64
	}
	return n
}

// newBackend constructs the matcher a session config asks for.
func newBackend(net *rete.Network, cfg SessionConfig, cs *conflict.Set) (backend, string, error) {
	switch cfg.Matcher {
	case "", "vs2":
		sm := seqmatch.New(net, seqmatch.VS2, cfg.HashLines, cs)
		if cfg.Unlink {
			sm.EnableUnlink()
		}
		return sm, "vs2", nil
	case "vs1":
		sm := seqmatch.New(net, seqmatch.VS1, cfg.HashLines, cs)
		if cfg.Unlink {
			sm.EnableUnlink()
		}
		return sm, "vs1", nil
	case "parallel":
		scheme := parmatch.SchemeSimple
		switch cfg.Locks {
		case "", "simple":
		case "mrsw":
			scheme = parmatch.SchemeMRSW
		default:
			return nil, "", fmt.Errorf("unknown lock scheme %q", cfg.Locks)
		}
		procs := cfg.Procs
		if procs <= 0 {
			procs = 4
		}
		queues := cfg.Queues
		if queues <= 0 {
			queues = 2
		}
		return parmatch.New(net, parmatch.Config{
			Procs:  procs,
			Queues: queues,
			Lines:  cfg.HashLines,
			Scheme: scheme,
			Unlink: cfg.Unlink,
		}, cs), "parallel", nil
	default:
		return nil, "", fmt.Errorf("unknown matcher %q (want vs2, vs1 or parallel)", cfg.Matcher)
	}
}

// session looks a live session up.
func (s *Server) session(id string) (*Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return sess, nil
}

// DeleteSession removes and tears down a session.
func (s *Server) DeleteSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		sess.sp.refs--
	}
	closed := s.closed
	s.mu.Unlock()
	if !ok {
		if closed {
			return ErrClosed
		}
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	s.teardown(sess)
	s.removeDurable(wmlog.KindSession, id)
	return nil
}

// teardown folds the session's final counters, flushes and closes its
// delta log (the SIGTERM drain path runs through here), and stops its
// matcher.
func (s *Server) teardown(sess *Session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.foldStatsLocked(sess)
	s.foldDurLocked(sess)
	sess.journal.close()
	sess.matcher.Close()
	s.met.sessionClosed()
}

// guard runs fn under the per-session panic quarantine: a panic marks
// the session broken and comes back as an error instead of unwinding
// into the daemon. The caller must hold no session lock conventions
// beyond "one guard at a time per session" (the session mutex).
func (s *Server) guard(sess *Session, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrSessionBroken, p)
			sess.broken = err
			// Release the delta-log fd: a quarantined session must not pin
			// it, and closing flushes whole frames only, so the log stays
			// cleanly truncatable for restore or the next recovery.
			sess.journal.close()
			s.met.panicked()
		}
	}()
	if sess.broken != nil {
		return sess.broken
	}
	return fn()
}

// foldStats folds the matcher counters accumulated since the last fold
// into the server-wide match totals.
func (s *Server) foldStats(sess *Session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.foldStatsLocked(sess)
}

func (s *Server) foldStatsLocked(sess *Session) {
	cur := sess.matcher.MatchStats()
	delta := cur
	delta.Sub(&sess.prev)
	sess.prev = cur
	s.met.foldMatch(&delta)
	// Parallel backends also expose scheduler/lock contention counters;
	// fold their delta the same way.
	if cm, ok := sess.matcher.(interface{ Contention() stats.Contention }); ok {
		ccur := cm.Contention()
		cdelta := ccur
		cdelta.Sub(&sess.prevCont)
		sess.prevCont = ccur
		s.met.foldContention(&cdelta)
	}
	fcur := sess.eng.CS.StatsSnapshot()
	fdelta := fcur
	fdelta.Sub(&sess.prevConf)
	sess.prevConf = fcur
	s.met.foldConflict(&fdelta)
	ecur := sess.eng.EpochStats()
	edelta := ecur
	edelta.Sub(&sess.prevEpoch)
	sess.prevEpoch = ecur
	s.met.foldEpoch(&edelta)
	// Every Rete backend owns a token table; fold its gauges/counters.
	if mm, ok := sess.matcher.(interface{ MemStats() stats.Memory }); ok {
		mcur := mm.MemStats()
		mdelta := mcur
		mdelta.Sub(&sess.prevMem)
		sess.prevMem = mcur
		s.met.foldMemory(&mdelta)
	}
	acur := sess.eng.ActStats()
	adelta := acur
	adelta.Sub(&sess.prevAct)
	sess.prevAct = acur
	s.met.foldAct(&adelta)
}

// WMEInput is one element to assert: a class name and attribute values
// (JSON strings become OPS5 symbols, numbers become integers or floats).
type WMEInput struct {
	Class string         `json:"class"`
	Attrs map[string]any `json:"attrs"`
}

// WMEOut is one element reported back.
type WMEOut struct {
	TimeTag int    `json:"timetag"`
	Text    string `json:"text"`
}

// BatchRequest is the body of POST /sessions/{id}/assert and /retract.
// Asserts and retracts in one request form one batch: all retracts,
// then all asserts, are submitted to the matcher in a single match
// phase each, then the recognize-act cycle runs under the budgets.
type BatchRequest struct {
	Asserts  []WMEInput `json:"asserts,omitempty"`
	Retracts []int      `json:"retracts,omitempty"`
	// Accepts queues values for the session's (accept)/(acceptline)
	// input before the run: strings become symbols, numbers become
	// integers or floats. A session suspended awaiting_input resumes
	// exactly where it stopped once enough values arrive.
	Accepts []any `json:"accepts,omitempty"`
	// MaxCycles overrides the server default for this request
	// (<0 = unlimited).
	MaxCycles int `json:"max_cycles,omitempty"`
	// TimeoutMs overrides the server's per-request run budget.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoFirings suppresses the firing log in the response.
	NoFirings bool `json:"no_firings,omitempty"`
}

// FiringOut is one production firing.
type FiringOut struct {
	Cycle    int    `json:"cycle"`
	Rule     string `json:"rule"`
	TimeTags []int  `json:"timetags"`
}

// BatchResult is the response body for assert/retract requests.
type BatchResult struct {
	Firings   []FiringOut `json:"firings"`
	Cycles    int         `json:"cycles"`
	Halted    bool        `json:"halted"`
	LimitHit  bool        `json:"limit_hit"`
	WMAdded   []WMEOut    `json:"wm_added"`
	WMRemoved []int       `json:"wm_removed"`
	WMSize    int         `json:"wm_size"`
	ElapsedUs int64       `json:"elapsed_us"`
	// Quarantined lists rules excised from this session by the match
	// budget, oldest first (cumulative over the session's lifetime).
	Quarantined []string `json:"quarantined,omitempty"`
	// AwaitingInput reports that the run suspended because the dominant
	// instantiation executes (accept)/(acceptline) and the session's
	// input queue holds too few values. Supply more via Accepts on the
	// next batch to resume.
	AwaitingInput bool `json:"awaiting_input"`
	// Output is the text the program wrote during this batch — (write ...)
	// actions plus watch tracing at the session's watch level.
	Output string `json:"output,omitempty"`
}

// Batch executes one assert/retract batch on a session. It is the
// synchronous core; the HTTP layer schedules it on the worker pool.
func (s *Server) Batch(id string, req *BatchRequest) (*BatchResult, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	if n := len(req.Asserts) + len(req.Retracts); n > s.opt.MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, n, s.opt.MaxBatch)
	}

	// Resolve inputs to field vectors before taking the session lock:
	// pure read-only lookups against the shared program.
	fieldsList := make([][]wm.Value, 0, len(req.Asserts))
	for i := range req.Asserts {
		fields, err := buildFields(sess.sp.prog, &req.Asserts[i])
		if err != nil {
			return nil, fmt.Errorf("asserts[%d]: %w", i, err)
		}
		fieldsList = append(fieldsList, fields)
	}
	acceptVals := make([]wm.Value, 0, len(req.Accepts))
	for i, raw := range req.Accepts {
		v, err := toValue(sess.sp.prog, raw)
		if err != nil {
			return nil, fmt.Errorf("accepts[%d]: %w", i, err)
		}
		acceptVals = append(acceptVals, v)
	}

	maxCycles := req.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.opt.DefaultMaxCycles
	}
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()

	res := &BatchResult{Firings: []FiringOut{}, WMAdded: []WMEOut{}, WMRemoved: []int{}}
	start := time.Now()
	deadline := start.Add(timeout)
	limitHit := false

	var outBuf strings.Builder
	err = s.guard(sess, func() error {
		prog := sess.sp.prog
		sess.eng.WMListener = func(sign bool, w *wm.WME) {
			if sign {
				res.WMAdded = append(res.WMAdded, WMEOut{
					TimeTag: w.TimeTag,
					Text:    w.String(prog.Symbols, prog.AttrName),
				})
			} else {
				res.WMRemoved = append(res.WMRemoved, w.TimeTag)
			}
		}
		sess.eng.Out = &outBuf
		defer func() {
			sess.eng.WMListener = nil
			sess.eng.Out = nil
		}()

		if len(acceptVals) > 0 {
			if err := sess.eng.SupplyInput(acceptVals); err != nil {
				return err
			}
		}
		if _, err := sess.eng.RetractBatch(req.Retracts); err != nil {
			return err
		}
		if _, err := sess.eng.AssertBatch(fieldsList); err != nil {
			return err
		}
		run, err := sess.eng.Run(engine.Options{
			RecordFiring: !req.NoFirings,
			FireBatch:    sess.fireBatch,
			MatchBudget:  sess.matchBudget,
			TraceFires:   sess.watch >= 1,
			TraceWMEs:    sess.watch >= 2,
			Hook:         engine.LimitHook(maxCycles, deadline),
		})
		if run != nil {
			res.Cycles = run.Cycles
			res.Halted = run.Halted
			res.AwaitingInput = run.AwaitingInput
			for _, f := range run.Firings {
				res.Firings = append(res.Firings, FiringOut{Cycle: f.Cycle, Rule: f.Rule, TimeTags: f.TimeTags})
			}
		}
		if err != nil {
			if errors.Is(err, engine.ErrLimit) {
				limitHit = true
				return nil
			}
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.LimitHit = limitHit
	res.Output = outBuf.String()
	res.WMSize = sess.eng.WM.Len()
	res.Halted = sess.eng.Halted()
	for _, q := range sess.eng.Quarantined() {
		res.Quarantined = append(res.Quarantined, q.Rule)
	}
	res.ElapsedUs = time.Since(start).Microseconds()

	s.foldStatsLocked(sess)
	if err := s.commitLocked(sess); err != nil {
		return nil, err
	}
	s.met.batchDone(len(req.Asserts), len(req.Retracts), res, time.Since(start))
	return res, nil
}

// WMSnapshot returns the session's live working memory.
func (s *Server) WMSnapshot(id string) ([]WMEOut, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	prog := sess.sp.prog
	out := make([]WMEOut, 0, sess.eng.WM.Len())
	for _, w := range sess.eng.WM.Snapshot() {
		out = append(out, WMEOut{TimeTag: w.TimeTag, Text: w.String(prog.Symbols, prog.AttrName)})
	}
	return out, nil
}

// Sessions lists live sessions.
func (s *Server) Sessions() []SessionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		info := SessionInfo{
			ID:        sess.ID,
			Backend:   sess.Backend,
			SharedNet: sess.sp.refs > 1,
			Template:  sess.template,
		}
		sess.mu.Lock()
		// The session's network may have diverged from the shared base
		// epoch through runtime build/excise; report its own view.
		info.Rules = len(sess.eng.Net.Rules)
		info.Epoch = sess.eng.Epoch()
		info.WMSize = sess.eng.WM.Len()
		info.Halted = sess.eng.Halted()
		sess.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// buildFields resolves a WMEInput into a field vector with read-only
// lookups: unknown classes and attributes are rejected rather than
// auto-declared, because the program is shared across sessions and must
// not be mutated at run time (see rete.Network).
func buildFields(prog *ops5.Program, in *WMEInput) ([]wm.Value, error) {
	classID, ok := prog.Symbols.Lookup(in.Class)
	if !ok {
		return nil, fmt.Errorf("unknown class %q", in.Class)
	}
	class, ok := prog.Classes[classID]
	if !ok {
		return nil, fmt.Errorf("unknown class %q", in.Class)
	}
	fields := make([]wm.Value, class.NumFields())
	fields[0] = wm.Sym(classID)
	for attr, val := range in.Attrs {
		attrID, ok := prog.Symbols.Lookup(attr)
		if !ok {
			return nil, fmt.Errorf("class %s has no attribute %q", in.Class, attr)
		}
		idx, ok := class.Fields[attrID]
		if !ok {
			return nil, fmt.Errorf("class %s has no attribute %q", in.Class, attr)
		}
		if arr, ok := val.([]any); ok {
			// A JSON array fills the class's vector attribute: element i
			// lands in field idx+i, growing the WME past NumFields.
			if class.VectorField == 0 || idx != class.VectorField {
				return nil, fmt.Errorf("attribute %q of class %s is not a vector attribute", attr, in.Class)
			}
			for end := idx + len(arr); len(fields) < end; {
				fields = append(fields, wm.Nil)
			}
			for i, elem := range arr {
				v, err := toValue(prog, elem)
				if err != nil {
					return nil, fmt.Errorf("attribute %q[%d]: %w", attr, i, err)
				}
				fields[idx+i] = v
			}
			continue
		}
		v, err := toValue(prog, val)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", attr, err)
		}
		fields[idx] = v
	}
	return fields, nil
}

// toValue converts a decoded JSON value to an OPS5 value. Interning a
// new symbol is safe: the symbol table is internally synchronized.
func toValue(prog *ops5.Program, val any) (wm.Value, error) {
	switch x := val.(type) {
	case string:
		return wm.Sym(prog.Symbols.Intern(x)), nil
	case float64:
		if x == float64(int64(x)) {
			return wm.Int(int64(x)), nil
		}
		return wm.Float(x), nil
	case int:
		return wm.Int(int64(x)), nil
	case int64:
		return wm.Int(x), nil
	case bool, nil:
		return wm.Nil, fmt.Errorf("unsupported value %v (want string or number)", x)
	default:
		return wm.Nil, fmt.Errorf("unsupported value type %T", val)
	}
}
