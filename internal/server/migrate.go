package server

import (
	"crypto/sha256"
	"fmt"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/wmlog"
)

// Session migration: export serializes a drained session — resolved
// config plus a versioned wmlog snapshot of WM, refraction, time-tag
// counter, halt flag and pending (accept) input — and import rebuilds
// an identical session on another backend, restoring through the same
// match machinery recovery uses. The routing proxy orchestrates the
// pair (export source → import target → delete source → flip route);
// either side alone is also a backup/restore primitive.

// ExportPayload is a session's complete portable state.
type ExportPayload struct {
	// ID the session was exported under; import recreates it under the
	// same ID (the proxy's routing key) unless overridden.
	ID string `json:"id"`
	// Config is the resolved session config, full program source
	// included — the import side may never have seen the program.
	Config   SessionConfig `json:"config"`
	Template string        `json:"template,omitempty"`
	// Snapshot is the encoded wmlog snapshot (magic, version, CRC and
	// payload format stamp included), base64 in JSON. Import rejects a
	// snapshot written by a different payload format with
	// wmlog.ErrSnapshotVersion.
	Snapshot []byte `json:"snapshot"`
	WMSize   int    `json:"wm_size"`
	Halted   bool   `json:"halted"`
}

// ExportSession captures a session's portable state. The session stays
// live and untouched; callers that migrate delete it once the import
// succeeded. A session whose network diverged from the shared compiled
// base (runtime build/excise, match-budget quarantine) refuses to
// export: the snapshot pins program source, not epoch deltas, so an
// import would silently drop the divergence.
func (s *Server) ExportSession(id string) (*ExportPayload, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.broken != nil {
		return nil, sess.broken
	}
	if epoch := sess.eng.Epoch(); epoch > 0 {
		return nil, fmt.Errorf("session %q has a diverged network (epoch %d: runtime build/excise or budget quarantine); not exportable", id, epoch)
	}
	st := sess.eng.CaptureState()
	st.ProgHash = sess.progHash
	st.LogOffset = 0
	b, err := st.Encode()
	if err != nil {
		return nil, fmt.Errorf("encode snapshot: %w", err)
	}
	return &ExportPayload{
		ID:       sess.ID,
		Config:   sess.cfg,
		Template: sess.template,
		Snapshot: b,
		WMSize:   sess.eng.WM.Len(),
		Halted:   sess.eng.Halted(),
	}, nil
}

// ImportSession rebuilds an exported session on this server under its
// exported ID (payload.ID). The program compiles through the shared
// cache — a backend that already holds the hash pays no parse or Rete
// compile. With durability enabled the imported session persists like
// any other: program, meta, snapshot, empty delta log.
func (s *Server) ImportSession(p *ExportPayload) (*SessionInfo, error) {
	if p.ID == "" {
		return nil, fmt.Errorf("import payload has no session ID")
	}
	snap, err := wmlog.DecodeSnapshot(p.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("import snapshot: %w", err)
	}

	id, err := s.reserveID(p.ID)
	if err != nil {
		return nil, err
	}
	defer s.unreserveID(p.ID)

	cfg := p.Config
	cfg.ID, cfg.ProgramHash = "", ""
	sp, hash, _, err := s.resolveProgram(&cfg)
	if err != nil {
		return nil, err
	}
	if hash != snap.ProgHash {
		return nil, fmt.Errorf("import snapshot pins program %x, payload carries %x", snap.ProgHash[:8], hash[:8])
	}
	net, err := sp.netFor(&cfg)
	if err != nil {
		return nil, err
	}
	watch, err := resolveWatch(cfg.Watch, sp.prog)
	if err != nil {
		return nil, err
	}
	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	m, backendName, err := newBackend(net, cfg, cs)
	if err != nil {
		return nil, err
	}
	sp.newEng.Lock()
	eng, err := engine.New(sp.prog, net, cs, m, nil)
	sp.newEng.Unlock()
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("rhs compile: %w", err)
	}
	eng.IO = engine.NewQueueIO(sp.prog.Symbols, false)
	if err := eng.RestoreState(snap); err != nil {
		m.Close()
		return nil, fmt.Errorf("restore imported state: %w", err)
	}

	sess := &Session{
		ID:          id,
		Backend:     backendName,
		Created:     time.Now(),
		sp:          sp,
		cfg:         cfg,
		eng:         eng,
		matcher:     m,
		progHash:    hash,
		template:    p.Template,
		fireBatch:   clampFireBatch(cfg.FireBatch),
		matchBudget: cfg.MatchBudget,
		watch:       watch,
	}
	if s.dur != nil {
		if err := s.persistImport(sess, &cfg, backendName, hash, snap); err != nil {
			m.Close()
			s.removeDurable(wmlog.KindSession, id)
			return nil, err
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.journal.close()
		m.Close()
		return nil, ErrClosed
	}
	s.sessions[id] = sess
	sp.refs++
	s.bumpNextID(id)
	s.mu.Unlock()

	s.met.sessionCreated()
	s.foldStats(sess)
	return &SessionInfo{
		ID:        id,
		Backend:   backendName,
		Rules:     len(sp.net.Rules),
		SharedNet: true,
		WMSize:    eng.WM.Len(),
		Halted:    eng.Halted(),
		Template:  p.Template,
	}, nil
}

// persistImport writes an imported session's durable state: program,
// meta, the imported snapshot covering the (empty) delta log, and the
// open journal, so a crash right after import recovers the migrated
// state exactly.
func (s *Server) persistImport(sess *Session, cfg *SessionConfig, backendName string, hash [sha256.Size]byte, snap *wmlog.Snapshot) error {
	j, dir, err := s.persistSession(sess.ID, cfg, backendName, sess.template, hash, sess.sp.prog.Symbols)
	if err != nil {
		return err
	}
	snap.LogOffset = int64(wmlog.HeaderSize)
	if _, err := wmlog.WriteSnapshot(wmlog.SnapshotPath(dir), snap); err != nil {
		j.close()
		return fmt.Errorf("persist imported snapshot: %w", err)
	}
	sess.journal = j
	sess.dir = dir
	sess.eng.SetJournal(j)
	return nil
}
