package server

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/wm"
	"repro/internal/wmlog"
)

// A template is a warm session held for forking: program loaded and
// compiled, base facts asserted, matcher settled. Forks clone its
// working memory, conflict set and token table by structure copy
// (sequential backends) or restore its snapshot through a fresh matcher
// (parallel backends) — either way they skip the program parse, network
// compile, RHS compile and base-fact match a cold session pays. The
// template itself never runs requests and never changes after creation;
// its snapshot hash pins that immutability.
type template struct {
	ID      string
	Backend string
	Created time.Time

	cfg  SessionConfig
	sp   *sharedProgram
	hash [sha256.Size]byte
	dir  string // durable entry dir; "" when memory-only

	mu      sync.Mutex
	eng     *engine.Engine
	matcher backend
	snap    *wmlog.Snapshot
	snapRaw []byte   // one encoding shared by every fork's durable state
	snapSum [32]byte // content hash (offset-independent)
	forks   int64
}

// ErrNoTemplate reports an unknown template ID.
var ErrNoTemplate = errors.New("no such template")

// TemplateConfig creates a template: a session config plus the base
// facts to assert before the template settles.
type TemplateConfig struct {
	SessionConfig
	Asserts []WMEInput `json:"asserts,omitempty"`
}

// TemplateInfo describes a template.
type TemplateInfo struct {
	ID           string `json:"id"`
	Backend      string `json:"backend"`
	Rules        int    `json:"rules"`
	WMSize       int    `json:"wm_size"`
	SnapshotHash string `json:"snapshot_hash"`
	Forks        int64  `json:"forks"`
}

// CreateTemplate builds a warm template session: compile (or reuse) the
// program, run its top-level makes, assert the base facts, settle the
// matcher, and pin the settled state in an encoded snapshot.
func (s *Server) CreateTemplate(cfg *TemplateConfig) (info *TemplateInfo, err error) {
	// A template build runs engine code on caller input; quarantine
	// panics the same way session requests do.
	defer func() {
		if p := recover(); p != nil {
			info, err = nil, fmt.Errorf("%w: %v", ErrSessionBroken, p)
			s.met.panicked()
		}
	}()

	sp, hash, _, err := s.sharedProg(cfg.Program)
	if err != nil {
		return nil, err
	}
	net, err := sp.netFor(&cfg.SessionConfig)
	if err != nil {
		return nil, err
	}
	// Validate the watch knob now so every fork resolves it cleanly.
	if _, err := resolveWatch(cfg.Watch, sp.prog); err != nil {
		return nil, err
	}
	fieldsList := make([][]wm.Value, 0, len(cfg.Asserts))
	for i := range cfg.Asserts {
		fields, err := buildFields(sp.prog, &cfg.Asserts[i])
		if err != nil {
			return nil, fmt.Errorf("asserts[%d]: %w", i, err)
		}
		fieldsList = append(fieldsList, fields)
	}
	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	m, backendName, err := newBackend(net, cfg.SessionConfig, cs)
	if err != nil {
		return nil, err
	}
	sp.newEng.Lock()
	eng, err := engine.New(sp.prog, net, cs, m, nil)
	sp.newEng.Unlock()
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("rhs compile: %w", err)
	}
	if err := eng.Init(); err != nil {
		m.Close()
		return nil, fmt.Errorf("init: %w", err)
	}
	if len(fieldsList) > 0 {
		if _, err := eng.AssertBatch(fieldsList); err != nil {
			m.Close()
			return nil, fmt.Errorf("base facts: %w", err)
		}
	}

	st := eng.CaptureState()
	st.ProgHash = hash
	raw, err := st.Encode()
	if err != nil {
		m.Close()
		return nil, err
	}
	sum, err := st.Hash()
	if err != nil {
		m.Close()
		return nil, err
	}

	tpl := &template{
		Backend: backendName,
		Created: time.Now(),
		cfg:     cfg.SessionConfig,
		sp:      sp,
		hash:    hash,
		eng:     eng,
		matcher: m,
		snap:    st,
		snapRaw: raw,
		snapSum: sum,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		m.Close()
		return nil, ErrClosed
	}
	s.nextTpl++
	tpl.ID = fmt.Sprintf("t-%06d", s.nextTpl)
	s.templates[tpl.ID] = tpl
	sp.refs++
	s.mu.Unlock()

	if s.dur != nil {
		if err := s.persistTemplate(tpl); err != nil {
			s.dropTemplate(tpl.ID)
			return nil, err
		}
	}
	s.met.templateCreated()
	return s.templateInfo(tpl), nil
}

// persistTemplate writes a template's durable state: program, meta and
// the pinned snapshot. Templates have no delta log — they never change.
func (s *Server) persistTemplate(tpl *template) error {
	dir, err := s.dur.store.EntryDir(wmlog.KindTemplate, tpl.ID)
	if err != nil {
		return err
	}
	if err := os.WriteFile(wmlog.ProgramPath(dir), []byte(tpl.cfg.Program), 0o644); err != nil {
		return fmt.Errorf("persist template program: %w", err)
	}
	if err := wmlog.WriteMeta(dir, metaFromConfig(&tpl.cfg, tpl.Backend, "")); err != nil {
		return fmt.Errorf("persist template meta: %w", err)
	}
	if err := wmlog.WriteSnapshotBytes(wmlog.SnapshotPath(dir), tpl.snapRaw); err != nil {
		return fmt.Errorf("persist template snapshot: %w", err)
	}
	tpl.dir = dir
	return nil
}

// recoverTemplate rebuilds one persisted template at startup: the
// snapshot restores through a fresh engine, re-warming it for forks.
func (s *Server) recoverTemplate(id string) error {
	dir, err := s.dur.store.EntryDir(wmlog.KindTemplate, id)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(wmlog.ProgramPath(dir))
	if err != nil {
		return fmt.Errorf("read program: %w", err)
	}
	meta, err := wmlog.ReadMeta(dir)
	if err != nil {
		return fmt.Errorf("read meta: %w", err)
	}
	raw, err := os.ReadFile(wmlog.SnapshotPath(dir))
	if err != nil {
		return fmt.Errorf("read snapshot: %w", err)
	}
	st, err := wmlog.DecodeSnapshot(raw)
	if err != nil {
		return err
	}
	cfg := configFromMeta(meta, string(src))
	sp, hash, _, err := s.sharedProg(cfg.Program)
	if err != nil {
		return err
	}
	if st.ProgHash != hash {
		return fmt.Errorf("template snapshot belongs to a different program")
	}
	net, err := sp.netFor(&cfg)
	if err != nil {
		return err
	}
	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	m, backendName, err := newBackend(net, cfg, cs)
	if err != nil {
		return err
	}
	sp.newEng.Lock()
	eng, err := engine.New(sp.prog, net, cs, m, nil)
	sp.newEng.Unlock()
	if err != nil {
		m.Close()
		return fmt.Errorf("rhs compile: %w", err)
	}
	if err := eng.RestoreState(st); err != nil {
		m.Close()
		return fmt.Errorf("restore: %w", err)
	}
	sum, err := st.Hash()
	if err != nil {
		m.Close()
		return err
	}
	tpl := &template{
		ID:      id,
		Backend: backendName,
		Created: time.Now(),
		cfg:     cfg,
		sp:      sp,
		hash:    hash,
		dir:     dir,
		eng:     eng,
		matcher: m,
		snap:    st,
		snapRaw: raw,
		snapSum: sum,
	}
	s.mu.Lock()
	s.templates[id] = tpl
	sp.refs++
	var n uint64
	if _, err := fmt.Sscanf(id, "t-%d", &n); err == nil && n > s.nextTpl {
		s.nextTpl = n
	}
	s.mu.Unlock()
	s.met.templateCreated()
	return nil
}

func (s *Server) templateInfo(tpl *template) *TemplateInfo {
	return &TemplateInfo{
		ID:           tpl.ID,
		Backend:      tpl.Backend,
		Rules:        len(tpl.sp.net.Rules),
		WMSize:       len(tpl.snap.Wmes),
		SnapshotHash: fmt.Sprintf("%x", tpl.snapSum),
		Forks:        tpl.forks,
	}
}

// Templates lists the server's warm templates.
func (s *Server) Templates() []*TemplateInfo {
	s.mu.RLock()
	tpls := make([]*template, 0, len(s.templates))
	for _, tpl := range s.templates {
		tpls = append(tpls, tpl)
	}
	s.mu.RUnlock()
	out := make([]*TemplateInfo, 0, len(tpls))
	for _, tpl := range tpls {
		tpl.mu.Lock()
		out = append(out, s.templateInfo(tpl))
		tpl.mu.Unlock()
	}
	return out
}

// dropTemplate unregisters a template and stops its matcher.
func (s *Server) dropTemplate(id string) *template {
	s.mu.Lock()
	tpl, ok := s.templates[id]
	if ok {
		delete(s.templates, id)
		tpl.sp.refs--
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	tpl.mu.Lock()
	tpl.matcher.Close()
	tpl.mu.Unlock()
	s.met.templateClosed()
	return tpl
}

// DeleteTemplate removes a template and its durable state. Sessions
// already forked from it are unaffected — they own their own state.
func (s *Server) DeleteTemplate(id string) error {
	if tpl := s.dropTemplate(id); tpl == nil {
		return fmt.Errorf("%w: %q", ErrNoTemplate, id)
	}
	s.removeDurable(wmlog.KindTemplate, id)
	return nil
}

// ForkResult describes a session created from a template.
type ForkResult struct {
	SessionInfo
	SpawnUs int64 `json:"spawn_us"`
}

// Fork clones a template into a new session. Sequential backends take
// the copy-on-write fast path — working memory, conflict set and token
// table are structure-copied, sharing every immutable WME and token
// slice with the template — and skip parse, compile, RHS compile and
// matching entirely. Parallel backends restore the template's snapshot
// through a fresh matcher (still skipping the compile pipeline). The
// template is locked during the clone and never mutated.
func (s *Server) Fork(templateID string) (*ForkResult, error) {
	start := time.Now()
	s.mu.RLock()
	tpl := s.templates[templateID]
	closed := s.closed
	nSess := len(s.sessions)
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if tpl == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTemplate, templateID)
	}
	if nSess >= s.opt.MaxSessions {
		return nil, fmt.Errorf("%w (%d)", ErrTooManySessions, s.opt.MaxSessions)
	}

	tpl.mu.Lock()
	var (
		eng *engine.Engine
		m   backend
		err error
	)
	if sm, ok := tpl.matcher.(*seqmatch.Matcher); ok {
		cs := tpl.eng.CS.Clone()
		nm := sm.Clone(cs)
		eng = tpl.eng.CloneWith(tpl.eng.WM.Clone(), cs, nm, nil)
		m = nm
	} else {
		cs := conflict.New(conflict.Config{Shards: tpl.cfg.CSShards})
		var net *rete.Network
		net, err = tpl.sp.netFor(&tpl.cfg)
		if err == nil {
			m, _, err = newBackend(net, tpl.cfg, cs)
		}
		if err == nil {
			tpl.sp.newEng.Lock()
			eng, err = engine.New(tpl.sp.prog, net, cs, m, nil)
			tpl.sp.newEng.Unlock()
			if err == nil {
				err = eng.RestoreState(tpl.snap)
			}
		}
	}
	if err == nil {
		tpl.forks++
	}
	tpl.mu.Unlock()
	if err != nil {
		if m != nil {
			m.Close()
		}
		return nil, fmt.Errorf("fork %s: %w", templateID, err)
	}

	// Forks run batches like any hosted session: give each its own
	// input queue (the template never reads input, so there is nothing
	// to inherit) and resolve its trace level.
	eng.IO = engine.NewQueueIO(tpl.sp.prog.Symbols, false)
	watch, err := resolveWatch(tpl.cfg.Watch, tpl.sp.prog)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("fork %s: %w", templateID, err)
	}

	sess := &Session{
		Backend:     tpl.Backend,
		Created:     time.Now(),
		sp:          tpl.sp,
		cfg:         tpl.cfg,
		eng:         eng,
		matcher:     m,
		progHash:    tpl.hash,
		template:    tpl.ID,
		fireBatch:   clampFireBatch(tpl.cfg.FireBatch),
		matchBudget: tpl.cfg.MatchBudget,
		watch:       watch,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		m.Close()
		return nil, ErrClosed
	}
	s.nextID++
	sess.ID = fmt.Sprintf("s-%06d", s.nextID)
	s.sessions[sess.ID] = sess
	tpl.sp.refs++
	s.mu.Unlock()

	if s.dur != nil {
		if err := s.persistFork(sess, tpl); err != nil {
			_ = s.DeleteSession(sess.ID)
			return nil, err
		}
		sess.eng.SetJournal(sess.journal)
	}
	s.met.sessionCreated()
	s.met.forked()
	s.foldStats(sess)
	return &ForkResult{
		SessionInfo: SessionInfo{
			ID:        sess.ID,
			Backend:   sess.Backend,
			Rules:     len(sess.eng.Net.Rules),
			SharedNet: true,
			WMSize:    sess.eng.WM.Len(),
			Halted:    sess.eng.Halted(),
			Template:  tpl.ID,
		},
		SpawnUs: time.Since(start).Microseconds(),
	}, nil
}

// persistFork writes a forked session's durable state: the template's
// pinned snapshot bytes (one encoding shared across forks), a fresh
// empty delta log, program and meta. Recovery restores the snapshot
// then replays the fork's own log.
func (s *Server) persistFork(sess *Session, tpl *template) error {
	j, dir, err := s.persistSession(sess.ID, &tpl.cfg, tpl.Backend, tpl.ID, tpl.hash, tpl.sp.prog.Symbols)
	if err != nil {
		return err
	}
	if err := wmlog.WriteSnapshotBytes(wmlog.SnapshotPath(dir), tpl.snapRaw); err != nil {
		j.close()
		return fmt.Errorf("persist fork snapshot: %w", err)
	}
	sess.journal = j
	sess.dir = dir
	return nil
}
