package server_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/server"
)

// stormSrc is the crash-recovery workload: spawn/bump churn working
// memory through makes, modifies and removes, config-note leaves a
// fired instantiation whose WMEs survive untouched — if recovery lost
// refraction state, the next run would fire it again and the
// differential below would catch the duplicate note.
const stormSrc = `
(literalize config mode)
(literalize note mode)
(literalize item n val)
(literalize probe n)
(p config-note
  (config ^mode <m>)
-->
  (make note ^mode <m>))
(p spawn
  (probe ^n <n>)
- (item ^n <n>)
-->
  (make item ^n <n> ^val 0))
(p bump
  (probe ^n <n>)
  (item ^n <n> ^val <v>)
-->
  (modify 2 ^val (compute <v> + 1))
  (remove 1))
`

func newDurServer(t *testing.T, dir string, snapEvery int) (*server.Server, int) {
	t.Helper()
	srv := server.New(server.Options{
		DataDir:          dir,
		Durability:       "commit",
		SnapshotEvery:    snapEvery,
		DefaultMaxCycles: 10000,
		DefaultTimeout:   30 * time.Second,
	})
	n, err := srv.EnableDurability()
	if err != nil {
		t.Fatalf("EnableDurability(%s): %v", dir, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, n
}

// stormBatches is the scripted WM storm: one config batch, then rounds
// of probes that spawn, bump and remove elements.
func stormBatches() []*server.BatchRequest {
	reqs := []*server.BatchRequest{{
		Asserts: []server.WMEInput{{Class: "config", Attrs: map[string]any{"mode": "fast"}}},
	}}
	for round := 0; round < 6; round++ {
		var req server.BatchRequest
		for n := 1; n <= 5; n++ {
			if (round+n)%3 == 0 {
				continue // skew rounds so items alternate spawn/bump
			}
			req.Asserts = append(req.Asserts, server.WMEInput{
				Class: "probe", Attrs: map[string]any{"n": n},
			})
		}
		reqs = append(reqs, &req)
	}
	return reqs
}

// fireTrace flattens a batch's firing log for exact comparison.
func fireTrace(res *server.BatchResult) []string {
	out := make([]string, 0, len(res.Firings))
	for _, f := range res.Firings {
		out = append(out, fmt.Sprintf("c%d %s %v", f.Cycle, f.Rule, f.TimeTags))
	}
	return out
}

// wmTexts returns the session's working memory as sorted text, the
// canonical form for differential comparison (timetags included).
func wmTexts(t *testing.T, s *server.Server, id string) []string {
	t.Helper()
	wmes, err := s.WMSnapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(wmes))
	for _, w := range wmes {
		out = append(out, fmt.Sprintf("%d %s", w.TimeTag, w.Text))
	}
	sort.Strings(out)
	return out
}

// TestCrashRecoveryDifferential runs the WM storm on a durable session,
// "crashes" (abandons the server without shutdown), recovers the data
// directory in a fresh server, and diffs working memory, timetags and
// the post-recovery firing trace against an uninterrupted control
// session fed the identical script. Covered across the sequential and
// parallel backends, and across snapshot-cadence (snapshot + log tail)
// vs pure log replay.
func TestCrashRecoveryDifferential(t *testing.T) {
	cases := []struct {
		backend   string
		snapEvery int
	}{
		{"vs1", 0},
		{"vs2", 2},
		{"vs2", 0},
		{"parallel", 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/snap%d", tc.backend, tc.snapEvery), func(t *testing.T) {
			dir := t.TempDir()
			cfg := server.SessionConfig{Program: stormSrc, Matcher: tc.backend, Procs: 2}

			// Control: uninterrupted, memory-only, same backend.
			ctl := server.New(server.Options{DefaultTimeout: 30 * time.Second})
			defer ctl.Close()
			ctlInfo, err := ctl.CreateSession(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Victim: durable, runs the storm, then is abandoned mid-life
			// (no Close, no final snapshot — recovery must come from the
			// delta log alone past the last compaction point).
			crashed, _ := newDurServer(t, dir, tc.snapEvery)
			vicInfo, err := crashed.CreateSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, req := range stormBatches() {
				vres, err := crashed.Batch(vicInfo.ID, req)
				if err != nil {
					t.Fatalf("victim batch %d: %v", i, err)
				}
				cres, err := ctl.Batch(ctlInfo.ID, req)
				if err != nil {
					t.Fatalf("control batch %d: %v", i, err)
				}
				if !reflect.DeepEqual(fireTrace(vres), fireTrace(cres)) {
					t.Fatalf("batch %d pre-crash trace diverged:\n%v\nvs\n%v", i, fireTrace(vres), fireTrace(cres))
				}
			}

			// Recover in a fresh server over the same data directory.
			srv, recovered := newDurServer(t, dir, tc.snapEvery)
			if recovered != 1 {
				t.Fatalf("recovered %d entries, want 1", recovered)
			}

			// Recovered WM must be byte-identical to the control's.
			if got, want := wmTexts(t, srv, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered WM diverged:\n%v\nwant\n%v", got, want)
			}

			// Post-recovery batches must produce the identical firing
			// trace and timetags — this is where lost refraction state or
			// a stale tag counter would surface.
			for i, req := range stormBatches() {
				rres, err := srv.Batch(vicInfo.ID, req)
				if err != nil {
					t.Fatalf("recovered batch %d: %v", i, err)
				}
				cres, err := ctl.Batch(ctlInfo.ID, req)
				if err != nil {
					t.Fatalf("control batch %d: %v", i, err)
				}
				if !reflect.DeepEqual(fireTrace(rres), fireTrace(cres)) {
					t.Fatalf("post-recovery batch %d trace diverged:\n%v\nwant\n%v", i, fireTrace(rres), fireTrace(cres))
				}
			}
			if got, want := wmTexts(t, srv, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("final WM diverged:\n%v\nwant\n%v", got, want)
			}

			// A second restart over the now-live directory also works:
			// recovery itself left a consistent (snapshot, log) pair.
			srv2, recovered2 := newDurServer(t, dir, tc.snapEvery)
			if recovered2 != 1 {
				t.Fatalf("second recovery found %d entries, want 1", recovered2)
			}
			if got, want := wmTexts(t, srv2, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("second recovery WM diverged:\n%v\nwant\n%v", got, want)
			}
		})
	}
}

// TestRecoveryTornTail corrupts the delta log's tail — a torn frame, as
// a crash mid-write would leave — and checks recovery drops exactly the
// torn part, keeps the clean prefix, counts the event, and leaves the
// session writable (the log is truncated back to the clean boundary).
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := server.SessionConfig{Program: stormSrc}

	ctl := server.New(server.Options{})
	defer ctl.Close()
	ctlInfo, err := ctl.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}

	crashed, _ := newDurServer(t, dir, 0)
	vicInfo, err := crashed.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := stormBatches()
	for i, req := range reqs[:3] {
		if _, err := crashed.Batch(vicInfo.ID, req); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if _, err := ctl.Batch(ctlInfo.ID, req); err != nil {
			t.Fatalf("control batch %d: %v", i, err)
		}
	}

	// Tear the tail: a frame header promising far more bytes than exist.
	logPath := filepath.Join(dir, "sessions", vicInfo.ID, "delta.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv, recovered := newDurServer(t, dir, 0)
	if recovered != 1 {
		t.Fatalf("recovered %d entries, want 1", recovered)
	}
	if torn := srv.Snapshot().Durability.TornTails; torn != 1 {
		t.Errorf("torn tails = %d, want 1", torn)
	}
	if got, want := wmTexts(t, srv, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
		t.Fatalf("WM after torn-tail recovery:\n%v\nwant\n%v", got, want)
	}
	// The truncated log accepts new batches and they stay replayable.
	for i, req := range reqs[3:] {
		if _, err := srv.Batch(vicInfo.ID, req); err != nil {
			t.Fatalf("post-recovery batch %d: %v", i, err)
		}
		if _, err := ctl.Batch(ctlInfo.ID, req); err != nil {
			t.Fatalf("control batch %d: %v", i, err)
		}
	}
	srv2, _ := newDurServer(t, dir, 0)
	if got, want := wmTexts(t, srv2, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
		t.Fatalf("WM after second recovery:\n%v\nwant\n%v", got, want)
	}
}

// TestForkIsolation forks one template twice, drives the forks apart,
// and checks (a) the forks diverge independently, (b) the template
// itself stays byte-identical — a third fork starts from exactly the
// state the first one did — and (c) with durability on, forks and
// template survive a restart with their divergent state intact.
func TestForkIsolation(t *testing.T) {
	for _, backend := range []string{"vs2", "parallel"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			srv, _ := newDurServer(t, dir, 0)

			tcfg := &server.TemplateConfig{
				SessionConfig: server.SessionConfig{Program: stormSrc, Matcher: backend, Procs: 2},
			}
			for n := 1; n <= 8; n++ {
				tcfg.Asserts = append(tcfg.Asserts, server.WMEInput{
					Class: "item", Attrs: map[string]any{"n": n, "val": 100},
				})
			}
			tinfo, err := srv.CreateTemplate(tcfg)
			if err != nil {
				t.Fatal(err)
			}

			fork1, err := srv.Fork(tinfo.ID)
			if err != nil {
				t.Fatal(err)
			}
			fork2, err := srv.Fork(tinfo.ID)
			if err != nil {
				t.Fatal(err)
			}
			base := wmTexts(t, srv, fork1.ID)
			if got := wmTexts(t, srv, fork2.ID); !reflect.DeepEqual(got, base) {
				t.Fatalf("fresh forks differ:\n%v\nvs\n%v", got, base)
			}

			// Drive the forks apart.
			probe := func(id string, n int) *server.BatchResult {
				res, err := srv.Batch(id, &server.BatchRequest{
					Asserts: []server.WMEInput{{Class: "probe", Attrs: map[string]any{"n": n}}},
				})
				if err != nil {
					t.Fatalf("batch on %s: %v", id, err)
				}
				return res
			}
			r1 := probe(fork1.ID, 1)
			probe(fork2.ID, 2)
			probe(fork2.ID, 3)
			wm1, wm2 := wmTexts(t, srv, fork1.ID), wmTexts(t, srv, fork2.ID)
			if reflect.DeepEqual(wm1, wm2) {
				t.Fatalf("forks did not diverge: %v", wm1)
			}

			// The template is untouched: its pinned hash is stable and a
			// new fork starts from the identical state — same WM bytes,
			// same behavior on the same first batch.
			for _, ti := range srv.Templates() {
				if ti.ID == tinfo.ID {
					if ti.SnapshotHash != tinfo.SnapshotHash {
						t.Fatalf("template hash changed: %s -> %s", tinfo.SnapshotHash, ti.SnapshotHash)
					}
					if ti.Forks != 2 {
						t.Errorf("fork count = %d, want 2", ti.Forks)
					}
				}
			}
			fork3, err := srv.Fork(tinfo.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got := wmTexts(t, srv, fork3.ID); !reflect.DeepEqual(got, base) {
				t.Fatalf("post-divergence fork differs from base:\n%v\nwant\n%v", got, base)
			}
			if r3 := probe(fork3.ID, 1); !reflect.DeepEqual(fireTrace(r3), fireTrace(r1)) {
				t.Fatalf("fork3 first-batch trace:\n%v\nwant\n%v", fireTrace(r3), fireTrace(r1))
			}

			// Restart: template and all forks come back, forks keeping
			// their divergent state (fork3 now matches fork1 exactly —
			// both took the same single batch).
			wm3 := wmTexts(t, srv, fork3.ID)
			srv2, recovered := newDurServer(t, dir, 0)
			if recovered != 4 { // template + three forks
				t.Fatalf("recovered %d entries, want 4", recovered)
			}
			for id, want := range map[string][]string{fork1.ID: wm1, fork2.ID: wm2, fork3.ID: wm3} {
				if got := wmTexts(t, srv2, id); !reflect.DeepEqual(got, want) {
					t.Fatalf("recovered %s WM:\n%v\nwant\n%v", id, got, want)
				}
			}
			fork4, err := srv2.Fork(tinfo.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got := wmTexts(t, srv2, fork4.ID); !reflect.DeepEqual(got, base) {
				t.Fatalf("fork from recovered template:\n%v\nwant\n%v", got, base)
			}
		})
	}
}

// multiFireSrc is a removal-heavy workload for the multi-fire recovery
// differential: sweep and scrub are pure-removal rules, so a FireBatch>1
// session fires them in speculative groups; config-note (a make) keeps a
// serial firing in the mix.
const multiFireSrc = `
(literalize config mode)
(literalize note mode)
(literalize item n)
(literalize junk n)
(p config-note
  (config ^mode <m>)
-->
  (make note ^mode <m>))
(p sweep
  (config ^mode <m>)
  (item ^n <n>)
-->
  (remove 2))
(p scrub
  (junk ^n <n>)
-->
  (remove 1))
`

// multiFireBatches asserts config once, then rounds of items and junk
// that sweep/scrub clear out — each round yields a burst of independent
// removals that the batched act phase groups together.
func multiFireBatches() []*server.BatchRequest {
	reqs := []*server.BatchRequest{{
		Asserts: []server.WMEInput{{Class: "config", Attrs: map[string]any{"mode": "fast"}}},
	}}
	for round := 0; round < 5; round++ {
		var req server.BatchRequest
		for n := 1; n <= 6; n++ {
			req.Asserts = append(req.Asserts, server.WMEInput{
				Class: "item", Attrs: map[string]any{"n": round*10 + n},
			})
		}
		for n := 1; n <= 3; n++ {
			req.Asserts = append(req.Asserts, server.WMEInput{
				Class: "junk", Attrs: map[string]any{"n": round*10 + n},
			})
		}
		reqs = append(reqs, &req)
	}
	return reqs
}

// TestCrashRecoveryMultiFire is the multi-fire variant of the crash
// differential: the durable victim runs with FireBatch 8 (speculative
// grouped firing), the memory-only control with FireBatch 1 (strict
// serial). Because grouped deltas commit in conflict-resolution order
// and the journal records one fire per committed instantiation in that
// order, the victim's delta log replays to exactly the serial state —
// recovery of a multi-fire session must be indistinguishable from
// recovery of a serial one.
func TestCrashRecoveryMultiFire(t *testing.T) {
	for _, backend := range []string{"vs2", "parallel"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			vcfg := server.SessionConfig{Program: multiFireSrc, Matcher: backend, Procs: 2, FireBatch: 8}
			ccfg := server.SessionConfig{Program: multiFireSrc, Matcher: backend, Procs: 2, FireBatch: 1}

			ctl := server.New(server.Options{DefaultTimeout: 30 * time.Second})
			defer ctl.Close()
			ctlInfo, err := ctl.CreateSession(ccfg)
			if err != nil {
				t.Fatal(err)
			}

			crashed, _ := newDurServer(t, dir, 2)
			vicInfo, err := crashed.CreateSession(vcfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, req := range multiFireBatches() {
				vres, err := crashed.Batch(vicInfo.ID, req)
				if err != nil {
					t.Fatalf("victim batch %d: %v", i, err)
				}
				cres, err := ctl.Batch(ctlInfo.ID, req)
				if err != nil {
					t.Fatalf("control batch %d: %v", i, err)
				}
				if !reflect.DeepEqual(fireTrace(vres), fireTrace(cres)) {
					t.Fatalf("batch %d multi-fire trace diverged from serial:\n%v\nvs\n%v", i, fireTrace(vres), fireTrace(cres))
				}
			}
			// The victim must actually have fired in groups — otherwise
			// this test silently degrades to the serial differential.
			if act := crashed.Snapshot().Act; act.GroupedFires == 0 {
				t.Fatalf("victim act stats show no grouped fires: %+v", act)
			}

			// Crash and recover; the rebuilt session keeps FireBatch 8
			// from its persisted meta.
			srv, recovered := newDurServer(t, dir, 2)
			if recovered != 1 {
				t.Fatalf("recovered %d entries, want 1", recovered)
			}
			if got, want := wmTexts(t, srv, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered WM diverged:\n%v\nwant\n%v", got, want)
			}

			// Post-recovery rounds keep matching the serial control, and
			// the recovered session still fires in groups.
			for i, req := range multiFireBatches() {
				rres, err := srv.Batch(vicInfo.ID, req)
				if err != nil {
					t.Fatalf("recovered batch %d: %v", i, err)
				}
				cres, err := ctl.Batch(ctlInfo.ID, req)
				if err != nil {
					t.Fatalf("control batch %d: %v", i, err)
				}
				if !reflect.DeepEqual(fireTrace(rres), fireTrace(cres)) {
					t.Fatalf("post-recovery batch %d trace diverged:\n%v\nwant\n%v", i, fireTrace(rres), fireTrace(cres))
				}
			}
			if act := srv.Snapshot().Act; act.GroupedFires == 0 {
				t.Fatalf("recovered session act stats show no grouped fires: %+v", act)
			}
			if got, want := wmTexts(t, srv, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("final WM diverged:\n%v\nwant\n%v", got, want)
			}

			srv2, recovered2 := newDurServer(t, dir, 2)
			if recovered2 != 1 {
				t.Fatalf("second recovery found %d entries, want 1", recovered2)
			}
			if got, want := wmTexts(t, srv2, vicInfo.ID), wmTexts(t, ctl, ctlInfo.ID); !reflect.DeepEqual(got, want) {
				t.Fatalf("second recovery WM diverged:\n%v\nwant\n%v", got, want)
			}
		})
	}
}
