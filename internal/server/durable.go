package server

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/symbols"
	"repro/internal/wm"
	"repro/internal/wmlog"
)

// This file wires the wmlog durability layer into the session manager:
// per-session delta logs written through the engine's journal hook,
// snapshot compaction on a batch cadence, crash recovery at startup,
// and rebuild-from-disk for the restore endpoint.

// durState is the server's durability configuration, nil when the
// daemon runs memory-only.
type durState struct {
	store     *wmlog.Store
	policy    wmlog.SyncPolicy
	snapEvery int // batches between automatic snapshot compactions; 0 = never
}

// ErrNotDurable reports a durability operation on a memory-only session
// or server.
var ErrNotDurable = errors.New("session has no durable state (server running without -data-dir)")

// sessionJournal adapts a wmlog.Writer to the engine's Journal
// interface. Append errors are sticky: the engine hooks cannot fail, so
// the first error is kept and surfaced at the batch commit point.
type sessionJournal struct {
	w   *wmlog.Writer
	tab *symbols.Table
	err error
}

func (j *sessionJournal) append(rec *wmlog.Record) {
	if j.err != nil {
		return
	}
	j.err = j.w.Append(rec)
}

func (j *sessionJournal) RecordMake(w *wm.WME) {
	j.append(&wmlog.Record{Type: wmlog.RecMake, Tag: w.TimeTag, Fields: wmlog.EncodeFields(w.Fields, j.tab)})
}

func (j *sessionJournal) RecordRemove(w *wm.WME) {
	j.append(&wmlog.Record{Type: wmlog.RecRemove, Tag: w.TimeTag})
}

func (j *sessionJournal) RecordFire(rule string, tags []int) {
	j.append(&wmlog.Record{Type: wmlog.RecFire, Rule: rule, Tags: tags})
}

func (j *sessionJournal) RecordHalt() {
	j.append(&wmlog.Record{Type: wmlog.RecHalt})
}

func (j *sessionJournal) RecordProgram(src string) {
	j.append(&wmlog.Record{Type: wmlog.RecProgram, Src: src})
}

func (j *sessionJournal) RecordAccept(vals []wm.Value) {
	j.append(&wmlog.Record{Type: wmlog.RecAccept, Fields: wmlog.EncodeFields(vals, j.tab)})
}

func (j *sessionJournal) RecordAcceptTake(n int) {
	j.append(&wmlog.Record{Type: wmlog.RecAcceptTake, Tag: n})
}

// close releases the log file descriptor, flushing buffered frames
// first so the on-disk log ends at a clean frame boundary. Used by
// teardown and by the panic quarantine (a quarantined session must not
// pin its fd, and its log must stay cleanly truncatable).
func (j *sessionJournal) close() {
	if j == nil || j.w.Closed() {
		return
	}
	_ = j.w.Close()
}

// EnableDurability opens the data directory named in Options, then
// rebuilds every persisted template and session found there. Call once,
// after New and before serving. Returns how many entries were
// recovered. With no DataDir configured it is a no-op.
func (s *Server) EnableDurability() (recovered int, err error) {
	if s.opt.DataDir == "" {
		return 0, nil
	}
	policy, err := wmlog.ParseSyncPolicy(s.opt.Durability)
	if err != nil {
		return 0, err
	}
	store, err := wmlog.Open(s.opt.DataDir)
	if err != nil {
		return 0, err
	}
	s.dur = &durState{store: store, policy: policy, snapEvery: s.opt.SnapshotEvery}

	tids, err := store.List(wmlog.KindTemplate)
	if err != nil {
		return 0, err
	}
	for _, id := range tids {
		if err := s.recoverTemplate(id); err != nil {
			return recovered, fmt.Errorf("recover template %s: %w", id, err)
		}
		recovered++
	}
	sids, err := store.List(wmlog.KindSession)
	if err != nil {
		return recovered, err
	}
	for _, id := range sids {
		if err := s.recoverSession(id); err != nil {
			return recovered, fmt.Errorf("recover session %s: %w", id, err)
		}
		recovered++
	}
	return recovered, nil
}

// metaFromConfig maps a session config onto the persisted Meta.
func metaFromConfig(cfg *SessionConfig, backendName, tpl string) *wmlog.Meta {
	return &wmlog.Meta{
		Backend:   backendName,
		Procs:     cfg.Procs,
		Queues:    cfg.Queues,
		Locks:     cfg.Locks,
		HashLines: cfg.HashLines,
		CSShards:  cfg.CSShards,
		FireBatch: cfg.FireBatch,
		Template:  tpl,

		ReorderJoins: cfg.ReorderJoins,
		MatchBudget:  cfg.MatchBudget,
		Unlink:       cfg.Unlink,
		Watch:        cfg.Watch,
	}
}

// configFromMeta rebuilds the session config recovery needs.
func configFromMeta(m *wmlog.Meta, program string) SessionConfig {
	return SessionConfig{
		Program:   program,
		Matcher:   m.Backend,
		Procs:     m.Procs,
		Queues:    m.Queues,
		Locks:     m.Locks,
		HashLines: m.HashLines,
		CSShards:  m.CSShards,
		FireBatch: m.FireBatch,

		ReorderJoins: m.ReorderJoins,
		MatchBudget:  m.MatchBudget,
		Unlink:       m.Unlink,
		Watch:        m.Watch,
	}
}

// persistSession creates the durable state of a brand-new session —
// entry directory, program source, meta, empty delta log — and returns
// the journal to install. templateID is empty for cold sessions.
func (s *Server) persistSession(id string, cfg *SessionConfig, backendName, templateID string, hash [sha256.Size]byte, tab *symbols.Table) (*sessionJournal, string, error) {
	dir, err := s.dur.store.EntryDir(wmlog.KindSession, id)
	if err != nil {
		return nil, "", err
	}
	if err := os.WriteFile(wmlog.ProgramPath(dir), []byte(cfg.Program), 0o644); err != nil {
		return nil, "", fmt.Errorf("persist program: %w", err)
	}
	if err := wmlog.WriteMeta(dir, metaFromConfig(cfg, backendName, templateID)); err != nil {
		return nil, "", fmt.Errorf("persist meta: %w", err)
	}
	w, err := wmlog.Create(wmlog.LogPath(dir), hash, s.dur.policy, 0)
	if err != nil {
		return nil, "", fmt.Errorf("create delta log: %w", err)
	}
	return &sessionJournal{w: w, tab: tab}, dir, nil
}

// commitLocked is the per-batch durability point: surface any sticky
// journal error, commit the log under the sync policy, fold writer
// stats, and run the snapshot cadence. Caller holds the session mutex.
func (s *Server) commitLocked(sess *Session) error {
	j := sess.journal
	if j == nil {
		return nil
	}
	if j.err == nil {
		j.err = j.w.Commit()
	}
	if j.err != nil {
		// The on-disk log no longer tracks the in-memory session; broken
		// is the honest state. Restore rebuilds from the durable prefix.
		sess.broken = fmt.Errorf("%w: journal: %v", ErrSessionBroken, j.err)
		return sess.broken
	}
	s.foldDurLocked(sess)
	sess.batches++
	if s.dur.snapEvery > 0 && sess.batches >= s.dur.snapEvery {
		if err := s.compactLocked(sess); err != nil {
			return err
		}
	}
	return nil
}

// foldDurLocked folds the session's writer-stats delta into /metrics.
func (s *Server) foldDurLocked(sess *Session) {
	if sess.journal == nil {
		return
	}
	cur := sess.journal.w.Stats()
	delta := cur
	delta.Sub(&sess.prevDur)
	sess.prevDur = cur
	s.met.foldWriter(&delta)
}

// compactLocked snapshots the session and truncates its delta log.
// The snapshot is written twice around the truncate so every crash
// window leaves a (snapshot, log) pair that recovers to this state:
// first covering the full log (a crash before the truncate replays
// nothing past it), then covering the empty log (so subsequently
// appended records replay from the log head). Caller holds the session
// mutex; the engine must be settled.
func (s *Server) compactLocked(sess *Session) error {
	j := sess.journal
	if j == nil {
		return ErrNotDurable
	}
	if err := j.w.Commit(); err != nil {
		return err
	}
	st := sess.eng.CaptureState()
	st.ProgHash = sess.progHash
	st.LogOffset = j.w.Size()
	path := wmlog.SnapshotPath(sess.dir)
	if _, err := wmlog.WriteSnapshot(path, st); err != nil {
		return err
	}
	if err := j.w.Truncate(); err != nil {
		return err
	}
	st.LogOffset = int64(wmlog.HeaderSize)
	n, err := wmlog.WriteSnapshot(path, st)
	if err != nil {
		return err
	}
	sess.batches = 0
	s.met.snapshotTaken(n)
	return nil
}

// SnapshotResult reports an explicit snapshot request.
type SnapshotResult struct {
	Bytes   int    `json:"bytes"`
	WMSize  int    `json:"wm_size"`
	Hash    string `json:"hash"`
	Elapsed int64  `json:"elapsed_us"`
}

// SnapshotSession snapshots one session on demand (POST
// /sessions/{id}/snapshot), compacting its delta log.
func (s *Server) SnapshotSession(id string) (*SnapshotResult, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.broken != nil {
		return nil, sess.broken
	}
	if sess.journal == nil {
		return nil, ErrNotDurable
	}
	start := time.Now()
	if err := s.compactLocked(sess); err != nil {
		return nil, err
	}
	st, err := wmlog.ReadSnapshot(wmlog.SnapshotPath(sess.dir))
	if err != nil {
		return nil, err
	}
	h, err := st.Hash()
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(wmlog.SnapshotPath(sess.dir))
	if err != nil {
		return nil, err
	}
	return &SnapshotResult{
		Bytes:   int(fi.Size()),
		WMSize:  sess.eng.WM.Len(),
		Hash:    fmt.Sprintf("%x", h),
		Elapsed: time.Since(start).Microseconds(),
	}, nil
}

// rebuildFromDisk reconstructs a session's engine from its persisted
// state: program parse/compile (cache-shared), snapshot restore through
// the match machinery, delta-log replay, torn-tail truncation. Returns
// the rebuilt parts; the caller installs them into a Session.
func (s *Server) rebuildFromDisk(id string) (sess *Session, replayed int, torn bool, err error) {
	dir, err := s.dur.store.EntryDir(wmlog.KindSession, id)
	if err != nil {
		return nil, 0, false, err
	}
	src, err := os.ReadFile(wmlog.ProgramPath(dir))
	if err != nil {
		return nil, 0, false, fmt.Errorf("read program: %w", err)
	}
	meta, err := wmlog.ReadMeta(dir)
	if err != nil {
		return nil, 0, false, fmt.Errorf("read meta: %w", err)
	}
	cfg := configFromMeta(meta, string(src))
	sp, hash, _, err := s.sharedProg(cfg.Program)
	if err != nil {
		return nil, 0, false, err
	}
	net, err := sp.netFor(&cfg)
	if err != nil {
		return nil, 0, false, err
	}
	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	m, backendName, err := newBackend(net, cfg, cs)
	if err != nil {
		return nil, 0, false, err
	}
	sp.newEng.Lock()
	eng, err := engine.New(sp.prog, net, cs, m, nil)
	sp.newEng.Unlock()
	if err != nil {
		m.Close()
		return nil, 0, false, fmt.Errorf("rhs compile: %w", err)
	}
	// Install the input queue before restore/replay: snapshot Pending
	// restores into it and RecAccept/RecAcceptTake records replay
	// through it.
	eng.IO = engine.NewQueueIO(sp.prog.Symbols, false)
	watch, err := resolveWatch(cfg.Watch, sp.prog)
	if err != nil {
		m.Close()
		return nil, 0, false, err
	}
	fail := func(e error) (*Session, int, bool, error) {
		m.Close()
		return nil, 0, false, e
	}

	snap, err := wmlog.ReadSnapshot(wmlog.SnapshotPath(dir))
	if err != nil {
		return fail(fmt.Errorf("read snapshot: %w", err))
	}
	var from int64
	if snap != nil {
		if snap.ProgHash != hash {
			return fail(fmt.Errorf("snapshot belongs to a different program"))
		}
		if err := eng.RestoreState(snap); err != nil {
			return fail(fmt.Errorf("restore snapshot: %w", err))
		}
		from = snap.LogOffset
	}
	cleanLen := int64(0)
	logPath := wmlog.LogPath(dir)
	res, err := wmlog.ReadAll(logPath, from)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No log yet (e.g. a fork persisted only its snapshot before a
		// crash): recover from the snapshot alone.
	case err != nil:
		return fail(fmt.Errorf("read log: %w", err))
	default:
		if res.ProgHash != hash {
			return fail(fmt.Errorf("delta log belongs to a different program"))
		}
		if err := eng.ReplayRecords(res.Records); err != nil {
			return fail(fmt.Errorf("replay: %w", err))
		}
		replayed = len(res.Records)
		torn = res.Torn
		cleanLen = res.CleanLen
	}
	w, err := wmlog.Create(logPath, hash, s.dur.policy, cleanLen)
	if err != nil {
		return fail(fmt.Errorf("reopen log: %w", err))
	}
	sess = &Session{
		ID:          id,
		Backend:     backendName,
		Created:     time.Now(),
		sp:          sp,
		cfg:         cfg,
		eng:         eng,
		matcher:     m,
		dir:         dir,
		progHash:    hash,
		journal:     &sessionJournal{w: w, tab: sp.prog.Symbols},
		template:    meta.Template,
		fireBatch:   clampFireBatch(cfg.FireBatch),
		matchBudget: cfg.MatchBudget,
		watch:       watch,
	}
	return sess, replayed, torn, nil
}

// recoverSession rebuilds one persisted session at startup and
// registers it under its original ID.
func (s *Server) recoverSession(id string) error {
	sess, replayed, torn, err := s.rebuildFromDisk(id)
	if err != nil {
		return err
	}
	sess.eng.SetJournal(sess.journal)
	s.mu.Lock()
	s.sessions[id] = sess
	sess.sp.refs++
	s.bumpNextID(id)
	s.mu.Unlock()
	s.met.sessionCreated()
	s.met.recovered(replayed, torn)
	s.foldStats(sess)
	return nil
}

// bumpNextID advances the ID counter past a recovered entry's numeric
// suffix so new sessions never collide with recovered ones. Caller
// holds the server mutex.
func (s *Server) bumpNextID(id string) {
	var n uint64
	if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// RestoreSession tears a session's live engine down and rebuilds it
// from its durable state — the last snapshot plus the clean delta-log
// prefix. It is both the rollback endpoint and the way out of a panic
// quarantine: the rebuilt engine replaces the broken one.
func (s *Server) RestoreSession(id string) (*SessionInfo, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.journal == nil {
		return nil, ErrNotDurable
	}
	// Release the current engine: fold what its counters say, close the
	// log fd so the rebuild can reopen the file, stop the matcher.
	s.foldStatsLocked(sess)
	s.foldDurLocked(sess)
	sess.journal.close()
	sess.matcher.Close()

	fresh, replayed, torn, err := s.rebuildFromDisk(id)
	if err != nil {
		// The session is now unusable; keep it quarantined.
		sess.broken = fmt.Errorf("%w: restore failed: %v", ErrSessionBroken, err)
		return nil, sess.broken
	}
	fresh.eng.SetJournal(fresh.journal)
	sess.eng = fresh.eng
	sess.matcher = fresh.matcher
	sess.journal = fresh.journal
	sess.watch = fresh.watch
	sess.broken = nil
	sess.batches = 0
	sess.prev, sess.prevCont, sess.prevConf = fresh.prev, fresh.prevCont, fresh.prevConf
	sess.prevEpoch, sess.prevMem, sess.prevDur = fresh.prevEpoch, fresh.prevMem, fresh.prevDur
	s.met.recovered(replayed, torn)
	s.foldStatsLocked(sess)
	return &SessionInfo{
		ID:       sess.ID,
		Backend:  sess.Backend,
		Rules:    len(sess.eng.Net.Rules),
		Epoch:    sess.eng.Epoch(),
		WMSize:   sess.eng.WM.Len(),
		Halted:   sess.eng.Halted(),
		Template: sess.template,
	}, nil
}

// removeDurable deletes a session's or template's on-disk state when it
// is deleted through the API (recovery must not resurrect it).
func (s *Server) removeDurable(kind wmlog.Kind, id string) {
	if s.dur != nil {
		_ = s.dur.store.Remove(kind, id)
	}
}
