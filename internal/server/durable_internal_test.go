package server

import (
	"errors"
	"testing"
)

// TestQuarantineReleasesLog checks the durable half of the panic
// quarantine: a broken session's delta-log fd is closed (nothing pins
// the file), and the log it leaves behind is a clean prefix — restore
// rebuilds the session from it, clearing the quarantine.
func TestQuarantineReleasesLog(t *testing.T) {
	s := New(Options{DataDir: t.TempDir(), Durability: "commit"})
	defer s.Close()
	if _, err := s.EnableDurability(); err != nil {
		t.Fatal(err)
	}

	info, err := s.CreateSession(SessionConfig{Program: qsrc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Batch(info.ID, &BatchRequest{
		Asserts: []WMEInput{{Class: "req", Attrs: map[string]any{"n": 1}}},
	}); err != nil {
		t.Fatal(err)
	}

	sess, err := s.session(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sess.journal == nil || sess.journal.w.Closed() {
		t.Fatal("session should hold an open journal before the panic")
	}
	if err := s.guard(sess, func() error { panic("rhs gone rogue") }); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("guard returned %v, want ErrSessionBroken", err)
	}
	if !sess.journal.w.Closed() {
		t.Fatal("quarantined session still pins its delta-log fd")
	}
	if _, err := s.Batch(info.ID, &BatchRequest{}); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("batch on broken session: %v", err)
	}

	// Restore is the way out: rebuild from the durable prefix.
	if _, err := s.RestoreSession(info.ID); err != nil {
		t.Fatalf("restore after quarantine: %v", err)
	}
	res, err := s.Batch(info.ID, &BatchRequest{
		Asserts: []WMEInput{{Class: "req", Attrs: map[string]any{"n": 2}}},
	})
	if err != nil || len(res.Firings) != 1 {
		t.Fatalf("batch after restore: res=%+v err=%v", res, err)
	}
}
