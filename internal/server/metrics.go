package server

import (
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/wmlog"
)

// metrics is the server-wide counter sink: stats.Server counters, the
// folded stats.Match and stats.Contention totals of every session (live
// and closed), latency histograms and count histograms. One mutex
// guards it all — updates are a handful of integer adds, far off the
// match hot path.
type metrics struct {
	mu    sync.Mutex
	srv   stats.Server
	match stats.Match
	cont  stats.Contention
	conf  stats.Conflict
	epoch stats.Epoch
	mem   stats.Memory
	act   stats.Act
	dur   stats.Durability
	// lastSnap is when any session snapshot was last written, for the
	// snapshot-age gauge.
	lastSnap time.Time
	hists    map[string]*stats.Histogram // latency, µs
	counts   map[string]*stats.Histogram // sizes, items (ObserveCount)
}

// Latency histogram keys.
const (
	histRequest = "request" // whole-request latency, µs
	histRun     = "run"     // recognize-act run portion, µs
)

// Count histogram keys.
const (
	countBatch = "batch_items" // WM changes per batch
)

func (m *metrics) init() {
	m.hists = map[string]*stats.Histogram{
		histRequest: {},
		histRun:     {},
	}
	m.counts = map[string]*stats.Histogram{
		countBatch: {},
	}
}

func (m *metrics) sessionCreated() {
	m.mu.Lock()
	m.srv.SessionsCreated++
	m.srv.SessionsLive++
	m.mu.Unlock()
}

func (m *metrics) sessionClosed() {
	m.mu.Lock()
	m.srv.SessionsClosed++
	m.srv.SessionsLive--
	m.mu.Unlock()
}

// programRegistered records one program registered via POST /programs.
func (m *metrics) programRegistered() {
	m.mu.Lock()
	m.srv.ProgramsRegistered++
	m.mu.Unlock()
}

// programCompiled records one parse+Rete compile of a program body.
func (m *metrics) programCompiled() {
	m.mu.Lock()
	m.srv.ProgramCompiles++
	m.mu.Unlock()
}

// programHit records one session create that reused an already-compiled
// program (by hash or by byte-identical source) instead of compiling.
func (m *metrics) programHit() {
	m.mu.Lock()
	m.srv.ProgramHits++
	m.mu.Unlock()
}

func (m *metrics) panicked() {
	m.mu.Lock()
	m.srv.Panics++
	m.mu.Unlock()
}

// request records one API request and its total latency.
func (m *metrics) request(d time.Duration, failed bool) {
	m.mu.Lock()
	m.srv.Requests++
	if failed {
		m.srv.RequestErrors++
	}
	m.hists[histRequest].Observe(d)
	m.mu.Unlock()
}

// batchDone records the outcome of one executed batch.
func (m *metrics) batchDone(asserts, retracts int, res *BatchResult, d time.Duration) {
	m.mu.Lock()
	m.srv.Batches++
	m.srv.BatchItems += int64(asserts + retracts)
	m.srv.Asserts += int64(asserts)
	m.srv.Retracts += int64(retracts)
	m.srv.Cycles += int64(res.Cycles)
	// One recognize-act cycle fires exactly one instantiation, whether
	// or not the request asked for the firing log.
	m.srv.Firings += int64(res.Cycles)
	if res.LimitHit {
		m.srv.LimitStops++
	}
	m.hists[histRun].Observe(d)
	m.counts[countBatch].ObserveCount(int64(asserts + retracts))
	m.mu.Unlock()
}

func (m *metrics) foldMatch(delta *stats.Match) {
	m.mu.Lock()
	m.match.Add(delta)
	m.mu.Unlock()
}

func (m *metrics) foldContention(delta *stats.Contention) {
	m.mu.Lock()
	m.cont.Add(delta)
	m.mu.Unlock()
}

func (m *metrics) foldConflict(delta *stats.Conflict) {
	m.mu.Lock()
	m.conf.Add(delta)
	m.mu.Unlock()
}

func (m *metrics) foldEpoch(delta *stats.Epoch) {
	m.mu.Lock()
	m.epoch.Add(delta)
	m.mu.Unlock()
}

func (m *metrics) foldMemory(delta *stats.Memory) {
	m.mu.Lock()
	m.mem.Add(delta)
	m.mu.Unlock()
}

func (m *metrics) foldAct(delta *stats.Act) {
	m.mu.Lock()
	m.act.Add(delta)
	m.mu.Unlock()
}

// foldWriter folds one session's delta-log writer counters.
func (m *metrics) foldWriter(delta *wmlog.WriterStats) {
	m.mu.Lock()
	m.dur.LogRecords += delta.Records
	m.dur.LogBytes += delta.Bytes
	m.dur.LogCommits += delta.Commits
	m.dur.Fsyncs += delta.Fsyncs
	m.dur.FsyncUs += delta.FsyncUs
	m.mu.Unlock()
}

func (m *metrics) snapshotTaken(bytes int) {
	m.mu.Lock()
	m.dur.Snapshots++
	m.dur.SnapshotBytes += int64(bytes)
	m.lastSnap = time.Now()
	m.mu.Unlock()
}

func (m *metrics) forked() {
	m.mu.Lock()
	m.dur.Forks++
	m.mu.Unlock()
}

func (m *metrics) templateCreated() {
	m.mu.Lock()
	m.dur.TemplatesLive++
	m.mu.Unlock()
}

func (m *metrics) templateClosed() {
	m.mu.Lock()
	m.dur.TemplatesLive--
	m.mu.Unlock()
}

// recovered records one session or template rebuilt from durable state.
func (m *metrics) recovered(replayed int, torn bool) {
	m.mu.Lock()
	m.dur.Recoveries++
	m.dur.ReplayedRecords += int64(replayed)
	if torn {
		m.dur.TornTails++
	}
	m.mu.Unlock()
}

// Snapshot returns the point-in-time metrics view served by /metrics.
func (s *Server) Snapshot() stats.Snapshot {
	s.met.mu.Lock()
	defer s.met.mu.Unlock()
	snap := stats.Snapshot{
		Server:     s.met.srv,
		Match:      s.met.match,
		Contention: s.met.cont,
		Conflict:   s.met.conf,
		Epoch:      s.met.epoch,
		Memory:     s.met.mem,
		Act:        s.met.act,
		Durability: s.met.dur,
		Latency:    make(map[string]stats.LatencySummary, len(s.met.hists)),
		Counts:     make(map[string]stats.CountSummary, len(s.met.counts)),
	}
	if s.met.lastSnap.IsZero() {
		snap.Durability.SnapshotAgeSec = -1
	} else {
		snap.Durability.SnapshotAgeSec = int64(time.Since(s.met.lastSnap).Seconds())
	}
	for k, h := range s.met.hists {
		snap.Latency[k] = h.Summary()
	}
	for k, h := range s.met.counts {
		snap.Counts[k] = h.CountSummary()
	}
	return snap
}
