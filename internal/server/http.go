package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the HTTP/JSON API over the session manager:
//
//	POST   /sessions                 create a session (SessionConfig body)
//	GET    /sessions                 list live sessions
//	POST   /sessions/{id}/assert     run a batch (BatchRequest body)
//	POST   /sessions/{id}/retract    same handler; retract-flavored alias
//	POST   /sessions/{id}/program    runtime build/excise (ProgramRequest body)
//	GET    /sessions/{id}/wm         working-memory snapshot
//	POST   /sessions/{id}/snapshot   snapshot + compact the delta log
//	POST   /sessions/{id}/restore    rebuild the session from durable state
//	GET    /sessions/{id}/export     portable session state (ExportPayload)
//	POST   /sessions/import          recreate an exported session here
//	DELETE /sessions/{id}            tear a session down
//	POST   /programs                 register a program by content ({"program": src})
//	GET    /programs                 list registered programs
//	GET    /programs/{hash}          a registered program's source
//	POST   /templates                create a warm template (TemplateConfig body)
//	GET    /templates                list templates
//	POST   /templates/{id}/fork      fork a template into a new session
//	DELETE /templates/{id}           drop a template
//	GET    /metrics                  stats.Snapshot JSON
//	GET    /healthz                  liveness + session count + boot_id
//
// Session work (create, batch) executes on the worker pool; reads are
// served inline.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.timed(s.handleCreate))
	mux.HandleFunc("GET /sessions", s.timed(s.handleList))
	mux.HandleFunc("POST /sessions/{id}/assert", s.timed(s.handleBatch))
	mux.HandleFunc("POST /sessions/{id}/retract", s.timed(s.handleBatch))
	mux.HandleFunc("POST /sessions/{id}/program", s.timed(s.handleProgram))
	mux.HandleFunc("GET /sessions/{id}/wm", s.timed(s.handleWM))
	mux.HandleFunc("POST /sessions/{id}/snapshot", s.timed(s.handleSnapshot))
	mux.HandleFunc("POST /sessions/{id}/restore", s.timed(s.handleRestore))
	mux.HandleFunc("GET /sessions/{id}/export", s.timed(s.handleExport))
	mux.HandleFunc("POST /sessions/import", s.timed(s.handleImport))
	mux.HandleFunc("DELETE /sessions/{id}", s.timed(s.handleDelete))
	mux.HandleFunc("POST /programs", s.timed(s.handleRegisterProgram))
	mux.HandleFunc("GET /programs", s.timed(s.handleListPrograms))
	mux.HandleFunc("GET /programs/{hash}", s.timed(s.handleProgramSource))
	mux.HandleFunc("POST /templates", s.timed(s.handleCreateTemplate))
	mux.HandleFunc("GET /templates", s.timed(s.handleListTemplates))
	mux.HandleFunc("POST /templates/{id}/fork", s.timed(s.handleFork))
	mux.HandleFunc("DELETE /templates/{id}", s.timed(s.handleDeleteTemplate))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		n, progs, closed := len(s.sessions), len(s.programs), s.closed
		s.mu.RUnlock()
		if closed {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false})
			return
		}
		// boot_id lets a routing proxy detect a restart (and invalidate
		// its view of which programs this backend holds).
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "sessions": n, "programs": progs, "boot_id": s.bootID,
		})
	})
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// handlerErr lets handlers return an error + status for uniform
// accounting in timed.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (status int, err error)

// timed wraps a handler with request metrics.
func (s *Server) timed(h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status, err := h(w, r)
		if err != nil {
			writeJSON(w, status, apiError{Error: err.Error()})
		}
		s.met.request(time.Since(start), err != nil)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

// statusOf maps server errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNoSession), errors.Is(err, ErrNoTemplate):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoProgram):
		// 424: the create names a program this backend doesn't hold —
		// register it (POST /programs) and retry.
		return http.StatusFailedDependency
	case errors.Is(err, ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, ErrClosed), errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrSessionBroken):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) (int, error) {
	var cfg SessionConfig
	if err := decodeBody(r, &cfg); err != nil {
		return http.StatusBadRequest, err
	}
	if cfg.Program == "" && cfg.ProgramHash == "" {
		return http.StatusBadRequest, errors.New("missing program source (or program_hash)")
	}
	var (
		info *SessionInfo
		err  error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		info, err = s.CreateSession(cfg)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusCreated, info)
	return http.StatusCreated, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.Sessions()})
	return http.StatusOK, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	var (
		res *BatchResult
		err error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		res, err = s.Batch(id, &req)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, res)
	return http.StatusOK, nil
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	var req ProgramRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	var (
		res *ProgramResult
		err error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		res, err = s.Program(id, &req)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, res)
	return http.StatusOK, nil
}

func (s *Server) handleWM(w http.ResponseWriter, r *http.Request) (int, error) {
	wmes, err := s.WMSnapshot(r.PathValue("id"))
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, map[string]any{"wmes": wmes, "size": len(wmes)})
	return http.StatusOK, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		return statusOf(err), err
	}
	w.WriteHeader(http.StatusNoContent)
	return http.StatusNoContent, nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	var (
		res *SnapshotResult
		err error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		res, err = s.SnapshotSession(id)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, res)
	return http.StatusOK, nil
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	var (
		info *SessionInfo
		err  error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		info, err = s.RestoreSession(id)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, info)
	return http.StatusOK, nil
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) (int, error) {
	p, err := s.ExportSession(r.PathValue("id"))
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, p)
	return http.StatusOK, nil
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) (int, error) {
	var p ExportPayload
	if err := decodeBody(r, &p); err != nil {
		return http.StatusBadRequest, err
	}
	var (
		info *SessionInfo
		err  error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		info, err = s.ImportSession(&p)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusCreated, info)
	return http.StatusCreated, nil
}

// programBody is the POST /programs request.
type programBody struct {
	Program string `json:"program"`
}

func (s *Server) handleRegisterProgram(w http.ResponseWriter, r *http.Request) (int, error) {
	var body programBody
	if err := decodeBody(r, &body); err != nil {
		return http.StatusBadRequest, err
	}
	var (
		info *ProgramInfo
		err  error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		info, err = s.RegisterProgram(body.Program)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusCreated, info)
	return http.StatusCreated, nil
}

func (s *Server) handleListPrograms(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, map[string]any{"programs": s.Programs()})
	return http.StatusOK, nil
}

func (s *Server) handleProgramSource(w http.ResponseWriter, r *http.Request) (int, error) {
	src, err := s.ProgramSource(r.PathValue("hash"))
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusOK, programBody{Program: src})
	return http.StatusOK, nil
}

func (s *Server) handleCreateTemplate(w http.ResponseWriter, r *http.Request) (int, error) {
	var cfg TemplateConfig
	if err := decodeBody(r, &cfg); err != nil {
		return http.StatusBadRequest, err
	}
	if cfg.Program == "" {
		return http.StatusBadRequest, errors.New("missing program source")
	}
	var (
		info *TemplateInfo
		err  error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		info, err = s.CreateTemplate(&cfg)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusCreated, info)
	return http.StatusCreated, nil
}

func (s *Server) handleListTemplates(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, map[string]any{"templates": s.Templates()})
	return http.StatusOK, nil
}

func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	var (
		res *ForkResult
		err error
	)
	if poolErr := s.pool.do(r.Context(), func() {
		res, err = s.Fork(id)
	}); poolErr != nil {
		return statusOf(poolErr), poolErr
	}
	if err != nil {
		return statusOf(err), err
	}
	writeJSON(w, http.StatusCreated, res)
	return http.StatusCreated, nil
}

func (s *Server) handleDeleteTemplate(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := s.DeleteTemplate(r.PathValue("id")); err != nil {
		return statusOf(err), err
	}
	w.WriteHeader(http.StatusNoContent)
	return http.StatusNoContent, nil
}

// decodeBody strictly decodes a JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}
