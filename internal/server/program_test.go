package server_test

import (
	"net/http"
	"testing"

	"repro/internal/server"
	"repro/internal/stats"
)

// lateSrc is the rule hot-built into a running session: it consumes
// the resp elements that answer produced before the rule existed, so
// firing it at all proves WM replay onto the new epoch.
const lateSrc = `(p late (resp ^n <n>) --> (remove 1))`

func createSession(t *testing.T, c *http.Client, base, program string) *server.SessionInfo {
	t.Helper()
	var info server.SessionInfo
	code := call(t, c, "POST", base+"/sessions", server.SessionConfig{Program: program}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return &info
}

func sessionByID(t *testing.T, c *http.Client, base, id string) *server.SessionInfo {
	t.Helper()
	var list struct {
		Sessions []server.SessionInfo `json:"sessions"`
	}
	if code := call(t, c, "GET", base+"/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	for i := range list.Sessions {
		if list.Sessions[i].ID == id {
			return &list.Sessions[i]
		}
	}
	t.Fatalf("session %s not in listing", id)
	return nil
}

// TestProgramHotSwapIsolation: two sessions share one compiled base
// network; a runtime build in one hops that session onto a private
// epoch, replays its working memory, and leaves the sibling session —
// and the shared base — untouched.
func TestProgramHotSwapIsolation(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	a := createSession(t, c, ts.URL, pingSrc)
	b := createSession(t, c, ts.URL, pingSrc)
	if !b.SharedNet {
		t.Fatal("second session should share the compiled network")
	}

	// Three answered requests leave three resp elements in A's WM.
	if res := assertN(t, c, ts.URL, a.ID, 1, 3); res.WMSize != 3 {
		t.Fatalf("A wm_size = %d after 3 answered reqs, want 3", res.WMSize)
	}

	var pr server.ProgramResult
	code := call(t, c, "POST", ts.URL+"/sessions/"+a.ID+"/program",
		server.ProgramRequest{Source: lateSrc}, &pr)
	if code != http.StatusOK {
		t.Fatalf("program: status %d", code)
	}
	if len(pr.Added) != 1 || pr.Added[0] != "late" || pr.Epoch != 1 || pr.Rules != 2 {
		t.Fatalf("program result %+v, want late added at epoch 1 with 2 rules", pr)
	}

	// The listing shows the divergence: A on epoch 1 with 2 rules, B
	// still on the shared epoch-0 base.
	if got := sessionByID(t, c, ts.URL, a.ID); got.Epoch != 1 || got.Rules != 2 {
		t.Fatalf("A listed as epoch %d / %d rules, want 1 / 2", got.Epoch, got.Rules)
	}
	if got := sessionByID(t, c, ts.URL, b.ID); got.Epoch != 0 || got.Rules != 1 {
		t.Fatalf("B listed as epoch %d / %d rules, want 0 / 1", got.Epoch, got.Rules)
	}

	// One more request to A: answer fires once (making a 4th resp), and
	// late fires on all four resp elements — three of them replayed WM
	// asserted before the rule existed.
	res := assertN(t, c, ts.URL, a.ID, 4, 1)
	late := 0
	for _, f := range res.Firings {
		if f.Rule == "late" {
			late++
		}
	}
	if late != 4 || res.WMSize != 0 {
		t.Fatalf("late fired %d times leaving wm_size %d, want 4 firings and empty WM", late, res.WMSize)
	}

	// B's behavior is unchanged: requests are answered, resp elements
	// accumulate, nothing consumes them.
	if res := assertN(t, c, ts.URL, b.ID, 1, 2); res.WMSize != 2 {
		t.Fatalf("B wm_size = %d, want 2 (no late rule there)", res.WMSize)
	}

	// Excise through the same endpoint: A drops back to one rule on a
	// fresh epoch.
	code = call(t, c, "POST", ts.URL+"/sessions/"+a.ID+"/program",
		server.ProgramRequest{Excise: []string{"late"}}, &pr)
	if code != http.StatusOK {
		t.Fatalf("excise: status %d", code)
	}
	if len(pr.Excised) != 1 || pr.Epoch != 2 || pr.Rules != 1 {
		t.Fatalf("excise result %+v, want late gone at epoch 2 with 1 rule", pr)
	}

	// Server metrics fold the per-session epoch counters.
	var snap stats.Snapshot
	if code := call(t, c, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Epoch.Swaps < 2 || snap.Epoch.RulesAdded != 1 || snap.Epoch.RulesExcised != 1 {
		t.Fatalf("metrics epoch = %+v, want >=2 swaps, 1 added, 1 excised", snap.Epoch)
	}
	if snap.Epoch.ReplayedWMEs < 3 {
		t.Fatalf("metrics replayed = %d, want >= 3 (A's resp elements)", snap.Epoch.ReplayedWMEs)
	}
}

// TestProgramEndpointErrors: bad session, empty change, unknown rule,
// and frozen-program violations map to 4xx statuses.
func TestProgramEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()
	sess := createSession(t, c, ts.URL, pingSrc)

	var apiErr struct {
		Error string `json:"error"`
	}
	if code := call(t, c, "POST", ts.URL+"/sessions/nope/program",
		server.ProgramRequest{Source: lateSrc}, &apiErr); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+sess.ID+"/program",
		server.ProgramRequest{}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("empty change: status %d", code)
	}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+sess.ID+"/program",
		server.ProgramRequest{Excise: []string{"ghost"}}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("unknown excise: status %d", code)
	}
	// New classes cannot be introduced at runtime: the program is frozen.
	if code := call(t, c, "POST", ts.URL+"/sessions/"+sess.ID+"/program",
		server.ProgramRequest{Source: `(p x (mystery ^f 1) --> (halt))`}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("frozen class: status %d", code)
	}
	// The failed batch left the session usable on its original epoch.
	if got := sessionByID(t, c, ts.URL, sess.ID); got.Epoch != 0 || got.Rules != 1 {
		t.Fatalf("session after failed builds: epoch %d rules %d, want 0 / 1", got.Epoch, got.Rules)
	}
	if res := assertN(t, c, ts.URL, sess.ID, 1, 1); res.WMSize != 1 {
		t.Fatalf("post-error batch wm_size = %d, want 1", res.WMSize)
	}
}
