package server_test

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestConcurrentSessionLifecycle hammers one server with parallel
// create/batch/list/delete/program traffic — the interleavings a
// routing proxy generates when many clients share one backend. Run
// under -race this is primarily a synchronization test; the invariant
// checks catch lost sessions and refcount drift.
func TestConcurrentSessionLifecycle(t *testing.T) {
	srv, ts := newTestServer(t)
	c := &http.Client{Timeout: 10 * time.Second}

	const (
		workers  = 8
		perGoro  = 12
		listGoro = 2
	)
	var created, deleted atomic.Int64
	var wg sync.WaitGroup

	// Creators/deleters: each worker creates, exercises, and deletes its
	// own sessions, half by requested ID (the proxy path), half server-
	// assigned.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				cfg := server.SessionConfig{Program: pingSrc}
				if i%2 == 0 {
					cfg.ID = fmt.Sprintf("w%d-s%d", w, i)
				}
				var info server.SessionInfo
				code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info)
				if code != http.StatusCreated {
					t.Errorf("create: status %d", code)
					return
				}
				created.Add(1)
				res := assertN(t, c, ts.URL, info.ID, i*10, 3)
				if len(res.Firings) != 3 {
					t.Errorf("firings = %d, want 3", len(res.Firings))
				}
				if code := call(t, c, "DELETE", ts.URL+"/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
					t.Errorf("delete: status %d", code)
					return
				}
				deleted.Add(1)
			}
		}(w)
	}
	// Listers: continuously read /sessions and /metrics while the churn
	// runs. Every row must be well-formed.
	stop := make(chan struct{})
	for l := 0; l < listGoro; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var lst struct {
					Sessions []server.SessionInfo `json:"sessions"`
				}
				if code := call(t, c, "GET", ts.URL+"/sessions", nil, &lst); code != http.StatusOK {
					t.Errorf("list: status %d", code)
					return
				}
				for _, s := range lst.Sessions {
					if s.ID == "" {
						t.Error("listing shows a session with no ID")
						return
					}
				}
				call(t, c, "GET", ts.URL+"/metrics", nil, nil)
			}
		}()
	}
	// Duplicate-ID race: many goroutines request the same ID at once;
	// exactly one create may win each round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			id := fmt.Sprintf("dup-%d", round)
			var wins atomic.Int64
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc, ID: id}, nil)
					switch code {
					case http.StatusCreated:
						wins.Add(1)
					case http.StatusConflict:
					default:
						t.Errorf("dup create: status %d", code)
					}
				}()
			}
			inner.Wait()
			if n := wins.Load(); n != 1 {
				t.Errorf("round %d: %d creates of one ID won, want exactly 1", round, n)
			}
			if code := call(t, c, "DELETE", ts.URL+"/sessions/"+id, nil, nil); code != http.StatusNoContent {
				t.Errorf("dup delete: status %d", code)
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// The listers spin until the workers finish; poll the counters to
	// know when to stop them.
	deadlineT := time.After(60 * time.Second)
	for created.Load() < workers*perGoro || deleted.Load() < workers*perGoro {
		select {
		case <-deadlineT:
			close(stop)
			t.Fatalf("timeout: created=%d deleted=%d", created.Load(), deleted.Load())
		case <-time.After(10 * time.Millisecond):
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	<-done

	if t.Failed() {
		return
	}
	// Everything churned away: no sessions left, counters consistent.
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions leaked", n)
	}
	snap := srv.Snapshot()
	if snap.Server.SessionsLive != 0 {
		t.Fatalf("sessions_live = %d, want 0", snap.Server.SessionsLive)
	}
	if snap.Server.SessionsCreated != snap.Server.SessionsClosed {
		t.Fatalf("created %d != closed %d", snap.Server.SessionsCreated, snap.Server.SessionsClosed)
	}
	// One program source shared across every create: exactly one compile.
	if snap.Server.ProgramCompiles != 1 {
		t.Fatalf("program compiles = %d, want 1 (shared cache)", snap.Server.ProgramCompiles)
	}
}
