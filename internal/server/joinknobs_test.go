package server_test

import (
	"net/http"
	"testing"

	"repro/internal/server"
	"repro/internal/stats"
)

// crossBudgetSrc pairs a harmless per-element rule with a genuine
// cross-product rule: no shared variables connect its junk condition
// elements, so no join order avoids the quadratic scan — exactly the
// shape the match budget exists for.
const crossBudgetSrc = `
(literalize req n)
(literalize junk n)
(p eat
  (req ^n <n>)
-->
  (remove 1))
(p cross
  (req ^n <x>)
  (junk ^n <a>)
  (junk ^n <b>)
-->
  (remove 1))
(make junk ^n 1) (make junk ^n 2) (make junk ^n 3) (make junk ^n 4)
(make junk ^n 5) (make junk ^n 6) (make junk ^n 7) (make junk ^n 8)
`

// TestSessionMatchBudget creates a session with a per-cycle match
// budget, trips it over HTTP, and checks the quarantine surfaces in the
// batch result and the epoch budget_trips metric.
func TestSessionMatchBudget(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	var info server.SessionInfo
	cfg := server.SessionConfig{Program: crossBudgetSrc, MatchBudget: 50}
	if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	// Each req assert re-activates cross's junk×junk cross product
	// (8×8 = 64 pairs per element, over the budget of 50).
	res := assertN(t, c, ts.URL, info.ID, 1, 4)
	if len(res.Quarantined) != 1 || res.Quarantined[0] != "cross" {
		t.Fatalf("quarantined = %v, want [cross]", res.Quarantined)
	}
	// eat keeps working after the excise, draining the req elements.
	res = assertN(t, c, ts.URL, info.ID, 10, 4)
	if res.WMSize != 8 {
		t.Fatalf("wm_size = %d after quarantine, want the 8 junk elements", res.WMSize)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v on the second batch, want still [cross]", res.Quarantined)
	}

	var snap stats.Snapshot
	if code := call(t, c, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Epoch.BudgetTrips != 1 {
		t.Fatalf("metrics budget_trips = %d, want 1", snap.Epoch.BudgetTrips)
	}
	if snap.Epoch.RulesExcised < 1 {
		t.Fatalf("metrics rules_excised = %d, want >= 1", snap.Epoch.RulesExcised)
	}
}

// deadJoinSrc has a rule whose second condition element never matches:
// with unlinking on, req activations into the dead join are buffered
// instead of probed.
const deadJoinSrc = `
(literalize req n)
(literalize resp n)
(literalize ghost n)
(p answer
  (req ^n <n>)
-->
  (make resp ^n <n>)
  (remove 1))
(p dead
  (ghost ^n <n>)
  (req ^n <n>)
-->
  (halt))
`

// TestSessionUnlink runs sequential and parallel sessions with
// unlinking enabled and checks the unlink_skips and relinks counters
// reach /metrics through the per-session stat folds.
func TestSessionUnlink(t *testing.T) {
	for _, matcher := range []string{"vs2", "parallel"} {
		t.Run(matcher, func(t *testing.T) {
			_, ts := newTestServer(t)
			c := ts.Client()

			var info server.SessionInfo
			cfg := server.SessionConfig{Program: deadJoinSrc, Matcher: matcher, Unlink: true}
			if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info); code != http.StatusCreated {
				t.Fatalf("create: status %d", code)
			}
			res := assertN(t, c, ts.URL, info.ID, 1, 16)
			if got := len(res.Firings); got != 16 {
				t.Fatalf("firings = %d, want 16", got)
			}
			var snap stats.Snapshot
			if code := call(t, c, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
				t.Fatalf("metrics: status %d", code)
			}
			if snap.Match.UnlinkSkips == 0 {
				t.Fatal("metrics unlink_skips = 0, want > 0 (dead join never probed)")
			}
		})
	}
}

// TestSessionReorderModes checks the reorder_joins escape hatch: both
// modes produce identical firing behaviour, and a bad value is a 400.
func TestSessionReorderModes(t *testing.T) {
	_, ts := newTestServer(t)
	c := ts.Client()

	run := func(mode string) *server.BatchResult {
		var info server.SessionInfo
		cfg := server.SessionConfig{Program: pingSrc, ReorderJoins: mode}
		if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &info); code != http.StatusCreated {
			t.Fatalf("create (%q): status %d", mode, code)
		}
		return assertN(t, c, ts.URL, info.ID, 1, 8)
	}
	on, off := run("on"), run("off")
	if len(on.Firings) != len(off.Firings) || len(on.Firings) != 8 {
		t.Fatalf("firings on=%d off=%d, want 8 both ways", len(on.Firings), len(off.Firings))
	}
	for i := range on.Firings {
		if on.Firings[i].Rule != off.Firings[i].Rule {
			t.Fatalf("firing %d differs: %q vs %q", i, on.Firings[i].Rule, off.Firings[i].Rule)
		}
	}

	var apiErr struct {
		Error string `json:"error"`
	}
	cfg := server.SessionConfig{Program: pingSrc, ReorderJoins: "sideways"}
	if code := call(t, c, "POST", ts.URL+"/sessions", cfg, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("bad reorder_joins: status %d, want 400", code)
	}
}
