package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed reports a job submitted after shutdown began.
var ErrPoolClosed = errors.New("worker pool closed")

// pool is the fixed-size worker pool all session work runs on. Bounding
// the workers bounds match parallelism under load: the HTTP layer can
// accept thousands of connections while at most Workers engine runs
// execute, the server-level analogue of the paper's fixed 1+k
// processes. Jobs are never dropped once accepted — close drains the
// queue before the workers exit, which is what makes SIGTERM shutdown
// graceful for in-flight requests.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	// mu is held shared for the whole of a submission (closed check +
	// channel send) and exclusively by close; that ordering is what
	// makes "send on closed channel" impossible here.
	mu     sync.RWMutex
	closed bool
}

// newPool starts n workers (n <= 0 picks 2×CPU, minimum 4).
func newPool(n int) *pool {
	if n <= 0 {
		n = 2 * runtime.NumCPU()
		if n < 4 {
			n = 4
		}
	}
	p := &pool{jobs: make(chan func(), 4*n)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// do runs fn on a worker and waits for it to finish. Submission honors
// ctx (request cancelled while the queue is full fails fast with the
// ctx error), but once accepted the job always runs to completion and
// do waits for it — callers' response state is only touched by the
// finished job.
func (p *pool) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		fn()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	select {
	case p.jobs <- job:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return ctx.Err()
	}
	<-done
	return nil
}

// close stops accepting jobs, lets the workers drain the queue, and
// waits for them. It blocks behind in-progress submissions (they hold
// the read lock), so no accepted job is ever lost.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
