package server_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// benchOut locates the BENCH_server.json target: $BENCH_OUT if set,
// else the repo root (found by walking up to go.mod), else the CWD.
func benchOut() string {
	if p := os.Getenv("BENCH_OUT"); p != "" {
		return p
	}
	dir, err := os.Getwd()
	if err != nil {
		return "BENCH_server.json"
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, "BENCH_server.json")
		}
		if filepath.Dir(d) == d {
			return filepath.Join(dir, "BENCH_server.json")
		}
	}
}

// benchReport is the BENCH_server.json schema: the run configuration,
// throughput headline, and the server's own metrics snapshot, so future
// PRs can track the trajectory.
type benchReport struct {
	Config struct {
		Sessions   int    `json:"sessions"`
		Batches    int    `json:"batches"`
		PerBatch   int    `json:"per_batch"`
		Backend    string `json:"backend"`
		CPUs       int    `json:"cpus"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"config"`
	RequestsPerSec float64        `json:"requests_per_sec"`
	FiringsPerSec  float64        `json:"firings_per_sec"`
	ChangesPerSec  float64        `json:"wm_changes_per_sec"`
	ElapsedMs      int64          `json:"elapsed_ms"`
	Snapshot       stats.Snapshot `json:"snapshot"`
}

// driveServer runs sessions × batches × perBatch asserts through a
// fresh server (direct API, no HTTP overhead) and returns the report.
func driveServer(sessions, batches, perBatch int, backend string) (*benchReport, error) {
	srv := server.New(server.Options{
		MaxSessions:      sessions + 1,
		DefaultMaxCycles: perBatch * 4,
	})
	defer srv.Close()

	ids := make([]string, sessions)
	for i := range ids {
		info, err := srv.CreateSession(server.SessionConfig{
			Program: pingSrc,
			Matcher: backend,
			Procs:   2,
		})
		if err != nil {
			return nil, err
		}
		ids[i] = info.ID
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			n := 0
			for b := 0; b < batches; b++ {
				req := &server.BatchRequest{NoFirings: true}
				for i := 0; i < perBatch; i++ {
					req.Asserts = append(req.Asserts, server.WMEInput{
						Class: "req", Attrs: map[string]any{"n": n},
					})
					n++
				}
				if _, err := srv.Batch(id, req); err != nil {
					errCh <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	elapsed := time.Since(start)

	rep := &benchReport{Snapshot: srv.Snapshot()}
	rep.Config.Sessions = sessions
	rep.Config.Batches = batches
	rep.Config.PerBatch = perBatch
	rep.Config.Backend = backend
	rep.Config.CPUs = runtime.NumCPU()
	rep.Config.GoMaxProcs = runtime.GOMAXPROCS(0)
	secs := elapsed.Seconds()
	rep.RequestsPerSec = float64(sessions*batches) / secs
	rep.FiringsPerSec = float64(rep.Snapshot.Server.Firings) / secs
	rep.ChangesPerSec = float64(rep.Snapshot.Match.WMChanges) / secs
	rep.ElapsedMs = elapsed.Milliseconds()
	return rep, nil
}

// TestBenchServerJSON runs a small fixed workload and writes
// BENCH_server.json so every tier-1 run refreshes the throughput
// seed. Scale stays small enough for CI; BenchmarkServerThroughput is
// the tunable version.
func TestBenchServerJSON(t *testing.T) {
	// Run with GOMAXPROCS > 1 so concurrent sessions genuinely overlap;
	// config records both the raised value and the host's real CPU count.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rep, err := driveServer(8, 10, 16, "vs2")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8 * 10 * 16); rep.Snapshot.Server.Firings != want {
		t.Fatalf("firings = %d, want %d", rep.Snapshot.Server.Firings, want)
	}
	if rep.RequestsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", rep)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := benchOut()
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f req/s, %.0f firings/s", out, rep.RequestsPerSec, rep.FiringsPerSec)
}

// BenchmarkServerThroughput measures batched assert throughput with N
// concurrent sessions per backend; b.N counts batches per session.
func BenchmarkServerThroughput(b *testing.B) {
	for _, backend := range []string{"vs2", "parallel"} {
		b.Run(backend, func(b *testing.B) {
			const sessions = 8
			const perBatch = 16
			rep, err := driveServer(sessions, b.N, perBatch, backend)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.RequestsPerSec, "req/s")
			b.ReportMetric(rep.FiringsPerSec, "firings/s")
			b.ReportMetric(float64(rep.Snapshot.Latency["run"].P99Us), "p99-µs")
		})
	}
}
