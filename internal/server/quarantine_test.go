package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

const qsrc = `
(literalize req n)
(p echo (req ^n <n>) --> (remove 1))
`

// TestPanicQuarantine forces a panic inside a session's guarded region
// and checks the daemon survives: the panic comes back as
// ErrSessionBroken, the session refuses further work, other sessions
// keep running, and the panic is counted.
func TestPanicQuarantine(t *testing.T) {
	s := New(Options{})
	defer s.Close()

	a, err := s.CreateSession(SessionConfig{Program: qsrc})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateSession(SessionConfig{Program: qsrc})
	if err != nil {
		t.Fatal(err)
	}

	sessA, err := s.session(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = s.guard(sessA, func() error { panic("rule gone rogue") })
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("guard returned %v, want ErrSessionBroken", err)
	}

	// The broken session rejects requests without panicking again.
	if _, err := s.Batch(a.ID, &BatchRequest{}); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("batch on broken session: %v", err)
	}
	// The healthy session is unaffected.
	res, err := s.Batch(b.ID, &BatchRequest{
		Asserts: []WMEInput{{Class: "req", Attrs: map[string]any{"n": 1}}},
	})
	if err != nil || len(res.Firings) != 1 {
		t.Fatalf("healthy session after panic: res=%+v err=%v", res, err)
	}
	snap := s.Snapshot()
	if snap.Server.Panics != 1 {
		t.Errorf("panics = %d, want 1", snap.Server.Panics)
	}
	// A quarantined session can still be deleted cleanly.
	if err := s.DeleteSession(a.ID); err != nil {
		t.Errorf("delete broken session: %v", err)
	}
}

// TestPoolDrainsOnClose checks every accepted job runs before close
// returns, and submissions after close fail with ErrPoolClosed.
func TestPoolDrainsOnClose(t *testing.T) {
	p := newPool(2)
	var ran atomic.Int64
	const jobs = 50
	done := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func() {
			done <- p.do(context.Background(), func() {
				time.Sleep(100 * time.Microsecond)
				ran.Add(1)
			})
		}()
	}
	// Let some jobs get accepted, then close; do() calls race the close
	// and must either run fully or fail with ErrPoolClosed.
	time.Sleep(2 * time.Millisecond)
	p.close()
	accepted := int64(0)
	for i := 0; i < jobs; i++ {
		if err := <-done; err == nil {
			accepted++
		} else if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("unexpected pool error: %v", err)
		}
	}
	if ran.Load() != accepted {
		t.Errorf("ran %d jobs but %d were accepted", ran.Load(), accepted)
	}
	if err := p.do(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("do after close: %v", err)
	}
}

// TestPoolHonorsContext checks a full queue + cancelled context fails
// fast instead of blocking the caller.
func TestPoolHonorsContext(t *testing.T) {
	p := newPool(1)
	defer p.close()
	// Occupy the single worker and fill the buffered queue.
	block := make(chan struct{})
	go p.do(context.Background(), func() { <-block })
	time.Sleep(time.Millisecond)
	for i := 0; i < cap(p.jobs); i++ {
		go p.do(context.Background(), func() {})
	}
	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.do(ctx, func() {})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	close(block)
}
