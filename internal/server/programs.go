package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Content-addressed program registry. Every compiled program already
// lives in s.programs keyed by the SHA-256 of its source (sharedProg);
// this file adds the explicit registration surface a routing proxy
// uses: POST /programs registers source once and returns its hash,
// GET /programs lists what this backend holds, GET /programs/{hash}
// returns the source (so a migration target missing a hash can be fed
// from any backend that has it), and session creates may then name the
// program by hash alone (SessionConfig.ProgramHash) — no source bytes
// on the wire, no parse, no Rete compile.

// ProgramInfo describes one registered program.
type ProgramInfo struct {
	Hash string `json:"hash"` // hex SHA-256 of the source
	// Rules/Classes size the compiled network; Sessions counts live
	// sessions sharing it.
	Rules    int `json:"rules"`
	Classes  int `json:"classes"`
	Sessions int `json:"sessions"`
	SrcBytes int `json:"src_bytes"`
	// Compiled reports whether registration found the program already
	// cached (false = this call paid the parse+compile).
	Compiled bool `json:"already_cached"`
}

// RegisterProgram parses and compiles source (or finds it cached) and
// pins it in the content-addressed registry. Idempotent: registering
// byte-identical source twice returns the same hash and compiles once.
func (s *Server) RegisterProgram(src string) (*ProgramInfo, error) {
	if src == "" {
		return nil, fmt.Errorf("missing program source")
	}
	sp, hash, shared, err := s.sharedProg(src)
	if err != nil {
		return nil, err
	}
	s.met.programRegistered()
	s.mu.RLock()
	refs := sp.refs
	s.mu.RUnlock()
	return &ProgramInfo{
		Hash:     hex.EncodeToString(hash[:]),
		Rules:    len(sp.net.Rules),
		Classes:  len(sp.prog.Classes),
		Sessions: refs,
		SrcBytes: len(sp.src),
		Compiled: shared,
	}, nil
}

// programByHash resolves a hex SHA-256 against the registry.
func (s *Server) programByHash(hexhash string) (*sharedProgram, [sha256.Size]byte, error) {
	var hash [sha256.Size]byte
	b, err := hex.DecodeString(hexhash)
	if err != nil || len(b) != sha256.Size {
		return nil, hash, fmt.Errorf("bad program hash %q (want hex SHA-256)", hexhash)
	}
	copy(hash[:], b)
	s.mu.RLock()
	sp := s.programs[hash]
	s.mu.RUnlock()
	if sp == nil {
		return nil, hash, fmt.Errorf("%w: %s", ErrNoProgram, hexhash)
	}
	return sp, hash, nil
}

// ProgramSource returns the exact source of a registered program.
func (s *Server) ProgramSource(hexhash string) (string, error) {
	sp, _, err := s.programByHash(hexhash)
	if err != nil {
		return "", err
	}
	return sp.src, nil
}

// Programs lists every program this backend holds, sorted by hash.
func (s *Server) Programs() []ProgramInfo {
	s.mu.RLock()
	out := make([]ProgramInfo, 0, len(s.programs))
	for hash, sp := range s.programs {
		out = append(out, ProgramInfo{
			Hash:     hex.EncodeToString(hash[:]),
			Rules:    len(sp.net.Rules),
			Classes:  len(sp.prog.Classes),
			Sessions: sp.refs,
			SrcBytes: len(sp.src),
			Compiled: true,
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// BootID identifies this server process instance; it changes on every
// restart so a proxy can invalidate its per-backend program-cache view.
func (s *Server) BootID() string {
	return s.bootID
}
