package server

import (
	"errors"
	"time"
)

// ProgramRequest is the body of POST /sessions/{id}/program: a runtime
// program change applied to one session. Excise names are removed
// first, then Source — a batch of (p ...) and (excise name) forms — is
// applied in source order. The change is private to the session: its
// engine hops onto a new copy-on-write network epoch while every other
// session created from the same program keeps matching on the shared
// base network.
type ProgramRequest struct {
	Source string   `json:"source,omitempty"`
	Excise []string `json:"excise,omitempty"`
}

// ProgramResult reports the applied change and the session's new
// network shape.
type ProgramResult struct {
	Added        []string `json:"added"`
	Excised      []string `json:"excised"`
	Epoch        int      `json:"epoch"`
	Rules        int      `json:"rules"`
	Chains       int      `json:"chains"`
	Joins        int      `json:"joins"`
	SharedChains int      `json:"shared_chains"`
	SharedJoins  int      `json:"shared_joins"`
	ElapsedUs    int64    `json:"elapsed_us"`
}

// Program applies a runtime program change to a session. It is the
// synchronous core; the HTTP layer schedules it on the worker pool.
func (s *Server) Program(id string, req *ProgramRequest) (*ProgramResult, error) {
	sess, err := s.session(id)
	if err != nil {
		return nil, err
	}
	if req.Source == "" && len(req.Excise) == 0 {
		return nil, errors.New("empty program change: need source and/or excise")
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()

	res := &ProgramResult{Added: []string{}, Excised: []string{}}
	start := time.Now()
	err = s.guard(sess, func() error {
		for _, name := range req.Excise {
			if err := sess.eng.Excise(name); err != nil {
				return err
			}
			res.Excised = append(res.Excised, name)
		}
		if req.Source != "" {
			added, excised, err := sess.eng.AddRules(req.Source)
			res.Added = append(res.Added, added...)
			res.Excised = append(res.Excised, excised...)
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sum := sess.eng.Net.Summarize()
	res.Epoch = sum.Epoch
	res.Rules = sum.Rules
	res.Chains = sum.Chains
	res.Joins = sum.Joins
	res.SharedChains = sum.SharedChains
	res.SharedJoins = sum.SharedJoins
	res.ElapsedUs = time.Since(start).Microseconds()

	s.foldStatsLocked(sess)
	if err := s.commitLocked(sess); err != nil {
		return nil, err
	}
	return res, nil
}
