package wm

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/symbols"
)

// WME is a working-memory element: a class symbol plus a fixed vector of
// attribute values. Field 0 always holds the class symbol; literalize
// declarations map attribute names to indices 1..n at compile time, so
// the matchers index fields directly instead of looking attributes up by
// name (the optimization the paper's C implementation gets from compiled
// field offsets).
type WME struct {
	TimeTag int
	Fields  []Value
}

// Class returns the class symbol of the element.
func (w *WME) Class() symbols.ID { return w.Fields[0].Sym }

// Field returns the value at index i, or Nil for indices beyond the
// stored vector (OPS5 semantics: unset attributes are nil).
func (w *WME) Field(i int) Value {
	if i < 0 || i >= len(w.Fields) {
		return Nil
	}
	return w.Fields[i]
}

// String renders the element like OPS5 does: class followed by the
// non-nil attribute values in field order, e.g. (block ^id b1 ^color red).
// Continuation fields of a vector attribute (attrNames returns "") print
// their values bare after the vector's own ^attr, e.g. (trace ^elt a b c).
func (w *WME) String(tab *symbols.Table, attrNames func(class symbols.ID, field int) string) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(tab.Name(w.Class()))
	for i := 1; i < len(w.Fields); i++ {
		if w.Fields[i].Kind == KindNil {
			continue
		}
		if name := attrNames(w.Class(), i); name != "" {
			b.WriteString(" ^")
			b.WriteString(name)
		}
		b.WriteByte(' ')
		b.WriteString(w.Fields[i].String(tab))
	}
	b.WriteByte(')')
	return b.String()
}

// Memory is the working-memory store. It assigns time tags and tracks
// live elements. Only the control process mutates it, but readers (trace
// dumps, tests) may inspect it concurrently, so it carries a mutex.
type Memory struct {
	mu      sync.RWMutex
	nextTag int
	live    map[int]*WME // keyed by time tag
}

// NewMemory returns an empty working memory.
func NewMemory() *Memory {
	return &Memory{nextTag: 1, live: make(map[int]*WME)}
}

// Add stamps fields with the next time tag and records the element.
func (m *Memory) Add(fields []Value) *WME {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &WME{TimeTag: m.nextTag, Fields: fields}
	m.nextTag++
	m.live[w.TimeTag] = w
	return w
}

// AddTagged records an element under a caller-supplied time tag — the
// restore path of the durability layer, which must reproduce the exact
// tags of a logged or snapshotted session. The tag counter advances
// past the highest restored tag so post-recovery adds never collide.
func (m *Memory) AddTagged(tag int, fields []Value) *WME {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &WME{TimeTag: tag, Fields: fields}
	m.live[tag] = w
	if tag >= m.nextTag {
		m.nextTag = tag + 1
	}
	return w
}

// Get returns the live element with the given time tag, or nil.
func (m *Memory) Get(tag int) *WME {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.live[tag]
}

// NextTag reports the tag the next Add will assign.
func (m *Memory) NextTag() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nextTag
}

// SetNextTag forces the tag counter (restore only; n must exceed every
// live tag).
func (m *Memory) SetNextTag(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.nextTag {
		m.nextTag = n
	}
}

// Clone returns an independent store holding the same elements. WMEs
// are immutable once created (modify is remove + add), so the clone
// shares the element objects and copies only the index — the
// copy-on-write working-memory half of template-session forking.
func (m *Memory) Clone() *Memory {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := &Memory{nextTag: m.nextTag, live: make(map[int]*WME, len(m.live))}
	for tag, w := range m.live {
		c.live[tag] = w
	}
	return c
}

// Restore re-inserts an element object under its original time tag —
// the act-phase rollback path. Matcher token memories compare elements
// by pointer, so an undone removal must bring back the identical *WME,
// not a fresh object with the same tag.
func (m *Memory) Restore(w *WME) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live[w.TimeTag] = w
	if w.TimeTag >= m.nextTag {
		m.nextTag = w.TimeTag + 1
	}
}

// Remove deletes the element from the store. It reports whether the
// element was present (removing twice is a caller bug surfaced in tests).
func (m *Memory) Remove(w *WME) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.live[w.TimeTag]; !ok {
		return false
	}
	delete(m.live, w.TimeTag)
	return true
}

// Len reports the number of live elements.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.live)
}

// Snapshot returns the live elements ordered by time tag.
func (m *Memory) Snapshot() []*WME {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*WME, 0, len(m.live))
	for _, w := range m.live {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeTag < out[j].TimeTag })
	return out
}
