package wm_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/symbols"
	"repro/internal/wm"
)

func TestValueEquality(t *testing.T) {
	tab := symbols.NewTable()
	red := wm.Sym(tab.Intern("red"))
	red2 := wm.Sym(tab.Intern("red"))
	blue := wm.Sym(tab.Intern("blue"))
	cases := []struct {
		a, b wm.Value
		want bool
	}{
		{red, red2, true},
		{red, blue, false},
		{wm.Int(12), wm.Int(12), true},
		{wm.Int(12), wm.Float(12.0), true}, // OPS5: numeric equality across types
		{wm.Float(12.5), wm.Int(12), false},
		{wm.Nil, wm.Nil, true},
		{wm.Nil, red, false},
		{wm.Int(0), wm.Nil, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%#v, %#v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for (%#v, %#v)", c.a, c.b)
		}
	}
}

func TestValueSameType(t *testing.T) {
	tab := symbols.NewTable()
	s := wm.Sym(tab.Intern("x"))
	if !wm.Int(1).SameType(wm.Float(2.5)) {
		t.Error("int and float should be same type")
	}
	if s.SameType(wm.Int(1)) {
		t.Error("symbol and number should differ in type")
	}
	if !s.SameType(wm.Nil) {
		t.Error("nil counts as symbolic")
	}
}

// Property: equal values must hash identically (12 vs 12.0 included).
func TestEqualValuesHashEqual(t *testing.T) {
	f := func(n int64, seed uint64) bool {
		a, b := wm.Int(n), wm.Float(float64(n))
		if math.Abs(float64(n)) > 1<<52 {
			return true // beyond exact float representation
		}
		if !a.Equal(b) {
			return true
		}
		return a.Hash(seed) == b.Hash(seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Less is a strict partial order on numbers.
func TestLessIrreflexive(t *testing.T) {
	f := func(n float64) bool {
		v := wm.Float(n)
		return !v.Less(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWMEFieldOutOfRangeIsNil(t *testing.T) {
	tab := symbols.NewTable()
	w := &wm.WME{TimeTag: 1, Fields: []wm.Value{wm.Sym(tab.Intern("c")), wm.Int(5)}}
	if got := w.Field(1); !got.Equal(wm.Int(5)) {
		t.Errorf("Field(1) = %#v", got)
	}
	if got := w.Field(7); got.Kind != wm.KindNil {
		t.Errorf("Field(7) = %#v, want nil", got)
	}
	if got := w.Field(-1); got.Kind != wm.KindNil {
		t.Errorf("Field(-1) = %#v, want nil", got)
	}
}

func TestMemoryTimeTagsMonotonic(t *testing.T) {
	tab := symbols.NewTable()
	m := wm.NewMemory()
	c := tab.Intern("c")
	last := 0
	for i := 0; i < 100; i++ {
		w := m.Add([]wm.Value{wm.Sym(c), wm.Int(int64(i))})
		if w.TimeTag <= last {
			t.Fatalf("time tag %d not greater than previous %d", w.TimeTag, last)
		}
		last = w.TimeTag
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemoryRemoveTwice(t *testing.T) {
	tab := symbols.NewTable()
	m := wm.NewMemory()
	w := m.Add([]wm.Value{wm.Sym(tab.Intern("c"))})
	if !m.Remove(w) {
		t.Fatal("first remove failed")
	}
	if m.Remove(w) {
		t.Fatal("second remove should report absence")
	}
}

func TestSnapshotOrdered(t *testing.T) {
	tab := symbols.NewTable()
	m := wm.NewMemory()
	for i := 0; i < 10; i++ {
		m.Add([]wm.Value{wm.Sym(tab.Intern("c")), wm.Int(int64(i))})
	}
	snap := m.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].TimeTag <= snap[i-1].TimeTag {
			t.Fatal("snapshot not ordered by time tag")
		}
	}
}
