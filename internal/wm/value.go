// Package wm defines OPS5 runtime values, working-memory elements and the
// working-memory store shared by every matcher implementation.
package wm

import (
	"fmt"
	"strconv"

	"repro/internal/symbols"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// Value kinds. Nil marks an attribute that was never assigned; OPS5
// treats such fields as the distinguished symbol nil for matching.
const (
	KindNil Kind = iota
	KindSym
	KindInt
	KindFloat
)

// Value is a single OPS5 runtime value: a symbol, an integer or a float.
// Values are small and passed by copy everywhere; equality between an
// int and a float with the same numeric value holds, as in OPS5.
type Value struct {
	Kind Kind
	Sym  symbols.ID
	Num  int64
	F    float64
}

// Nil is the unassigned value.
var Nil = Value{Kind: KindNil}

// Sym returns a symbol value.
func Sym(id symbols.ID) Value { return Value{Kind: KindSym, Sym: id} }

// Int returns an integer value.
func Int(n int64) Value { return Value{Kind: KindInt, Num: n} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// IsNumber reports whether v holds an int or a float.
func (v Value) IsNumber() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value as a float64. Call only on numbers.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.Num)
	}
	return v.F
}

// Equal reports OPS5 equality: symbols by ID, numbers numerically
// (12 equals 12.0), nil equals only nil.
func (v Value) Equal(o Value) bool {
	switch v.Kind {
	case KindNil:
		return o.Kind == KindNil
	case KindSym:
		return o.Kind == KindSym && v.Sym == o.Sym
	default:
		if !o.IsNumber() {
			return false
		}
		if v.Kind == KindInt && o.Kind == KindInt {
			return v.Num == o.Num
		}
		return v.AsFloat() == o.AsFloat()
	}
}

// SameType reports the OPS5 <=> predicate: both symbolic or both numeric.
func (v Value) SameType(o Value) bool {
	if v.Kind == KindSym || v.Kind == KindNil {
		return o.Kind == KindSym || o.Kind == KindNil
	}
	return o.IsNumber()
}

// Less reports v < o. Numbers compare numerically; symbols compare by
// name ordering is not available here, so symbol comparison is undefined
// in OPS5 and returns false, as does any mixed-type comparison.
func (v Value) Less(o Value) bool {
	if v.IsNumber() && o.IsNumber() {
		return v.AsFloat() < o.AsFloat()
	}
	return false
}

// Hash folds the value into a 64-bit hash seed using FNV-1a steps.
func (v Value) Hash(h uint64) uint64 {
	const prime = 1099511628211
	mix := func(h, x uint64) uint64 {
		h ^= x
		return h * prime
	}
	switch v.Kind {
	case KindNil:
		return mix(h, 0x9e3779b97f4a7c15)
	case KindSym:
		return mix(mix(h, 1), uint64(v.Sym))
	case KindInt:
		return mix(mix(h, 2), uint64(v.Num))
	default:
		// Hash floats through their numeric value so 12 and 12.0 collide
		// (they are Equal, so they must hash identically).
		f := v.F
		if f == float64(int64(f)) {
			return mix(mix(h, 2), uint64(int64(f)))
		}
		return mix(mix(h, 3), uint64(int64(f*4096)))
	}
}

// String renders the value using the symbol table for symbol names.
func (v Value) String(tab *symbols.Table) string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindSym:
		return tab.Name(v.Sym)
	case KindInt:
		return strconv.FormatInt(v.Num, 10)
	default:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
}

// GoString aids debugging without a symbol table.
func (v Value) GoString() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindSym:
		return fmt.Sprintf("sym#%d", v.Sym)
	case KindInt:
		return strconv.FormatInt(v.Num, 10)
	default:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
}
