// Package spinlock provides the synchronization primitives of the
// paper's §3.2: a test-and-test-and-set spin lock (processes spin on
// ordinary reads out of their cache and only attempt the interlocked
// write once the lock looks free), and the two line-locking schemes used
// for the token hash tables — the simple Free/Taken flag and the
// multiple-reader-single-writer scheme with an Unused/Left/Right flag, a
// user counter and two locks.
//
// Every acquisition reports the number of times the caller observed the
// lock busy before getting it, which is exactly the contention measure
// of Tables 4-7 and 4-9.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// hotSpins bounds the initial busy-wait. On the paper's Multimax every
// process owned a CPU and spun freely; in Go a lock holder can be
// descheduled mid-critical-section, at which point further spinning
// only keeps the holder off the CPU. So after a short hot window sized
// for holders running concurrently, Acquire yields on every failed
// observation (spin-then-yield, Anderson's uniprocessor remedy).
const hotSpins = 32

// Lock is a test-and-test-and-set spin lock. The zero value is unlocked.
type Lock struct {
	state atomic.Int32
}

// Acquire spins until the lock is held, returning the number of busy
// observations made before acquiring it.
func (l *Lock) Acquire() (spins int64) {
	for {
		if l.state.Load() == 0 {
			if l.state.CompareAndSwap(0, 1) {
				return spins
			}
		}
		spins++
		if spins >= hotSpins {
			runtime.Gosched()
		}
	}
}

// TryAcquire attempts the lock once without spinning.
func (l *Lock) TryAcquire() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Release unlocks. Calling Release on an unheld lock is a caller bug.
func (l *Lock) Release() {
	l.state.Store(0)
}

// MRSW line-lock flag values.
const (
	flagUnused int32 = 0
	flagLeft   int32 = 1
	flagRight  int32 = 2
)

// MRSW is the paper's complex hash-line lock: it admits any number of
// processes working on tokens from one side of the line while excluding
// the other side. The first lock guards the flag and counter; the
// second serializes destructive token-list updates. A process arriving
// for the side currently excluded does not wait: it re-queues its token
// (the caller handles that when Enter returns false).
type MRSW struct {
	gate  Lock // guards flag and count
	Mod   Lock // modification lock for the token lists
	flag  int32
	count int32
}

// Enter registers the caller for the given side (0 left, 1 right).
// ok=false means the opposite side holds the line and the token must be
// pushed back onto the task queue. spins counts gate-lock contention.
func (m *MRSW) Enter(side int) (ok bool, spins int64) {
	spins = m.gate.Acquire()
	want := flagLeft
	if side == 1 {
		want = flagRight
	}
	if m.flag != flagUnused && m.flag != want {
		m.gate.Release()
		return false, spins
	}
	m.flag = want
	m.count++
	m.gate.Release()
	return true, spins
}

// Exit deregisters the caller; the last process out resets the flag.
func (m *MRSW) Exit() (spins int64) {
	spins = m.gate.Acquire()
	m.count--
	if m.count == 0 {
		m.flag = flagUnused
	}
	m.gate.Release()
	return spins
}
