package spinlock_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/spinlock"
)

func TestLockMutualExclusion(t *testing.T) {
	var l spinlock.Lock
	var counter int64
	var inside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Acquire()
				if inside.Add(1) != 1 {
					t.Error("two goroutines inside the critical section")
				}
				counter++
				inside.Add(-1)
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestUncontendedAcquireHasNoSpins(t *testing.T) {
	var l spinlock.Lock
	if spins := l.Acquire(); spins != 0 {
		t.Fatalf("uncontended acquire spun %d times", spins)
	}
	l.Release()
}

func TestTryAcquire(t *testing.T) {
	var l spinlock.Lock
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on free lock failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
	l.Release()
}

func TestContendedAcquireCountsSpins(t *testing.T) {
	var l spinlock.Lock
	l.Acquire()
	done := make(chan int64)
	go func() {
		spins := l.Acquire()
		l.Release()
		done <- spins
	}()
	// Hold briefly so the second goroutine observes the busy lock.
	for i := 0; i < 100000; i++ {
		_ = i
	}
	l.Release()
	if spins := <-done; spins == 0 {
		t.Skip("scheduler let the contender in without observing busy (rare but legal)")
	}
}

func TestMRSWSameSideSharing(t *testing.T) {
	var m spinlock.MRSW
	ok1, _ := m.Enter(0)
	ok2, _ := m.Enter(0)
	if !ok1 || !ok2 {
		t.Fatal("two same-side processes should share the line")
	}
	if ok, _ := m.Enter(1); ok {
		t.Fatal("opposite side admitted during a left epoch")
	}
	m.Exit()
	if ok, _ := m.Enter(1); ok {
		t.Fatal("opposite side admitted while one left user remains")
	}
	m.Exit()
	if ok, _ := m.Enter(1); !ok {
		t.Fatal("right side rejected after the epoch ended")
	}
	m.Exit()
}

func TestMRSWConcurrentEpochs(t *testing.T) {
	var m spinlock.MRSW
	var left, right atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		side := g % 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; {
				ok, _ := m.Enter(side)
				if !ok {
					continue // model the requeue by retrying
				}
				if side == 0 {
					left.Add(1)
					if right.Load() != 0 {
						t.Error("left active while right inside")
					}
					left.Add(-1)
				} else {
					right.Add(1)
					if left.Load() != 0 {
						t.Error("right active while left inside")
					}
					right.Add(-1)
				}
				m.Exit()
				i++
			}
		}()
	}
	wg.Wait()
}
