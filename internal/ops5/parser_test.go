package ops5_test

import (
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/wm"
)

func parse(t *testing.T, src string) *ops5.Program {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := ops5.Parse(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got success", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestParseFigure21(t *testing.T) {
	prog := parse(t, `
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (modify 2 ^selected yes))
`)
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Name != "find-colored-block" || len(r.CEs) != 2 || len(r.Actions) != 1 {
		t.Fatalf("unexpected rule shape: %+v", r)
	}
	if r.Actions[0].Kind != ops5.ActModify || r.Actions[0].CEIndex != 2 {
		t.Fatalf("action = %+v", r.Actions[0])
	}
}

func TestLiteralizeAssignsFieldIndices(t *testing.T) {
	prog := parse(t, `(literalize block id color selected)`)
	id, _ := prog.Symbols.Lookup("block")
	c := prog.Classes[id]
	if c == nil || !c.Declared {
		t.Fatal("block class not declared")
	}
	if c.NumFields() != 4 { // class slot + 3 attributes
		t.Fatalf("NumFields = %d", c.NumFields())
	}
	attr, _ := prog.Symbols.Lookup("color")
	if c.Fields[attr] != 2 {
		t.Fatalf("color field = %d, want 2", c.Fields[attr])
	}
}

func TestUndeclaredAttributeRejected(t *testing.T) {
	parseErr(t, `
(literalize block id)
(p r (block ^height <h>) --> (halt))
`, "no attribute")
}

func TestPredicates(t *testing.T) {
	prog := parse(t, `
(p r
  (c ^a <x> ^b { > 3 <= 10 } ^d <> nil ^e <=> 5)
-->
  (halt))
`)
	ce := prog.Rules[0].CEs[0]
	if len(ce.Tests) != 4 {
		t.Fatalf("tests = %d", len(ce.Tests))
	}
	brace := ce.Tests[1]
	if len(brace.Terms) != 2 || brace.Terms[0].Pred != ops5.PredGT || brace.Terms[1].Pred != ops5.PredLE {
		t.Fatalf("brace terms = %+v", brace.Terms)
	}
	if ce.Tests[2].Terms[0].Pred != ops5.PredNE {
		t.Fatalf("<> parsed as %v", ce.Tests[2].Terms[0].Pred)
	}
	if ce.Tests[3].Terms[0].Pred != ops5.PredSameType {
		t.Fatalf("<=> parsed as %v", ce.Tests[3].Terms[0].Pred)
	}
}

func TestDisjunction(t *testing.T) {
	prog := parse(t, `(p r (c ^color << red green blue >>) --> (halt))`)
	term := prog.Rules[0].CEs[0].Tests[0].Terms[0]
	if len(term.Disj) != 3 {
		t.Fatalf("disjunction size = %d", len(term.Disj))
	}
}

func TestNilSymbolIsNilValue(t *testing.T) {
	prog := parse(t, `
(p r (c ^a nil) --> (make d ^b nil))
`)
	term := prog.Rules[0].CEs[0].Tests[0].Terms[0]
	if term.Const.Kind != wm.KindNil {
		t.Fatalf("^a nil parsed as %#v, want the nil value", term.Const)
	}
	set := prog.Rules[0].Actions[0].Sets[0]
	if set.Expr.Const.Kind != wm.KindNil {
		t.Fatalf("make ^b nil parsed as %#v", set.Expr.Const)
	}
}

func TestNegatedCE(t *testing.T) {
	prog := parse(t, `
(p r
  (goal ^t go)
  - (blocker ^id <i>)
-->
  (halt))
`)
	if !prog.Rules[0].CEs[1].Negated {
		t.Fatal("second CE should be negated")
	}
}

func TestOnlyNegatedCEsRejected(t *testing.T) {
	parseErr(t, `(p r - (c ^a 1) --> (halt))`, "only negated")
}

func TestModifyNegatedRejected(t *testing.T) {
	parseErr(t, `
(p r (a ^x 1) - (b ^y 2) --> (modify 2 ^y 3))
`, "negated")
}

func TestModifyOutOfRangeRejected(t *testing.T) {
	parseErr(t, `(p r (a ^x 1) --> (remove 3))`, "out of range")
}

func TestUnboundRHSVariableRejected(t *testing.T) {
	parseErr(t, `(p r (a ^x 1) --> (make b ^y <ghost>))`, "never bound")
}

func TestUnboundPredicateVariableRejected(t *testing.T) {
	// The parser accepts it; the Rete compiler rejects it (splitCE).
	prog := parse(t, `(p r (a ^x > <never>) --> (halt))`)
	if _, err := rete.Compile(prog); err == nil ||
		!strings.Contains(err.Error(), "unbound") {
		t.Fatalf("compile error = %v, want unbound-variable rejection", err)
	}
}

func TestComputeRightAssociative(t *testing.T) {
	prog := parse(t, `
(p r (a ^x <v>) --> (make b ^y (compute <v> + 2 * 3)))
`)
	e := prog.Rules[0].Actions[0].Sets[0].Expr
	// Right-to-left: <v> + (2 * 3).
	if e.Kind != ops5.ExprCompute || e.Op != '+' {
		t.Fatalf("top op = %c", e.Op)
	}
	if e.R.Kind != ops5.ExprCompute || e.R.Op != '*' {
		t.Fatalf("right subtree op = %c, want *", e.R.Op)
	}
}

func TestStrategy(t *testing.T) {
	prog := parse(t, `(strategy mea)`)
	if prog.Strategy != "mea" {
		t.Fatalf("strategy = %q", prog.Strategy)
	}
	parseErr(t, `(strategy fancy)`, "unknown strategy")
}

func TestTopLevelMake(t *testing.T) {
	prog := parse(t, `
(literalize c a)
(make c ^a 42)
(make c ^a (compute 6 * 7))
`)
	if len(prog.InitialMakes) != 2 {
		t.Fatalf("initial makes = %d", len(prog.InitialMakes))
	}
	parseErr(t, `(make c ^a <v>)`, "outside a production")
}

func TestBindMakesVariableAvailable(t *testing.T) {
	parse(t, `
(p r (a ^x <v>) --> (bind <y> (compute <v> + 1)) (make b ^n <y>))
`)
}

func TestWriteForms(t *testing.T) {
	prog := parse(t, `
(p r (a ^x <v>) --> (write result <v> (crlf) (tabto 10) done))
`)
	args := prog.Rules[0].Actions[0].Args
	if len(args) != 5 {
		t.Fatalf("write args = %d", len(args))
	}
	if args[2].Kind != ops5.ExprCrlf || args[3].Kind != ops5.ExprTabto {
		t.Fatalf("special forms misparsed: %+v", args)
	}
}

func TestCommentsSkipped(t *testing.T) {
	parse(t, `
; a comment line
(p r ; inline comment
  (a ^x 1) --> (halt)) ; trailing
`)
}

func TestVariableLexing(t *testing.T) {
	prog := parse(t, `(p r (a ^x <long-name-7>) --> (make b ^y <long-name-7>))`)
	term := prog.Rules[0].CEs[0].Tests[0].Terms[0]
	if !term.IsVar || term.Var != "long-name-7" {
		t.Fatalf("variable parsed as %+v", term)
	}
}

func TestClassOnlyCE(t *testing.T) {
	prog := parse(t, `(p r (signal) - (mute) --> (halt))`)
	if len(prog.Rules[0].CEs) != 2 {
		t.Fatal("expected two CEs")
	}
	if len(prog.Rules[0].CEs[0].Tests) != 0 {
		t.Fatal("class-only CE should have no tests")
	}
}

func TestNumbers(t *testing.T) {
	prog := parse(t, `(p r (a ^x -5 ^y 2.5) --> (halt))`)
	ts := prog.Rules[0].CEs[0].Tests
	if ts[0].Terms[0].Const.Kind != wm.KindInt || ts[0].Terms[0].Const.Num != -5 {
		t.Fatalf("-5 parsed as %#v", ts[0].Terms[0].Const)
	}
	if ts[1].Terms[0].Const.Kind != wm.KindFloat || ts[1].Terms[0].Const.F != 2.5 {
		t.Fatalf("2.5 parsed as %#v", ts[1].Terms[0].Const)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := ops5.Parse("\n\n(p r (a ^x 1) --> (boom))")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v, want line 3 reference", err)
	}
}

func TestElementVariables(t *testing.T) {
	prog := parse(t, `
(literalize block id state)
(p consume
  (goal ^t go)
  { <blk> (block ^id <i> ^state free) }
-->
  (modify <blk> ^state used)
  (remove <blk>))
`)
	r := prog.Rules[0]
	if r.CEs[1].ElemVar != "blk" {
		t.Fatalf("element variable = %q", r.CEs[1].ElemVar)
	}
	if r.Actions[0].Kind != ops5.ActModify || r.Actions[0].CEIndex != 2 {
		t.Fatalf("modify resolved to %+v", r.Actions[0])
	}
	if r.Actions[1].Kind != ops5.ActRemove || r.Actions[1].CEIndex != 2 {
		t.Fatalf("remove resolved to %+v", r.Actions[1])
	}
	// Reverse order inside the braces also parses.
	parse(t, `(p r { (a ^x 1) <w> } --> (remove <w>))`)
}

func TestElementVariableErrors(t *testing.T) {
	parseErr(t, `(p r (a ^x 1) --> (remove <ghost>))`, "no element variable")
	parseErr(t, `(p r (a ^x 1) - { <w> (b ^y 1) } --> (halt))`, "negated")
	parseErr(t, `(p r { <w> <v> } --> (halt))`, "two variables")
}
