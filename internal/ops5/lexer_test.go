package ops5

import (
	"testing"
	"testing/quick"
)

// lexKinds tokenizes and returns the kind sequence (sans EOF).
func lexKinds(t *testing.T, src string) []tokKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	kinds := make([]tokKind, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		kinds = append(kinds, tok.kind)
	}
	return kinds
}

func TestLexAngleDisambiguation(t *testing.T) {
	cases := []struct {
		src  string
		want []tokKind
	}{
		{"<x>", []tokKind{tokVar}},
		{"<", []tokKind{tokPred}},
		{"<=", []tokKind{tokPred}},
		{"<=>", []tokKind{tokPred}},
		{"<>", []tokKind{tokPred}},
		{"<<", []tokKind{tokLDisj}},
		{">>", []tokKind{tokRDisj}},
		{">", []tokKind{tokPred}},
		{">=", []tokKind{tokPred}},
		{"=", []tokKind{tokPred}},
		{"< <x>", []tokKind{tokPred, tokVar}},
		{"<< a b >>", []tokKind{tokLDisj, tokSym, tokSym, tokRDisj}},
	}
	for _, c := range cases {
		got := lexKinds(t, c.src)
		if len(got) != len(c.want) {
			t.Errorf("%q: %d tokens, want %d", c.src, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q token %d: kind %d, want %d", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestLexPredTexts(t *testing.T) {
	toks, err := lexAll("<> <= >= <=> < > =")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "<=", ">=", "<=>", "<", ">", "="}
	for i, w := range want {
		if toks[i].kind != tokPred || toks[i].text != w {
			t.Errorf("token %d = %q (kind %d), want pred %q", i, toks[i].text, toks[i].kind, w)
		}
	}
}

func TestLexNumbersAndSymbols(t *testing.T) {
	toks, err := lexAll("12 -3 2.5 -0.5 12abc abc-12 -")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNum || !toks[0].isInt || toks[0].inum != 12 {
		t.Errorf("12 lexed as %+v", toks[0])
	}
	if toks[1].kind != tokNum || toks[1].inum != -3 {
		t.Errorf("-3 lexed as %+v", toks[1])
	}
	if toks[2].kind != tokNum || toks[2].isInt || toks[2].num != 2.5 {
		t.Errorf("2.5 lexed as %+v", toks[2])
	}
	if toks[3].kind != tokNum || toks[3].num != -0.5 {
		t.Errorf("-0.5 lexed as %+v", toks[3])
	}
	if toks[4].kind != tokSym || toks[4].text != "12abc" {
		t.Errorf("12abc lexed as %+v", toks[4])
	}
	if toks[5].kind != tokSym || toks[5].text != "abc-12" {
		t.Errorf("abc-12 lexed as %+v", toks[5])
	}
	if toks[6].kind != tokSym || toks[6].text != "-" {
		t.Errorf("- lexed as %+v", toks[6])
	}
}

func TestLexAttrAndComment(t *testing.T) {
	toks, err := lexAll("^color red ; trailing comment\n^next")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokAttr || toks[0].text != "color" {
		t.Errorf("^color lexed as %+v", toks[0])
	}
	if toks[2].kind != tokAttr || toks[2].text != "next" {
		t.Errorf("^next lexed as %+v", toks[2])
	}
	if toks[2].line != 2 {
		t.Errorf("line tracking: got %d, want 2", toks[2].line)
	}
}

func TestLexBareCaretIsError(t *testing.T) {
	if _, err := lexAll("( ^ )"); err == nil {
		t.Fatal("bare ^ should be a lex error")
	}
}

// Property: the lexer never panics and always terminates on arbitrary
// input (it may return an error).
func TestLexerTotal(t *testing.T) {
	f := func(s string) bool {
		toks, err := lexAll(s)
		return err != nil || toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestParserTotal(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
