package ops5

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind is a lexical token class.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLDisj // <<
	tokRDisj // >>
	tokSym   // bare symbol, including --> and operators like + - * // \\
	tokNum
	tokVar  // <x>
	tokAttr // ^attr
	tokPred // <> < <= > >= <=> = (when in test position the parser asks)
)

type token struct {
	kind  tokKind
	text  string // symbol/attr/var text
	num   float64
	isInt bool
	inum  int64
	line  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokLDisj:
		return "<<"
	case tokRDisj:
		return ">>"
	case tokVar:
		return "<" + t.text + ">"
	case tokAttr:
		return "^" + t.text
	case tokNum:
		if t.isInt {
			return strconv.FormatInt(t.inum, 10)
		}
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	default:
		return t.text
	}
}

// lexer produces OPS5 tokens. OPS5 lexing quirks handled here: variables
// are <name>; << and >> delimit disjunctions; predicates <, <=, <=>, <>,
// >, >= are distinct tokens; ; starts a comment to end of line.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '(', ')', '{', '}', ';', '^':
		return true
	}
	return false
}

func (l *lexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ';' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '\n' {
			l.line++
			l.pos++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	ln := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: ln}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, line: ln}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, line: ln}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, line: ln}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: ln}, nil
	case '^':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && !isDelim(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			return token{}, fmt.Errorf("line %d: ^ must be followed by an attribute name", ln)
		}
		return token{kind: tokAttr, text: l.src[start:l.pos], line: ln}, nil
	case '<':
		return l.lexLess(ln)
	case '>':
		if l.at(1) == '>' {
			l.pos += 2
			return token{kind: tokRDisj, line: ln}, nil
		}
		if l.at(1) == '=' {
			l.pos += 2
			return token{kind: tokPred, text: ">=", line: ln}, nil
		}
		l.pos++
		return token{kind: tokPred, text: ">", line: ln}, nil
	case '=':
		l.pos++
		return token{kind: tokPred, text: "=", line: ln}, nil
	case '"':
		// Double-quoted symbol: the quoted text becomes one symbol, spaces
		// and all, as in OPS5 write actions ("Enter id number:  ").
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				l.line++
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("line %d: unterminated string", ln)
		}
		text := l.src[start:l.pos]
		l.pos++
		return token{kind: tokSym, text: text, line: ln}, nil
	}
	// Number or symbol. A token is a number if it fully parses as one.
	start := l.pos
	for l.pos < len(l.src) && !isDelim(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if n, err := strconv.ParseInt(text, 10, 64); err == nil {
		return token{kind: tokNum, isInt: true, inum: n, line: ln}, nil
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil && strings.ContainsAny(text, "0123456789") {
		return token{kind: tokNum, num: f, line: ln}, nil
	}
	return token{kind: tokSym, text: text, line: ln}, nil
}

// lexLess disambiguates the many tokens that begin with '<'.
func (l *lexer) lexLess(ln int) (token, error) {
	switch l.at(1) {
	case '<':
		l.pos += 2
		return token{kind: tokLDisj, line: ln}, nil
	case '>':
		l.pos += 2
		return token{kind: tokPred, text: "<>", line: ln}, nil
	case '=':
		if l.at(2) == '>' {
			l.pos += 3
			return token{kind: tokPred, text: "<=>", line: ln}, nil
		}
		l.pos += 2
		return token{kind: tokPred, text: "<=", line: ln}, nil
	}
	// <name> is a variable; a bare '<' is the less-than predicate.
	j := l.pos + 1
	for j < len(l.src) && l.src[j] != '>' && !isDelim(l.src[j]) && l.src[j] != '<' {
		j++
	}
	if j < len(l.src) && l.src[j] == '>' && j > l.pos+1 {
		name := l.src[l.pos+1 : j]
		l.pos = j + 1
		return token{kind: tokVar, text: name, line: ln}, nil
	}
	l.pos++
	return token{kind: tokPred, text: "<", line: ln}, nil
}

// lexAll tokenizes the whole source, for the parser's token buffer.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
