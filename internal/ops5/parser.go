package ops5

import (
	"fmt"

	"repro/internal/symbols"
	"repro/internal/wm"
)

// ParseTopLevelMake parses a single (make ...) form against an existing
// program, interning symbols and auto-extending undeclared classes in
// place — the OPS5 top-level make, used by the REPL.
func (prog *Program) ParseTopLevelMake(src string) (*Action, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: prog}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	head, err := p.expect(tokSym, "make")
	if err != nil {
		return nil, err
	}
	if head.text != "make" {
		return nil, fmt.Errorf("expected a (make ...) form, got %q", head.text)
	}
	act, err := p.parseMakeBody(nil, head.line)
	if err != nil {
		return nil, err
	}
	if err := requireGroundAction(act); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("trailing input after make form")
	}
	return act, nil
}

// Parse parses OPS5 source into a Program. The accepted dialect is
// documented in DESIGN.md: literalize, p, strategy, and top-level make.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		prog: &Program{
			Symbols:     symbols.NewTable(),
			Strategy:    "lex",
			Classes:     make(map[symbols.ID]*Class),
			VectorAttrs: make(map[symbols.ID]bool),
			Watch:       -1,
		},
	}
	p.rules = &p.prog.Rules
	if err := p.parseTop(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// ProgramChange is one dynamic program edit: exactly one of Add and
// Excise is set. ParseProductions returns them in source order, which
// matters — (excise r) followed by (p r ...) redefines r.
type ProgramChange struct {
	Add    *Rule
	Excise string
}

// ParseProductions parses a runtime batch of (p ...) and (excise name)
// forms against an existing — typically frozen — program. It interns
// symbols (thread-safe) but never mutates prog.Rules or the class
// tables: new rules are returned to the caller, who owns applying them
// to whichever network epoch it is building. Unknown classes and
// attributes are errors when the program is frozen.
func (prog *Program) ParseProductions(src string) ([]ProgramChange, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	var added []*Rule
	p := &parser{toks: toks, prog: prog, rules: &added}
	var changes []ProgramChange
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return changes, nil
		}
		if t.kind != tokLParen {
			return nil, p.errf(t, "expected (p ...) or (excise ...) form, got %q", t.String())
		}
		p.advance()
		head, err := p.expect(tokSym, "form head")
		if err != nil {
			return nil, err
		}
		switch head.text {
		case "p":
			before := len(added)
			if err := p.parseProduction(head.line); err != nil {
				return nil, err
			}
			changes = append(changes, ProgramChange{Add: added[before]})
		case "excise":
			name, err := p.expect(tokSym, "production name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			changes = append(changes, ProgramChange{Excise: name.text})
		default:
			return nil, p.errf(head, "only (p ...) and (excise ...) are allowed in a runtime batch, got %q", head.text)
		}
	}
}

type parser struct {
	toks []token
	pos  int
	prog *Program
	// rules is where parseProduction appends finished rules: the
	// program's own list for Parse, a caller-local list for
	// ParseProductions (which must not mutate a shared frozen program).
	rules *[]*Rule
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.advance()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %q", what, t.String())
	}
	return t, nil
}

func (p *parser) intern(name string) symbols.ID { return p.prog.Symbols.Intern(name) }

// parseTop handles the sequence of top-level forms.
func (p *parser) parseTop() error {
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil
		}
		if t.kind != tokLParen {
			return p.errf(t, "expected top-level form, got %q", t.String())
		}
		p.advance()
		head, err := p.expect(tokSym, "form head")
		if err != nil {
			return err
		}
		switch head.text {
		case "literalize":
			if err := p.parseLiteralize(); err != nil {
				return err
			}
		case "p":
			if err := p.parseProduction(head.line); err != nil {
				return err
			}
		case "excise":
			name, err := p.expect(tokSym, "production name")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
			if !p.prog.ExciseRule(name.text) {
				return p.errf(name, "excise: no production named %s", name.text)
			}
		case "strategy":
			s, err := p.expect(tokSym, "strategy name")
			if err != nil {
				return err
			}
			if s.text != "lex" && s.text != "mea" {
				return p.errf(s, "unknown strategy %q (want lex or mea)", s.text)
			}
			p.prog.Strategy = s.text
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
		case "make":
			act, err := p.parseMakeBody(nil, head.line)
			if err != nil {
				return err
			}
			if err := requireGroundAction(act); err != nil {
				return p.errf(head, "top-level make: %v", err)
			}
			p.prog.InitialMakes = append(p.prog.InitialMakes, act)
		case "vector-attribute":
			if err := p.parseVectorAttribute(); err != nil {
				return err
			}
		case "watch":
			n, err := p.expect(tokNum, "watch level")
			if err != nil {
				return err
			}
			if !n.isInt || n.inum < 0 || n.inum > 2 {
				return p.errf(n, "watch level %s out of range (want 0, 1 or 2)", n.String())
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
			p.prog.Watch = int(n.inum)
		default:
			return p.errf(head, "unknown top-level form %q", head.text)
		}
	}
}

// parseLiteralize reads (literalize class attr...).
func (p *parser) parseLiteralize() error {
	name, err := p.expect(tokSym, "class name")
	if err != nil {
		return err
	}
	id := p.intern(name.text)
	if c, ok := p.prog.Classes[id]; ok && c.Declared {
		return p.errf(name, "class %s literalized twice", name.text)
	}
	c := p.prog.ClassOf(id)
	c.Declared = true
	for {
		t := p.advance()
		switch t.kind {
		case tokRParen:
			return p.checkVectorLayout(c, t)
		case tokSym:
			a := p.intern(t.text)
			if _, dup := c.Fields[a]; dup {
				return p.errf(t, "attribute %s repeated in literalize %s", t.text, name.text)
			}
			c.Fields[a] = len(c.FieldAttr)
			c.FieldAttr = append(c.FieldAttr, a)
		default:
			return p.errf(t, "expected attribute name in literalize, got %q", t.String())
		}
	}
}

// checkVectorLayout validates that any attribute of class c declared by a
// (vector-attribute ...) form sits in the last literalized field, and
// records it as the class's vector field. It runs both when a literalize
// completes and when a vector-attribute form names an already-literalized
// attribute, so the two declarations may appear in either order.
func (p *parser) checkVectorLayout(c *Class, at token) error {
	for a, i := range c.Fields {
		if !p.prog.VectorAttrs[a] {
			continue
		}
		if i != len(c.FieldAttr)-1 {
			return p.errf(at, "vector attribute %s must be the last literalize field of class %s",
				p.prog.Symbols.Name(a), p.prog.Symbols.Name(c.Name))
		}
		c.VectorField = i
	}
	return nil
}

// parseVectorAttribute reads (vector-attribute attr...). The named
// attributes hold variable-length value vectors occupying the trailing
// fields of their WMEs; each must be the last field of every class that
// literalizes it.
func (p *parser) parseVectorAttribute() error {
	n := 0
	for {
		t := p.advance()
		switch t.kind {
		case tokRParen:
			if n == 0 {
				return p.errf(t, "vector-attribute needs at least one attribute name")
			}
			return nil
		case tokSym:
			p.prog.VectorAttrs[p.intern(t.text)] = true
			n++
			for _, c := range p.prog.Classes {
				if c.Declared {
					if err := p.checkVectorLayout(c, t); err != nil {
						return err
					}
				}
			}
		default:
			return p.errf(t, "expected attribute name in vector-attribute, got %q", t.String())
		}
	}
}

// parseProduction reads the remainder of (p name CE... --> action...).
func (p *parser) parseProduction(line int) error {
	name, err := p.expect(tokSym, "production name")
	if err != nil {
		return err
	}
	r := &Rule{Name: name.text, Line: line}
	// Left-hand side: condition elements until -->.
	for {
		t := p.cur()
		if t.kind == tokSym && t.text == "-->" {
			p.advance()
			break
		}
		neg := false
		if t.kind == tokSym && t.text == "-" {
			neg = true
			p.advance()
			t = p.cur()
		}
		var ce *CondElem
		var err error
		switch t.kind {
		case tokLParen:
			ce, err = p.parseCE(neg)
		case tokLBrace:
			// { <var> (pattern) } binds the element to a variable the
			// RHS can name in remove/modify. Negated elements match no
			// element, so they cannot carry one.
			if neg {
				return p.errf(t, "negated condition element cannot have an element variable")
			}
			ce, err = p.parseElemCE()
		default:
			return p.errf(t, "expected condition element in %s, got %q", r.Name, t.String())
		}
		if err != nil {
			return fmt.Errorf("production %s: %w", r.Name, err)
		}
		r.CEs = append(r.CEs, ce)
	}
	if len(r.CEs) == 0 {
		return p.errf(name, "production %s has no condition elements", r.Name)
	}
	if r.PositiveCEs() == 0 {
		return p.errf(name, "production %s has only negated condition elements", r.Name)
	}
	// Right-hand side: actions until the closing paren of the p form.
	for {
		t := p.cur()
		if t.kind == tokRParen {
			p.advance()
			break
		}
		if t.kind != tokLParen {
			return p.errf(t, "expected action in %s, got %q", r.Name, t.String())
		}
		act, err := p.parseAction(r)
		if err != nil {
			return fmt.Errorf("production %s: %w", r.Name, err)
		}
		r.Actions = append(r.Actions, act)
	}
	if err := checkRule(p.prog, r); err != nil {
		return fmt.Errorf("production %s: %w", r.Name, err)
	}
	*p.rules = append(*p.rules, r)
	return nil
}

// classRef resolves a class reference, honouring the freeze: on a
// frozen program an unknown class is a parse error rather than an
// implicit declaration.
func (p *parser) classRef(at token, name string) (*Class, error) {
	id := p.intern(name)
	if c, ok := p.prog.Classes[id]; ok {
		return c, nil
	}
	if p.prog.Frozen() {
		return nil, p.errf(at, "class %s is not defined (the program is frozen: new classes cannot be introduced at runtime)", name)
	}
	return p.prog.ClassOf(id), nil
}

// parseElemCE reads { <var> (pattern) } or { (pattern) <var> }.
func (p *parser) parseElemCE() (*CondElem, error) {
	open := p.advance() // consume {
	var elemVar string
	var ce *CondElem
	for i := 0; i < 2; i++ {
		t := p.cur()
		switch t.kind {
		case tokVar:
			if elemVar != "" {
				return nil, p.errf(t, "element binding has two variables")
			}
			elemVar = t.text
			p.advance()
		case tokLParen:
			if ce != nil {
				return nil, p.errf(t, "element binding has two patterns")
			}
			var err error
			ce, err = p.parseCE(false)
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t, "expected <variable> or (pattern) in element binding, got %q", t.String())
		}
	}
	if elemVar == "" || ce == nil {
		return nil, p.errf(open, "element binding needs both a variable and a pattern")
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	ce.ElemVar = elemVar
	return ce, nil
}

// parseCE reads one parenthesized condition element.
func (p *parser) parseCE(negated bool) (*CondElem, error) {
	open, err := p.expect(tokLParen, "(")
	if err != nil {
		return nil, err
	}
	cls, err := p.expect(tokSym, "class name")
	if err != nil {
		return nil, err
	}
	ce := &CondElem{Negated: negated, Class: p.intern(cls.text), Line: open.line}
	class, err := p.classRef(cls, cls.text)
	if err != nil {
		return nil, err
	}
	for {
		t := p.advance()
		switch t.kind {
		case tokRParen:
			return ce, nil
		case tokAttr:
			attr := p.intern(t.text)
			field, err := p.prog.FieldIndex(class, attr)
			if err != nil {
				return nil, p.errf(t, "%v", err)
			}
			terms, err := p.parseAttrValue()
			if err != nil {
				return nil, err
			}
			ce.Tests = append(ce.Tests, AttrTest{Field: field, Attr: attr, Terms: terms})
			if class.VectorField > 0 && field == class.VectorField {
				// Vector attribute: further value terms before the next
				// ^attr or ) test the consecutive continuation fields.
				for k := 1; !atValueEnd(p.cur().kind); k++ {
					terms, err := p.parseAttrValue()
					if err != nil {
						return nil, err
					}
					ce.Tests = append(ce.Tests, AttrTest{Field: field + k, Attr: attr, Terms: terms})
				}
			}
		default:
			return nil, p.errf(t, "expected ^attribute in condition element, got %q", t.String())
		}
	}
}

// atValueEnd reports that the token after a vector attribute's value
// terminates the run of continuation values.
func atValueEnd(k tokKind) bool {
	return k == tokRParen || k == tokAttr || k == tokEOF
}

// parseAttrValue reads the value part after ^attr: a single term, a
// curly-brace conjunction, or a disjunction of constants.
func (p *parser) parseAttrValue() ([]TestTerm, error) {
	t := p.cur()
	switch t.kind {
	case tokLBrace:
		p.advance()
		var terms []TestTerm
		for {
			if p.cur().kind == tokRBrace {
				p.advance()
				if len(terms) == 0 {
					return nil, p.errf(t, "empty {} conjunction")
				}
				return terms, nil
			}
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			terms = append(terms, term)
		}
	default:
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return []TestTerm{term}, nil
	}
}

// parseTerm reads one predicate application: [pred] operand, or a
// disjunction << c1 c2 ... >>.
func (p *parser) parseTerm() (TestTerm, error) {
	t := p.advance()
	pred := PredEQ
	if t.kind == tokPred {
		switch t.text {
		case "=":
			pred = PredEQ
		case "<>":
			pred = PredNE
		case "<":
			pred = PredLT
		case "<=":
			pred = PredLE
		case ">":
			pred = PredGT
		case ">=":
			pred = PredGE
		case "<=>":
			pred = PredSameType
		}
		t = p.advance()
	}
	switch t.kind {
	case tokLDisj:
		if pred != PredEQ {
			return TestTerm{}, p.errf(t, "disjunction << >> only supports equality")
		}
		var disj []wm.Value
		for {
			d := p.advance()
			switch d.kind {
			case tokRDisj:
				if len(disj) == 0 {
					return TestTerm{}, p.errf(t, "empty << >> disjunction")
				}
				return TestTerm{Pred: PredEQ, Disj: disj}, nil
			case tokSym:
				disj = append(disj, p.symVal(d.text))
			case tokNum:
				disj = append(disj, numVal(d))
			default:
				return TestTerm{}, p.errf(d, "only constants allowed in << >>, got %q", d.String())
			}
		}
	case tokVar:
		return TestTerm{Pred: pred, IsVar: true, Var: t.text}, nil
	case tokSym:
		return TestTerm{Pred: pred, Const: p.symVal(t.text)}, nil
	case tokNum:
		return TestTerm{Pred: pred, Const: numVal(t)}, nil
	default:
		return TestTerm{}, p.errf(t, "expected test value, got %q", t.String())
	}
}

func numVal(t token) wm.Value {
	if t.isInt {
		return wm.Int(t.inum)
	}
	return wm.Float(t.num)
}

// symVal interns a symbol constant. The symbol nil is the distinguished
// unset value: OPS5 attributes that were never assigned hold nil, and
// (make c ^a nil) must store the same value that matching tests compare
// against.
func (p *parser) symVal(text string) wm.Value {
	if text == "nil" {
		return wm.Nil
	}
	return wm.Sym(p.intern(text))
}

// parseAction reads one parenthesized RHS action. rule is nil for
// top-level makes.
func (p *parser) parseAction(rule *Rule) (*Action, error) {
	open, err := p.expect(tokLParen, "(")
	if err != nil {
		return nil, err
	}
	head, err := p.expect(tokSym, "action name")
	if err != nil {
		return nil, err
	}
	switch head.text {
	case "make":
		return p.parseMakeBody(rule, open.line)
	case "modify":
		return p.parseModifyBody(rule, open.line)
	case "remove":
		idx, n, err := p.ceRef(rule)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		act := &Action{Kind: ActRemove, CEIndex: idx, Line: open.line}
		return act, p.checkCEIndex(rule, act, n)
	case "bind":
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &Action{Kind: ActBind, Var: v.text, Args: []*Expr{e}, Line: open.line}, nil
	case "write":
		act := &Action{Kind: ActWrite, Line: open.line}
		for p.cur().kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			act.Args = append(act.Args, e)
		}
		p.advance()
		return act, nil
	case "halt":
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &Action{Kind: ActHalt, Line: open.line}, nil
	default:
		return nil, p.errf(head, "unknown action %q", head.text)
	}
}

func (p *parser) checkCEIndex(rule *Rule, act *Action, at token) error {
	if rule == nil {
		return p.errf(at, "modify/remove not allowed at top level")
	}
	if act.CEIndex < 1 || act.CEIndex > len(rule.CEs) {
		return p.errf(at, "condition-element index %d out of range 1..%d", act.CEIndex, len(rule.CEs))
	}
	if rule.CEs[act.CEIndex-1].Negated {
		return p.errf(at, "cannot modify/remove negated condition element %d", act.CEIndex)
	}
	return nil
}

// parseMakeBody reads the tail of (make class ^attr expr ...).
func (p *parser) parseMakeBody(rule *Rule, line int) (*Action, error) {
	cls, err := p.expect(tokSym, "class name")
	if err != nil {
		return nil, err
	}
	act := &Action{Kind: ActMake, Class: p.intern(cls.text), Line: line}
	class, err := p.classRef(cls, cls.text)
	if err != nil {
		return nil, err
	}
	if err := p.parseSets(act, class); err != nil {
		return nil, err
	}
	return act, nil
}

// ceRef reads a condition-element reference: a 1-based number or an
// element variable bound with { <var> (pattern) }.
func (p *parser) ceRef(rule *Rule) (int, token, error) {
	t := p.advance()
	switch t.kind {
	case tokNum:
		return int(t.inum), t, nil
	case tokVar:
		if rule != nil {
			for i, ce := range rule.CEs {
				if ce.ElemVar == t.text {
					return i + 1, t, nil
				}
			}
		}
		return 0, t, p.errf(t, "no element variable <%s> in this production", t.text)
	}
	return 0, t, p.errf(t, "expected condition-element number or element variable, got %q", t.String())
}

// parseModifyBody reads the tail of (modify k ^attr expr ...).
func (p *parser) parseModifyBody(rule *Rule, line int) (*Action, error) {
	idx, n, err := p.ceRef(rule)
	if err != nil {
		return nil, err
	}
	act := &Action{Kind: ActModify, CEIndex: idx, Line: line}
	if err := p.checkCEIndex(rule, act, n); err != nil {
		return nil, err
	}
	class := p.prog.ClassOf(rule.CEs[act.CEIndex-1].Class)
	act.Class = class.Name // lets printers resolve the class's vector field
	if err := p.parseSets(act, class); err != nil {
		return nil, err
	}
	return act, nil
}

// parseSets reads ^attr expr pairs up to the closing paren.
func (p *parser) parseSets(act *Action, class *Class) error {
	for {
		t := p.advance()
		switch t.kind {
		case tokRParen:
			return nil
		case tokAttr:
			attr := p.intern(t.text)
			field, err := p.prog.FieldIndex(class, attr)
			if err != nil {
				return p.errf(t, "%v", err)
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			act.Sets = append(act.Sets, AttrSet{Attr: attr, Field: field, Expr: e})
			if class.VectorField > 0 && field == class.VectorField {
				// Vector attribute: further expressions before the next
				// ^attr or ) fill the consecutive continuation fields.
				for k := 1; !atValueEnd(p.cur().kind); k++ {
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					act.Sets = append(act.Sets, AttrSet{Attr: attr, Field: field + k, Expr: e})
				}
			}
		default:
			return p.errf(t, "expected ^attribute in %s, got %q", actName(act.Kind), t.String())
		}
	}
}

func actName(k ActionKind) string {
	switch k {
	case ActMake:
		return "make"
	case ActModify:
		return "modify"
	case ActRemove:
		return "remove"
	case ActBind:
		return "bind"
	case ActWrite:
		return "write"
	case ActHalt:
		return "halt"
	}
	return "?"
}

// parseExpr reads one RHS value: constant, variable, or a parenthesized
// special form (compute/crlf/tabto/accept).
func (p *parser) parseExpr() (*Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokVar:
		return &Expr{Kind: ExprVar, Var: t.text}, nil
	case tokSym:
		return &Expr{Kind: ExprConst, Const: p.symVal(t.text)}, nil
	case tokNum:
		return &Expr{Kind: ExprConst, Const: numVal(t)}, nil
	case tokLParen:
		head, err := p.expect(tokSym, "special form name")
		if err != nil {
			return nil, err
		}
		switch head.text {
		case "compute":
			e, err := p.parseCompute()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "crlf":
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprCrlf}, nil
		case "tabto":
			n, err := p.expect(tokNum, "column")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprTabto, Const: wm.Int(n.inum)}, nil
		case "accept":
			if p.cur().kind != tokRParen {
				return nil, p.errf(head, "(accept) takes no arguments")
			}
			p.advance()
			return &Expr{Kind: ExprAccept}, nil
		case "acceptline":
			if p.cur().kind != tokRParen {
				return nil, p.errf(head, "(acceptline) takes no arguments")
			}
			p.advance()
			return &Expr{Kind: ExprAcceptLine}, nil
		default:
			return nil, p.errf(head, "unknown value form %q", head.text)
		}
	default:
		return nil, p.errf(t, "expected RHS value, got %q", t.String())
	}
}

// parseCompute reads an infix compute body. OPS5 compute has no operator
// precedence and associates right-to-left: a + b * c = a + (b * c).
func (p *parser) parseCompute() (*Expr, error) {
	lhs, err := p.parseComputeOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op byte
	switch {
	case t.kind == tokSym && t.text == "+":
		op = '+'
	case t.kind == tokSym && t.text == "-":
		op = '-'
	case t.kind == tokSym && t.text == "*":
		op = '*'
	case t.kind == tokSym && t.text == "//":
		op = '/'
	case t.kind == tokSym && t.text == "\\\\":
		op = '%'
	default:
		return lhs, nil
	}
	p.advance()
	rhs, err := p.parseCompute()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ExprCompute, Op: op, L: lhs, R: rhs}, nil
}

func (p *parser) parseComputeOperand() (*Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokVar:
		return &Expr{Kind: ExprVar, Var: t.text}, nil
	case tokNum:
		return &Expr{Kind: ExprConst, Const: numVal(t)}, nil
	case tokLParen:
		// Nested parenthesized compute sub-expression.
		e, err := p.parseCompute()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(t, "expected compute operand, got %q", t.String())
	}
}

// requireGroundAction rejects variables in top-level makes, which have
// no bindings to draw from.
func requireGroundAction(act *Action) error {
	var walk func(e *Expr) error
	walk = func(e *Expr) error {
		if e == nil {
			return nil
		}
		if e.Kind == ExprVar {
			return fmt.Errorf("variable <%s> outside a production", e.Var)
		}
		if err := walk(e.L); err != nil {
			return err
		}
		return walk(e.R)
	}
	for _, s := range act.Sets {
		if err := walk(s.Expr); err != nil {
			return err
		}
	}
	return nil
}

// checkRule validates variable usage: every variable consumed by the RHS
// or by a negated CE must be bound by a positive CE or a bind action
// before use.
func checkRule(prog *Program, r *Rule) error {
	bound := make(map[string]bool)
	for _, ce := range r.CEs {
		if ce.Negated {
			continue
		}
		for _, at := range ce.Tests {
			for _, term := range at.Terms {
				if term.IsVar && term.Pred == PredEQ {
					bound[term.Var] = true
				}
			}
		}
	}
	// Negated CEs may only *test* variables bound positively, except that
	// variables appearing solely inside one negated CE act as wildcards
	// bound within that CE (standard OPS5 semantics, handled by the Rete
	// compiler); nothing to reject here.
	var checkExpr func(e *Expr) error
	checkExpr = func(e *Expr) error {
		if e == nil {
			return nil
		}
		if e.Kind == ExprVar && !bound[e.Var] {
			return fmt.Errorf("variable <%s> used in RHS but never bound", e.Var)
		}
		if err := checkExpr(e.L); err != nil {
			return err
		}
		return checkExpr(e.R)
	}
	for _, act := range r.Actions {
		for _, s := range act.Sets {
			if err := checkExpr(s.Expr); err != nil {
				return err
			}
		}
		for _, a := range act.Args {
			if err := checkExpr(a); err != nil {
				return err
			}
		}
		if act.Kind == ActBind {
			bound[act.Var] = true
		}
	}
	return nil
}
