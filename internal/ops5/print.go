package ops5

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/symbols"
	"repro/internal/wm"
)

// FormatProgram renders the whole program back to OPS5 source: strategy,
// watch, literalize and vector-attribute declarations in a stable order,
// then the rules and initial makes. cmd/ops5c uses it to pretty-print.
func (p *Program) FormatProgram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(strategy %s)\n", p.Strategy)
	if p.Watch >= 0 {
		fmt.Fprintf(&b, "(watch %d)\n", p.Watch)
	}
	names := make([]string, 0, len(p.Classes))
	byName := make(map[string]*Class, len(p.Classes))
	for _, c := range p.Classes {
		if !c.Declared {
			continue
		}
		n := p.Symbols.Name(c.Name)
		names = append(names, n)
		byName[n] = c
	}
	sort.Strings(names)
	for _, n := range names {
		b.WriteString("(literalize " + n)
		for _, a := range byName[n].FieldAttr[1:] {
			b.WriteString(" " + p.Symbols.Name(a))
		}
		b.WriteString(")\n")
	}
	var vecs []string
	for a := range p.VectorAttrs {
		vecs = append(vecs, p.Symbols.Name(a))
	}
	sort.Strings(vecs)
	if len(vecs) > 0 {
		b.WriteString("(vector-attribute " + strings.Join(vecs, " ") + ")\n")
	}
	for _, r := range p.Rules {
		b.WriteString(p.FormatRule(r))
		b.WriteByte('\n')
	}
	for _, m := range p.InitialMakes {
		b.WriteString(p.FormatAction(m))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatRule renders a production back to OPS5 source. The output
// round-trips: parsing it again yields a structurally identical rule
// (the print_test property locks this in).
func (p *Program) FormatRule(r *Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s\n", r.Name)
	for _, ce := range r.CEs {
		b.WriteString("  ")
		if ce.Negated {
			b.WriteString("- ")
		}
		if ce.ElemVar != "" {
			fmt.Fprintf(&b, "{ <%s> %s }", ce.ElemVar, p.formatCE(ce))
		} else {
			b.WriteString(p.formatCE(ce))
		}
		b.WriteByte('\n')
	}
	b.WriteString("-->\n")
	for _, act := range r.Actions {
		b.WriteString("  ")
		b.WriteString(p.FormatAction(act))
		b.WriteByte('\n')
	}
	b.WriteString(")")
	return b.String()
}

// vectorFieldOf resolves the vector field of a class for printing; 0
// when the class has none (or is unknown to this program).
func (p *Program) vectorFieldOf(class symbols.ID) int {
	if c, ok := p.Classes[class]; ok {
		return c.VectorField
	}
	return 0
}

func (p *Program) formatCE(ce *CondElem) string {
	vf := p.vectorFieldOf(ce.Class)
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(p.Symbols.Name(ce.Class))
	for _, at := range ce.Tests {
		if vf > 0 && at.Field > vf {
			// Continuation field of a vector attribute: the value prints
			// bare after the vector's ^attr and first value.
			b.WriteByte(' ')
		} else {
			fmt.Fprintf(&b, " ^%s ", p.Symbols.Name(at.Attr))
		}
		if len(at.Terms) == 1 && at.Terms[0].Pred == PredEQ && at.Terms[0].Disj == nil {
			b.WriteString(p.formatTerm(&at.Terms[0]))
			continue
		}
		if len(at.Terms) == 1 && at.Terms[0].Disj != nil {
			b.WriteString(p.formatTerm(&at.Terms[0]))
			continue
		}
		b.WriteByte('{')
		for i := range at.Terms {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(p.formatTerm(&at.Terms[i]))
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	return b.String()
}

func (p *Program) formatTerm(t *TestTerm) string {
	if t.Disj != nil {
		parts := make([]string, len(t.Disj))
		for i, d := range t.Disj {
			parts[i] = p.formatValue(d)
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	}
	prefix := ""
	if t.Pred != PredEQ {
		prefix = t.Pred.String() + " "
	}
	if t.IsVar {
		return fmt.Sprintf("%s<%s>", prefix, t.Var)
	}
	return prefix + p.formatValue(t.Const)
}

func (p *Program) formatValue(v wm.Value) string { return v.String(p.Symbols) }

// FormatAction renders one RHS action.
func (p *Program) FormatAction(act *Action) string {
	var b strings.Builder
	switch act.Kind {
	case ActMake:
		fmt.Fprintf(&b, "(make %s", p.Symbols.Name(act.Class))
		p.formatSets(&b, act.Class, act.Sets)
		b.WriteByte(')')
	case ActModify:
		fmt.Fprintf(&b, "(modify %d", act.CEIndex)
		p.formatSets(&b, act.Class, act.Sets)
		b.WriteByte(')')
	case ActRemove:
		fmt.Fprintf(&b, "(remove %d)", act.CEIndex)
	case ActBind:
		fmt.Fprintf(&b, "(bind <%s> %s)", act.Var, p.FormatExpr(act.Args[0]))
	case ActWrite:
		b.WriteString("(write")
		for _, a := range act.Args {
			b.WriteByte(' ')
			b.WriteString(p.FormatExpr(a))
		}
		b.WriteByte(')')
	case ActHalt:
		b.WriteString("(halt)")
	}
	return b.String()
}

func (p *Program) formatSets(b *strings.Builder, class symbols.ID, sets []AttrSet) {
	vf := p.vectorFieldOf(class)
	for _, s := range sets {
		if vf > 0 && s.Field > vf {
			fmt.Fprintf(b, " %s", p.FormatExpr(s.Expr))
		} else {
			fmt.Fprintf(b, " ^%s %s", p.Symbols.Name(s.Attr), p.FormatExpr(s.Expr))
		}
	}
}

// FormatExpr renders an RHS value expression.
func (p *Program) FormatExpr(e *Expr) string {
	switch e.Kind {
	case ExprConst:
		return p.formatValue(e.Const)
	case ExprVar:
		return "<" + e.Var + ">"
	case ExprCompute:
		return "(compute " + p.formatComputeBody(e) + ")"
	case ExprCrlf:
		return "(crlf)"
	case ExprTabto:
		return fmt.Sprintf("(tabto %d)", e.Const.Num)
	case ExprAccept:
		return "(accept)"
	case ExprAcceptLine:
		return "(acceptline)"
	}
	return "?"
}

// formatComputeBody prints an infix compute tree. Compute associates
// right-to-left with no precedence, so the left operand of a nested
// compute needs explicit parentheses while right nesting does not.
func (p *Program) formatComputeBody(e *Expr) string {
	op := map[byte]string{'+': "+", '-': "-", '*': "*", '/': "//", '%': `\\`}[e.Op]
	return p.formatComputeOperand(e.L) + " " + op + " " + p.formatComputeTail(e.R)
}

func (p *Program) formatComputeOperand(e *Expr) string {
	if e.Kind == ExprCompute {
		return "(" + p.formatComputeBody(e) + ")"
	}
	return p.FormatExpr(e)
}

func (p *Program) formatComputeTail(e *Expr) string {
	if e.Kind == ExprCompute {
		return p.formatComputeBody(e)
	}
	return p.FormatExpr(e)
}
