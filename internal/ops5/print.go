package ops5

import (
	"fmt"
	"strings"

	"repro/internal/wm"
)

// FormatRule renders a production back to OPS5 source. The output
// round-trips: parsing it again yields a structurally identical rule
// (the print_test property locks this in).
func (p *Program) FormatRule(r *Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s\n", r.Name)
	for _, ce := range r.CEs {
		b.WriteString("  ")
		if ce.Negated {
			b.WriteString("- ")
		}
		if ce.ElemVar != "" {
			fmt.Fprintf(&b, "{ <%s> %s }", ce.ElemVar, p.formatCE(ce))
		} else {
			b.WriteString(p.formatCE(ce))
		}
		b.WriteByte('\n')
	}
	b.WriteString("-->\n")
	for _, act := range r.Actions {
		b.WriteString("  ")
		b.WriteString(p.FormatAction(act))
		b.WriteByte('\n')
	}
	b.WriteString(")")
	return b.String()
}

func (p *Program) formatCE(ce *CondElem) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(p.Symbols.Name(ce.Class))
	for _, at := range ce.Tests {
		fmt.Fprintf(&b, " ^%s ", p.Symbols.Name(at.Attr))
		if len(at.Terms) == 1 && at.Terms[0].Pred == PredEQ && at.Terms[0].Disj == nil {
			b.WriteString(p.formatTerm(&at.Terms[0]))
			continue
		}
		if len(at.Terms) == 1 && at.Terms[0].Disj != nil {
			b.WriteString(p.formatTerm(&at.Terms[0]))
			continue
		}
		b.WriteByte('{')
		for i := range at.Terms {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(p.formatTerm(&at.Terms[i]))
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	return b.String()
}

func (p *Program) formatTerm(t *TestTerm) string {
	if t.Disj != nil {
		parts := make([]string, len(t.Disj))
		for i, d := range t.Disj {
			parts[i] = p.formatValue(d)
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	}
	prefix := ""
	if t.Pred != PredEQ {
		prefix = t.Pred.String() + " "
	}
	if t.IsVar {
		return fmt.Sprintf("%s<%s>", prefix, t.Var)
	}
	return prefix + p.formatValue(t.Const)
}

func (p *Program) formatValue(v wm.Value) string { return v.String(p.Symbols) }

// FormatAction renders one RHS action.
func (p *Program) FormatAction(act *Action) string {
	var b strings.Builder
	switch act.Kind {
	case ActMake:
		fmt.Fprintf(&b, "(make %s", p.Symbols.Name(act.Class))
		p.formatSets(&b, act.Sets)
		b.WriteByte(')')
	case ActModify:
		fmt.Fprintf(&b, "(modify %d", act.CEIndex)
		p.formatSets(&b, act.Sets)
		b.WriteByte(')')
	case ActRemove:
		fmt.Fprintf(&b, "(remove %d)", act.CEIndex)
	case ActBind:
		fmt.Fprintf(&b, "(bind <%s> %s)", act.Var, p.FormatExpr(act.Args[0]))
	case ActWrite:
		b.WriteString("(write")
		for _, a := range act.Args {
			b.WriteByte(' ')
			b.WriteString(p.FormatExpr(a))
		}
		b.WriteByte(')')
	case ActHalt:
		b.WriteString("(halt)")
	}
	return b.String()
}

func (p *Program) formatSets(b *strings.Builder, sets []AttrSet) {
	for _, s := range sets {
		fmt.Fprintf(b, " ^%s %s", p.Symbols.Name(s.Attr), p.FormatExpr(s.Expr))
	}
}

// FormatExpr renders an RHS value expression.
func (p *Program) FormatExpr(e *Expr) string {
	switch e.Kind {
	case ExprConst:
		return p.formatValue(e.Const)
	case ExprVar:
		return "<" + e.Var + ">"
	case ExprCompute:
		return "(compute " + p.formatComputeBody(e) + ")"
	case ExprCrlf:
		return "(crlf)"
	case ExprTabto:
		return fmt.Sprintf("(tabto %d)", e.Const.Num)
	case ExprAccept:
		return "(accept)"
	}
	return "?"
}

// formatComputeBody prints an infix compute tree. Compute associates
// right-to-left with no precedence, so the left operand of a nested
// compute needs explicit parentheses while right nesting does not.
func (p *Program) formatComputeBody(e *Expr) string {
	op := map[byte]string{'+': "+", '-': "-", '*': "*", '/': "//", '%': `\\`}[e.Op]
	return p.formatComputeOperand(e.L) + " " + op + " " + p.formatComputeTail(e.R)
}

func (p *Program) formatComputeOperand(e *Expr) string {
	if e.Kind == ExprCompute {
		return "(" + p.formatComputeBody(e) + ")"
	}
	return p.FormatExpr(e)
}

func (p *Program) formatComputeTail(e *Expr) string {
	if e.Kind == ExprCompute {
		return p.formatComputeBody(e)
	}
	return p.FormatExpr(e)
}
