package ops5_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ops5"
)

// normalizeRule strips source-location fields so structural comparison
// ignores line numbers.
func normalizeRule(r *ops5.Rule) *ops5.Rule {
	cp := *r
	cp.Line = 0
	cp.CEs = make([]*ops5.CondElem, len(r.CEs))
	for i, ce := range r.CEs {
		c := *ce
		c.Line = 0
		cp.CEs[i] = &c
	}
	cp.Actions = make([]*ops5.Action, len(r.Actions))
	for i, a := range r.Actions {
		ac := *a
		ac.Line = 0
		cp.Actions[i] = &ac
	}
	return &cp
}

// TestFormatRuleRoundTrips: print(parse(x)) reparsed must equal
// parse(x) structurally, for a corpus covering every syntax feature.
func TestFormatRuleRoundTrips(t *testing.T) {
	corpus := []string{
		`(literalize c a b d)
(p simple (c ^a 1 ^b red) --> (halt))`,
		`(literalize c a b d)
(p vars (c ^a <x> ^b <> <x> ^d { > 3 <= 10 <y> }) --> (make c ^a <y>))`,
		`(literalize c a b d)
(p neg (c ^a <x>) - (c ^b <x>) --> (remove 1))`,
		`(literalize c a b d)
(p disj (c ^a << red green 3 >>) --> (write found (crlf) (tabto 8) x))`,
		`(literalize c a b d)
(p comp (c ^a <x>) --> (bind <y> (compute <x> + 2 * 3)) (modify 1 ^b <y>))`,
		`(literalize c a b d)
(p nested (c ^a <x>) --> (make c ^a (compute (<x> - 1) // 2)))`,
		`(literalize c a b d)
(p nilv (c ^a nil) --> (make c ^b nil))`,
		`(literalize c a b d)
(p acc (c ^a 1) --> (make c ^b (accept)))`,
	}
	for _, src := range corpus {
		prog, err := ops5.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		orig := prog.Rules[0]
		printed := prog.FormatRule(orig)
		reparsed, err := ops5.Parse("(literalize c a b d)\n" + printed)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, printed)
		}
		got := normalizeRule(reparsed.Rules[0])
		want := normalizeRule(orig)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round-trip mismatch for %s:\noriginal: %#v\nprinted:\n%s\nreparsed: %#v",
				orig.Name, want, printed, got)
		}
	}
}

func TestFormatRuleReadable(t *testing.T) {
	prog, err := ops5.Parse(`
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (modify 2 ^selected yes))
`)
	if err != nil {
		t.Fatal(err)
	}
	out := prog.FormatRule(prog.Rules[0])
	for _, want := range []string{"(p find-colored-block", "^color <c>", "(modify 2 ^selected yes)", "-->"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed rule missing %q:\n%s", want, out)
		}
	}
}
