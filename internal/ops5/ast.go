// Package ops5 implements the front end for the OPS5 production-system
// language: lexer, parser, literalize declarations and the AST consumed
// by the Rete compiler and the RHS threaded-code compiler.
package ops5

import (
	"fmt"

	"repro/internal/symbols"
	"repro/internal/wm"
)

// Pred is a test predicate from a condition element.
type Pred uint8

// Predicates supported in condition-element attribute tests.
const (
	PredEQ       Pred = iota // = (default)
	PredNE                   // <>
	PredLT                   // <
	PredLE                   // <=
	PredGT                   // >
	PredGE                   // >=
	PredSameType             // <=>
)

func (p Pred) String() string {
	switch p {
	case PredEQ:
		return "="
	case PredNE:
		return "<>"
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	case PredSameType:
		return "<=>"
	}
	return "?"
}

// Apply evaluates the predicate on working-memory value v against
// operand o (v is the WME side, o the condition side).
func (p Pred) Apply(v, o wm.Value) bool {
	switch p {
	case PredEQ:
		return v.Equal(o)
	case PredNE:
		return !v.Equal(o)
	case PredLT:
		return v.IsNumber() && o.IsNumber() && v.AsFloat() < o.AsFloat()
	case PredLE:
		return v.IsNumber() && o.IsNumber() && v.AsFloat() <= o.AsFloat()
	case PredGT:
		return v.IsNumber() && o.IsNumber() && v.AsFloat() > o.AsFloat()
	case PredGE:
		return v.IsNumber() && o.IsNumber() && v.AsFloat() >= o.AsFloat()
	case PredSameType:
		return v.SameType(o)
	}
	return false
}

// TestTerm is one predicate application inside an attribute test. The
// operand is a constant, a variable reference, or a disjunction of
// constants (<< a b c >>, equality only).
type TestTerm struct {
	Pred  Pred
	IsVar bool
	Var   string     // variable name when IsVar
	Const wm.Value   // constant operand otherwise
	Disj  []wm.Value // non-nil for << ... >>
}

// AttrTest is the conjunction of terms applied to one field of a
// condition element ({ ... } groups several terms on one attribute).
type AttrTest struct {
	Field int // field index within the class vector (0 = class, tested separately)
	Attr  symbols.ID
	Terms []TestTerm
}

// CondElem is one condition element of a production's left-hand side.
type CondElem struct {
	Negated bool
	Class   symbols.ID
	Tests   []AttrTest
	// ElemVar is the element variable of a { <var> (pattern) } form,
	// letting the RHS name this condition element in remove/modify.
	ElemVar string
	Line    int
}

// Rule is a parsed production.
type Rule struct {
	Name    string
	CEs     []*CondElem
	Actions []*Action
	Line    int
}

// PositiveCEs counts the non-negated condition elements.
func (r *Rule) PositiveCEs() int {
	n := 0
	for _, ce := range r.CEs {
		if !ce.Negated {
			n++
		}
	}
	return n
}

// ExprKind discriminates RHS value expressions.
type ExprKind uint8

// Expression kinds appearing in RHS values and write arguments.
const (
	ExprConst ExprKind = iota
	ExprVar
	ExprCompute
	ExprCrlf       // (crlf) inside write
	ExprTabto      // (tabto n) inside write
	ExprAccept     // (accept) — reads the next value from the engine's IO
	ExprAcceptLine // (acceptline) — reads a whole line of values from the engine's IO
)

// Expr is an RHS value expression. Compute nodes form a binary tree;
// OPS5's compute has no precedence and associates right-to-left.
type Expr struct {
	Kind  ExprKind
	Const wm.Value
	Var   string
	Op    byte // one of + - * / % for ExprCompute ('/'=//, '%'=\\)
	L, R  *Expr
}

// AttrSet assigns an expression to an attribute in make/modify.
type AttrSet struct {
	Attr  symbols.ID
	Field int
	Expr  *Expr
}

// ActionKind discriminates RHS actions.
type ActionKind uint8

// RHS action kinds.
const (
	ActMake ActionKind = iota
	ActModify
	ActRemove
	ActBind
	ActWrite
	ActHalt
)

// Action is one RHS action.
type Action struct {
	Kind    ActionKind
	Class   symbols.ID // make
	CEIndex int        // modify/remove: 1-based index over the rule's CEs
	Sets    []AttrSet  // make/modify
	Args    []*Expr    // write arguments or the single bind expression
	Var     string     // bind target
	Line    int
}

// Class records a literalize declaration: the attribute layout of a WME
// class. Field indices start at 1 (field 0 is the class symbol).
type Class struct {
	Name      symbols.ID
	Fields    map[symbols.ID]int
	FieldAttr []symbols.ID // index -> attribute symbol; [0] unused
	Declared  bool         // false when auto-created on first use
	// VectorField is the index of the class's vector attribute, or 0 when
	// the class has none. A vector attribute must be the last literalized
	// field: its value occupies that field and every field after it, so a
	// WME of this class may be longer than NumFields().
	VectorField int
}

// NumFields is the vector length including the class slot.
func (c *Class) NumFields() int { return len(c.FieldAttr) }

// Program is a fully parsed OPS5 source file.
type Program struct {
	Symbols  *symbols.Table
	Strategy string // "lex" (default) or "mea"
	Classes  map[symbols.ID]*Class
	Rules    []*Rule
	// InitialMakes are top-level (make ...) forms evaluated once, in
	// order, before the recognize-act loop starts.
	InitialMakes []*Action
	// VectorAttrs holds the attributes declared by (vector-attribute ...).
	// The declaration is order-independent with respect to literalize:
	// both directions validate that the attribute is the last field.
	VectorAttrs map[symbols.ID]bool
	// Watch is the trace level from a top-level (watch N) form: 0 silent,
	// 1 rule firings, 2 firings plus WM changes. -1 when the program does
	// not set one, letting hosts pick their own default.
	Watch int
	// frozen forbids further mutation of the class tables. The engine
	// freezes the program when it compiles it: from then on many matchers
	// and RHS evaluators may read Classes concurrently, so the lazy
	// auto-extension of undeclared classes (a write under readers) is
	// disabled and unknown classes/attributes become parse-time errors.
	frozen bool
}

// Freeze marks the class tables immutable. Called once at compile time;
// afterwards ClassOf and FieldIndex are pure reads and safe to call from
// any goroutine. Symbol interning stays available (symbols.Table has its
// own lock).
func (p *Program) Freeze() { p.frozen = true }

// Frozen reports whether the class tables are immutable.
func (p *Program) Frozen() bool { return p.frozen }

// ClassOf returns the class record, creating an implicit one on demand
// (OPS5 requires literalize; we auto-declare for convenience and record
// that it was implicit). On a frozen program it never mutates: unknown
// classes yield nil, and parser entry points report them as errors
// before any lookup can dereference one.
func (p *Program) ClassOf(name symbols.ID) *Class {
	c, ok := p.Classes[name]
	if !ok {
		if p.frozen {
			return nil
		}
		c = &Class{Name: name, Fields: make(map[symbols.ID]int), FieldAttr: []symbols.ID{symbols.None}}
		p.Classes[name] = c
	}
	return c
}

// FieldIndex returns the field index of attr in class, allocating the
// next slot when the class was not explicitly literalized. Explicitly
// declared classes reject unknown attributes, and a frozen program
// rejects them for every class: attribute layouts are fixed at compile
// time, so concurrent readers never observe a growing field table.
func (p *Program) FieldIndex(class *Class, attr symbols.ID) (int, error) {
	if i, ok := class.Fields[attr]; ok {
		return i, nil
	}
	if class.Declared {
		return 0, fmt.Errorf("class %s has no attribute %s (literalize lists: %d attrs)",
			p.Symbols.Name(class.Name), p.Symbols.Name(attr), len(class.Fields))
	}
	if p.frozen {
		return 0, fmt.Errorf("class %s has no attribute %s (the program is frozen: attribute layouts are fixed at compile time)",
			p.Symbols.Name(class.Name), p.Symbols.Name(attr))
	}
	i := len(class.FieldAttr)
	class.Fields[attr] = i
	class.FieldAttr = append(class.FieldAttr, attr)
	return i, nil
}

// AttrName renders a field index of a class back to its attribute name,
// for tracing and WME printing. Continuation fields of a vector attribute
// (every field past VectorField) render as "" so printers emit the values
// bare, after the single ^attr of the vector's first field.
func (p *Program) AttrName(class symbols.ID, field int) string {
	if c, ok := p.Classes[class]; ok {
		if field > 0 && field < len(c.FieldAttr) {
			return p.Symbols.Name(c.FieldAttr[field])
		}
		if c.VectorField > 0 && field > c.VectorField {
			return ""
		}
	}
	return fmt.Sprintf("f%d", field)
}

// ExciseRule removes a parsed rule by name and reports whether it
// existed. It implements the top-level (excise name) form evaluated
// during Parse; at runtime the engine excises from its network epoch
// instead and leaves the (possibly shared) Program untouched.
func (p *Program) ExciseRule(name string) bool {
	for i, r := range p.Rules {
		if r.Name == name {
			p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
			return true
		}
	}
	return false
}

// RuleByName finds a rule, for tests and tooling.
func (p *Program) RuleByName(name string) *Rule {
	for _, r := range p.Rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}
