package ops5_test

import (
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/symbols"
)

// TestVectorAttributeLayout: the vector attribute claims the last
// literalized field and continuation fields have no attribute name.
func TestVectorAttributeLayout(t *testing.T) {
	prog := parse(t, `
(literalize trace kind elt)
(vector-attribute elt)
`)
	id, _ := prog.Symbols.Lookup("trace")
	c := prog.Classes[id]
	if c.VectorField != 2 {
		t.Fatalf("VectorField = %d, want 2", c.VectorField)
	}
	if !prog.VectorAttrs[mustSym(t, prog, "elt")] {
		t.Fatal("elt not recorded in VectorAttrs")
	}
	if name := prog.AttrName(id, 2); name != "elt" {
		t.Fatalf("AttrName(2) = %q", name)
	}
	// Continuation fields print bare.
	if name := prog.AttrName(id, 3); name != "" {
		t.Fatalf("AttrName(3) = %q, want empty", name)
	}
}

// TestVectorAttributeBeforeLiteralize: declaration order is free — the
// vector-attribute form may precede the literalize that uses it.
func TestVectorAttributeBeforeLiteralize(t *testing.T) {
	prog := parse(t, `
(vector-attribute elt)
(literalize trace kind elt)
`)
	id, _ := prog.Symbols.Lookup("trace")
	if prog.Classes[id].VectorField != 2 {
		t.Fatalf("VectorField = %d, want 2", prog.Classes[id].VectorField)
	}
}

// TestVectorCEAndMakeContinuation: values after the vector attribute
// continue into successive fields, in both condition elements and
// make/modify actions.
func TestVectorCEAndMakeContinuation(t *testing.T) {
	prog := parse(t, `
(literalize trace elt)
(vector-attribute elt)
(p echo
  (trace ^elt diagnosis <t> confirmed)
-->
  (make trace ^elt log <t> archived))
`)
	ce := prog.Rules[0].CEs[0]
	if len(ce.Tests) != 3 {
		t.Fatalf("CE tests = %d, want 3", len(ce.Tests))
	}
	for i, at := range ce.Tests {
		if at.Field != i+1 {
			t.Fatalf("test %d lands in field %d, want %d", i, at.Field, i+1)
		}
	}
	act := prog.Rules[0].Actions[0]
	if len(act.Sets) != 3 {
		t.Fatalf("make sets = %d, want 3", len(act.Sets))
	}
	for i, s := range act.Sets {
		if s.Field != i+1 {
			t.Fatalf("set %d lands in field %d, want %d", i, s.Field, i+1)
		}
	}
}

func TestWatchDeclaration(t *testing.T) {
	prog := parse(t, `(watch 2)`)
	if prog.Watch != 2 {
		t.Fatalf("Watch = %d, want 2", prog.Watch)
	}
	if prog := parse(t, `(literalize a b)`); prog.Watch != -1 {
		t.Fatalf("default Watch = %d, want -1 (unset)", prog.Watch)
	}
}

func TestAcceptLineParses(t *testing.T) {
	prog := parse(t, `
(literalize trace elt)
(vector-attribute elt)
(p log (go) --> (make trace ^elt (acceptline)))
`)
	set := prog.Rules[0].Actions[0].Sets[0]
	if set.Expr.Kind != ops5.ExprAcceptLine {
		t.Fatalf("expr kind = %v, want ExprAcceptLine", set.Expr.Kind)
	}
	if got := prog.FormatExpr(set.Expr); got != "(acceptline)" {
		t.Fatalf("FormatExpr = %q", got)
	}
}

// Error paths for the new surface forms.
func TestSurfaceFormErrors(t *testing.T) {
	// Empty vector-attribute form.
	parseErr(t, `(vector-attribute)`, "at least one attribute name")
	// Vector attribute not in the last literalized field.
	parseErr(t, `
(literalize trace elt kind)
(vector-attribute elt)
`, "must be the last literalize field")
	parseErr(t, `
(vector-attribute elt)
(literalize trace elt kind)
`, "must be the last literalize field")
	// Watch level out of range, and non-numeric.
	parseErr(t, `(watch 3)`, "out of range")
	parseErr(t, `(watch -1)`, "out of range")
	parseErr(t, `(watch loud)`, "")
	// Accept forms take no arguments.
	parseErr(t, `(p r (go) --> (make a ^v (accept 1)))`, "(accept) takes no arguments")
	parseErr(t, `(p r (go) --> (make a ^v (acceptline x)))`, "(acceptline) takes no arguments")
}

// TestFormatProgramRoundTrip: the pretty-printer emits the new forms
// and its output re-parses to the same surface.
func TestFormatProgramRoundTrip(t *testing.T) {
	src := `
(strategy mea)
(watch 1)
(literalize trace kind elt)
(vector-attribute elt)
(p echo
  (trace ^elt diagnosis <t>)
-->
  (write found <t> (crlf))
  (make trace ^kind log ^elt entry <t> (acceptline)))
(make trace ^kind seed ^elt diagnosis base)
`
	prog := parse(t, src)
	text := prog.FormatProgram()
	for _, want := range []string{"(strategy mea)", "(watch 1)", "(vector-attribute elt)", "(acceptline)"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatProgram missing %q:\n%s", want, text)
		}
	}
	prog2 := parse(t, text)
	if prog2.FormatProgram() != text {
		t.Errorf("FormatProgram not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, prog2.FormatProgram())
	}
}

func mustSym(t *testing.T, prog *ops5.Program, name string) symbols.ID {
	t.Helper()
	s, ok := prog.Symbols.Lookup(name)
	if !ok {
		t.Fatalf("symbol %q not interned", name)
	}
	return s
}
