package ops5_test

import (
	"strings"
	"testing"
)

// TestTopLevelExcise: the (excise name) form removes a previously
// defined production during Parse, matching OPS5 top-level semantics.
func TestTopLevelExcise(t *testing.T) {
	prog := parse(t, `
(literalize a x)
(p r1 (a ^x 1) --> (halt))
(p r2 (a ^x 2) --> (halt))
(excise r1)
`)
	if len(prog.Rules) != 1 || prog.Rules[0].Name != "r2" {
		t.Fatalf("rules after excise = %v, want [r2]", prog.Rules)
	}
	parseErr(t, `(excise ghost)`, "no production named ghost")
}

// TestParseProductionsOrdered: runtime batches keep source order so an
// excise-then-rebuild of the same name redefines instead of clashing,
// and the batch never mutates the program's own rule list.
func TestParseProductionsOrdered(t *testing.T) {
	prog := parse(t, `
(literalize a x)
(p r1 (a ^x 1) --> (halt))
`)
	prog.Freeze()
	before := len(prog.Rules)
	changes, err := prog.ParseProductions(`
(excise r1)
(p r1 (a ^x 2) --> (halt))
(p r2 (a ^x 3) --> (halt))
`)
	if err != nil {
		t.Fatalf("ParseProductions: %v", err)
	}
	if len(prog.Rules) != before {
		t.Fatalf("ParseProductions mutated prog.Rules: %d -> %d", before, len(prog.Rules))
	}
	if len(changes) != 3 {
		t.Fatalf("changes = %d, want 3", len(changes))
	}
	if changes[0].Excise != "r1" || changes[0].Add != nil {
		t.Fatalf("changes[0] = %+v, want excise r1", changes[0])
	}
	if changes[1].Add == nil || changes[1].Add.Name != "r1" {
		t.Fatalf("changes[1] = %+v, want add r1", changes[1])
	}
	if changes[2].Add == nil || changes[2].Add.Name != "r2" {
		t.Fatalf("changes[2] = %+v, want add r2", changes[2])
	}
}

// TestParseProductionsRejectsOtherForms: only (p ...) and (excise ...)
// are legal in a runtime batch — declarations and makes are not.
func TestParseProductionsRejectsOtherForms(t *testing.T) {
	prog := parse(t, `(literalize a x)`)
	prog.Freeze()
	for _, src := range []string{
		`(literalize b y)`,
		`(make a ^x 1)`,
		`(strategy mea)`,
	} {
		if _, err := prog.ParseProductions(src); err == nil {
			t.Errorf("ParseProductions accepted %q", src)
		}
	}
}

// TestFrozenProgramRejectsNewClasses: after Freeze, referencing an
// undeclared class in a runtime batch fails instead of silently
// extending the class table (the documented pre-freeze behavior for
// classless programs).
func TestFrozenProgramRejectsNewClasses(t *testing.T) {
	prog := parse(t, `(literalize a x)`)
	prog.Freeze()
	if !prog.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	_, err := prog.ParseProductions(`(p r (mystery ^f 1) --> (halt))`)
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("err = %v, want frozen-program class error", err)
	}
	_, err = prog.ParseProductions(`(p r (a ^x 1) --> (make mystery ^f 1))`)
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("make err = %v, want frozen-program class error", err)
	}
	// Attribute lookups on known classes stay read-only too.
	_, err = prog.ParseProductions(`(p r (a ^mystery 1) --> (halt))`)
	if err == nil || !strings.Contains(err.Error(), "no attribute") {
		t.Fatalf("attr err = %v, want no-attribute error", err)
	}
}

// TestClassOfFrozen: ClassOf is pure on a frozen program — unknown
// classes return nil without growing the table.
func TestClassOfFrozen(t *testing.T) {
	prog := parse(t, `(literalize a x)`)
	n := len(prog.Classes)
	prog.Freeze()
	if c := prog.ClassOf(prog.Symbols.Intern("ghost")); c != nil {
		t.Fatalf("ClassOf(ghost) = %v on frozen program, want nil", c)
	}
	if len(prog.Classes) != n {
		t.Fatalf("frozen ClassOf grew the class table: %d -> %d", n, len(prog.Classes))
	}
	// Unfrozen classless lookup still auto-extends (OPS5 compatibility).
	loose := parse(t, ``)
	if c := loose.ClassOf(loose.Symbols.Intern("adhoc")); c == nil {
		t.Fatal("unfrozen ClassOf should auto-declare classless programs' classes")
	}
}
