package rete_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/wm"
)

func compile(t *testing.T, src string) *rete.Network {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return net
}

// figure22 is the two-production example from the paper's Figure 2-2.
const figure22 = `
(literalize C1 attr1 attr2)
(literalize C2 attr1 attr2)
(literalize C3 attr1)
(literalize C4 attr1)
(p p1
  (C1 ^attr1 <x> ^attr2 12)
  (C2 ^attr1 15 ^attr2 <x>)
  - (C3 ^attr1 <x>)
-->
  (remove 2))
(p p2
  (C2 ^attr1 15 ^attr2 <y>)
  (C4 ^attr1 <y>)
-->
  (modify 1 ^attr1 12))
`

// TestFigure22Network checks the compiled network against the paper's
// figure: four constant-test chains (C1+attr2=12, C2+attr1=15 shared
// between both productions, C3, C4), three two-input nodes (one
// negated), two terminals.
func TestFigure22Network(t *testing.T) {
	net := compile(t, figure22)
	s := net.Summarize()
	if s.Chains != 4 {
		t.Errorf("alpha chains = %d, want 4 (C2 chain shared)", s.Chains)
	}
	if s.Joins != 3 {
		t.Errorf("two-input nodes = %d, want 3", s.Joins)
	}
	if s.NegatedJoins != 1 {
		t.Errorf("negated nodes = %d, want 1", s.NegatedJoins)
	}
	if s.Terminals != 2 {
		t.Errorf("terminals = %d, want 2", s.Terminals)
	}
	// The C2 chain must fan out to both productions' joins.
	var c2 *rete.AlphaChain
	for _, c := range net.Chains {
		if net.Prog.Symbols.Name(c.Class) == "C2" {
			c2 = c
		}
	}
	if c2 == nil || len(net.DestsOf(c2)) != 2 {
		t.Fatalf("C2 chain should feed two joins, got %+v", c2)
	}
	if net.ChainRefs(c2) != 2 {
		t.Errorf("C2 chain refs = %d, want 2 (used by both productions)", net.ChainRefs(c2))
	}
	var dump strings.Builder
	net.Dump(&dump)
	if !strings.Contains(dump.String(), "not") {
		t.Error("dump missing the negated node")
	}
}

// TestIdenticalPrefixShared verifies beta-level sharing: two rules with
// the same first two condition elements share the first join.
func TestIdenticalPrefixShared(t *testing.T) {
	net := compile(t, `
(p r1 (a ^x <v>) (b ^y <v>) (c ^z 1) --> (halt))
(p r2 (a ^x <v>) (b ^y <v>) (d ^w 2) --> (halt))
`)
	s := net.Summarize()
	// Shared: join(a,b). Distinct: join(ab,c), join(ab,d) = 3 total.
	if s.Joins != 3 {
		t.Errorf("joins = %d, want 3 (first join shared)", s.Joins)
	}
}

func TestDifferentTestsNotShared(t *testing.T) {
	net := compile(t, `
(p r1 (a ^x <v>) (b ^y <v>) --> (halt))
(p r2 (a ^x <v>) (b ^y <> <v>) --> (halt))
`)
	if s := net.Summarize(); s.Joins != 2 {
		t.Errorf("joins = %d, want 2 (different join tests)", s.Joins)
	}
}

func TestSingleCEProductionFeedsTerminalDirectly(t *testing.T) {
	net := compile(t, `(p r (a ^x 1) --> (halt))`)
	if s := net.Summarize(); s.Joins != 0 {
		t.Errorf("joins = %d, want 0", s.Joins)
	}
	dests := net.DestsOf(net.Chains[0])
	if len(dests) != 1 || dests[0].Terminal == nil {
		t.Fatal("alpha chain should feed the terminal directly")
	}
}

func TestIntraElementVariableTest(t *testing.T) {
	net := compile(t, `(p r (a ^x <v> ^y <v>) --> (halt))`)
	chain := net.Chains[0]
	found := false
	for _, ct := range chain.Tests {
		if ct.OtherField >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("repeated variable in one CE should compile to an intra-element test")
	}
}

func TestCEPosSkipsNegated(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) - (b ^y <v>) (c ^z <v>) --> (remove 3))
`)
	cr := net.Rules[0]
	want := []int{0, -1, 1}
	for i, w := range want {
		if cr.CEPos[i] != w {
			t.Errorf("CEPos[%d] = %d, want %d", i, cr.CEPos[i], w)
		}
	}
}

func TestBindingsPointAtFirstOccurrence(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) (b ^y <v> ^z <w>) --> (make c ^q <v> ^r <w>))
`)
	cr := net.Rules[0]
	if ref := cr.Bindings["v"]; ref.Pos != 0 {
		t.Errorf("<v> bound at pos %d, want 0", ref.Pos)
	}
	if ref := cr.Bindings["w"]; ref.Pos != 1 {
		t.Errorf("<w> bound at pos %d, want 1", ref.Pos)
	}
}

func TestEqVsOtherTestSplit(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) (b ^y <v> ^z > <v>) --> (halt))
`)
	j := net.Joins[0]
	if len(j.EqTests) != 1 || len(j.OtherTests) != 1 {
		t.Fatalf("eq=%d other=%d, want 1/1", len(j.EqTests), len(j.OtherTests))
	}
	if !j.HasEqTests() {
		t.Fatal("HasEqTests should be true")
	}
}

func TestCrossProductNodeHasNoEqTests(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) (b ^y <w>) --> (halt))
`)
	if net.Joins[0].HasEqTests() {
		t.Fatal("join of unrelated CEs must have no equality tests")
	}
}

// Property: for any pair of values bound to the same variable, left and
// right hashes of a join with one equality test must collide exactly
// when the values are equal-valued.
func TestJoinHashConsistency(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) (b ^y <v>) --> (halt))
`)
	j := net.Joins[0]
	f := func(n int64) bool {
		lw := &wm.WME{Fields: []wm.Value{wm.Sym(1), wm.Int(n)}}
		rw := &wm.WME{Fields: []wm.Value{wm.Sym(2), wm.Int(n)}}
		return j.LeftHash([]*wm.WME{lw}) == j.RightHash(rw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTestPair(t *testing.T) {
	net := compile(t, `
(p r (a ^x <v>) (b ^y <v> ^z > <v>) --> (halt))
`)
	j := net.Joins[0]
	mk := func(vals ...int64) *wm.WME {
		fs := []wm.Value{wm.Sym(1)}
		for _, v := range vals {
			fs = append(fs, wm.Int(v))
		}
		return &wm.WME{Fields: fs}
	}
	left := []*wm.WME{mk(5)}
	if !j.TestPair(left, mk(5, 9)) {
		t.Error("y=5=x and z=9>5 should pass")
	}
	if j.TestPair(left, mk(5, 3)) {
		t.Error("z=3 fails > test")
	}
	if j.TestPair(left, mk(6, 9)) {
		t.Error("y=6 fails equality")
	}
}

// TestEntryListRemove covers duplicate tokens: Remove takes exactly one.
func TestEntryListRemoveDuplicates(t *testing.T) {
	net := compile(t, `(p r (a ^x <v>) (b ^y <v>) --> (halt))`)
	j := net.Joins[0]
	w := &wm.WME{Fields: []wm.Value{wm.Sym(1), wm.Int(1)}}
	var l rete.EntryList
	l.Push(&rete.Entry{Node: j, Side: rete.Left, Wmes: []*wm.WME{w}})
	l.Push(&rete.Entry{Node: j, Side: rete.Left, Wmes: []*wm.WME{w}})
	if l.Len != 2 {
		t.Fatalf("Len = %d", l.Len)
	}
	if e, _ := l.Remove(j, rete.Left, 0, []*wm.WME{w}); e == nil {
		t.Fatal("first remove failed")
	}
	if e, _ := l.Remove(j, rete.Left, 0, []*wm.WME{w}); e == nil {
		t.Fatal("second remove failed (duplicate should remain)")
	}
	if e, _ := l.Remove(j, rete.Left, 0, []*wm.WME{w}); e != nil {
		t.Fatal("third remove should find nothing")
	}
}

func TestRootDeliverCountsTests(t *testing.T) {
	net := compile(t, `
(literalize a x y)
(p r1 (a ^x 1 ^y 2) --> (halt))
(p r2 (a ^x 1 ^y 3) --> (halt))
`)
	w := &wm.WME{Fields: []wm.Value{wm.Sym(net.Prog.Symbols.Intern("a")), wm.Int(1), wm.Int(2)}}
	var hits int
	tests := net.RootDeliver(w, func(rete.AlphaDest) { hits++ })
	if hits != 1 {
		t.Errorf("deliveries = %d, want 1 (only r1 matches)", hits)
	}
	if tests < 3 {
		t.Errorf("tests evaluated = %d, want >= 3", tests)
	}
}
