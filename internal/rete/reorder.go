// Cost-based join-order planning. The paper compiles condition elements
// in source order (its Figure 2-2 network is the textbook left-to-right
// linear join), which leaves the match cost of a production at the mercy
// of how the programmer happened to write the LHS: one unselective or
// cross-producting condition element early in the chain multiplies every
// partial match downstream, and no amount of match parallelism hides
// the blowup. The planner here reorders the joins of each production at
// compile time, greedily placing next the condition element that keeps
// the expected partial-match cardinality smallest, under constraints
// that preserve OPS5 semantics exactly:
//
//   - Only variable-binding structure limits positive condition
//     elements: a CE whose tests apply a non-equality predicate to a
//     variable needs an equality binder of that variable placed first
//     (splitCE rejects non-EQ tests on unbound variables, exactly as the
//     source-order compiler does). Among equality-joined CEs any order
//     yields the same match set — all equality occurrences of a variable
//     are equal in every match, so whichever CE is placed first becomes
//     the binder and the others test against it.
//   - A negated condition element must see the same binding environment
//     it saw in source order: every variable bound before it in the
//     source must be bound before it in the plan (so its join tests
//     compare against an equal value), and every variable that was FREE
//     at its source position must still be free (a free variable in a
//     negated CE is locally scoped — a wildcard — and letting a later
//     positive CE bind it first would silently turn the wildcard into a
//     join test). The greedy loop therefore defers positive CEs that
//     would bind a wildcard of a not-yet-placed negated CE, and places
//     eligible negated CEs as early as possible (they only filter).
//
// The cost model is deliberately simple: a static per-CE cardinality
// estimate from constant-test restrictiveness (an equality test against
// a constant is assumed to pass 10% of a class's elements, a
// disjunction 30%, a relational test 50%), an equality-join selectivity
// per shared variable, and a flat penalty for cross products (no shared
// variables — the Tourney pathology of the paper's §4.2). When a
// PlanConfig carries a Card function the static estimate is replaced by
// live alpha-memory cardinalities, which is how a running engine
// re-plans an epoch against its actual working memory (cheap since
// recompiles are incremental).
//
// Everything downstream of the planner keeps source-order semantics
// byte-identical: CompiledRule.TokenPerm records how to permute a
// network-order instantiation token back into source order, and the
// conflict set applies it before the token becomes visible to
// refraction, recency comparison, the RHS evaluator or the firing
// trace. A plan that degenerates to the identity (or any rule the
// planner cannot safely reorder) compiles exactly as before, with
// TokenPerm nil.
package rete

import (
	"repro/internal/ops5"
	"repro/internal/symbols"
)

// PlanConfig selects the join-order compile policy of a network. The
// zero value is the source-order compiler (no reordering).
type PlanConfig struct {
	// Reorder enables the cost-based join-order planner. Off, the
	// compiler emits the paper's source-order linear join.
	Reorder bool
	// Card, when non-nil, estimates the alpha-memory cardinality of a
	// condition element from its class and (unbound-environment)
	// constant tests — typically by counting matching elements of a live
	// working memory. Nil falls back to the static constant-test model.
	Card func(class symbols.ID, tests []ConstTest) float64
}

// Static cost-model constants. Units are arbitrary (only relative order
// matters); baseCard is the assumed population of a class with no
// constant tests.
const (
	baseCard       = 100.0
	selConstEQ     = 0.10 // equality against a constant
	selDisj        = 0.30 // << ... >> disjunction
	selConstOther  = 0.50 // relational test against a constant
	selIntra       = 0.50 // intra-element field comparison
	selEqJoinVar   = 0.05 // per shared equality-joined variable
	selCrossumPen  = 4.0  // no shared variables: cross product
	selNegFilter   = 0.75 // a placed negated CE only filters the token set
	minPlacedCard  = 1.0  // partial-match cardinality floor
	minDynamicCard = 0.5  // floor for live Card estimates (empty memories)
)

// ceAnalysis is the planner's per-condition-element summary.
type ceAnalysis struct {
	srcIdx  int
	negated bool
	card    float64
	// allVars / eqVars / nonEqVars classify the variable occurrences:
	// every variable, those with at least one equality occurrence (the
	// ones this CE can bind or equality-join on), and those with a
	// non-equality occurrence (which need a binder).
	allVars   map[string]bool
	eqVars    map[string]bool
	nonEqVars map[string]bool
	// selfBind are variables whose first occurrence in this CE is an
	// equality test — splitCE will bind them here even if nothing
	// earlier did, so a later non-EQ occurrence in the same CE is legal.
	selfBind map[string]bool
	// srcBound / wild apply to negated CEs only: variables bound by
	// positive CEs before this one in source order, and the rest (the
	// locally-scoped wildcards whose freeness the plan must preserve).
	srcBound map[string]bool
	wild     map[string]bool
}

// analyzeRule summarizes every condition element of a rule in source
// order, tracking the source binding environment for the negated-CE
// constraints.
func analyzeRule(r *ops5.Rule, pc PlanConfig) []*ceAnalysis {
	infos := make([]*ceAnalysis, len(r.CEs))
	boundSrc := map[string]bool{}
	for i, ce := range r.CEs {
		inf := &ceAnalysis{
			srcIdx:    i,
			negated:   ce.Negated && i > 0, // CE 0 is compiled positive (see compileRule)
			allVars:   map[string]bool{},
			eqVars:    map[string]bool{},
			nonEqVars: map[string]bool{},
			selfBind:  map[string]bool{},
		}
		inf.card = estimateCard(ce, pc)
		for _, at := range ce.Tests {
			for _, term := range at.Terms {
				if !term.IsVar {
					continue
				}
				first := !inf.allVars[term.Var]
				inf.allVars[term.Var] = true
				if term.Pred == ops5.PredEQ && term.Disj == nil {
					inf.eqVars[term.Var] = true
					if first {
						inf.selfBind[term.Var] = true
					}
				} else {
					inf.nonEqVars[term.Var] = true
				}
			}
		}
		if inf.negated {
			inf.srcBound = map[string]bool{}
			inf.wild = map[string]bool{}
			for v := range inf.allVars {
				if boundSrc[v] {
					inf.srcBound[v] = true
				} else {
					inf.wild[v] = true
				}
			}
		} else {
			for v := range inf.eqVars {
				boundSrc[v] = true
			}
		}
		infos[i] = inf
	}
	return infos
}

// estimateCard estimates the alpha-memory cardinality of one condition
// element: the live Card callback when the plan carries one, the static
// constant-test model otherwise.
func estimateCard(ce *ops5.CondElem, pc PlanConfig) float64 {
	if pc.Card != nil {
		// The unbound-environment split yields exactly the constant and
		// intra-element tests of the alpha chain this CE gets when placed
		// first — the superset memory any placement draws from.
		if split, err := splitCE(ce, map[string]BindRef{}); err == nil {
			c := pc.Card(ce.Class, split.alphaTests)
			if c < minDynamicCard {
				c = minDynamicCard
			}
			return c
		}
	}
	card := baseCard
	for _, at := range ce.Tests {
		for _, term := range at.Terms {
			switch {
			case term.Disj != nil:
				card *= selDisj
			case !term.IsVar:
				if term.Pred == ops5.PredEQ {
					card *= selConstEQ
				} else {
					card *= selConstOther
				}
			}
		}
	}
	if card < minDynamicCard {
		card = minDynamicCard
	}
	return card
}

// joinSelEstimate is the per-join selectivity annotation recorded on
// every join node (reordered or not) for the topology dump: the product
// of the per-test selectivities, with the cross-product penalty making
// test-free joins stand out (sel > 1).
func joinSelEstimate(split *ceSplit) float64 {
	if len(split.eqTests) == 0 && len(split.otherTests) == 0 {
		return selCrossumPen
	}
	sel := 1.0
	for range split.eqTests {
		sel *= selEqJoinVar
	}
	for range split.otherTests {
		sel *= selConstOther
	}
	return sel
}

// PlanOrder computes the planned condition-element order for one rule
// under a plan configuration. It returns nil when the rule should
// compile in source order: planning disabled, fewer than three
// condition elements (two CEs have only one join — nothing to reorder
// profitably — and reordering them would still be legal but pointless),
// a first condition element the compiler special-cases (negated), an
// ordering constraint the planner cannot satisfy, or a plan identical
// to the source order.
func PlanOrder(r *ops5.Rule, pc PlanConfig) []int {
	if !pc.Reorder || len(r.CEs) < 3 {
		return nil
	}
	if r.CEs[0].Negated {
		// compileRule compiles CE 0 as the positive seed of the join
		// chain regardless of negation; leave such degenerate rules in
		// source order rather than reinterpret them.
		return nil
	}
	infos := analyzeRule(r, pc)
	n := len(infos)
	placed := make([]bool, n)
	bound := map[string]bool{}
	order := make([]int, 0, n)
	curCard := 1.0

	// bindsWildOf reports whether placing positive CE p now would bind a
	// wildcard of a not-yet-placed negated CE — which must stay free
	// until that negated CE is in.
	bindsWildOf := func(p *ceAnalysis) bool {
		for v := range p.eqVars {
			if bound[v] {
				continue // already bound; any violated negated CE is already lost
			}
			for j, inf := range infos {
				if placed[j] || !inf.negated {
					continue
				}
				if inf.wild[v] {
					return true
				}
			}
		}
		return false
	}

	for len(order) < n {
		// Eligible negated CEs first (lowest source index): they only
		// filter the token set, so earliest legal placement is best. The
		// first slot stays positive — the compiler seeds the join chain
		// with it.
		pick := -1
		for i, inf := range infos {
			if placed[i] || !inf.negated || len(order) == 0 {
				continue
			}
			ok := true
			for v := range inf.srcBound {
				if !bound[v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for v := range inf.wild {
				if bound[v] {
					// A wildcard got bound before this negated CE could be
					// placed — the plan would change its meaning. Bail out.
					return nil
				}
			}
			pick = i
			break
		}
		if pick >= 0 {
			placed[pick] = true
			order = append(order, pick)
			curCard *= selNegFilter
			if curCard < minPlacedCard {
				curCard = minPlacedCard
			}
			continue
		}

		// Cheapest eligible positive CE.
		bestScore := 0.0
		for i, inf := range infos {
			if placed[i] || inf.negated {
				continue
			}
			eligible := true
			for v := range inf.nonEqVars {
				if !bound[v] && !inf.selfBind[v] {
					eligible = false
					break
				}
			}
			if !eligible || bindsWildOf(inf) {
				continue
			}
			var score float64
			if len(order) == 0 {
				score = inf.card
			} else {
				sel := 1.0
				shared := 0
				for v := range inf.eqVars {
					if bound[v] {
						shared++
						sel *= selEqJoinVar
					}
				}
				for v := range inf.nonEqVars {
					if bound[v] {
						sel *= selConstOther
					}
				}
				if shared == 0 {
					sel *= selCrossumPen
				}
				score = curCard * inf.card * sel
			}
			if pick < 0 || score < bestScore {
				pick, bestScore = i, score
			}
		}
		if pick < 0 {
			// No eligible CE — a constraint cycle the greedy loop cannot
			// break. Source order is always a valid plan; use it.
			return nil
		}
		placed[pick] = true
		order = append(order, pick)
		for v := range infos[pick].eqVars {
			bound[v] = true
		}
		if len(order) == 1 {
			curCard = infos[pick].card
		} else {
			curCard = bestScore
		}
		if curCard < minPlacedCard {
			curCard = minPlacedCard
		}
	}

	identity := true
	for i, ci := range order {
		if i != ci {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	return order
}

// validOrder reports whether compiling r's condition elements in the
// given order would succeed (every splitCE call resolves). compileRule
// runs it before mutating any network state, so a bad plan falls back
// to source order instead of corrupting refcounts mid-build.
func validOrder(r *ops5.Rule, order []int) bool {
	if len(order) != len(r.CEs) {
		return false
	}
	seen := make([]bool, len(r.CEs))
	for _, ci := range order {
		if ci < 0 || ci >= len(r.CEs) || seen[ci] {
			return false
		}
		seen[ci] = true
	}
	if r.CEs[order[0]].Negated {
		return false
	}
	if r.CEs[0].Negated {
		// compileRule compiles a negated CE 0 as the positive seed of the
		// chain; a plan that moved it elsewhere would reinterpret it.
		return false
	}
	bound := map[string]BindRef{}
	pos := 0
	for i, ci := range order {
		ce := r.CEs[ci]
		split, err := splitCE(ce, bound)
		if err != nil {
			return false
		}
		if i == 0 || !ce.Negated {
			for v, f := range split.newBinds {
				bound[v] = BindRef{Pos: pos, Field: f}
			}
			pos++
		}
	}
	return true
}
