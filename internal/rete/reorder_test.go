package rete_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ops5"
	"repro/internal/rete"
)

var reorderOn = rete.PlanConfig{Reorder: true}

func parseRule(t *testing.T, src string) (*ops5.Program, *ops5.Rule) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Rules) == 0 {
		t.Fatal("no rules parsed")
	}
	return prog, prog.Rules[0]
}

func compilePlanned(t *testing.T, src string, pc rete.PlanConfig) *rete.Network {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.CompileWithPlan(prog, pc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return net
}

// TestPlanOrderSelectiveFirst: the planner moves the constant-rich
// (selective) condition element to the front and equality-joins the
// unselective ones behind it, keeping ties in source order.
func TestPlanOrderSelectiveFirst(t *testing.T) {
	_, r := parseRule(t, `
(literalize big x)
(literalize big2 x)
(literalize tiny a b x)
(p r (big ^x <v>) (big2 ^x <v>) (tiny ^a 1 ^b 2 ^x <v>) --> (halt))
`)
	got := rete.PlanOrder(r, reorderOn)
	want := []int{2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanOrder = %v, want %v", got, want)
	}
	if rete.PlanOrder(r, rete.PlanConfig{}) != nil {
		t.Error("PlanOrder with reordering off should be nil")
	}
}

// TestPlanOrderNegatedAfterBinders: a negated CE moves as early as its
// source-bound variables allow, and never earlier.
func TestPlanOrderNegatedAfterBinders(t *testing.T) {
	_, r := parseRule(t, `
(literalize a x)
(literalize b y z)
(literalize c k x)
(p r (a ^x <v>) - (b ^y <v>) (c ^k 9 ^x <v>) --> (halt))
`)
	// c is the selective seed; it binds <v>, which makes the negated b
	// eligible immediately; a follows.
	got := rete.PlanOrder(r, reorderOn)
	want := []int{2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanOrder = %v, want %v", got, want)
	}
}

// TestPlanOrderPreservesWildcards: a positive CE that would bind a
// free (locally scoped) variable of a not-yet-placed negated CE is
// deferred until the negated CE is in, because binding it first would
// turn the wildcard into a join test.
func TestPlanOrderPreservesWildcards(t *testing.T) {
	_, r := parseRule(t, `
(literalize a x)
(literalize b y z)
(literalize c z k)
(p r (a ^x <v>) - (b ^y <v> ^z <w>) (c ^z <w> ^k 1) --> (halt))
`)
	// c is selective (constant test) but binds <w>, wild in the negated
	// b; the only legal plan is the source order, reported as nil.
	if got := rete.PlanOrder(r, reorderOn); got != nil {
		t.Errorf("PlanOrder = %v, want nil (source order)", got)
	}
}

// TestPlanOrderDegenerateRules: rules the planner must leave alone.
func TestPlanOrderDegenerateRules(t *testing.T) {
	src := `
(literalize a x)
(literalize b y)
(literalize c z)
(p two (a ^x <v>) (b ^y <v>) --> (halt))
(p negfirst - (a ^x 1) (b ^y 2) (c ^z 3) --> (halt))
`
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, r := range prog.Rules {
		if got := rete.PlanOrder(r, reorderOn); got != nil {
			t.Errorf("PlanOrder(%s) = %v, want nil", r.Name, got)
		}
	}
}

// TestReorderedRuleKeepsSourceContracts: under a reordering compile the
// RHS-facing metadata (CEPos, Bindings, Specificity) must be identical
// to the source-order compile, and TokenPerm must be the permutation
// that maps network tokens back to source order.
func TestReorderedRuleKeepsSourceContracts(t *testing.T) {
	src := `
(literalize big x)
(literalize big2 x w)
(literalize tiny a b x)
(p r (big ^x <v>) (big2 ^x <v> ^w <u>) (tiny ^a 1 ^b 2 ^x <v>) --> (make big2 ^x <v> ^w <u>))
`
	srcNet := compilePlanned(t, src, rete.PlanConfig{})
	reNet := compilePlanned(t, src, reorderOn)
	s, r := srcNet.RuleByName("r"), reNet.RuleByName("r")
	if r.Order == nil || r.TokenPerm == nil {
		t.Fatalf("rule not reordered: Order=%v TokenPerm=%v", r.Order, r.TokenPerm)
	}
	if !reflect.DeepEqual(r.CEPos, s.CEPos) {
		t.Errorf("CEPos = %v, want source %v", r.CEPos, s.CEPos)
	}
	if !reflect.DeepEqual(r.Bindings, s.Bindings) {
		t.Errorf("Bindings = %v, want source %v", r.Bindings, s.Bindings)
	}
	if r.Specificity != s.Specificity {
		t.Errorf("Specificity = %d, want source %d", r.Specificity, s.Specificity)
	}
	// TokenPerm maps planned token positions to source token positions:
	// position i of the network token carries the CE placed i-th among
	// positives, which sits at source token position TokenPerm[i].
	seen := make([]bool, len(r.TokenPerm))
	for _, p := range r.TokenPerm {
		if p < 0 || p >= len(seen) || seen[p] {
			t.Fatalf("TokenPerm %v is not a permutation", r.TokenPerm)
		}
		seen[p] = true
	}
	// Order [2 0 1]: network position 0 holds tiny (source pos 2), etc.
	if want := []int{2, 0, 1}; !reflect.DeepEqual(r.TokenPerm, want) {
		t.Errorf("TokenPerm = %v, want %v", r.TokenPerm, want)
	}
}

// TestReorderGoldenDump pins the reordered compile of the paper's
// Figure 2-2 network: p1's negated C3 hoists ahead of the C2 join
// (its only bound variable comes from C1), p2 is too short to reorder.
func TestReorderGoldenDump(t *testing.T) {
	net := compilePlanned(t, figure22, reorderOn)
	got := dump(net)
	golden := filepath.Join("testdata", "figure22.reorder.dump")
	want, err := os.ReadFile(golden)
	if err == nil && got == string(want) {
		return
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	t.Errorf("dump drifted from %s (set UPDATE_GOLDEN=1 to regenerate):\n%s", golden, got)
}

// TestIncrementalEqualsBatchReordered: the incremental-equals-batch
// topology guarantee must hold under a reordering plan too — AddRule
// inherits the parent epoch's plan and the planner is deterministic.
func TestIncrementalEqualsBatchReordered(t *testing.T) {
	src := `
(literalize big x)
(literalize big2 x)
(literalize tiny a b x)
(literalize d y)
(p r1 (big ^x <v>) (big2 ^x <v>) (tiny ^a 1 ^b 2 ^x <v>) --> (halt))
(p r2 (big ^x <v>) (big2 ^x <v>) (tiny ^a 1 ^b 2 ^x <v>) (d ^y <v>) --> (halt))
(p r3 (tiny ^a 1 ^b 2 ^x <v>) - (d ^y <v>) (big ^x <v>) --> (halt))
`
	batch := compilePlanned(t, src, reorderOn)
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rules := prog.Rules
	prog.Rules = nil
	net, err := rete.CompileWithPlan(prog, reorderOn)
	if err != nil {
		t.Fatalf("compile empty base: %v", err)
	}
	prog.Rules = rules
	for _, r := range rules {
		next, err := rete.AddRule(net, r)
		if err != nil {
			t.Fatalf("AddRule(%s): %v", r.Name, err)
		}
		net = next
	}
	if got, want := dump(net), dump(batch); got != want {
		t.Errorf("incremental reordered dump differs from batch:\n--- incremental ---\n%s\n--- batch ---\n%s", got, want)
	}
}

// TestAddRuleOrdered: an explicit order compiles and is recorded; an
// unrealizable order is rejected before any state is touched.
func TestAddRuleOrdered(t *testing.T) {
	src := `
(literalize a x)
(literalize b x)
(literalize c x)
(p seed (a ^x 1) --> (halt))
`
	net := compilePlanned(t, src, rete.PlanConfig{})
	prog, err := ops5.Parse(`
(literalize a x)
(literalize b x)
(literalize c x)
(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (halt))
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := prog.RuleByName("r")
	next, err := rete.AddRuleOrdered(net, r, []int{1, 2, 0})
	if err != nil {
		t.Fatalf("AddRuleOrdered: %v", err)
	}
	cr := next.RuleByName("r")
	if want := []int{1, 2, 0}; !reflect.DeepEqual(cr.Order, want) {
		t.Errorf("Order = %v, want %v", cr.Order, want)
	}
	if want := []int{1, 2, 0}; !reflect.DeepEqual(cr.TokenPerm, want) {
		t.Errorf("TokenPerm = %v, want %v", cr.TokenPerm, want)
	}
	if _, err := rete.AddRuleOrdered(net, r, []int{0, 0, 1}); err == nil {
		t.Error("duplicate positions should be rejected")
	}
	if _, err := rete.AddRuleOrdered(net, r, []int{0, 1}); err == nil {
		t.Error("short order should be rejected")
	}
}
