package rete

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ops5"
	"repro/internal/symbols"
)

// Compile builds the Rete network for a parsed program.
func Compile(prog *ops5.Program) (*Network, error) {
	b := &builder{
		net: &Network{
			Prog:          prog,
			ChainsByClass: make(map[symbols.ID][]*AlphaChain),
		},
		chainByKey: make(map[string]*AlphaChain),
		joinByKey:  make(map[string]*JoinNode),
	}
	for _, r := range prog.Rules {
		if err := b.compileRule(r); err != nil {
			return nil, fmt.Errorf("production %s: %w", r.Name, err)
		}
	}
	// Lower every test into its specialized closure (fastpath.go) so the
	// matchers never re-branch on test kind per token.
	for _, c := range b.net.Chains {
		c.compileFast()
	}
	for _, j := range b.net.Joins {
		j.compileFast()
	}
	return b.net, nil
}

type builder struct {
	net        *Network
	chainByKey map[string]*AlphaChain
	joinByKey  map[string]*JoinNode
}

// ceSplit is the per-condition-element compilation result.
type ceSplit struct {
	alphaTests []ConstTest
	eqTests    []JoinTest
	otherTests []JoinTest
	// newBinds are the variables first bound in this (positive) CE.
	newBinds map[string]int // var -> field
	numTests int
}

// splitCE classifies every test of a condition element into alpha
// (constant or intra-element), join-equality, or join-other tests, given
// the bindings established by earlier positive condition elements.
func splitCE(ce *ops5.CondElem, bound map[string]BindRef) (*ceSplit, error) {
	s := &ceSplit{newBinds: make(map[string]int)}
	s.numTests = 1 // the class test
	for _, at := range ce.Tests {
		for _, term := range at.Terms {
			s.numTests++
			switch {
			case term.Disj != nil:
				s.alphaTests = append(s.alphaTests, ConstTest{
					Field: at.Field, Pred: ops5.PredEQ, Disj: term.Disj, OtherField: -1,
				})
			case !term.IsVar:
				s.alphaTests = append(s.alphaTests, ConstTest{
					Field: at.Field, Pred: term.Pred, Const: term.Const, OtherField: -1,
				})
			default:
				// Variable occurrence: intra-element test if already seen
				// in this CE, join test if bound earlier, binding otherwise.
				if f, ok := s.newBinds[term.Var]; ok {
					s.alphaTests = append(s.alphaTests, ConstTest{
						Field: at.Field, Pred: term.Pred, OtherField: f,
					})
					continue
				}
				if ref, ok := bound[term.Var]; ok {
					jt := JoinTest{
						Pred: term.Pred, LeftPos: ref.Pos, LeftField: ref.Field, RightField: at.Field,
					}
					if term.Pred == ops5.PredEQ {
						s.eqTests = append(s.eqTests, jt)
					} else {
						s.otherTests = append(s.otherTests, jt)
					}
					continue
				}
				if term.Pred != ops5.PredEQ {
					return nil, fmt.Errorf("predicate %s applied to unbound variable <%s>", term.Pred, term.Var)
				}
				s.numTests-- // a first binding is not a test
				s.newBinds[term.Var] = at.Field
			}
		}
	}
	return s, nil
}

// compileRule threads one production through the network, sharing alpha
// chains and identical join prefixes with previously compiled rules.
func (b *builder) compileRule(r *ops5.Rule) error {
	cr := &CompiledRule{
		Rule:     r,
		Index:    len(b.net.Rules),
		CEPos:    make([]int, len(r.CEs)),
		Bindings: make(map[string]BindRef),
	}
	var (
		prevJoin   *JoinNode // last join built so far (nil before the 2nd CE)
		firstAlpha *AlphaChain
		prefixKey  string
		tokenLen   int
	)
	for i, ce := range r.CEs {
		split, err := splitCE(ce, cr.Bindings)
		if err != nil {
			return fmt.Errorf("condition element %d: %w", i+1, err)
		}
		cr.Specificity += split.numTests
		chain := b.internChain(ce.Class, split.alphaTests)
		if i == 0 {
			firstAlpha = chain
			prefixKey = fmt.Sprintf("a%d", chain.ID)
			cr.CEPos[0] = 0
			tokenLen = 1
			for v, f := range split.newBinds {
				cr.Bindings[v] = BindRef{Pos: 0, Field: f}
			}
			continue
		}
		join := b.internJoin(prefixKey, firstAlpha, prevJoin, chain, ce.Negated, split, tokenLen)
		if n := len(join.RuleNames); n == 0 || join.RuleNames[n-1] != r.Name {
			join.RuleNames = append(join.RuleNames, r.Name)
		}
		prefixKey = join.key
		prevJoin = join
		if ce.Negated {
			cr.CEPos[i] = -1
		} else {
			cr.CEPos[i] = tokenLen
			for v, f := range split.newBinds {
				cr.Bindings[v] = BindRef{Pos: tokenLen, Field: f}
			}
			tokenLen++
		}
	}
	term := &Terminal{ID: len(b.net.Terminals), Rule: cr}
	cr.Terminal = term
	b.net.Terminals = append(b.net.Terminals, term)
	if prevJoin == nil {
		// Single-condition-element production: terminal hangs directly
		// off the alpha chain.
		firstAlpha.Dests = append(firstAlpha.Dests, AlphaDest{Terminal: term})
	} else {
		prevJoin.Terminals = append(prevJoin.Terminals, term)
	}
	b.net.Rules = append(b.net.Rules, cr)
	return nil
}

// internChain returns the shared alpha chain for (class, tests),
// creating it when new. Chains are canonicalized by sorting tests.
func (b *builder) internChain(class symbols.ID, tests []ConstTest) *AlphaChain {
	sorted := append([]ConstTest(nil), tests...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Field != sorted[j].Field {
			return sorted[i].Field < sorted[j].Field
		}
		return constTestKey(&sorted[i]) < constTestKey(&sorted[j])
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "c%d", class)
	for i := range sorted {
		sb.WriteByte('|')
		sb.WriteString(constTestKey(&sorted[i]))
	}
	key := sb.String()
	if c, ok := b.chainByKey[key]; ok {
		return c
	}
	c := &AlphaChain{ID: len(b.net.Chains), Class: class, Tests: sorted, key: key}
	b.net.Chains = append(b.net.Chains, c)
	b.net.ChainsByClass[class] = append(b.net.ChainsByClass[class], c)
	b.chainByKey[key] = c
	return c
}

func constTestKey(t *ConstTest) string {
	if t.Disj != nil {
		var sb strings.Builder
		fmt.Fprintf(&sb, "f%d<<", t.Field)
		for _, d := range t.Disj {
			fmt.Fprintf(&sb, "%#v,", d)
		}
		sb.WriteString(">>")
		return sb.String()
	}
	if t.OtherField >= 0 {
		return fmt.Sprintf("f%d%sf%d", t.Field, t.Pred, t.OtherField)
	}
	return fmt.Sprintf("f%d%s%#v", t.Field, t.Pred, t.Const)
}

// internJoin returns a shared join node for the given prefix and right
// input, creating it when new.
func (b *builder) internJoin(prefixKey string, firstAlpha *AlphaChain, prev *JoinNode, right *AlphaChain, negated bool, split *ceSplit, tokenLen int) *JoinNode {
	var sb strings.Builder
	sb.WriteString(prefixKey)
	fmt.Fprintf(&sb, ">>a%d,n%v", right.ID, negated)
	for _, t := range split.eqTests {
		fmt.Fprintf(&sb, "|e%d.%d=%d", t.LeftPos, t.LeftField, t.RightField)
	}
	for _, t := range split.otherTests {
		fmt.Fprintf(&sb, "|o%d.%d%s%d", t.LeftPos, t.LeftField, t.Pred, t.RightField)
	}
	key := sb.String()
	if j, ok := b.joinByKey[key]; ok {
		return j
	}
	j := &JoinNode{
		ID:         len(b.net.Joins),
		Negated:    negated,
		EqTests:    split.eqTests,
		OtherTests: split.otherTests,
		LeftLen:    tokenLen,
		key:        key,
	}
	b.net.Joins = append(b.net.Joins, j)
	b.joinByKey[key] = j
	if prev == nil {
		j.LeftFromAlpha = true
		firstAlpha.Dests = append(firstAlpha.Dests, AlphaDest{Join: j, Side: Left})
	} else {
		prev.Succs = append(prev.Succs, j)
	}
	right.Dests = append(right.Dests, AlphaDest{Join: j, Side: Right})
	return j
}
