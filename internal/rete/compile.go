package rete

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ops5"
	"repro/internal/symbols"
)

// Compile builds the epoch-0 Rete network for a parsed program in the
// paper's source condition-element order. It is the same per-rule
// compiler AddRule uses at run time, applied to every production in
// order — which is why an incrementally grown network is node-for-node
// identical to a whole-program compile (epoch_test.go asserts this on
// the Dump output).
func Compile(prog *ops5.Program) (*Network, error) {
	return CompileWithPlan(prog, PlanConfig{})
}

// CompileWithPlan is Compile with an explicit join-order policy
// (reorder.go). The policy is recorded on the network, so AddRule plans
// rules added at run time the same way; the zero PlanConfig reproduces
// the source-order Compile exactly.
func CompileWithPlan(prog *ops5.Program, pc PlanConfig) (*Network, error) {
	net := newNetwork(prog)
	net.plan = pc
	b := newBuilder(net, nil)
	for _, r := range prog.Rules {
		if err := b.compileRule(r); err != nil {
			return nil, fmt.Errorf("production %s: %w", r.Name, err)
		}
	}
	// Lower every test into its specialized closure (fastpath.go) so the
	// matchers never re-branch on test kind per token.
	for _, c := range net.Chains {
		c.compileFast()
	}
	for _, j := range net.Joins {
		j.compileFast()
	}
	return net, nil
}

func newNetwork(prog *ops5.Program) *Network {
	return &Network{
		Prog:          prog,
		ChainsByClass: make(map[symbols.ID][]*AlphaChain),
		chainByKey:    make(map[string]*AlphaChain),
		joinByKey:     make(map[string]*JoinNode),
	}
}

// builder compiles rules into a network it owns for the duration of one
// operation (a whole-program Compile, or one AddRule). Rows of the
// per-node epoch tables may still be shared with a parent epoch; the
// builder copies each row the first time the operation writes it and
// records what it added in the delta (when one is being tracked).
type builder struct {
	net   *Network
	delta *EpochDelta // nil for whole-program compiles
	// ownDests/ownSuccs/ownClass mark rows (and ChainsByClass slices)
	// already copied — or created — by this operation.
	ownDests map[int]bool
	ownSuccs map[int]bool
	ownTerms map[int]bool
	ownRules map[int]bool
	ownClass map[symbols.ID]bool
	// grown*At record the pre-operation length of rows that existed
	// before the operation and grew during it, for delta finalization.
	grownDestsAt map[int]int
	grownSuccsAt map[int]int
	grownTermsAt map[int]int
}

func newBuilder(net *Network, delta *EpochDelta) *builder {
	return &builder{
		net:          net,
		delta:        delta,
		ownDests:     make(map[int]bool),
		ownSuccs:     make(map[int]bool),
		ownTerms:     make(map[int]bool),
		ownRules:     make(map[int]bool),
		ownClass:     make(map[symbols.ID]bool),
		grownDestsAt: make(map[int]int),
		grownSuccsAt: make(map[int]int),
		grownTermsAt: make(map[int]int),
	}
}

// finishDelta records, for every pre-existing node the operation grew,
// exactly the appended fan-out — the replay frontier the matchers need.
func (b *builder) finishDelta() {
	if b.delta == nil {
		return
	}
	for id, base := range b.grownDestsAt {
		row := b.net.chainDests[id]
		if len(row) > base {
			b.delta.GrownChains = append(b.delta.GrownChains, GrownChain{
				Chain: b.net.chainsByID[id], NewDests: row[base:],
			})
		}
	}
	grown := make(map[int]*GrownJoin)
	joinGrown := func(id int) *GrownJoin {
		if g := grown[id]; g != nil {
			return g
		}
		b.delta.GrownJoins = append(b.delta.GrownJoins, GrownJoin{Join: b.net.joinsByID[id]})
		g := &b.delta.GrownJoins[len(b.delta.GrownJoins)-1]
		grown[id] = g
		return g
	}
	for id, base := range b.grownSuccsAt {
		row := b.net.joinSuccs[id]
		if len(row) > base {
			joinGrown(id).NewSuccs = row[base:]
		}
	}
	for id, base := range b.grownTermsAt {
		row := b.net.joinTerms[id]
		if len(row) > base {
			joinGrown(id).NewTerms = row[base:]
		}
	}
	// Keep delta ordering deterministic (maps above iterate randomly).
	sort.Slice(b.delta.GrownChains, func(i, j int) bool {
		return b.delta.GrownChains[i].Chain.ID < b.delta.GrownChains[j].Chain.ID
	})
	sort.Slice(b.delta.GrownJoins, func(i, j int) bool {
		return b.delta.GrownJoins[i].Join.ID < b.delta.GrownJoins[j].Join.ID
	})
}

// addChainDest appends a destination to a chain, copying the row on
// first write if it is shared with a parent epoch.
func (b *builder) addChainDest(c *AlphaChain, d AlphaDest) {
	n := b.net
	row := n.chainDests[c.ID]
	if !b.ownDests[c.ID] {
		b.ownDests[c.ID] = true
		b.grownDestsAt[c.ID] = len(row)
		row = append(make([]AlphaDest, 0, len(row)+1), row...)
	}
	n.chainDests[c.ID] = append(row, d)
}

func (b *builder) addJoinSucc(j, succ *JoinNode) {
	n := b.net
	row := n.joinSuccs[j.ID]
	if !b.ownSuccs[j.ID] {
		b.ownSuccs[j.ID] = true
		b.grownSuccsAt[j.ID] = len(row)
		row = append(make([]*JoinNode, 0, len(row)+1), row...)
	}
	n.joinSuccs[j.ID] = append(row, succ)
}

func (b *builder) addJoinTerm(j *JoinNode, t *Terminal) {
	n := b.net
	row := n.joinTerms[j.ID]
	if !b.ownTerms[j.ID] {
		b.ownTerms[j.ID] = true
		b.grownTermsAt[j.ID] = len(row)
		row = append(make([]*Terminal, 0, len(row)+1), row...)
	}
	n.joinTerms[j.ID] = append(row, t)
}

func (b *builder) addJoinRule(j *JoinNode, name string) {
	n := b.net
	row := n.joinRules[j.ID]
	// A rule's path visits each join once, so a trailing duplicate means
	// this rule already recorded itself on the node.
	if ln := len(row); ln > 0 && row[ln-1] == name {
		return
	}
	if !b.ownRules[j.ID] {
		b.ownRules[j.ID] = true
		row = append(make([]string, 0, len(row)+1), row...)
	}
	n.joinRules[j.ID] = append(row, name)
}

func (b *builder) addChainToClass(class symbols.ID, c *AlphaChain) {
	n := b.net
	row := n.ChainsByClass[class]
	if !b.ownClass[class] {
		b.ownClass[class] = true
		row = append(make([]*AlphaChain, 0, len(row)+1), row...)
	}
	n.ChainsByClass[class] = append(row, c)
}

// ceSplit is the per-condition-element compilation result.
type ceSplit struct {
	alphaTests []ConstTest
	eqTests    []JoinTest
	otherTests []JoinTest
	// newBinds are the variables first bound in this (positive) CE.
	newBinds map[string]int // var -> field
	numTests int
}

// splitCE classifies every test of a condition element into alpha
// (constant or intra-element), join-equality, or join-other tests, given
// the bindings established by earlier positive condition elements.
func splitCE(ce *ops5.CondElem, bound map[string]BindRef) (*ceSplit, error) {
	s := &ceSplit{newBinds: make(map[string]int)}
	s.numTests = 1 // the class test
	for _, at := range ce.Tests {
		for _, term := range at.Terms {
			s.numTests++
			switch {
			case term.Disj != nil:
				s.alphaTests = append(s.alphaTests, ConstTest{
					Field: at.Field, Pred: ops5.PredEQ, Disj: term.Disj, OtherField: -1,
				})
			case !term.IsVar:
				s.alphaTests = append(s.alphaTests, ConstTest{
					Field: at.Field, Pred: term.Pred, Const: term.Const, OtherField: -1,
				})
			default:
				// Variable occurrence: intra-element test if already seen
				// in this CE, join test if bound earlier, binding otherwise.
				if f, ok := s.newBinds[term.Var]; ok {
					s.alphaTests = append(s.alphaTests, ConstTest{
						Field: at.Field, Pred: term.Pred, OtherField: f,
					})
					continue
				}
				if ref, ok := bound[term.Var]; ok {
					jt := JoinTest{
						Pred: term.Pred, LeftPos: ref.Pos, LeftField: ref.Field, RightField: at.Field,
					}
					if term.Pred == ops5.PredEQ {
						s.eqTests = append(s.eqTests, jt)
					} else {
						s.otherTests = append(s.otherTests, jt)
					}
					continue
				}
				if term.Pred != ops5.PredEQ {
					return nil, fmt.Errorf("predicate %s applied to unbound variable <%s>", term.Pred, term.Var)
				}
				s.numTests-- // a first binding is not a test
				s.newBinds[term.Var] = at.Field
			}
		}
	}
	return s, nil
}

// compileRule threads one production through the network, sharing alpha
// chains and identical join prefixes with previously compiled rules.
// When the network carries a reorder policy the planner picks the join
// order; source order otherwise.
func (b *builder) compileRule(r *ops5.Rule) error {
	order := PlanOrder(r, b.net.plan)
	if order != nil && !validOrder(r, order) {
		// A plan the compiler cannot realize falls back to source order
		// (validOrder runs before any network state is touched).
		order = nil
	}
	return b.compileRuleOrdered(r, order)
}

// compileRuleOrdered compiles one production with an explicit plan
// (order nil = source order). A non-nil order must have passed
// validOrder.
func (b *builder) compileRuleOrdered(r *ops5.Rule, order []int) error {
	net := b.net
	cr := &CompiledRule{
		Rule:     r,
		Index:    net.numRuleIDs,
		CEPos:    make([]int, len(r.CEs)),
		Bindings: make(map[string]BindRef),
	}
	var (
		firstAlpha *AlphaChain
		prevJoin   *JoinNode
		err        error
	)
	if order == nil {
		firstAlpha, prevJoin, err = b.buildSourceOrder(r, cr)
	} else {
		firstAlpha, prevJoin, err = b.buildPlanned(r, cr, order)
	}
	if err != nil {
		return err
	}
	term := &Terminal{ID: net.numTermIDs, Rule: cr}
	net.numTermIDs++
	cr.Terminal = term
	net.Terminals = append(net.Terminals, term)
	if prevJoin == nil {
		// Single-condition-element production: terminal hangs directly
		// off the alpha chain.
		b.addChainDest(firstAlpha, AlphaDest{Terminal: term})
	} else {
		b.addJoinTerm(prevJoin, term)
	}
	net.Rules = append(net.Rules, cr)
	net.numRuleIDs++
	if b.delta != nil {
		b.delta.AddedRules = append(b.delta.AddedRules, cr)
		b.delta.NewTerminals = append(b.delta.NewTerminals, term)
	}
	return nil
}

// buildSourceOrder is the paper's compile: one linear join per
// production, condition elements left to right in source order.
func (b *builder) buildSourceOrder(r *ops5.Rule, cr *CompiledRule) (*AlphaChain, *JoinNode, error) {
	net := b.net
	var (
		prevJoin   *JoinNode // last join built so far (nil before the 2nd CE)
		firstAlpha *AlphaChain
		prefixKey  string
		tokenLen   int
	)
	for i, ce := range r.CEs {
		split, err := splitCE(ce, cr.Bindings)
		if err != nil {
			return nil, nil, fmt.Errorf("condition element %d: %w", i+1, err)
		}
		cr.Specificity += split.numTests
		chain := b.internChain(ce.Class, split.alphaTests)
		cr.ChainIDs = append(cr.ChainIDs, chain.ID)
		net.chainRefs[chain.ID]++
		if i == 0 {
			firstAlpha = chain
			prefixKey = fmt.Sprintf("a%d", chain.ID)
			cr.CEPos[0] = 0
			tokenLen = 1
			for v, f := range split.newBinds {
				cr.Bindings[v] = BindRef{Pos: 0, Field: f}
			}
			continue
		}
		join := b.internJoin(prefixKey, firstAlpha, prevJoin, chain, ce.Negated, split, tokenLen, i)
		cr.JoinIDs = append(cr.JoinIDs, join.ID)
		net.joinRefs[join.ID]++
		b.addJoinRule(join, r.Name)
		prefixKey = join.key
		prevJoin = join
		if ce.Negated {
			cr.CEPos[i] = -1
		} else {
			cr.CEPos[i] = tokenLen
			for v, f := range split.newBinds {
				cr.Bindings[v] = BindRef{Pos: tokenLen, Field: f}
			}
			tokenLen++
		}
	}
	return firstAlpha, prevJoin, nil
}

// buildPlanned threads the production through the network in planned
// order while keeping every source-order contract intact: the RHS
// evaluator, refraction keys, recency comparison and the firing trace
// all see source-order tokens, so CEPos, Bindings and Specificity come
// from a source-order pre-pass, join tests reference planned token
// positions through a separate binding environment, and TokenPerm
// records how the conflict set permutes a network token back into
// source order.
func (b *builder) buildPlanned(r *ops5.Rule, cr *CompiledRule, order []int) (*AlphaChain, *JoinNode, error) {
	net := b.net
	// Source-order pre-pass: source token positions, RHS bindings,
	// specificity.
	srcPos := make([]int, len(r.CEs))
	{
		tokenLen := 0
		for i, ce := range r.CEs {
			split, err := splitCE(ce, cr.Bindings)
			if err != nil {
				return nil, nil, fmt.Errorf("condition element %d: %w", i+1, err)
			}
			cr.Specificity += split.numTests
			if i > 0 && ce.Negated {
				srcPos[i] = -1
				cr.CEPos[i] = -1
				continue
			}
			srcPos[i] = tokenLen
			cr.CEPos[i] = tokenLen
			for v, f := range split.newBinds {
				cr.Bindings[v] = BindRef{Pos: tokenLen, Field: f}
			}
			tokenLen++
		}
	}
	// Network pass in planned order, with its own binding environment.
	var (
		prevJoin   *JoinNode
		firstAlpha *AlphaChain
		prefixKey  string
		tokenLen   int
	)
	netBound := make(map[string]BindRef)
	perm := make([]int, 0, len(r.CEs))
	for oi, ci := range order {
		ce := r.CEs[ci]
		split, err := splitCE(ce, netBound)
		if err != nil {
			// validOrder ran this exact split sequence before any state
			// was touched, so this cannot fire.
			return nil, nil, fmt.Errorf("condition element %d (planned): %w", ci+1, err)
		}
		chain := b.internChain(ce.Class, split.alphaTests)
		cr.ChainIDs = append(cr.ChainIDs, chain.ID)
		net.chainRefs[chain.ID]++
		if oi == 0 {
			firstAlpha = chain
			prefixKey = fmt.Sprintf("a%d", chain.ID)
			tokenLen = 1
			perm = append(perm, srcPos[ci])
			for v, f := range split.newBinds {
				netBound[v] = BindRef{Pos: 0, Field: f}
			}
			continue
		}
		join := b.internJoin(prefixKey, firstAlpha, prevJoin, chain, ce.Negated, split, tokenLen, oi)
		cr.JoinIDs = append(cr.JoinIDs, join.ID)
		net.joinRefs[join.ID]++
		b.addJoinRule(join, r.Name)
		prefixKey = join.key
		prevJoin = join
		if !ce.Negated {
			perm = append(perm, srcPos[ci])
			for v, f := range split.newBinds {
				netBound[v] = BindRef{Pos: tokenLen, Field: f}
			}
			tokenLen++
		}
	}
	cr.Order = append([]int(nil), order...)
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if !identity {
		cr.TokenPerm = perm
	}
	return firstAlpha, prevJoin, nil
}

// internChain returns the shared alpha chain for (class, tests),
// creating it when new. Chains are canonicalized by sorting tests.
func (b *builder) internChain(class symbols.ID, tests []ConstTest) *AlphaChain {
	net := b.net
	sorted := append([]ConstTest(nil), tests...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Field != sorted[j].Field {
			return sorted[i].Field < sorted[j].Field
		}
		return constTestKey(&sorted[i]) < constTestKey(&sorted[j])
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "c%d", class)
	for i := range sorted {
		sb.WriteByte('|')
		sb.WriteString(constTestKey(&sorted[i]))
	}
	key := sb.String()
	if c, ok := net.chainByKey[key]; ok {
		return c
	}
	c := &AlphaChain{ID: len(net.chainDests), Class: class, Tests: sorted, key: key}
	net.Chains = append(net.Chains, c)
	net.chainDests = append(net.chainDests, nil)
	net.chainRefs = append(net.chainRefs, 0)
	net.chainsByID = append(net.chainsByID, c)
	b.ownDests[c.ID] = true
	b.addChainToClass(class, c)
	net.chainByKey[key] = c
	if b.delta != nil {
		b.delta.NewChains = append(b.delta.NewChains, c)
	}
	return c
}

func constTestKey(t *ConstTest) string {
	if t.Disj != nil {
		var sb strings.Builder
		fmt.Fprintf(&sb, "f%d<<", t.Field)
		for _, d := range t.Disj {
			fmt.Fprintf(&sb, "%#v,", d)
		}
		sb.WriteString(">>")
		return sb.String()
	}
	if t.OtherField >= 0 {
		return fmt.Sprintf("f%d%sf%d", t.Field, t.Pred, t.OtherField)
	}
	return fmt.Sprintf("f%d%s%#v", t.Field, t.Pred, t.Const)
}

// internJoin returns a shared join node for the given prefix and right
// input, creating it when new.
func (b *builder) internJoin(prefixKey string, firstAlpha *AlphaChain, prev *JoinNode, right *AlphaChain, negated bool, split *ceSplit, tokenLen, planPos int) *JoinNode {
	net := b.net
	var sb strings.Builder
	sb.WriteString(prefixKey)
	fmt.Fprintf(&sb, ">>a%d,n%v", right.ID, negated)
	for _, t := range split.eqTests {
		fmt.Fprintf(&sb, "|e%d.%d=%d", t.LeftPos, t.LeftField, t.RightField)
	}
	for _, t := range split.otherTests {
		fmt.Fprintf(&sb, "|o%d.%d%s%d", t.LeftPos, t.LeftField, t.Pred, t.RightField)
	}
	key := sb.String()
	if j, ok := net.joinByKey[key]; ok {
		return j
	}
	j := &JoinNode{
		ID:         len(net.joinSuccs),
		Negated:    negated,
		EqTests:    split.eqTests,
		OtherTests: split.otherTests,
		LeftLen:    tokenLen,
		Right:      right,
		PlanPos:    planPos,
		PlanSel:    joinSelEstimate(split),
		key:        key,
	}
	net.Joins = append(net.Joins, j)
	net.joinSuccs = append(net.joinSuccs, nil)
	net.joinTerms = append(net.joinTerms, nil)
	net.joinRules = append(net.joinRules, nil)
	net.joinRefs = append(net.joinRefs, 0)
	net.joinsByID = append(net.joinsByID, j)
	b.ownSuccs[j.ID] = true
	b.ownTerms[j.ID] = true
	b.ownRules[j.ID] = true
	net.joinByKey[key] = j
	if prev == nil {
		j.LeftFromAlpha = true
		b.addChainDest(firstAlpha, AlphaDest{Join: j, Side: Left})
	} else {
		b.addJoinSucc(prev, j)
	}
	b.addChainDest(right, AlphaDest{Join: j, Side: Right})
	if b.delta != nil {
		b.delta.NewJoins = append(b.delta.NewJoins, j)
	}
	return j
}
