// Package rete compiles OPS5 left-hand sides into a Rete network and
// provides the node-activation semantics (test evaluation, hashing,
// conjugate-pair-aware memory updates) shared by every matcher backend:
// the vs1/vs2 sequential matchers, the goroutine-based parallel matcher
// and the Multimax simulator.
//
// The network follows the paper's organization: per-class constant-test
// chains with structural sharing feed coalesced memory/two-input nodes
// arranged in a linear left-to-right join per production. Memory nodes
// are *not* shared between joins (paper footnote 6: sharing memories is
// impossible in the parallel implementation), but constant-test chains
// and identical join prefixes are.
package rete

import (
	"repro/internal/ops5"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// Side distinguishes the two inputs of a two-input node.
type Side uint8

// Activation sides.
const (
	Left  Side = 0
	Right Side = 1
)

func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// ConstTest is one test in an alpha chain: either a constant comparison
// on a single field or an intra-condition-element comparison between two
// fields of the same WME.
type ConstTest struct {
	Field      int
	Pred       ops5.Pred
	Const      wm.Value
	Disj       []wm.Value // non-nil for << ... >> (equality against any)
	OtherField int        // >= 0: compare Field against OtherField instead of Const
}

// Eval applies the test to a WME.
func (t *ConstTest) Eval(w *wm.WME) bool {
	v := w.Field(t.Field)
	if t.Disj != nil {
		for _, d := range t.Disj {
			if v.Equal(d) {
				return true
			}
		}
		return false
	}
	if t.OtherField >= 0 {
		return t.Pred.Apply(v, w.Field(t.OtherField))
	}
	return t.Pred.Apply(v, t.Const)
}

// AlphaDest is one destination of an alpha chain: a side of a join node,
// or a terminal for single-condition-element productions.
type AlphaDest struct {
	Join     *JoinNode
	Side     Side
	Terminal *Terminal // non-nil for direct alpha->terminal productions
}

// AlphaChain is a shared constant-test chain for one condition-element
// pattern. Class dispatch happens before the chain, so the class test is
// implicit.
type AlphaChain struct {
	ID    int
	Class symbols.ID
	Tests []ConstTest
	Dests []AlphaDest
	key   string
	// evals are the compiled per-test closures (fastpath.go); nil on
	// hand-built chains, which fall back to the interpreted Eval.
	evals []func(*wm.WME) bool
}

// Matches runs the whole chain on a WME of the right class.
func (a *AlphaChain) Matches(w *wm.WME) bool {
	if a.evals != nil {
		for _, f := range a.evals {
			if !f(w) {
				return false
			}
		}
		return true
	}
	for i := range a.Tests {
		if !a.Tests[i].Eval(w) {
			return false
		}
	}
	return true
}

// JoinTest compares a field of the incoming right WME against a field of
// a WME inside the left token.
type JoinTest struct {
	Pred       ops5.Pred
	LeftPos    int // index of the WME within the left token
	LeftField  int
	RightField int
}

// JoinNode is a coalesced memory/two-input node. Its left memory stores
// tokens from the previous stage, its right memory stores WMEs from its
// alpha chain; both live in whatever memory implementation the matcher
// backend chose (per-node lists for vs1, the global hash tables for vs2
// and the parallel matchers).
type JoinNode struct {
	ID      int
	Negated bool // right input comes from a negated condition element
	// EqTests are the equality tests, used both for matching and for the
	// token hash function; OtherTests carry the remaining predicates.
	EqTests    []JoinTest
	OtherTests []JoinTest
	// LeftLen is the number of WMEs in tokens arriving on the left.
	LeftLen int
	// Succs receive output tokens on their left inputs; Terminals
	// receive them when this is the last join of one or more productions.
	// Both can be non-empty at once when a shared prefix both ends a
	// short production and continues a longer one.
	Succs     []*JoinNode
	Terminals []*Terminal
	// LeftFromAlpha marks first-stage joins, whose left input comes
	// straight from an alpha chain (tokens of length 1).
	LeftFromAlpha bool
	// RuleNames lists the productions whose chains include this node
	// (more than one when prefixes are shared) — used by contention
	// profiles to point at culprit productions, as the paper does for
	// Tourney in §4.2.
	RuleNames []string
	key       string
	// pairFn is the compiled token-pair test (fastpath.go); nil on
	// hand-built nodes, which fall back to the interpreted loop.
	pairFn func([]*wm.WME, *wm.WME) bool
}

// HasEqTests reports whether the node hashes on join values. Nodes
// without equality tests put all their tokens on a single hash line —
// the cross-product pathology the paper observes in Tourney.
func (j *JoinNode) HasEqTests() bool { return len(j.EqTests) > 0 }

// TestPair evaluates every join test on a (left token, right WME) pair.
func (j *JoinNode) TestPair(left []*wm.WME, right *wm.WME) bool {
	if j.pairFn != nil {
		return j.pairFn(left, right)
	}
	for i := range j.EqTests {
		t := &j.EqTests[i]
		if !right.Field(t.RightField).Equal(left[t.LeftPos].Field(t.LeftField)) {
			return false
		}
	}
	for i := range j.OtherTests {
		t := &j.OtherTests[i]
		if !t.Pred.Apply(right.Field(t.RightField), left[t.LeftPos].Field(t.LeftField)) {
			return false
		}
	}
	return true
}

// LeftHash folds the node identity and the equality-test values of a
// left token into the hash used to pick the token hash-table line.
func (j *JoinNode) LeftHash(left []*wm.WME) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(j.ID) * 0x9e3779b97f4a7c15)
	for i := range j.EqTests {
		t := &j.EqTests[i]
		h = left[t.LeftPos].Field(t.LeftField).Hash(h)
	}
	return h
}

// RightHash is LeftHash's counterpart for a right-input WME; equal join
// values yield the same hash, so both sides land on the same line.
func (j *JoinNode) RightHash(w *wm.WME) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(j.ID) * 0x9e3779b97f4a7c15)
	for i := range j.EqTests {
		t := &j.EqTests[i]
		h = w.Field(t.RightField).Hash(h)
	}
	return h
}

// BindRef locates a variable binding inside a full instantiation token.
type BindRef struct {
	Pos   int // WME index within the instantiation
	Field int
}

// CompiledRule carries everything the RHS evaluator and conflict
// resolution need about one production.
type CompiledRule struct {
	Rule     *ops5.Rule
	Index    int
	Terminal *Terminal
	// CEPos maps the rule's condition-element index (0-based, counting
	// negated CEs) to the WME position in instantiation tokens, or -1
	// for negated CEs.
	CEPos    []int
	Bindings map[string]BindRef
	// Specificity is the total number of tests in the LHS (class tests
	// included), the LEX/MEA tie-breaker.
	Specificity int
}

// Terminal announces conflict-set changes for one production.
type Terminal struct {
	ID   int
	Rule *CompiledRule
}

// Network is the compiled Rete network plus the per-rule metadata.
//
// A Network is immutable after Compile: matching only reads it (all
// token state lives in the matcher's own memories), so one Network can
// be shared read-only by any number of concurrent matchers — this is
// what lets the inference server compile a program once and run many
// sessions against it. The embedded Program's symbol table is
// internally synchronized; the Program's class maps, however, are NOT,
// so concurrent users must not auto-extend classes at run time (the
// server resolves attributes with read-only lookups and rejects unknown
// ones instead).
type Network struct {
	Prog *ops5.Program
	// ChainsByClass indexes the alpha chains by condition-element class.
	ChainsByClass map[symbols.ID][]*AlphaChain
	Chains        []*AlphaChain
	Joins         []*JoinNode
	Terminals     []*Terminal
	Rules         []*CompiledRule
}
