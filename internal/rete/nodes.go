// Package rete compiles OPS5 left-hand sides into a Rete network and
// provides the node-activation semantics (test evaluation, hashing,
// conjugate-pair-aware memory updates) shared by every matcher backend:
// the vs1/vs2 sequential matchers, the goroutine-based parallel matcher
// and the Multimax simulator.
//
// The network follows the paper's organization: per-class constant-test
// chains with structural sharing feed coalesced memory/two-input nodes
// arranged in a linear left-to-right join per production. Memory nodes
// are *not* shared between joins (paper footnote 6: sharing memories is
// impossible in the parallel implementation), but constant-test chains
// and identical join prefixes are.
//
// Networks are versioned: Compile produces epoch 0 and AddRule/RemoveRule
// (epoch.go) derive new epochs by copy-on-write, sharing every untouched
// node with the parent. Node objects themselves are immutable — all
// mutable topology (a chain's destinations, a join's successors and
// terminals) lives in per-epoch tables indexed by node ID, reached
// through the DestsOf/SuccsOf/TermsOf accessors. That keeps node
// pointers stable across epochs, which the matcher memories rely on for
// token identity, while letting two epochs disagree about fan-out.
package rete

import (
	"repro/internal/ops5"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// Side distinguishes the two inputs of a two-input node.
type Side uint8

// Activation sides.
const (
	Left  Side = 0
	Right Side = 1
)

func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// ConstTest is one test in an alpha chain: either a constant comparison
// on a single field or an intra-condition-element comparison between two
// fields of the same WME.
type ConstTest struct {
	Field      int
	Pred       ops5.Pred
	Const      wm.Value
	Disj       []wm.Value // non-nil for << ... >> (equality against any)
	OtherField int        // >= 0: compare Field against OtherField instead of Const
}

// Eval applies the test to a WME.
func (t *ConstTest) Eval(w *wm.WME) bool {
	v := w.Field(t.Field)
	if t.Disj != nil {
		for _, d := range t.Disj {
			if v.Equal(d) {
				return true
			}
		}
		return false
	}
	if t.OtherField >= 0 {
		return t.Pred.Apply(v, w.Field(t.OtherField))
	}
	return t.Pred.Apply(v, t.Const)
}

// AlphaDest is one destination of an alpha chain: a side of a join node,
// or a terminal for single-condition-element productions.
type AlphaDest struct {
	Join     *JoinNode
	Side     Side
	Terminal *Terminal // non-nil for direct alpha->terminal productions
}

// AlphaChain is a shared constant-test chain for one condition-element
// pattern. Class dispatch happens before the chain, so the class test is
// implicit. The chain's destinations are epoch state — use
// Network.DestsOf.
type AlphaChain struct {
	ID    int
	Class symbols.ID
	Tests []ConstTest
	key   string
	// evals are the compiled per-test closures (fastpath.go); nil on
	// hand-built chains, which fall back to the interpreted Eval.
	evals []func(*wm.WME) bool
}

// Matches runs the whole chain on a WME of the right class.
func (a *AlphaChain) Matches(w *wm.WME) bool {
	if a.evals != nil {
		for _, f := range a.evals {
			if !f(w) {
				return false
			}
		}
		return true
	}
	for i := range a.Tests {
		if !a.Tests[i].Eval(w) {
			return false
		}
	}
	return true
}

// JoinTest compares a field of the incoming right WME against a field of
// a WME inside the left token.
type JoinTest struct {
	Pred       ops5.Pred
	LeftPos    int // index of the WME within the left token
	LeftField  int
	RightField int
}

// JoinNode is a coalesced memory/two-input node. Its left memory stores
// tokens from the previous stage, its right memory stores WMEs from its
// alpha chain; both live in whatever memory implementation the matcher
// backend chose (per-node lists for vs1, the global hash tables for vs2
// and the parallel matchers). A join's successors and terminals are
// epoch state — use Network.SuccsOf and Network.TermsOf.
type JoinNode struct {
	ID      int
	Negated bool // right input comes from a negated condition element
	// EqTests are the equality tests, used both for matching and for the
	// token hash function; OtherTests carry the remaining predicates.
	EqTests    []JoinTest
	OtherTests []JoinTest
	// LeftLen is the number of WMEs in tokens arriving on the left.
	LeftLen int
	// LeftFromAlpha marks first-stage joins, whose left input comes
	// straight from an alpha chain (tokens of length 1).
	LeftFromAlpha bool
	// Right is the alpha chain feeding the node's right input. Matchers
	// use it to find the candidate WME population of an unlinked join.
	Right *AlphaChain
	// PlanPos is the position this join's condition element got in the
	// compile plan (the source index when compiled in source order), and
	// PlanSel the static selectivity estimate of the join's tests — both
	// recorded on the topology dump so reorder regressions are
	// reviewable. Shared joins keep the values of their first creator,
	// which is deterministic (shared key implies shared prefix).
	PlanPos int
	PlanSel float64
	key     string
	// pairFn is the compiled token-pair test (fastpath.go); nil on
	// hand-built nodes, which fall back to the interpreted loop.
	pairFn func([]*wm.WME, *wm.WME) bool
}

// HasEqTests reports whether the node hashes on join values. Nodes
// without equality tests put all their tokens on a single hash line —
// the cross-product pathology the paper observes in Tourney.
func (j *JoinNode) HasEqTests() bool { return len(j.EqTests) > 0 }

// TestPair evaluates every join test on a (left token, right WME) pair.
func (j *JoinNode) TestPair(left []*wm.WME, right *wm.WME) bool {
	if j.pairFn != nil {
		return j.pairFn(left, right)
	}
	for i := range j.EqTests {
		t := &j.EqTests[i]
		if !right.Field(t.RightField).Equal(left[t.LeftPos].Field(t.LeftField)) {
			return false
		}
	}
	for i := range j.OtherTests {
		t := &j.OtherTests[i]
		if !t.Pred.Apply(right.Field(t.RightField), left[t.LeftPos].Field(t.LeftField)) {
			return false
		}
	}
	return true
}

// LeftHash folds the node identity and the equality-test values of a
// left token into the hash used to pick the token hash-table line.
func (j *JoinNode) LeftHash(left []*wm.WME) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(j.ID) * 0x9e3779b97f4a7c15)
	for i := range j.EqTests {
		t := &j.EqTests[i]
		h = left[t.LeftPos].Field(t.LeftField).Hash(h)
	}
	return h
}

// RightHash is LeftHash's counterpart for a right-input WME; equal join
// values yield the same hash, so both sides land on the same line.
func (j *JoinNode) RightHash(w *wm.WME) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(j.ID) * 0x9e3779b97f4a7c15)
	for i := range j.EqTests {
		t := &j.EqTests[i]
		h = w.Field(t.RightField).Hash(h)
	}
	return h
}

// BindRef locates a variable binding inside a full instantiation token.
type BindRef struct {
	Pos   int // WME index within the instantiation
	Field int
}

// CompiledRule carries everything the RHS evaluator and conflict
// resolution need about one production.
type CompiledRule struct {
	Rule     *ops5.Rule
	Index    int
	Terminal *Terminal
	// CEPos maps the rule's condition-element index (0-based, counting
	// negated CEs) to the WME position in instantiation tokens, or -1
	// for negated CEs.
	CEPos    []int
	Bindings map[string]BindRef
	// Specificity is the total number of tests in the LHS (class tests
	// included), the LEX/MEA tie-breaker.
	Specificity int
	// ChainIDs and JoinIDs record the rule's node path through the
	// network: one alpha chain per condition element in order, one join
	// per condition element after the first. RemoveRule walks them to
	// decrement the refcounts of shared nodes.
	ChainIDs []int
	JoinIDs  []int
	// Order is the planned condition-element compile order (planned
	// position -> source CE index); nil when the rule compiled in source
	// order. TokenPerm permutes a network-order instantiation token back
	// into source order (srcToken[TokenPerm[i]] = netToken[i]); nil when
	// the positive-CE order is unchanged. The conflict set applies it
	// before a token becomes visible to refraction, recency, the RHS or
	// the firing trace, which is what keeps reordered compiles
	// byte-identical to source-order runs.
	Order     []int
	TokenPerm []int
}

// Terminal announces conflict-set changes for one production.
type Terminal struct {
	ID   int
	Rule *CompiledRule
}

// Network is one epoch of the compiled Rete network plus the per-rule
// metadata.
//
// A Network is immutable once built: matching only reads it (all token
// state lives in the matcher's own memories), so one Network can be
// shared read-only by any number of concurrent matchers — this is what
// lets the inference server compile a program once and run many
// sessions against it. Rule changes never mutate a Network in place;
// AddRule and RemoveRule derive a child epoch by copy-on-write while
// readers of the parent epoch continue undisturbed. The embedded
// Program must be frozen (ops5.Program.Freeze) before a Network is
// shared across goroutines; engine.New does this.
type Network struct {
	Prog *ops5.Program
	// Epoch numbers successive network versions; a whole-program Compile
	// yields epoch 0 and each AddRule/RemoveRule increments it.
	Epoch int
	// Delta describes what this epoch changed relative to its parent;
	// nil for a whole-program compile. Matchers use it to replay working
	// memory through the new nodes and to tear down the dead ones.
	Delta *EpochDelta

	// ChainsByClass indexes the live alpha chains by condition-element
	// class.
	ChainsByClass map[symbols.ID][]*AlphaChain
	Chains        []*AlphaChain   // live chains, compile order
	Joins         []*JoinNode     // live joins, compile order
	Terminals     []*Terminal     // live terminals, compile order
	Rules         []*CompiledRule // live rules, compile order

	parent *Network

	// Per-node-ID epoch tables. Node IDs are monotonic and never reused
	// across epochs, so rows for excised nodes go nil and the tables
	// only ever grow. Rows are shared with the parent epoch until the
	// child changes them (copy-on-write).
	chainDests [][]AlphaDest
	joinSuccs  [][]*JoinNode
	joinTerms  [][]*Terminal
	// joinRules lists, per join, the productions whose chains include
	// the node (more than one when prefixes are shared) — used by
	// contention profiles to point at culprit productions, as the paper
	// does for Tourney in §4.2.
	joinRules [][]string
	// chainRefs/joinRefs count how many condition elements of live rules
	// use each node; RemoveRule excises a node when its count drops to
	// zero.
	chainRefs  []int32
	joinRefs   []int32
	chainsByID []*AlphaChain
	joinsByID  []*JoinNode

	numTermIDs int
	numRuleIDs int

	// plan is the join-order compile policy this network was built with;
	// child epochs inherit it so AddRule plans new rules the same way.
	plan PlanConfig

	chainByKey map[string]*AlphaChain
	joinByKey  map[string]*JoinNode
}

// DestsOf returns the chain's destinations in this epoch.
func (n *Network) DestsOf(c *AlphaChain) []AlphaDest { return n.chainDests[c.ID] }

// SuccsOf returns the joins fed by j's output in this epoch.
func (n *Network) SuccsOf(j *JoinNode) []*JoinNode { return n.joinSuccs[j.ID] }

// TermsOf returns the terminals fed by j's output in this epoch.
func (n *Network) TermsOf(j *JoinNode) []*Terminal { return n.joinTerms[j.ID] }

// RuleNamesOf returns the names of the live productions whose chains
// include j.
func (n *Network) RuleNamesOf(j *JoinNode) []string { return n.joinRules[j.ID] }

// NumChainIDs returns the size of the chain ID space (IDs are never
// reused, so this can exceed len(Chains) after excises).
func (n *Network) NumChainIDs() int { return len(n.chainDests) }

// NumJoinIDs returns the size of the join ID space. Matchers size
// per-node structures (vs1 line tables, activation recorders) by it.
func (n *Network) NumJoinIDs() int { return len(n.joinSuccs) }

// NumTermIDs returns the size of the terminal ID space.
func (n *Network) NumTermIDs() int { return n.numTermIDs }

// NumRuleIDs returns the size of the rule index space; the engine sizes
// its compiled-RHS table by it.
func (n *Network) NumRuleIDs() int { return n.numRuleIDs }

// JoinByID returns the live join with the given ID, or nil if the ID is
// unassigned or the node was excised.
func (n *Network) JoinByID(id int) *JoinNode {
	if id < 0 || id >= len(n.joinsByID) {
		return nil
	}
	return n.joinsByID[id]
}

// ChainRefs returns how many condition elements of live rules use c.
func (n *Network) ChainRefs(c *AlphaChain) int { return int(n.chainRefs[c.ID]) }

// JoinRefs returns how many live rules' chains include j.
func (n *Network) JoinRefs(j *JoinNode) int { return int(n.joinRefs[j.ID]) }

// Parent returns the epoch this one was derived from, or nil for a
// whole-program compile.
func (n *Network) Parent() *Network { return n.parent }

// Plan returns the join-order compile policy of this network.
func (n *Network) Plan() PlanConfig { return n.plan }

// RuleByName returns the live compiled rule with the given name, or nil.
func (n *Network) RuleByName(name string) *CompiledRule {
	for _, cr := range n.Rules {
		if cr.Rule.Name == name {
			return cr
		}
	}
	return nil
}
