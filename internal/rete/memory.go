package rete

import (
	"sync/atomic"

	"repro/internal/wm"
)

// Entry is a token stored in a node memory: the WME list plus, for the
// left memory of negated nodes, the count of right WMEs it currently
// matches. Entries link intrusively so both the per-node lists of vs1
// and the hash-table buckets of vs2/parallel can hold them without
// extra allocation.
type Entry struct {
	Node *JoinNode
	Side Side
	Hash uint64
	Wmes []*wm.WME
	// NegCount is the number of matching right WMEs for left entries of
	// negated nodes. Atomic: concurrent right-side activations in an
	// MRSW epoch update counts of the same left entry.
	NegCount atomic.Int32
	Next     *Entry
}

// SameWmes reports element-wise pointer equality of two WME lists — the
// token identity used for delete matching and conjugate-pair detection.
func SameWmes(a, b []*wm.WME) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EntryList is an intrusive singly-linked token list. Lists may hold
// duplicate tokens (identical WME lists): out-of-order parallel
// processing can legitimately produce add-add-delete interleavings, and
// Remove takes out exactly one instance.
type EntryList struct {
	Head *Entry
	Len  int
}

// Push prepends an entry (LIFO, matching the paper's stack discipline).
func (l *EntryList) Push(e *Entry) {
	e.Next = l.Head
	l.Head = e
	l.Len++
}

// Remove unlinks the first entry for (node, side, wmes) and returns it
// with the number of entries scanned to find it (the paper's "tokens
// examined in same memory for deletes" statistic). It returns nil when
// no such entry exists. The stored 64-bit token hash is compared before
// the element-wise WME walk: unequal hashes mean unequal tokens, so the
// expensive SameWmes comparison only runs on genuine candidates. (vs1
// stores hash 0 for every entry unless the matcher computes hashes, in
// which case the same short-circuit applies to its per-node lists.)
func (l *EntryList) Remove(node *JoinNode, side Side, hash uint64, wmes []*wm.WME) (e *Entry, scanned int) {
	var prev *Entry
	for cur := l.Head; cur != nil; cur = cur.Next {
		scanned++
		if cur.Hash == hash && cur.Node == node && cur.Side == side && SameWmes(cur.Wmes, wmes) {
			if prev == nil {
				l.Head = cur.Next
			} else {
				prev.Next = cur.Next
			}
			cur.Next = nil
			l.Len--
			return cur, scanned
		}
		prev = cur
	}
	return nil, scanned
}

// TerminalSink receives conflict-set changes from terminal nodes.
type TerminalSink interface {
	InsertInstantiation(rule *CompiledRule, wmes []*wm.WME)
	RemoveInstantiation(rule *CompiledRule, wmes []*wm.WME)
}

// RootDeliver pushes one working-memory change through the constant-test
// part of the network: it runs every alpha chain registered for the
// WME's class and invokes deliver for each destination of each passing
// chain. It returns the number of constant tests evaluated, which the
// Multimax simulator's cost model charges at 3 instructions apiece (the
// figure the paper gives for a constant-test node activation).
func (n *Network) RootDeliver(w *wm.WME, deliver func(AlphaDest)) (testsRun int) {
	for _, chain := range n.ChainsByClass[w.Class()] {
		pass := true
		if chain.evals != nil {
			for _, f := range chain.evals {
				testsRun++
				if !f(w) {
					pass = false
					break
				}
			}
		} else {
			for i := range chain.Tests {
				testsRun++
				if !chain.Tests[i].Eval(w) {
					pass = false
					break
				}
			}
		}
		if !pass {
			continue
		}
		for _, d := range n.chainDests[chain.ID] {
			deliver(d)
		}
	}
	return testsRun
}
