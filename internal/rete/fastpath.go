// Specialized test closures, built once at network-compile time. The
// interpreted ConstTest.Eval and JoinNode.TestPair re-branch on the
// test kind (disjunction / other-field / predicate) for every token;
// §2 of the paper attributes much of its 10-20x sequential win to
// exactly this sort of per-activation discipline, so Compile lowers
// each test into a closure with the branch already resolved. Hand-built
// networks (tests) skip this and fall back to the interpreted path.
package rete

import (
	"repro/internal/ops5"
	"repro/internal/wm"
)

// compileFast lowers the chain's tests into per-test closures used by
// Matches and RootDeliver.
func (a *AlphaChain) compileFast() {
	a.evals = make([]func(*wm.WME) bool, len(a.Tests))
	for i := range a.Tests {
		a.evals[i] = a.Tests[i].compile()
	}
}

// compile specializes one constant test.
func (t *ConstTest) compile() func(*wm.WME) bool {
	field := t.Field
	switch {
	case t.Disj != nil:
		disj := t.Disj
		return func(w *wm.WME) bool {
			v := w.Field(field)
			for _, d := range disj {
				if v.Equal(d) {
					return true
				}
			}
			return false
		}
	case t.OtherField >= 0:
		other := t.OtherField
		if t.Pred == ops5.PredEQ {
			return func(w *wm.WME) bool { return w.Field(field).Equal(w.Field(other)) }
		}
		pred := t.Pred
		return func(w *wm.WME) bool { return pred.Apply(w.Field(field), w.Field(other)) }
	case t.Pred == ops5.PredEQ:
		c := t.Const
		if c.Kind == wm.KindSym {
			// The dominant alpha test: equality against a constant
			// symbol reduces to one kind check and one ID compare.
			sym := c.Sym
			return func(w *wm.WME) bool {
				v := w.Field(field)
				return v.Kind == wm.KindSym && v.Sym == sym
			}
		}
		return func(w *wm.WME) bool { return w.Field(field).Equal(c) }
	default:
		pred, c := t.Pred, t.Const
		return func(w *wm.WME) bool { return pred.Apply(w.Field(field), c) }
	}
}

// compileFast lowers the join tests into pairFn.
func (j *JoinNode) compileFast() {
	switch {
	case len(j.EqTests) == 0 && len(j.OtherTests) == 0:
		j.pairFn = func([]*wm.WME, *wm.WME) bool { return true }
	case len(j.EqTests) == 1 && len(j.OtherTests) == 0:
		// The common shape: a single equality test, which is also the
		// value both hash functions fold over.
		t := j.EqTests[0]
		lp, lf, rf := t.LeftPos, t.LeftField, t.RightField
		j.pairFn = func(left []*wm.WME, right *wm.WME) bool {
			return right.Field(rf).Equal(left[lp].Field(lf))
		}
	default:
		tests := make([]func([]*wm.WME, *wm.WME) bool, 0, len(j.EqTests)+len(j.OtherTests))
		for i := range j.EqTests {
			tests = append(tests, compileJoinTest(&j.EqTests[i]))
		}
		for i := range j.OtherTests {
			tests = append(tests, compileJoinTest(&j.OtherTests[i]))
		}
		if len(tests) == 2 {
			f0, f1 := tests[0], tests[1]
			j.pairFn = func(left []*wm.WME, right *wm.WME) bool {
				return f0(left, right) && f1(left, right)
			}
			return
		}
		j.pairFn = func(left []*wm.WME, right *wm.WME) bool {
			for _, f := range tests {
				if !f(left, right) {
					return false
				}
			}
			return true
		}
	}
}

// compileJoinTest specializes one inter-element test.
func compileJoinTest(t *JoinTest) func([]*wm.WME, *wm.WME) bool {
	lp, lf, rf := t.LeftPos, t.LeftField, t.RightField
	switch t.Pred {
	case ops5.PredEQ:
		return func(left []*wm.WME, right *wm.WME) bool {
			return right.Field(rf).Equal(left[lp].Field(lf))
		}
	case ops5.PredNE:
		return func(left []*wm.WME, right *wm.WME) bool {
			return !right.Field(rf).Equal(left[lp].Field(lf))
		}
	default:
		pred := t.Pred
		return func(left []*wm.WME, right *wm.WME) bool {
			return pred.Apply(right.Field(rf), left[lp].Field(lf))
		}
	}
}
