package rete_test

import (
	"sync"
	"testing"

	"repro/internal/rete"
	"repro/internal/wm"
)

// TestNetworkSharedReadOnly drives one compiled network from many
// goroutines at once, the way server sessions of the same program share
// it. Matching must never write to the network, so this is race-clean
// under -race; each goroutine checks it sees the same deliveries.
func TestNetworkSharedReadOnly(t *testing.T) {
	net := compile(t, `
(literalize a x y)
(literalize b x)
(p r1 (a ^x 1 ^y <v>) (b ^x <v>) --> (halt))
(p r2 (a ^x 2) --> (halt))
`)
	sym := net.Prog.Symbols.Intern("a")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := &wm.WME{Fields: []wm.Value{wm.Sym(sym), wm.Int(1), wm.Int(int64(i))}}
				hits := 0
				net.RootDeliver(w, func(rete.AlphaDest) { hits++ })
				if hits != 1 {
					t.Errorf("deliveries = %d, want 1", hits)
					return
				}
			}
		}()
	}
	wg.Wait()
}
