package rete_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/rete"
)

// emptyBase compiles a zero-rule network from the program, keeping the
// rules aside so they can be added incrementally.
func emptyBase(t *testing.T, src string) (*rete.Network, []*ops5.Rule) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rules := prog.Rules
	prog.Rules = nil
	base, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile empty base: %v", err)
	}
	prog.Rules = rules
	return base, rules
}

func dump(n *rete.Network) string {
	var b strings.Builder
	n.Dump(&b)
	return b.String()
}

// TestIncrementalEqualsBatch is the central topology guarantee: adding
// every rule one epoch at a time yields a network whose dump — node
// IDs, fan-out, refcounts, sharing — is byte-identical to the
// whole-program compile.
func TestIncrementalEqualsBatch(t *testing.T) {
	sources := map[string]string{
		"figure22": figure22,
		"prefix-sharing": `
(p r1 (a ^x <v>) (b ^y <v>) (c ^z 1) --> (halt))
(p r2 (a ^x <v>) (b ^y <v>) (d ^w 2) --> (halt))
(p r3 (a ^x <v>) (b ^y <v>) (c ^z 1) (d ^w <v>) --> (halt))
`,
		"single-ce-and-negated": `
(p r1 (a ^x 1) --> (halt))
(p r2 (a ^x <v>) - (b ^y <v>) --> (halt))
(p r3 (a ^x <v>) (a ^x <v>) --> (halt))
`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			batch := compile(t, src)
			base, rules := emptyBase(t, src)
			net := base
			for _, r := range rules {
				next, err := rete.AddRule(net, r)
				if err != nil {
					t.Fatalf("AddRule(%s): %v", r.Name, err)
				}
				if next.Parent() != net {
					t.Fatalf("epoch %d parent mismatch", next.Epoch)
				}
				if next.Epoch != net.Epoch+1 {
					t.Fatalf("epoch = %d, want %d", next.Epoch, net.Epoch+1)
				}
				net = next
			}
			got, want := dump(net), dump(batch)
			if got != want {
				t.Errorf("incremental dump differs from batch compile:\n--- incremental ---\n%s\n--- batch ---\n%s", got, want)
			}
		})
	}
}

// TestFigure22GoldenDump pins the compiled topology of the paper's
// Figure 2-2 network to a golden file, refcounts included.
func TestFigure22GoldenDump(t *testing.T) {
	net := compile(t, figure22)
	got := dump(net)
	golden := filepath.Join("testdata", "figure22.dump")
	want, err := os.ReadFile(golden)
	if err == nil && got == string(want) {
		return
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	t.Errorf("dump drifted from %s (set UPDATE_GOLDEN=1 to regenerate):\n%s", golden, got)
}

// TestAddRuleRejectsDuplicate: redefinition must go through excise.
func TestAddRuleRejectsDuplicate(t *testing.T) {
	net := compile(t, figure22)
	prog, err := ops5.Parse(figure22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rete.AddRule(net, prog.RuleByName("p1")); err == nil {
		t.Fatal("AddRule of an already-defined production should fail")
	}
}

// TestRemoveRuleKeepsSharedNodes excises p1 from the figure 2-2 network
// and checks that the C2 chain both rules share survives with its
// refcount decremented, while p1-only nodes are gone.
func TestRemoveRuleKeepsSharedNodes(t *testing.T) {
	net := compile(t, figure22)
	next, err := rete.RemoveRule(net, "p1")
	if err != nil {
		t.Fatal(err)
	}
	d := next.Delta
	if len(d.RemovedRules) != 1 || d.RemovedRules[0].Rule.Name != "p1" {
		t.Fatalf("delta.RemovedRules = %+v", d.RemovedRules)
	}
	// p1 owns: C1 chain, C3 chain, join(C1,C2), negated join; shared: C2 chain.
	if len(d.DeadChains) != 2 {
		t.Errorf("dead chains = %d, want 2 (C1, C3)", len(d.DeadChains))
	}
	if len(d.DeadJoins) != 2 {
		t.Errorf("dead joins = %d, want 2", len(d.DeadJoins))
	}
	s := next.Summarize()
	if s.Chains != 2 || s.Joins != 1 || s.Rules != 1 || s.Terminals != 1 {
		t.Errorf("after excise: %+v, want 2 chains / 1 join / 1 rule / 1 terminal", s)
	}
	var c2 *rete.AlphaChain
	for _, c := range next.Chains {
		if next.Prog.Symbols.Name(c.Class) == "C2" {
			c2 = c
		}
	}
	if c2 == nil {
		t.Fatal("shared C2 chain must survive the excise")
	}
	if next.ChainRefs(c2) != 1 {
		t.Errorf("C2 refs = %d, want 1 after excise", next.ChainRefs(c2))
	}
	for _, dst := range next.DestsOf(c2) {
		if dst.Join != nil && next.JoinByID(dst.Join.ID) == nil {
			t.Errorf("surviving chain still points at dead join %d", dst.Join.ID)
		}
	}
	// The parent epoch is untouched: old matchers keep using it.
	if s := net.Summarize(); s.Rules != 2 || s.Chains != 4 || s.Joins != 3 {
		t.Errorf("parent epoch mutated by RemoveRule: %+v", s)
	}
}

// TestRemoveThenReaddRestoresTopology excises and re-adds a rule; the
// resulting network must be isomorphic to the original (fresh node IDs,
// identical shape statistics and sharing).
func TestRemoveThenReaddRestoresTopology(t *testing.T) {
	net := compile(t, figure22)
	want := net.Summarize()
	p1 := net.Prog.RuleByName("p1")
	mid, err := rete.RemoveRule(net, "p1")
	if err != nil {
		t.Fatal(err)
	}
	back, err := rete.AddRule(mid, p1)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Summarize()
	want.Epoch = got.Epoch // versions differ by construction
	if got != want {
		t.Errorf("re-added network shape %+v, want %+v", got, want)
	}
	// IDs are never reused: the re-added rule's nodes sit above the old
	// ID space, and the dead IDs stay dead.
	if back.NumJoinIDs() <= net.NumJoinIDs() {
		t.Errorf("join ID space %d should have grown past %d", back.NumJoinIDs(), net.NumJoinIDs())
	}
	for _, dj := range mid.Delta.DeadJoins {
		if back.JoinByID(dj.ID) != nil {
			t.Errorf("dead join ID %d resurrected", dj.ID)
		}
	}
}

// TestRemoveUnknownRule: excising a name that is not defined fails.
func TestRemoveUnknownRule(t *testing.T) {
	net := compile(t, figure22)
	if _, err := rete.RemoveRule(net, "nope"); err == nil {
		t.Fatal("RemoveRule of an unknown production should fail")
	}
}

// TestSameChainTwiceRefcounts covers a rule using one alpha chain for
// two condition elements: the refcount must rise and fall by two.
func TestSameChainTwiceRefcounts(t *testing.T) {
	src := `(p r (a ^x <v>) (a ^x <v>) --> (halt))`
	net := compile(t, src)
	if len(net.Chains) != 1 {
		t.Fatalf("chains = %d, want 1 (same pattern shared)", len(net.Chains))
	}
	if net.ChainRefs(net.Chains[0]) != 2 {
		t.Fatalf("chain refs = %d, want 2 (two CEs)", net.ChainRefs(net.Chains[0]))
	}
	next, err := rete.RemoveRule(net, "r")
	if err != nil {
		t.Fatal(err)
	}
	if s := next.Summarize(); s.Chains != 0 || s.Joins != 0 {
		t.Errorf("after excise: %+v, want empty network", s)
	}
}

// TestDeltaReplayDests checks the replay wiring of an add epoch: new
// destinations grouped by chain, grown joins carrying only their new
// successors.
func TestDeltaReplayDests(t *testing.T) {
	base, rules := emptyBase(t, `
(p r1 (a ^x <v>) (b ^y <v>) --> (halt))
(p r2 (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))
`)
	one, err := rete.AddRule(base, rules[0])
	if err != nil {
		t.Fatal(err)
	}
	two, err := rete.AddRule(one, rules[1])
	if err != nil {
		t.Fatal(err)
	}
	d := two.Delta
	// r2 shares chain a, chain b and join(a,b); it adds chain c and the
	// second join plus its terminal.
	if len(d.NewChains) != 1 || len(d.NewJoins) != 1 || len(d.NewTerminals) != 1 {
		t.Fatalf("delta new: chains=%d joins=%d terms=%d, want 1/1/1",
			len(d.NewChains), len(d.NewJoins), len(d.NewTerminals))
	}
	if len(d.GrownJoins) != 1 || len(d.GrownJoins[0].NewSuccs) != 1 || len(d.GrownJoins[0].NewTerms) != 0 {
		t.Fatalf("grown joins = %+v, want join(a,b) with one new successor", d.GrownJoins)
	}
	targets := two.ReplayDests()
	var newDests int
	for _, cd := range targets {
		for _, dst := range cd.Dests {
			newDests++
			if dst.Join != nil && dst.Join != d.NewJoins[0] {
				t.Errorf("replay destination points at pre-existing join %d", dst.Join.ID)
			}
		}
	}
	// Chain c feeds the new join from the right only.
	if newDests != 1 {
		t.Errorf("replay destinations = %d, want 1", newDests)
	}
}
