// Network epochs: copy-on-write derivation of new network versions from
// a running one. AddRule compiles one production against an existing
// epoch, sharing every untouched alpha chain and join node with the
// parent; RemoveRule decrements per-node refcounts and excises only the
// nodes no surviving rule uses. Readers of the parent epoch are never
// disturbed — node objects are immutable and all fan-out lives in
// epoch-owned tables (see nodes.go), so a matcher holding the old
// Network pointer keeps matching against the old topology while another
// adopts the child.
package rete

import (
	"fmt"

	"repro/internal/ops5"
	"repro/internal/symbols"
)

// GrownChain records the destinations an epoch appended to a
// pre-existing alpha chain.
type GrownChain struct {
	Chain    *AlphaChain
	NewDests []AlphaDest
}

// GrownJoin records the successors and terminals an epoch appended to a
// pre-existing join node. During replay the join's historical output
// tokens must be re-derived and delivered to exactly these additions.
type GrownJoin struct {
	Join     *JoinNode
	NewSuccs []*JoinNode
	NewTerms []*Terminal
}

// EpochDelta is the precise difference between a network epoch and its
// parent. An epoch holds either additions (from AddRule) or removals
// (from RemoveRule), never both. Matchers consume it in SwapEpoch: the
// additions drive working-memory replay, the removals drive memory and
// conflict-set teardown.
type EpochDelta struct {
	AddedRules   []*CompiledRule
	RemovedRules []*CompiledRule
	NewChains    []*AlphaChain
	NewJoins     []*JoinNode
	NewTerminals []*Terminal
	GrownChains  []GrownChain
	GrownJoins   []GrownJoin
	DeadChains   []*AlphaChain
	DeadJoins    []*JoinNode
}

// ChainDests pairs an alpha chain with a subset of its destinations.
type ChainDests struct {
	Chain *AlphaChain
	Dests []AlphaDest
}

// ReplayDests returns every alpha destination this epoch added, grouped
// by chain: the full destination list of each new chain plus the
// appended destinations of each grown chain. Replay must deliver the
// right-side destinations (filling the right memories of new joins)
// before any left-side or terminal destination — see the matchers'
// SwapEpoch.
func (n *Network) ReplayDests() []ChainDests {
	d := n.Delta
	if d == nil {
		return nil
	}
	out := make([]ChainDests, 0, len(d.NewChains)+len(d.GrownChains))
	for _, c := range d.NewChains {
		out = append(out, ChainDests{Chain: c, Dests: n.chainDests[c.ID]})
	}
	for _, g := range d.GrownChains {
		out = append(out, ChainDests{Chain: g.Chain, Dests: g.NewDests})
	}
	return out
}

// cowClone derives a child epoch sharing all node objects and all
// epoch-table rows with n. Top-level containers (slices, maps) are
// copied so the child can grow or shrink them; individual rows are
// copied lazily by the builder or the excise surgery when first
// written.
func (n *Network) cowClone() *Network {
	c := &Network{
		Prog:          n.Prog,
		Epoch:         n.Epoch + 1,
		parent:        n,
		ChainsByClass: make(map[symbols.ID][]*AlphaChain, len(n.ChainsByClass)),
		Chains:        append([]*AlphaChain(nil), n.Chains...),
		Joins:         append([]*JoinNode(nil), n.Joins...),
		Terminals:     append([]*Terminal(nil), n.Terminals...),
		Rules:         append([]*CompiledRule(nil), n.Rules...),
		chainDests:    append([][]AlphaDest(nil), n.chainDests...),
		joinSuccs:     append([][]*JoinNode(nil), n.joinSuccs...),
		joinTerms:     append([][]*Terminal(nil), n.joinTerms...),
		joinRules:     append([][]string(nil), n.joinRules...),
		chainRefs:     append([]int32(nil), n.chainRefs...),
		joinRefs:      append([]int32(nil), n.joinRefs...),
		chainsByID:    append([]*AlphaChain(nil), n.chainsByID...),
		joinsByID:     append([]*JoinNode(nil), n.joinsByID...),
		numTermIDs:    n.numTermIDs,
		numRuleIDs:    n.numRuleIDs,
		plan:          n.plan,
		chainByKey:    make(map[string]*AlphaChain, len(n.chainByKey)),
		joinByKey:     make(map[string]*JoinNode, len(n.joinByKey)),
	}
	for k, v := range n.ChainsByClass {
		c.ChainsByClass[k] = v // class slices COW'd on append/filter
	}
	for k, v := range n.chainByKey {
		c.chainByKey[k] = v
	}
	for k, v := range n.joinByKey {
		c.joinByKey[k] = v
	}
	return c
}

// AddRule compiles one production against parent and returns a new
// epoch. The parent is not modified and remains fully usable by
// concurrent readers; the child shares every alpha chain and join the
// rule's LHS has in common with already-compiled rules. The rule name
// must not collide with a live rule (OPS5 redefinition is
// excise-then-add; the engine handles that ordering).
func AddRule(parent *Network, r *ops5.Rule) (*Network, error) {
	return addRule(parent, r, nil, false)
}

// AddRuleOrdered is AddRule with an explicit condition-element compile
// order (planned position -> source CE index), the entry point for
// re-planning a live rule against observed alpha-memory cardinalities:
// excise, then re-add with the order PlanOrder computed from a live
// Card estimator. A nil order compiles in source order regardless of
// the network's plan; an order the compiler cannot realize is an error
// (callers pre-validate by construction via PlanOrder).
func AddRuleOrdered(parent *Network, r *ops5.Rule, order []int) (*Network, error) {
	if order != nil && !validOrder(r, order) {
		return nil, fmt.Errorf("production %s: invalid planned order %v", r.Name, order)
	}
	return addRule(parent, r, order, true)
}

func addRule(parent *Network, r *ops5.Rule, order []int, forced bool) (*Network, error) {
	if parent.RuleByName(r.Name) != nil {
		return nil, fmt.Errorf("production %s is already defined (excise it first)", r.Name)
	}
	next := parent.cowClone()
	d := &EpochDelta{}
	b := newBuilder(next, d)
	var err error
	if forced {
		err = b.compileRuleOrdered(r, order)
	} else {
		err = b.compileRule(r)
	}
	if err != nil {
		return nil, fmt.Errorf("production %s: %w", r.Name, err)
	}
	b.finishDelta()
	for _, c := range d.NewChains {
		c.compileFast()
	}
	for _, j := range d.NewJoins {
		j.compileFast()
	}
	next.Delta = d
	return next, nil
}

// RemoveRule excises one production and returns a new epoch. Refcounts
// decide what dies: an alpha chain or join node survives as long as any
// other live rule's path includes it, so excising one production never
// disturbs nodes shared with others. The parent epoch is not modified.
func RemoveRule(parent *Network, name string) (*Network, error) {
	cr := parent.RuleByName(name)
	if cr == nil {
		return nil, fmt.Errorf("no production named %s", name)
	}
	next := parent.cowClone()
	d := &EpochDelta{RemovedRules: []*CompiledRule{cr}}

	// Decrement the refcounts along the rule's recorded node path,
	// collecting nodes that drop to zero (path order keeps the delta
	// deterministic). A path can visit a chain twice — two condition
	// elements with the same pattern — and then decrements twice, exactly
	// matching the two increments compileRule made.
	deadJoin := make(map[int]bool)
	for _, id := range cr.JoinIDs {
		next.joinRefs[id]--
		if next.joinRefs[id] == 0 && !deadJoin[id] {
			deadJoin[id] = true
			d.DeadJoins = append(d.DeadJoins, next.joinsByID[id])
		}
	}
	deadChain := make(map[int]bool)
	for _, id := range cr.ChainIDs {
		next.chainRefs[id]--
		if next.chainRefs[id] == 0 && !deadChain[id] {
			deadChain[id] = true
			d.DeadChains = append(d.DeadChains, next.chainsByID[id])
		}
	}

	// Surgery on surviving nodes of the rule's path: drop fan-out edges
	// that point at dead joins or at the excised rule's terminal, and the
	// rule's name from shared joins. Every such edge is reachable from
	// the path — a dead join's left parent and right chain are both on
	// it. Rows are COW'd by the filter helpers (the originals may still
	// be read through the parent epoch).
	seen := make(map[int]bool)
	for _, id := range cr.ChainIDs {
		if deadChain[id] || seen[id] {
			continue
		}
		seen[id] = true
		next.chainDests[id] = filterDests(next.chainDests[id], deadJoin, cr.Terminal)
	}
	for _, id := range cr.JoinIDs {
		if deadJoin[id] {
			continue
		}
		next.joinSuccs[id] = filterSuccs(next.joinSuccs[id], deadJoin)
		next.joinTerms[id] = filterTerms(next.joinTerms[id], cr.Terminal)
		next.joinRules[id] = filterName(next.joinRules[id], name)
	}

	// Remove the dead nodes from the live indexes; their ID-table rows go
	// nil and the IDs are never reused.
	for _, c := range d.DeadChains {
		next.chainsByID[c.ID] = nil
		next.chainDests[c.ID] = nil
		delete(next.chainByKey, c.key)
		row := filterChains(next.ChainsByClass[c.Class], map[int]bool{c.ID: true})
		if len(row) == 0 {
			delete(next.ChainsByClass, c.Class)
		} else {
			next.ChainsByClass[c.Class] = row
		}
	}
	for _, j := range d.DeadJoins {
		next.joinsByID[j.ID] = nil
		next.joinSuccs[j.ID] = nil
		next.joinTerms[j.ID] = nil
		next.joinRules[j.ID] = nil
		delete(next.joinByKey, j.key)
	}
	if len(d.DeadChains) > 0 {
		next.Chains = filterChains(next.Chains, deadChain)
	}
	if len(d.DeadJoins) > 0 {
		live := next.Joins[:0:0]
		for _, j := range next.Joins {
			if !deadJoin[j.ID] {
				live = append(live, j)
			}
		}
		next.Joins = live
	}
	next.Terminals = filterTerms(next.Terminals, cr.Terminal)
	live := next.Rules[:0:0]
	for _, r := range next.Rules {
		if r != cr {
			live = append(live, r)
		}
	}
	next.Rules = live
	next.Delta = d
	return next, nil
}

// filterDests returns dests minus edges to dead joins or the given
// terminal, freshly allocated when anything was removed.
func filterDests(dests []AlphaDest, deadJoin map[int]bool, term *Terminal) []AlphaDest {
	changed := false
	for _, e := range dests {
		if (e.Join != nil && deadJoin[e.Join.ID]) || (e.Terminal != nil && e.Terminal == term) {
			changed = true
			break
		}
	}
	if !changed {
		return dests
	}
	out := make([]AlphaDest, 0, len(dests)-1)
	for _, e := range dests {
		if (e.Join != nil && deadJoin[e.Join.ID]) || (e.Terminal != nil && e.Terminal == term) {
			continue
		}
		out = append(out, e)
	}
	return out
}

func filterSuccs(succs []*JoinNode, deadJoin map[int]bool) []*JoinNode {
	changed := false
	for _, s := range succs {
		if deadJoin[s.ID] {
			changed = true
			break
		}
	}
	if !changed {
		return succs
	}
	out := make([]*JoinNode, 0, len(succs)-1)
	for _, s := range succs {
		if !deadJoin[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

func filterTerms(terms []*Terminal, t *Terminal) []*Terminal {
	changed := false
	for _, e := range terms {
		if e == t {
			changed = true
			break
		}
	}
	if !changed {
		return terms
	}
	out := make([]*Terminal, 0, len(terms)-1)
	for _, e := range terms {
		if e != t {
			out = append(out, e)
		}
	}
	return out
}

func filterName(names []string, name string) []string {
	changed := false
	for _, s := range names {
		if s == name {
			changed = true
			break
		}
	}
	if !changed {
		return names
	}
	out := make([]string, 0, len(names)-1)
	for _, s := range names {
		if s != name {
			out = append(out, s)
		}
	}
	return out
}

func filterChains(chains []*AlphaChain, dead map[int]bool) []*AlphaChain {
	out := make([]*AlphaChain, 0, len(chains))
	for _, c := range chains {
		if !dead[c.ID] {
			out = append(out, c)
		}
	}
	return out
}
