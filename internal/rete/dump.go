package rete

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable rendering of the network in the style of
// the paper's Figure 2-2: the constant-test chains at the top, the
// coalesced memory/two-input nodes below, terminals at the bottom, with
// node sharing visible through repeated references.
func (n *Network) Dump(w io.Writer) {
	fmt.Fprintf(w, "Rete network: %d alpha chains, %d two-input nodes, %d terminals, %d rules\n\n",
		len(n.Chains), len(n.Joins), len(n.Terminals), len(n.Rules))
	fmt.Fprintln(w, "constant-test chains:")
	for _, c := range n.Chains {
		var tests []string
		for i := range c.Tests {
			tests = append(tests, n.constTestString(&c.Tests[i]))
		}
		var dests []string
		for _, d := range n.DestsOf(c) {
			switch {
			case d.Terminal != nil:
				dests = append(dests, fmt.Sprintf("terminal %s", d.Terminal.Rule.Rule.Name))
			default:
				dests = append(dests, fmt.Sprintf("join %d (%s)", d.Join.ID, d.Side))
			}
		}
		fmt.Fprintf(w, "  alpha %d: class=%s refs=%d %s -> %s\n",
			c.ID, n.Prog.Symbols.Name(c.Class), n.chainRefs[c.ID], strings.Join(tests, " "), strings.Join(dests, ", "))
	}
	fmt.Fprintln(w, "\ntwo-input nodes (memory nodes coalesced):")
	for _, j := range n.Joins {
		kind := "and"
		if j.Negated {
			kind = "not"
		}
		var tests []string
		for _, t := range j.EqTests {
			tests = append(tests, fmt.Sprintf("left[%d].f%d = right.f%d", t.LeftPos, t.LeftField, t.RightField))
		}
		for _, t := range j.OtherTests {
			tests = append(tests, fmt.Sprintf("left[%d].f%d %s right.f%d", t.LeftPos, t.LeftField, t.Pred, t.RightField))
		}
		var out []string
		for _, s := range n.SuccsOf(j) {
			out = append(out, fmt.Sprintf("join %d", s.ID))
		}
		for _, term := range n.TermsOf(j) {
			out = append(out, fmt.Sprintf("terminal %s", term.Rule.Rule.Name))
		}
		fmt.Fprintf(w, "  join %d [%s] refs=%d tokens=%d plan=%d sel=%.3f tests={%s} -> %s\n",
			j.ID, kind, n.joinRefs[j.ID], j.LeftLen, j.PlanPos, j.PlanSel, strings.Join(tests, ", "), strings.Join(out, ", "))
	}
	fmt.Fprintln(w, "\nterminals:")
	for _, t := range n.Terminals {
		if t.Rule.Order != nil {
			fmt.Fprintf(w, "  %s (specificity %d) order=%v\n", t.Rule.Rule.Name, t.Rule.Specificity, t.Rule.Order)
			continue
		}
		fmt.Fprintf(w, "  %s (specificity %d)\n", t.Rule.Rule.Name, t.Rule.Specificity)
	}
}

func (n *Network) constTestString(t *ConstTest) string {
	if t.Disj != nil {
		var vals []string
		for _, d := range t.Disj {
			vals = append(vals, d.String(n.Prog.Symbols))
		}
		return fmt.Sprintf("f%d<<%s>>", t.Field, strings.Join(vals, " "))
	}
	if t.OtherField >= 0 {
		return fmt.Sprintf("f%d%sf%d", t.Field, t.Pred, t.OtherField)
	}
	return fmt.Sprintf("f%d%s%s", t.Field, t.Pred, t.Const.String(n.Prog.Symbols))
}

// Stats summarizes network size for tooling.
type NetStats struct {
	Chains, Joins, NegatedJoins, Terminals, Rules int
	ConstTests, EqTests, OtherTests               int
	// Epoch is the network version; SharedChains/SharedJoins count nodes
	// referenced by more than one live rule (the structural sharing the
	// REPL reports after each dynamic change).
	Epoch                     int
	SharedChains, SharedJoins int
}

// Summarize computes network-size statistics.
func (n *Network) Summarize() NetStats {
	s := NetStats{
		Chains:    len(n.Chains),
		Joins:     len(n.Joins),
		Terminals: len(n.Terminals),
		Rules:     len(n.Rules),
		Epoch:     n.Epoch,
	}
	for _, c := range n.Chains {
		s.ConstTests += len(c.Tests)
		if n.chainRefs[c.ID] > 1 {
			s.SharedChains++
		}
	}
	for _, j := range n.Joins {
		if j.Negated {
			s.NegatedJoins++
		}
		s.EqTests += len(j.EqTests)
		s.OtherTests += len(j.OtherTests)
		if n.joinRefs[j.ID] > 1 {
			s.SharedJoins++
		}
	}
	return s
}
