package engine

import (
	"errors"
	"fmt"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/stats"
	"repro/internal/wm"
)

// ErrDynamicUnsupported reports a matcher backend that cannot adopt new
// network epochs (currently only the interpreted Lisp baseline).
var ErrDynamicUnsupported = errors.New("engine: matcher backend does not support runtime build/excise")

// EpochSwapper is the optional matcher interface for dynamic rule
// changes. SwapEpoch adopts a network epoch derived from the matcher's
// current one: it tears down the memories of excised nodes and replays
// the live working memory through newly added topology. It must only be
// called while the matcher is drained. The returned count is the number
// of memory entries removed by an excise.
type EpochSwapper interface {
	SwapEpoch(next *rete.Network, live []*wm.WME) (removed int, err error)
}

// SupportsDynamicRules reports whether the engine's matcher can adopt
// network epochs (AddRules/Excise will work).
func (e *Engine) SupportsDynamicRules() bool {
	_, ok := e.Matcher.(EpochSwapper)
	return ok
}

// Epoch returns the version of the network the engine is matching on.
func (e *Engine) Epoch() int { return e.Net.Epoch }

// EpochStats returns the accumulated dynamic-change counters.
func (e *Engine) EpochStats() stats.Epoch { return e.epochStats }

// AddRules parses a runtime batch of (p ...) and (excise name) forms
// and applies the changes in source order, one network epoch per
// change. Redefining an existing production excises the old definition
// first (OPS5 semantics). The returned slices name the productions
// added and excised; on error the changes already applied stay applied
// and are still reported.
func (e *Engine) AddRules(src string) (added, excised []string, err error) {
	sw, ok := e.Matcher.(EpochSwapper)
	if !ok {
		return nil, nil, ErrDynamicUnsupported
	}
	changes, err := e.Prog.ParseProductions(src)
	if err != nil {
		return nil, nil, err
	}
	for _, ch := range changes {
		if ch.Add == nil {
			if err := e.excise(sw, ch.Excise); err != nil {
				return added, excised, err
			}
			excised = append(excised, ch.Excise)
			continue
		}
		if e.Net.RuleByName(ch.Add.Name) != nil {
			if err := e.excise(sw, ch.Add.Name); err != nil {
				return added, excised, err
			}
			excised = append(excised, ch.Add.Name)
		}
		if err := e.addRule(sw, ch.Add); err != nil {
			return added, excised, err
		}
		added = append(added, ch.Add.Name)
	}
	return added, excised, e.Matcher.CheckInvariants()
}

// Excise removes one production from the engine's network epoch,
// dropping its memory entries and conflict-set instantiations. Shared
// nodes referenced by other productions are untouched.
func (e *Engine) Excise(name string) error {
	sw, ok := e.Matcher.(EpochSwapper)
	if !ok {
		return ErrDynamicUnsupported
	}
	if err := e.excise(sw, name); err != nil {
		return err
	}
	return e.Matcher.CheckInvariants()
}

// addRule compiles one parsed rule into a new network epoch, compiles
// its RHS, and has the matcher adopt the epoch with a replay of the
// live working memory. The engine's own state (Net, compiled) is only
// updated after the swap succeeds.
func (e *Engine) addRule(sw EpochSwapper, r *ops5.Rule) error {
	e.drain()
	next, err := rete.AddRule(e.Net, r)
	if err != nil {
		return err
	}
	cr := next.Delta.AddedRules[0]
	c, err := rhs.Compile(e.Prog, cr)
	if err != nil {
		return fmt.Errorf("production %s: %w", r.Name, err)
	}
	live := e.WM.Snapshot()
	if _, err := sw.SwapEpoch(next, live); err != nil {
		return err
	}
	for len(e.compiled) < next.NumRuleIDs() {
		e.compiled = append(e.compiled, nil)
	}
	e.compiled[cr.Index] = c
	e.Net = next
	e.epochStats.Swaps++
	e.epochStats.RulesAdded++
	e.epochStats.ReplayedWMEs += int64(len(live))
	if e.journal != nil {
		// One canonical form per applied change: a batch that fails midway
		// leaves the log describing exactly the changes that took effect.
		e.journal.RecordProgram(e.Prog.FormatRule(r))
	}
	return nil
}

// excise builds the removal epoch, swaps the matcher onto it, and
// drops the rule's conflict-set instantiations.
func (e *Engine) excise(sw EpochSwapper, name string) error {
	cr := e.Net.RuleByName(name)
	if cr == nil {
		return fmt.Errorf("excise: no production named %s", name)
	}
	e.drain()
	next, err := rete.RemoveRule(e.Net, name)
	if err != nil {
		return err
	}
	removed, err := sw.SwapEpoch(next, nil)
	if err != nil {
		return err
	}
	e.compiled[cr.Index] = nil
	e.Net = next
	insts := e.CS.ExciseRule(cr)
	e.epochStats.Swaps++
	e.epochStats.RulesExcised++
	e.epochStats.RemovedEntries += int64(removed)
	e.epochStats.RemovedInsts += int64(insts)
	if e.journal != nil {
		e.journal.RecordProgram(fmt.Sprintf("(excise %s)", name))
	}
	return nil
}
