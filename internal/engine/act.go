// The transactional act phase: speculative multi-fire recognize-act
// cycles over a staged working-memory delta layer.
//
// With Options.FireBatch > 1, each super-cycle pops up to FireBatch
// dominant instantiations from the sharded conflict set in one batched
// SelectN, plans the longest prefix whose firing is provably equivalent
// to running them one serial cycle at a time, stages each member's RHS
// into a private delta buffer in conflict-resolution order, and commits
// the whole group under a single match phase: removals reach the
// matcher the moment each member commits, so its match processes chew
// on them while later members are still staging, and one drain barrier
// closes the group where the serial loop would have paid one per firing
// — the paper's control-process pipelining (match overlapping RHS
// evaluation) taken one step further, in the spirit of concurrent
// goal-based CHR execution: firings proceed together when their read
// and write sets are disjoint.
//
// The equivalence argument rests on dominance being a fixed total
// order: an instantiation's recency, specificity and rule index never
// change, so the relative order of two live instantiations is
// state-independent and transitive. SelectN therefore returns exactly
// the sequence serial cycles would select, provided no firing in the
// prefix (a) destroys a later member's matched elements — excluded by
// the tag-level read/write check, (b) creates elements whose fresh time
// tags would outrank everything — excluded by restricting groups to
// GroupSafe (pure-removal) right-hand sides, or (c) instantiates a rule
// mid-group by emptying a negated condition element. Case (c) survives
// to the post-drain verification: such an instantiation carries old
// time tags, stays live (the class-level flicker guard keeps later
// members from destroying it first), and is caught by one dominance
// check against the last committed member. On verification failure the
// whole group rolls back — removed elements are restored under their
// original pointers and tags, fired members un-fire — and one serial
// cycle runs for guaranteed progress.
//
// External effects are transactional: journal records, firing-log
// entries, WM-listener callbacks and (write ...) output are buffered
// per group and flushed only after verification, in commit order — so
// the wmlog delta log of a multi-fire run is byte-identical to the
// serial run's and crash recovery replays it exactly.
package engine

import (
	"fmt"
	"io"
	"time"

	"repro/internal/conflict"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/stats"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// Staged-effect op kinds, in the order the RHS produced them.
const (
	actOpRemove = iota
	actOpHalt
	actOpWrite
)

// stagedOp is one buffered RHS effect.
type stagedOp struct {
	kind int
	w    *wm.WME // actOpRemove
	text string  // actOpWrite
}

// actDelta is one speculation's private effect buffer, filled by the
// staged RHS execution and consumed at commit.
type actDelta struct {
	ops     []stagedOp
	instr   int
	err     error
	invalid bool // RHS produced an effect the staged env cannot buffer
}

// deltaWriter turns (write ...) output into staged ops so it interleaves
// with the member's removals in RHS order when flushed.
type deltaWriter struct{ d *actDelta }

func (dw deltaWriter) Write(p []byte) (int, error) {
	dw.d.ops = append(dw.d.ops, stagedOp{kind: actOpWrite, text: string(p)})
	return len(p), nil
}

// stagedEnv builds the buffering counterpart of env(): effects append to
// the delta instead of touching working memory, the journal or the
// matcher. Makes, modifies and accepts mark the delta invalid — the
// planner never admits such rules, so this is a fence, not a path. The
// env closes over the engine's scratch delta and is built once, so the
// per-member staging cost is the rhs.Exec walk alone.
func (e *Engine) stagedEnv(d *actDelta) *rhs.Env {
	if d == &e.actDelta && e.actEnv != nil && e.actEnv.Prog == e.Prog &&
		(e.actEnv.Out != nil) == (e.Out != nil) {
		// The Out presence check keeps the cache coherent when a host swaps
		// e.Out between runs (the server captures output per batch).
		return e.actEnv
	}
	env := &rhs.Env{
		Prog: e.Prog,
		Accept: func() wm.Value {
			d.invalid = true
			return wm.Nil
		},
		AcceptLine: func() []wm.Value {
			d.invalid = true
			return nil
		},
		Make:   func(fields []wm.Value) { d.invalid = true },
		Modify: func(old *wm.WME, fields []wm.Value) { d.invalid = true },
		Remove: func(w *wm.WME) { d.ops = append(d.ops, stagedOp{kind: actOpRemove, w: w}) },
		Halt:   func() { d.ops = append(d.ops, stagedOp{kind: actOpHalt}) },
	}
	if e.Out != nil {
		env.Out = deltaWriter{d}
	}
	if d == &e.actDelta {
		e.actEnv = env
	}
	return env
}

// Buffered external-event kinds, flushed after verification.
const (
	actEvFire = iota
	actEvRemove
	actEvHalt
	actEvOut
)

// actEvent is one buffered external effect of a committed firing.
type actEvent struct {
	kind  int
	rule  string
	tags  []int
	w     *wm.WME
	cycle int
	text  string
}

// groupBuf holds a group's deferred external effects: everything except
// working memory and the matcher, which must see changes immediately for
// the drain and the dominance verification to mean anything.
type groupBuf struct {
	events []actEvent
	instr  int64
}

func (b *groupBuf) fire(inst *conflict.Instantiation, cycle int) {
	b.events = append(b.events, actEvent{
		kind: actEvFire, rule: inst.Rule.Rule.Name, tags: tags(inst.Wmes), cycle: cycle,
	})
}

func (b *groupBuf) remove(w *wm.WME) {
	b.events = append(b.events, actEvent{kind: actEvRemove, w: w})
}

func (b *groupBuf) halt() { b.events = append(b.events, actEvent{kind: actEvHalt}) }

func (b *groupBuf) write(text string) {
	b.events = append(b.events, actEvent{kind: actEvOut, text: text})
}

// flush replays the buffered effects against the real sinks in commit
// order, producing the byte-identical journal, firing log, listener
// sequence and output a serial run would have.
func (b *groupBuf) flush(e *Engine, opt Options, res *Result) {
	for i := range b.events {
		ev := &b.events[i]
		switch ev.kind {
		case actEvFire:
			if e.journal != nil {
				e.journal.RecordFire(ev.rule, ev.tags)
			}
			if opt.RecordFiring {
				res.Firings = append(res.Firings, Firing{Cycle: ev.cycle, Rule: ev.rule, TimeTags: ev.tags})
			}
			if opt.TraceFires && e.Out != nil {
				fmt.Fprintf(e.Out, "%d. %s %v\n", ev.cycle, ev.rule, ev.tags)
			}
		case actEvRemove:
			e.traceChange("<=WM", ev.w)
			if e.journal != nil {
				e.journal.RecordRemove(ev.w)
			}
			if e.WMListener != nil {
				e.WMListener(false, ev.w)
			}
		case actEvHalt:
			if e.journal != nil {
				e.journal.RecordHalt()
			}
		case actEvOut:
			if e.Out != nil {
				io.WriteString(e.Out, ev.text)
			}
		}
	}
}

// actPlan caches the per-network static tables the group planner
// consults. Rebuilt whenever the engine adopts a new network epoch.
type actPlan struct {
	net *rete.Network
	// negByClass[c]: rules (by Index) with a negated CE of class c — the
	// rules a removal of a class-c element can newly instantiate.
	negByClass map[symbols.ID][]int
	// posByClass[c]: rules (by Index) with a positive CE of class c — the
	// rules a removal of a class-c element can de-instantiate.
	posByClass map[symbols.ID]map[int]bool
	// removeClasses[ruleIndex]: the classes the rule's RHS removes (the
	// removed WME positions resolved to their condition elements).
	removeClasses [][]symbols.ID
}

func (e *Engine) actPlanFor() *actPlan {
	if e.plan != nil && e.plan.net == e.Net {
		return e.plan
	}
	p := &actPlan{
		net:           e.Net,
		negByClass:    make(map[symbols.ID][]int),
		posByClass:    make(map[symbols.ID]map[int]bool),
		removeClasses: make([][]symbols.ID, e.Net.NumRuleIDs()),
	}
	for _, cr := range e.Net.Rules {
		for _, ce := range cr.Rule.CEs {
			if ce.Negated {
				p.negByClass[ce.Class] = append(p.negByClass[ce.Class], cr.Index)
			} else {
				set := p.posByClass[ce.Class]
				if set == nil {
					set = make(map[int]bool)
					p.posByClass[ce.Class] = set
				}
				set[cr.Index] = true
			}
		}
		c := e.compiled[cr.Index]
		if c == nil {
			continue
		}
		var classes []symbols.ID
		for _, pos := range c.RemovePos {
			for ci, wp := range cr.CEPos {
				if wp != pos {
					continue
				}
				cls := cr.Rule.CEs[ci].Class
				dup := false
				for _, have := range classes {
					if have == cls {
						dup = true
						break
					}
				}
				if !dup {
					classes = append(classes, cls)
				}
				break
			}
		}
		p.removeClasses[cr.Index] = classes
	}
	e.plan = p
	return p
}

// runBatched is the FireBatch > 1 recognize-act loop: same gates and
// termination conditions as the serial loop in Run, but each iteration
// fires a whole group when the planner can prove equivalence.
func (e *Engine) runBatched(opt Options) (*Result, error) {
	res := &Result{}
	e.traceWMEs = opt.TraceWMEs
	start := time.Now()
	plan := e.actPlanFor()
	if opt.MatchBudget > 0 {
		e.snapshotBudget()
	}
	for !e.halted {
		if opt.MaxCycles > 0 && res.Cycles >= opt.MaxCycles {
			break
		}
		if opt.Hook != nil {
			if err := opt.Hook(res.Cycles); err != nil {
				e.finish(res, start)
				return res, err
			}
		}
		want := opt.FireBatch
		if opt.MaxCycles > 0 && opt.MaxCycles-res.Cycles < want {
			want = opt.MaxCycles - res.Cycles
		}
		// Peek before popping: when the dominant instantiation's rule can
		// never head a group, run the exact serial cycle instead of paying
		// SelectN's pop-n/reinsert-(n-1) churn — in a program whose hot
		// phase is make/modify-heavy, that churn would dirty shard caches
		// every cycle for nothing.
		head := e.CS.Select()
		if head == nil {
			break
		}
		if !e.ioReady(head) {
			// Same suspension as the serial loop: the peek left the head in
			// place, so the run resumes at this exact firing. Group members
			// are always GroupSafe and so never read input — only the head
			// needs the check.
			res.AwaitingInput = true
			break
		}
		var err error
		if c := e.compiled[head.Rule.Index]; want <= 1 || c == nil || !c.GroupSafe {
			e.CS.MarkFired(head)
			err = e.fireMarked(head, opt, res)
		} else {
			group := e.planGroup(plan, e.CS.SelectN(want))
			if len(group) == 0 {
				break // unreachable: head was live when peeked
			}
			if len(group) == 1 {
				err = e.fireMarked(group[0], opt, res)
			} else {
				err = e.fireGroup(group, opt, res)
			}
		}
		if err != nil {
			return res, err
		}
		if opt.CheckEvery {
			if err := e.Matcher.CheckInvariants(); err != nil {
				return res, fmt.Errorf("cycle %d: %w", res.Cycles, err)
			}
		}
		if opt.MatchBudget > 0 {
			// A mid-group quarantine excises the offending rule's pending
			// instantiations out of the conflict set after planGroup has
			// already reinserted this super-cycle's unfired candidates; the
			// shard best-caches must survive both (conflict.Reinsert keeps
			// them coherent, which the quarantine regression tests pin).
			if err := e.enforceBudget(opt.MatchBudget, res.Cycles); err != nil {
				return res, err
			}
			plan = e.actPlanFor() // the epoch may have changed
		}
	}
	if err := e.Matcher.CheckInvariants(); err != nil {
		return res, err
	}
	e.finish(res, start)
	return res, nil
}

// fireMarked runs one serial recognize-act cycle for an instantiation
// already popped and marked fired — the body of the serial loop, shared
// by the singleton-group and rollback-fallback paths.
func (e *Engine) fireMarked(inst *conflict.Instantiation, opt Options, res *Result) error {
	e.CS.CommitFired(inst)
	if e.journal != nil {
		e.journal.RecordFire(inst.Rule.Rule.Name, tags(inst.Wmes))
	}
	res.Cycles++
	if opt.RecordFiring || opt.TraceFires {
		f := Firing{Cycle: res.Cycles, Rule: inst.Rule.Rule.Name, TimeTags: tags(inst.Wmes)}
		if opt.RecordFiring {
			res.Firings = append(res.Firings, f)
		}
		if opt.TraceFires && e.Out != nil {
			fmt.Fprintf(e.Out, "%d. %s %v\n", f.Cycle, f.Rule, f.TimeTags)
		}
	}
	n, err := rhs.Exec(e.compiled[inst.Rule.Index], inst.Wmes, e.env())
	if err != nil {
		return err
	}
	e.rhsCount.Add(int64(n))
	e.actStats.SerialFires++
	e.drain()
	return nil
}

// planGroup trims SelectN's candidates to the longest prefix that can
// commit as one transaction and returns the unused tail to the live set.
func (e *Engine) planGroup(plan *actPlan, cands []*conflict.Instantiation) []*conflict.Instantiation {
	if len(cands) == 0 {
		return nil
	}
	n := 1
	c0 := e.compiled[cands[0].Rule.Index]
	if len(cands) > 1 && c0 != nil && c0.GroupSafe && !c0.HasHalt {
		// Both working sets stay tiny (a handful of tags and rule indexes
		// per group), so engine-scratch slices with linear scans beat maps
		// and keep the planner allocation-free.
		removedTags := e.actTags[:0]
		negTouched := e.actNeg[:0]
		admit := func(inst *conflict.Instantiation, c *rhs.Compiled) {
			for _, p := range c.RemovePos {
				removedTags = append(removedTags, inst.Wmes[p].TimeTag)
			}
			for _, cls := range plan.removeClasses[inst.Rule.Index] {
			rules:
				for _, r := range plan.negByClass[cls] {
					for _, have := range negTouched {
						if have == r {
							continue rules
						}
					}
					negTouched = append(negTouched, r)
				}
			}
		}
		admit(cands[0], c0)
	scan:
		for n < len(cands) {
			m := cands[n]
			c := e.compiled[m.Rule.Index]
			if c == nil || !c.GroupSafe {
				break
			}
			// Read/write conflict: an earlier member removes an element this
			// instantiation matched, so serially it would never have fired.
			for _, w := range m.Wmes {
				for _, t := range removedTags {
					if w.TimeTag == t {
						break scan
					}
				}
			}
			// Flicker guard: this member removes a class read positively by
			// a rule an earlier member may have instantiated by emptying a
			// negated CE. Admitting it could destroy that mid-group
			// instantiation before the post-drain check can see it.
			for _, cls := range plan.removeClasses[m.Rule.Index] {
				pos := plan.posByClass[cls]
				for _, r := range negTouched {
					if pos[r] {
						break scan
					}
				}
			}
			admit(m, c)
			n++
			if c.HasHalt {
				break // no later member would have fired serially
			}
		}
		e.actTags, e.actNeg = removedTags, negTouched // retain capacity
	}
	if n < len(cands) {
		e.actStats.Conflicts += int64(len(cands) - n)
		for i := len(cands) - 1; i >= n; i-- {
			e.CS.Reinsert(cands[i])
		}
	}
	return cands[:n]
}

// fireGroup stages, commits, drains and verifies one multi-fire group
// (len >= 2). Working memory and the matcher see removals immediately —
// the matcher starts chewing while later members are still staging —
// but every external effect stays buffered until verification passes.
// Staging runs inline on the control goroutine: a GroupSafe right-hand
// side only appends removal/halt/write ops, so the pipelining win comes
// from the matcher overlapping the remaining members, not from fanning
// the (trivial) staging work out to goroutines whose spawn-and-join
// cost would dwarf it. The delta, event buffer and removal list are
// engine-owned scratch, so a committed group allocates nothing beyond
// what it flushes.
func (e *Engine) fireGroup(group []*conflict.Instantiation, opt Options, res *Result) error {
	e.actStats.SpeculativeFires += int64(len(group))
	buf := &e.actBuf
	buf.events = buf.events[:0]
	buf.instr = 0
	d := &e.actDelta
	removed := e.actRemoved[:0]

	// Buffer only events some sink will consume at flush; a benchmark run
	// with no journal, listener or tracing then commits groups without a
	// single event append (tags() is the one allocation buf.fire makes).
	wantFires := e.journal != nil || opt.RecordFiring || (opt.TraceFires && e.Out != nil)
	wantRemoves := e.journal != nil || e.WMListener != nil || e.traceWMEs

	var (
		haltWas   = e.halted
		cyc       = res.Cycles
		firstSub  time.Time
		committed int
	)
	for i, m := range group {
		if i > 0 {
			// Replicate the serial loop's per-cycle gates between firings. A
			// budget stop here just truncates the group; the outer loop's own
			// hook call reports it exactly as the serial loop would.
			if e.halted {
				break
			}
			if opt.Hook != nil && opt.Hook(cyc) != nil {
				break
			}
		}
		d.ops = d.ops[:0]
		d.instr, d.err, d.invalid = 0, nil, false
		d.instr, d.err = rhs.Exec(e.compiled[m.Rule.Index], m.Wmes, e.stagedEnv(d))
		if d.err != nil || d.invalid {
			break // refire serially so any error surfaces on the serial path
		}
		cyc++
		if wantFires {
			buf.fire(m, cyc)
		}
		for _, op := range d.ops {
			switch op.kind {
			case actOpRemove:
				if e.WM.Remove(op.w) {
					removed = append(removed, op.w)
					if wantRemoves {
						buf.remove(op.w)
					}
					if firstSub.IsZero() {
						firstSub = time.Now()
					}
					t0 := time.Now()
					e.Matcher.Submit(false, op.w)
					e.matchTime += time.Since(t0)
				}
			case actOpHalt:
				e.halted = true
				buf.halt()
			case actOpWrite:
				buf.write(op.text)
			}
		}
		buf.instr += int64(d.instr)
		committed = i + 1
	}
	e.actRemoved = removed // retain capacity; contents are dead after return
	if committed == 0 {
		// The dominant member itself failed to stage (RHS error or an
		// unstageable effect). Nothing touched working memory; fire it on
		// the serial path so any error surfaces exactly as FireBatch=1.
		for i := len(group) - 1; i >= 1; i-- {
			e.CS.Reinsert(group[i])
		}
		return e.fireMarked(group[0], opt, res)
	}
	// Unfired members return to the live set before the drain: none of
	// their matched elements were removed (the planner guarantees it), so
	// no terminal minus can race the reinsertion.
	for i := len(group) - 1; i >= committed; i-- {
		e.CS.Reinsert(group[i])
	}

	drainStart := time.Now()
	if !firstSub.IsZero() {
		e.actStats.OverlapNs += drainStart.Sub(firstSub).Nanoseconds()
	}
	e.drain()

	// Post-drain verification: the group was a valid serial prefix unless
	// some now-live instantiation dominates its last member — only a
	// mid-group removal emptying a negated CE can have created one.
	// Anything dominating an earlier member also dominates the last
	// (members arrive in dominance order and dominance is transitive), so
	// one comparison covers the whole group. Conservative: a dominator
	// created by the final member alone would have been no divergence,
	// but it cannot be told apart cheaply, so it also trips a rollback.
	last := group[committed-1]
	if sel := e.CS.Select(); sel != nil && e.CS.Dominates(sel, last) {
		return e.rollbackGroup(group[:committed], removed, haltWas, opt, res)
	}

	for _, m := range group[:committed] {
		e.CS.CommitFired(m)
	}
	buf.flush(e, opt, res)
	e.rhsCount.Add(buf.instr)
	res.Cycles = cyc
	e.actStats.GroupCommits++
	e.actStats.GroupedFires += int64(committed)
	return nil
}

// rollbackGroup restores the exact pre-group state after a failed
// verification, then runs one serial cycle for guaranteed progress.
func (e *Engine) rollbackGroup(committed []*conflict.Instantiation, removed []*wm.WME, haltWas bool, opt Options, res *Result) error {
	e.actStats.Rollbacks++
	e.actStats.RolledBackFires += int64(len(committed))
	e.halted = haltWas
	// Un-fire. Members whose own removals retracted their fired entry
	// during the group drain are skipped (Reinsert reports false); the
	// replay below re-derives them live and unfired, which is exactly
	// their pre-group state.
	for i := len(committed) - 1; i >= 0; i-- {
		e.CS.Reinsert(committed[i])
	}
	// Replay the removals in reverse under the original element pointers
	// and tags. The journal and listener never saw them (external effects
	// were buffered), so the undo bypasses submit().
	for i := len(removed) - 1; i >= 0; i-- {
		w := removed[i]
		e.WM.Restore(w)
		t0 := time.Now()
		e.Matcher.Submit(true, w)
		e.matchTime += time.Since(t0)
	}
	e.drain()
	// One serial cycle so every rollback still makes progress; the outer
	// loop then re-plans below the new dominator. The budget gate runs
	// first, as it would before any serial cycle.
	if opt.Hook != nil && opt.Hook(res.Cycles) != nil {
		return nil // the outer loop re-checks and reports the stop
	}
	inst := e.CS.Select()
	if inst == nil {
		return nil
	}
	e.CS.MarkFired(inst)
	return e.fireMarked(inst, opt, res)
}

// ActStats returns the accumulated act-phase counters (multi-fire
// grouping, rollbacks, pipeline overlap). Snapshot between runs only.
func (e *Engine) ActStats() stats.Act { return e.actStats }
