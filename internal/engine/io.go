package engine

import (
	"bufio"
	"strconv"
	"strings"

	"repro/internal/symbols"
	"repro/internal/wm"
)

// IO supplies interactive input to the (accept) and (acceptline) RHS
// forms. The engine asks Ready before firing an instantiation whose RHS
// reads input (the counts are static — see rhs.Compiled); a false answer
// suspends the run cleanly with Result.AwaitingInput instead of blocking
// mid-RHS, which is what lets the server expose interactive programs as
// a request/response API.
type IO interface {
	// Ready reports whether a firing performing the given number of
	// (accept) and (acceptline) reads can run now without blocking.
	Ready(accepts, lines int) bool
	// Accept returns the next input value, or the symbol end-of-file at
	// end of input.
	Accept() wm.Value
	// AcceptLine returns one whole line of input values, for splicing
	// into a vector attribute.
	AcceptLine() []wm.Value
}

// QueueIO is a buffered FIFO IO: callers Supply values ahead of the run
// and the RHS consumes them front to back. It owns its buffer — Supply
// copies — so engine restore and rollback paths can never observe a
// half-consumed caller slice. With EOFWhenEmpty an empty queue yields
// the end-of-file symbol (classic OPS5 batch behavior, and the facade's
// AcceptValues semantics); without it an empty queue reports not-ready,
// which is the server's suspend-and-await behavior.
type QueueIO struct {
	tab          *symbols.Table
	eofWhenEmpty bool
	pending      []wm.Value
	// onTake observes every consumption (the count of values popped);
	// the engine hooks it to journal takes for deterministic replay.
	onTake func(n int)
}

// NewQueueIO builds an empty queue over the program's symbol table.
func NewQueueIO(tab *symbols.Table, eofWhenEmpty bool) *QueueIO {
	return &QueueIO{tab: tab, eofWhenEmpty: eofWhenEmpty}
}

// Supply appends values to the queue.
func (q *QueueIO) Supply(vals ...wm.Value) { q.pending = append(q.pending, vals...) }

// Pending returns a copy of the unconsumed values, for snapshots.
func (q *QueueIO) Pending() []wm.Value {
	out := make([]wm.Value, len(q.pending))
	copy(out, q.pending)
	return out
}

// SetPending replaces the queue, for snapshot restore.
func (q *QueueIO) SetPending(vals []wm.Value) {
	q.pending = append(q.pending[:0], vals...)
}

// Len is the number of buffered values.
func (q *QueueIO) Len() int { return len(q.pending) }

// Take discards up to n values from the front, for journal replay of a
// recorded consumption.
func (q *QueueIO) Take(n int) {
	if n > len(q.pending) {
		n = len(q.pending)
	}
	q.pending = q.pending[n:]
}

// Ready requires one buffered value per accept plus at least one per
// acceptline (a line is the whole remaining queue, so it needs content).
// An EOF-when-empty queue is always ready: exhausted input reads as
// end-of-file rather than suspending.
func (q *QueueIO) Ready(accepts, lines int) bool {
	if q.eofWhenEmpty {
		return true
	}
	return len(q.pending) >= accepts+lines
}

// Accept pops the front value.
func (q *QueueIO) Accept() wm.Value {
	if len(q.pending) == 0 {
		return wm.Sym(q.tab.Intern("end-of-file"))
	}
	v := q.pending[0]
	q.pending = q.pending[1:]
	if q.onTake != nil {
		q.onTake(1)
	}
	return v
}

// AcceptLine pops the entire remaining queue as one line.
func (q *QueueIO) AcceptLine() []wm.Value {
	if len(q.pending) == 0 {
		return []wm.Value{wm.Sym(q.tab.Intern("end-of-file"))}
	}
	out := make([]wm.Value, len(q.pending))
	copy(out, q.pending)
	n := len(q.pending)
	q.pending = q.pending[:0]
	if q.onTake != nil {
		q.onTake(n)
	}
	return out
}

// ScannerIO reads input lines on demand from a bufio.Scanner — the
// REPL's stdin-backed IO. It is always ready: a blocking read at the
// terminal is exactly the interactive OPS5 behavior.
type ScannerIO struct {
	tab *symbols.Table
	sc  *bufio.Scanner
	buf []wm.Value // unconsumed values from the current line
	eof bool
}

// NewScannerIO wraps an existing scanner (the REPL shares its own).
func NewScannerIO(tab *symbols.Table, sc *bufio.Scanner) *ScannerIO {
	return &ScannerIO{tab: tab, sc: sc}
}

// Ready is always true: Accept blocks on the terminal instead.
func (s *ScannerIO) Ready(accepts, lines int) bool { return true }

// fill reads lines until one holds at least one value, or input ends.
func (s *ScannerIO) fill() {
	for !s.eof && len(s.buf) == 0 {
		if !s.sc.Scan() {
			s.eof = true
			return
		}
		s.buf = ParseInputValues(s.tab, s.sc.Text())
	}
}

// Accept returns the next whitespace-separated value, reading more lines
// as needed; end of input yields the end-of-file symbol.
func (s *ScannerIO) Accept() wm.Value {
	s.fill()
	if len(s.buf) == 0 {
		return wm.Sym(s.tab.Intern("end-of-file"))
	}
	v := s.buf[0]
	s.buf = s.buf[1:]
	return v
}

// AcceptLine returns the rest of the current line, or the next non-empty
// line when the current one is spent.
func (s *ScannerIO) AcceptLine() []wm.Value {
	s.fill()
	if len(s.buf) == 0 {
		return []wm.Value{wm.Sym(s.tab.Intern("end-of-file"))}
	}
	out := s.buf
	s.buf = nil
	return out
}

// ParseInputValues lexes one line of interactive input into values the
// way OPS5's accept does: whitespace-separated tokens, numbers when they
// parse as numbers, symbols otherwise.
func ParseInputValues(tab *symbols.Table, line string) []wm.Value {
	var out []wm.Value
	for _, f := range strings.Fields(line) {
		if n, err := strconv.ParseInt(f, 10, 64); err == nil {
			out = append(out, wm.Int(n))
			continue
		}
		if x, err := strconv.ParseFloat(f, 64); err == nil {
			out = append(out, wm.Float(x))
			continue
		}
		out = append(out, wm.Sym(tab.Intern(f)))
	}
	return out
}
