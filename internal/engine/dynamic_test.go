package engine_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/lispemu"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

// dynBase is the standing program the dynamic tests grow and shrink.
// keep yields two instantiations over the initial working memory
// (red/3 and red/8 both fit the red box; blue/5 overflows the blue box).
const dynBase = `
(literalize item kind size)
(literalize box kind cap)
(literalize tally size)
(make item ^kind red ^size 3)
(make item ^kind blue ^size 5)
(make item ^kind red ^size 8)
(make box ^kind red ^cap 10)
(make box ^kind blue ^cap 4)
(p keep (item ^kind <k> ^size <s>) (box ^kind <k> ^cap > <s>) --> (write fits))
`

// dynNewRules exercises both replay paths: lonely builds a fresh
// negated join (right memory must settle before left deliveries), and
// pair extends keep's existing (item,box) join with a new successor,
// so its historical outputs are re-derived and replayed.
const dynNewRules = `
(p lonely (box ^kind <k> ^cap <c>) - (item ^kind <k> ^size > <c>) --> (write empty))
(p pair (item ^kind <k> ^size <s>) (box ^kind <k> ^cap > <s>) (item ^kind blue ^size <s2>) --> (write pair))
`

type dynBackend struct {
	name string
	new  func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func())
}

func dynBackends() []dynBackend {
	out := []dynBackend{
		{"vs1", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
			return seqmatch.New(net, seqmatch.VS1, 0, cs), func() {}
		}},
		{"vs2", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
			return seqmatch.New(net, seqmatch.VS2, 0, cs), func() {}
		}},
	}
	for _, scheme := range []parmatch.Scheme{parmatch.SchemeSimple, parmatch.SchemeMRSW} {
		for _, procs := range []int{1, 2, 4, 8} {
			scheme, procs := scheme, procs
			out = append(out, dynBackend{
				fmt.Sprintf("par-%s-%d", scheme, procs),
				func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
					m := parmatch.New(net, parmatch.Config{Procs: procs, Queues: 2, Scheme: scheme}, cs)
					return m, m.Close
				},
			})
		}
	}
	return out
}

// newDynEngine compiles src onto backend b and runs Init.
func newDynEngine(t *testing.T, src string, b dynBackend) (*engine.Engine, func()) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m, closer := b.new(net, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		closer()
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		closer()
		t.Fatalf("init: %v", err)
	}
	return e, closer
}

// csKeys renders the unfired conflict set as sorted rule+timetag keys,
// the equivalence currency of these tests: the same working memory
// matched by the same rule set must produce the same set regardless of
// whether the rules were compiled up front or built at runtime.
func csKeys(e *engine.Engine) []string {
	var out []string
	for _, inst := range e.CS.Snapshot() {
		if inst.Fired {
			continue
		}
		tags := make([]int, len(inst.Wmes))
		for i, w := range inst.Wmes {
			tags[i] = w.TimeTag
		}
		out = append(out, fmt.Sprintf("%s%v", inst.Rule.Rule.Name, tags))
	}
	sort.Strings(out)
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDynamicAddEquivalence: building rules into a live engine must
// leave the conflict set identical to compiling everything up front —
// per backend, including 1..8 parallel workers under both lock schemes.
func TestDynamicAddEquivalence(t *testing.T) {
	for _, b := range dynBackends() {
		t.Run(b.name, func(t *testing.T) {
			e, closeE := newDynEngine(t, dynBase, b)
			defer closeE()
			added, _, err := e.AddRules(dynNewRules)
			if err != nil {
				t.Fatalf("AddRules: %v", err)
			}
			if len(added) != 2 || e.Epoch() != 2 {
				t.Fatalf("added %v at epoch %d, want 2 rules at epoch 2", added, e.Epoch())
			}
			fresh, closeF := newDynEngine(t, dynBase+dynNewRules, b)
			defer closeF()
			got, want := csKeys(e), csKeys(fresh)
			if !sameKeys(got, want) {
				t.Errorf("dynamic CS %v != from-scratch CS %v", got, want)
			}
			if err := e.Matcher.CheckInvariants(); err != nil {
				t.Errorf("invariants after add: %v", err)
			}
		})
	}
}

// TestDynamicExciseEquivalence: excising must drop exactly the excised
// rule's state — the remaining conflict set matches a from-scratch
// compile without the rule, memories of dead nodes are empty, and
// shared nodes keep their tokens.
func TestDynamicExciseEquivalence(t *testing.T) {
	for _, b := range dynBackends() {
		t.Run(b.name, func(t *testing.T) {
			e, closeE := newDynEngine(t, dynBase+dynNewRules, b)
			defer closeE()
			if err := e.Excise("keep"); err != nil {
				t.Fatalf("excise: %v", err)
			}
			// The from-scratch reference uses the top-level (excise) form.
			fresh, closeF := newDynEngine(t, dynBase+dynNewRules+`(excise keep)`, b)
			defer closeF()
			got, want := csKeys(e), csKeys(fresh)
			if !sameKeys(got, want) {
				t.Errorf("post-excise CS %v != from-scratch CS %v", got, want)
			}
			if err := e.Matcher.CheckInvariants(); err != nil {
				t.Errorf("invariants after excise: %v", err)
			}
			// No leaked memory entries under excised nodes.
			if sm, ok := e.Matcher.(*seqmatch.Matcher); ok {
				sizes := sm.Table.SizeByNode(e.Net.NumJoinIDs())
				for _, dj := range e.Net.Delta.DeadJoins {
					if n := sizes[dj.ID][0] + sizes[dj.ID][1]; n != 0 {
						t.Errorf("dead join %d still holds %d tokens", dj.ID, n)
					}
				}
			}
			if st := e.EpochStats(); st.RulesExcised != 1 || st.RemovedInsts == 0 {
				t.Errorf("epoch stats %+v, want one excised rule with removed instantiations", st)
			}
		})
	}
}

// TestDynamicAddFiresOnReplayedWM: a production built mid-run fires on
// working memory asserted before it existed.
func TestDynamicAddFiresOnReplayedWM(t *testing.T) {
	for _, b := range dynBackends() {
		t.Run(b.name, func(t *testing.T) {
			e, closeE := newDynEngine(t, dynBase, b)
			defer closeE()
			if _, err := e.Run(engine.Options{}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.AddRules(`(p old-red (item ^kind red ^size <s>) --> (make tally ^size <s>))`); err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(engine.Options{RecordFiring: true, CheckEvery: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != 2 {
				t.Errorf("cycles = %d, want 2 (one firing per pre-existing red item)", res.Cycles)
			}
		})
	}
}

// TestDynamicRedefinition: re-building an existing production excises
// the old version first and the new body takes over.
func TestDynamicRedefinition(t *testing.T) {
	b := dynBackends()[1] // vs2
	e, closeE := newDynEngine(t, dynBase, b)
	defer closeE()
	before := len(csKeys(e))
	if before != 2 {
		t.Fatalf("keep instantiations = %d, want 2", before)
	}
	added, excised, err := e.AddRules(`(p keep (item ^kind blue ^size <s>) --> (write blue))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || len(excised) != 1 {
		t.Fatalf("added %v excised %v, want keep/keep", added, excised)
	}
	keys := csKeys(e)
	if len(keys) != 1 {
		t.Fatalf("CS after redefinition = %v, want the one blue item", keys)
	}
	if e.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2 (excise + add)", e.Epoch())
	}
}

// TestDynamicUnsupportedBackend: the interpreted Lisp baseline refuses
// dynamic changes with the sentinel error.
func TestDynamicUnsupportedBackend(t *testing.T) {
	prog, err := ops5.Parse(dynBase)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet()
	e, err := engine.New(prog, net, cs, lispemu.New(prog, net, cs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.SupportsDynamicRules() {
		t.Fatal("lispemu should not support dynamic rules")
	}
	if _, _, err := e.AddRules(`(p x (item ^kind red) --> (halt))`); !errors.Is(err, engine.ErrDynamicUnsupported) {
		t.Fatalf("err = %v, want ErrDynamicUnsupported", err)
	}
}

// TestDynamicFrozenProgram: runtime batches cannot mutate the class
// tables — unknown classes and attributes are rejected.
func TestDynamicFrozenProgram(t *testing.T) {
	e, closeE := newDynEngine(t, dynBase, dynBackends()[1])
	defer closeE()
	if !e.Prog.Frozen() {
		t.Fatal("program should be frozen after engine.New")
	}
	if _, _, err := e.AddRules(`(p x (mystery ^f 1) --> (halt))`); err == nil {
		t.Error("unknown class must be rejected on a frozen program")
	}
	if _, _, err := e.AddRules(`(p x (item ^mystery 1) --> (halt))`); err == nil {
		t.Error("unknown attribute must be rejected on a frozen program")
	}
	if _, _, err := e.AddRules(`(p x (item ^kind red) --> (make mystery ^f 1))`); err == nil {
		t.Error("make of an unknown class must be rejected on a frozen program")
	}
	if err := e.Excise("nope"); err == nil {
		t.Error("excising an unknown production must fail")
	}
}
