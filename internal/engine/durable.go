package engine

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/conflict"
	"repro/internal/rhs"
	"repro/internal/wm"
	"repro/internal/wmlog"
)

// Journal observes the engine's durable events in execution order: every
// working-memory change it forwards to the matcher, every production
// firing (the refraction event recovery must re-establish), halts, and
// runtime program changes. The server implements it over a wmlog.Writer;
// the engine leaves it nil during replay and restore so recovery never
// re-journals its own input.
type Journal interface {
	RecordMake(w *wm.WME)
	RecordRemove(w *wm.WME)
	RecordFire(rule string, tags []int)
	RecordHalt()
	RecordProgram(src string)
	// RecordAccept journals values supplied to the engine's input queue;
	// RecordAcceptTake journals each (accept)/(acceptline) consumption.
	// Together they make interactive sessions replay deterministically.
	RecordAccept(vals []wm.Value)
	RecordAcceptTake(n int)
}

// SetJournal installs (or clears) the engine's journal. Call only while
// the engine is settled — between requests, never mid-run.
func (e *Engine) SetJournal(j Journal) { e.journal = j }

// SupplyInput buffers values for (accept)/(acceptline) and journals the
// supply, so recovery replays interactive sessions deterministically.
// The engine's IO must be a QueueIO.
func (e *Engine) SupplyInput(vals []wm.Value) error {
	q, ok := e.IO.(*QueueIO)
	if !ok {
		return fmt.Errorf("engine: SupplyInput needs a QueueIO (have %T)", e.IO)
	}
	q.Supply(vals...)
	if e.journal != nil && len(vals) > 0 {
		e.journal.RecordAccept(vals)
	}
	return nil
}

// PendingInput reports the number of buffered input values when the IO
// is a QueueIO, else 0.
func (e *Engine) PendingInput() int {
	if q, ok := e.IO.(*QueueIO); ok {
		return q.Len()
	}
	return 0
}

// CaptureState serializes the engine's settled state as a snapshot:
// live WMEs with exact time tags (tag order), still-live fired
// instantiations (rule-then-tags order, so the encoding — and the
// snapshot hash — is deterministic), the tag counter and the halt flag.
// The caller fills ProgHash and LogOffset. The engine must be drained.
func (e *Engine) CaptureState() *wmlog.Snapshot {
	s := &wmlog.Snapshot{NextTag: e.WM.NextTag(), Halted: e.halted}
	for _, w := range e.WM.Snapshot() {
		s.Wmes = append(s.Wmes, wmlog.TaggedWME{
			Tag:    w.TimeTag,
			Fields: wmlog.EncodeFields(w.Fields, e.Prog.Symbols),
		})
	}
	e.CS.ForEachFired(func(inst *conflict.Instantiation) {
		s.Fired = append(s.Fired, wmlog.FireKey{Rule: inst.Rule.Rule.Name, Tags: tags(inst.Wmes)})
	})
	if q, ok := e.IO.(*QueueIO); ok && q.Len() > 0 {
		s.Pending = wmlog.EncodeFields(q.Pending(), e.Prog.Symbols)
	}
	sort.Slice(s.Fired, func(i, j int) bool {
		a, b := &s.Fired[i], &s.Fired[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		for k := 0; k < len(a.Tags) && k < len(b.Tags); k++ {
			if a.Tags[k] != b.Tags[k] {
				return a.Tags[k] < b.Tags[k]
			}
		}
		return len(a.Tags) < len(b.Tags)
	})
	return s
}

// RestoreState rebuilds a snapshot's state on a fresh engine: the WMEs
// are re-asserted under their original tags through the ordinary match
// machinery, then the fired instantiations re-derived by that match are
// marked to restore refraction. Every fired key must resolve — the
// snapshot captured live instantiations of this exact WM state, so a
// miss means the snapshot and program disagree. The journal must be nil
// (install it after restoring).
func (e *Engine) RestoreState(s *wmlog.Snapshot) error {
	for i := range s.Wmes {
		tw := &s.Wmes[i]
		w := e.WM.AddTagged(tw.Tag, wmlog.DecodeFields(tw.Fields, e.Prog.Symbols))
		e.submit(true, w)
	}
	e.drain()
	for i := range s.Fired {
		fk := &s.Fired[i]
		cr := e.Net.RuleByName(fk.Rule)
		if cr == nil {
			return fmt.Errorf("engine: snapshot fires unknown production %s", fk.Rule)
		}
		if !e.CS.MarkFiredByTags(cr, fk.Tags) {
			return fmt.Errorf("engine: snapshot fired instantiation %s %v not re-derived", fk.Rule, fk.Tags)
		}
	}
	if len(s.Pending) > 0 {
		q, ok := e.IO.(*QueueIO)
		if !ok {
			return fmt.Errorf("engine: snapshot has pending input but the engine's IO is %T, not a QueueIO", e.IO)
		}
		q.SetPending(wmlog.DecodeFields(s.Pending, e.Prog.Symbols))
	}
	e.WM.SetNextTag(s.NextTag)
	e.halted = s.Halted
	return e.Matcher.CheckInvariants()
}

// ReplayRecords applies a delta-log suffix in order. WM changes replay
// through the ordinary match machinery under their logged time tags;
// each fire record is applied at its interleaved position — preceding WM
// changes drained first — because the same (rule, tags) identity can be
// annihilated and re-derived across negated-condition changes, so
// marking fired at the wrong point corrupts refraction. Program records
// re-apply runtime builds and excises one canonical form at a time.
// Skip Init when replaying from an empty engine: the log journals every
// change from empty working memory, top-level makes included.
func (e *Engine) ReplayRecords(recs []*wmlog.Record) error {
	dirty := false
	settle := func() {
		if dirty {
			e.drain()
			dirty = false
		}
	}
	for _, r := range recs {
		switch r.Type {
		case wmlog.RecMake:
			w := e.WM.AddTagged(r.Tag, wmlog.DecodeFields(r.Fields, e.Prog.Symbols))
			e.submit(true, w)
			dirty = true
		case wmlog.RecRemove:
			if w := e.WM.Get(r.Tag); w != nil && e.WM.Remove(w) {
				e.submit(false, w)
				dirty = true
			} else {
				return fmt.Errorf("engine: replay removes dead time tag %d", r.Tag)
			}
		case wmlog.RecFire:
			settle()
			cr := e.Net.RuleByName(r.Rule)
			if cr == nil {
				return fmt.Errorf("engine: replay fires unknown production %s", r.Rule)
			}
			if !e.CS.MarkFiredByTags(cr, r.Tags) {
				return fmt.Errorf("engine: replayed firing %s %v not live", r.Rule, r.Tags)
			}
		case wmlog.RecHalt:
			e.halted = true
		case wmlog.RecAccept:
			q, ok := e.IO.(*QueueIO)
			if !ok {
				return fmt.Errorf("engine: replay supplies accept input but the engine's IO is %T, not a QueueIO", e.IO)
			}
			q.Supply(wmlog.DecodeFields(r.Fields, e.Prog.Symbols)...)
		case wmlog.RecAcceptTake:
			q, ok := e.IO.(*QueueIO)
			if !ok {
				return fmt.Errorf("engine: replay consumes accept input but the engine's IO is %T, not a QueueIO", e.IO)
			}
			q.Take(r.Tag)
		case wmlog.RecProgram:
			settle()
			if _, _, err := e.AddRules(r.Src); err != nil {
				return fmt.Errorf("engine: replaying program change: %w", err)
			}
		default:
			return fmt.Errorf("engine: replay hit unknown record type %d", r.Type)
		}
	}
	settle()
	return e.Matcher.CheckInvariants()
}

// CloneWith builds a forked engine over pre-cloned session state: the
// caller supplies the cloned working memory, conflict set, and matcher
// (or a fresh matcher it restored separately). Program, network epoch,
// and compiled right-hand sides are shared — all read-only at execution
// time. The compiled slice itself is copied so post-fork rule additions
// never write through a shared backing array.
func (e *Engine) CloneWith(wmem *wm.Memory, cs *conflict.Set, m Matcher, out io.Writer) *Engine {
	return &Engine{
		Prog:     e.Prog,
		Net:      e.Net,
		WM:       wmem,
		CS:       cs,
		Matcher:  m,
		Out:      out,
		compiled: append([]*rhs.Compiled(nil), e.compiled...),
		halted:   e.halted,
	}
}
