// The per-rule match budget and the live re-planner.
//
// A pathological rule — typically a cross product the join planner
// cannot fix because the condition elements share no variables — can
// examine combinatorially many opposite-memory candidates per cycle
// and stall the whole session. The budget quarantines such a rule
// instead of letting it take the process down: after each cycle's
// drain the engine reads the matcher's cumulative per-join
// examination counters, attributes the cycle's delta to the live
// rules that own each join (a join shared by several productions is
// charged to all of them — the work is real for each), and excises
// the worst offender over budget through the ordinary dynamic-rule
// path. The rest of the program keeps running; the quarantined rule
// is reported, not silently dropped.
//
// ReplanJoins is the second half of the cost-based planner: at compile
// time the planner only has static selectivity heuristics, but a live
// engine knows exactly how many working-memory elements each alpha
// pattern admits. Re-planning recompiles each rule whose cheapest
// join order changed under those measured cardinalities, using the
// excise-and-re-add epoch machinery. Like an OPS5 redefinition, the
// re-added rule's refraction state is fresh — it may re-fire on
// instantiations that already fired — so re-planning is an explicit
// operator call, never something the engine does behind the program's
// back.
package engine

import (
	"fmt"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/symbols"
)

// JoinExaminer is the optional matcher interface behind the match
// budget: a cumulative count, per join node ID, of opposite-memory
// candidates examined. Both hash-table backends implement it; the
// instruction-level baselines do not, and the budget is inert there.
type JoinExaminer interface {
	JoinExamined() []int64
}

// QuarantinedRule records one budget trip.
type QuarantinedRule struct {
	Rule     string // production name
	Cycle    int    // recognize-act cycle the trip was detected after
	Examined int64  // candidates the rule's joins examined that cycle
}

// Quarantined returns the rules excised by the match budget so far, in
// trip order.
func (e *Engine) Quarantined() []QuarantinedRule {
	return append([]QuarantinedRule(nil), e.quarantined...)
}

// snapshotBudget re-bases the per-cycle examination deltas. Called at
// the start of a run (so work done by Init or between runs is not
// charged to the first cycle) and after any epoch change (which zeroes
// dead joins' counters).
func (e *Engine) snapshotBudget() {
	if jm, ok := e.Matcher.(JoinExaminer); ok {
		e.budgetPrev = jm.JoinExamined()
	}
}

// enforceBudget charges the examination work since the last snapshot to
// the live rules and quarantines the worst offender over the budget.
// Runs right after a cycle's drain, so the counters are settled.
func (e *Engine) enforceBudget(budget int64, cycle int) error {
	jm, ok := e.Matcher.(JoinExaminer)
	if !ok || budget <= 0 {
		return nil
	}
	sw, swOK := e.Matcher.(EpochSwapper)
	if !swOK {
		return nil // nothing actionable: the backend cannot excise
	}
	cur := jm.JoinExamined()
	var worst *rete.CompiledRule
	var worstCost int64
	for _, cr := range e.Net.Rules {
		var cost int64
		for _, id := range cr.JoinIDs {
			var prev int64
			if id < len(e.budgetPrev) {
				prev = e.budgetPrev[id]
			}
			if id < len(cur) {
				cost += cur[id] - prev
			}
		}
		if cost > budget && cost > worstCost {
			worst, worstCost = cr, cost
		}
	}
	e.budgetPrev = cur
	if worst == nil {
		return nil
	}
	name := worst.Rule.Name
	if err := e.excise(sw, name); err != nil {
		return fmt.Errorf("match budget: quarantining %s: %w", name, err)
	}
	e.quarantined = append(e.quarantined, QuarantinedRule{Rule: name, Cycle: cycle, Examined: worstCost})
	e.epochStats.BudgetTrips++
	// The excise zeroed the dead joins' counters; re-base so the next
	// cycle's deltas stay non-negative.
	e.budgetPrev = jm.JoinExamined()
	return nil
}

// WMCard returns a cardinality estimator over the current working
// memory: the number of live elements of the class that pass the given
// alpha tests. This is the Card function ReplanJoins hands the planner;
// it is exported so callers (the REPL's plan command, tests) can probe
// what the re-planner sees.
func (e *Engine) WMCard() func(class symbols.ID, tests []rete.ConstTest) float64 {
	// Snapshot once and bucket by class: re-planning probes every CE of
	// every rule, and a per-probe WM scan would be quadratic.
	byClass := make(map[symbols.ID][]int)
	snap := e.WM.Snapshot()
	for i, w := range snap {
		byClass[w.Class()] = append(byClass[w.Class()], i)
	}
	return func(class symbols.ID, tests []rete.ConstTest) float64 {
		n := 0
	wmes:
		for _, i := range byClass[class] {
			for t := range tests {
				if !tests[t].Eval(snap[i]) {
					continue wmes
				}
			}
			n++
		}
		return float64(n)
	}
}

// ReplanJoins re-runs the join planner for every live rule using
// measured working-memory cardinalities and recompiles, via
// excise-and-re-add epochs, each rule whose planned order changed. It
// returns the names of the rules re-planned. The matcher must support
// epoch swaps. Re-added rules get fresh refraction state (OPS5
// redefinition semantics) — see the package comment.
func (e *Engine) ReplanJoins() (replanned []string, err error) {
	sw, ok := e.Matcher.(EpochSwapper)
	if !ok {
		return nil, ErrDynamicUnsupported
	}
	e.drain()
	pc := rete.PlanConfig{Reorder: true, Card: e.WMCard()}
	// Snapshot the rule list: the loop below mutates e.Net.
	type cand struct {
		r     *ops5.Rule
		order []int
	}
	var todo []cand
	for _, cr := range e.Net.Rules {
		order := rete.PlanOrder(cr.Rule, pc)
		if equalOrder(order, cr.Order) {
			continue
		}
		todo = append(todo, cand{r: cr.Rule, order: order})
	}
	for _, c := range todo {
		if err := e.excise(sw, c.r.Name); err != nil {
			return replanned, err
		}
		if err := e.addRuleOrdered(sw, c.r, c.order); err != nil {
			return replanned, err
		}
		replanned = append(replanned, c.r.Name)
	}
	if len(todo) > 0 {
		e.snapshotBudget()
	}
	return replanned, e.Matcher.CheckInvariants()
}

// addRuleOrdered is addRule with an explicit planned join order (nil =
// source order), used by the re-planner.
func (e *Engine) addRuleOrdered(sw EpochSwapper, r *ops5.Rule, order []int) error {
	e.drain()
	next, err := rete.AddRuleOrdered(e.Net, r, order)
	if err != nil {
		return err
	}
	cr := next.Delta.AddedRules[0]
	c, err := rhs.Compile(e.Prog, cr)
	if err != nil {
		return fmt.Errorf("production %s: %w", r.Name, err)
	}
	live := e.WM.Snapshot()
	if _, err := sw.SwapEpoch(next, live); err != nil {
		return err
	}
	for len(e.compiled) < next.NumRuleIDs() {
		e.compiled = append(e.compiled, nil)
	}
	e.compiled[cr.Index] = c
	e.Net = next
	e.epochStats.Swaps++
	e.epochStats.RulesAdded++
	e.epochStats.ReplayedWMEs += int64(len(live))
	if e.journal != nil {
		e.journal.RecordProgram(e.Prog.FormatRule(r))
	}
	return nil
}

func equalOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
