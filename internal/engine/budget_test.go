package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

// budgetEngine builds a seqmatch-backed engine over src.
func budgetEngine(t *testing.T, src string) *engine.Engine {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	return e
}

// crossSrc drives a countdown while a never-firing cross-product rule
// (no shared variables between its first three condition elements, and
// a ghost class that never exists) turns every tick modification into a
// quadratic null scan. The planner cannot reorder this away — no order
// helps a cross product — so it is exactly the shape the match budget
// exists for.
const crossSrc = `
(literalize tick num)
(literalize left val)
(literalize right val)
(literalize ghost id)
(p cross
  (tick ^num <n>)
  (left ^val <a>)
  (right ^val <b>)
  (ghost ^id 1)
-->
  (halt))
(p drive
  (tick ^num {<n> > 0})
-->
  (modify 1 ^num (compute <n> - 1)))
(p finish
  (tick ^num 0)
-->
  (halt))
(make tick ^num 20)
`

func crossProgram() string {
	var b strings.Builder
	b.WriteString(crossSrc)
	for i := 0; i < 15; i++ {
		writeMake(&b, "left", i)
		writeMake(&b, "right", i)
	}
	return b.String()
}

func writeMake(b *strings.Builder, class string, v int) {
	fmt.Fprintf(b, "(make %s ^val %d)\n", class, v)
}

// TestMatchBudgetQuarantine checks that a rule whose joins blow the
// per-cycle examination budget is excised mid-run and the rest of the
// program keeps going to completion.
func TestMatchBudgetQuarantine(t *testing.T) {
	e := budgetEngine(t, crossProgram())
	res, err := e.Run(engine.Options{MaxCycles: 100, RecordFiring: true, CheckEvery: true, MatchBudget: 100})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("run did not reach (halt); cycles=%d", res.Cycles)
	}
	q := e.Quarantined()
	if len(q) != 1 || q[0].Rule != "cross" {
		t.Fatalf("quarantined = %+v, want exactly [cross]", q)
	}
	if q[0].Examined <= 100 {
		t.Errorf("trip recorded %d examined, want > budget 100", q[0].Examined)
	}
	if e.EpochStats().BudgetTrips != 1 {
		t.Errorf("BudgetTrips = %d, want 1", e.EpochStats().BudgetTrips)
	}
	if e.Net.RuleByName("cross") != nil {
		t.Errorf("cross still present in the network after quarantine")
	}
	for _, f := range res.Firings {
		if f.Rule == "cross" {
			t.Fatalf("cross fired despite its ghost condition element")
		}
	}
}

// TestMatchBudgetLeavesInnocentRulesAlone runs the same program with a
// budget the cross product does not reach: nothing is quarantined and
// the firing sequence matches the unbudgeted run.
func TestMatchBudgetLeavesInnocentRulesAlone(t *testing.T) {
	want, err := budgetEngine(t, crossProgram()).Run(engine.Options{MaxCycles: 100, RecordFiring: true})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	e := budgetEngine(t, crossProgram())
	got, err := e.Run(engine.Options{MaxCycles: 100, RecordFiring: true, MatchBudget: 1 << 40})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(e.Quarantined()) != 0 {
		t.Fatalf("quarantined %+v under an unreachable budget", e.Quarantined())
	}
	if len(got.Firings) != len(want.Firings) {
		t.Fatalf("firing count %d, want %d", len(got.Firings), len(want.Firings))
	}
	for i := range want.Firings {
		if got.Firings[i].Rule != want.Firings[i].Rule {
			t.Fatalf("firing %d: got %s want %s", i, got.Firings[i].Rule, want.Firings[i].Rule)
		}
	}
}

// TestMatchBudgetQuarantineMidGroup is the conflict.Reinsert regression:
// with FireBatch > 1 the batched loop pops SelectN candidates, plans a
// group, Reinserts the unfired tail (restoring the shard best-caches),
// and only then does the budget excise the offending rule — whose live
// instantiations may include a cached shard best. The conflict set must
// stay coherent through that sequence: the run must keep selecting the
// remaining eat instantiations and drain working memory to completion.
func TestMatchBudgetQuarantineMidGroup(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
(literalize item val)
(literalize junkl val)
(literalize junkr val)
(p eat
  (item ^val <v>)
-->
  (remove 1))
(p cross
  (item ^val <x>)
  (junkl ^val <a>)
  (junkr ^val <b>)
-->
  (remove 2))
`)
	// 30 items and 20 junkr make one cross firing (a junkl removal)
	// examine ~30 + 30*20 candidates — over budget — while one eat
	// firing (an item removal) examines ~8 + 8*20, under it.
	for i := 0; i < 30; i++ {
		writeMake(&b, "item", i)
	}
	for i := 0; i < 8; i++ {
		writeMake(&b, "junkl", i)
	}
	for i := 0; i < 20; i++ {
		writeMake(&b, "junkr", i)
	}
	e := budgetEngine(t, b.String())
	res, err := e.Run(engine.Options{
		MaxCycles: 500, RecordFiring: true, CheckEvery: true,
		FireBatch: 8, MatchBudget: 200,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	q := e.Quarantined()
	if len(q) != 1 || q[0].Rule != "cross" {
		t.Fatalf("quarantined = %+v, want exactly [cross]", q)
	}
	// The scenario only bites if a group was actually cut, i.e. popped
	// candidates went back through conflict.Reinsert before the excise.
	if e.ActStats().Conflicts == 0 {
		t.Fatalf("no group was cut: the Reinsert-then-excise path was not exercised")
	}
	// After the trip no cross instantiation may fire, and every item must
	// still be eaten: the post-excise conflict set kept serving eat.
	trip := q[0].Cycle
	eats := 0
	for _, f := range res.Firings {
		if f.Rule == "eat" {
			eats++
		}
		if f.Rule == "cross" && f.Cycle > trip {
			t.Fatalf("cross fired at cycle %d, after its quarantine at cycle %d", f.Cycle, trip)
		}
	}
	if eats != 30 {
		t.Fatalf("eat fired %d times, want 30 (one per item)", eats)
	}
	// Items all eaten; junkr untouched; junkl reduced only by pre-trip
	// cross firings.
	if res.WMSize < 20 || res.WMSize > 27 {
		t.Fatalf("end WM size %d, want within [20,27]", res.WMSize)
	}
}

// TestReplanJoins checks the live re-planner: a rule compiled in source
// order is recompiled under measured working-memory cardinalities, and
// the most selective condition element leads the new order.
func TestReplanJoins(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
(literalize aa val)
(literalize bb val)
(literalize cc val)
(p r
  (aa ^val <v>)
  (bb ^val <v>)
  (cc ^val <v>)
-->
  (halt))
`)
	// Cardinalities 12 / 5 / 1, but no value shared across all three
	// classes, so the rule never fires.
	for i := 0; i < 12; i++ {
		writeMake(&b, "aa", i+100)
	}
	for i := 0; i < 5; i++ {
		writeMake(&b, "bb", i+200)
	}
	writeMake(&b, "cc", 300)
	e := budgetEngine(t, b.String())
	if cr := e.Net.RuleByName("r"); cr.Order != nil {
		t.Fatalf("static compile produced order %v, want source order", cr.Order)
	}
	replanned, err := e.ReplanJoins()
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	if len(replanned) != 1 || replanned[0] != "r" {
		t.Fatalf("replanned = %v, want [r]", replanned)
	}
	cr := e.Net.RuleByName("r")
	want := []int{2, 1, 0} // cc (1 element) first, then bb (5), then aa (12)
	if len(cr.Order) != len(want) {
		t.Fatalf("order = %v, want %v", cr.Order, want)
	}
	for i := range want {
		if cr.Order[i] != want[i] {
			t.Fatalf("order = %v, want %v", cr.Order, want)
		}
	}
	// A second replan under unchanged working memory is a no-op.
	replanned, err = e.ReplanJoins()
	if err != nil {
		t.Fatalf("second replan: %v", err)
	}
	if len(replanned) != 0 {
		t.Fatalf("second replan recompiled %v, want nothing", replanned)
	}
}
