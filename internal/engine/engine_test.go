package engine_test

import (
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

// run builds an engine over the given matcher variant and runs the
// program to completion.
func run(t *testing.T, src string, v seqmatch.Variant, maxCycles int) (*engine.Result, string) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, v, 0, cs)
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true, CheckEvery: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, out.String()
}

const counterSrc = `
(literalize count value)
(p inc
  (count ^value {<v> < 10})
-->
  (modify 1 ^value (compute <v> + 1)))
(p done
  (count ^value 10)
-->
  (write done (crlf))
  (halt))
(make count ^value 0)
`

func TestCounterRunsToTen(t *testing.T) {
	for _, v := range []seqmatch.Variant{seqmatch.VS1, seqmatch.VS2} {
		res, out := run(t, counterSrc, v, 100)
		if !res.Halted {
			t.Fatalf("%v: expected halt, got cycles=%d", v, res.Cycles)
		}
		if res.Cycles != 11 {
			t.Errorf("%v: expected 11 cycles (10 inc + done), got %d", v, res.Cycles)
		}
		if !strings.Contains(out, "done") {
			t.Errorf("%v: missing output, got %q", v, out)
		}
	}
}

const figure21Src = `
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (modify 2 ^selected yes))
(make goal ^type find-block ^color red)
(make block ^id b1 ^color red ^selected no)
(make block ^id b2 ^color blue ^selected no)
(make block ^id b3 ^color red ^selected no)
`

func TestFigure21SelectsRedBlocks(t *testing.T) {
	for _, v := range []seqmatch.Variant{seqmatch.VS1, seqmatch.VS2} {
		res, _ := run(t, figure21Src, v, 100)
		// Two red blocks get selected; then the conflict set is exhausted.
		if res.Cycles != 2 {
			t.Errorf("%v: expected 2 firings, got %d: %v", v, res.Cycles, res.Firings)
		}
		if res.Halted {
			t.Errorf("%v: should end by exhaustion, not halt", v)
		}
	}
}

const negationSrc = `
(literalize goal type)
(literalize block color)
(literalize result status)
(p check-no-red
  (goal ^type check)
  - (block ^color red)
-->
  (make result ^status no-red))
(p saw-result
  (result ^status no-red)
-->
  (write confirmed)
  (halt))
(make block ^color blue)
(make goal ^type check)
`

func TestNegationFiresWhenAbsent(t *testing.T) {
	for _, v := range []seqmatch.Variant{seqmatch.VS1, seqmatch.VS2} {
		res, out := run(t, negationSrc, v, 10)
		if !res.Halted || !strings.Contains(out, "confirmed") {
			t.Fatalf("%v: negation should allow firing; cycles=%d out=%q", v, res.Cycles, out)
		}
	}
}

const negationBlockedSrc = `
(literalize goal type)
(literalize block color)
(literalize result status)
(p check-no-red
  (goal ^type check)
  - (block ^color red)
-->
  (make result ^status no-red))
(make block ^color red)
(make goal ^type check)
`

func TestNegationBlocksWhenPresent(t *testing.T) {
	for _, v := range []seqmatch.Variant{seqmatch.VS1, seqmatch.VS2} {
		res, _ := run(t, negationBlockedSrc, v, 10)
		if res.Cycles != 0 {
			t.Fatalf("%v: expected no firings, got %d", v, res.Cycles)
		}
	}
}

// Negation with a retraction: removing the blocker re-enables the rule.
const negationRetractSrc = `
(literalize goal type)
(literalize block color)
(literalize result status)
(p clear-blocker
  (goal ^type clear)
  (block ^color red)
-->
  (remove 2))
(p check-no-red
  (goal ^type clear)
  - (block ^color red)
-->
  (make result ^status no-red)
  (halt))
(make block ^color red)
(make goal ^type clear)
`

func TestNegationReenabledByRetraction(t *testing.T) {
	for _, v := range []seqmatch.Variant{seqmatch.VS1, seqmatch.VS2} {
		res, _ := run(t, negationRetractSrc, v, 10)
		if !res.Halted {
			t.Fatalf("%v: expected halt after retraction, cycles=%d firings=%v", v, res.Cycles, res.Firings)
		}
		if res.Cycles != 2 {
			t.Errorf("%v: expected 2 cycles, got %d", v, res.Cycles)
		}
	}
}

// Cross-matcher equivalence: vs1 and vs2 must fire identically.
func TestVS1VS2Equivalence(t *testing.T) {
	srcs := map[string]string{
		"counter":  counterSrc,
		"figure21": figure21Src,
		"negation": negationSrc,
		"retract":  negationRetractSrc,
	}
	for name, src := range srcs {
		r1, _ := run(t, src, seqmatch.VS1, 200)
		r2, _ := run(t, src, seqmatch.VS2, 200)
		if len(r1.Firings) != len(r2.Firings) {
			t.Fatalf("%s: firing counts differ: vs1=%d vs2=%d", name, len(r1.Firings), len(r2.Firings))
		}
		for i := range r1.Firings {
			a, b := r1.Firings[i], r2.Firings[i]
			if a.Rule != b.Rule {
				t.Fatalf("%s: firing %d differs: vs1=%v vs2=%v", name, i, a, b)
			}
		}
	}
}
