package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/stats"
	"repro/internal/workload"
)

// actBackends enumerates the matcher backends the multi-fire act phase
// must agree across.
var actBackends = []struct {
	name string
	make func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func())
}{
	{"vs1", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
		return seqmatch.New(net, seqmatch.VS1, 0, cs), func() {}
	}},
	{"vs2", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
		return seqmatch.New(net, seqmatch.VS2, 0, cs), func() {}
	}},
	{"parallel", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
		m := parmatch.New(net, parmatch.Config{Procs: 4}, cs)
		return m, m.Close
	}},
}

// actRun captures everything a run must reproduce exactly regardless of
// FireBatch: the firing trace, the output text, the final working
// memory (values and time tags), and the summary flags.
type actRun struct {
	trace  []string
	out    string
	wm     []string
	cycles int
	halted bool
	rhs    int64
}

func runActBackend(t *testing.T, src, backend string, fireBatch, maxCycles int) (*actRun, stats.Act) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	var (
		m       engine.Matcher
		closeFn func()
	)
	for _, b := range actBackends {
		if b.name == backend {
			m, closeFn = b.make(net, cs)
		}
	}
	if m == nil {
		t.Fatalf("unknown backend %q", backend)
	}
	defer closeFn()
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true, FireBatch: fireBatch})
	if err != nil {
		t.Fatalf("run (batch %d): %v", fireBatch, err)
	}
	if !cs.Drained() {
		t.Fatalf("batch %d: conflict set left parked deletes", fireBatch)
	}
	r := &actRun{cycles: res.Cycles, halted: res.Halted, out: out.String(), rhs: res.RHSInstr}
	for _, f := range res.Firings {
		r.trace = append(r.trace, fmt.Sprintf("%d %s %v", f.Cycle, f.Rule, f.TimeTags))
	}
	r.wm = snapshotWM(e)
	return r, e.ActStats()
}

func snapshotWM(e *engine.Engine) []string {
	var out []string
	for _, w := range e.WM.Snapshot() {
		out = append(out, fmt.Sprintf("%d %s", w.TimeTag, w.String(e.Prog.Symbols, e.Prog.AttrName)))
	}
	return out
}

// diffActRuns fails the test if two runs diverge anywhere observable.
func diffActRuns(t *testing.T, label string, want, got *actRun) {
	t.Helper()
	if want.cycles != got.cycles || want.halted != got.halted {
		t.Errorf("%s: cycles/halted = %d/%v, want %d/%v", label, got.cycles, got.halted, want.cycles, want.halted)
	}
	if want.rhs != got.rhs {
		t.Errorf("%s: RHSInstr = %d, want %d", label, got.rhs, want.rhs)
	}
	if want.out != got.out {
		t.Errorf("%s: output diverged:\n got %q\nwant %q", label, got.out, want.out)
	}
	if len(want.trace) != len(got.trace) {
		t.Fatalf("%s: trace length %d, want %d\n got %v\nwant %v", label, len(got.trace), len(want.trace), got.trace, want.trace)
	}
	for i := range want.trace {
		if want.trace[i] != got.trace[i] {
			t.Fatalf("%s: trace[%d] = %q, want %q", label, i, got.trace[i], want.trace[i])
		}
	}
	if len(want.wm) != len(got.wm) {
		t.Fatalf("%s: WM size %d, want %d", label, len(got.wm), len(want.wm))
	}
	for i := range want.wm {
		if want.wm[i] != got.wm[i] {
			t.Errorf("%s: wm[%d] = %q, want %q", label, i, got.wm[i], want.wm[i])
		}
	}
}

// rollbackKernelSrc is the adversarial workload: sweep rules remove item
// elements while a strictly more recent watcher (trigger is the newest
// element) instantiates through a negated CE the moment the last item
// disappears — so the final sweep group always creates a dominating
// instantiation mid-group and must roll back.
func rollbackKernelSrc(items int) string {
	var b strings.Builder
	b.WriteString(`
(literalize ctx phase)
(literalize item n)
(literalize trigger on)
(literalize note n)
(p sweep
  (ctx ^phase go)
  (item ^n <n>)
-->
  (write sweeping <n> (crlf))
  (remove 2))
(p watch
  (trigger ^on yes)
  - (item)
-->
  (make note ^n 1))
(p finish
  (note ^n 1)
-->
  (write all-clear (crlf))
  (halt))
(make ctx ^phase go)
`)
	for i := 1; i <= items; i++ {
		fmt.Fprintf(&b, "(make item ^n %d)\n", i)
	}
	b.WriteString("(make trigger ^on yes)\n")
	return b.String()
}

// overlapKernelSrc makes instantiations share matched elements: every
// pair of tokens is matched jointly and both are removed, so most
// SelectN candidates conflict with the group head and are re-inserted.
const overlapKernelSrc = `
(literalize tok n)
(p eat-pair
  (tok ^n <a>)
  (tok ^n {<b> > <a>})
-->
  (remove 1)
  (remove 2))
(make tok ^n 1)
(make tok ^n 2)
(make tok ^n 3)
(make tok ^n 4)
(make tok ^n 5)
(make tok ^n 6)
(make tok ^n 7)
`

// TestFireBatchDifferential: FireBatch in {2,4,8} reproduces the
// FireBatch=1 run bit-for-bit — same firing trace, same time tags, same
// working memory, same output — on every backend, for a grouping-heavy
// real workload, a rollback-heavy adversarial kernel, an overlapping
// read-set kernel, and a make/modify workload that never groups.
func TestFireBatchDifferential(t *testing.T) {
	workloads := []struct {
		name      string
		src       string
		maxCycles int
	}{
		{"tourney", workload.Tourney(8), 4000},
		{"rollback-kernel", rollbackKernelSrc(12), 200},
		{"overlap-kernel", overlapKernelSrc, 100},
		{"counter", counterSrc, 100},
	}
	for _, w := range workloads {
		for _, b := range actBackends {
			ref, _ := runActBackend(t, w.src, b.name, 1, w.maxCycles)
			for _, batch := range []int{2, 4, 8} {
				got, _ := runActBackend(t, w.src, b.name, batch, w.maxCycles)
				diffActRuns(t, fmt.Sprintf("%s/%s/batch=%d", w.name, b.name, batch), ref, got)
			}
		}
	}
}

// TestFireBatchGroupsAndRollsBack asserts the machinery actually
// engages: Tourney's sweep phase must commit multi-fire groups, and the
// adversarial kernel must take rollbacks — otherwise the differential
// test above is vacuously passing on the serial path.
func TestFireBatchGroupsAndRollsBack(t *testing.T) {
	_, act := runActBackend(t, workload.Tourney(8), "vs2", 8, 4000)
	if act.GroupCommits == 0 || act.GroupedFires == 0 {
		t.Errorf("tourney: no group commits (act=%+v)", act)
	}
	if act.Rollbacks != 0 {
		t.Errorf("tourney: unexpected rollbacks (act=%+v)", act)
	}
	_, act = runActBackend(t, rollbackKernelSrc(12), "vs2", 8, 200)
	if act.Rollbacks == 0 || act.RolledBackFires == 0 {
		t.Errorf("rollback kernel: no rollbacks exercised (act=%+v)", act)
	}
	_, act = runActBackend(t, overlapKernelSrc, "vs2", 8, 100)
	if act.Conflicts == 0 {
		t.Errorf("overlap kernel: no plan conflicts recorded (act=%+v)", act)
	}
}

// TestFireBatchConcurrentRHS runs the grouping workloads with the
// parallel matcher under the race detector: staged RHS goroutines, the
// atomic instruction counter and ordered trace assembly must be clean.
func TestFireBatchConcurrentRHS(t *testing.T) {
	for _, src := range []string{workload.Tourney(8), rollbackKernelSrc(16)} {
		ref, _ := runActBackend(t, src, "parallel", 1, 4000)
		got, _ := runActBackend(t, src, "parallel", 8, 4000)
		diffActRuns(t, "parallel/batch=8", ref, got)
	}
}
