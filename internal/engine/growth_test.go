package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/hashmem"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/stats"
	"repro/internal/wm"
)

// growSrc joins two classes on an id, so n matching pairs yield n
// instantiations and 2n memory entries — enough to push a deliberately
// undersized table through several adaptive resizes.
const growSrc = `
(literalize acct id)
(literalize txn id)
(p pay (acct ^id <i>) (txn ^id <i>) --> (write hit))
`

type memStatser interface{ MemStats() stats.Memory }

// growBackends starts every adaptive backend at 2 lines so growth fires
// mid-run; the legacy-table reference and vs1 are the fixed-layout
// controls the others must agree with.
func growBackends() []dynBackend {
	out := []dynBackend{
		{"legacy-ref", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
			return seqmatch.NewWithTable(net, seqmatch.VS2, hashmem.NewLegacy(64), cs), func() {}
		}},
		{"vs1", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
			return seqmatch.New(net, seqmatch.VS1, 0, cs), func() {}
		}},
		{"vs2-small", func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
			return seqmatch.New(net, seqmatch.VS2, 2, cs), func() {}
		}},
	}
	for _, scheme := range []parmatch.Scheme{parmatch.SchemeSimple, parmatch.SchemeMRSW} {
		for _, procs := range []int{1, 2, 4, 8} {
			scheme, procs := scheme, procs
			out = append(out, dynBackend{
				fmt.Sprintf("par-%s-%d", scheme, procs),
				func(net *rete.Network, cs *conflict.Set) (engine.Matcher, func()) {
					m := parmatch.New(net, parmatch.Config{Procs: procs, Queues: 2, Lines: 2, Scheme: scheme}, cs)
					return m, m.Close
				},
			})
		}
	}
	return out
}

// TestAdaptiveGrowthEquivalence drives every backend through a workload
// large enough to resize the undersized adaptive tables several times —
// batched asserts, then a retraction sweep through the grown tables —
// and requires the surviving conflict set to match the fixed legacy
// reference exactly. The parallel variants run this under -race via the
// repo's race target.
func TestAdaptiveGrowthEquivalence(t *testing.T) {
	const n = 150
	var ref []string
	for _, b := range growBackends() {
		t.Run(b.name, func(t *testing.T) {
			prog, err := ops5.Parse(growSrc)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			net, err := rete.Compile(prog)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cs := conflict.NewSet()
			m, closer := b.new(net, cs)
			defer closer()
			e, err := engine.New(prog, net, cs, m, nil)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}

			fields := func(class string, id int64) []wm.Value {
				cid := prog.Symbols.Intern(class)
				fs := make([]wm.Value, prog.ClassOf(cid).NumFields())
				fs[0] = wm.Sym(cid)
				fs[1] = wm.Int(id)
				return fs
			}
			// Batches of 25 give the parallel backends many drained points,
			// so growth interleaves with live matching rather than happening
			// once at the end.
			var accts []*wm.WME
			for lo := 1; lo <= n; lo += 25 {
				var batch [][]wm.Value
				for i := lo; i < lo+25 && i <= n; i++ {
					batch = append(batch, fields("acct", int64(i)), fields("txn", int64(i)))
				}
				added, err := e.AssertBatch(batch)
				if err != nil {
					t.Fatalf("assert batch at %d: %v", lo, err)
				}
				for _, w := range added {
					if w.Class() == prog.Symbols.Intern("acct") {
						accts = append(accts, w)
					}
				}
			}
			// Retraction sweep: every third account, removed through the
			// (possibly several-times-resized) table.
			var tags []int
			for i := 0; i < len(accts); i += 3 {
				tags = append(tags, accts[i].TimeTag)
			}
			removed, err := e.RetractBatch(tags)
			if err != nil {
				t.Fatalf("retract batch: %v", err)
			}
			if len(removed) != len(tags) {
				t.Fatalf("retracted %d of %d", len(removed), len(tags))
			}
			if err := e.Matcher.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}

			keys := csKeys(e)
			if want := n - len(tags); len(keys) != want {
				t.Fatalf("conflict set has %d instantiations, want %d", len(keys), want)
			}
			if b.name == "legacy-ref" {
				ref = keys
			} else if !sameKeys(keys, ref) {
				t.Errorf("conflict set diverges from legacy reference: got %d keys, want %d", len(keys), len(ref))
			}

			ms, ok := e.Matcher.(memStatser)
			if !ok {
				t.Fatalf("backend %s exposes no MemStats", b.name)
			}
			mem := ms.MemStats()
			switch b.name {
			case "legacy-ref", "vs1":
				if mem.Resizes != 0 {
					t.Errorf("fixed layout resized %d times", mem.Resizes)
				}
			default:
				if mem.Resizes == 0 || mem.Lines <= 2 {
					t.Errorf("adaptive table never grew: %+v", mem)
				}
				if mem.Entries != int64(2*n-len(tags)) {
					t.Errorf("entries gauge = %d, want %d", mem.Entries, 2*n-len(tags))
				}
			}
		})
	}
}

// TestDynamicAddAcrossGrowth builds a rule at runtime on a table that
// has already resized several times and checks the replayed conflict set
// against an engine compiled with the rule up front: epoch replay must
// read the grown sub-indexes exactly like the originals.
func TestDynamicAddAcrossGrowth(t *testing.T) {
	const n = 120
	const orphanTxns = 5
	newRule := `(p audit (txn ^id <i>) - (acct ^id <i>) --> (write orphan))`

	populate := func(t *testing.T, b dynBackend, src string) (*engine.Engine, func()) {
		t.Helper()
		e, closer := newDynEngine(t, src, b)
		prog := e.Prog
		fields := func(class string, id int64) []wm.Value {
			cid := prog.Symbols.Intern(class)
			fs := make([]wm.Value, prog.ClassOf(cid).NumFields())
			fs[0] = wm.Sym(cid)
			fs[1] = wm.Int(id)
			return fs
		}
		var batch [][]wm.Value
		for i := 1; i <= n; i++ {
			batch = append(batch, fields("acct", int64(i)), fields("txn", int64(i)))
		}
		for i := n + 1; i <= n+orphanTxns; i++ {
			batch = append(batch, fields("txn", int64(i)))
		}
		if _, err := e.AssertBatch(batch); err != nil {
			closer()
			t.Fatalf("assert: %v", err)
		}
		return e, closer
	}

	for _, b := range growBackends() {
		if b.name == "legacy-ref" || b.name == "vs1" {
			continue // fixed layouts: nothing grows, covered by the dynamic suite
		}
		t.Run(b.name, func(t *testing.T) {
			e, closeE := populate(t, b, growSrc)
			defer closeE()
			if mem := e.Matcher.(memStatser).MemStats(); mem.Resizes == 0 {
				t.Fatalf("table never grew before the rule add: %+v", mem)
			}
			if _, _, err := e.AddRules(newRule); err != nil {
				t.Fatalf("AddRules: %v", err)
			}
			fresh, closeF := populate(t, b, growSrc+newRule)
			defer closeF()
			got, want := csKeys(e), csKeys(fresh)
			if !sameKeys(got, want) {
				t.Errorf("dynamic CS (%d keys) != from-scratch CS (%d keys)", len(got), len(want))
			}
			// The negated audit join must see exactly the orphan txns.
			if len(got) != n+orphanTxns {
				t.Errorf("conflict set has %d keys, want %d pay + %d audit", len(got), n, orphanTxns)
			}
			if err := e.Matcher.CheckInvariants(); err != nil {
				t.Errorf("invariants after add: %v", err)
			}
		})
	}
}
