package engine_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/wm"
)

// build wires a counter-program engine without running it.
func build(t *testing.T) *engine.Engine {
	t.Helper()
	prog, err := ops5.Parse(counterSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return e
}

// TestHookStopsRun checks that a RunHook budget error stops the cycle
// loop, surfaces via errors.Is(err, ErrLimit), and still returns a
// filled Result — the contract the server's per-request limits rely on.
func TestHookStopsRun(t *testing.T) {
	e := build(t)
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(engine.Options{Hook: engine.LimitHook(3, time.Time{})})
	if !errors.Is(err, engine.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if res.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", res.Cycles)
	}
	if res.WMSize != 1 {
		t.Errorf("WMSize = %d, want 1", res.WMSize)
	}
	// The engine is resumable after a budget stop: the rest of the run
	// completes normally.
	res2, err := e.Run(engine.Options{MaxCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Halted {
		t.Errorf("resumed run did not halt (cycles %d)", res2.Cycles)
	}
	if res.Cycles+res2.Cycles != 11 {
		t.Errorf("total cycles = %d, want 11", res.Cycles+res2.Cycles)
	}
}

// TestHookDeadline checks the LimitHook time budget path.
func TestHookDeadline(t *testing.T) {
	e := build(t)
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(engine.Options{Hook: engine.LimitHook(0, time.Now().Add(-time.Second))})
	if !errors.Is(err, engine.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if res.Cycles != 0 {
		t.Errorf("cycles = %d, want 0 (deadline already past)", res.Cycles)
	}
}

// TestWMListenerSeesDeltas checks the listener observes every assert
// and retract the run produces, in submission order.
func TestWMListenerSeesDeltas(t *testing.T) {
	e := build(t)
	var asserts, retracts int
	e.WMListener = func(sign bool, w *wm.WME) {
		if w == nil {
			t.Fatal("nil WME in listener")
		}
		if sign {
			asserts++
		} else {
			retracts++
		}
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(engine.Options{MaxCycles: 100}); err != nil {
		t.Fatal(err)
	}
	// Initial make + 10 modifies: 11 asserts, 10 retracts.
	if asserts != 11 || retracts != 10 {
		t.Errorf("asserts=%d retracts=%d, want 11/10", asserts, retracts)
	}
}
