// Package engine runs the OPS5 recognize-act cycle over any matcher
// backend: match, conflict resolution, RHS evaluation (§2.1). It plays
// the role of the paper's control process: it evaluates right-hand
// sides, feeds each working-memory change to the matcher as soon as it
// is computed (so a pipelining matcher can overlap match with RHS
// evaluation), performs conflict resolution, and handles halting.
package engine

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/stats"
	"repro/internal/wm"
)

// ErrLimit is the sentinel a RunHook wraps (or returns) to stop a run
// because a per-request budget — cycles, wall-clock, anything the caller
// meters — is exhausted. Callers distinguish a budget stop from a real
// failure with errors.Is(err, ErrLimit); the Result returned alongside
// it is still valid and describes the work done before the stop.
var ErrLimit = errors.New("engine: run limit reached")

// RunHook is called at the top of every recognize-act cycle with the
// number of cycles completed so far. A non-nil return stops the run and
// is returned from Run; wrap ErrLimit for budget stops.
type RunHook func(cycles int) error

// LimitHook builds a RunHook enforcing a cycle budget and a deadline.
// maxCycles <= 0 disables the cycle check; a zero deadline disables the
// time check. Both produce errors wrapping ErrLimit.
func LimitHook(maxCycles int, deadline time.Time) RunHook {
	return func(cycles int) error {
		if maxCycles > 0 && cycles >= maxCycles {
			return fmt.Errorf("%w: %d cycles", ErrLimit, cycles)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("%w: deadline exceeded after %d cycles", ErrLimit, cycles)
		}
		return nil
	}
}

// Matcher is the interface every match backend implements.
type Matcher interface {
	// Submit delivers one working-memory change. Sequential matchers
	// process it synchronously; parallel matchers enqueue it for their
	// match processes.
	Submit(sign bool, w *wm.WME)
	// Drain blocks until every submitted change has been fully matched
	// (TaskCount reaching zero, in the paper's terms).
	Drain()
	// CheckInvariants reports internal inconsistencies after a phase
	// (unmatched conjugate pairs and the like).
	CheckInvariants() error
}

// Firing records one production firing, for traces and for the
// cross-matcher equivalence tests.
type Firing struct {
	Cycle    int
	Rule     string
	TimeTags []int
}

// Result summarizes a run.
type Result struct {
	Cycles    int
	Firings   []Firing
	Halted    bool // true: (halt) executed; false: conflict set exhausted
	WMSize    int
	Elapsed   time.Duration // total wall-clock for the run
	MatchTime time.Duration // wall-clock spent inside Submit and Drain
	RHSInstr  int64         // threaded-code instructions interpreted
	// AwaitingInput: the dominant instantiation reads (accept) input the
	// engine's IO cannot supply yet. The run suspended before firing it;
	// supplying input and calling Run again resumes exactly there.
	AwaitingInput bool
}

// Options configure a run.
type Options struct {
	MaxCycles    int  // 0 = unlimited
	RecordFiring bool // keep the firing log (tests); stats are always kept
	TraceFires   bool // print each firing to Out (OPS5 watch 1)
	TraceWMEs    bool // also print each WM change to Out (OPS5 watch 2)
	CheckEvery   bool // run matcher invariant checks after every cycle
	// FireBatch > 1 enables the speculative multi-fire act phase (act.go):
	// up to FireBatch dominant instantiations fire per super-cycle when
	// their read and write sets are disjoint, with one match phase for
	// the whole group. Results — WM, time tags, firing traces, journal —
	// are identical to FireBatch = 1; only the schedule changes. 0 and 1
	// run the serial loop unchanged.
	FireBatch int
	// Hook, when non-nil, runs at the top of every cycle; a non-nil
	// return stops the run (see RunHook and ErrLimit). The inference
	// server uses it to enforce per-request cycle and time budgets on a
	// long-lived session engine.
	Hook RunHook
	// MatchBudget > 0 caps the opposite-memory candidates any one rule's
	// joins may examine in a single cycle. A rule over the cap is
	// quarantined — excised via the dynamic-rule path, reported through
	// Quarantined() — instead of stalling the session (budget.go).
	// Requires a matcher implementing JoinExaminer and EpochSwapper;
	// inert otherwise.
	MatchBudget int64
}

// Engine executes one program against one matcher.
type Engine struct {
	Prog    *ops5.Program
	Net     *rete.Network
	WM      *wm.Memory
	CS      *conflict.Set
	Matcher Matcher
	Out     io.Writer
	// IO supplies (accept) and (acceptline) input. Nil behaves like an
	// exhausted input stream: always ready, every read yields the symbol
	// end-of-file. Set it before SetJournal so consumption is journaled.
	IO IO
	// WMListener, when non-nil, observes every working-memory change the
	// engine forwards to its matcher (true = assert, false = retract).
	// The server uses it to report per-request WM deltas.
	WMListener func(sign bool, w *wm.WME)

	// compiled is indexed by CompiledRule.Index — the monotonic rule ID,
	// never reused across epochs — so it is sparse after excises.
	compiled []*rhs.Compiled
	// journal, when non-nil, receives every durable event (see Journal in
	// durable.go). Nil during replay and restore.
	journal Journal
	halted  bool
	// rhsCount is atomic so staged RHS execution could fold counts from
	// worker goroutines; the commit loop folds whole-group totals too.
	rhsCount   atomic.Int64
	matchTime  time.Duration
	traceWMEs  bool
	epochStats stats.Epoch
	actStats   stats.Act
	// plan caches the act planner's static tables for the current network
	// epoch (see actPlanFor).
	plan *actPlan
	// Match-budget state (budget.go): the JoinExamined snapshot the next
	// cycle's deltas are measured against, and the trip log.
	budgetPrev  []int64
	quarantined []QuarantinedRule
	// Batched act-phase scratch, reused across groups so a committed
	// group allocates nothing beyond what it flushes (see fireGroup).
	actDelta   actDelta
	actBuf     groupBuf
	actRemoved []*wm.WME
	actEnv     *rhs.Env
	actTags    []int
	actNeg     []int
}

// traceChange prints a working-memory change when watch-2 tracing is on.
func (e *Engine) traceChange(sign string, w *wm.WME) {
	if !e.traceWMEs || e.Out == nil {
		return
	}
	fmt.Fprintf(e.Out, "%s %d: %s\n", sign, w.TimeTag, w.String(e.Prog.Symbols, e.Prog.AttrName))
}

// submit forwards a change to the matcher, accumulating match time.
func (e *Engine) submit(sign bool, w *wm.WME) {
	if e.journal != nil {
		if sign {
			e.journal.RecordMake(w)
		} else {
			e.journal.RecordRemove(w)
		}
	}
	if e.WMListener != nil {
		e.WMListener(sign, w)
	}
	t0 := time.Now()
	e.Matcher.Submit(sign, w)
	e.matchTime += time.Since(t0)
}

// drain waits out the match phase, accumulating match time.
func (e *Engine) drain() {
	t0 := time.Now()
	e.Matcher.Drain()
	e.matchTime += time.Since(t0)
}

// New wires an engine. The conflict set must be the same sink the
// matcher's terminals report into. The program's (strategy ...) form is
// resolved to a conflict.Strategy enum here, once, so the per-cycle
// Select never compares strategy strings.
func New(prog *ops5.Program, net *rete.Network, cs *conflict.Set, m Matcher, out io.Writer) (*Engine, error) {
	st, err := conflict.ParseStrategy(prog.Strategy)
	if err != nil {
		return nil, err
	}
	cs.UseStrategy(st)
	e := &Engine{
		Prog:    prog,
		Net:     net,
		WM:      wm.NewMemory(),
		CS:      cs,
		Matcher: m,
		Out:     out,
	}
	e.compiled = make([]*rhs.Compiled, net.NumRuleIDs())
	for _, cr := range net.Rules {
		c, err := rhs.Compile(prog, cr)
		if err != nil {
			return nil, err
		}
		e.compiled[cr.Index] = c
	}
	// From here on the class tables are read concurrently by matchers and
	// RHS evaluation; freeze them so runtime parses cannot mutate them.
	prog.Freeze()
	return e, nil
}

func (e *Engine) env() *rhs.Env {
	return &rhs.Env{
		Prog: e.Prog,
		Out:  e.Out,
		Accept:     e.acceptOne,
		AcceptLine: e.acceptLine,
		Make: func(fields []wm.Value) {
			w := e.WM.Add(fields)
			e.traceChange("=>WM", w)
			e.submit(true, w)
		},
		Remove: func(w *wm.WME) {
			if e.WM.Remove(w) {
				e.traceChange("<=WM", w)
				e.submit(false, w)
			}
		},
		Modify: func(old *wm.WME, fields []wm.Value) {
			if e.WM.Remove(old) {
				e.traceChange("<=WM", old)
				e.submit(false, old)
			}
			w := e.WM.Add(fields)
			e.traceChange("=>WM", w)
			e.submit(true, w)
		},
		Halt: func() {
			e.halted = true
			if e.journal != nil {
				e.journal.RecordHalt()
			}
		},
	}
}

// acceptOne services an (accept): one value from the IO, end-of-file
// when there is none. Values a QueueIO actually consumed are journaled
// as take records so crash recovery replays the same reads.
func (e *Engine) acceptOne() wm.Value {
	if e.IO == nil {
		return wm.Sym(e.Prog.Symbols.Intern("end-of-file"))
	}
	if q, ok := e.IO.(*QueueIO); ok && e.journal != nil {
		before := q.Len()
		v := q.Accept()
		if n := before - q.Len(); n > 0 {
			e.journal.RecordAcceptTake(n)
		}
		return v
	}
	return e.IO.Accept()
}

// acceptLine services an (acceptline), journaling QueueIO consumption
// like acceptOne.
func (e *Engine) acceptLine() []wm.Value {
	if e.IO == nil {
		return []wm.Value{wm.Sym(e.Prog.Symbols.Intern("end-of-file"))}
	}
	if q, ok := e.IO.(*QueueIO); ok && e.journal != nil {
		before := q.Len()
		line := q.AcceptLine()
		if n := before - q.Len(); n > 0 {
			e.journal.RecordAcceptTake(n)
		}
		return line
	}
	return e.IO.AcceptLine()
}

// ioReady reports whether the instantiation's RHS can run without
// blocking on input: its static accept counts are checked against the
// IO. RHSes that read no input are always ready.
func (e *Engine) ioReady(inst *conflict.Instantiation) bool {
	c := e.compiled[inst.Rule.Index]
	if c == nil || (c.Accepts == 0 && c.AcceptLines == 0) {
		return true
	}
	if e.IO == nil {
		return true
	}
	return e.IO.Ready(c.Accepts, c.AcceptLines)
}

// Init asserts the program's top-level makes and completes the first
// match phase.
func (e *Engine) Init() error {
	env := e.env()
	for _, act := range e.Prog.InitialMakes {
		n := e.Prog.ClassOf(act.Class).NumFields()
		for _, s := range act.Sets {
			// Vector attributes can extend a make past the literalized width.
			if s.Field+1 > n {
				n = s.Field + 1
			}
		}
		fields := make([]wm.Value, n)
		fields[0] = wm.Sym(act.Class)
		for _, s := range act.Sets {
			v, err := constExpr(s.Expr)
			if err != nil {
				return fmt.Errorf("top-level make: %w", err)
			}
			fields[s.Field] = v
		}
		env.Make(fields)
	}
	e.drain()
	return e.Matcher.CheckInvariants()
}

// constExpr evaluates a ground expression (constants and compute over
// constants), the only forms legal in top-level makes.
func constExpr(ex *ops5.Expr) (wm.Value, error) {
	switch ex.Kind {
	case ops5.ExprConst:
		return ex.Const, nil
	case ops5.ExprCompute:
		l, err := constExpr(ex.L)
		if err != nil {
			return wm.Nil, err
		}
		r, err := constExpr(ex.R)
		if err != nil {
			return wm.Nil, err
		}
		return rhs.ComputeOp(ex.Op, l, r)
	default:
		return wm.Nil, fmt.Errorf("non-constant expression in top-level make")
	}
}

// Run executes recognize-act cycles until halt, conflict-set
// exhaustion, or the cycle limit.
func (e *Engine) Run(opt Options) (*Result, error) {
	if opt.FireBatch > 1 {
		return e.runBatched(opt)
	}
	res := &Result{}
	e.traceWMEs = opt.TraceWMEs
	start := time.Now()
	if opt.MatchBudget > 0 {
		e.snapshotBudget()
	}
	for !e.halted {
		if opt.MaxCycles > 0 && res.Cycles >= opt.MaxCycles {
			break
		}
		if opt.Hook != nil {
			if err := opt.Hook(res.Cycles); err != nil {
				e.finish(res, start)
				return res, err
			}
		}
		inst := e.CS.Select()
		if inst == nil {
			break
		}
		if !e.ioReady(inst) {
			// Select is a non-popping peek, so suspending here leaves the
			// dominant instantiation in place: supplying input and calling
			// Run again fires it as if the run had never paused.
			res.AwaitingInput = true
			break
		}
		e.CS.MarkFired(inst)
		if e.journal != nil {
			// Journaled before the RHS runs so replay marks the firing at
			// exactly this conflict-set state, ahead of its own WM changes.
			e.journal.RecordFire(inst.Rule.Rule.Name, tags(inst.Wmes))
		}
		res.Cycles++
		if opt.RecordFiring || opt.TraceFires {
			f := Firing{Cycle: res.Cycles, Rule: inst.Rule.Rule.Name, TimeTags: tags(inst.Wmes)}
			if opt.RecordFiring {
				res.Firings = append(res.Firings, f)
			}
			if opt.TraceFires && e.Out != nil {
				fmt.Fprintf(e.Out, "%d. %s %v\n", f.Cycle, f.Rule, f.TimeTags)
			}
		}
		n, err := rhs.Exec(e.compiled[inst.Rule.Index], inst.Wmes, e.env())
		if err != nil {
			return res, err
		}
		e.rhsCount.Add(int64(n))
		e.drain()
		if opt.CheckEvery {
			if err := e.Matcher.CheckInvariants(); err != nil {
				return res, fmt.Errorf("cycle %d: %w", res.Cycles, err)
			}
		}
		if opt.MatchBudget > 0 {
			if err := e.enforceBudget(opt.MatchBudget, res.Cycles); err != nil {
				return res, err
			}
		}
	}
	if err := e.Matcher.CheckInvariants(); err != nil {
		return res, err
	}
	e.finish(res, start)
	return res, nil
}

// finish fills the summary fields of a Result.
func (e *Engine) finish(res *Result, start time.Time) {
	res.Halted = e.halted
	res.WMSize = e.WM.Len()
	res.Elapsed = time.Since(start)
	res.MatchTime = e.matchTime
	res.RHSInstr = e.rhsCount.Load()
}

// Assert adds a working-memory element from outside the recognize-act
// loop (the OPS5 top-level make) and completes the match phase.
func (e *Engine) Assert(fields []wm.Value) (*wm.WME, error) {
	w := e.WM.Add(fields)
	e.submit(true, w)
	e.drain()
	return w, e.Matcher.CheckInvariants()
}

// AssertBatch adds several working-memory elements, submitting every
// change to the matcher before a single drain — one match phase for the
// whole batch, so a pipelining matcher overlaps the entire batch. This
// is the server's request-batching primitive.
func (e *Engine) AssertBatch(batch [][]wm.Value) ([]*wm.WME, error) {
	out := make([]*wm.WME, 0, len(batch))
	for _, fields := range batch {
		w := e.WM.Add(fields)
		e.submit(true, w)
		out = append(out, w)
	}
	e.drain()
	return out, e.Matcher.CheckInvariants()
}

// RetractBatch removes the elements with the given time tags,
// submitting every change before a single drain. It returns the tags
// that named live elements; unknown or duplicate tags are skipped.
func (e *Engine) RetractBatch(tags []int) ([]int, error) {
	removed := make([]int, 0, len(tags))
	if len(tags) > 0 {
		byTag := make(map[int]*wm.WME)
		for _, w := range e.WM.Snapshot() {
			byTag[w.TimeTag] = w
		}
		for _, tag := range tags {
			if w := byTag[tag]; w != nil && e.WM.Remove(w) {
				e.submit(false, w)
				removed = append(removed, tag)
			}
		}
		e.drain()
	}
	return removed, e.Matcher.CheckInvariants()
}

// Retract removes the element with the given time tag (the OPS5
// top-level remove) and completes the match phase. It reports whether
// the tag named a live element.
func (e *Engine) Retract(timeTag int) (bool, error) {
	for _, w := range e.WM.Snapshot() {
		if w.TimeTag == timeTag {
			if e.WM.Remove(w) {
				e.submit(false, w)
				e.drain()
				return true, e.Matcher.CheckInvariants()
			}
		}
	}
	return false, nil
}

// Halted reports whether a (halt) action has stopped the engine.
func (e *Engine) Halted() bool { return e.halted }

func tags(wmes []*wm.WME) []int {
	out := make([]int, len(wmes))
	for i, w := range wmes {
		out[i] = w.TimeTag
	}
	return out
}
