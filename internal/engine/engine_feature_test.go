package engine_test

import (
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/wm"
)

// buildEngine wires a vs2 engine with custom output and accept values.
func buildEngine(t *testing.T, src string, accepts []wm.Value) (*engine.Engine, *strings.Builder) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(accepts) > 0 {
		q := engine.NewQueueIO(prog.Symbols, true)
		q.Supply(accepts...)
		e.IO = q
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	return e, &out
}

// MEA: the most recent first-CE (goal) wme drives selection even when
// another instantiation has higher overall recency.
const meaSrc = `
(strategy mea)
(literalize goal name)
(literalize datum v)
(p on-old-goal
  (goal ^name first)
  (datum ^v <x>)
-->
  (write old-goal (crlf)))
(p on-new-goal
  (goal ^name second)
-->
  (write new-goal (crlf))
  (halt))
(make goal ^name first)
(make goal ^name second)
(make datum ^v 99)
`

func TestMEAPrefersRecentFirstCE(t *testing.T) {
	e, out := buildEngine(t, meaSrc, nil)
	res, err := e.Run(engine.Options{MaxCycles: 10, RecordFiring: true})
	if err != nil {
		t.Fatal(err)
	}
	// Under MEA the goal "second" (more recent first-CE wme) wins even
	// though on-old-goal's instantiation contains the newest wme (datum).
	if res.Firings[0].Rule != "on-new-goal" {
		t.Fatalf("MEA fired %s first, want on-new-goal (firings %v)", res.Firings[0].Rule, res.Firings)
	}
	if !strings.HasPrefix(out.String(), "new-goal") {
		t.Fatalf("output %q", out.String())
	}
}

func TestLEXWouldPreferOverallRecency(t *testing.T) {
	src := strings.Replace(meaSrc, "(strategy mea)", "(strategy lex)", 1)
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 10, RecordFiring: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings[0].Rule != "on-old-goal" {
		t.Fatalf("LEX fired %s first, want on-old-goal", res.Firings[0].Rule)
	}
}

func TestAcceptConsumesEngineInput(t *testing.T) {
	src := `
(literalize trigger go)
(literalize got v)
(p read
  (trigger ^go yes)
-->
  (make got ^v (accept))
  (make got ^v (accept))
  (make got ^v (accept))
  (halt))
(make trigger ^go yes)
`
	e, _ := buildEngine(t, src, []wm.Value{wm.Int(10), wm.Int(20)})
	if _, err := e.Run(engine.Options{MaxCycles: 5}); err != nil {
		t.Fatal(err)
	}
	var vals []string
	for _, w := range e.WM.Snapshot() {
		if len(w.Fields) > 1 && w.Fields[1].Kind != wm.KindNil {
			vals = append(vals, w.Fields[1].GoString())
		}
	}
	joined := strings.Join(vals, ",")
	// Two supplied values, then the end-of-file symbol.
	if !strings.Contains(joined, "10") || !strings.Contains(joined, "20") {
		t.Fatalf("accept values missing: %v", vals)
	}
}

func TestTraceFires(t *testing.T) {
	src := `
(p only (a ^x 1) --> (halt))
(make a ^x 1)
`
	e, out := buildEngine(t, src, nil)
	if _, err := e.Run(engine.Options{MaxCycles: 5, TraceFires: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1. only") {
		t.Fatalf("trace output %q", out.String())
	}
}

func TestTopLevelComputeMake(t *testing.T) {
	src := `
(literalize n v)
(p check (n ^v 42) --> (halt))
(make n ^v (compute 6 * 7))
`
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("top-level compute did not produce 42")
	}
}

func TestMaxCyclesStopsRunaways(t *testing.T) {
	src := `
(literalize c v)
(p loop (c ^v <x>) --> (modify 1 ^v (compute <x> + 1)))
(make c ^v 0)
`
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 25 || res.Halted {
		t.Fatalf("cycles=%d halted=%v, want 25/false", res.Cycles, res.Halted)
	}
	// Resuming continues from where it stopped.
	res2, err := e.Run(engine.Options{MaxCycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != 5 {
		t.Fatalf("resumed cycles = %d", res2.Cycles)
	}
}

func TestDisjunctionMatching(t *testing.T) {
	src := `
(literalize b color)
(p pick (b ^color << red green >>) --> (remove 1))
(make b ^color red)
(make b ^color blue)
(make b ^color green)
`
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2 {
		t.Fatalf("fired %d times, want 2 (red and green only)", res.Cycles)
	}
	if e.WM.Len() != 1 {
		t.Fatalf("wm = %d, want just the blue block", e.WM.Len())
	}
}

func TestSameTypePredicate(t *testing.T) {
	src := `
(literalize b v ref)
(p same (b ^v <x> ^ref <=> <x>) --> (remove 1))
(make b ^v 5 ^ref 12)
(make b ^v 5 ^ref hello)
`
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1 {
		t.Fatalf("fired %d times, want 1 (numeric/numeric only)", res.Cycles)
	}
}

func TestModifyGetsNewTimeTag(t *testing.T) {
	src := `
(literalize c v)
(p bump (c ^v 0) --> (modify 1 ^v 1))
(make c ^v 0)
`
	e, _ := buildEngine(t, src, nil)
	if _, err := e.Run(engine.Options{MaxCycles: 5}); err != nil {
		t.Fatal(err)
	}
	snap := e.WM.Snapshot()
	if len(snap) != 1 || snap[0].TimeTag <= 1 {
		t.Fatalf("modified wme should carry a fresh time tag, got %+v", snap)
	}
}

// Element variables: { <blk> (pattern) } names a CE for the RHS.
func TestElementVariableRemove(t *testing.T) {
	src := `
(literalize item id)
(p consume
  (go)
  { <it> (item ^id <i>) }
-->
  (remove <it>))
(make go)
(make item ^id 1)
(make item ^id 2)
`
	e, _ := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2 {
		t.Fatalf("fired %d times, want 2", res.Cycles)
	}
	if e.WM.Len() != 1 { // only (go) remains
		t.Fatalf("wm = %d, want 1", e.WM.Len())
	}
}
