package engine_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/wm"
)

// acceptMixSrc interleaves input-consuming rules with independent
// chains that the speculative act phase can group, so FireBatch > 1
// has real grouping opportunities around the accept barrier.
const acceptMixSrc = `
(literalize reading n v)
(literalize slot n)
(literalize done n)
(p read-slot
  (slot ^n <n>)
-->
  (make reading ^n <n> ^v (accept))
  (remove 1))
(p settle
  (reading ^n <n> ^v <v>)
-->
  (make done ^n <n>)
  (remove 1))
(make slot ^n 1)
(make slot ^n 2)
(make slot ^n 3)
`

func runWithFireBatch(t *testing.T, fireBatch int) ([]string, []string) {
	t.Helper()
	e, _ := buildEngine(t, acceptMixSrc, []wm.Value{wm.Int(10), wm.Int(20), wm.Int(30)})
	res, err := e.Run(engine.Options{MaxCycles: 50, RecordFiring: true, FireBatch: fireBatch})
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	for _, f := range res.Firings {
		fired = append(fired, fmt.Sprintf("%s %v", f.Rule, f.TimeTags))
	}
	var wmes []string
	for _, w := range e.WM.Snapshot() {
		wmes = append(wmes, fmt.Sprintf("%d %s", w.TimeTag, w.String(e.Prog.Symbols, e.Prog.AttrName)))
	}
	sort.Strings(wmes)
	return fired, wmes
}

// TestFireBatchAcceptDifferential: the speculative multi-fire act phase
// must not reorder input consumption — instantiations that read input
// are unsafe to group, so FireBatch 1 and 4 agree exactly.
func TestFireBatchAcceptDifferential(t *testing.T) {
	serialFired, serialWM := runWithFireBatch(t, 1)
	batchFired, batchWM := runWithFireBatch(t, 4)
	if strings.Join(serialFired, "\n") != strings.Join(batchFired, "\n") {
		t.Errorf("firing traces differ:\nserial:\n%s\nbatched:\n%s",
			strings.Join(serialFired, "\n"), strings.Join(batchFired, "\n"))
	}
	if strings.Join(serialWM, "\n") != strings.Join(batchWM, "\n") {
		t.Errorf("final WM differs:\nserial:\n%s\nbatched:\n%s",
			strings.Join(serialWM, "\n"), strings.Join(batchWM, "\n"))
	}
}

// freshSuspendingEngine wires an engine whose QueueIO does NOT fall
// back to end-of-file: an empty queue suspends the run. init false
// leaves the engine empty, the starting point RestoreState expects.
func freshSuspendingEngine(t *testing.T, src string, init bool) (*engine.Engine, *engine.QueueIO) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	q := engine.NewQueueIO(prog.Symbols, false)
	e.IO = q
	if init {
		if err := e.Init(); err != nil {
			t.Fatalf("init: %v", err)
		}
	}
	return e, q
}

func buildSuspendingEngine(t *testing.T, src string) (*engine.Engine, *engine.QueueIO) {
	t.Helper()
	return freshSuspendingEngine(t, src, true)
}

// TestRunSuspendsAwaitingInput: with no end-of-file fallback, a
// dominant instantiation that reads input parks the run (the
// instantiation stays unfired in the conflict set) and a later Run
// resumes exactly there once values arrive.
func TestRunSuspendsAwaitingInput(t *testing.T) {
	for _, fireBatch := range []int{0, 4} {
		t.Run(fmt.Sprintf("fireBatch=%d", fireBatch), func(t *testing.T) {
			e, _ := buildSuspendingEngine(t, acceptMixSrc)
			res, err := e.Run(engine.Options{MaxCycles: 50, FireBatch: fireBatch})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AwaitingInput || res.Cycles != 0 {
				t.Fatalf("first run: %+v", res)
			}
			// One value releases one read-slot (and its settle chain);
			// the next read-slot suspends again.
			if err := e.SupplyInput([]wm.Value{wm.Int(10)}); err != nil {
				t.Fatal(err)
			}
			res, err = e.Run(engine.Options{MaxCycles: 50, FireBatch: fireBatch, RecordFiring: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AwaitingInput {
				t.Fatalf("second run should suspend again: %+v", res)
			}
			// The rest of the script drains the remaining slots.
			if err := e.SupplyInput([]wm.Value{wm.Int(20), wm.Int(30)}); err != nil {
				t.Fatal(err)
			}
			res, err = e.Run(engine.Options{MaxCycles: 50, FireBatch: fireBatch})
			if err != nil {
				t.Fatal(err)
			}
			if res.AwaitingInput {
				t.Fatalf("final run still suspended: %+v", res)
			}
			var done int
			for _, w := range e.WM.Snapshot() {
				if strings.HasPrefix(w.String(e.Prog.Symbols, e.Prog.AttrName), "(done") {
					done++
				}
			}
			if done != 3 {
				t.Fatalf("done = %d, want 3", done)
			}
		})
	}
}

// TestQueueIOPendingIsolation: Pending returns a copy, so snapshot and
// rollback code can never observe (or cause) half-consumed mutation of
// the live queue through a shared backing array.
func TestQueueIOPendingIsolation(t *testing.T) {
	e, q := buildSuspendingEngine(t, acceptMixSrc)
	if err := e.SupplyInput([]wm.Value{wm.Int(10), wm.Int(20), wm.Int(30)}); err != nil {
		t.Fatal(err)
	}
	snap := q.Pending()
	snap[0] = wm.Int(999) // must not write through to the queue
	if got := q.Pending()[0]; got != wm.Int(10) {
		t.Fatalf("queue observed external mutation: %v", got)
	}
	// Capture state with the queue full, drain part of it, then restore
	// the snapshot into a fresh engine: the pending input must rewind
	// with working memory.
	st := e.CaptureState()
	res, err := e.Run(engine.Options{MaxCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2 || q.Len() == 3 {
		t.Fatalf("mid-run state: cycles=%d pending=%d", res.Cycles, q.Len())
	}
	e2, q2 := freshSuspendingEngine(t, acceptMixSrc, false)
	if err := e2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 3 || q2.Pending()[0] != wm.Int(10) {
		t.Fatalf("restore did not rewind the input queue: len=%d", q2.Len())
	}
	// The restored engine replays the whole script identically.
	res, err = e2.Run(engine.Options{MaxCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.AwaitingInput || res.Cycles != 6 {
		t.Fatalf("restored run: %+v", res)
	}
}

// TestMEARecencyWithVectorWMEs: vector-attribute WMEs participate in
// conflict resolution like any other element — under MEA the newer
// vector WME wins the tie on the non-goal condition elements.
func TestMEARecencyWithVectorWMEs(t *testing.T) {
	src := `
(strategy mea)
(literalize goal name)
(literalize vec elt)
(vector-attribute elt)
(p pick
  (goal ^name go)
  (vec ^elt a <x>)
-->
  (write picked <x> (crlf))
  (halt))
(make goal ^name go)
(make vec ^elt a b)
(make vec ^elt a c)
`
	e, out := buildEngine(t, src, nil)
	res, err := e.Run(engine.Options{MaxCycles: 5, RecordFiring: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || !strings.HasPrefix(out.String(), "picked c") {
		t.Fatalf("halted=%v output=%q", res.Halted, out.String())
	}
}
