package multimax

import (
	"fmt"
	"sort"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/stats"
	"repro/internal/wm"
)

// Config describes one simulated machine configuration.
type Config struct {
	Procs     int             // match processes (the k of "1+k")
	Queues    int             // task queues
	Lines     int             // hash-table lines (0 = 16384)
	Scheme    parmatch.Scheme // line-lock scheme
	Pipelined bool            // overlap match with RHS evaluation (§3.1)
	// Hardware models the hardware task scheduler Gupta proposed and the
	// paper did not build (§3.2): constant-time, contention-free task
	// dispatch through a single central queue. Queues is ignored.
	Hardware bool
	// FIFO pops tasks oldest-first instead of the paper's LIFO stacks —
	// a scheduling-discipline ablation.
	FIFO bool
	// OverlapCR models the first optimization of the paper's footnote 3:
	// conflict resolution performed incrementally while the control
	// process waits for match to finish, so only the part exceeding the
	// wait is charged to the cycle.
	OverlapCR bool
	MaxCycles int   // 0 = unlimited
	Costs     Costs // zero value = DefaultCosts
}

// Result is the outcome of one simulated run.
type Result struct {
	Cycles      int
	Halted      bool
	WMSize      int
	Activations int64 // tasks processed (excludes MRSW requeues)

	MatchInstr int64 // Σ per cycle (phase end − RHS end): the match time
	TotalInstr int64 // control-process clock at the end of the run
	RHSInstr   int64 // threaded-code instructions interpreted

	Contention stats.Contention
	FiringLog  []string // "rule@cycle", for equivalence tests
	// LineProfile lists the most contended hash-table lines with the
	// nodes (and their productions) that hit them — the simulator's
	// version of the paper's culprit-production analysis.
	LineProfile []LineContention
	NodeProfile []NodeContention
	// NodeProfileAll is every active node sorted by longest single hold
	// (diagnostics).
	NodeProfileAll []NodeContention
}

// LineContention describes one contended hash-table line.
type LineContention struct {
	Line     int
	Acquires int64
	Spins    int64
	Hold     int64 // total instructions the line lock was held
	MaxHold  int64 // longest single hold
	Rules    []string
}

// MatchSeconds converts the match time to virtual seconds.
func (r *Result) MatchSeconds(c Costs) float64 { return c.Seconds(r.MatchInstr) }

// Simulate runs a whole program on the virtual Multimax and returns the
// timing and contention results. The match results themselves (firing
// sequence, final working memory) are identical to the sequential
// matcher's — the simulation only decides *when* things happen.
func Simulate(prog *ops5.Program, net *rete.Network, cfg Config) (*Result, error) {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	st, err := conflict.ParseStrategy(prog.Strategy)
	if err != nil {
		return nil, err
	}
	// The simulator is single-threaded; one stripe keeps Select trivial.
	cs := conflict.New(conflict.Config{Strategy: st, Shards: 1})
	s := newSim(cfg, net, cs)
	mem := wm.NewMemory()
	res := &Result{}

	compiled := make([]*rhs.Compiled, len(net.Rules))
	for i, cr := range net.Rules {
		c, err := rhs.Compile(prog, cr)
		if err != nil {
			return nil, err
		}
		compiled[i] = c
	}

	// Control-process clock.
	var now int64
	halted := false

	// pending collects the WM changes of the current RHS evaluation.
	var pending []pushEvent
	env := &rhs.Env{
		Prog:   prog,
		Accept: func() wm.Value { return wm.Sym(prog.Symbols.Intern("end-of-file")) },
		Make: func(fields []wm.Value) {
			w := mem.Add(fields)
			pending = append(pending, pushEvent{sign: true, wme: w})
		},
		Remove: func(w *wm.WME) {
			if mem.Remove(w) {
				pending = append(pending, pushEvent{sign: false, wme: w})
			}
		},
		Modify: func(old *wm.WME, fields []wm.Value) {
			if mem.Remove(old) {
				pending = append(pending, pushEvent{sign: false, wme: old})
			}
			w := mem.Add(fields)
			pending = append(pending, pushEvent{sign: true, wme: w})
		},
		Halt: func() { halted = true },
	}

	// matchTail is the control process's wait at the end of the previous
	// phase; with OverlapCR it absorbs conflict-resolution work.
	var matchTail int64

	// runMatch distributes the pending pushes over [rhsStart, rhsEnd]
	// (pipelined) or serially at rhsEnd (baseline), simulates the phase
	// and accounts match time as phase end minus RHS end.
	runMatch := func(rhsStart, rhsEnd int64) {
		n := int64(len(pending))
		for i := range pending {
			if cfg.Pipelined && rhsEnd > rhsStart {
				pending[i].at = rhsStart + cfg.Costs.FirstPush + (rhsEnd-rhsStart)*int64(i)/n
			} else {
				pending[i].at = rhsEnd
			}
		}
		phaseEnd := s.runPhase(pending, rhsEnd)
		pending = pending[:0]
		matchTail = 0
		if phaseEnd > rhsEnd {
			matchTail = phaseEnd - rhsEnd
			res.MatchInstr += matchTail
		}
		now = rhsEnd
		if phaseEnd > now {
			now = phaseEnd
		}
	}

	// Initial makes: charged like one RHS evaluation.
	for _, act := range prog.InitialMakes {
		fields := make([]wm.Value, prog.ClassOf(act.Class).NumFields())
		fields[0] = wm.Sym(act.Class)
		for _, set := range act.Sets {
			v, err := initValue(set.Expr)
			if err != nil {
				return nil, err
			}
			fields[set.Field] = v
		}
		env.Make(fields)
	}
	rhsEnd := now + int64(len(pending))*cfg.Costs.RHSInstr
	runMatch(now, rhsEnd)

	for !halted {
		if cfg.MaxCycles > 0 && res.Cycles >= cfg.MaxCycles {
			break
		}
		csChanges := cs.Inserts() + cs.Deletes()
		inst := cs.Select()
		if inst == nil {
			break
		}
		cs.MarkFired(inst)
		res.Cycles++
		res.FiringLog = append(res.FiringLog, fmt.Sprintf("%s@%d", inst.Rule.Rule.Name, res.Cycles))
		crCost := cfg.Costs.CRBase + cfg.Costs.CRChange*(cs.Inserts()+cs.Deletes()-csChanges)
		if cfg.OverlapCR {
			// Conflict resolution ran incrementally during the match
			// wait; only the excess shows up on the critical path.
			crCost -= matchTail
			if crCost < 0 {
				crCost = 0
			}
		}
		now += crCost

		n, err := rhs.Exec(compiled[inst.Rule.Index], inst.Wmes, env)
		if err != nil {
			return nil, err
		}
		res.RHSInstr += int64(n)
		rhsStart := now
		rhsEnd := now + int64(n)*cfg.Costs.RHSInstr
		runMatch(rhsStart, rhsEnd)
	}

	if err := s.table.CheckDrained(); err != nil {
		return nil, err
	}
	if !cs.Drained() {
		return nil, fmt.Errorf("multimax: conflict set has parked deletes")
	}
	res.Halted = halted
	res.WMSize = mem.Len()
	res.TotalInstr = now
	res.Activations = s.activations
	res.Contention = stats.Contention{
		QueueAcquires:     s.queueAcquires,
		QueueSpins:        s.queueSpins,
		LineAcquiresLeft:  s.lineAcqLeft,
		LineSpinsLeft:     s.lineSpinsLeft,
		LineAcquiresRight: s.lineAcqRight,
		LineSpinsRight:    s.lineSpinsRight,
		Requeues:          s.requeues,
	}
	res.LineProfile = s.lineProfile(net, 10)
	res.NodeProfile = s.nodeProfile(net, 10)
	res.NodeProfileAll = s.nodeProfile(net, 1<<30)
	sort.Slice(res.NodeProfileAll, func(a, b int) bool {
		return res.NodeProfileAll[a].MaxHold > res.NodeProfileAll[b].MaxHold
	})
	return res, nil
}

// NodeContention describes one node's activation cost profile.
type NodeContention struct {
	Node    int
	Acts    int64
	Hold    int64
	MaxHold int64
	MaxScan int64
	MaxExam int64
	Negated bool
	Rules   []string
}

// nodeProfile extracts the top-n nodes by total hold time.
func (s *sim) nodeProfile(net *rete.Network, n int) []NodeContention {
	var out []NodeContention
	for i := range s.nodeHold {
		if s.nodeHold[i] == 0 {
			continue
		}
		out = append(out, NodeContention{
			Node: i, Acts: s.nodeActs[i], Hold: s.nodeHold[i],
			MaxHold: s.nodeMaxHold[i], MaxScan: s.nodeMaxScan[i], MaxExam: s.nodeMaxExam[i],
			Negated: net.JoinByID(i).Negated,
			Rules:   net.RuleNamesOf(net.JoinByID(i)),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Hold > out[b].Hold })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// lineProfile extracts the top-n most contended lines.
func (s *sim) lineProfile(net *rete.Network, n int) []LineContention {
	var out []LineContention
	for i := range s.lineAcqN {
		if s.lineSpinN[i] == 0 {
			continue
		}
		lc := LineContention{Line: i, Acquires: s.lineAcqN[i], Spins: s.lineSpinN[i], Hold: s.lineHoldN[i], MaxHold: s.lineMaxHold[i]}
		seen := map[string]bool{}
		for nodeID := range s.lineNodes[i] {
			for _, name := range net.RuleNamesOf(net.JoinByID(nodeID)) {
				if !seen[name] {
					seen[name] = true
					lc.Rules = append(lc.Rules, name)
				}
			}
		}
		sort.Strings(lc.Rules)
		out = append(out, lc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Spins > out[b].Spins })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// initValue folds the ground expressions allowed in top-level makes.
func initValue(ex *ops5.Expr) (wm.Value, error) {
	switch ex.Kind {
	case ops5.ExprConst:
		return ex.Const, nil
	case ops5.ExprCompute:
		l, err := initValue(ex.L)
		if err != nil {
			return wm.Nil, err
		}
		r, err := initValue(ex.R)
		if err != nil {
			return wm.Nil, err
		}
		return rhs.ComputeOp(ex.Op, l, r)
	default:
		return wm.Nil, fmt.Errorf("non-constant expression in top-level make")
	}
}
