// Package multimax is a deterministic discrete-event simulation of the
// PSM-E parallel matcher running on an Encore Multimax: P virtual
// NS32032 processors (one control process plus k match processes)
// execute the same task-queue / line-lock protocol as the real
// goroutine matcher (internal/parmatch), but against a virtual clock
// measured in machine instructions. Lock contention is modelled the way
// the paper measures it — the number of times a process observes a lock
// busy before acquiring it — and speed-ups come out of the virtual
// clock, so the 1+13-process experiments of Tables 4-5..4-9 reproduce on
// any host, independent of its core count.
//
// Correctness note: all side effects (memory-line updates, queue
// operations, conflict-set changes) execute in virtual-time order, which
// is a legal serialization of the real protocol, so the simulator's
// match results are bit-identical to the sequential matcher's (tests
// assert this).
package multimax

// Costs is the instruction-cost model, in NS32032 instructions. The
// constant-test figure is the paper's own (3 instructions per
// constant-test node activation, §3.1); the rest are calibrated so that
// average task lengths land in the paper's 100-700 instruction range and
// uniprocessor match times have the right order of magnitude at 0.75
// MIPS.
type Costs struct {
	MIPS float64 // processor speed, instructions per microsecond

	ConstTest int64 // per constant test evaluated
	RootBase  int64 // root-task dispatch overhead

	Hash          int64 // computing a token hash
	LockAcq       int64 // successful test-and-set
	Spin          int64 // one busy observation while spinning
	QueueHold     int64 // queue critical section (push or pop)
	QueueScan     int64 // peeking one empty queue during pop
	IdleRecheck   int64 // idle process back-off before re-polling
	TaskCountUpd  int64 // TaskCount increment/decrement
	UpdateOwnBase int64 // own-memory insert/delete bookkeeping
	OwnScanEntry  int64 // per entry scanned during a delete search
	OppExamine    int64 // per candidate examined in the opposite memory
	PairEmit      int64 // building one output token
	TermTask      int64 // terminal activation incl. conflict-set update

	GateHold    int64 // MRSW flag/counter critical section
	MRSWExtra   int64 // per-activation overhead of the complex locks
	RequeueCost int64 // putting a wrong-side token back on a queue
	HWSchedOp   int64 // one hardware-scheduler push or pop (§3.2's proposal)

	RHSInstr  int64 // per threaded-code instruction interpreted
	CRBase    int64 // conflict resolution per cycle
	CRChange  int64 // conflict resolution per conflict-set change
	FirstPush int64 // control-process overhead before the first push
}

// DefaultCosts models the paper's Multimax (NS32032 at 0.75 MIPS).
func DefaultCosts() Costs {
	return Costs{
		MIPS:          0.75,
		ConstTest:     3,
		RootBase:      20,
		Hash:          12,
		LockAcq:       9,
		Spin:          4,
		QueueHold:     8,
		QueueScan:     6,
		IdleRecheck:   40,
		TaskCountUpd:  5,
		UpdateOwnBase: 20,
		OwnScanEntry:  6,
		OppExamine:    9,
		PairEmit:      26,
		TermTask:      40,
		GateHold:      10,
		MRSWExtra:     22,
		RequeueCost:   30,
		HWSchedOp:     2,
		RHSInstr:      45,
		CRBase:        150,
		CRChange:      40,
		FirstPush:     30,
	}
}

// Seconds converts an instruction count to virtual seconds.
func (c Costs) Seconds(instr int64) float64 {
	return float64(instr) / (c.MIPS * 1e6)
}
