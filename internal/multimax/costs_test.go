package multimax_test

import (
	"testing"

	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	wl "repro/internal/workload"
)

func TestSecondsConversion(t *testing.T) {
	c := multimax.DefaultCosts()
	// 0.75 MIPS: 750k instructions = 1 second.
	if got := c.Seconds(750_000); got != 1.0 {
		t.Fatalf("Seconds(750k) = %f, want 1.0", got)
	}
	if got := c.Seconds(0); got != 0 {
		t.Fatalf("Seconds(0) = %f", got)
	}
}

func simulate(t *testing.T, src string, cfg multimax.Config) *multimax.Result {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = 100000
	res, err := multimax.Simulate(prog, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("simulated run did not halt")
	}
	return res
}

// TestMRSWUniprocessorSlower reproduces the paper's Table 4-8
// observation: the complex locks make the one-process base case slower
// than simple locks.
func TestMRSWUniprocessorSlower(t *testing.T) {
	src := wl.Rubik(10)
	simple := simulate(t, src, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple})
	mrsw := simulate(t, src, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeMRSW})
	if mrsw.MatchInstr <= simple.MatchInstr {
		t.Fatalf("MRSW uniproc (%d) should exceed simple (%d)", mrsw.MatchInstr, simple.MatchInstr)
	}
}

// TestMultipleQueuesReduceQueueContention reproduces Table 4-7's
// in-text remark: eight queues collapse the 13-process spin counts.
func TestMultipleQueuesReduceQueueContention(t *testing.T) {
	src := wl.Rubik(10)
	one := simulate(t, src, multimax.Config{Procs: 13, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
	eight := simulate(t, src, multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
	spins := func(r *multimax.Result) float64 {
		return float64(r.Contention.QueueSpins) / float64(r.Contention.QueueAcquires)
	}
	if spins(eight) >= spins(one)/2 {
		t.Fatalf("8 queues (%.2f spins) should at least halve 1 queue (%.2f)", spins(eight), spins(one))
	}
	if eight.MatchInstr >= one.MatchInstr {
		t.Fatalf("8 queues (%d) should beat 1 queue (%d)", eight.MatchInstr, one.MatchInstr)
	}
}

// TestTourneyLineContentionDominates reproduces Table 4-9's shape: the
// cross-product program contends for hash lines far more than Rubik.
func TestTourneyLineContentionDominates(t *testing.T) {
	cfg := multimax.Config{Procs: 12, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true}
	tourney := simulate(t, wl.Tourney(10), cfg)
	rubik := simulate(t, wl.Rubik(10), cfg)
	left := func(r *multimax.Result) float64 {
		if r.Contention.LineAcquiresLeft == 0 {
			return 0
		}
		return float64(r.Contention.LineSpinsLeft) / float64(r.Contention.LineAcquiresLeft)
	}
	if left(tourney) < 4*left(rubik) {
		t.Fatalf("tourney left contention %.2f should dwarf rubik %.2f", left(tourney), left(rubik))
	}
}

// TestLineProfileNamesCulprits: the per-line profile must attribute
// Tourney's contention to the cross-product productions, as the paper's
// §4.2 analysis does.
func TestLineProfileNamesCulprits(t *testing.T) {
	res := simulate(t, wl.Tourney(10), multimax.Config{
		Procs: 12, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true,
	})
	if len(res.LineProfile) == 0 {
		t.Fatal("no line profile")
	}
	top := res.LineProfile[0]
	names := map[string]bool{}
	for _, r := range top.Rules {
		names[r] = true
	}
	if !names["assign"] && !names["gen-pairs"] && !names["next-round"] {
		t.Fatalf("top contended line names %v, want a cross-product production", top.Rules)
	}
}

// TestPipeliningHelps: with match overlapped into RHS evaluation the
// match tail shrinks (the reason Table 4-5's 1+1 exceeds 1.0).
func TestPipeliningHelps(t *testing.T) {
	src := wl.Rubik(10)
	plain := simulate(t, src, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple})
	piped := simulate(t, src, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
	if piped.MatchInstr >= plain.MatchInstr {
		t.Fatalf("pipelined (%d) should beat non-pipelined (%d)", piped.MatchInstr, plain.MatchInstr)
	}
}

// TestRequeuesOnlyUnderMRSW: simple locks never re-queue tokens.
func TestRequeuesOnlyUnderMRSW(t *testing.T) {
	src := wl.Tourney(8)
	simple := simulate(t, src, multimax.Config{Procs: 8, Queues: 4, Scheme: parmatch.SchemeSimple, Pipelined: true})
	if simple.Contention.Requeues != 0 {
		t.Fatalf("simple scheme requeued %d tokens", simple.Contention.Requeues)
	}
	mrsw := simulate(t, src, multimax.Config{Procs: 8, Queues: 4, Scheme: parmatch.SchemeMRSW, Pipelined: true})
	if mrsw.Contention.Requeues == 0 {
		t.Log("note: MRSW run had no wrong-side arrivals (legal, workload-dependent)")
	}
}

// TestHardwareSchedulerBeatsSoftwareQueues reproduces the argument the
// paper makes for Gupta's proposed hardware task scheduler (§3.2):
// removing software scheduling overhead and contention lifts top-end
// speed-up well beyond the eight-queue configuration.
func TestHardwareSchedulerBeatsSoftwareQueues(t *testing.T) {
	src := wl.Rubik(15)
	soft := simulate(t, src, multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
	hard := simulate(t, src, multimax.Config{Procs: 13, Hardware: true, Scheme: parmatch.SchemeSimple, Pipelined: true})
	if hard.MatchInstr >= soft.MatchInstr {
		t.Fatalf("hardware scheduler (%d) should beat software queues (%d)", hard.MatchInstr, soft.MatchInstr)
	}
	if n := hard.Contention.QueueSpins; n != 0 {
		t.Fatalf("hardware scheduler recorded %d queue spins", n)
	}
}

// TestFIFOAndLIFOBothDrain: the scheduling-discipline ablation must
// still produce the sequential results.
func TestFIFOAndLIFOBothDrain(t *testing.T) {
	src := wl.Tourney(8)
	lifo := simulate(t, src, multimax.Config{Procs: 7, Queues: 4, Scheme: parmatch.SchemeSimple, Pipelined: true})
	fifo := simulate(t, src, multimax.Config{Procs: 7, Queues: 4, Scheme: parmatch.SchemeSimple, Pipelined: true, FIFO: true})
	if len(lifo.FiringLog) != len(fifo.FiringLog) {
		t.Fatalf("FIFO fired %d, LIFO %d", len(fifo.FiringLog), len(lifo.FiringLog))
	}
	for i := range lifo.FiringLog {
		if lifo.FiringLog[i] != fifo.FiringLog[i] {
			t.Fatalf("firing %d differs: %s vs %s", i, lifo.FiringLog[i], fifo.FiringLog[i])
		}
	}
}
