package multimax_test

import (
	"fmt"
	"testing"

	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	wl "repro/internal/workload"
)

// TestLineProfilesDiag prints the contention profiles of the three
// benchmark workloads — the simulator's culprit-production analysis.
func TestLineProfilesDiag(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"weaver", wl.Weaver(20, 12)},
		{"rubik", wl.Rubik(60)},
		{"tourney", wl.Tourney(16)},
	} {
		prog, err := ops5.Parse(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		net, err := rete.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := multimax.Simulate(prog, net, multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true, MaxCycles: 200000,
		})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("== %s cycles=%d acts=%d matchInstr=%d\n", tc.name, res.Cycles, res.Activations, res.MatchInstr)
		for _, nc := range res.NodeProfile[:min(6, len(res.NodeProfile))] {
			rules := nc.Rules
			if len(rules) > 3 {
				rules = rules[:3]
			}
			fmt.Printf("  node %4d acts=%-7d hold=%-9d max=%-7d maxScan=%-5d maxExam=%-5d neg=%-5v rules=%v\n",
				nc.Node, nc.Acts, nc.Hold, nc.MaxHold, nc.MaxScan, nc.MaxExam, nc.Negated, rules)
		}
		for _, lc := range res.LineProfile[:min(3, len(res.LineProfile))] {
			rules := lc.Rules
			if len(rules) > 4 {
				rules = rules[:4]
			}
			fmt.Printf("  line %4d acq=%-7d spins=%-9d hold=%-9d max=%-7d rules=%v\n",
				lc.Line, lc.Acquires, lc.Spins, lc.Hold, lc.MaxHold, rules)
		}
	}
}

// TestMaxHoldDiag ranks nodes by their single longest hold.
func TestMaxHoldDiag(t *testing.T) {
	src := wl.Weaver(20, 12)
	prog, _ := ops5.Parse(src)
	net, _ := rete.Compile(prog)
	res, err := multimax.Simulate(prog, net, multimax.Config{
		Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true, MaxCycles: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := res.NodeProfileAll
	fmt.Println("top nodes by max single hold:")
	for i := 0; i < 8 && i < len(all); i++ {
		nc := all[i]
		fmt.Printf("  node %4d acts=%-7d hold=%-9d max=%-7d maxScan=%-5d maxExam=%-5d neg=%v rules=%v\n",
			nc.Node, nc.Acts, nc.Hold, nc.MaxHold, nc.MaxScan, nc.MaxExam, nc.Negated, nc.Rules)
	}
}
