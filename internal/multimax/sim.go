package multimax

import (
	"fmt"

	"repro/internal/hashmem"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/taskqueue"
	"repro/internal/wm"
)

// simLock is a virtual-time lock: busy until freeAt. Contenders retry at
// freeAt; the event loop's min-time ordering arbitrates, with ties going
// to the lower processor id.
type simLock struct {
	freeAt int64
}

// simMRSW mirrors spinlock.MRSW in virtual time.
type simMRSW struct {
	gate  simLock
	mod   simLock
	flag  int32
	count int32
}

type simQueue struct {
	lock  simLock
	tasks []*taskqueue.Task
}

// proc is one virtual processor. Between tasks k is nil and the
// processor polls the queues; within a task k is the next stage's
// continuation.
type proc struct {
	id      int
	t       int64
	k       func(p *proc)
	rr      int    // rotating push-target queue
	dormant bool   // control process after its last push of the phase
	stage   string // diagnostic: current continuation name
	stageN  int64  // diagnostic: executions of the current stage
}

// sim is the whole virtual machine for one run.
type sim struct {
	cfg   Config
	cost  Costs
	net   *rete.Network
	table *hashmem.Table
	lines []simLock
	gates []simMRSW
	qs    []simQueue
	sink  rete.TerminalSink

	procs     []*proc // index cfg.Procs is the control process
	rrProc    int     // rotating tie-break start for minProc
	taskCount int64
	zeroAt    int64 // time TaskCount last reached zero

	// contention counters (the paper's spins-before-access measure)
	queueAcquires, queueSpins    int64
	lineAcqLeft, lineSpinsLeft   int64
	lineAcqRight, lineSpinsRight int64
	requeues                     int64
	activations                  int64
	pushesPending                int

	// per-line contention profile, for attributing serialization to
	// specific nodes (the paper's "culprit productions" analysis, §4.2)
	lineAcqN, lineSpinN    []int64
	lineHoldN, lineMaxHold []int64
	lineNodes              []map[int]struct{}

	// per-node activation cost profile (diagnostics)
	nodeHold, nodeMaxHold, nodeActs []int64
	nodeMaxScan, nodeMaxExam        []int64
}

// profileLine records one line acquisition for the contention profile.
func (s *sim) profileLine(idx, nodeID int, spins int64) {
	s.lineAcqN[idx]++
	s.lineSpinN[idx] += spins
	m := s.lineNodes[idx]
	if m == nil {
		m = make(map[int]struct{}, 2)
		s.lineNodes[idx] = m
	}
	m[nodeID] = struct{}{}
}

func newSim(cfg Config, net *rete.Network, sink rete.TerminalSink) *sim {
	if cfg.Queues < 1 || cfg.Hardware {
		cfg.Queues = 1
	}
	if cfg.Lines <= 0 {
		cfg.Lines = 16384
	}
	s := &sim{
		cfg:  cfg,
		cost: cfg.Costs,
		net:  net,
		// The simulator keeps the paper's fixed linked-list layout: its
		// cost model charges per token scanned, and the deterministic
		// Tables 4-5..4-9 depend on those scan counts staying exact.
		table: hashmem.NewLegacy(cfg.Lines),
		qs:    make([]simQueue, cfg.Queues),
		sink:  sink,
	}
	n := len(s.table.Lines)
	if cfg.Scheme == parmatch.SchemeSimple {
		s.lines = make([]simLock, n)
	} else {
		s.gates = make([]simMRSW, n)
	}
	s.lineAcqN = make([]int64, n)
	s.lineSpinN = make([]int64, n)
	s.lineHoldN = make([]int64, n)
	s.lineMaxHold = make([]int64, n)
	s.lineNodes = make([]map[int]struct{}, n)
	nj := net.NumJoinIDs()
	s.nodeHold = make([]int64, nj)
	s.nodeMaxHold = make([]int64, nj)
	s.nodeActs = make([]int64, nj)
	s.nodeMaxScan = make([]int64, nj)
	s.nodeMaxExam = make([]int64, nj)
	s.procs = make([]*proc, cfg.Procs+1)
	for i := range s.procs {
		s.procs[i] = &proc{id: i, rr: i, dormant: i == cfg.Procs}
	}
	return s
}

func (s *sim) control() *proc { return s.procs[s.cfg.Procs] }

// minProc returns the runnable processor with the smallest clock.
// Ties are broken round-robin (the scan starts after the previous
// winner): with a fixed lowest-id tie-break, a processor trying to exit
// an MRSW epoch can be starved forever by lower-id processors that keep
// re-acquiring the gate for wrong-side tokens — a livelock real hardware
// avoids through timing noise, and the simulator must avoid through
// fair arbitration.
func (s *sim) minProc() *proc {
	n := len(s.procs)
	var best *proc
	for i := 0; i < n; i++ {
		p := s.procs[(s.rrProc+i)%n]
		if p.dormant {
			continue
		}
		if best == nil || p.t < best.t {
			best = p
		}
	}
	s.rrProc = best.id + 1
	return best
}

// tryLock models a test-and-test-and-set acquisition attempt at p.t.
// On success it charges the acquisition cost and returns true; the
// caller must set l.freeAt = p.t + hold before yielding. On failure it
// accrues spins and moves p to the release time so the same continuation
// retries.
func (s *sim) tryLock(p *proc, l *simLock, spins *int64) bool {
	if p.t >= l.freeAt {
		p.t += s.cost.LockAcq
		return true
	}
	wait := l.freeAt - p.t
	*spins += (wait + s.cost.Spin - 1) / s.cost.Spin
	p.t = l.freeAt
	return false
}

// pushEvent is one control-process root push scheduled during RHS
// evaluation.
type pushEvent struct {
	at   int64
	sign bool
	wme  *wm.WME
}

// runPhase simulates one match phase: the control process performs the
// scheduled pushes while the match processes drain the queues. It
// returns the time the phase's last task completed (TaskCount zero and
// no pushes outstanding).
func (s *sim) runPhase(pushes []pushEvent, rhsEnd int64) int64 {
	s.zeroAt = rhsEnd
	ctl := s.control()
	s.pushesPending = len(pushes)
	if len(pushes) > 0 {
		ctl.dormant = false
		ctl.t = pushes[0].at
		idx := 0
		var stage func(p *proc)
		stage = func(p *proc) {
			ev := pushes[idx]
			if p.t < ev.at {
				p.t = ev.at
				return // re-run at the scheduled time
			}
			t := &taskqueue.Task{Root: ev.wme, Sign: ev.sign}
			if s.cfg.Hardware {
				s.qs[0].tasks = append(s.qs[0].tasks, t)
				s.taskCount++
				s.pushesPending--
				p.t += s.cost.HWSchedOp
			} else {
				q := &s.qs[p.rr%len(s.qs)]
				if !s.tryLock(p, &q.lock, &s.queueSpins) {
					return
				}
				s.queueAcquires++
				p.rr++
				q.tasks = append(q.tasks, t)
				s.taskCount++
				s.pushesPending--
				q.lock.freeAt = p.t + s.cost.QueueHold
				p.t = q.lock.freeAt + s.cost.TaskCountUpd
			}
			idx++
			if idx == len(pushes) {
				p.dormant = true
				p.k = nil
				return
			}
			if p.t < pushes[idx].at {
				p.t = pushes[idx].at
			}
		}
		ctl.k = stage
	}
	for iter := 0; ; iter++ {
		if s.taskCount == 0 && s.pushesPending == 0 {
			return s.zeroAt
		}
		p := s.minProc()
		if iter > 0 && iter%20_000_000 == 0 {
			s.dumpState(iter)
		}
		p.stageN++
		if p.k != nil {
			p.k(p)
		} else {
			s.poll(p)
		}
	}
}

// dumpState panics with a diagnostic when the phase loop runs away —
// always a simulator bug, never a legitimate workload.
func (s *sim) dumpState(iter int) {
	msg := fmt.Sprintf("multimax: phase loop ran %d iterations; taskCount=%d pushesPending=%d\n",
		iter, s.taskCount, s.pushesPending)
	for _, p := range s.procs {
		msg += fmt.Sprintf("  proc %d t=%d dormant=%v hasK=%v stage=%s runs=%d\n", p.id, p.t, p.dormant, p.k != nil, p.stage, p.stageN)
	}
	for i := range s.qs {
		msg += fmt.Sprintf("  queue %d len=%d freeAt=%d\n", i, len(s.qs[i].tasks), s.qs[i].lock.freeAt)
	}
	panic(msg)
}

// poll is the idle match-process loop: scan the queues, pop a task or
// back off.
func (s *sim) poll(p *proc) {
	if s.cfg.Hardware {
		// The hardware task scheduler Gupta proposed and the paper left
		// unimplemented (§3.2): constant-time, contention-free dispatch.
		q := &s.qs[0]
		if len(q.tasks) == 0 {
			p.t += s.cost.IdleRecheck
			return
		}
		s.startTask(p, s.takeTask(q))
		p.t += s.cost.HWSchedOp
		return
	}
	n := len(s.qs)
	for i := 0; i < n; i++ {
		q := &s.qs[(p.id+i)%n]
		if len(q.tasks) == 0 {
			p.t += s.cost.QueueScan
			continue
		}
		if !s.tryLock(p, &q.lock, &s.queueSpins) {
			return // retry the poll at the lock's release time
		}
		s.queueAcquires++
		task := s.takeTask(q)
		q.lock.freeAt = p.t + s.cost.QueueHold
		p.t = q.lock.freeAt
		s.startTask(p, task)
		return
	}
	p.t += s.cost.IdleRecheck
}

// takeTask removes the next task per the configured discipline: LIFO
// (the paper's stack behaviour) or FIFO (an ordering ablation).
func (s *sim) takeTask(q *simQueue) *taskqueue.Task {
	if s.cfg.FIFO {
		task := q.tasks[0]
		q.tasks = q.tasks[1:]
		return task
	}
	m := len(q.tasks)
	task := q.tasks[m-1]
	q.tasks = q.tasks[:m-1]
	return task
}

// startTask dispatches a popped task to its stage chain.
func (s *sim) startTask(p *proc, t *taskqueue.Task) {
	switch {
	case t.Root != nil:
		p.stage, p.stageN = "root", 0
		p.k = func(p *proc) { s.rootStage(p, t) }
	case t.Term != nil:
		p.stage, p.stageN = "term", 0
		p.k = func(p *proc) { s.termStage(p, t) }
	default:
		p.t += s.cost.Hash
		p.stage, p.stageN = "joinAcquire", 0
		p.k = func(p *proc) { s.joinAcquire(p, t) }
	}
}

func (s *sim) rootStage(p *proc, t *taskqueue.Task) {
	var children []*taskqueue.Task
	tests := s.net.RootDeliver(t.Root, func(d rete.AlphaDest) {
		nt := &taskqueue.Task{Sign: t.Sign, Wmes: []*wm.WME{t.Root}}
		if d.Terminal != nil {
			nt.Term = d.Terminal
		} else {
			nt.Join = d.Join
			nt.Side = d.Side
		}
		children = append(children, nt)
	})
	p.t += s.cost.RootBase + int64(tests)*s.cost.ConstTest
	s.pushChildren(p, children)
}

func (s *sim) termStage(p *proc, t *taskqueue.Task) {
	if t.Sign {
		s.sink.InsertInstantiation(t.Term.Rule, t.Wmes)
	} else {
		s.sink.RemoveInstantiation(t.Term.Rule, t.Wmes)
	}
	p.t += s.cost.TermTask
	s.finishTask(p)
}

// joinAcquire handles the line acquisition for a two-input node task
// under the configured scheme, then executes the activation.
func (s *sim) joinAcquire(p *proc, t *taskqueue.Task) {
	j := t.Join
	var hash uint64
	if t.Side == rete.Left {
		hash = j.LeftHash(t.Wmes)
	} else {
		hash = j.RightHash(t.Wmes[0])
	}
	idx := s.table.LineIndex(j, hash)
	if s.cfg.Scheme == parmatch.SchemeSimple {
		if !s.tryLine(p, &s.lines[idx], t.Side, idx, j.ID) {
			return
		}
		children, cost := s.execJoin(idx, t, hash, 0)
		s.lineHoldN[idx] += cost
		if cost > s.lineMaxHold[idx] {
			s.lineMaxHold[idx] = cost
		}
		s.lines[idx].freeAt = p.t + cost
		p.t = s.lines[idx].freeAt
		s.pushChildren(p, children)
		return
	}
	// MRSW gate.
	g := &s.gates[idx]
	if !s.tryLine(p, &g.gate, t.Side, idx, j.ID) {
		return
	}
	want := int32(1)
	if t.Side == rete.Right {
		want = 2
	}
	if g.flag != 0 && g.flag != want {
		// Wrong side: release the gate and put the token back at the
		// bottom of a queue.
		g.gate.freeAt = p.t + s.cost.GateHold
		p.t = g.gate.freeAt
		s.requeues++
		p.stage, p.stageN = "requeue", 0
		p.k = func(p *proc) { s.requeueStage(p, t) }
		return
	}
	g.flag = want
	g.count++
	g.gate.freeAt = p.t + s.cost.GateHold
	p.t = g.gate.freeAt
	p.stage, p.stageN = "mrswMod", 0
	p.k = func(p *proc) { s.mrswMod(p, t, g, idx, hash) }
}

func (s *sim) mrswMod(p *proc, t *taskqueue.Task, g *simMRSW, idx int, hash uint64) {
	if !s.tryLine(p, &g.mod, t.Side, idx, t.Join.ID) {
		return
	}
	entry, ref, res := s.table.UpdateOwn(idx, t.Join, t.Side, t.Sign, t.Wmes, hash, nil, nil)
	cost := s.cost.UpdateOwnBase + int64(res.OwnScanned)*s.cost.OwnScanEntry
	var children []*taskqueue.Task
	var searchCost int64
	if res.Proceeded {
		sr := s.table.SearchOpposite(idx, ref, t.Join, t.Side, t.Sign, t.Wmes, entry, nil, nil, func(cs bool, cw []*wm.WME) {
			children = append(children, s.childTasks(t.Join, cs, cw)...)
		})
		searchCost = int64(sr.OppExamined)*s.cost.OppExamine + int64(sr.Pairs)*s.cost.PairEmit
	}
	if t.Join.Negated && t.Side == rete.Left {
		// Mirrors parmatch: negated-node left activations keep the
		// modification lock through the count phase.
		cost += searchCost
		searchCost = 0
	}
	// The opposite-memory search of positive nodes runs outside the
	// modification lock.
	g.mod.freeAt = p.t + cost
	p.t = g.mod.freeAt + searchCost
	p.t += s.cost.MRSWExtra
	p.stage, p.stageN = "mrswExit", 0
	p.k = func(p *proc) { s.mrswExit(p, g, t.Side, children) }
}

func (s *sim) mrswExit(p *proc, g *simMRSW, side rete.Side, children []*taskqueue.Task) {
	if !s.tryLock(p, &g.gate, s.lineSpins(side)) {
		return
	}
	g.count--
	if g.count == 0 {
		g.flag = 0
	}
	g.gate.freeAt = p.t + s.cost.GateHold
	p.t = g.gate.freeAt
	s.pushChildren(p, children)
}

// execJoin runs a whole activation under the simple line lock and
// returns its children and its critical-section cost.
func (s *sim) execJoin(idx int, t *taskqueue.Task, hash uint64, extra int64) ([]*taskqueue.Task, int64) {
	entry, ref, res := s.table.UpdateOwn(idx, t.Join, t.Side, t.Sign, t.Wmes, hash, nil, nil)
	cost := extra + s.cost.UpdateOwnBase + int64(res.OwnScanned)*s.cost.OwnScanEntry
	var children []*taskqueue.Task
	exam := int64(0)
	if res.Proceeded {
		sr := s.table.SearchOpposite(idx, ref, t.Join, t.Side, t.Sign, t.Wmes, entry, nil, nil, func(cs bool, cw []*wm.WME) {
			children = append(children, s.childTasks(t.Join, cs, cw)...)
		})
		cost += int64(sr.OppExamined)*s.cost.OppExamine + int64(sr.Pairs)*s.cost.PairEmit
		exam = int64(sr.OppExamined)
	}
	id := t.Join.ID
	s.nodeActs[id]++
	s.nodeHold[id] += cost
	if cost > s.nodeMaxHold[id] {
		s.nodeMaxHold[id] = cost
	}
	if int64(res.OwnScanned) > s.nodeMaxScan[id] {
		s.nodeMaxScan[id] = int64(res.OwnScanned)
	}
	if exam > s.nodeMaxExam[id] {
		s.nodeMaxExam[id] = exam
	}
	return children, cost
}

func (s *sim) childTasks(j *rete.JoinNode, sign bool, wmes []*wm.WME) []*taskqueue.Task {
	var out []*taskqueue.Task
	for _, succ := range s.net.SuccsOf(j) {
		out = append(out, &taskqueue.Task{Join: succ, Side: rete.Left, Sign: sign, Wmes: wmes})
	}
	for _, term := range s.net.TermsOf(j) {
		out = append(out, &taskqueue.Task{Term: term, Sign: sign, Wmes: wmes})
	}
	return out
}

// pushChildren schedules the task's output tokens one queue operation at
// a time, then finishes the task.
func (s *sim) pushChildren(p *proc, children []*taskqueue.Task) {
	if len(children) == 0 {
		s.finishTask(p)
		return
	}
	if s.cfg.Hardware {
		// Hardware scheduler: all children dispatched in constant time
		// each, no lock traffic.
		q := &s.qs[0]
		q.tasks = append(q.tasks, children...)
		s.taskCount += int64(len(children))
		p.t += int64(len(children)) * s.cost.HWSchedOp
		s.finishTask(p)
		return
	}
	idx := 0
	var stage func(p *proc)
	stage = func(p *proc) {
		q := &s.qs[p.rr%len(s.qs)]
		if !s.tryLock(p, &q.lock, &s.queueSpins) {
			return
		}
		s.queueAcquires++
		p.rr++
		q.tasks = append(q.tasks, children[idx])
		s.taskCount++
		q.lock.freeAt = p.t + s.cost.QueueHold
		p.t = q.lock.freeAt + s.cost.TaskCountUpd
		idx++
		if idx == len(children) {
			s.finishTask(p)
		}
	}
	p.k = stage
}

// requeueStage puts a wrong-side MRSW token back at the bottom of a
// queue without touching TaskCount (it is still pending).
func (s *sim) requeueStage(p *proc, t *taskqueue.Task) {
	if s.cfg.Hardware {
		s.requeueInsert(&s.qs[0], t)
		p.t += s.cost.HWSchedOp + s.cost.RequeueCost
		p.k = nil
		return
	}
	q := &s.qs[p.rr%len(s.qs)]
	if !s.tryLock(p, &q.lock, &s.queueSpins) {
		return
	}
	s.queueAcquires++
	p.rr++
	s.requeueInsert(q, t)
	q.lock.freeAt = p.t + s.cost.QueueHold
	p.t = q.lock.freeAt + s.cost.RequeueCost
	p.k = nil // back to polling; no TaskCount change, no activation
}

// requeueInsert places a re-queued token where it will be retried last
// under the active discipline: the bottom of a LIFO stack, the back of
// a FIFO queue.
func (s *sim) requeueInsert(q *simQueue, t *taskqueue.Task) {
	if s.cfg.FIFO {
		q.tasks = append(q.tasks, t)
		return
	}
	q.tasks = append(q.tasks, nil)
	copy(q.tasks[1:], q.tasks)
	q.tasks[0] = t
}

// finishTask decrements TaskCount and returns the processor to polling.
func (s *sim) finishTask(p *proc) {
	p.t += s.cost.TaskCountUpd
	s.taskCount--
	s.activations++
	if s.taskCount == 0 {
		s.zeroAt = p.t
	}
	p.k = nil
}

func (s *sim) lineSpins(side rete.Side) *int64 {
	if side == rete.Left {
		return &s.lineSpinsLeft
	}
	return &s.lineSpinsRight
}

// tryLine is tryLock for hash-table line locks, with per-side and
// per-line contention accounting.
func (s *sim) tryLine(p *proc, l *simLock, side rete.Side, idx, nodeID int) bool {
	var spins int64
	ok := s.tryLock(p, l, &spins)
	*s.lineSpins(side) += spins
	s.lineSpinN[idx] += spins
	if ok {
		if side == rete.Left {
			s.lineAcqLeft++
		} else {
			s.lineAcqRight++
		}
		s.profileLine(idx, nodeID, 0)
	}
	return ok
}
