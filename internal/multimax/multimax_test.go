package multimax_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

func compile(t *testing.T, src string) (*ops5.Program, *rete.Network) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, net
}

// seqFirings runs the reference sequential matcher.
func seqFirings(t *testing.T, src string) []string {
	t.Helper()
	prog, net := compile(t, src)
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: 1000, RecordFiring: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]string, len(res.Firings))
	for i, f := range res.Firings {
		out[i] = fmt.Sprintf("%s@%d", f.Rule, f.Cycle)
	}
	return out
}

func simFirings(t *testing.T, src string, cfg multimax.Config) *multimax.Result {
	t.Helper()
	prog, net := compile(t, src)
	cfg.MaxCycles = 1000
	res, err := multimax.Simulate(prog, net, cfg)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res
}

func workload(n int) string {
	var b strings.Builder
	b.WriteString("(literalize item kind val)\n(literalize stage num)\n(literalize done num)\n")
	fmt.Fprintf(&b, `
(p pair
  (stage ^num {<n> < %d})
  (item ^kind a ^val <v>)
  (item ^kind b ^val <v>)
-->
  (make done ^num <n>)
  (modify 1 ^num (compute <n> + 1)))
(p cleanup
  (stage ^num <n>)
  (done ^num {<d> < <n>})
-->
  (remove 2))
(p finish
  (stage ^num %d)
  - (done ^num <m>)
-->
  (halt))
(make stage ^num 0)
`, n, n)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "(make item ^kind a ^val %d)\n(make item ^kind b ^val %d)\n", i, i)
	}
	return b.String()
}

// TestSimulatorMatchesSequential checks that every simulated machine
// configuration produces the exact firing sequence of the sequential
// matcher: the simulation must change only timing, never results.
func TestSimulatorMatchesSequential(t *testing.T) {
	src := workload(20)
	want := seqFirings(t, src)
	if len(want) == 0 {
		t.Fatal("workload produced no firings")
	}
	cfgs := []multimax.Config{
		{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple},
		{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true},
		{Procs: 5, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true},
		{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true},
		{Procs: 5, Queues: 2, Scheme: parmatch.SchemeMRSW, Pipelined: true},
		{Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		name := fmt.Sprintf("p%dq%d%v-pipe%v", cfg.Procs, cfg.Queues, cfg.Scheme, cfg.Pipelined)
		t.Run(name, func(t *testing.T) {
			res := simFirings(t, src, cfg)
			if len(res.FiringLog) != len(want) {
				t.Fatalf("firings: got %d want %d\ngot:  %v\nwant: %v",
					len(res.FiringLog), len(want), res.FiringLog, want)
			}
			for i := range want {
				if res.FiringLog[i] != want[i] {
					t.Fatalf("firing %d: got %s want %s", i, res.FiringLog[i], want[i])
				}
			}
			if !res.Halted {
				t.Error("expected halted run")
			}
		})
	}
}

// TestSimulatorIsDeterministic re-runs one configuration and demands
// bit-identical timing and contention results.
func TestSimulatorIsDeterministic(t *testing.T) {
	src := workload(15)
	cfg := multimax.Config{Procs: 7, Queues: 2, Scheme: parmatch.SchemeMRSW, Pipelined: true}
	a := simFirings(t, src, cfg)
	b := simFirings(t, src, cfg)
	if a.MatchInstr != b.MatchInstr || a.TotalInstr != b.TotalInstr {
		t.Fatalf("timing differs: %d/%d vs %d/%d", a.MatchInstr, a.TotalInstr, b.MatchInstr, b.TotalInstr)
	}
	if a.Contention != b.Contention {
		t.Fatalf("contention differs: %+v vs %+v", a.Contention, b.Contention)
	}
}

// TestSimulatorSpeedsUpWithProcs: more match processes must not slow
// the match down on a parallel-friendly workload, and should show real
// speed-up by 5 processes.
func TestSimulatorSpeedsUpWithProcs(t *testing.T) {
	src := workload(25)
	base := simFirings(t, src, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple})
	par := simFirings(t, src, multimax.Config{Procs: 5, Queues: 4, Scheme: parmatch.SchemeSimple, Pipelined: true})
	if base.MatchInstr == 0 {
		t.Fatal("baseline match time is zero")
	}
	speedup := float64(base.MatchInstr) / float64(par.MatchInstr)
	if speedup < 1.5 {
		t.Errorf("expected >1.5x speedup with 5 procs, got %.2f (base=%d par=%d)",
			speedup, base.MatchInstr, par.MatchInstr)
	}
}
