package rhs_test

import (
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/wm"
)

// fixture compiles a rule and returns everything needed to execute its
// RHS against a synthetic instantiation.
func fixture(t *testing.T, src string) (*ops5.Program, *rete.CompiledRule, *rhs.Compiled) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c, err := rhs.Compile(prog, net.Rules[0])
	if err != nil {
		t.Fatalf("rhs compile: %v", err)
	}
	return prog, net.Rules[0], c
}

// env collects the WM changes an execution produces.
type capture struct {
	makes    [][]wm.Value
	removes  []*wm.WME
	modifies []struct {
		old    *wm.WME
		fields []wm.Value
	}
	halted bool
	out    strings.Builder
}

func (c *capture) env(prog *ops5.Program) *rhs.Env {
	return &rhs.Env{
		Prog: prog,
		Out:  &c.out,
		Make: func(f []wm.Value) { c.makes = append(c.makes, f) },
		Remove: func(w *wm.WME) {
			c.removes = append(c.removes, w)
		},
		Modify: func(old *wm.WME, f []wm.Value) {
			c.modifies = append(c.modifies, struct {
				old    *wm.WME
				fields []wm.Value
			}{old, f})
		},
		Halt:   func() { c.halted = true },
		Accept: func() wm.Value { return wm.Int(99) },
	}
}

func wmeOf(prog *ops5.Program, class string, vals ...wm.Value) *wm.WME {
	id := prog.Symbols.Intern(class)
	fields := append([]wm.Value{wm.Sym(id)}, vals...)
	return &wm.WME{TimeTag: 1, Fields: fields}
}

func TestMakeWithBindingsAndCompute(t *testing.T) {
	prog, _, c := fixture(t, `
(literalize in a b)
(literalize out total label)
(p r (in ^a <x> ^b <y>) --> (make out ^total (compute <x> + <y> * 2) ^label widget))
`)
	cap := &capture{}
	w := wmeOf(prog, "in", wm.Int(3), wm.Int(4))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if len(cap.makes) != 1 {
		t.Fatalf("makes = %d", len(cap.makes))
	}
	f := cap.makes[0]
	// compute is right-associative: 3 + (4*2) = 11.
	if !f[1].Equal(wm.Int(11)) {
		t.Errorf("total = %#v, want 11", f[1])
	}
	lbl, _ := prog.Symbols.Lookup("widget")
	if !f[2].Equal(wm.Sym(lbl)) {
		t.Errorf("label = %#v", f[2])
	}
}

func TestModifyPreservesUntouchedFields(t *testing.T) {
	prog, _, c := fixture(t, `
(literalize thing a b c)
(p r (thing ^a <x>) --> (modify 1 ^b 42))
`)
	cap := &capture{}
	w := wmeOf(prog, "thing", wm.Int(1), wm.Int(2), wm.Int(3))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if len(cap.modifies) != 1 {
		t.Fatalf("modifies = %d", len(cap.modifies))
	}
	f := cap.modifies[0].fields
	if !f[1].Equal(wm.Int(1)) || !f[2].Equal(wm.Int(42)) || !f[3].Equal(wm.Int(3)) {
		t.Errorf("fields = %#v, want a=1 b=42 c=3", f)
	}
	if cap.modifies[0].old != w {
		t.Error("modify must reference the matched WME")
	}
}

func TestModifyReadsOldBindingsNotNewWM(t *testing.T) {
	// All modifies in one RHS read the instantiation's original values —
	// the cube rotation rules depend on this.
	prog, _, c := fixture(t, `
(literalize pairx a b)
(p r (pairx ^a <x> ^b <y>) --> (modify 1 ^a <y>) (modify 1 ^b <x>))
`)
	cap := &capture{}
	w := wmeOf(prog, "pairx", wm.Int(10), wm.Int(20))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	second := cap.modifies[1].fields
	// The second modify's ^b <x> must see the ORIGINAL a (10), even
	// though the first modify changed a to 20.
	if !second[2].Equal(wm.Int(10)) {
		t.Errorf("swap read a new value: %#v", second[2])
	}
}

func TestRemoveTargetsCorrectCE(t *testing.T) {
	prog, _, c := fixture(t, `
(p r (a ^x 1) (b ^y 2) --> (remove 2))
`)
	cap := &capture{}
	wa := wmeOf(prog, "a", wm.Int(1))
	wb := wmeOf(prog, "b", wm.Int(2))
	if _, err := rhs.Exec(c, []*wm.WME{wa, wb}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if len(cap.removes) != 1 || cap.removes[0] != wb {
		t.Fatalf("removed %v, want the second CE's WME", cap.removes)
	}
}

func TestBindAndUse(t *testing.T) {
	prog, _, c := fixture(t, `
(literalize n v)
(literalize outx r)
(p r (n ^v <x>) --> (bind <y> (compute <x> * <x>)) (make outx ^r <y>))
`)
	cap := &capture{}
	w := wmeOf(prog, "n", wm.Int(7))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if !cap.makes[0][1].Equal(wm.Int(49)) {
		t.Errorf("bound square = %#v", cap.makes[0][1])
	}
}

func TestWriteFormatting(t *testing.T) {
	prog, _, c := fixture(t, `
(p r (a ^x <v>) --> (write hello <v> (crlf) (tabto 5) end))
`)
	cap := &capture{}
	w := wmeOf(prog, "a", wm.Int(3))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	got := cap.out.String()
	if !strings.Contains(got, "hello 3\n") {
		t.Errorf("write output %q missing hello 3\\n", got)
	}
	if !strings.Contains(got, "    end") {
		t.Errorf("tabto did not pad: %q", got)
	}
}

func TestHalt(t *testing.T) {
	prog, _, c := fixture(t, `(p r (a ^x 1) --> (halt))`)
	cap := &capture{}
	w := wmeOf(prog, "a", wm.Int(1))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if !cap.halted {
		t.Error("halt not signalled")
	}
}

func TestAccept(t *testing.T) {
	prog, _, c := fixture(t, `
(literalize outx r)
(p r (a ^x 1) --> (make outx ^r (accept)))
`)
	cap := &capture{}
	w := wmeOf(prog, "a", wm.Int(1))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err != nil {
		t.Fatal(err)
	}
	if !cap.makes[0][1].Equal(wm.Int(99)) {
		t.Errorf("accept value = %#v", cap.makes[0][1])
	}
}

func TestDivisionByZeroIsError(t *testing.T) {
	prog, _, c := fixture(t, `
(literalize outx r)
(p r (a ^x <v>) --> (make outx ^r (compute 1 // <v>)))
`)
	cap := &capture{}
	w := wmeOf(prog, "a", wm.Int(0))
	if _, err := rhs.Exec(c, []*wm.WME{w}, cap.env(prog)); err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestComputeOps(t *testing.T) {
	cases := []struct {
		op   byte
		a, b int64
		want int64
	}{
		{'+', 7, 3, 10}, {'-', 7, 3, 4}, {'*', 7, 3, 21}, {'/', 7, 3, 2}, {'%', 7, 3, 1},
	}
	for _, c := range cases {
		got, err := rhs.ComputeOp(c.op, wm.Int(c.a), wm.Int(c.b))
		if err != nil {
			t.Fatalf("%c: %v", c.op, err)
		}
		if !got.Equal(wm.Int(c.want)) {
			t.Errorf("%d %c %d = %#v, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
	// Mixed int/float promotes to float.
	got, err := rhs.ComputeOp('+', wm.Int(1), wm.Float(0.5))
	if err != nil || !got.Equal(wm.Float(1.5)) {
		t.Errorf("1 + 0.5 = %#v (%v)", got, err)
	}
	if _, err := rhs.ComputeOp('%', wm.Float(1), wm.Float(2)); err == nil {
		t.Error("float modulus should error")
	}
}
