// Package rhs compiles production right-hand sides into threaded code —
// flat instruction vectors interpreted at run time, as in the paper
// (§3.3): RHS evaluation is not the bottleneck, so the simpler-to-compile
// threaded form is fast enough. Only the control process executes RHS
// code.
package rhs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// Op is a threaded-code opcode.
type Op uint8

// Opcodes.
const (
	OpPushConst Op = iota
	OpPushBinding
	OpPushLocal
	OpCompute
	OpPushCrlf
	OpPushTabto
	OpPushAccept
	OpMake
	OpModify
	OpRemove
	OpBind
	OpWrite
	OpHalt
	OpPushAcceptLine // pushes a whole line of accepted values
)

// Instr is one threaded-code instruction. A and B are operand slots
// whose meaning depends on the opcode (documented at each use).
type Instr struct {
	Op     Op
	A, B   int
	Val    wm.Value
	Class  symbols.ID
	Fields []int // make/modify: destination field per popped value
}

// Compiled is the threaded code of one production's RHS, plus the
// static effect summary the engine's speculative act phase plans with:
// threaded code has no control flow, so which WME positions a firing
// removes — and whether it creates elements or consumes input — is
// known at compile time.
type Compiled struct {
	Rule   *rete.CompiledRule
	Code   []Instr
	Locals int

	// RemovePos lists the distinct instantiation WME positions this RHS
	// removes (OpRemove operands; OpModify is remove+make and disqualifies
	// GroupSafe instead). The firing's write set is exactly the time tags
	// of these positions.
	RemovePos []int
	// GroupSafe marks an RHS whose effects can be staged into a delta
	// buffer and committed (or discarded) atomically: removals, writes,
	// binds and halt only. Makes and modifies allocate fresh time tags —
	// speculating those would entangle the tag counter — and accept
	// consumes external input, so any of them forces the serial path.
	GroupSafe bool
	// HasHalt marks an RHS containing (halt); such a firing always ends
	// its group, since no later instantiation would have fired serially.
	HasHalt bool
	// Accepts and AcceptLines count the (accept) and (acceptline) reads
	// this RHS performs. Threaded code has no control flow, so the counts
	// are exact; the engine uses them to ask its IO for readiness before
	// firing, suspending cleanly instead of blocking mid-RHS.
	Accepts     int
	AcceptLines int
}

// Env provides the runtime services threaded code calls back into. The
// engine implements the working-memory changes so it can feed the match
// processes as each change is computed (the pipelining of §3.1).
type Env struct {
	Prog   *ops5.Program
	Out    io.Writer
	Accept func() wm.Value
	// AcceptLine reads one whole input line as a value vector, for
	// (acceptline) splicing into a vector attribute.
	AcceptLine func() []wm.Value
	// Make asserts a new WME with the given field vector.
	Make func(fields []wm.Value)
	// Remove retracts a WME that matched the firing instantiation.
	Remove func(w *wm.WME)
	// Modify retracts w and asserts a WME with the new field vector
	// (OPS5 treats modify as delete + add with a fresh time tag).
	Modify func(w *wm.WME, fields []wm.Value)
	// Halt stops the recognize-act loop after this RHS completes.
	Halt func()
}

// Compile translates a production's actions into threaded code, resolving
// variables against the rule's Rete bindings and bind-created locals.
func Compile(prog *ops5.Program, cr *rete.CompiledRule) (*Compiled, error) {
	c := &compiler{prog: prog, cr: cr, locals: map[string]int{}}
	for _, act := range cr.Rule.Actions {
		if err := c.action(act); err != nil {
			return nil, fmt.Errorf("production %s: %w", cr.Rule.Name, err)
		}
	}
	out := &Compiled{Rule: cr, Code: c.code, Locals: len(c.locals), GroupSafe: true}
	for i := range out.Code {
		switch in := &out.Code[i]; in.Op {
		case OpMake, OpModify:
			out.GroupSafe = false
		case OpPushAccept:
			out.GroupSafe = false
			out.Accepts++
		case OpPushAcceptLine:
			out.GroupSafe = false
			out.AcceptLines++
		case OpHalt:
			out.HasHalt = true
		case OpRemove:
			dup := false
			for _, p := range out.RemovePos {
				if p == in.B {
					dup = true
					break
				}
			}
			if !dup {
				out.RemovePos = append(out.RemovePos, in.B)
			}
		}
	}
	return out, nil
}

type compiler struct {
	prog   *ops5.Program
	cr     *rete.CompiledRule
	code   []Instr
	locals map[string]int
}

func (c *compiler) emit(i Instr) { c.code = append(c.code, i) }

// expr emits code leaving one value on the stack.
func (c *compiler) expr(e *ops5.Expr) error {
	switch e.Kind {
	case ops5.ExprConst:
		c.emit(Instr{Op: OpPushConst, Val: e.Const})
	case ops5.ExprVar:
		if slot, ok := c.locals[e.Var]; ok {
			c.emit(Instr{Op: OpPushLocal, A: slot})
			return nil
		}
		ref, ok := c.cr.Bindings[e.Var]
		if !ok {
			return fmt.Errorf("variable <%s> unbound in RHS", e.Var)
		}
		// A: WME position in the instantiation, B: field index.
		c.emit(Instr{Op: OpPushBinding, A: ref.Pos, B: ref.Field})
	case ops5.ExprCompute:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCompute, A: int(e.Op)})
	case ops5.ExprCrlf:
		c.emit(Instr{Op: OpPushCrlf})
	case ops5.ExprTabto:
		c.emit(Instr{Op: OpPushTabto, A: int(e.Const.Num)})
	case ops5.ExprAccept:
		c.emit(Instr{Op: OpPushAccept})
	case ops5.ExprAcceptLine:
		c.emit(Instr{Op: OpPushAcceptLine})
	default:
		return fmt.Errorf("unsupported expression kind %d", e.Kind)
	}
	return nil
}

func (c *compiler) action(act *ops5.Action) error {
	switch act.Kind {
	case ops5.ActMake:
		fields := make([]int, 0, len(act.Sets))
		for _, s := range act.Sets {
			if err := c.expr(s.Expr); err != nil {
				return err
			}
			fields = append(fields, s.Field)
		}
		// A: number of pushed values; Fields: their destinations.
		c.emit(Instr{Op: OpMake, A: len(fields), Class: act.Class, Fields: fields})
	case ops5.ActModify:
		fields := make([]int, 0, len(act.Sets))
		for _, s := range act.Sets {
			if err := c.expr(s.Expr); err != nil {
				return err
			}
			fields = append(fields, s.Field)
		}
		pos := c.cr.CEPos[act.CEIndex-1]
		// A: value count, B: WME position of the modified CE.
		c.emit(Instr{Op: OpModify, A: len(fields), B: pos, Fields: fields})
	case ops5.ActRemove:
		c.emit(Instr{Op: OpRemove, B: c.cr.CEPos[act.CEIndex-1]})
	case ops5.ActBind:
		if err := c.expr(act.Args[0]); err != nil {
			return err
		}
		slot, ok := c.locals[act.Var]
		if !ok {
			slot = len(c.locals)
			c.locals[act.Var] = slot
		}
		c.emit(Instr{Op: OpBind, A: slot})
	case ops5.ActWrite:
		for _, a := range act.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(Instr{Op: OpWrite, A: len(act.Args)})
	case ops5.ActHalt:
		c.emit(Instr{Op: OpHalt})
	default:
		return fmt.Errorf("unsupported action kind %d", act.Kind)
	}
	return nil
}

// rval is a stack slot: a value, a whole accepted line of values, or a
// write-formatting directive.
type rval struct {
	v      wm.Value
	line   []wm.Value // (acceptline) result, spliced by make/modify/write
	isLine bool
	crlf   bool
	tabto  int // > 0: tab to column
}

// first collapses a slot to a single value: a line contributes its first
// value (or nil when empty), matching OPS5's scalar coercion.
func (r rval) first() wm.Value {
	if r.isLine {
		if len(r.line) == 0 {
			return wm.Nil
		}
		return r.line[0]
	}
	return r.v
}

// Exec interprets the threaded code for one firing. wmes is the
// instantiation's WME list. It returns the number of instructions
// interpreted (the simulator's RHS cost driver).
func Exec(c *Compiled, wmes []*wm.WME, env *Env) (int, error) {
	var stack []rval
	locals := make([]wm.Value, c.Locals)
	pop := func() rval {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return r
	}
	for pc := range c.Code {
		in := &c.Code[pc]
		switch in.Op {
		case OpPushConst:
			stack = append(stack, rval{v: in.Val})
		case OpPushBinding:
			stack = append(stack, rval{v: wmes[in.A].Field(in.B)})
		case OpPushLocal:
			stack = append(stack, rval{v: locals[in.A]})
		case OpCompute:
			r, l := pop(), pop()
			v, err := compute(byte(in.A), l.v, r.v)
			if err != nil {
				return pc, fmt.Errorf("production %s: %w", c.Rule.Rule.Name, err)
			}
			stack = append(stack, rval{v: v})
		case OpPushCrlf:
			stack = append(stack, rval{crlf: true})
		case OpPushTabto:
			stack = append(stack, rval{tabto: in.A})
		case OpPushAccept:
			stack = append(stack, rval{v: env.Accept()})
		case OpPushAcceptLine:
			stack = append(stack, rval{line: env.AcceptLine(), isLine: true})
		case OpMake:
			fields := buildFields(env.Prog, in.Class, nil, in, &stack)
			env.Make(fields)
		case OpModify:
			old := wmes[in.B]
			fields := buildFields(env.Prog, old.Class(), old, in, &stack)
			env.Modify(old, fields)
		case OpRemove:
			env.Remove(wmes[in.B])
		case OpBind:
			locals[in.A] = pop().first()
		case OpWrite:
			args := stack[len(stack)-in.A:]
			stack = stack[:len(stack)-in.A]
			writeArgs(env, args)
		case OpHalt:
			env.Halt()
		}
	}
	return len(c.Code), nil
}

// buildFields assembles the field vector for a make or modify: the class
// layout's width, seeded from old for modify, with the popped values
// stored at their destination fields. Vector attributes can extend the
// vector beyond the literalized width: explicit continuation values land
// past NumFields, and an (acceptline) splices its whole line starting at
// its destination field.
func buildFields(prog *ops5.Program, class symbols.ID, old *wm.WME, in *Instr, stack *[]rval) []wm.Value {
	n := prog.ClassOf(class).NumFields()
	if old != nil && len(old.Fields) > n {
		n = len(old.Fields)
	}
	vals := (*stack)[len(*stack)-in.A:]
	*stack = (*stack)[:len(*stack)-in.A]
	for i, f := range in.Fields {
		end := f + 1
		if vals[i].isLine {
			end = f + len(vals[i].line)
		}
		if end > n {
			n = end
		}
	}
	fields := make([]wm.Value, n)
	fields[0] = wm.Sym(class)
	if old != nil {
		copy(fields, old.Fields)
	}
	for i, f := range in.Fields {
		if vals[i].isLine {
			for k, v := range vals[i].line {
				fields[f+k] = v
			}
			continue
		}
		fields[f] = vals[i].v
	}
	return fields
}

func writeArgs(env *Env, args []rval) {
	if env.Out == nil {
		return
	}
	col := 0
	var b strings.Builder
	for i, a := range args {
		switch {
		case a.crlf:
			b.WriteByte('\n')
			col = 0
		case a.tabto > 0:
			for col < a.tabto-1 {
				b.WriteByte(' ')
				col++
			}
		case a.isLine:
			for j, v := range a.line {
				if (i > 0 || j > 0) && col > 0 {
					b.WriteByte(' ')
					col++
				}
				s := v.String(env.Prog.Symbols)
				b.WriteString(s)
				col += len(s)
			}
		default:
			if i > 0 && col > 0 {
				b.WriteByte(' ')
				col++
			}
			s := a.v.String(env.Prog.Symbols)
			b.WriteString(s)
			col += len(s)
		}
	}
	io.WriteString(env.Out, b.String())
}

// ComputeOp applies one OPS5 compute operator to two values; the engine
// uses it to fold constant expressions in top-level makes.
func ComputeOp(op byte, l, r wm.Value) (wm.Value, error) { return compute(op, l, r) }

func compute(op byte, l, r wm.Value) (wm.Value, error) {
	if !l.IsNumber() || !r.IsNumber() {
		return wm.Nil, fmt.Errorf("compute on non-numeric value")
	}
	if l.Kind == wm.KindInt && r.Kind == wm.KindInt {
		a, b := l.Num, r.Num
		switch op {
		case '+':
			return wm.Int(a + b), nil
		case '-':
			return wm.Int(a - b), nil
		case '*':
			return wm.Int(a * b), nil
		case '/':
			if b == 0 {
				return wm.Nil, fmt.Errorf("division by zero")
			}
			return wm.Int(a / b), nil
		case '%':
			if b == 0 {
				return wm.Nil, fmt.Errorf("modulus by zero")
			}
			return wm.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case '+':
		return wm.Float(a + b), nil
	case '-':
		return wm.Float(a - b), nil
	case '*':
		return wm.Float(a * b), nil
	case '/':
		if b == 0 {
			return wm.Nil, fmt.Errorf("division by zero")
		}
		return wm.Float(a / b), nil
	case '%':
		return wm.Nil, fmt.Errorf("modulus on floats")
	}
	return wm.Nil, fmt.Errorf("unknown compute operator %q", op)
}
