package lispemu_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/lispemu"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

func run(t *testing.T, src string, interp bool) *engine.Result {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	var m engine.Matcher
	if interp {
		m = lispemu.New(prog, net, cs)
	} else {
		m = seqmatch.New(net, seqmatch.VS2, 0, cs)
	}
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: 100000, RecordFiring: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestInterpreterMatchesCompiled: the interpreted matcher must produce
// exactly the compiled matchers' firings on all predicate kinds.
func TestInterpreterMatchesCompiled(t *testing.T) {
	src := `
(literalize c a b)
(literalize out v)
(p eq    (c ^a <x> ^b <x>) --> (make out ^v eq))
(p ne    (c ^a <x> ^b <> <x>) --> (make out ^v ne))
(p gt    (c ^a <x> ^b > <x>) --> (make out ^v gt))
(p le    (c ^a <x> ^b <= <x>) --> (make out ^v le))
(p typ   (c ^a <x> ^b <=> <x>) --> (make out ^v typ))
(p disj  (c ^a << 1 3 >>) --> (make out ^v disj))
(p neg   (c ^a 7) - (c ^b 7) --> (make out ^v neg))
(make c ^a 1 ^b 1)
(make c ^a 2 ^b 5)
(make c ^a 3 ^b hello)
(make c ^a 7 ^b 0)
`
	want := run(t, src, false)
	got := run(t, src, true)
	if len(got.Firings) != len(want.Firings) {
		t.Fatalf("firings %d want %d", len(got.Firings), len(want.Firings))
	}
	for i := range want.Firings {
		if got.Firings[i].Rule != want.Firings[i].Rule {
			t.Fatalf("firing %d: %s want %s", i, got.Firings[i].Rule, want.Firings[i].Rule)
		}
	}
}

// TestInterpreterIsSlower verifies the performance relationship the
// paper's Table 4-4 rests on, at a coarse threshold that holds on any
// host: the interpreted matcher must be at least 2x slower than vs2 on
// a match-heavy workload.
func TestInterpreterIsSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	src := workload.Rubik(20)
	matchTime := func(interp bool) time.Duration {
		prog, err := ops5.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		net, err := rete.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		cs := conflict.NewSet()
		var m engine.Matcher
		if interp {
			m = lispemu.New(prog, net, cs)
		} else {
			m = seqmatch.New(net, seqmatch.VS2, 0, cs)
		}
		e, err := engine.New(prog, net, cs, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(engine.Options{MaxCycles: 100000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MatchTime
	}
	compiled := matchTime(false)
	interp := matchTime(true)
	if interp < 2*compiled {
		t.Errorf("interpreted match %v not clearly slower than compiled %v", interp, compiled)
	}
	fmt.Printf("interp/compiled match time = %.1fx\n", float64(interp)/float64(compiled))
}

// TestInterpreterCountsActivations sanity-checks the parity counter.
func TestInterpreterCountsActivations(t *testing.T) {
	src := `
(p r (a ^x <v>) (b ^y <v>) --> (halt))
(make a ^x 1)
(make b ^y 1)
`
	prog, _ := ops5.Parse(src)
	net, _ := rete.Compile(prog)
	cs := conflict.NewSet()
	m := lispemu.New(prog, net, cs)
	e, _ := engine.New(prog, net, cs, m, nil)
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if m.Activations == 0 {
		t.Fatal("no activations counted")
	}
}
