// Package lispemu is the stand-in for the Franz Lisp OPS5 interpreter
// the paper compares against in Table 4-4. It computes exactly the same
// match as the optimized matchers — it walks the same compiled network
// topology — but evaluates every node interpretively, the way the Lisp
// system did: attribute values are fetched through per-element
// string-keyed association maps built on the fly (consing), predicates
// are dispatched by name, values are boxed through interface{}, and node
// memories are plain linear lists. The 10-20x gap between this matcher
// and vs2 is the paper's optimized-vs-interpreted ratio, reproduced
// within one codebase.
package lispemu

import (
	"fmt"
	"strconv"

	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// box is a Lisp-style boxed value.
type box any

// entry is a token in a node memory, with the negation join count.
type entry struct {
	wmes     []*wm.WME
	negCount int
}

// Matcher is the interpreted matcher. It implements engine.Matcher.
type Matcher struct {
	Net  *rete.Network
	Prog *ops5.Program
	Sink rete.TerminalSink
	// mems[side][joinID] is the node's memory list.
	mems [2][][]*entry
	// boxed holds each element's association map, built once when the
	// element enters the system — Lisp OPS5 stores working-memory
	// elements as association structures, paying a string-keyed lookup
	// on every attribute access.
	boxed map[*wm.WME]map[string]box
	// Activations counts node activations, for parity checks with the
	// optimized matchers.
	Activations int64
	// Ops counts interpreted work items — node dispatches, boxed-value
	// predicate applications, constant-test evaluations, and string-keyed
	// attribute fetches. It is deterministic for a given program, so the
	// table tests use it (against vs2's stats.Match counters) as the
	// load-independent stand-in for the wall-clock Table 4-4 ratio.
	Ops int64
	// lastToken anchors dispatch's consed token so the allocation is
	// real work, as it is in the interpreter being modelled.
	lastToken []box
}

// New builds the interpreted matcher.
func New(prog *ops5.Program, net *rete.Network, sink rete.TerminalSink) *Matcher {
	m := &Matcher{Net: net, Prog: prog, Sink: sink, boxed: make(map[*wm.WME]map[string]box)}
	m.mems[0] = make([][]*entry, net.NumJoinIDs())
	m.mems[1] = make([][]*entry, net.NumJoinIDs())
	return m
}

// boxWME returns the association map for a working-memory element,
// building it on first encounter.
func (m *Matcher) boxWME(w *wm.WME) map[string]box {
	m.Ops++
	if attrs, ok := m.boxed[w]; ok {
		return attrs
	}
	attrs := make(map[string]box, len(w.Fields))
	attrs["class"] = m.Prog.Symbols.Name(w.Class())
	for i := 1; i < len(w.Fields); i++ {
		attrs[m.fieldKey(w.Class(), i)] = boxValue(m.Prog, w.Fields[i])
	}
	m.boxed[w] = attrs
	return attrs
}

// fieldKey is the association-map key for a field: the attribute name
// when the field has one, a positional key for the unnamed continuation
// fields past a vector attribute. A lookup miss (a test on a field
// beyond the element's length) yields the nil box, exactly what
// boxValue produces for wm.Nil — matching the positional matchers'
// out-of-range Field() behaviour.
func (m *Matcher) fieldKey(class symbols.ID, field int) string {
	if name := m.Prog.AttrName(class, field); name != "" {
		return name
	}
	return "#" + strconv.Itoa(field)
}

// dispatch models the interpreter's per-node-activation overhead: the
// Lisp system walks a node description list and conses a fresh token
// structure for every activation, where the compiled matchers fall
// through straight-line code. The allocation and the string switch are
// the point — this is the "interpretation overhead of nodes" the paper
// eliminates by compiling to machine code (§2.2).
func (m *Matcher) dispatch(kind string, wmes []*wm.WME) []box {
	m.Ops++
	token := make([]box, 0, len(wmes)+1)
	switch kind {
	case "and":
		token = append(token, "and-node")
	case "not":
		token = append(token, "not-node")
	case "alpha":
		token = append(token, "alpha-node")
	case "term":
		token = append(token, "terminal-node")
	default:
		token = append(token, "unknown")
	}
	for _, w := range wmes {
		token = append(token, m.boxWME(w))
	}
	return token
}

func boxValue(prog *ops5.Program, v wm.Value) box {
	switch v.Kind {
	case wm.KindNil:
		return nil
	case wm.KindSym:
		return prog.Symbols.Name(v.Sym)
	case wm.KindInt:
		return v.Num
	default:
		return v.F
	}
}

// boxedEqual compares two boxed values the way an interpreter would:
// type dispatch at run time.
func boxedEqual(a, b box) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case string:
		s, ok := b.(string)
		return ok && s == x
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
		return false
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		}
		return false
	}
	return false
}

func boxedNumber(a box) (float64, bool) {
	switch x := a.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// applyPred dispatches a predicate by its printed name — the
// interpretation overhead the compiled matchers eliminate.
func applyPred(pred string, v, o box) bool {
	switch pred {
	case "=":
		return boxedEqual(v, o)
	case "<>":
		return !boxedEqual(v, o)
	case "<", "<=", ">", ">=":
		a, ok1 := boxedNumber(v)
		b, ok2 := boxedNumber(o)
		if !ok1 || !ok2 {
			return false
		}
		switch pred {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	case "<=>":
		_, n1 := boxedNumber(v)
		_, n2 := boxedNumber(o)
		return n1 == n2
	}
	return false
}

// evalConst interprets one alpha test against a boxed element.
func (m *Matcher) evalConst(t *rete.ConstTest, w *wm.WME, attrs map[string]box) bool {
	m.Ops++
	v := attrs[m.fieldKey(w.Class(), t.Field)]
	if t.Disj != nil {
		for _, d := range t.Disj {
			if boxedEqual(v, boxValue(m.Prog, d)) {
				return true
			}
		}
		return false
	}
	if t.OtherField >= 0 {
		o := attrs[m.fieldKey(w.Class(), t.OtherField)]
		return applyPred(t.Pred.String(), v, o)
	}
	return applyPred(t.Pred.String(), v, boxValue(m.Prog, t.Const))
}

// testPair interprets all join tests on a (left token, right WME) pair,
// boxing both sides afresh each time.
func (m *Matcher) testPair(j *rete.JoinNode, left []*wm.WME, right *wm.WME) bool {
	rattrs := m.boxWME(right)
	check := func(pred string, lp, lf, rf int) bool {
		m.Ops++
		lw := left[lp]
		lattrs := m.boxWME(lw)
		lv := lattrs[m.fieldKey(lw.Class(), lf)]
		rv := rattrs[m.fieldKey(right.Class(), rf)]
		return applyPred(pred, rv, lv)
	}
	for i := range j.EqTests {
		t := &j.EqTests[i]
		if !check("=", t.LeftPos, t.LeftField, t.RightField) {
			return false
		}
	}
	for i := range j.OtherTests {
		t := &j.OtherTests[i]
		if !check(t.Pred.String(), t.LeftPos, t.LeftField, t.RightField) {
			return false
		}
	}
	return true
}

// Submit processes one WM change to completion.
func (m *Matcher) Submit(sign bool, w *wm.WME) {
	attrs := m.boxWME(w)
	for _, chain := range m.Net.ChainsByClass[w.Class()] {
		pass := true
		for i := range chain.Tests {
			if !m.evalConst(&chain.Tests[i], w, attrs) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		for _, d := range m.Net.DestsOf(chain) {
			if d.Terminal != nil {
				m.toTerminal(d.Terminal, sign, []*wm.WME{w})
				continue
			}
			m.activate(d.Join, d.Side, sign, []*wm.WME{w})
		}
	}
}

// Drain is a no-op: Submit is synchronous.
func (m *Matcher) Drain() {}

// CheckInvariants always succeeds: the interpreted matcher deletes
// eagerly and never parks tokens.
func (m *Matcher) CheckInvariants() error { return nil }

func (m *Matcher) activate(j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME) {
	m.Activations++
	if j.Negated {
		m.lastToken = m.dispatch("not", wmes)
	} else {
		m.lastToken = m.dispatch("and", wmes)
	}
	mem := &m.mems[side][j.ID]
	var ent *entry
	if sign {
		ent = &entry{wmes: wmes}
		*mem = append(*mem, ent)
	} else {
		found := -1
		for i, e := range *mem {
			if rete.SameWmes(e.wmes, wmes) {
				found = i
				ent = e
				break
			}
		}
		if found < 0 {
			// Sequential processing should never miss a delete target.
			panic(fmt.Sprintf("lispemu: delete with no matching token at node %d", j.ID))
		}
		*mem = append((*mem)[:found], (*mem)[found+1:]...)
	}
	emit := func(csign bool, cwmes []*wm.WME) {
		for _, succ := range m.Net.SuccsOf(j) {
			m.activate(succ, rete.Left, csign, cwmes)
		}
		for _, t := range m.Net.TermsOf(j) {
			m.toTerminal(t, csign, cwmes)
		}
	}
	opp := m.mems[side^1][j.ID]
	if j.Negated {
		m.negated(j, side, sign, wmes, ent, opp, emit)
		return
	}
	for _, e := range opp {
		var left []*wm.WME
		var right *wm.WME
		if side == rete.Left {
			left, right = wmes, e.wmes[0]
		} else {
			left, right = e.wmes, wmes[0]
		}
		if !m.testPair(j, left, right) {
			continue
		}
		child := make([]*wm.WME, len(left)+1)
		copy(child, left)
		child[len(left)] = right
		emit(sign, child)
	}
}

func (m *Matcher) negated(j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, ent *entry, opp []*entry, emit func(bool, []*wm.WME)) {
	if side == rete.Left {
		if sign {
			count := 0
			for _, e := range opp {
				if m.testPair(j, wmes, e.wmes[0]) {
					count++
				}
			}
			ent.negCount = count
			if count == 0 {
				emit(true, wmes)
			}
			return
		}
		if ent.negCount == 0 {
			emit(false, wmes)
		}
		return
	}
	w := wmes[0]
	for _, e := range opp {
		if !m.testPair(j, e.wmes, w) {
			continue
		}
		if sign {
			e.negCount++
			if e.negCount == 1 {
				emit(false, e.wmes)
			}
		} else {
			e.negCount--
			if e.negCount == 0 {
				emit(true, e.wmes)
			}
		}
	}
}

func (m *Matcher) toTerminal(t *rete.Terminal, sign bool, wmes []*wm.WME) {
	m.Activations++
	m.lastToken = m.dispatch("term", wmes)
	if sign {
		m.Sink.InsertInstantiation(t.Rule, wmes)
	} else {
		m.Sink.RemoveInstantiation(t.Rule, wmes)
	}
}
