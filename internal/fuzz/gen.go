// Package fuzz generates seeded random OPS5 programs and replays each
// one across every matcher backend, diffing firing traces, time tags
// and final working memory — the cross-backend differential harness
// behind `make fuzz-smoke` and the FuzzDifferential target.
//
// The generator leans on the same termination trick as the workload
// random tests — rules either shrink working memory or make elements
// of inert classes — but deliberately covers the full surface the
// matchers must agree on: vector attributes (matched by continuation
// tests and built by RHS splices), negated condition elements,
// predicates, bound-variable joins, and (accept)/(acceptline) input
// consumed in firing order. A cycle cap bounds the occasional
// modify-loop; capped runs still diff exactly.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	psme "repro"
)

// Case is one generated differential input: a program plus the input
// script its (accept) calls consume, with coverage markers for corpus
// statistics.
type Case struct {
	Seed    int64
	Src     string
	Accepts []psme.Value

	HasVector   bool // a vector-attribute class appears in a rule or make
	HasNegation bool // at least one negated condition element
	HasAccept   bool // at least one (accept) or (acceptline)
}

// Generate builds the deterministic case for a seed. The same seed
// always yields the same program and input script.
func Generate(seed int64) Case {
	r := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed}
	var b strings.Builder

	// Declarations: three scalar classes, one vector-attribute class,
	// and two inert sinks (nothing matches them, so making them cannot
	// feed back into the rules).
	b.WriteString("(literalize ca p q s)\n(literalize cb p q s)\n(literalize cc p q s)\n")
	b.WriteString("(literalize vec tag elt)\n(vector-attribute elt)\n")
	b.WriteString("(literalize out v w)\n")
	b.WriteString("(literalize log elt)\n(vector-attribute elt)\n")
	if r.Intn(2) == 0 {
		b.WriteString("(strategy mea)\n")
	}

	classes := []string{"ca", "cb", "cc"}
	attrs := []string{"p", "q", "s"}
	vectorTags := []string{"alpha", "beta", "gamma"}

	nRules := 3 + r.Intn(6)
	for i := 0; i < nRules; i++ {
		nCE := 1 + r.Intn(3)
		fmt.Fprintf(&b, "(p rule-%d\n", i)
		var boundVars []string
		vecCE := -1 // which CE (if any) matched the vector class
		for ce := 0; ce < nCE; ce++ {
			neg := ce > 0 && r.Intn(4) == 0
			if neg {
				c.HasNegation = true
				b.WriteString("  - (")
			} else {
				b.WriteString("  (")
			}
			if r.Intn(4) == 0 { // vector-class CE with continuation tests
				c.HasVector = true
				if !neg && vecCE < 0 {
					vecCE = ce
				}
				fmt.Fprintf(&b, "vec ^tag %s ^elt %s", vectorTags[r.Intn(len(vectorTags))], vectorTags[r.Intn(len(vectorTags))])
				switch r.Intn(3) {
				case 0: // bare continuation constant
					fmt.Fprintf(&b, " %d", r.Intn(4))
				case 1: // continuation variable
					v := fmt.Sprintf("e%d", ce)
					fmt.Fprintf(&b, " <%s>", v)
					if !neg {
						boundVars = append(boundVars, v)
					}
				}
				b.WriteString(")\n")
				continue
			}
			b.WriteString(classes[r.Intn(len(classes))])
			for _, a := range attrs {
				switch r.Intn(5) {
				case 0: // constant test
					fmt.Fprintf(&b, " ^%s %d", a, r.Intn(4))
				case 1: // fresh variable (binds in positive CEs)
					v := fmt.Sprintf("v%d%s", ce, a)
					fmt.Fprintf(&b, " ^%s <%s>", a, v)
					if !neg {
						boundVars = append(boundVars, v)
					}
				case 2: // test against an earlier binding
					if len(boundVars) > 0 {
						v := boundVars[r.Intn(len(boundVars))]
						preds := []string{"", "<> ", "> ", "<= "}
						fmt.Fprintf(&b, " ^%s {%s<%s>}", a, preds[r.Intn(len(preds))], v)
					}
				case 3: // numeric predicate
					fmt.Fprintf(&b, " ^%s > %d", a, r.Intn(3))
				}
			}
			b.WriteString(")\n")
		}
		b.WriteString("-->\n")
		switch act := r.Intn(6); {
		case act == 0 && len(boundVars) > 0: // inert scalar make
			fmt.Fprintf(&b, "  (make out ^v <%s> ^w %d))\n", boundVars[r.Intn(len(boundVars))], i)
		case act == 1: // inert vector make with a continuation splice
			c.HasVector = true
			if len(boundVars) > 0 && r.Intn(2) == 0 {
				fmt.Fprintf(&b, "  (make log ^elt %s <%s> %d))\n", vectorTags[r.Intn(len(vectorTags))], boundVars[r.Intn(len(boundVars))], i)
			} else {
				fmt.Fprintf(&b, "  (make log ^elt %s %d))\n", vectorTags[r.Intn(len(vectorTags))], i)
			}
		case act == 2: // consume input into an inert sink
			c.HasAccept = true
			fmt.Fprintf(&b, "  (make out ^v (accept) ^w %d)\n  (remove 1))\n", i)
		case act == 3 && r.Intn(3) == 0: // whole-line input into the vector sink
			c.HasAccept = true
			c.HasVector = true
			fmt.Fprintf(&b, "  (make log ^elt line-%d (acceptline))\n  (remove 1))\n", i)
		default: // shrink working memory
			b.WriteString("  (remove 1))\n")
		}
	}

	// Ground working memory: scalar elements plus a few vector elements
	// of varying length.
	nWmes := 8 + r.Intn(12)
	for i := 0; i < nWmes; i++ {
		if r.Intn(4) == 0 {
			c.HasVector = true
			fmt.Fprintf(&b, "(make vec ^tag %s ^elt %s", vectorTags[r.Intn(len(vectorTags))], vectorTags[r.Intn(len(vectorTags))])
			for k := r.Intn(3); k > 0; k-- {
				fmt.Fprintf(&b, " %d", r.Intn(4))
			}
			b.WriteString(")\n")
			continue
		}
		fmt.Fprintf(&b, "(make %s ^p %d ^q %d ^s %d)\n",
			classes[r.Intn(len(classes))], r.Intn(4), r.Intn(4), r.Intn(4))
	}
	c.Src = b.String()

	// Input script: enough values that most accepts see real input, few
	// enough that end-of-file also gets exercised.
	nVals := 4 + r.Intn(8)
	for i := 0; i < nVals; i++ {
		if r.Intn(2) == 0 {
			c.Accepts = append(c.Accepts, psme.Value{Num: int64(r.Intn(50)), IsNum: true})
		} else {
			c.Accepts = append(c.Accepts, psme.Value{Sym: vectorTags[r.Intn(len(vectorTags))]})
		}
	}
	return c
}
