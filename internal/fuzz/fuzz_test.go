package fuzz_test

import (
	"testing"

	"repro/internal/fuzz"
)

// corpusSeeds is the deterministic corpus `make fuzz-smoke` replays:
// every seed must agree across all four backends, and together the
// generated programs must cover the surface the fuzzer exists for.
const corpusSeeds = 60

func TestCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is the long differential")
	}
	var vector, negation, accept int
	for seed := int64(1); seed <= corpusSeeds; seed++ {
		c := fuzz.Generate(seed)
		if c.HasVector {
			vector++
		}
		if c.HasNegation {
			negation++
		}
		if c.HasAccept {
			accept++
		}
		if err := fuzz.Diff(c); err != nil {
			t.Fatal(err)
		}
	}
	// The corpus must actually exercise the new surface, not just
	// scalar join programs.
	if vector < corpusSeeds/3 {
		t.Errorf("only %d/%d corpus programs use vector attributes", vector, corpusSeeds)
	}
	if negation < corpusSeeds/3 {
		t.Errorf("only %d/%d corpus programs use negated CEs", negation, corpusSeeds)
	}
	if accept < corpusSeeds/4 {
		t.Errorf("only %d/%d corpus programs consume input", accept, corpusSeeds)
	}
}

// TestGenerateDeterministic: a seed fully determines the case — the
// property resume, corpus replay and crash triage all rely on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, b := fuzz.Generate(seed), fuzz.Generate(seed)
		if a.Src != b.Src || len(a.Accepts) != len(b.Accepts) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

// FuzzDifferential is the go-native fuzz target: any int64 becomes a
// generated program that every backend must execute identically.
func FuzzDifferential(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := fuzz.Diff(fuzz.Generate(seed)); err != nil {
			t.Fatal(err)
		}
	})
}
