package fuzz

import (
	"fmt"
	"sort"
	"strings"

	psme "repro"
)

// MaxCycles caps each backend run: generated programs terminate by
// construction except for rare modify-free feedback through shared
// classes, and a capped run still diffs exactly (same cap, same trace).
const MaxCycles = 150

// Backends is the full differential set.
var Backends = []psme.MatcherKind{psme.MatcherLisp, psme.MatcherVS1, psme.MatcherVS2, psme.MatcherParallel}

// Trace is one backend's observable behaviour: the complete firing
// log (rule, cycle, token time tags), the sorted final working memory
// with time tags, and the halt flag.
type Trace struct {
	Backend string
	Firings []string
	WM      []string
	Halted  bool
}

// Key canonicalizes the trace for comparison.
func (tr *Trace) Key() string {
	return fmt.Sprintf("halted=%v\nfirings:\n%s\nwm:\n%s",
		tr.Halted, strings.Join(tr.Firings, "\n"), strings.Join(tr.WM, "\n"))
}

// RunBackend executes the case on one backend.
func RunBackend(c Case, kind psme.MatcherKind) (*Trace, error) {
	prog, err := psme.Parse(c.Src)
	if err != nil {
		return nil, fmt.Errorf("seed %d: parse: %w", c.Seed, err)
	}
	cfg := psme.Config{Matcher: kind, AcceptValues: c.Accepts}
	if kind == psme.MatcherParallel {
		cfg.MatchProcs = 4
		cfg.TaskQueues = 2
	}
	eng, err := psme.New(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("seed %d: new %s: %w", c.Seed, kind, err)
	}
	defer eng.Close()
	res, err := eng.Run(psme.RunOptions{MaxCycles: MaxCycles, RecordFiring: true})
	if err != nil {
		return nil, fmt.Errorf("seed %d: run %s: %w", c.Seed, kind, err)
	}
	tr := &Trace{Backend: kind.String(), Halted: res.Halted}
	for _, f := range res.Firings {
		tr.Firings = append(tr.Firings, fmt.Sprintf("c%d %s %v", f.Cycle, f.Rule, f.TimeTags))
	}
	tr.WM = eng.WorkingMemory()
	sort.Strings(tr.WM)
	return tr, nil
}

// Diff runs the case on every backend and returns an error describing
// the first disagreement, or nil when all backends agree.
func Diff(c Case) error {
	var ref *Trace
	for _, kind := range Backends {
		tr, err := RunBackend(c, kind)
		if err != nil {
			return err
		}
		if ref == nil {
			ref = tr
			continue
		}
		if tr.Key() != ref.Key() {
			return fmt.Errorf("seed %d: %s disagrees with %s\n--- %s ---\n%s\n--- %s ---\n%s\n--- program ---\n%s",
				c.Seed, tr.Backend, ref.Backend, ref.Backend, ref.Key(), tr.Backend, tr.Key(), c.Src)
		}
	}
	return nil
}
