package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/stats"
)

// pingSrc answers every (req ^n X) with a (resp ^n X); counterSrc keeps
// a running counter modified by each tick, so its WM state is the
// visible history a migration must carry intact.
const pingSrc = `
(literalize req n)
(literalize resp n)
(p answer
  (req ^n <n>)
-->
  (make resp ^n <n>)
  (remove 1))
`

const counterSrc = `
(literalize tick go)
(literalize count value)
(literalize resp n)
(p inc
  (count ^value <v>)
  (tick)
-->
  (remove 2)
  (modify 1 ^value (compute <v> + 1))
  (make resp ^n <v>))
(make count ^value 0)
`

// testCluster is B in-process backends plus a proxy over them.
type testCluster struct {
	backends []*server.Server
	tss      []*httptest.Server
	proxy    *cluster.Proxy
	pts      *httptest.Server
	client   *http.Client
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{client: &http.Client{Timeout: 10 * time.Second}}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{DefaultMaxCycles: 1000, DefaultTimeout: 10 * time.Second})
		ts := httptest.NewServer(srv.Handler())
		tc.backends = append(tc.backends, srv)
		tc.tss = append(tc.tss, ts)
		urls = append(urls, ts.URL)
	}
	p, err := cluster.New(cluster.Options{
		Backends:    urls,
		HealthEvery: time.Hour, // probed explicitly in tests
		Client:      tc.client,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.proxy = p
	tc.pts = httptest.NewServer(p.Handler())
	t.Cleanup(func() {
		tc.pts.Close()
		p.Close()
		for i := range tc.tss {
			tc.tss[i].Close()
			tc.backends[i].Close()
		}
	})
	return tc
}

func call(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
			}
		}
	}
	return resp.StatusCode
}

func TestRingCandidates(t *testing.T) {
	r := cluster.NewRing(4, 64)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		c := r.Candidates(fmt.Sprintf("session-%d", i))
		if len(c) != 4 {
			t.Fatalf("candidates = %v, want 4 distinct", c)
		}
		seen := map[int]bool{}
		for _, n := range c {
			if seen[n] {
				t.Fatalf("duplicate candidate in %v", c)
			}
			seen[n] = true
		}
		counts[c[0]]++
	}
	// Stability: the same key walks the same order.
	a, b := r.Candidates("session-7"), r.Candidates("session-7")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unstable candidates %v vs %v", a, b)
		}
	}
	for n, c := range counts {
		if c < 400 {
			t.Errorf("backend %d owns only %d/4000 keys — vnode distribution badly skewed", n, c)
		}
	}
	// Removing one backend moves only its keys: every key whose owner
	// isn't node 3 keeps its owner in a 3-node ring of the same vnodes.
	r3 := cluster.NewRing(3, 64)
	moved := 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("session-%d", i)
		if o := r.Owner(key); o != 3 && r3.Owner(key) != o {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node changed owner", moved)
	}
}

// TestClusterCreateRouteForward drives the full proxy path: creates
// land spread over the ring, forwards reach the owning backend, and
// deletes clean the route.
func TestClusterCreateRouteForward(t *testing.T) {
	tc := newTestCluster(t, 2)
	base := tc.pts.URL

	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		var info server.SessionInfo
		if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{Program: pingSrc}, &info); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids = append(ids, info.ID)
	}
	// All sessions reachable through the proxy.
	for i, id := range ids {
		var res server.BatchResult
		req := server.BatchRequest{Asserts: []server.WMEInput{{Class: "req", Attrs: map[string]any{"n": i}}}}
		if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/assert", req, &res); code != http.StatusOK {
			t.Fatalf("assert via proxy: status %d", code)
		}
		if len(res.Firings) != 1 {
			t.Fatalf("firings = %d, want 1", len(res.Firings))
		}
	}
	// The merged listing sees them all.
	var lst struct {
		Sessions []server.SessionInfo `json:"sessions"`
	}
	if code := call(t, tc.client, "GET", base+"/sessions", nil, &lst); code != http.StatusOK || len(lst.Sessions) != 8 {
		t.Fatalf("list: status %d, %d sessions (want 8)", code, len(lst.Sessions))
	}
	// Both backends got some (8 sessions over 2 backends: a fully
	// one-sided split means routing ignores the ring).
	a, b := len(tc.backends[0].Sessions()), len(tc.backends[1].Sessions())
	if a == 0 || b == 0 {
		t.Errorf("session split %d/%d — one backend unused", a, b)
	}
	for _, id := range ids {
		if code := call(t, tc.client, "DELETE", base+"/sessions/"+id, nil, nil); code != http.StatusNoContent {
			t.Fatalf("delete: status %d", code)
		}
	}
	if m := tc.proxy.Metrics(); m.Routes != 0 {
		t.Errorf("routes cached after deletes = %d, want 0", m.Routes)
	}
}

// TestProgramCacheOnePushPerBackend registers one program and creates
// many sessions: each backend must compile at most once, and the proxy
// must count cache hits for every create after a backend's first.
func TestProgramCacheOnePushPerBackend(t *testing.T) {
	tc := newTestCluster(t, 2)
	base := tc.pts.URL

	var reg struct {
		Hash string `json:"hash"`
	}
	if code := call(t, tc.client, "POST", base+"/programs", map[string]string{"program": pingSrc}, &reg); code != http.StatusCreated || reg.Hash == "" {
		t.Fatalf("register: status %d hash %q", code, reg.Hash)
	}
	for i := 0; i < 10; i++ {
		var info server.SessionInfo
		if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{ProgramHash: reg.Hash}, &info); code != http.StatusCreated {
			t.Fatalf("create by hash: status %d", code)
		}
	}
	var compiles int64
	for i, b := range tc.backends {
		snap := b.Snapshot()
		if snap.Server.ProgramCompiles > 1 {
			t.Errorf("backend %d compiled %d times, want ≤1", i, snap.Server.ProgramCompiles)
		}
		compiles += snap.Server.ProgramCompiles
	}
	m := tc.proxy.Metrics()
	if m.Cluster.ProgramPushes != compiles {
		t.Errorf("pushes %d != compiles %d", m.Cluster.ProgramPushes, compiles)
	}
	if m.Cluster.ProgramCacheHits+m.Cluster.ProgramPushes < 10 {
		t.Errorf("hits %d + pushes %d < 10 creates", m.Cluster.ProgramCacheHits, m.Cluster.ProgramPushes)
	}
	if m.Cluster.ProgramCacheHits == 0 {
		t.Error("no program cache hits across 10 creates")
	}
}

// TestCreateByUnregisteredHash must fail without touching a backend.
func TestCreateByUnregisteredHash(t *testing.T) {
	tc := newTestCluster(t, 2)
	code := call(t, tc.client, "POST", tc.pts.URL+"/sessions",
		server.SessionConfig{ProgramHash: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("create by unknown hash: status %d, want 400", code)
	}
}

// TestBackendLossReroute kills one backend and checks creates keep
// succeeding on the survivor and a session lost with the backend
// reports not-found rather than hanging.
func TestBackendLossReroute(t *testing.T) {
	tc := newTestCluster(t, 2)
	base := tc.pts.URL

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		var info server.SessionInfo
		if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{Program: pingSrc}, &info); code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		ids = append(ids, info.ID)
	}
	tc.tss[1].Close() // backend 1 dies with its sessions
	tc.proxy.CheckNow()

	for i := 0; i < 6; i++ {
		var info server.SessionInfo
		if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{Program: pingSrc}, &info); code != http.StatusCreated {
			t.Fatalf("create after loss: status %d", code)
		}
	}
	if n := len(tc.backends[0].Sessions()); n < 6 {
		t.Errorf("survivor holds %d sessions, want ≥6", n)
	}
	// Sessions that lived on the dead backend answer 404/502, not 200.
	lost := 0
	for _, id := range ids {
		req := server.BatchRequest{Asserts: []server.WMEInput{{Class: "req", Attrs: map[string]any{"n": 1}}}}
		if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/assert", req, nil); code != http.StatusOK {
			lost++
		}
	}
	if lost == 0 {
		t.Error("every pre-loss session still answers — backend 1 held none?")
	}
}

// runTicks drives n tick batches and returns the concatenated firing
// trace plus the final WM.
func runTicks(t *testing.T, client *http.Client, base, id string, n int) (trace []string, wm []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := server.BatchRequest{Asserts: []server.WMEInput{{Class: "tick", Attrs: map[string]any{}}}}
		var res server.BatchResult
		if code := call(t, client, "POST", base+"/sessions/"+id+"/assert", req, &res); code != http.StatusOK {
			t.Fatalf("tick %d on %s: status %d", i, id, code)
		}
		for _, f := range res.Firings {
			trace = append(trace, fmt.Sprintf("%s%v", f.Rule, f.TimeTags))
		}
	}
	var snap struct {
		WMEs []server.WMEOut `json:"wmes"`
	}
	if code := call(t, client, "GET", base+"/sessions/"+id+"/wm", nil, &snap); code != http.StatusOK {
		t.Fatalf("wm of %s: status %d", id, code)
	}
	for _, w := range snap.WMEs {
		wm = append(wm, fmt.Sprintf("%d:%s", w.TimeTag, w.Text))
	}
	return trace, wm
}

// TestMigrateDifferential is the correctness core: a migrated session
// and an unmigrated control receive identical batch sequences; firing
// traces and final WM must match element for element, including the
// pending (accept) queue surviving the move.
func TestMigrateDifferential(t *testing.T) {
	for _, matcher := range []string{"vs1", "vs2", "parallel"} {
		t.Run(matcher, func(t *testing.T) {
			tc := newTestCluster(t, 2)
			base := tc.pts.URL

			mk := func() string {
				var info server.SessionInfo
				cfg := server.SessionConfig{Program: counterSrc, Matcher: matcher}
				if code := call(t, tc.client, "POST", base+"/sessions", cfg, &info); code != http.StatusCreated {
					t.Fatalf("create: status %d", code)
				}
				return info.ID
			}
			mig, ctl := mk(), mk()

			trace1m, _ := runTicks(t, tc.client, base, mig, 5)
			trace1c, _ := runTicks(t, tc.client, base, ctl, 5)

			var res cluster.MigrateResult
			if code := call(t, tc.client, "POST", base+"/sessions/"+mig+"/migrate", nil, &res); code != http.StatusOK {
				t.Fatalf("migrate: status %d", code)
			}
			if res.From == res.To || res.From == "" {
				t.Fatalf("migrate result %+v", res)
			}

			trace2m, wmM := runTicks(t, tc.client, base, mig, 5)
			trace2c, wmC := runTicks(t, tc.client, base, ctl, 5)

			full := func(a, b []string) string { return fmt.Sprintf("%v vs %v", a, b) }
			if fmt.Sprint(append(trace1m, trace2m...)) != fmt.Sprint(append(trace1c, trace2c...)) {
				t.Fatalf("firing traces diverged after migration: %s", full(trace2m, trace2c))
			}
			if fmt.Sprint(wmM) != fmt.Sprint(wmC) {
				t.Fatalf("final WM diverged: %s", full(wmM, wmC))
			}
			m := tc.proxy.Metrics()
			if m.Cluster.Migrations != 1 || m.MigrationLatency.Count != 1 {
				t.Errorf("migrations=%d latency count=%d, want 1/1", m.Cluster.Migrations, m.MigrationLatency.Count)
			}
		})
	}
}

// TestMigrateUnderLoad migrates while a writer hammers the session:
// every batch must land exactly once (no drops, no duplicates), and
// the final counter value must equal the batch count.
func TestMigrateUnderLoad(t *testing.T) {
	tc := newTestCluster(t, 2)
	base := tc.pts.URL

	var info server.SessionInfo
	if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{Program: counterSrc}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := info.ID

	const ticks = 60
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			req := server.BatchRequest{Asserts: []server.WMEInput{{Class: "tick", Attrs: map[string]any{}}}}
			var res server.BatchResult
			if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/assert", req, &res); code != http.StatusOK {
				select {
				case errs <- fmt.Errorf("tick %d: status %d", i, code):
				default:
				}
				return
			}
		}
	}()
	migrated := 0
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/migrate", nil, nil); code == http.StatusOK {
			migrated++
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if migrated == 0 {
		t.Fatal("no migration succeeded under load")
	}
	var snap struct {
		WMEs []server.WMEOut `json:"wmes"`
	}
	if code := call(t, tc.client, "GET", base+"/sessions/"+id+"/wm", nil, &snap); code != http.StatusOK {
		t.Fatalf("wm: status %d", code)
	}
	want := fmt.Sprintf("(count ^value %d)", ticks)
	found := false
	for _, w := range snap.WMEs {
		if w.Text == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter lost ticks across %d migrations: want %q in %v", migrated, want, snap.WMEs)
	}
}

// TestMigrateCarriesPendingAccepts suspends a session awaiting input,
// migrates it, and resumes on the target: buffered values must survive.
func TestMigrateCarriesPendingAccepts(t *testing.T) {
	const acceptSrc = `
(literalize go)
(literalize got v)
(p read
  (go)
-->
  (remove 1)
  (make got ^v (accept)))
`
	tc := newTestCluster(t, 2)
	base := tc.pts.URL
	var info server.SessionInfo
	if code := call(t, tc.client, "POST", base+"/sessions", server.SessionConfig{Program: acceptSrc}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := info.ID

	// Queue two values but only one consumer: one stays pending.
	req := server.BatchRequest{
		Accepts: []any{"alpha", "beta"},
		Asserts: []server.WMEInput{{Class: "go", Attrs: map[string]any{}}},
	}
	var res server.BatchResult
	if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/assert", &req, &res); code != http.StatusOK {
		t.Fatalf("first batch: status %d", code)
	}
	if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/migrate", nil, nil); code != http.StatusOK {
		t.Fatalf("migrate: status %d", code)
	}
	// Second consumer on the target must read "beta" from the carried queue.
	req2 := server.BatchRequest{Asserts: []server.WMEInput{{Class: "go", Attrs: map[string]any{}}}}
	var res2 server.BatchResult
	if code := call(t, tc.client, "POST", base+"/sessions/"+id+"/assert", &req2, &res2); code != http.StatusOK {
		t.Fatalf("post-migrate batch: status %d", code)
	}
	var snap struct {
		WMEs []server.WMEOut `json:"wmes"`
	}
	call(t, tc.client, "GET", base+"/sessions/"+id+"/wm", nil, &snap)
	got := map[string]bool{}
	for _, w := range snap.WMEs {
		got[w.Text] = true
	}
	if !got["(got ^v alpha)"] || !got["(got ^v beta)"] {
		t.Fatalf("pending accept lost in migration: wm = %v", snap.WMEs)
	}
}

// TestExportRefusesDivergedEpoch: a session whose network was changed
// at runtime cannot be snapshot-migrated; the export must refuse.
func TestExportRefusesDivergedEpoch(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &http.Client{Timeout: 5 * time.Second}

	var info server.SessionInfo
	if code := call(t, c, "POST", ts.URL+"/sessions", server.SessionConfig{Program: pingSrc}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := call(t, c, "GET", ts.URL+"/sessions/"+info.ID+"/export", nil, nil); code != http.StatusOK {
		t.Fatalf("export of clean session: status %d", code)
	}
	// Excise the rule at runtime: the session's network diverges.
	prog := map[string]any{"excise": []string{"answer"}}
	if code := call(t, c, "POST", ts.URL+"/sessions/"+info.ID+"/program", prog, nil); code != http.StatusOK {
		t.Fatalf("excise: status %d", code)
	}
	if code := call(t, c, "GET", ts.URL+"/sessions/"+info.ID+"/export", nil, nil); code == http.StatusOK {
		t.Fatal("export of epoch-diverged session succeeded; want refusal")
	}
}

// TestProxyMetricsShape sanity-checks the snapshot wiring.
func TestProxyMetricsShape(t *testing.T) {
	tc := newTestCluster(t, 3)
	m := tc.proxy.Metrics()
	if m.Cluster.BackendsLive != 3 || len(m.Backends) != 3 {
		t.Fatalf("live=%d backends=%d, want 3/3", m.Cluster.BackendsLive, len(m.Backends))
	}
	var zero stats.Cluster
	zero.Add(&m.Cluster) // Add covers every field; compile-time drift check
	for _, b := range m.Backends {
		if !b.Up || b.BootID == "" {
			t.Fatalf("backend row %+v", b)
		}
	}
}
