package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/server"
)

// Handler is the proxy's HTTP surface — the same API shape as one
// ops5d, so clients need no changes, plus the cluster-only endpoints:
//
//	POST   /sessions                 create (routed by bounded-load consistent hash)
//	GET    /sessions                 merged listing across live backends
//	POST   /sessions/{id}/migrate    move the session ({"target": url-or-index}, empty = auto)
//	*      /sessions/{id}[/...]      forwarded to the session's backend
//	POST   /programs                 register a program cluster-wide ({"program": src})
//	GET    /programs                 the proxy's registry
//	GET    /metrics                  cluster counters + per-backend status
//	GET    /healthz                  proxy liveness + live backend count
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", p.handleCreate)
	mux.HandleFunc("GET /sessions", p.handleList)
	mux.HandleFunc("POST /sessions/{id}/migrate", p.handleMigrate)
	mux.HandleFunc("/sessions/{id}", p.handleSession)
	mux.HandleFunc("/sessions/{id}/{op...}", p.handleSession)
	mux.HandleFunc("POST /programs", p.handleRegister)
	mux.HandleFunc("GET /programs", p.handlePrograms)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		live, total := p.liveLoad()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": live > 0, "backends_live": live, "backends": len(p.backends), "sessions": total,
		})
	})
	return mux
}

func (p *Proxy) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg server.SessionConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	info, err := p.CreateSession(cfg)
	if err != nil {
		httpError(w, createStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// createStatus maps proxy create errors onto statuses: no-backend
// conditions are 503 (retryable), the rest client errors.
func createStatus(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "no live backends") || strings.Contains(msg, "failed after") {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (p *Proxy) handleList(w http.ResponseWriter, r *http.Request) {
	sessions, err := p.Sessions()
	if err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	if sessions == nil {
		sessions = []server.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": sessions})
}

func (p *Proxy) handleSession(w http.ResponseWriter, r *http.Request) {
	p.forward(w, r, r.PathValue("id"))
}

func (p *Proxy) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Target string `json:"target"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	res, err := p.Migrate(r.PathValue("id"), body.Target)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (p *Proxy) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Program string `json:"program"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	hash, err := p.RegisterProgram(body.Program)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"hash": hash})
}

func (p *Proxy) handlePrograms(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Hash     string `json:"hash"`
		SrcBytes int    `json:"src_bytes"`
	}
	p.mu.Lock()
	out := make([]entry, 0, len(p.programs))
	for h, src := range p.programs {
		out = append(out, entry{Hash: h, SrcBytes: len(src)})
	}
	p.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"programs": out})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
