// Package cluster is the scale-out session fabric: a stateless routing
// proxy (cmd/ops5proxy) that consistent-hash-maps session IDs onto a
// fleet of ops5d backends, keeps a cluster-wide content-addressed
// program cache so each program compiles once per backend no matter how
// many sessions use it, and migrates live sessions between backends via
// the durability layer's versioned snapshots. The proxy holds soft
// state only — a route cache, the program registry, health views — all
// reconstructible by probing the backends, so proxies can restart (or
// run in multiples) without losing the cluster.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over backend indices. Each backend
// projects vnodes points onto the 64-bit ring; a key routes to the
// backend owning the first point at or after the key's hash. Candidates
// returns every backend in ring-walk order so callers can implement
// bounded-load placement (skip overloaded) and failover (skip down)
// with the same structure: the preference order is stable for a given
// ring, and removing a backend only reroutes the keys it owned.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring over n backends with vnodes virtual points
// each (0 picks the default, 128).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	r := &Ring{nodes: n, points: make([]ringPoint, 0, n*vnodes)}
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("n%d#%d", node, v)), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node
	})
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Candidates returns all backend indices in the key's ring-walk order:
// the owner first, then each distinct backend as the walk passes its
// next point. Every backend appears exactly once.
func (r *Ring) Candidates(key string) []int {
	out := make([]int, 0, r.nodes)
	if r.nodes == 0 || len(r.points) == 0 {
		return out
	}
	kh := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the key's primary backend.
func (r *Ring) Owner(key string) int {
	c := r.Candidates(key)
	if len(c) == 0 {
		return -1
	}
	return c[0]
}
