package cluster

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// Options configure a Proxy.
type Options struct {
	// Backends are the ops5d base URLs (e.g. "http://127.0.0.1:8701").
	Backends []string
	// VNodes is the virtual-node count per backend (default 128).
	VNodes int
	// LoadFactor is the bounded-load ceiling: a backend is skipped for
	// new sessions while its session count exceeds LoadFactor × the
	// cluster mean (default 1.25, min 1.0).
	LoadFactor float64
	// HealthEvery is the health-probe interval (default 2s).
	HealthEvery time.Duration
	// Client issues all backend requests (default: 10s timeout).
	Client *http.Client
}

func (o *Options) fill() {
	if o.LoadFactor < 1.0 {
		o.LoadFactor = 1.25
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
}

// backendState is the proxy's soft view of one ops5d.
type backendState struct {
	url string

	mu       sync.Mutex
	up       bool
	bootID   string
	sessions int64               // load estimate: healthz count + local delta
	known    map[string]struct{} // program hashes resident on this backend
}

// route maps one session ID to its backend. The per-route RWMutex is
// the migration fence: forwards hold it shared, a migration holds it
// exclusive, so the flip happens with no request in flight and every
// later request sees the new backend.
type route struct {
	mu      sync.RWMutex
	backend int
}

// Proxy is the routing tier. It is stateless in the durability sense:
// everything it holds is reconstructible from the backends (routes by
// discovery, program residency by /healthz boot tracking plus pushes,
// liveness by probing).
type Proxy struct {
	opt      Options
	ring     *Ring
	backends []*backendState
	client   *http.Client
	nonce    string // distinguishes this proxy's generated session IDs

	mu       sync.Mutex
	met      stats.Cluster
	migHist  stats.Histogram
	nextID   uint64
	programs map[string]string // hash -> source, the cluster registry

	routesMu sync.RWMutex
	routes   map[string]*route

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New builds a proxy over the given backends. Call Start to begin
// health probing (the constructor probes once synchronously so the
// proxy is usable immediately).
func New(opt Options) (*Proxy, error) {
	opt.fill()
	if len(opt.Backends) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	p := &Proxy{
		opt:      opt,
		ring:     NewRing(len(opt.Backends), opt.VNodes),
		client:   opt.Client,
		nonce:    newNonce(),
		programs: make(map[string]string),
		routes:   make(map[string]*route),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range opt.Backends {
		p.backends = append(p.backends, &backendState{
			url:   strings.TrimRight(u, "/"),
			known: make(map[string]struct{}),
		})
	}
	p.CheckNow()
	return p, nil
}

func newNonce() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "p0"
	}
	return "p" + hex.EncodeToString(b[:])
}

// Start launches the background health loop.
func (p *Proxy) Start() {
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opt.HealthEvery)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.CheckNow()
			}
		}
	}()
}

// Close stops the health loop.
func (p *Proxy) Close() {
	p.once.Do(func() { close(p.stop) })
	select {
	case <-p.done:
	case <-time.After(time.Second):
	}
}

// healthzBody is what ops5d's GET /healthz returns.
type healthzBody struct {
	OK       bool   `json:"ok"`
	Sessions int64  `json:"sessions"`
	Programs int    `json:"programs"`
	BootID   string `json:"boot_id"`
}

// CheckNow probes every backend once, updating liveness, load and boot
// identity. A changed boot_id means the backend restarted: its program
// cache is empty no matter what the proxy pushed before, so the known
// set resets and the next create re-pushes.
func (p *Proxy) CheckNow() {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			p.probe(b)
		}(b)
	}
	wg.Wait()
}

func (p *Proxy) probe(b *backendState) {
	p.count(func(c *stats.Cluster) { c.HealthChecks++ })
	var h healthzBody
	ok := false
	resp, err := p.client.Get(b.url + "/healthz")
	if err == nil {
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
		resp.Body.Close()
		ok = err == nil && resp.StatusCode == http.StatusOK && h.OK
	}
	if !ok {
		p.count(func(c *stats.Cluster) { c.HealthFails++ })
	}
	b.mu.Lock()
	if ok != b.up {
		p.count(func(c *stats.Cluster) { c.Transitions++ })
	}
	b.up = ok
	if ok {
		b.sessions = h.Sessions
		if h.BootID != b.bootID {
			if b.bootID != "" {
				p.count(func(c *stats.Cluster) { c.BootChanges++ })
			}
			b.bootID = h.BootID
			b.known = make(map[string]struct{})
		}
	}
	b.mu.Unlock()
}

func (p *Proxy) count(f func(*stats.Cluster)) {
	p.mu.Lock()
	f(&p.met)
	p.mu.Unlock()
}

// liveLoad sums the live backends and their session counts.
func (p *Proxy) liveLoad() (live int, total int64) {
	for _, b := range p.backends {
		b.mu.Lock()
		if b.up {
			live++
			total += b.sessions
		}
		b.mu.Unlock()
	}
	return live, total
}

// place picks the backend for a new session: walk the key's ring
// candidates, skip down backends, and skip overloaded ones (bounded
// load: sessions > LoadFactor × ceil((total+1)/live)) as long as a
// lighter live candidate remains. Returns -1 when no backend is live.
func (p *Proxy) place(key string) int {
	live, total := p.liveLoad()
	if live == 0 {
		return -1
	}
	allowed := int64(math.Ceil(p.opt.LoadFactor * float64(total+1) / float64(live)))
	first := -1
	for _, n := range p.ring.Candidates(key) {
		b := p.backends[n]
		b.mu.Lock()
		up, load := b.up, b.sessions
		b.mu.Unlock()
		if !up {
			continue
		}
		if first < 0 {
			first = n
		}
		if load < allowed {
			if n != first {
				p.count(func(c *stats.Cluster) { c.ReRoutes++ })
			}
			return n
		}
		p.count(func(c *stats.Cluster) { c.ReRoutes++ })
	}
	return first // every live backend at the ceiling: take the owner
}

// routeFor returns the cached route for a session, or nil.
func (p *Proxy) routeFor(id string) *route {
	p.routesMu.RLock()
	rt := p.routes[id]
	p.routesMu.RUnlock()
	return rt
}

// setRoute installs (or returns the already-installed) route.
func (p *Proxy) setRoute(id string, backend int) *route {
	p.routesMu.Lock()
	defer p.routesMu.Unlock()
	if rt, ok := p.routes[id]; ok {
		return rt
	}
	rt := &route{backend: backend}
	p.routes[id] = rt
	return rt
}

func (p *Proxy) dropRoute(id string) {
	p.routesMu.Lock()
	delete(p.routes, id)
	p.routesMu.Unlock()
}

// discover finds which backend holds a session the proxy has no route
// for (proxy restart, session created out of band): probe the ring
// candidates with GET /sessions/{id}/wm until one answers non-404.
func (p *Proxy) discover(id string) (int, error) {
	p.count(func(c *stats.Cluster) { c.Discoveries++ })
	for _, n := range p.ring.Candidates(id) {
		b := p.backends[n]
		b.mu.Lock()
		up := b.up
		b.mu.Unlock()
		if !up {
			continue
		}
		resp, err := p.client.Get(b.url + "/sessions/" + id + "/wm")
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			return n, nil
		}
	}
	return -1, fmt.Errorf("session %q not found on any live backend", id)
}

// resolve returns the session's route, discovering it on a cache miss.
func (p *Proxy) resolve(id string) (*route, error) {
	if rt := p.routeFor(id); rt != nil {
		return rt, nil
	}
	n, err := p.discover(id)
	if err != nil {
		return nil, err
	}
	return p.setRoute(id, n), nil
}

// backendDo issues one JSON request against a backend and decodes the
// response into out (when non-nil). Returns the HTTP status; a
// transport error returns status 0.
func (p *Proxy) backendDo(method, url string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, errors.New(e.Error)
		}
		return resp.StatusCode, fmt.Errorf("backend %s %s: status %d", method, url, resp.StatusCode)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// markDown flags a backend dead immediately (a forward failed at the
// transport level); the health loop will bring it back.
func (p *Proxy) markDown(n int) {
	b := p.backends[n]
	b.mu.Lock()
	if b.up {
		b.up = false
		p.count(func(c *stats.Cluster) { c.Transitions++ })
	}
	b.mu.Unlock()
}

// hashOf is the registry key: hex SHA-256 of the source, identical to
// the backends' program hash.
func hashOf(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// RegisterProgram stores source in the cluster registry and pushes it
// to every live backend, so subsequent creates anywhere hit a warm
// compile cache. Returns the hash; pushing is best-effort (a backend
// that missed the push gets it on demand at create time).
func (p *Proxy) RegisterProgram(src string) (string, error) {
	if src == "" {
		return "", errors.New("missing program source")
	}
	hash := hashOf(src)
	p.mu.Lock()
	_, dup := p.programs[hash]
	p.programs[hash] = src
	if !dup {
		p.met.ProgramsRegistered++
	}
	p.mu.Unlock()
	for n := range p.backends {
		b := p.backends[n]
		b.mu.Lock()
		up := b.up
		_, has := b.known[hash]
		b.mu.Unlock()
		if up && !has {
			_ = p.pushProgram(n, hash, src)
		}
	}
	return hash, nil
}

// pushProgram installs a program on one backend and marks it resident.
func (p *Proxy) pushProgram(n int, hash, src string) error {
	body, _ := json.Marshal(map[string]string{"program": src})
	status, err := p.backendDo("POST", p.backends[n].url+"/programs", body, nil)
	if err != nil {
		if status == 0 {
			p.markDown(n)
		}
		return err
	}
	p.count(func(c *stats.Cluster) { c.ProgramPushes++ })
	b := p.backends[n]
	b.mu.Lock()
	b.known[hash] = struct{}{}
	b.mu.Unlock()
	return nil
}

// ensureProgram makes hash resident on backend n, pushing from the
// registry when the proxy doesn't believe it's there.
func (p *Proxy) ensureProgram(n int, hash string) (hit bool, err error) {
	b := p.backends[n]
	b.mu.Lock()
	_, has := b.known[hash]
	b.mu.Unlock()
	if has {
		p.count(func(c *stats.Cluster) { c.ProgramCacheHits++ })
		return true, nil
	}
	p.mu.Lock()
	src, ok := p.programs[hash]
	p.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("program %s not registered with the proxy", hash)
	}
	return false, p.pushProgram(n, hash, src)
}

// CreateSession places a session on the cluster: resolve the program
// (inline source auto-registers; a hash must be pre-registered), pick
// the backend by bounded-load consistent hashing on the session ID,
// ensure the program is resident there, create by hash, and cache the
// route. Transport failures mark the backend down and retry the next
// ring candidate.
func (p *Proxy) CreateSession(cfg server.SessionConfig) (*server.SessionInfo, error) {
	var hash string
	switch {
	case cfg.Program != "" && cfg.ProgramHash != "":
		return nil, errors.New("program and program_hash are mutually exclusive")
	case cfg.Program != "":
		var err error
		if hash, err = p.RegisterProgram(cfg.Program); err != nil {
			return nil, err
		}
		cfg.Program = ""
	case cfg.ProgramHash != "":
		hash = cfg.ProgramHash
		p.mu.Lock()
		_, ok := p.programs[hash]
		p.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("program %s not registered (POST /programs first)", hash)
		}
	default:
		return nil, errors.New("missing program source (or program_hash)")
	}

	id := cfg.ID
	if id == "" {
		p.mu.Lock()
		p.nextID++
		id = fmt.Sprintf("%s-%06d", p.nonce, p.nextID)
		p.mu.Unlock()
	}
	cfg.ID = id
	cfg.ProgramHash = hash

	tried := 0
	for attempt := 0; attempt < len(p.backends); attempt++ {
		n := p.place(id)
		if n < 0 {
			return nil, errors.New("no live backends")
		}
		if attempt > 0 {
			p.count(func(c *stats.Cluster) { c.Retries++ })
		}
		tried++
		if _, err := p.ensureProgram(n, hash); err != nil {
			b := p.backends[n]
			b.mu.Lock()
			up := b.up
			b.mu.Unlock()
			if up {
				// The backend rejected the program (e.g. it fails to
				// compile): every backend would; surface it.
				return nil, err
			}
			continue // push failed because the backend just died: re-place
		}
		body, _ := json.Marshal(&cfg)
		var info server.SessionInfo
		status, err := p.backendDo("POST", p.backends[n].url+"/sessions", body, &info)
		switch {
		case status == 0:
			p.markDown(n)
			continue
		case status == http.StatusFailedDependency:
			// The backend lost the program since our last look (restart
			// raced the health probe): push and let the next attempt retry.
			b := p.backends[n]
			b.mu.Lock()
			delete(b.known, hash)
			b.mu.Unlock()
			continue
		case err != nil:
			return nil, err
		}
		b := p.backends[n]
		b.mu.Lock()
		b.sessions++
		b.mu.Unlock()
		p.setRoute(id, n)
		p.count(func(c *stats.Cluster) { c.SessionsRouted++ })
		return &info, nil
	}
	return nil, fmt.Errorf("session create failed after %d backends", tried)
}

// forward proxies one session-scoped request to the session's backend,
// holding the route read lock so a concurrent migration serializes
// against it. The response streams back verbatim.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, id string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rt, err := p.resolve(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rt.mu.RLock()
	n := rt.backend
	rt.mu.RUnlock()
	p.count(func(c *stats.Cluster) { c.Forwards++ })

	status, data, hdr, err := p.rawDo(r.Method, p.backends[n].url+r.URL.Path, body)
	if status == 0 {
		// Backend gone mid-request; one rediscovery attempt (the session
		// may have been migrated or the backend replaced).
		p.markDown(n)
		p.count(func(c *stats.Cluster) { c.Retries++ })
		p.dropRoute(id)
		rt2, rerr := p.resolve(id)
		if rerr != nil {
			httpError(w, http.StatusBadGateway, fmt.Errorf("backend unreachable: %v", err))
			return
		}
		rt2.mu.RLock()
		n = rt2.backend
		rt2.mu.RUnlock()
		status, data, hdr, err = p.rawDo(r.Method, p.backends[n].url+r.URL.Path, body)
		if status == 0 {
			httpError(w, http.StatusBadGateway, fmt.Errorf("backend unreachable: %v", err))
			return
		}
	}
	if status == http.StatusNotFound && p.routeFor(id) != nil {
		// Stale route (session moved without us): rediscover once.
		p.dropRoute(id)
		if rt2, rerr := p.resolve(id); rerr == nil {
			rt2.mu.RLock()
			n = rt2.backend
			rt2.mu.RUnlock()
			if s2, d2, h2, e2 := p.rawDo(r.Method, p.backends[n].url+r.URL.Path, body); s2 != 0 && e2 == nil {
				status, data, hdr = s2, d2, h2
			}
		}
	}
	if r.Method == http.MethodDelete && status == http.StatusNoContent {
		p.dropRoute(id)
		b := p.backends[n]
		b.mu.Lock()
		if b.sessions > 0 {
			b.sessions--
		}
		b.mu.Unlock()
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// rawDo issues a request and returns status, body and headers without
// interpreting errors (forwarding wants the backend's response as-is).
// A transport failure returns status 0.
func (p *Proxy) rawDo(method, url string, body []byte) (int, []byte, http.Header, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// Sessions merges the live backends' session listings.
func (p *Proxy) Sessions() ([]server.SessionInfo, error) {
	var out []server.SessionInfo
	for n, b := range p.backends {
		b.mu.Lock()
		up := b.up
		b.mu.Unlock()
		if !up {
			continue
		}
		var lst struct {
			Sessions []server.SessionInfo `json:"sessions"`
		}
		if _, err := p.backendDo("GET", p.backends[n].url+"/sessions", nil, &lst); err != nil {
			continue
		}
		out = append(out, lst.Sessions...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// BackendStatus is one backend's row in the proxy's metrics view.
type BackendStatus struct {
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	BootID   string `json:"boot_id,omitempty"`
	Sessions int64  `json:"sessions"`
	Programs int    `json:"programs_known"`
}

// MetricsSnapshot is GET /metrics on the proxy.
type MetricsSnapshot struct {
	Cluster          stats.Cluster        `json:"cluster"`
	MigrationLatency stats.LatencySummary `json:"migration_latency"`
	Backends         []BackendStatus      `json:"backends"`
	Routes           int                  `json:"routes_cached"`
	Programs         int                  `json:"programs_registered"`
}

// Metrics returns the proxy's point-in-time counters.
func (p *Proxy) Metrics() MetricsSnapshot {
	p.mu.Lock()
	snap := MetricsSnapshot{
		Cluster:          p.met,
		MigrationLatency: p.migHist.Summary(),
		Programs:         len(p.programs),
	}
	p.mu.Unlock()
	snap.Cluster.BackendsLive, snap.Cluster.BackendsDown = 0, 0
	for _, b := range p.backends {
		b.mu.Lock()
		st := BackendStatus{URL: b.url, Up: b.up, BootID: b.bootID, Sessions: b.sessions, Programs: len(b.known)}
		b.mu.Unlock()
		if st.Up {
			snap.Cluster.BackendsLive++
		} else {
			snap.Cluster.BackendsDown++
		}
		snap.Backends = append(snap.Backends, st)
	}
	p.routesMu.RLock()
	snap.Routes = len(p.routes)
	p.routesMu.RUnlock()
	return snap
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
