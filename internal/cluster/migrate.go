package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
)

// Session migration: move a live session between backends with no
// visible state change. The route's write lock is the whole fence —
// in-flight requests drain (they hold it shared), new requests block,
// and by the time the lock releases the route names the target. The
// moved state is the server's ExportPayload: a versioned snapshot of
// WM, refraction, conflict/time-tag state and pending (accept) input,
// restored on the target through the same machinery crash recovery
// uses, so firing behavior after the move is byte-identical.

// MigrateResult reports one migration.
type MigrateResult struct {
	ID        string `json:"id"`
	From      string `json:"from"`
	To        string `json:"to"`
	WMSize    int    `json:"wm_size"`
	ElapsedUs int64  `json:"elapsed_us"`
}

// Migrate moves session id to the named target backend (base URL or
// its index as a string; empty picks the next live ring candidate
// after the current holder).
func (p *Proxy) Migrate(id, target string) (*MigrateResult, error) {
	rt, err := p.resolve(id)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	src := rt.backend

	dst, err := p.pickTarget(id, src, target)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := p.migrateLocked(id, src, dst)
	if err != nil {
		return nil, err
	}
	rt.backend = dst
	d := time.Since(start)
	p.mu.Lock()
	p.met.Migrations++
	p.migHist.Observe(d)
	p.mu.Unlock()
	res.ElapsedUs = d.Microseconds()
	return res, nil
}

// pickTarget resolves the migration destination: explicit URL/index,
// or the first live ring candidate that isn't the source.
func (p *Proxy) pickTarget(id string, src int, target string) (int, error) {
	if target != "" {
		for n, b := range p.backends {
			if b.url == target || fmt.Sprint(n) == target {
				if n == src {
					return -1, fmt.Errorf("session %q is already on %s", id, b.url)
				}
				b.mu.Lock()
				up := b.up
				b.mu.Unlock()
				if !up {
					return -1, fmt.Errorf("target backend %s is down", b.url)
				}
				return n, nil
			}
		}
		return -1, fmt.Errorf("unknown target backend %q", target)
	}
	for _, n := range p.ring.Candidates(id) {
		if n == src {
			continue
		}
		b := p.backends[n]
		b.mu.Lock()
		up := b.up
		b.mu.Unlock()
		if up {
			return n, nil
		}
	}
	return -1, fmt.Errorf("no live backend to migrate %q to", id)
}

// migrateLocked runs the export → import → delete sequence. Caller
// holds the route write lock. On any failure the session stays on the
// source and the route is unchanged; a half-imported target copy is
// deleted best-effort.
func (p *Proxy) migrateLocked(id string, src, dst int) (*MigrateResult, error) {
	var payload json.RawMessage
	status, err := p.backendDo("GET", p.backends[src].url+"/sessions/"+id+"/export", nil, &payload)
	if err != nil {
		p.countMigrateFail()
		return nil, fmt.Errorf("export from %s: %w (status %d)", p.backends[src].url, err, status)
	}
	var meta server.ExportPayload
	if err := json.Unmarshal(payload, &meta); err != nil {
		p.countMigrateFail()
		return nil, fmt.Errorf("export payload: %w", err)
	}
	// The import compiles through the target's shared cache; record the
	// program as resident there either way, so later creates skip the push.
	hash := hashOf(meta.Config.Program)
	if _, err := p.backendDo("POST", p.backends[dst].url+"/sessions/import", payload, nil); err != nil {
		p.countMigrateFail()
		return nil, fmt.Errorf("import to %s: %w", p.backends[dst].url, err)
	}
	b := p.backends[dst]
	b.mu.Lock()
	b.known[hash] = struct{}{}
	b.sessions++
	b.mu.Unlock()
	// Source delete is best-effort: the route flip already isolates the
	// stale copy, and a dead source drops it on its own.
	if st, derr := p.backendDo("DELETE", p.backends[src].url+"/sessions/"+id, nil, nil); derr == nil && st == http.StatusNoContent {
		sb := p.backends[src]
		sb.mu.Lock()
		if sb.sessions > 0 {
			sb.sessions--
		}
		sb.mu.Unlock()
	}
	return &MigrateResult{
		ID:     id,
		From:   p.backends[src].url,
		To:     p.backends[dst].url,
		WMSize: meta.WMSize,
	}, nil
}

func (p *Proxy) countMigrateFail() {
	p.mu.Lock()
	p.met.MigrationFails++
	p.mu.Unlock()
}
