// Package repl implements the interactive OPS5 top level: the command
// loop the original interpreter offered around a loaded program — run,
// wm, pm, cs, matches, make, remove — built on the vs2 matcher so the
// matches command can inspect the token hash tables.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/rhs"
	"repro/internal/seqmatch"
	"repro/internal/wm"
)

// REPL holds one interactive session.
type REPL struct {
	prog    *ops5.Program
	net     *rete.Network
	cs      *conflict.Set
	matcher *seqmatch.Matcher
	eng     *engine.Engine
	out     io.Writer
	watch   int // 0 silent, 1 firings, 2 firings + WM changes
}

// New loads a program into a fresh session. Top-level makes run
// immediately, as the OPS5 loader did.
func New(src string, out io.Writer) (*REPL, error) {
	prog, err := ops5.Parse(src)
	if err != nil {
		return nil, err
	}
	net, err := rete.Compile(prog)
	if err != nil {
		return nil, err
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	eng, err := engine.New(prog, net, cs, m, out)
	if err != nil {
		return nil, err
	}
	if err := eng.Init(); err != nil {
		return nil, err
	}
	// The program's own (watch N) declaration sets the initial trace
	// level; without one the top level defaults to tracing firings.
	watch := 1
	if prog.Watch >= 0 {
		watch = prog.Watch
	}
	return &REPL{prog: prog, net: net, cs: cs, matcher: m, eng: eng, out: out, watch: watch}, nil
}

// Run reads commands until exit or EOF. Parenthesized forms may span
// lines: input accumulates until the parens balance, so a production
// can be typed at the prompt the way it appears in a source file.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	// (accept)/(acceptline) read from the same input stream, the way the
	// original top level shared the terminal between commands and input.
	r.eng.IO = engine.NewScannerIO(r.prog.Symbols, sc)
	fmt.Fprintln(r.out, `ops5 top level — "help" lists commands`)
	var pending strings.Builder
	depth := 0
	for {
		if pending.Len() == 0 {
			fmt.Fprint(r.out, "> ")
		} else {
			fmt.Fprint(r.out, "... ")
		}
		if !sc.Scan() {
			fmt.Fprintln(r.out)
			return sc.Err()
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 {
			if trimmed == "" {
				continue
			}
			if trimmed == "exit" || trimmed == "quit" {
				return nil
			}
			if !strings.HasPrefix(trimmed, "(") {
				if err := r.Exec(trimmed); err != nil {
					fmt.Fprintln(r.out, "error:", err)
				}
				continue
			}
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		depth += strings.Count(line, "(") - strings.Count(line, ")")
		if depth > 0 {
			continue
		}
		form := pending.String()
		pending.Reset()
		depth = 0
		if err := r.Exec(form); err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	}
}

// formHead returns the head symbol of a parenthesized form, e.g. "p"
// for "(p r1 ...)".
func formHead(form string) string {
	fields := strings.Fields(strings.TrimPrefix(form, "("))
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// Exec runs one command line or one complete parenthesized form. A
// blank or whitespace-only line is a no-op, so callers other than Run
// can pass raw input safely.
func (r *REPL) Exec(line string) error {
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "(") {
		switch formHead(line) {
		case "p", "excise":
			return r.doBuild(line)
		case "watch":
			// (watch N) at the prompt is the command in its source form.
			inner := strings.TrimSuffix(strings.TrimPrefix(line, "("), ")")
			return r.Exec(strings.TrimSpace(inner))
		default:
			return r.doMake(line)
		}
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		r.help()
	case "run":
		return r.doRun(args)
	case "wm":
		r.doWM(args)
	case "pm":
		return r.doPM(args)
	case "rules":
		r.doRules()
	case "cs":
		r.doCS()
	case "matches":
		return r.doMatches(args)
	case "make":
		return r.doMake("(" + line + ")")
	case "remove":
		return r.doRemove(args)
	case "excise":
		if len(args) != 1 {
			return fmt.Errorf("usage: excise <rule>")
		}
		return r.doBuild("(excise " + args[0] + ")")
	case "network":
		s := r.net.Summarize()
		fmt.Fprintf(r.out, "%d rules, %d alpha chains (%d const tests), %d two-input nodes (%d negated), %d terminals\n",
			s.Rules, s.Chains, s.ConstTests, s.Joins, s.NegatedJoins, s.Terminals)
	case "strategy":
		fmt.Fprintln(r.out, r.prog.Strategy)
	case "watch":
		if len(args) != 1 || len(args[0]) != 1 || args[0][0] < '0' || args[0][0] > '2' {
			return fmt.Errorf("usage: watch 0|1|2")
		}
		r.watch = int(args[0][0] - '0')
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `commands:
  run [n]           fire n recognize-act cycles (default: to quiescence)
  wm [class]        print working memory, optionally one class
  pm <rule>         print a production
  rules             list production names
  cs                print the conflict set
  matches <rule>    token counts in the rule's join memories
  make <class> ...  assert a working-memory element, e.g. make goal ^type go
  remove <timetag>  retract the element with that time tag
  (p <name> ...)    build a production into the running engine
  excise <rule>     remove a production (also: the (excise name) form)
  network           network statistics
  strategy          show the conflict-resolution strategy
  watch 0|1|2       trace nothing | firings | firings + WM changes
  exit              leave
`)
}

func (r *REPL) doRun(args []string) error {
	n := 0
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("run: %q is not a number", args[0])
		}
		n = v
	}
	if r.eng.Halted() {
		fmt.Fprintln(r.out, "(halted — assert something to continue matching, firing stays stopped)")
		return nil
	}
	res, err := r.eng.Run(engine.Options{MaxCycles: n, TraceFires: r.watch >= 1, TraceWMEs: r.watch >= 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "%d firings", res.Cycles)
	if res.Halted {
		fmt.Fprint(r.out, " (halt)")
	}
	fmt.Fprintln(r.out)
	return nil
}

func (r *REPL) doWM(args []string) {
	count := 0
	for _, w := range r.eng.WM.Snapshot() {
		s := w.String(r.prog.Symbols, r.prog.AttrName)
		if len(args) > 0 && !strings.HasPrefix(s, "("+args[0]+" ") && s != "("+args[0]+")" {
			continue
		}
		fmt.Fprintf(r.out, "%4d: %s\n", w.TimeTag, s)
		count++
	}
	fmt.Fprintf(r.out, "%d elements\n", count)
}

func (r *REPL) doPM(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pm <rule>")
	}
	cr := r.net.RuleByName(args[0])
	if cr == nil {
		return fmt.Errorf("no production %q", args[0])
	}
	fmt.Fprintln(r.out, r.prog.FormatRule(cr.Rule))
	return nil
}

func (r *REPL) doRules() {
	for _, cr := range r.net.Rules {
		fmt.Fprintf(r.out, "%s (%d CEs, %d actions)\n", cr.Rule.Name, len(cr.Rule.CEs), len(cr.Rule.Actions))
	}
}

// doBuild applies a batch of (p ...) / (excise name) forms to the live
// engine and reports the resulting epoch and node sharing.
func (r *REPL) doBuild(src string) error {
	added, excised, err := r.eng.AddRules(src)
	for _, name := range excised {
		fmt.Fprintf(r.out, "excised %s\n", name)
	}
	for _, name := range added {
		fmt.Fprintf(r.out, "built %s\n", name)
	}
	r.net = r.eng.Net
	if len(added)+len(excised) > 0 {
		s := r.net.Summarize()
		fmt.Fprintf(r.out, "epoch %d: %d rules, %d chains (%d shared), %d joins (%d shared)\n",
			s.Epoch, s.Rules, s.Chains, s.SharedChains, s.Joins, s.SharedJoins)
	}
	return err
}

func (r *REPL) doCS() {
	insts := r.cs.Snapshot()
	sort.Slice(insts, func(i, j int) bool { return insts[i].Rule.Index < insts[j].Rule.Index })
	next := r.cs.Select() // the one conflict resolution would fire
	for _, inst := range insts {
		var tags []string
		for _, w := range inst.Wmes {
			tags = append(tags, strconv.Itoa(w.TimeTag))
		}
		state := ""
		if inst.Fired {
			state = " (fired)"
		}
		marker := "  "
		if inst == next {
			marker = "=>" // dominant under the active strategy
		}
		fmt.Fprintf(r.out, "%s %s [%s]%s\n", marker, inst.Rule.Rule.Name, strings.Join(tags, " "), state)
	}
	fmt.Fprintf(r.out, "%d instantiations\n", len(insts))
}

// doMatches shows, per two-input node of the rule's chain, the tokens
// in its left and right memories — the OPS5 matches command.
func (r *REPL) doMatches(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: matches <rule>")
	}
	name := args[0]
	cr := r.net.RuleByName(name)
	if cr == nil {
		return fmt.Errorf("no production %q", name)
	}
	sizes := r.matcher.Table.SizeByNode(r.net.NumJoinIDs())
	var joins []*rete.JoinNode
	for _, j := range r.net.Joins {
		for _, rn := range r.net.RuleNamesOf(j) {
			if rn == name {
				joins = append(joins, j)
			}
		}
	}
	sort.Slice(joins, func(i, k int) bool { return joins[i].LeftLen < joins[k].LeftLen })
	for _, j := range joins {
		kind := "and"
		if j.Negated {
			kind = "not"
		}
		shared := ""
		if n := len(r.net.RuleNamesOf(j)); n > 1 {
			shared = fmt.Sprintf(" (shared with %d rules)", n-1)
		}
		fmt.Fprintf(r.out, "join %d [%s, %d CEs matched]: left %d tokens, right %d tokens%s\n",
			j.ID, kind, j.LeftLen, sizes[j.ID][0], sizes[j.ID][1], shared)
	}
	n := 0
	for _, inst := range r.cs.Snapshot() {
		if inst.Rule == cr {
			n++
		}
	}
	fmt.Fprintf(r.out, "%d complete instantiations\n", n)
	return nil
}

func (r *REPL) doMake(form string) error {
	act, err := r.prog.ParseTopLevelMake(form)
	if err != nil {
		return err
	}
	n := r.prog.ClassOf(act.Class).NumFields()
	for _, s := range act.Sets {
		// Vector-attribute continuation values land past NumFields.
		if s.Field+1 > n {
			n = s.Field + 1
		}
	}
	fields := make([]wm.Value, n)
	fields[0] = wm.Sym(act.Class)
	for _, s := range act.Sets {
		v, err := constValue(s.Expr)
		if err != nil {
			return err
		}
		fields[s.Field] = v
	}
	w, err := r.eng.Assert(fields)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "asserted %d: %s\n", w.TimeTag, w.String(r.prog.Symbols, r.prog.AttrName))
	return nil
}

func constValue(e *ops5.Expr) (wm.Value, error) {
	switch e.Kind {
	case ops5.ExprConst:
		return e.Const, nil
	case ops5.ExprCompute:
		l, err := constValue(e.L)
		if err != nil {
			return wm.Nil, err
		}
		rv, err := constValue(e.R)
		if err != nil {
			return wm.Nil, err
		}
		return rhs.ComputeOp(e.Op, l, rv)
	default:
		return wm.Nil, fmt.Errorf("non-constant value in top-level make")
	}
}

func (r *REPL) doRemove(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: remove <timetag>")
	}
	tag, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("remove: %q is not a time tag", args[0])
	}
	ok, err := r.eng.Retract(tag)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no element with time tag %d", tag)
	}
	fmt.Fprintf(r.out, "retracted %d\n", tag)
	return nil
}
