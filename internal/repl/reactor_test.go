package repl_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/repl"
)

// TestReactorThroughREPL drives the REACTOR port over the interactive
// top level: commands and (accept)/(acceptline) answers interleave on
// the same scripted stdin, the way a terminal session would.
func TestReactorThroughREPL(t *testing.T) {
	src, err := os.ReadFile("../../examples/reactor/reactor.ops")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r, err := repl.New(string(src), &out)
	if err != nil {
		t.Fatal(err)
	}
	stdin := strings.Join([]string{
		"run",
		"case-42", // incident id
		"10",      // hpis-flow
		"55",      // sg-level
		"30",      // pcs-pressure
		"60",      // containment-pressure
		"80",      // containment-radiation
		"all systems nominal", // operator log line, read by (acceptline)
		"wm trace",
		"exit",
	}, "\n") + "\n"
	if err := r.Run(strings.NewReader(stdin)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"incident case-42 diagnosis: loca",
		"audit trail confirms loca",
		"session complete",
		"(halt)",
		"(trace ^elt diagnosis loca confirmed)",
		"(trace ^elt log all systems nominal)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in session output:\n%s", want, got)
		}
	}
}

// TestWatchParenFormAndProgramDefault checks that the (watch N) source
// form works at the prompt and that a program-level (watch 0) sets the
// session's initial trace level.
func TestWatchParenFormAndProgramDefault(t *testing.T) {
	src := `
(watch 0)
(literalize c v)
(p bump (c ^v <x>) --> (modify 1 ^v (compute <x> + 1)))
(make c ^v 0)
`
	var out strings.Builder
	r, err := repl.New(src, &out)
	if err != nil {
		t.Fatal(err)
	}
	// (watch 0) from the program: run silently.
	if got := exec(t, r, &out, "run 1"); strings.Contains(got, "1. bump") {
		t.Fatalf("watch 0 still traced firings:\n%s", got)
	}
	// Raise to 2 with the parenthesized form and run loud.
	if err := r.Exec("(watch 2)"); err != nil {
		t.Fatal(err)
	}
	got := exec(t, r, &out, "run 1")
	if !strings.Contains(got, "bump") || !strings.Contains(got, "=>WM") {
		t.Fatalf("watch 2 output missing traces:\n%s", got)
	}
}
