package repl_test

import (
	"strings"
	"testing"

	"repro/internal/repl"
)

const session = `
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (modify 2 ^selected yes))
(make block ^id b1 ^color red ^selected no)
(make block ^id b2 ^color blue ^selected no)
`

func newREPL(t *testing.T) (*repl.REPL, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	r, err := repl.New(session, &out)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	return r, &out
}

func exec(t *testing.T, r *repl.REPL, out *strings.Builder, cmd string) string {
	t.Helper()
	out.Reset()
	if err := r.Exec(cmd); err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	return out.String()
}

func TestWMListsElements(t *testing.T) {
	r, out := newREPL(t)
	got := exec(t, r, out, "wm")
	if !strings.Contains(got, "^id b1") || !strings.Contains(got, "2 elements") {
		t.Fatalf("wm output:\n%s", got)
	}
	got = exec(t, r, out, "wm block")
	if !strings.Contains(got, "2 elements") {
		t.Fatalf("wm block output:\n%s", got)
	}
}

func TestMakeRunAndConflictSet(t *testing.T) {
	r, out := newREPL(t)
	// Before the goal exists, nothing matches.
	if got := exec(t, r, out, "cs"); !strings.Contains(got, "0 instantiations") {
		t.Fatalf("cs before goal:\n%s", got)
	}
	got := exec(t, r, out, "make goal ^type find-block ^color red")
	if !strings.Contains(got, "asserted") {
		t.Fatalf("make output: %s", got)
	}
	if got := exec(t, r, out, "cs"); !strings.Contains(got, "find-colored-block") ||
		!strings.Contains(got, "1 instantiations") {
		t.Fatalf("cs after goal:\n%s", got)
	}
	got = exec(t, r, out, "run 5")
	if !strings.Contains(got, "1. find-colored-block") || !strings.Contains(got, "1 firings") {
		t.Fatalf("run output:\n%s", got)
	}
	if got := exec(t, r, out, "wm block"); !strings.Contains(got, "^selected yes") {
		t.Fatalf("block not selected:\n%s", got)
	}
}

func TestRemoveRetracts(t *testing.T) {
	r, out := newREPL(t)
	exec(t, r, out, "make goal ^type find-block ^color red")
	// Retract the red block (time tag 1); the instantiation must vanish.
	got := exec(t, r, out, "remove 1")
	if !strings.Contains(got, "retracted 1") {
		t.Fatalf("remove output: %s", got)
	}
	if got := exec(t, r, out, "cs"); !strings.Contains(got, "0 instantiations") {
		t.Fatalf("cs after retract:\n%s", got)
	}
	out.Reset()
	if err := r.Exec("remove 99"); err == nil {
		t.Fatal("removing a dead tag should error")
	}
}

func TestPMPrintsProduction(t *testing.T) {
	r, out := newREPL(t)
	got := exec(t, r, out, "pm find-colored-block")
	if !strings.Contains(got, "(p find-colored-block") || !strings.Contains(got, "-->") {
		t.Fatalf("pm output:\n%s", got)
	}
	if err := r.Exec("pm nonesuch"); err == nil {
		t.Fatal("pm of unknown rule should error")
	}
}

func TestMatchesShowsTokenCounts(t *testing.T) {
	r, out := newREPL(t)
	got := exec(t, r, out, "matches find-colored-block")
	// No goal yet: the join's right memory holds both unselected blocks
	// (color is a variable, so only ^selected no filters at the alpha
	// level); the left memory is empty.
	if !strings.Contains(got, "left 0 tokens, right 2 tokens") {
		t.Fatalf("matches before goal:\n%s", got)
	}
	exec(t, r, out, "make goal ^type find-block ^color red")
	got = exec(t, r, out, "matches find-colored-block")
	if !strings.Contains(got, "left 1 tokens, right 2 tokens") ||
		!strings.Contains(got, "1 complete instantiations") {
		t.Fatalf("matches after goal:\n%s", got)
	}
}

func TestRulesAndNetwork(t *testing.T) {
	r, out := newREPL(t)
	if got := exec(t, r, out, "rules"); !strings.Contains(got, "find-colored-block (2 CEs, 1 actions)") {
		t.Fatalf("rules output: %s", got)
	}
	if got := exec(t, r, out, "network"); !strings.Contains(got, "1 rules") {
		t.Fatalf("network output: %s", got)
	}
}

func TestRunLoopViaReader(t *testing.T) {
	var out strings.Builder
	r, err := repl.New(session, &out)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("make goal ^type find-block ^color blue\nrun\nexit\n")
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "find-colored-block") {
		t.Fatalf("session transcript:\n%s", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	r, _ := newREPL(t)
	if err := r.Exec("frobnicate"); err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestParenMakeForm(t *testing.T) {
	r, out := newREPL(t)
	got := exec(t, r, out, "(make goal ^type find-block ^color red)")
	if !strings.Contains(got, "asserted") {
		t.Fatalf("paren make: %s", got)
	}
}

func TestWatchLevels(t *testing.T) {
	r, out := newREPL(t)
	exec(t, r, out, "make goal ^type find-block ^color red")
	exec(t, r, out, "watch 2")
	got := exec(t, r, out, "run")
	if !strings.Contains(got, "=>WM") || !strings.Contains(got, "<=WM") {
		t.Fatalf("watch 2 output missing WM traces:\n%s", got)
	}
	if err := r.Exec("watch 9"); err == nil {
		t.Fatal("watch 9 should error")
	}
}

func TestCSMarksDominantInstantiation(t *testing.T) {
	r, out := newREPL(t)
	exec(t, r, out, "make goal ^type find-block ^color red")
	got := exec(t, r, out, "cs")
	if !strings.Contains(got, "=> find-colored-block") {
		t.Fatalf("dominant instantiation not marked:\n%s", got)
	}
}

// TestBlankLinesAreNoOps guards the crash path where Exec indexed
// fields[0] of an empty split: blank and whitespace-only input must be
// accepted silently, whatever the caller.
func TestBlankLinesAreNoOps(t *testing.T) {
	r, _ := newREPL(t)
	for _, line := range []string{"", " ", "\t", "   \t  "} {
		if err := r.Exec(line); err != nil {
			t.Errorf("Exec(%q) = %v, want nil", line, err)
		}
	}
}

// TestBuildProduction: a (p ...) form typed at the prompt compiles
// into the live network, prints the new epoch summary, and matches
// working memory asserted before it existed.
func TestBuildProduction(t *testing.T) {
	r, out := newREPL(t)
	got := exec(t, r, out, "(p spot-red (block ^id <i> ^color red) --> (write red))")
	if !strings.Contains(got, "built spot-red") || !strings.Contains(got, "epoch 1:") {
		t.Fatalf("build output:\n%s", got)
	}
	if !strings.Contains(got, "2 rules") {
		t.Fatalf("build summary missing rule count:\n%s", got)
	}
	// The pre-existing red block b1 is replayed into the new production.
	if got := exec(t, r, out, "cs"); !strings.Contains(got, "spot-red") {
		t.Fatalf("cs after build:\n%s", got)
	}
	if got := exec(t, r, out, "pm spot-red"); !strings.Contains(got, "(p spot-red") {
		t.Fatalf("pm of built rule:\n%s", got)
	}
}

// TestExciseCommand: excise <name> removes the production and its
// instantiations; rules/cs reflect the shrunken network.
func TestExciseCommand(t *testing.T) {
	r, out := newREPL(t)
	exec(t, r, out, "make goal ^type find-block ^color red")
	got := exec(t, r, out, "excise find-colored-block")
	if !strings.Contains(got, "excised find-colored-block") || !strings.Contains(got, "0 rules") {
		t.Fatalf("excise output:\n%s", got)
	}
	if got := exec(t, r, out, "cs"); !strings.Contains(got, "0 instantiations") {
		t.Fatalf("cs after excise:\n%s", got)
	}
	if err := r.Exec("excise ghost"); err == nil {
		t.Fatal("excising an unknown production should error")
	}
}

// TestMultiLineBuildViaReader: the interactive loop buffers an open
// (p ...) form across lines until the parens balance.
func TestMultiLineBuildViaReader(t *testing.T) {
	var out strings.Builder
	r, err := repl.New(session, &out)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`(p spot-blue
  (block ^id <i> ^color blue)
-->
  (write blue))
rules
exit
`)
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "built spot-blue") {
		t.Fatalf("multi-line build transcript:\n%s", got)
	}
	if !strings.Contains(got, "spot-blue (1 CEs, 1 actions)") {
		t.Fatalf("rules after multi-line build:\n%s", got)
	}
}

// TestBuildBadProductionKeepsEngine: a failed build reports the error
// and leaves the current epoch untouched.
func TestBuildBadProductionKeepsEngine(t *testing.T) {
	r, out := newREPL(t)
	if err := r.Exec("(p bad (mystery ^f 1) --> (halt))"); err == nil {
		t.Fatal("build with unknown class should error")
	}
	if got := exec(t, r, out, "network"); !strings.Contains(got, "1 rules") {
		t.Fatalf("network changed after failed build:\n%s", got)
	}
}

// TestNewRejectsBadProgram checks the loader reports parse failures as
// errors instead of panicking.
func TestNewRejectsBadProgram(t *testing.T) {
	var out strings.Builder
	for _, src := range []string{"(p broken", "(literalize)", "(p r --> (frobnicate))"} {
		if _, err := repl.New(src, &out); err == nil {
			t.Errorf("New(%q) accepted a bad program", src)
		}
	}
}
