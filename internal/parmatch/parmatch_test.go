package parmatch_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

// runSeq runs a program on the vs2 sequential matcher.
func runSeq(t *testing.T, src string, maxCycles int) *engine.Result {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// runPar runs a program on the parallel matcher with the given config.
func runPar(t *testing.T, src string, cfg parmatch.Config, maxCycles int) *engine.Result {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := parmatch.New(net, cfg, cs)
	defer m.Close()
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true, CheckEvery: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cs.Drained() {
		t.Fatalf("conflict set has parked deletes after run")
	}
	return res
}

// chainSrc builds a program whose rules join several classes and cascade
// makes/removes, stressing token propagation.
func chainSrc(n int) string {
	var b strings.Builder
	b.WriteString("(literalize item kind val)\n(literalize stage num)\n(literalize done num)\n")
	// Each stage rule consumes the stage marker, pairs items, and
	// advances; a final rule halts.
	fmt.Fprintf(&b, `
(p pair
  (stage ^num {<n> < %d})
  (item ^kind a ^val <v>)
  (item ^kind b ^val <v>)
-->
  (make done ^num <n>)
  (modify 1 ^num (compute <n> + 1)))
(p finish
  (stage ^num %d)
-->
  (halt))
(make stage ^num 0)
`, n, n)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "(make item ^kind a ^val %d)\n", i)
		fmt.Fprintf(&b, "(make item ^kind b ^val %d)\n", i)
	}
	return b.String()
}

// negSrc mixes negation with churn: blockers appear and disappear.
const negSrc = `
(literalize gate open)
(literalize blocker id)
(literalize tick num)
(literalize out num)
(p spawn-blocker
  (tick ^num {<n> > 0})
  - (blocker ^id <n>)
  - (out ^num <n>)
-->
  (make blocker ^id <n>))
(p clear-blocker
  (tick ^num <n>)
  (blocker ^id <n>)
-->
  (remove 2)
  (make out ^num <n>)
  (modify 1 ^num (compute <n> - 1)))
(p finish
  (tick ^num 0)
-->
  (halt))
(make tick ^num 12)
`

func configs() []parmatch.Config {
	return []parmatch.Config{
		{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple},
		{Procs: 3, Queues: 1, Scheme: parmatch.SchemeSimple},
		{Procs: 4, Queues: 4, Scheme: parmatch.SchemeSimple},
		{Procs: 3, Queues: 2, Scheme: parmatch.SchemeMRSW},
		{Procs: 7, Queues: 8, Scheme: parmatch.SchemeMRSW},
	}
}

// TestParallelMatchesSequential verifies that every parallel
// configuration fires exactly the sequence the sequential matcher does.
func TestParallelMatchesSequential(t *testing.T) {
	srcs := map[string]string{
		"chain": chainSrc(25),
		"neg":   negSrc,
	}
	for name, src := range srcs {
		want := runSeq(t, src, 500)
		for _, cfg := range configs() {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/p%dq%d%s", name, cfg.Procs, cfg.Queues, cfg.Scheme), func(t *testing.T) {
				got := runPar(t, src, cfg, 500)
				if len(got.Firings) != len(want.Firings) {
					t.Fatalf("firing count: got %d want %d", len(got.Firings), len(want.Firings))
				}
				for i := range want.Firings {
					if got.Firings[i].Rule != want.Firings[i].Rule {
						t.Fatalf("firing %d: got %s want %s", i, got.Firings[i].Rule, want.Firings[i].Rule)
					}
				}
				if got.Halted != want.Halted || got.WMSize != want.WMSize {
					t.Fatalf("end state: got halted=%v wm=%d want halted=%v wm=%d",
						got.Halted, got.WMSize, want.Halted, want.WMSize)
				}
			})
		}
	}
}

// TestRepeatedParallelRunsAreStable reruns one config many times to
// shake out schedule-dependent divergence.
func TestRepeatedParallelRunsAreStable(t *testing.T) {
	src := chainSrc(15)
	want := runSeq(t, src, 500)
	cfg := parmatch.Config{Procs: 4, Queues: 2, Scheme: parmatch.SchemeMRSW, Lines: 64}
	for i := 0; i < 10; i++ {
		got := runPar(t, src, cfg, 500)
		if len(got.Firings) != len(want.Firings) {
			t.Fatalf("iteration %d: firing count %d want %d", i, len(got.Firings), len(want.Firings))
		}
	}
}

// runParM is runPar but also hands back the matcher (still open inside
// the callback) so tests can read unlink and examination counters while
// the engine is drained.
func runParM(t *testing.T, src string, cfg parmatch.Config, maxCycles int,
	inspect func(*parmatch.Matcher)) *engine.Result {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := parmatch.New(net, cfg, cs)
	defer m.Close()
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true, CheckEvery: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if inspect != nil {
		inspect(m)
	}
	return res
}

// TestUnlinkMatchesSequential verifies that right-unlinking changes the
// work done, never the results: every configuration with Unlink on
// fires exactly the sequence the sequential matcher does, on both the
// positive chain workload and the negation-churn workload.
func TestUnlinkMatchesSequential(t *testing.T) {
	srcs := map[string]string{
		"chain": chainSrc(25),
		"neg":   negSrc,
	}
	for name, src := range srcs {
		want := runSeq(t, src, 500)
		for _, cfg := range configs() {
			cfg := cfg
			cfg.Unlink = true
			t.Run(fmt.Sprintf("%s/p%dq%d%s", name, cfg.Procs, cfg.Queues, cfg.Scheme), func(t *testing.T) {
				var skips, relinks int64
				got := runParM(t, src, cfg, 500, func(m *parmatch.Matcher) {
					ms := m.MatchStats()
					skips, relinks = ms.UnlinkSkips, ms.Relinks
					if len(m.JoinExamined()) == 0 {
						t.Errorf("JoinExamined returned no per-join counters")
					}
				})
				if len(got.Firings) != len(want.Firings) {
					t.Fatalf("firing count: got %d want %d (skips=%d relinks=%d)",
						len(got.Firings), len(want.Firings), skips, relinks)
				}
				for i := range want.Firings {
					if got.Firings[i].Rule != want.Firings[i].Rule {
						t.Fatalf("firing %d: got %s want %s", i, got.Firings[i].Rule, want.Firings[i].Rule)
					}
				}
				if got.Halted != want.Halted || got.WMSize != want.WMSize {
					t.Fatalf("end state: got halted=%v wm=%d want halted=%v wm=%d",
						got.Halted, got.WMSize, want.Halted, want.WMSize)
				}
			})
		}
	}
}

// TestUnlinkSkipsWork checks that a join whose left side never
// materializes really does buffer its right deliveries instead of
// storing and searching them, and stays unlinked through the run.
func TestUnlinkSkipsWork(t *testing.T) {
	// Rule "dead" joins (ghost, item): no ghost is ever made, so the
	// item right deliveries into its second join are pure null work.
	src := `
(literalize ghost id)
(literalize item kind val)
(literalize tick num)
(p dead
  (ghost ^id <g>)
  (item ^val <g>)
-->
  (halt))
(p count-down
  (tick ^num {<n> > 0})
-->
  (modify 1 ^num (compute <n> - 1)))
(p finish
  (tick ^num 0)
-->
  (halt))
(make tick ^num 3)
`
	for i := 0; i < 8; i++ {
		src += fmt.Sprintf("(make item ^kind a ^val %d)\n", i)
	}
	cfg := parmatch.Config{Procs: 3, Queues: 2, Scheme: parmatch.SchemeMRSW, Unlink: true}
	runParM(t, src, cfg, 50, func(m *parmatch.Matcher) {
		ms := m.MatchStats()
		if ms.UnlinkSkips < 8 {
			t.Errorf("UnlinkSkips = %d, want >= 8 (one per buffered item)", ms.UnlinkSkips)
		}
		if m.UnlinkedJoins() == 0 {
			t.Errorf("dead join should still be unlinked at end of run")
		}
	})
}
