// Package parmatch is the PSM-E parallel matcher: one control process
// (the engine goroutine, which calls Submit/Drain) plus k match
// goroutines that cooperate to pass tokens through a single shared Rete
// network (§3.1). Tokens awaiting processing live on one or more task
// queues; node memories live in the two global hash tables, with one
// lock per line in either the simple or the multiple-reader-single-writer
// scheme; the global TaskCount tells the control process when match is
// over.
//
// This backend runs real concurrency and is exercised under the race
// detector; the deterministic Encore Multimax timing model lives in
// internal/multimax and shares this package's protocol semantics.
package parmatch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashmem"
	"repro/internal/rete"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/internal/taskqueue"
	"repro/internal/wm"
)

// Scheme selects the hash-line locking discipline.
type Scheme int

// Locking schemes (§3.2).
const (
	SchemeSimple Scheme = iota // one Free/Taken flag per line
	SchemeMRSW                 // multiple-reader-single-writer per line
)

func (s Scheme) String() string {
	if s == SchemeSimple {
		return "simple"
	}
	return "mrsw"
}

// Config sizes the matcher.
type Config struct {
	Procs  int    // number of match processes (the k of "1+k")
	Queues int    // number of task queues
	Lines  int    // hash-table lines (0 = 16384)
	Scheme Scheme // line-lock scheme
}

// pad keeps per-worker counters on separate cache lines.
type workerStats struct {
	c stats.Contention
	_ [64]byte
}

// Matcher is the parallel match backend. It implements engine.Matcher.
type Matcher struct {
	net    *rete.Network
	table  *hashmem.Table
	simple []spinlock.Lock
	mrsw   []spinlock.MRSW
	queues *taskqueue.Queues
	sink   rete.TerminalSink
	cfg    Config

	stop    atomic.Bool
	wg      sync.WaitGroup
	ws      []workerStats // index Procs is the control process
	pushRR  atomic.Int64
	actives atomic.Int64 // node activations processed (tasks completed)
	changes atomic.Int64 // working-memory changes submitted
}

// New builds the matcher and starts its match goroutines. Call Close
// when done with it.
func New(net *rete.Network, cfg Config, sink rete.TerminalSink) *Matcher {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Lines <= 0 {
		cfg.Lines = 16384
	}
	m := &Matcher{
		net:    net,
		table:  hashmem.New(cfg.Lines),
		queues: taskqueue.New(cfg.Queues),
		sink:   sink,
		cfg:    cfg,
		ws:     make([]workerStats, cfg.Procs+1),
	}
	n := len(m.table.Lines)
	if cfg.Scheme == SchemeSimple {
		m.simple = make([]spinlock.Lock, n)
	} else {
		m.mrsw = make([]spinlock.MRSW, n)
	}
	for i := 0; i < cfg.Procs; i++ {
		m.wg.Add(1)
		go m.worker(i)
	}
	return m
}

// Submit pushes one working-memory change as a root token. The control
// process proceeds with RHS evaluation while match goroutines pick the
// token up — the pipelining of §3.1.
func (m *Matcher) Submit(sign bool, w *wm.WME) {
	m.changes.Add(1)
	t := &taskqueue.Task{Root: w, Sign: sign}
	spins := m.queues.Push(int(m.pushRR.Add(1)), t)
	cs := &m.ws[m.cfg.Procs].c
	cs.QueueAcquires++
	cs.QueueSpins += spins
}

// Drain blocks until TaskCount reaches zero.
func (m *Matcher) Drain() { m.queues.WaitIdle() }

// Close stops the match goroutines. The matcher must be idle.
func (m *Matcher) Close() {
	m.stop.Store(true)
	m.wg.Wait()
}

// Activations reports the number of tasks processed so far.
func (m *Matcher) Activations() int64 { return m.actives.Load() }

// MatchStats returns the counters the parallel matcher can attribute
// exactly: WM changes submitted and node activations (tasks) processed.
// The memory-scan statistics stay with the instrumented sequential
// matchers, as in the paper. Safe to call while drained.
func (m *Matcher) MatchStats() stats.Match {
	return stats.Match{
		WMChanges:   m.changes.Load(),
		Activations: m.actives.Load(),
	}
}

// Contention merges the per-process spin counters.
func (m *Matcher) Contention() stats.Contention {
	var out stats.Contention
	for i := range m.ws {
		out.Add(&m.ws[i].c)
	}
	return out
}

// CheckInvariants verifies the conjugate-pair invariant after a phase.
// Only call while drained (the TaskCount==0 edge makes worker writes
// visible).
func (m *Matcher) CheckInvariants() error {
	if n := m.queues.TaskCount.Load(); n != 0 {
		return fmt.Errorf("parmatch: CheckInvariants while %d tasks in flight", n)
	}
	return m.table.CheckDrained()
}

func (m *Matcher) worker(id int) {
	defer m.wg.Done()
	pref := id % m.queues.Len()
	rr := id
	idle := 0
	cs := &m.ws[id].c
	for {
		t, spins := m.queues.Pop(pref)
		if t == nil {
			if m.stop.Load() {
				return
			}
			idle++
			if idle > 256 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		cs.QueueAcquires++
		cs.QueueSpins += spins
		idle = 0
		m.process(t, &rr, cs)
		m.queues.Done()
		m.actives.Add(1)
	}
}

// push schedules a new task, rotating across queues.
func (m *Matcher) push(t *taskqueue.Task, rr *int, cs *stats.Contention) {
	*rr++
	spins := m.queues.Push(*rr, t)
	cs.QueueAcquires++
	cs.QueueSpins += spins
}

func (m *Matcher) process(t *taskqueue.Task, rr *int, cs *stats.Contention) {
	switch {
	case t.Root != nil:
		m.net.RootDeliver(t.Root, func(d rete.AlphaDest) {
			nt := &taskqueue.Task{Sign: t.Sign, Wmes: []*wm.WME{t.Root}}
			if d.Terminal != nil {
				nt.Term = d.Terminal
			} else {
				nt.Join = d.Join
				nt.Side = d.Side
			}
			m.push(nt, rr, cs)
		})
	case t.Term != nil:
		if t.Sign {
			m.sink.InsertInstantiation(t.Term.Rule, t.Wmes)
		} else {
			m.sink.RemoveInstantiation(t.Term.Rule, t.Wmes)
		}
	default:
		m.join(t, rr, cs)
	}
}

func (m *Matcher) join(t *taskqueue.Task, rr *int, cs *stats.Contention) {
	j := t.Join
	var hash uint64
	if t.Side == rete.Left {
		hash = j.LeftHash(t.Wmes)
	} else {
		hash = j.RightHash(t.Wmes[0])
	}
	idx := m.table.LineIndex(j, hash)
	line := &m.table.Lines[idx]
	emit := func(csign bool, cwmes []*wm.WME) {
		for _, succ := range j.Succs {
			m.push(&taskqueue.Task{Join: succ, Side: rete.Left, Sign: csign, Wmes: cwmes}, rr, cs)
		}
		for _, term := range j.Terminals {
			m.push(&taskqueue.Task{Term: term, Sign: csign, Wmes: cwmes}, rr, cs)
		}
	}
	if m.cfg.Scheme == SchemeSimple {
		spins := m.simple[idx].Acquire()
		m.recordLine(cs, t.Side, spins)
		entry, res := hashmem.UpdateOwn(line, j, t.Side, t.Sign, t.Wmes, hash, nil)
		if res.Proceeded {
			hashmem.SearchOpposite(line, j, t.Side, t.Sign, t.Wmes, entry, nil, emit)
		}
		m.simple[idx].Release()
		return
	}
	// MRSW: register for our side; wrong-side arrivals re-queue.
	ok, spins := m.mrsw[idx].Enter(int(t.Side))
	m.recordLine(cs, t.Side, spins)
	if !ok {
		// Requeue counts the queued copy; the worker's Done() after this
		// returns releases our in-process claim, so TaskCount stays
		// balanced at one for the still-pending token.
		cs.Requeues++
		m.queues.Requeue(*rr, t)
		return
	}
	spins = m.mrsw[idx].Mod.Acquire()
	m.recordLine(cs, t.Side, spins)
	entry, res := hashmem.UpdateOwn(line, j, t.Side, t.Sign, t.Wmes, hash, nil)
	if j.Negated && t.Side == rete.Left {
		// Negated-node left activations must compute or read the join
		// count atomically with the memory update: a concurrent left
		// delete of the same token would otherwise observe the entry
		// before its count is stored and emit an unmatched retraction.
		if res.Proceeded {
			hashmem.SearchOpposite(line, j, t.Side, t.Sign, t.Wmes, entry, nil, emit)
		}
		m.mrsw[idx].Mod.Release()
	} else {
		m.mrsw[idx].Mod.Release()
		if res.Proceeded {
			hashmem.SearchOpposite(line, j, t.Side, t.Sign, t.Wmes, entry, nil, emit)
		}
	}
	m.mrsw[idx].Exit()
}

func (m *Matcher) recordLine(cs *stats.Contention, side rete.Side, spins int64) {
	if side == rete.Left {
		cs.LineAcquiresLeft++
		cs.LineSpinsLeft += spins
	} else {
		cs.LineAcquiresRight++
		cs.LineSpinsRight += spins
	}
}
