// Package parmatch is the PSM-E parallel matcher: one control process
// (the engine goroutine, which calls Submit/Drain) plus k match
// goroutines that cooperate to pass tokens through a single shared Rete
// network (§3.1). Tokens awaiting processing live on per-worker local
// deques and one or more central task queues; node memories live in the
// two global hash tables, with one lock per line in either the simple
// or the multiple-reader-single-writer scheme; the global TaskCount
// tells the control process when match is over.
//
// Scheduling follows the paper's multiple-queue remedy for central
// queue contention (§4.2) taken one step further: each worker owns a
// bounded lock-free deque it pushes and pops without synchronization,
// spilling to the central spin-locked queues only on overflow and
// stealing from peers only when both its deque and the central queues
// are dry. The match hot path is also allocation-free in the steady
// state: task objects and memory entries recycle through per-worker
// free lists, and output token slices come from per-worker arenas
// (hashmem.Pools).
//
// This backend runs real concurrency and is exercised under the race
// detector; the deterministic Encore Multimax timing model lives in
// internal/multimax and shares this package's protocol semantics.
package parmatch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashmem"
	"repro/internal/rete"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/internal/taskqueue"
	"repro/internal/wm"
)

// Scheme selects the hash-line locking discipline.
type Scheme int

// Locking schemes (§3.2).
const (
	SchemeSimple Scheme = iota // one Free/Taken flag per line
	SchemeMRSW                 // multiple-reader-single-writer per line
)

func (s Scheme) String() string {
	if s == SchemeSimple {
		return "simple"
	}
	return "mrsw"
}

// Config sizes the matcher.
type Config struct {
	Procs  int    // number of match processes (the k of "1+k")
	Queues int    // number of central task queues
	Lines  int    // initial hash-table lines (0 = 16384)
	Scheme Scheme // line-lock scheme
	// LocalCap bounds each worker's local deque (0 = 256). Small values
	// force the overflow and steal paths, which the tests exploit.
	LocalCap int
	// Legacy pins the paper's fixed-size linked-list line layout instead
	// of the adaptive node-segregated default — the reference the
	// differential tests and bigmem benchmarks compare against.
	Legacy bool
	// Unlink enables right-unlinking of empty-left joins: right-side
	// tasks for a join whose left memory has never been non-empty are
	// buffered (per worker, lock-free) instead of hashed, stored and
	// searched, and the join is relinked — its buffer replayed through
	// the ordinary task machinery — at the next drain after its first
	// left token arrives. Negated joins never unlink.
	Unlink bool
}

// memState is one published generation of the token storage: the table
// plus the per-line lock array of the configured scheme, sized together
// so every line has exactly one lock at every table size. Workers load
// the whole bundle once per join task; the control process swaps it only
// while drained.
type memState struct {
	table  *hashmem.Table
	simple []spinlock.Lock
	mrsw   []spinlock.MRSW
}

// newMemState pairs a table with a fresh lock array of its size.
func newMemState(table *hashmem.Table, scheme Scheme) *memState {
	ms := &memState{table: table}
	n := len(table.Lines)
	if scheme == SchemeSimple {
		ms.simple = make([]spinlock.Lock, n)
	} else {
		ms.mrsw = make([]spinlock.MRSW, n)
	}
	return ms
}

// taskPoolCap bounds each worker's task free list.
const taskPoolCap = 1024

// stealWatermark is the local-deque depth at which a worker wakes a
// parked peer to steal from it.
const stealWatermark = 16

// pollBudget is how many scheduler yields a worker that ran dry spends
// polling before it parks: long enough for the control process to
// finish a typical RHS and submit the next phase, so one warm worker
// rides across phase boundaries instead of handing each phase to a
// cold peer.
const pollBudget = 512

// pad keeps per-worker counters on separate cache lines.
type workerStats struct {
	c stats.Contention
	_ [64]byte
}

// Matcher is the parallel match backend. It implements engine.Matcher.
type Matcher struct {
	// net is the current network epoch. Workers load it once per task;
	// SwapEpoch publishes a new epoch while the matcher is drained, so a
	// task never straddles two epochs and the atomic load is all the
	// steady-state match path pays for versioning.
	net atomic.Pointer[rete.Network]
	// mem bundles the token table with its per-line lock arrays. Workers
	// load the bundle once per join task; the control process publishes a
	// grown table (with lock arrays resized to match, so footnote 4's
	// one-lock-per-line discipline holds at every size) only while the
	// matcher is drained — the same atomic-pointer discipline net uses.
	mem      atomic.Pointer[memState]
	queues   *taskqueue.Queues
	rootFree *taskqueue.FreeList
	sink     rete.TerminalSink
	cfg      Config
	workers  []*wctx

	// Parked workers block on their own wake channel, and every path
	// that makes work visible outside a worker's own deque (Submit,
	// overflow spill, MRSW requeue, deep local backlog) kicks one of
	// them awake with a non-blocking token. This keeps phase-start
	// latency at a channel send instead of a sleep period, which is what
	// lets procs > cores configurations run at near-sequential speed.
	// lastParked remembers the most recent parker so a kick can target
	// the worker with the warmest cache (the one that drained the
	// previous phase) rather than an arbitrary cold one.
	multiCPU   bool         // >1 physical CPUs: backlog kicks can buy real parallelism
	parked     atomic.Int64 // workers currently registered as parked
	lastParked atomic.Int32 // id of the most recent parker (-1 before any)

	stop    atomic.Bool
	wg      sync.WaitGroup
	ws      []workerStats // index Procs is the control process
	pushRR  atomic.Int64
	actives atomic.Int64 // node activations processed (tasks completed)
	changes atomic.Int64 // working-memory changes submitted

	// unlinkSt is the right-unlinking state (nil when Config.Unlink is
	// off). Workers read the linked flags per task; the control process
	// flips them and replays buffers only at drained points, so a flag
	// is constant within a work phase.
	unlinkSt atomic.Pointer[unlinkState]
	relinks  int64 // control-only: joins relinked so far
}

// unlinkState carries the per-join-ID linked flags (1 = process
// normally; accessed atomically by workers) and the merged right-side
// buffers (net delivery count per WME; control-only, touched at
// drained points).
type unlinkState struct {
	linked []uint32
	bufs   []map[*wm.WME]int
}

// unlinkOp is one skipped right-side delivery, logged privately by the
// worker that would have processed it. The control process merges the
// logs while drained; the counts commute, so cross-worker op order
// doesn't matter.
type unlinkOp struct {
	join int32
	sign bool
	wme  *wm.WME
}

// wctx is one match process's private state: its local deque, free
// lists, arena, contention counters and the pre-bound closures that
// keep the hot path from allocating a closure per task.
type wctx struct {
	m     *Matcher
	id    int
	pref  int // preferred central queue
	rr    int // rotating central-queue cursor for spills and requeues
	local *taskqueue.Deque
	free  []*taskqueue.Task
	pools hashmem.Pools
	cs    *stats.Contention
	// rec carries this worker's per-node token counts and cumulative
	// opposite-memory examination counters. Each worker owns its own
	// recorder (no locks); the control process sums them at drained
	// points for relink decisions and the engine's match budget. Its
	// aggregate Match counters are not folded into MatchStats — the
	// scan statistics stay with the sequential instrumentation runs.
	rec *hashmem.Recorder
	// unlinkOps / unlinkSkips log this worker's skipped right-side
	// deliveries; merged and cleared by the control process at drains.
	unlinkOps   []unlinkOp
	unlinkSkips int64

	// Per-task state read by the pre-bound closures below.
	curNet  *rete.Network  // epoch loaded at task start (emit fan-out)
	curJoin *rete.JoinNode // join whose outputs emit fans out
	curSign bool           // sign of the root change being delivered
	curWME  *wm.WME        // root WME being delivered
	curRoot []*wm.WME      // shared length-1 token for curWME, built lazily

	emitFn    hashmem.Emit         // bound once to (*wctx).emit
	deliverFn func(rete.AlphaDest) // bound once to (*wctx).deliver

	wake     chan struct{} // cap-1 park channel; kicks land here
	isParked atomic.Bool   // registered as parked (kick target scan)
	didWork  bool          // processed a task since last claiming lastParked
	stealRot int
}

// New builds the matcher and starts its match goroutines. Call Close
// when done with it.
func New(net *rete.Network, cfg Config, sink rete.TerminalSink) *Matcher {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Lines <= 0 {
		cfg.Lines = 16384
	}
	m := &Matcher{
		queues:   taskqueue.New(cfg.Queues),
		rootFree: taskqueue.NewFreeList(0),
		sink:     sink,
		cfg:      cfg,
		multiCPU: runtime.NumCPU() > 1,
		ws:       make([]workerStats, cfg.Procs+1),
	}
	m.net.Store(net)
	m.lastParked.Store(-1)
	var table *hashmem.Table
	if cfg.Legacy {
		table = hashmem.NewLegacy(cfg.Lines)
	} else {
		table = hashmem.New(cfg.Lines)
	}
	m.mem.Store(newMemState(table, cfg.Scheme))
	// Build every worker context before starting any goroutine: workers
	// steal from each other's deques through this slice.
	m.workers = make([]*wctx, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		w := &wctx{
			m:     m,
			id:    i,
			pref:  i % m.queues.Len(),
			rr:    i,
			local: taskqueue.NewDeque(cfg.LocalCap),
			cs:    &m.ws[i].c,
			rec:   hashmem.NewRecorder(net.NumJoinIDs()),
			wake:  make(chan struct{}, 1),
		}
		w.emitFn = w.emit
		w.deliverFn = w.deliver
		m.workers[i] = w
	}
	if cfg.Unlink {
		us := &unlinkState{
			linked: make([]uint32, net.NumJoinIDs()),
			bufs:   make([]map[*wm.WME]int, net.NumJoinIDs()),
		}
		for i := range us.linked {
			us.linked[i] = 1
		}
		for _, j := range net.Joins {
			if !j.Negated {
				us.linked[j.ID] = 0
			}
		}
		m.unlinkSt.Store(us)
	}
	for i := 0; i < cfg.Procs; i++ {
		m.wg.Add(1)
		go m.worker(i)
	}
	return m
}

// Submit pushes one working-memory change as a root token. The control
// process proceeds with RHS evaluation while match goroutines pick the
// token up — the pipelining of §3.1. Root tasks recycle through a
// shared free list refilled by the workers that retire them.
func (m *Matcher) Submit(sign bool, w *wm.WME) {
	m.changes.Add(1)
	t := m.rootFree.Get()
	if t == nil {
		t = &taskqueue.Task{}
	}
	t.Root, t.Sign = w, sign
	spins := m.queues.Push(int(m.pushRR.Add(1)), t)
	cs := &m.ws[m.cfg.Procs].c
	cs.QueueAcquires++
	cs.QueueSpins += spins
	m.kick()
}

// kick wakes one parked worker, if any. On a uniprocessor the kick is
// suppressed while any worker is awake — that worker will sweep the
// central queues before it parks (workers re-check after registering
// as parked, so the task cannot be missed), and waking a second worker
// there only creates a thief racing the one that takes the work — and
// otherwise targets the most recent parker, whose caches are still
// warm from draining the previous phase. On multicore any parked
// worker will do.
func (m *Matcher) kick() {
	if !m.multiCPU {
		// One CPU wants exactly one drainer.
		if m.parked.Load() < int64(m.cfg.Procs) {
			return
		}
		id := m.lastParked.Load()
		if id < 0 {
			id = 0
		}
		m.workers[id].kick()
		return
	}
	start := int(m.pushRR.Load())
	n := len(m.workers)
	for i := 0; i < n; i++ {
		w := m.workers[(start+i)%n]
		if w.isParked.Load() {
			w.kick()
			return
		}
	}
	// Every worker is awake; the sleeper protocol guarantees one of
	// them sweeps the queues before parking, so no wake is lost.
}

// kick drops a wake token on this worker's park channel; a full
// channel means a token is already pending and the worker will wake.
func (w *wctx) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// unkick consumes this worker's pending wake token, if any. A worker
// that takes advertised work (a central-queue pop or a steal) retires
// the token that advertised it, so stale tokens don't wake it again
// into a fruitless poll-steal cycle — on a host with fewer cores than
// workers those spurious wakes were the dominant parallel overhead.
// Kicks are hints, not a count: the park-timer backstop covers any
// token lost to this race.
func (w *wctx) unkick() {
	select {
	case <-w.wake:
	default:
	}
}

// Drain blocks until TaskCount reaches zero. Drained is also the
// adaptive table's resize point: with no task in flight the workers are
// out of the table (the TaskCount==0 edge ordered their line writes
// before this read), so the control process can rehash into a bigger
// table and publish it, locks and all, before the next Submit.
func (m *Matcher) Drain() {
	m.queues.WaitIdle()
	if us := m.unlinkSt.Load(); us != nil {
		m.relinkLoop(us)
	}
	ms := m.mem.Load()
	if n := ms.table.GrowTarget(); n > 0 {
		m.mem.Store(newMemState(ms.table.Grow(n), m.cfg.Scheme))
	}
}

// relinkLoop runs at a drained point: it folds every worker's skipped
// right-delivery log into the per-join buffers (the counts commute, so
// cross-worker merge order doesn't matter), relinks each unlinked join
// whose left memory has become non-empty by replaying its buffer
// through the ordinary task machinery, and repeats — a relinked join's
// replay can emit left tokens into other unlinked joins downstream —
// until no join changes state. The left counts come from summing the
// per-worker recorders, which the TaskCount==0 edge made visible.
func (m *Matcher) relinkLoop(us *unlinkState) {
	for {
		for _, w := range m.workers {
			for _, op := range w.unlinkOps {
				b := us.bufs[op.join]
				if b == nil {
					b = make(map[*wm.WME]int)
					us.bufs[op.join] = b
				}
				if op.sign {
					b[op.wme]++
				} else {
					b[op.wme]--
				}
				if b[op.wme] == 0 {
					delete(b, op.wme)
				}
			}
			w.unlinkOps = w.unlinkOps[:0]
		}
		// Gather every replay before injecting any: an injected task wakes
		// workers, and the recorder reads below are only race-free while
		// the matcher stays drained.
		net := m.net.Load()
		var replay []*taskqueue.Task
		for _, j := range net.Joins {
			if j.Negated || atomic.LoadUint32(&us.linked[j.ID]) == 1 {
				continue
			}
			var left int64
			for _, w := range m.workers {
				left += w.rec.NodeCount[rete.Left][j.ID]
			}
			if left <= 0 {
				continue
			}
			atomic.StoreUint32(&us.linked[j.ID], 1)
			m.relinks++
			buf := us.bufs[j.ID]
			us.bufs[j.ID] = nil
			if len(buf) == 0 {
				continue
			}
			// Replay in timetag order: the order the WMEs would have
			// arrived had the join been linked all along.
			wmes := make([]*wm.WME, 0, len(buf))
			for rw, c := range buf {
				if c > 0 {
					wmes = append(wmes, rw)
				}
			}
			sort.Slice(wmes, func(a, b int) bool { return wmes[a].TimeTag < wmes[b].TimeTag })
			// Replay tokens escape into node memories, so they come from a
			// throwaway arena, not a worker pool.
			var pools hashmem.Pools
			for _, rw := range wmes {
				tok := pools.MakeToken(1)
				tok[0] = rw
				replay = append(replay, &taskqueue.Task{Join: j, Side: rete.Right, Sign: true, Wmes: tok})
			}
		}
		if len(replay) == 0 {
			return
		}
		for _, t := range replay {
			m.inject(t)
		}
		m.queues.WaitIdle()
	}
}

// Close stops the match goroutines. The matcher must be idle.
func (m *Matcher) Close() {
	m.stop.Store(true)
	// Direct sends, bypassing kick's uniprocessor gate: every parked
	// worker must wake to observe stop (the park timer would get there
	// too, just slower).
	for _, w := range m.workers {
		w.kick()
	}
	m.wg.Wait()
}

// Activations reports the number of tasks processed so far.
func (m *Matcher) Activations() int64 { return m.actives.Load() }

// MatchStats returns the counters the parallel matcher can attribute
// exactly: WM changes submitted and node activations (tasks) processed.
// The memory-scan statistics stay with the instrumented sequential
// matchers, as in the paper. Safe to call while drained.
func (m *Matcher) MatchStats() stats.Match {
	out := stats.Match{
		WMChanges:   m.changes.Load(),
		Activations: m.actives.Load(),
		Relinks:     m.relinks,
	}
	for _, w := range m.workers {
		out.UnlinkSkips += w.unlinkSkips
	}
	return out
}

// JoinExamined returns the cumulative per-join opposite-memory
// candidate counts summed across the worker recorders, indexed by join
// ID. Only meaningful while drained. The engine's match budget reads
// per-cycle deltas of it.
func (m *Matcher) JoinExamined() []int64 {
	out := make([]int64, m.net.Load().NumJoinIDs())
	for _, w := range m.workers {
		for id, v := range w.rec.NodeExamined {
			if id < len(out) {
				out[id] += v
			}
		}
	}
	return out
}

// UnlinkedJoins reports how many live joins are currently unlinked.
// Only meaningful while drained.
func (m *Matcher) UnlinkedJoins() int {
	us := m.unlinkSt.Load()
	if us == nil {
		return 0
	}
	n := 0
	for _, j := range m.net.Load().Joins {
		if !j.Negated && atomic.LoadUint32(&us.linked[j.ID]) == 0 {
			n++
		}
	}
	return n
}

// Contention merges the per-process spin, steal and overflow counters.
func (m *Matcher) Contention() stats.Contention {
	var out stats.Contention
	for i := range m.ws {
		out.Add(&m.ws[i].c)
	}
	return out
}

// WorkerContention returns each match process's own counters (index
// Procs is the control process) for load-balance diagnostics. Like
// Contention, only meaningful while drained.
func (m *Matcher) WorkerContention() []stats.Contention {
	out := make([]stats.Contention, len(m.ws))
	for i := range m.ws {
		out[i] = m.ws[i].c
	}
	return out
}

// CheckInvariants verifies the conjugate-pair invariant after a phase.
// Only call while drained (the TaskCount==0 edge makes worker writes
// visible).
func (m *Matcher) CheckInvariants() error {
	if n := m.queues.TaskCount.Load(); n != 0 {
		return fmt.Errorf("parmatch: CheckInvariants while %d tasks in flight", n)
	}
	return m.mem.Load().table.CheckDrained()
}

// MemStats returns the current table's memory gauges and resize
// counters. Exact while drained, like the other counters.
func (m *Matcher) MemStats() stats.Memory { return m.mem.Load().table.MemStats() }

// Table exposes the current token table for introspection (REPL matches
// command, tests). Only meaningful while drained.
func (m *Matcher) Table() *hashmem.Table { return m.mem.Load().table }

func (m *Matcher) worker(id int) {
	defer m.wg.Done()
	w := m.workers[id]
	// park timer: the fallback poll period while blocked on the wake
	// channel, covering lost kicks and Close.
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	// Born past the poll budget: a new worker parks immediately instead
	// of spinning at startup, so a working-memory burst right after New
	// (the engine's initial asserts) is drained by one kicked worker
	// rather than split across every newborn polling at once.
	idle := pollBudget + 1
	for {
		t := w.next()
		if t == nil {
			if m.stop.Load() {
				return
			}
			// A few yields to catch work already in flight, then park on
			// the wake channel. Parked workers cost nothing, so procs >
			// cores configurations run at near-sequential speed instead of
			// starving the one busy worker. The sleeper protocol: register
			// as parked, re-check for work, then block — a submitter that
			// saw us awake must have pushed before we registered, so the
			// re-check finds its task and no wakeup is lost. The timer is
			// a pure backstop (Close and pathological races).
			idle++
			if idle <= pollBudget {
				runtime.Gosched()
				continue
			}
			w.isParked.Store(true)
			m.parked.Add(1)
			// Only a worker that drained real work claims the warm-drainer
			// title; fruitless timer wakes re-park without shuffling it.
			if w.didWork {
				w.didWork = false
				m.lastParked.Store(int32(w.id))
			}
			if t = w.next(); t == nil {
				for {
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					timer.Reset(100 * time.Millisecond)
					select {
					case <-w.wake:
					case <-timer.C:
					}
					// Waking on a uniprocessor while another worker is awake
					// would only poach its work and contend on its hash
					// lines; stay parked and let it drain alone. (Reached on
					// channel wakes too: the kicker may have raced a worker
					// that re-checked, took the task and deregistered.)
					if !m.multiCPU && !m.stop.Load() &&
						m.parked.Load() < int64(m.cfg.Procs) {
						continue
					}
					break
				}
				m.parked.Add(-1)
				w.isParked.Store(false)
				continue
			}
			m.parked.Add(-1)
			w.isParked.Store(false)
		}
		idle = 0
		w.didWork = true
		requeued := w.process(t)
		m.queues.Done()
		m.actives.Add(1)
		if !requeued {
			w.freeTask(t)
		}
	}
}

// next finds the worker's next task: own deque first (no locks), then
// the central queues, then a steal sweep over the peers.
func (w *wctx) next() *taskqueue.Task {
	if t := w.local.Pop(); t != nil {
		w.cs.LocalPops++
		return t
	}
	t, spins := w.m.queues.Pop(w.pref)
	// Counter writes are skipped on the idle path (empty queues pop
	// without locking, spins==0) so Contention() is data-race-free for a
	// drained matcher, as the protocol promises.
	if spins != 0 {
		w.cs.QueueSpins += spins
	}
	if t != nil {
		w.cs.QueueAcquires++
		w.unkick()
		return t
	}
	peers := w.m.workers
	if n := len(peers); n > 1 {
		w.stealRot++
		for i := 0; i < n; i++ {
			v := peers[(w.id+w.stealRot+i)%n]
			if v == w {
				continue
			}
			if t := v.local.Steal(); t != nil {
				w.cs.Steals++
				w.unkick()
				return t
			}
		}
	}
	return nil
}

// spawn schedules a child task: TaskCount first (the task must be
// counted before any other process can retire it), then the local
// deque, spilling to the central queues when full.
func (w *wctx) spawn(t *taskqueue.Task) {
	w.m.queues.TaskCount.Add(1)
	if w.local.Push(t) {
		w.cs.LocalPushes++
		// Deep backlog: wake a parked peer to come steal. The size check
		// is owner-exact and the kick is a non-blocking send, so this
		// costs one branch in the common (shallow) case. Only worth it
		// when another CPU can actually run the thief — on a uniprocessor
		// the stolen sibling token just collides with the owner on the
		// same hash lines, so deep backlogs stay local there.
		if w.m.multiCPU && w.local.Size() == stealWatermark {
			w.m.kick()
		}
		return
	}
	w.cs.Overflows++
	w.rr++
	spins := w.m.queues.Spill(w.rr, t)
	w.cs.QueueAcquires++
	w.cs.QueueSpins += spins
	w.m.kick()
}

// newTask takes a task from the worker's free list, or allocates.
func (w *wctx) newTask() *taskqueue.Task {
	if n := len(w.free); n > 0 {
		t := w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		return t
	}
	return &taskqueue.Task{}
}

// freeTask recycles a retired task. Root tasks go back to the shared
// list Submit draws from; everything else stays worker-local.
func (w *wctx) freeTask(t *taskqueue.Task) {
	if t.Root != nil {
		w.m.rootFree.Put(t)
		return
	}
	t.Reset()
	if len(w.free) < taskPoolCap {
		w.free = append(w.free, t)
	}
}

// process runs one task. It reports whether the task was requeued (and
// so must not be recycled).
func (w *wctx) process(t *taskqueue.Task) (requeued bool) {
	switch {
	case t.Root != nil:
		w.curSign = t.Sign
		w.curWME = t.Root
		w.curRoot = nil
		w.m.net.Load().RootDeliver(t.Root, w.deliverFn)
	case t.Term != nil:
		if t.Sign {
			w.m.sink.InsertInstantiation(t.Term.Rule, t.Wmes)
		} else {
			w.m.sink.RemoveInstantiation(t.Term.Rule, t.Wmes)
		}
	default:
		return w.join(t)
	}
	return false
}

// deliver spawns one alpha-destination task for the root change being
// processed. All destinations share one immutable length-1 token.
func (w *wctx) deliver(d rete.AlphaDest) {
	if w.curRoot == nil {
		s := w.pools.MakeToken(1)
		s[0] = w.curWME
		w.curRoot = s
	}
	nt := w.newTask()
	nt.Sign = w.curSign
	nt.Wmes = w.curRoot
	if d.Terminal != nil {
		nt.Term = d.Terminal
	} else {
		nt.Join = d.Join
		nt.Side = d.Side
	}
	w.spawn(nt)
}

// emit fans one output token of the current join out to its successor
// joins and terminals.
func (w *wctx) emit(csign bool, cwmes []*wm.WME) {
	j := w.curJoin
	for _, succ := range w.curNet.SuccsOf(j) {
		nt := w.newTask()
		nt.Join, nt.Side, nt.Sign, nt.Wmes = succ, rete.Left, csign, cwmes
		w.spawn(nt)
	}
	for _, term := range w.curNet.TermsOf(j) {
		nt := w.newTask()
		nt.Term, nt.Sign, nt.Wmes = term, csign, cwmes
		w.spawn(nt)
	}
}

func (w *wctx) join(t *taskqueue.Task) (requeued bool) {
	m := w.m
	j := t.Join
	if us := m.unlinkSt.Load(); us != nil && t.Side == rete.Right &&
		atomic.LoadUint32(&us.linked[j.ID]) == 0 {
		// Right delivery into an unlinked join: log it privately instead
		// of hashing, storing and searching. The control process merges
		// the logs while drained and replays them through the ordinary
		// task machinery when the join's first left token relinks it.
		w.unlinkOps = append(w.unlinkOps, unlinkOp{join: int32(j.ID), sign: t.Sign, wme: t.Wmes[0]})
		w.unlinkSkips++
		return false
	}
	var hash uint64
	if t.Side == rete.Left {
		hash = j.LeftHash(t.Wmes)
	} else {
		hash = j.RightHash(t.Wmes[0])
	}
	// One bundle load per task: the table and its lock arrays always
	// match, and a resize can only intervene while drained, so no task
	// straddles two table generations.
	ms := m.mem.Load()
	table := ms.table
	idx := table.LineIndex(j, hash)
	w.curNet = m.net.Load()
	w.curJoin = j
	if m.cfg.Scheme == SchemeSimple {
		spins := ms.simple[idx].Acquire()
		w.recordLine(t.Side, spins)
		entry, ref, res := table.UpdateOwn(idx, j, t.Side, t.Sign, t.Wmes, hash, w.rec, &w.pools)
		if res.Proceeded {
			table.SearchOpposite(idx, ref, j, t.Side, t.Sign, t.Wmes, entry, w.rec, &w.pools, w.emitFn)
		}
		ms.simple[idx].Release()
		if !t.Sign && res.Proceeded {
			w.pools.FreeEntry(entry) // unlinked under the line lock; now exclusively ours
		}
		return false
	}
	// MRSW: register for our side; wrong-side arrivals re-queue.
	ok, spins := ms.mrsw[idx].Enter(int(t.Side))
	w.recordLine(t.Side, spins)
	if !ok {
		// Requeue counts the queued copy; the worker's Done() after this
		// returns releases our in-process claim, so TaskCount stays
		// balanced at one for the still-pending token.
		w.cs.Requeues++
		w.rr++
		m.queues.Requeue(w.rr, t)
		m.kick()
		return true
	}
	spins = ms.mrsw[idx].Mod.Acquire()
	w.recordLine(t.Side, spins)
	entry, ref, res := table.UpdateOwn(idx, j, t.Side, t.Sign, t.Wmes, hash, w.rec, &w.pools)
	if j.Negated && t.Side == rete.Left {
		// Negated-node left activations must compute or read the join
		// count atomically with the memory update: a concurrent left
		// delete of the same token would otherwise observe the entry
		// before its count is stored and emit an unmatched retraction.
		if res.Proceeded {
			table.SearchOpposite(idx, ref, j, t.Side, t.Sign, t.Wmes, entry, w.rec, &w.pools, w.emitFn)
		}
		ms.mrsw[idx].Mod.Release()
	} else {
		// Positive nodes search outside the modification lock; the ref
		// resolved under it keeps the sub-index off this unlocked path.
		ms.mrsw[idx].Mod.Release()
		if res.Proceeded {
			table.SearchOpposite(idx, ref, j, t.Side, t.Sign, t.Wmes, entry, w.rec, &w.pools, w.emitFn)
		}
	}
	ms.mrsw[idx].Exit()
	if !t.Sign && res.Proceeded {
		w.pools.FreeEntry(entry) // Remove unlinked it; no reader survives Exit
	}
	return false
}

func (w *wctx) recordLine(side rete.Side, spins int64) {
	if side == rete.Left {
		w.cs.LineAcquiresLeft++
		w.cs.LineSpinsLeft += spins
	} else {
		w.cs.LineAcquiresRight++
		w.cs.LineSpinsRight += spins
	}
}

// inject pushes one replay task onto the central queues from the
// control process, charging its lock traffic to the control slot like
// Submit does.
func (m *Matcher) inject(t *taskqueue.Task) {
	spins := m.queues.Push(int(m.pushRR.Add(1)), t)
	cs := &m.ws[m.cfg.Procs].c
	cs.QueueAcquires++
	cs.QueueSpins += spins
	m.kick()
}

// SwapEpoch adopts a network epoch derived from the matcher's current
// one. Must be called from the control process with the matcher drained
// (no tasks in flight), the same condition under which the engine reads
// the conflict set. Removals drop the excised joins' memory entries
// directly — safe because the TaskCount==0 edge ordered every worker's
// line writes before this read. Additions replay the live working
// memory in two drained phases: first right-side tasks fill the new
// joins' right memories (left memories are empty, so nothing emits and
// negation counts settle), then left-side seeds — root deliveries for
// new first-stage joins and terminals, plus historical outputs of grown
// joins re-derived from the table while it is quiescent — propagate
// through the ordinary worker machinery. Phase-2 tasks are all gathered
// before any is injected, so the table enumeration never races worker
// inserts.
func (m *Matcher) SwapEpoch(next *rete.Network, live []*wm.WME) (removed int, err error) {
	cur := m.net.Load()
	if next.Parent() != cur {
		return 0, fmt.Errorf("parmatch: epoch %d is not derived from the current epoch %d", next.Epoch, cur.Epoch)
	}
	d := next.Delta
	if d == nil {
		return 0, fmt.Errorf("parmatch: epoch %d has no delta", next.Epoch)
	}
	if n := m.queues.TaskCount.Load(); n != 0 {
		return 0, fmt.Errorf("parmatch: SwapEpoch while %d tasks in flight", n)
	}
	table := m.mem.Load().table
	if len(d.DeadJoins) > 0 {
		dead := make(map[int]bool, len(d.DeadJoins))
		for _, j := range d.DeadJoins {
			dead[j.ID] = true
		}
		removed = table.ExciseNodes(dead, nil)
		us := m.unlinkSt.Load()
		for id := range dead {
			for _, w := range m.workers {
				w.rec.NodeCount[0][id] = 0
				w.rec.NodeCount[1][id] = 0
				w.rec.NodeExamined[id] = 0
			}
			if us != nil {
				// A dead join's buffered rights die with it; the flag is
				// parked at linked so the never-reused ID stays inert.
				atomic.StoreUint32(&us.linked[id], 1)
				us.bufs[id] = nil
			}
		}
	}
	m.net.Store(next)
	nj := next.NumJoinIDs()
	for _, w := range m.workers {
		w.rec.EnsureNodes(nj)
	}
	if us := m.unlinkSt.Load(); us != nil {
		if nj > len(us.linked) {
			nl := make([]uint32, nj)
			copy(nl, us.linked)
			for i := len(us.linked); i < nj; i++ {
				nl[i] = 1
			}
			nb := make([]map[*wm.WME]int, nj)
			copy(nb, us.bufs)
			us = &unlinkState{linked: nl, bufs: nb}
			m.unlinkSt.Store(us)
		}
		// New joins are born with empty memories: start the non-negated
		// ones unlinked, so the phase-1 right replay below lands in their
		// buffers and the final drain relinks exactly those whose left
		// memory filled during phase 2. Negated joins stay linked — their
		// counts must settle in phase 1, before any left seed arrives.
		for _, j := range d.NewJoins {
			if !j.Negated {
				atomic.StoreUint32(&us.linked[j.ID], 0)
			}
		}
	}

	targets := next.ReplayDests()
	if len(targets) == 0 && len(d.GrownJoins) == 0 {
		return removed, nil
	}
	// Replay tokens escape into node memories and the conflict set, so
	// they come from a throwaway arena, not a worker pool.
	var pools hashmem.Pools
	injected := false
	for _, cd := range targets {
		for _, dst := range cd.Dests {
			if dst.Join == nil || dst.Side != rete.Right {
				continue
			}
			for _, w := range live {
				if w.Class() != cd.Chain.Class || !cd.Chain.Matches(w) {
					continue
				}
				tok := pools.MakeToken(1)
				tok[0] = w
				t := &taskqueue.Task{Join: dst.Join, Side: rete.Right, Sign: true, Wmes: tok}
				m.inject(t)
				injected = true
			}
		}
	}
	if injected {
		// Drain may grow and republish the table; re-load it so the
		// phase-2 gather below enumerates the live generation.
		m.Drain()
		table = m.mem.Load().table
	}
	var phase2 []*taskqueue.Task
	for _, cd := range targets {
		for _, dst := range cd.Dests {
			if dst.Join != nil && dst.Side == rete.Right {
				continue
			}
			for _, w := range live {
				if w.Class() != cd.Chain.Class || !cd.Chain.Matches(w) {
					continue
				}
				tok := pools.MakeToken(1)
				tok[0] = w
				if dst.Terminal != nil {
					phase2 = append(phase2, &taskqueue.Task{Term: dst.Terminal, Sign: true, Wmes: tok})
				} else {
					phase2 = append(phase2, &taskqueue.Task{Join: dst.Join, Side: rete.Left, Sign: true, Wmes: tok})
				}
			}
		}
	}
	for i := range d.GrownJoins {
		g := &d.GrownJoins[i]
		table.ForEachOutput(g.Join, &pools, func(tok []*wm.WME) {
			for _, succ := range g.NewSuccs {
				phase2 = append(phase2, &taskqueue.Task{Join: succ, Side: rete.Left, Sign: true, Wmes: tok})
			}
			for _, term := range g.NewTerms {
				phase2 = append(phase2, &taskqueue.Task{Term: term, Sign: true, Wmes: tok})
			}
		})
	}
	if len(phase2) == 0 {
		return removed, nil
	}
	for _, t := range phase2 {
		m.inject(t)
	}
	m.Drain()
	return removed, nil
}
