package parmatch_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/tables"
	"repro/internal/wm"
)

// csSignature reduces a conflict set to a canonical, order-independent
// form: one "rule:tags" string per live instantiation, sorted.
func csSignature(cs *conflict.Set) []string {
	var out []string
	for _, inst := range cs.Snapshot() {
		tags := make([]int, len(inst.Wmes))
		for i, w := range inst.Wmes {
			tags[i] = w.TimeTag
		}
		out = append(out, fmt.Sprintf("%s:%v", inst.Rule.Rule.Name, tags))
	}
	sort.Strings(out)
	return out
}

// fanWorkload builds a high-fan-out join: a few "a" WMEs each matching
// many "b" WMEs on ^val, so one node activation emits dozens of output
// tokens in a single burst. With tiny local deques those bursts are
// what drives the overflow spill path.
func fanWorkload(t *testing.T) (*rete.Network, []*wm.WME) {
	t.Helper()
	src := `(literalize item kind val)
(p pairup (item ^kind a ^val <v>) (item ^kind b ^val <v>) --> (halt))`
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cls := prog.ClassOf(prog.Symbols.Intern("item"))
	kindIdx, err := prog.FieldIndex(cls, prog.Symbols.Intern("kind"))
	if err != nil {
		t.Fatalf("field kind: %v", err)
	}
	valIdx, err := prog.FieldIndex(cls, prog.Symbols.Intern("val"))
	if err != nil {
		t.Fatalf("field val: %v", err)
	}
	var wmes []*wm.WME
	tag := 1
	add := func(kind string, val int) {
		fields := make([]wm.Value, cls.NumFields())
		fields[0] = wm.Sym(cls.Name)
		fields[kindIdx] = wm.Sym(prog.Symbols.Intern(kind))
		fields[valIdx] = wm.Int(int64(val))
		wmes = append(wmes, &wm.WME{TimeTag: tag, Fields: fields})
		tag++
	}
	for i := 0; i < 4; i++ {
		add("a", 1)
	}
	for i := 0; i < 24; i++ {
		add("b", 1)
	}
	return net, wmes
}

// TestStealPressureMatchesSequential runs the match kernels with local
// deques of capacity 1, forcing every multi-child activation through
// the overflow spill and giving idle workers constant steal
// opportunities. The final conflict set must equal the sequential
// oracle's exactly — no task lost, duplicated, or misrouted — for both
// locking schemes. Negated kernels legitimately emit transient
// insert/remove pairs under parallel schedules, so the comparison is on
// final state, not the event stream.
func TestStealPressureMatchesSequential(t *testing.T) {
	type workload struct {
		name string
		net  *rete.Network
		wmes []*wm.WME
	}
	var cases []workload
	for _, name := range tables.KernelNames() {
		k, err := tables.NewKernel(name, 96)
		if err != nil {
			t.Fatalf("kernel %s: %v", name, err)
		}
		cases = append(cases, workload{name, k.Net, k.Wmes})
	}
	fanNet, fanWmes := fanWorkload(t)
	cases = append(cases, workload{"fan", fanNet, fanWmes})

	for _, k := range cases {
		for _, scheme := range []parmatch.Scheme{parmatch.SchemeSimple, parmatch.SchemeMRSW} {
			t.Run(fmt.Sprintf("%s/%s", k.name, scheme), func(t *testing.T) {
				oracleCS := tables.KernelSink()
				oracle := seqmatch.New(k.net, seqmatch.VS2, 0, oracleCS)
				for _, w := range k.wmes {
					oracle.Submit(true, w)
				}
				want := csSignature(oracleCS)
				if len(want) == 0 {
					t.Fatal("oracle produced no instantiations; kernel is not exercising the match")
				}

				cs := tables.KernelSink()
				m := parmatch.New(k.net, parmatch.Config{
					Procs: 4, Queues: 2, Scheme: scheme, LocalCap: 1,
				}, cs)
				defer m.Close()
				for rep := 0; rep < 3; rep++ {
					for _, w := range k.wmes {
						m.Submit(true, w)
					}
					m.Drain()
					if !cs.Drained() {
						t.Fatalf("rep %d: pending conflict-set deletes after assert drain", rep)
					}
					if got := csSignature(cs); !reflect.DeepEqual(got, want) {
						t.Fatalf("rep %d: conflict set diverged from sequential oracle\n got %d: %v\nwant %d: %v",
							rep, len(got), got, len(want), want)
					}
					for _, w := range k.wmes {
						m.Submit(false, w)
					}
					m.Drain()
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("rep %d: %v", rep, err)
					}
					if n := cs.Len(); n != 0 {
						t.Fatalf("rep %d: %d instantiations left after retract-all", rep, n)
					}
				}
				c := m.Contention()
				if c.LocalPushes == 0 {
					t.Error("no local deque pushes recorded")
				}
				if k.name == "fan" && c.Overflows == 0 {
					t.Error("fan workload with LocalCap=1 never spilled to the central queues")
				}
			})
		}
	}
}

// TestLocalDequeCounters checks the scheduler counters stay consistent:
// every task is accounted to exactly one source (local pop, central
// pop, or steal), and pushes route either locally or as overflow.
func TestLocalDequeCounters(t *testing.T) {
	k, err := tables.NewKernel("join", 64)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	cs := tables.KernelSink()
	m := parmatch.New(k.Net, parmatch.Config{Procs: 2, Queues: 2, LocalCap: 4}, cs)
	defer m.Close()
	k.Round(m)
	c := m.Contention()
	acts := m.Activations()
	sources := c.LocalPops + c.Steals + c.QueueAcquires
	// QueueAcquires also counts Submit-side pushes and overflow spills,
	// so it upper-bounds the central pops; the three sources together
	// must cover every processed task.
	if sources < acts {
		t.Errorf("task sources (%d local + %d steals + %d queue ops) < %d activations",
			c.LocalPops, c.Steals, c.QueueAcquires, acts)
	}
	spawned := c.LocalPushes + c.Overflows
	if spawned == 0 {
		t.Error("no worker-side spawns recorded for the join kernel")
	}
	if c.LocalPops > c.LocalPushes {
		t.Errorf("more local pops (%d) than local pushes (%d)", c.LocalPops, c.LocalPushes)
	}
}
