package parmatch_test

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

// TestActivationCountMatchesSequential: the parallel matcher's task
// count equals the sequential matcher's activation count on the same
// program — the paper's note that activations == tasks pushed/popped.
func TestActivationCountMatchesSequential(t *testing.T) {
	src := workload.Tourney(6)
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}

	csSeq := conflict.NewSet()
	seq := seqmatch.New(net, seqmatch.VS2, 0, csSeq)
	eSeq, err := engine.New(prog, net, csSeq, seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eSeq.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := eSeq.Run(engine.Options{MaxCycles: 10000}); err != nil {
		t.Fatal(err)
	}

	csPar := conflict.NewSet()
	pm := parmatch.New(net, parmatch.Config{Procs: 1, Queues: 1}, csPar)
	defer pm.Close()
	ePar, err := engine.New(prog, net, csPar, pm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ePar.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := ePar.Run(engine.Options{MaxCycles: 10000}); err != nil {
		t.Fatal(err)
	}

	// The counts are close but not equal: the paper notes (§4.2) that
	// the set of node activations differs when changes are processed in
	// queue order rather than depth-first — transient negation and join
	// states come and go differently. Expect the same order of magnitude
	// (within 25%), with the paper's root-task delta on top.
	want := seq.Rec.M.Activations + seq.Rec.M.WMChanges
	got := pm.Activations()
	lo, hi := want*3/4, want*5/4
	if got < lo || got > hi {
		t.Fatalf("parallel tasks = %d, want within [%d, %d] (seq %d)",
			got, lo, hi, seq.Rec.M.Activations)
	}
}

// TestContentionCountersAccumulate: with one queue and several workers
// the matcher must observe queue acquisitions, and its contention merge
// must be stable after Close.
func TestContentionCountersAccumulate(t *testing.T) {
	src := workload.Rubik(3)
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cs := conflict.NewSet()
	pm := parmatch.New(net, parmatch.Config{Procs: 4, Queues: 1}, cs)
	e, err := engine.New(prog, net, cs, pm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(engine.Options{MaxCycles: 10000}); err != nil {
		t.Fatal(err)
	}
	pm.Close()
	c := pm.Contention()
	if c.QueueAcquires == 0 {
		t.Fatal("no queue acquisitions recorded")
	}
	if c.LineAcquiresLeft+c.LineAcquiresRight == 0 {
		t.Fatal("no line acquisitions recorded")
	}
	if again := pm.Contention(); again != c {
		t.Fatal("contention merge not stable after Close")
	}
}
