package parmatch_test

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/parmatch"
	"repro/internal/tables"
)

// TestTerminalStormDrains floods the parallel matcher with conjugate
// terminal activations: every WME's plus and minus are submitted
// back-to-back without an intervening drain, so match workers race the
// pairs into the conflict set in arbitrary order and any minus that
// wins its race must park as a pending delete and annihilate with the
// late plus. After each drain the set must be empty and drained —
// under -race this doubles as the data-race check on the sharded
// conflict set fed by real concurrent terminal tasks.
func TestTerminalStormDrains(t *testing.T) {
	k, err := tables.NewKernel("term", 256)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	for _, shards := range []int{1, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cs := conflict.New(conflict.Config{Shards: shards})
			// LocalCap 1 forces spills and steals, maximizing reordering.
			m := parmatch.New(k.Net, parmatch.Config{
				Procs: 4, Queues: 2, LocalCap: 1,
			}, cs)
			defer m.Close()
			for rep := 0; rep < 5; rep++ {
				for _, w := range k.Wmes {
					m.Submit(true, w)
					m.Submit(false, w)
				}
				m.Drain()
				if !cs.Drained() {
					t.Fatalf("rep %d: pending conflict-set deletes after drain", rep)
				}
				if n := cs.Len(); n != 0 {
					t.Fatalf("rep %d: %d instantiations after balanced storm", rep, n)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("rep %d: %v", rep, err)
				}
			}
			st := cs.StatsSnapshot()
			want := int64(5 * len(k.Wmes))
			if st.Inserts != want || st.Deletes != want {
				t.Fatalf("conflict stats = %+v, want %d inserts and deletes", st, want)
			}
		})
	}
}
