package workload

import (
	"fmt"
	"strings"
)

// Weaver generates a VLSI routing workload in the spirit of Joobbani's
// Weaver (the paper's 637-rule program): a grid of cells, a set of
// two-pin nets, and a per-net family of Lee-style wavefront expansion
// rules. Each net gets its own rule family with the net id baked in as
// a constant, so the compiled network grows linearly with the net count
// — reproducing Weaver's "large program, large network, many small node
// memories" profile, which hashes well and parallelizes to ~8-9x in the
// paper.
//
// Expansion is bounding-box routing, the standard VLSI practice: each
// net's adjacency relation is restricted to its own bounding box (plus
// margin), so wavefronts, mark populations and node memories stay small
// — the ~10-token memories of the paper's Table 4-2 — and the generator
// verifies by BFS that every net is routable inside its box, so runs
// always halt.
//
// nets is the number of two-pin nets (rule count = 3*nets + fixed),
// grid the side length of the routing grid.
func Weaver(nets, grid int) string {
	if grid < 6 {
		grid = 6
	}
	if nets < 1 {
		nets = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `; Weaver: bounding-box wavefront routing, %d nets on a %dx%d grid.
(literalize context phase)
(literalize cell x y state)
(literalize adj net x1 y1 x2 y2)
(literalize net id sx sy tx ty status)
(literalize front net x y dist)
(literalize mark net x y dist)
(literalize routed net length)
(literalize tally net count)
`, nets, grid, grid)
	// Per-net rule family. Constants differ per net, so alpha chains and
	// joins are not shared between families: the network scales with the
	// program like the real Weaver's did.
	for n := 1; n <= nets; n++ {
		fmt.Fprintf(&b, `
(p start-net-%[1]d
  (context ^phase route)
  (net ^id %[1]d ^status pending ^sx <sx> ^sy <sy>)
-->
  (modify 2 ^status routing)
  (make tally ^net %[1]d ^count 0)
  (make front ^net %[1]d ^x <sx> ^y <sy> ^dist 0)
  (make mark ^net %[1]d ^x <sx> ^y <sy> ^dist 0))

; The expansion counter (tally) is the classic OPS5 counter idiom: every
; firing modifies it, so the join chain below it re-derives — real
; per-change match load that spreads across the adj/cell hash lines.
(p expand-%[1]d
  (context ^phase route)
  (tally ^net %[1]d ^count <c>)
  (front ^net %[1]d ^x <x> ^y <y> ^dist <d>)
  (adj ^net %[1]d ^x1 <x> ^y1 <y> ^x2 <nx> ^y2 <ny>)
  (cell ^x <nx> ^y <ny> ^state free)
  - (mark ^net %[1]d ^x <nx> ^y <ny>)
  - (net ^id %[1]d ^status done)
-->
  (modify 2 ^count (compute <c> + 1))
  (make mark ^net %[1]d ^x <nx> ^y <ny> ^dist (compute <d> + 1))
  (make front ^net %[1]d ^x <nx> ^y <ny> ^dist (compute <d> + 1)))

(p arrive-%[1]d
  (context ^phase route)
  (net ^id %[1]d ^status routing ^tx <tx> ^ty <ty>)
  (mark ^net %[1]d ^x <tx> ^y <ty> ^dist <d>)
-->
  (modify 2 ^status done)
  (make routed ^net %[1]d ^length <d>))
`, n)
		// Per-net monitor families. This is where Weaver's 637-rule scale
		// comes from: each net carries thirty analysis rules (three shapes
		// by ten distance thresholds), every one with small, selective
		// memories. A single mark or front change fans out across many of
		// them — the paper's ~240 node activations per WM change — while
		// the per-node memories stay at the ~10-token scale of Table 4-2.
		// The guard class is never asserted, so they are pure match load.
		for m := 1; m <= 10; m++ {
			fmt.Fprintf(&b, `
(p mon-cell-%[1]d-%[2]d
  (mark ^net %[1]d ^x <x> ^y <y> ^dist {<d> >= %[2]d})
  (cell ^x <x> ^y <y> ^state free)
  (guard ^x <x> ^y <y>)
-->
  (make obs ^net %[1]d))

(p mon-wave-%[1]d-%[2]d
  (front ^net %[1]d ^x <x> ^y <y> ^dist {<d> >= %[2]d})
  (mark ^net %[1]d ^x <x> ^y <y> ^dist <d2>)
  (guard ^x <x> ^y <y>)
-->
  (make obs ^net %[1]d))

(p mon-col-%[1]d-%[2]d
  (mark ^net %[1]d ^x <x> ^y <y> ^dist {<d> >= %[2]d})
  (mark ^net %[1]d ^x <x> ^y <> <y>)
  (guard ^x <x>)
-->
  (make obs ^net %[1]d))
`, n, m)
		}
	}
	// Shared wrap-up rules. Fronts and marks are swept in the report
	// phase — during routing they stay put, so the per-net token
	// memories only ever see cheap single-token right activations.
	b.WriteString(`
(p all-routed
  (context ^phase route)
  - (net ^status pending)
  - (net ^status routing)
-->
  (modify 1 ^phase report))

(p sweep-front
  (context ^phase report)
  (front ^net <n> ^x <x> ^y <y>)
-->
  (remove 2))

(p sweep-mark
  (context ^phase report)
  (mark ^net <n> ^x <x> ^y <y>)
-->
  (remove 2))

(p report-net
  (context ^phase report)
  (routed ^net <n> ^length <l>)
-->
  (write net <n> length <l> (crlf))
  (remove 2))

(p report-done
  (context ^phase report)
  - (routed ^net <n>)
  - (front ^net <fn>)
  - (mark ^net <mn>)
-->
  (write routing-complete (crlf))
  (halt))

(make context ^phase route)
`)
	// Grid cells with deterministically sprinkled blockages.
	blocked := func(x, y int) bool {
		return x > 1 && x < grid && (x*7+y*13)%11 == 0
	}
	for x := 1; x <= grid; x++ {
		for y := 1; y <= grid; y++ {
			state := "free"
			if blocked(x, y) {
				state = "blocked"
			}
			fmt.Fprintf(&b, "(make cell ^x %d ^y %d ^state %s)\n", x, y, state)
		}
	}
	// Nets with their bounding-box adjacency. The generator proves each
	// net routable inside its box by BFS, adjusting the target row until
	// it is; runs therefore always reach report-done.
	clamp := func(v int) int {
		if v < 1 {
			return 1
		}
		if v > grid {
			return grid
		}
		return v
	}
	for n := 1; n <= nets; n++ {
		sx := clamp(1 + (n*5)%(grid-4))
		sy := clamp(1 + (n-1)%(grid-1))
		tx := clamp(sx + 3)
		ty := clamp(1 + (n*3)%(grid-1))
		for blocked(sx, sy) {
			sy = sy%grid + 1
		}
		tries := 0
		for blocked(tx, ty) || (tx == sx && ty == sy) ||
			!boxRoutable(sx, sy, tx, ty, grid, blocked) {
			ty = ty%grid + 1
			if tries++; tries > grid {
				// Fall back to a horizontal neighbour, always routable.
				ty = sy
				tx = sx + 1
				break
			}
		}
		fmt.Fprintf(&b, "(make net ^id %d ^sx %d ^sy %d ^tx %d ^ty %d ^status pending)\n",
			n, sx, sy, tx, ty)
		x0, x1, y0, y1 := boxOf(sx, sy, tx, ty, grid)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				if x < x1 {
					fmt.Fprintf(&b, "(make adj ^net %d ^x1 %d ^y1 %d ^x2 %d ^y2 %d)\n", n, x, y, x+1, y)
					fmt.Fprintf(&b, "(make adj ^net %d ^x1 %d ^y1 %d ^x2 %d ^y2 %d)\n", n, x+1, y, x, y)
				}
				if y < y1 {
					fmt.Fprintf(&b, "(make adj ^net %d ^x1 %d ^y1 %d ^x2 %d ^y2 %d)\n", n, x, y, x, y+1)
					fmt.Fprintf(&b, "(make adj ^net %d ^x1 %d ^y1 %d ^x2 %d ^y2 %d)\n", n, x, y+1, x, y)
				}
			}
		}
	}
	return b.String()
}

// boxOf is the net's bounding box with a one-cell margin, clamped.
func boxOf(sx, sy, tx, ty, grid int) (x0, x1, y0, y1 int) {
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	x0, x1 = max(1, min(sx, tx)-1), min(grid, max(sx, tx)+1)
	y0, y1 = max(1, min(sy, ty)-1), min(grid, max(sy, ty)+1)
	return
}

// boxRoutable runs BFS over free cells inside the bounding box.
func boxRoutable(sx, sy, tx, ty, grid int, blocked func(x, y int) bool) bool {
	x0, x1, y0, y1 := boxOf(sx, sy, tx, ty, grid)
	type pt struct{ x, y int }
	seen := map[pt]bool{{sx, sy}: true}
	queue := []pt{{sx, sy}}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if c.x == tx && c.y == ty {
			return true
		}
		for _, d := range [4]pt{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			n := pt{c.x + d.x, c.y + d.y}
			if n.x < x0 || n.x > x1 || n.y < y0 || n.y > y1 {
				continue
			}
			if seen[n] || blocked(n.x, n.y) {
				continue
			}
			seen[n] = true
			queue = append(queue, n)
		}
	}
	return false
}
