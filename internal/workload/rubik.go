package workload

import (
	"fmt"
	"strings"
)

// cubeSlot names one sticker position: face U/D/F/B/L/R, position 1..9
// row-major as the face is viewed.
type cubeSlot struct {
	face string
	pos  int
}

// faceCycles lists, for each face's clockwise quarter turn, the five
// 4-cycles of sticker slots (two on the turning face, three through the
// adjacent faces). A cycle (a b c d) means a's color moves to b, b's to
// c, and so on. Singmaster orientation: U on top, F toward the viewer.
var faceCycles = map[string][][4]cubeSlot{
	"U": {
		{{"U", 1}, {"U", 3}, {"U", 9}, {"U", 7}},
		{{"U", 2}, {"U", 6}, {"U", 8}, {"U", 4}},
		{{"F", 1}, {"L", 1}, {"B", 1}, {"R", 1}},
		{{"F", 2}, {"L", 2}, {"B", 2}, {"R", 2}},
		{{"F", 3}, {"L", 3}, {"B", 3}, {"R", 3}},
	},
	"D": {
		{{"D", 1}, {"D", 3}, {"D", 9}, {"D", 7}},
		{{"D", 2}, {"D", 6}, {"D", 8}, {"D", 4}},
		{{"F", 7}, {"R", 7}, {"B", 7}, {"L", 7}},
		{{"F", 8}, {"R", 8}, {"B", 8}, {"L", 8}},
		{{"F", 9}, {"R", 9}, {"B", 9}, {"L", 9}},
	},
	"F": {
		{{"F", 1}, {"F", 3}, {"F", 9}, {"F", 7}},
		{{"F", 2}, {"F", 6}, {"F", 8}, {"F", 4}},
		{{"U", 7}, {"R", 1}, {"D", 3}, {"L", 9}},
		{{"U", 8}, {"R", 4}, {"D", 2}, {"L", 6}},
		{{"U", 9}, {"R", 7}, {"D", 1}, {"L", 3}},
	},
	"B": {
		{{"B", 1}, {"B", 3}, {"B", 9}, {"B", 7}},
		{{"B", 2}, {"B", 6}, {"B", 8}, {"B", 4}},
		{{"U", 3}, {"L", 1}, {"D", 7}, {"R", 9}},
		{{"U", 2}, {"L", 4}, {"D", 8}, {"R", 6}},
		{{"U", 1}, {"L", 7}, {"D", 9}, {"R", 3}},
	},
	"L": {
		{{"L", 1}, {"L", 3}, {"L", 9}, {"L", 7}},
		{{"L", 2}, {"L", 6}, {"L", 8}, {"L", 4}},
		{{"U", 1}, {"F", 1}, {"D", 1}, {"B", 9}},
		{{"U", 4}, {"F", 4}, {"D", 4}, {"B", 6}},
		{{"U", 7}, {"F", 7}, {"D", 7}, {"B", 3}},
	},
	"R": {
		{{"R", 1}, {"R", 3}, {"R", 9}, {"R", 7}},
		{{"R", 2}, {"R", 6}, {"R", 8}, {"R", 4}},
		{{"U", 9}, {"B", 1}, {"D", 9}, {"F", 9}},
		{{"U", 6}, {"B", 4}, {"D", 6}, {"F", 6}},
		{{"U", 3}, {"B", 7}, {"D", 3}, {"F", 3}},
	},
}

// cubeFaces fixes an iteration order for generated rules.
var cubeFaces = []string{"U", "D", "F", "B", "L", "R"}

// faceColor is the solved-state color of each face.
var faceColor = map[string]string{
	"U": "white", "D": "yellow", "F": "green",
	"B": "blue", "L": "orange", "R": "red",
}

// CubeMove is one quarter turn.
type CubeMove struct {
	Face string
	CW   bool
}

// RubikScramble returns a deterministic pseudo-random scramble of the
// given length (a fixed linear congruential sequence, so every run and
// every matcher sees the same move list).
func RubikScramble(n int) []CubeMove {
	out := make([]CubeMove, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = CubeMove{Face: cubeFaces[(state>>33)%6], CW: (state>>32)&1 == 0}
	}
	return out
}

// Rubik generates the cube workload: a full sticker-model Rubik's cube
// in working memory, one wide production per face and direction (21
// condition elements, 20 modifies), and driver rules that apply a
// scramble followed by its exact inverse, then verify the cube is
// solved and halt. Like the paper's Rubik program it is modify-heavy —
// every turn rewrites 20 working-memory elements, each of which
// re-enters the network — with small node memories, which is why Rubik
// parallelizes best of the three programs (12.4x in §5).
//
// scrambleLen controls run length: total turns = 2*scrambleLen.
func Rubik(scrambleLen int) string {
	var b strings.Builder
	b.WriteString(`; Rubik: sticker-model cube, scramble + inverse, solved check.
(literalize sticker face pos color)
(literalize step num)
(literalize move seq face dir)
(literalize want face dir)
(literalize rotated flag)
(literalize faceok face)
`)
	// One rotation production per face and direction.
	for _, face := range cubeFaces {
		for _, cw := range []bool{true, false} {
			writeRotationRule(&b, face, cw)
		}
	}
	// Driver rules.
	b.WriteString(`
(p apply-move
  (step ^num <n>)
  (move ^seq <n> ^face <f> ^dir <d>)
  - (want)
  - (rotated)
-->
  (make want ^face <f> ^dir <d>))

(p advance
  (step ^num <n>)
  (rotated ^flag yes)
-->
  (remove 2)
  (modify 1 ^num (compute <n> + 1)))

(p moves-done
  (step ^num <n>)
  - (move ^seq <n>)
  - (want)
  - (rotated)
-->
  (make check ^flag yes))
`)
	// Solved-face checks: all nine stickers of a face share one color.
	for _, face := range cubeFaces {
		fmt.Fprintf(&b, "\n(p check-%s\n  (check ^flag yes)\n", strings.ToLower(face))
		fmt.Fprintf(&b, "  (sticker ^face %s ^pos 1 ^color <c>)\n", face)
		for pos := 2; pos <= 9; pos++ {
			fmt.Fprintf(&b, "  (sticker ^face %s ^pos %d ^color <c>)\n", face, pos)
		}
		fmt.Fprintf(&b, "-->\n  (make faceok ^face %s))\n", face)
	}
	// Color-analysis rule families. The paper's Rubik (James Allen, 70
	// rules) shows ~31 tokens examined per linear opposite-memory scan
	// (Table 4-2), i.e. weakly selective joins over the sticker set.
	// These families reproduce that profile: the second condition
	// element's memory holds every sticker and is discriminated only by
	// color, so list memories scan ~54 tokens where hash memories touch
	// ~9. The final condition element (class guard, never asserted)
	// keeps them from ever firing — they contribute pure match load,
	// churned by every sticker modify.
	for _, face := range cubeFaces {
		// The second element's memory holds all 54 stickers (hash
		// narrows it to one color, ~9); the third joins on color and
		// position, so hashing also discriminates its deletes.
		fmt.Fprintf(&b, `
(p find-color-line-%[2]s
  (sticker ^face %[1]s ^pos 1 ^color <c>)
  (sticker ^color <c> ^pos <p2> ^face <f2>)
  (sticker ^color <c> ^pos <p2> ^face {<f3> <> <f2>})
  (guard ^flag on)
-->
  (make obs ^face %[1]s))

(p find-color-diag-%[2]s
  (sticker ^face %[1]s ^pos 9 ^color <c>)
  (sticker ^color <c> ^pos <p2> ^face <f2>)
  (sticker ^color <c> ^pos <p2> ^face {<f3> <> <f2>})
  (guard ^flag on)
-->
  (make obs ^face %[1]s))
`, face, strings.ToLower(face))
	}
	for _, pos := range []int{2, 4, 5, 6, 8} {
		fmt.Fprintf(&b, `
(p spot-ring-%[1]d
  (sticker ^pos %[1]d ^color <c> ^face <f1>)
  (sticker ^pos %[1]d ^color <c> ^face {<f2> <> <f1>})
  (guard ^flag on)
-->
  (make obs ^face <f1>))
`, pos)
	}
	b.WriteString(`
(p solved
  (check ^flag yes)
  (faceok ^face U)
  (faceok ^face D)
  (faceok ^face F)
  (faceok ^face B)
  (faceok ^face L)
  (faceok ^face R)
-->
  (write cube-solved (crlf))
  (halt))
`)
	// Initial working memory: solved cube, step counter, move list.
	b.WriteString("\n(make step ^num 1)\n")
	for _, face := range cubeFaces {
		for pos := 1; pos <= 9; pos++ {
			fmt.Fprintf(&b, "(make sticker ^face %s ^pos %d ^color %s)\n", face, pos, faceColor[face])
		}
	}
	seq := 1
	scramble := RubikScramble(scrambleLen)
	for _, mv := range scramble {
		fmt.Fprintf(&b, "(make move ^seq %d ^face %s ^dir %s)\n", seq, mv.Face, dirName(mv.CW))
		seq++
	}
	for i := len(scramble) - 1; i >= 0; i-- {
		mv := scramble[i]
		fmt.Fprintf(&b, "(make move ^seq %d ^face %s ^dir %s)\n", seq, mv.Face, dirName(!mv.CW))
		seq++
	}
	return b.String()
}

func dirName(cw bool) string {
	if cw {
		return "cw"
	}
	return "ccw"
}

// writeRotationRule emits one quarter turn as five 4-cycle productions
// plus a collector. Each cycle rule matches the want marker and the four
// stickers of one permutation cycle, rewrites their colors and drops a
// cycdone marker; the collector fires when all five cycles are done.
// Keeping condition elements per rule small (6) matters in the parallel
// matchers: a very wide join chain lets concurrently in-flight
// delete/add pairs materialize exponentially many transient token
// combinations before the deletes unwind them.
func writeRotationRule(b *strings.Builder, face string, cw bool) {
	cycles := faceCycles[face]
	varOf := func(s cubeSlot) string {
		return fmt.Sprintf("<c%s%d>", strings.ToLower(s.face), s.pos)
	}
	lf, dir := strings.ToLower(face), dirName(cw)
	for ci, cyc := range cycles {
		fmt.Fprintf(b, "\n(p rotate-%s-%s-c%d\n  (want ^face %s ^dir %s)\n", lf, dir, ci+1, face, dir)
		for _, s := range cyc {
			fmt.Fprintf(b, "  (sticker ^face %s ^pos %d ^color %s)\n", s.face, s.pos, varOf(s))
		}
		fmt.Fprintf(b, "  - (cycdone ^face %s ^idx %d)\n-->\n", face, ci+1)
		for i := range cyc {
			src, dst := cyc[i], cyc[(i+1)%4]
			if !cw {
				src, dst = dst, src
			}
			// Destination CE index: position of dst within this cycle,
			// offset by the want marker at CE 1.
			dstCE := 0
			for k, s := range cyc {
				if s == dst {
					dstCE = k + 2
				}
			}
			fmt.Fprintf(b, "  (modify %d ^color %s)\n", dstCE, varOf(src))
		}
		fmt.Fprintf(b, "  (make cycdone ^face %s ^idx %d))\n", face, ci+1)
	}
	// Collector: all five cycles done -> the turn is complete.
	fmt.Fprintf(b, "\n(p rotate-%s-%s-done\n  (want ^face %s ^dir %s)\n", lf, dir, face, dir)
	for ci := range cycles {
		fmt.Fprintf(b, "  (cycdone ^face %s ^idx %d)\n", face, ci+1)
	}
	b.WriteString("-->\n  (remove 1)\n")
	for ci := range cycles {
		fmt.Fprintf(b, "  (remove %d)\n", ci+2)
	}
	b.WriteString("  (make rotated ^flag yes))\n")
}
