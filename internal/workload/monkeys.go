package workload

// Monkeys returns the classic monkey-and-bananas planning program — the
// canonical OPS5 teaching example (Brownston et al. 1985). It is not one
// of the paper's benchmarks; it exercises the MEA strategy, goal-driven
// control, negations and modify-heavy actions, and serves as the
// domain-specific example program.
func Monkeys() string {
	return `; Monkey and bananas, MEA-driven.
(strategy mea)
(literalize goal status type obj to)
(literalize monkey at on holds)
(literalize thing name at)

; Goal decomposition.
(p want-to-hold
  (goal ^status active ^type eat ^obj bananas)
  (monkey ^holds nil)
  - (goal ^status active ^type holds ^obj bananas)
-->
  (make goal ^status active ^type holds ^obj bananas))

(p want-on-ladder
  (goal ^status active ^type holds ^obj bananas)
  (monkey ^on <> ladder)
  - (goal ^status active ^type on ^obj ladder)
-->
  (make goal ^status active ^type on ^obj ladder))

(p want-ladder-moved
  (goal ^status active ^type on ^obj ladder)
  (thing ^name bananas ^at <p>)
  (thing ^name ladder ^at {<q> <> <p>})
  - (goal ^status active ^type move ^obj ladder ^to <p>)
-->
  (make goal ^status active ^type move ^obj ladder ^to <p>))

(p want-to-walk
  (goal ^status active ^type move ^obj ladder ^to <p>)
  (thing ^name ladder ^at <q>)
  (monkey ^at {<> <q>} ^on floor)
  - (goal ^status active ^type walk ^to <q>)
-->
  (make goal ^status active ^type walk ^to <q>))

; Operators.
(p walk
  (goal ^status active ^type walk ^to <q>)
  (monkey ^at <> <q> ^on floor)
-->
  (write monkey walks to <q> (crlf))
  (modify 2 ^at <q>)
  (modify 1 ^status satisfied))

(p push-ladder
  (goal ^status active ^type move ^obj ladder ^to <p>)
  (thing ^name ladder ^at {<q> <> <p>})
  (monkey ^at <q> ^on floor)
-->
  (write monkey pushes ladder to <p> (crlf))
  (modify 2 ^at <p>)
  (modify 3 ^at <p>)
  (modify 1 ^status satisfied))

(p climb
  (goal ^status active ^type on ^obj ladder)
  (thing ^name ladder ^at <p>)
  (monkey ^at <p> ^on floor)
-->
  (write monkey climbs the ladder (crlf))
  (modify 3 ^on ladder)
  (modify 1 ^status satisfied))

(p grab
  (goal ^status active ^type holds ^obj bananas)
  (thing ^name bananas ^at <p>)
  (monkey ^at <p> ^on ladder ^holds nil)
-->
  (write monkey grabs the bananas (crlf))
  (modify 3 ^holds bananas)
  (modify 1 ^status satisfied))

(p eat
  (goal ^status active ^type eat ^obj bananas)
  (monkey ^holds bananas)
-->
  (write monkey eats the bananas -- done (crlf))
  (modify 1 ^status satisfied)
  (halt))

; Initial situation: monkey at the door, ladder in the corner, bananas
; hanging in the middle of the room.
(make monkey ^at door ^on floor ^holds nil)
(make thing ^name ladder ^at corner)
(make thing ^name bananas ^at middle)
(make goal ^status active ^type eat ^obj bananas)
`
}
