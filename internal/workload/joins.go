// Adversarial join kernels for the join-order planner, the match
// budget and left/right unlinking (BENCH_join.json). Each generator
// returns a complete OPS5 program that halts deterministically, so the
// same source runs under every backend and either join order with a
// byte-identical firing trace.
package workload

import (
	"fmt"
	"strings"
)

// SkewJoin builds the skewed-value join kernel: items and parts share a
// single ^grp value, so the item x part join collapses onto one hash
// line and every activation scans the whole opposite memory. In source
// order that join runs first and materializes items x parts beta
// tokens; each of the ticks then modifies the conf element, whose
// removal and re-assert both walk that full token memory. The planner
// puts conf first instead (its ^flag on constant test is the only
// static selectivity signal), after which the skewed join sees at most
// one left token and the per-tick work drops from O(items*parts) to
// O(1). conf's ^sel never matches any item, so the probe rule never
// fires and the workload's firing trace is just the tick countdown.
func SkewJoin(items, ticks int) string {
	if items < 2 {
		items = 2
	}
	if ticks < 1 {
		ticks = 1
	}
	parts := items / 2
	if parts < 1 {
		parts = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `; SkewJoin: %d items, %d parts (one shared ^grp), %d conf ticks.
(literalize ctl n)
(literalize item grp sel)
(literalize part grp)
(literalize conf sel flag)

; The adversarial rule. Source order joins item x part on the skewed
; ^grp first; the planner moves conf (constant-tested) to the front.
(p skew-probe
  (item ^grp <g> ^sel <s>)
  (part ^grp <g>)
  (conf ^sel <s> ^flag on)
-->
  (halt))

; Each tick modifies conf: one remove + one assert through whatever
; join position conf was compiled into.
(p tick
  (ctl ^n {<k> > 0})
  (conf ^sel <s>)
-->
  (modify 2 ^sel (compute <s> - 1))
  (modify 1 ^n (compute <k> - 1)))

(p done
  (ctl ^n 0)
-->
  (halt))

(make ctl ^n %d)
(make conf ^sel -1 ^flag on)
`, items, parts, ticks, ticks)
	for i := 1; i <= items; i++ {
		fmt.Fprintf(&b, "(make item ^grp 7 ^sel %d)\n", i)
	}
	for i := 0; i < parts; i++ {
		b.WriteString("(make part ^grp 7)\n")
	}
	return b.String()
}

// CrossProduct builds the no-equality-test kernel: the crossp rule's
// condition elements share no variables, so no join order avoids the
// quadratic obj x obj scan — this is the shape the per-rule match
// budget exists to contain. Each tick makes a probe element; crossp
// (more specific) removes it when live, the cleanup rule removes it
// once crossp has been quarantined, so the countdown finishes and the
// program halts either way.
func CrossProduct(objs, ticks int) string {
	if objs < 2 {
		objs = 2
	}
	if ticks < 1 {
		ticks = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `; CrossProduct: %d objs, %d probe ticks, no shared variables.
(literalize ctl n)
(literalize obj id)
(literalize probe n)

(p crossp
  (probe ^n <k>)
  (obj ^id <a>)
  (obj ^id {<b> > <a>})
-->
  (remove 1))

(p cleanup
  (probe ^n <k>)
-->
  (remove 1))

(p tick
  (ctl ^n {<k> > 0})
  - (probe)
-->
  (make probe ^n <k>)
  (modify 1 ^n (compute <k> - 1)))

(p done
  (ctl ^n 0)
  - (probe)
-->
  (halt))

(make ctl ^n %d)
`, objs, ticks, ticks)
	for i := 1; i <= objs; i++ {
		fmt.Fprintf(&b, "(make obj ^id %d)\n", i)
	}
	return b.String()
}

// DepChain builds the long-dependent-chain kernel: one rule whose
// condition elements form a depth-long equality chain on ^val, gated by
// a head element asserted after every link. Until the head arrives all
// of the rule's beta memories are empty, so every link assert is a null
// right activation — the case left/right unlinking turns into a
// buffered no-op.
//
// With headOn true the head is asserted (^flag on) after every link:
// the first join relinks, the buffered replays cascade down the chain,
// the rule fires once per value consuming the level-0 links, and the
// program halts — the correctness shape (deferred work is replayed
// exactly). With headOn false the head arrives with ^flag off, the
// gate never opens, and every one of the buffered activations is work
// avoided outright — the null-activation shape the chain gate in
// BENCH_baseline.json measures.
func DepChain(vals, depth int, headOn bool) string {
	if vals < 1 {
		vals = 1
	}
	if depth < 2 {
		depth = 2
	}
	var b strings.Builder
	fmt.Fprintf(&b, `; DepChain: %d values through a %d-level dependent chain.
(literalize head flag)
(literalize link lvl val)

(p chain
  (head ^flag on)
`, vals, depth)
	for l := 0; l < depth; l++ {
		fmt.Fprintf(&b, "  (link ^lvl %d ^val <v>)\n", l)
	}
	b.WriteString(`-->
  (remove 2))

(p done
  (head ^flag on)
  - (link ^lvl 0)
-->
  (halt))

(p done-gated
  (head ^flag off)
-->
  (halt))

`)
	for v := 1; v <= vals; v++ {
		for l := 0; l < depth; l++ {
			fmt.Fprintf(&b, "(make link ^lvl %d ^val %d)\n", l, v)
		}
	}
	flag := "on"
	if !headOn {
		flag = "off"
	}
	fmt.Fprintf(&b, "(make head ^flag %s)\n", flag)
	return b.String()
}
