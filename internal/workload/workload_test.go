package workload_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/lispemu"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

const maxCycles = 20000

func compile(t *testing.T, src string) (*ops5.Program, *rete.Network) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, net
}

// runWith executes src on the named matcher kind and returns the result
// plus program output.
func runWith(t *testing.T, src, kind string) (*engine.Result, string) {
	t.Helper()
	prog, net := compile(t, src)
	cs := conflict.NewSet()
	var m engine.Matcher
	switch kind {
	case "vs1":
		m = seqmatch.New(net, seqmatch.VS1, 0, cs)
	case "vs2":
		m = seqmatch.New(net, seqmatch.VS2, 0, cs)
	case "lisp":
		m = lispemu.New(prog, net, cs)
	case "par":
		pm := parmatch.New(net, parmatch.Config{Procs: 4, Queues: 2, Scheme: parmatch.SchemeSimple}, cs)
		defer pm.Close()
		m = pm
	case "par-mrsw":
		pm := parmatch.New(net, parmatch.Config{Procs: 4, Queues: 4, Scheme: parmatch.SchemeMRSW}, cs)
		defer pm.Close()
		m = pm
	default:
		t.Fatalf("unknown matcher %q", kind)
	}
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init: %v", err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true})
	if err != nil {
		t.Fatalf("run (%s): %v", kind, err)
	}
	return res, out.String()
}

func TestTourneyCompletes(t *testing.T) {
	src := workload.Tourney(10)
	res, out := runWith(t, src, "vs2")
	if !res.Halted {
		t.Fatalf("tourney did not halt: %d cycles", res.Cycles)
	}
	if !strings.Contains(out, "schedule-complete") {
		t.Fatalf("missing completion output: %q", out)
	}
	if strings.Contains(out, "clash") {
		t.Fatalf("schedule has clashes: %q", out)
	}
}

func TestRubikSolves(t *testing.T) {
	src := workload.Rubik(6)
	res, out := runWith(t, src, "vs2")
	if !res.Halted {
		t.Fatalf("rubik did not halt after %d cycles", res.Cycles)
	}
	if !strings.Contains(out, "cube-solved") {
		t.Fatalf("cube not solved: %q", out)
	}
	// 2*scrambleLen turns, each one apply-move + rotate + advance, plus
	// moves-done, 6 face checks and solved.
	wantMin := 6 * 2 * 3
	if res.Cycles < wantMin {
		t.Errorf("suspiciously few cycles: %d < %d", res.Cycles, wantMin)
	}
}

func TestWeaverRoutesAllNets(t *testing.T) {
	src := workload.Weaver(6, 8)
	res, out := runWith(t, src, "vs2")
	if !res.Halted {
		t.Fatalf("weaver did not halt after %d cycles", res.Cycles)
	}
	if !strings.Contains(out, "routing-complete") {
		t.Fatalf("missing completion: %q", out)
	}
	for n := 1; n <= 6; n++ {
		if !strings.Contains(out, fmt.Sprintf("net %d length", n)) {
			t.Errorf("net %d not reported: %q", n, out)
		}
	}
}

// TestAllMatchersAgree runs each workload on every matcher and requires
// identical firing sequences and outputs — the core cross-matcher
// equivalence property.
func TestAllMatchersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-matcher sweep is slow")
	}
	workloads := map[string]string{
		"tourney": workload.Tourney(8),
		"rubik":   workload.Rubik(4),
		"weaver":  workload.Weaver(4, 7),
	}
	kinds := []string{"vs1", "vs2", "lisp", "par", "par-mrsw"}
	for name, src := range workloads {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			ref, refOut := runWith(t, src, "vs2")
			for _, kind := range kinds {
				if kind == "vs2" {
					continue
				}
				got, gotOut := runWith(t, src, kind)
				if len(got.Firings) != len(ref.Firings) {
					t.Fatalf("%s: %d firings, want %d", kind, len(got.Firings), len(ref.Firings))
				}
				for i := range ref.Firings {
					if got.Firings[i].Rule != ref.Firings[i].Rule ||
						fmt.Sprint(got.Firings[i].TimeTags) != fmt.Sprint(ref.Firings[i].TimeTags) {
						t.Fatalf("%s: firing %d = %v, want %v", kind, i, got.Firings[i], ref.Firings[i])
					}
				}
				if gotOut != refOut {
					t.Fatalf("%s: output differs:\n got %q\nwant %q", kind, gotOut, refOut)
				}
			}
		})
	}
}

// TestSimulatorAgreesOnWorkloads runs the Multimax simulation on each
// workload and compares firing logs with the sequential reference.
func TestSimulatorAgreesOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	workloads := map[string]string{
		"tourney": workload.Tourney(8),
		"rubik":   workload.Rubik(4),
		"weaver":  workload.Weaver(4, 7),
	}
	for name, src := range workloads {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			ref, _ := runWith(t, src, "vs2")
			want := make([]string, len(ref.Firings))
			for i, f := range ref.Firings {
				want[i] = fmt.Sprintf("%s@%d", f.Rule, f.Cycle)
			}
			prog, net := compile(t, src)
			res, err := multimax.Simulate(prog, net, multimax.Config{
				Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW,
				Pipelined: true, MaxCycles: maxCycles,
			})
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if len(res.FiringLog) != len(want) {
				t.Fatalf("firings: %d want %d", len(res.FiringLog), len(want))
			}
			for i := range want {
				if res.FiringLog[i] != want[i] {
					t.Fatalf("firing %d: %s want %s", i, res.FiringLog[i], want[i])
				}
			}
		})
	}
}
