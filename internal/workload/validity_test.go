package workload_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

// runWM executes a program on vs2 and returns the final working memory
// as printed strings plus the run result.
func runWM(t *testing.T, src string) ([]string, *engine.Result, string) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, seqmatch.VS2, 0, cs)
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(engine.Options{MaxCycles: 100000})
	if err != nil {
		t.Fatal(err)
	}
	var wmes []string
	for _, w := range e.WM.Snapshot() {
		wmes = append(wmes, w.String(prog.Symbols, prog.AttrName))
	}
	return wmes, res, out.String()
}

func attrsOf(s string) map[string]string {
	out := map[string]string{}
	fields := strings.Fields(strings.Trim(s, "()"))
	for i := 1; i+1 < len(fields); i += 2 {
		out[strings.TrimPrefix(fields[i], "^")] = fields[i+1]
	}
	return out
}

// TestTourneyScheduleIsValid checks the domain result, not just
// termination: every pair assigned exactly once, and no team plays
// twice in one round.
func TestTourneyScheduleIsValid(t *testing.T) {
	teams := 10
	wmes, res, out := runWM(t, workload.Tourney(teams))
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if strings.Contains(out, "clash") {
		t.Fatalf("clash detected by in-program sanity rules: %q", out)
	}
	type slot struct{ round, team string }
	seenPair := map[string]bool{}
	seenSlot := map[slot]bool{}
	pairs := 0
	for _, w := range wmes {
		if !strings.HasPrefix(w, "(pair ") {
			continue
		}
		a := attrsOf(w)
		if a["round"] == "" || a["round"] == "nil" {
			t.Fatalf("unassigned pair survived: %s", w)
		}
		pairs++
		key := a["t1"] + "/" + a["t2"]
		if seenPair[key] {
			t.Fatalf("pair %s appears twice", key)
		}
		seenPair[key] = true
		for _, tm := range []string{a["t1"], a["t2"]} {
			s := slot{a["round"], tm}
			if seenSlot[s] {
				t.Fatalf("team %s plays twice in round %s", tm, a["round"])
			}
			seenSlot[s] = true
		}
	}
	if want := teams * (teams - 1) / 2; pairs != want {
		t.Fatalf("%d pairs scheduled, want %d", pairs, want)
	}
}

// TestRubikCubeActuallySolved verifies the final sticker state, not
// just the program's own solved message.
func TestRubikCubeActuallySolved(t *testing.T) {
	wmes, res, out := runWM(t, workload.Rubik(8))
	if !res.Halted || !strings.Contains(out, "cube-solved") {
		t.Fatalf("halted=%v out=%q", res.Halted, out)
	}
	faceColors := map[string]map[string]bool{}
	stickers := 0
	for _, w := range wmes {
		if !strings.HasPrefix(w, "(sticker ") {
			continue
		}
		a := attrsOf(w)
		stickers++
		if faceColors[a["face"]] == nil {
			faceColors[a["face"]] = map[string]bool{}
		}
		faceColors[a["face"]][a["color"]] = true
	}
	if stickers != 54 {
		t.Fatalf("%d stickers, want 54", stickers)
	}
	for face, colors := range faceColors {
		if len(colors) != 1 {
			t.Fatalf("face %s shows %d colors: %v", face, len(colors), colors)
		}
	}
}

// TestWeaverRoutesWithinBounds verifies each routed length is at least
// the Manhattan distance between the net's pins (shorter is impossible)
// and that every net reports a length.
func TestWeaverRoutesWithinBounds(t *testing.T) {
	nets := 8
	src := workload.Weaver(nets, 9)
	_, res, out := runWM(t, src)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	// Collect the declared pins from the generated source.
	type pin struct{ sx, sy, tx, ty int }
	pins := map[int]pin{}
	for _, line := range strings.Split(src, "\n") {
		if !strings.HasPrefix(line, "(make net ") {
			continue
		}
		a := attrsOf(line)
		id, _ := strconv.Atoi(a["id"])
		p := pin{}
		p.sx, _ = strconv.Atoi(a["sx"])
		p.sy, _ = strconv.Atoi(a["sy"])
		p.tx, _ = strconv.Atoi(a["tx"])
		p.ty, _ = strconv.Atoi(a["ty"])
		pins[id] = p
	}
	for n := 1; n <= nets; n++ {
		marker := fmt.Sprintf("net %d length ", n)
		i := strings.Index(out, marker)
		if i < 0 {
			t.Fatalf("net %d missing from report: %q", n, out)
		}
		rest := out[i+len(marker):]
		lenStr := strings.Fields(rest)[0]
		length, err := strconv.Atoi(lenStr)
		if err != nil {
			t.Fatalf("net %d length %q", n, lenStr)
		}
		p := pins[n]
		manhattan := abs(p.tx-p.sx) + abs(p.ty-p.sy)
		if length < manhattan {
			t.Fatalf("net %d routed length %d below Manhattan distance %d", n, length, manhattan)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestMonkeysPlan locks in the classic plan.
func TestMonkeysPlan(t *testing.T) {
	_, res, out := runWM(t, workload.Monkeys())
	if !res.Halted {
		t.Fatal("monkeys did not halt")
	}
	for _, step := range []string{"walks", "pushes", "climbs", "grabs", "eats"} {
		if !strings.Contains(out, step) {
			t.Fatalf("plan missing %q: %q", step, out)
		}
	}
	// Order: walk before push before climb before grab before eat.
	idx := func(s string) int { return strings.Index(out, s) }
	if !(idx("walks") < idx("pushes") && idx("pushes") < idx("climbs") &&
		idx("climbs") < idx("grabs") && idx("grabs") < idx("eats")) {
		t.Fatalf("plan out of order: %q", out)
	}
}
