package workload_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
)

// randomProgram generates a terminating OPS5 program: rules may only
// (a) make WMEs of the inert class out (nothing matches out, so each
// instantiation fires at most once by refraction) or (b) remove one of
// their matched WMEs (working memory only shrinks). Both action kinds
// guarantee the run exhausts its conflict set.
func randomProgram(r *rand.Rand) string {
	classes := []string{"ca", "cb", "cc"}
	attrs := []string{"p", "q", "s"}
	var b strings.Builder
	b.WriteString("(literalize ca p q s)\n(literalize cb p q s)\n(literalize cc p q s)\n(literalize out v w)\n")
	nRules := 3 + r.Intn(6)
	for i := 0; i < nRules; i++ {
		nCE := 1 + r.Intn(3)
		fmt.Fprintf(&b, "(p rule-%d\n", i)
		boundVars := []string{}
		for ce := 0; ce < nCE; ce++ {
			neg := ce > 0 && r.Intn(4) == 0
			if neg {
				b.WriteString("  - (")
			} else {
				b.WriteString("  (")
			}
			b.WriteString(classes[r.Intn(len(classes))])
			for _, a := range attrs {
				switch r.Intn(5) {
				case 0: // constant test
					fmt.Fprintf(&b, " ^%s %d", a, r.Intn(4))
				case 1: // fresh variable (binds in positive CEs)
					v := fmt.Sprintf("v%d%s", ce, a)
					fmt.Fprintf(&b, " ^%s <%s>", a, v)
					if !neg {
						boundVars = append(boundVars, v)
					}
				case 2: // test against an earlier binding
					if len(boundVars) > 0 {
						v := boundVars[r.Intn(len(boundVars))]
						preds := []string{"", "<> ", "> ", "<= "}
						fmt.Fprintf(&b, " ^%s {%s<%s>}", a, preds[r.Intn(len(preds))], v)
					}
				case 3: // numeric predicate
					fmt.Fprintf(&b, " ^%s > %d", a, r.Intn(3))
				}
			}
			b.WriteString(")\n")
		}
		b.WriteString("-->\n")
		if r.Intn(2) == 0 && len(boundVars) > 0 {
			fmt.Fprintf(&b, "  (make out ^v <%s> ^w %d))\n", boundVars[r.Intn(len(boundVars))], i)
		} else {
			b.WriteString("  (remove 1))\n")
		}
	}
	nWmes := 8 + r.Intn(12)
	for i := 0; i < nWmes; i++ {
		fmt.Fprintf(&b, "(make %s ^p %d ^q %d ^s %d)\n",
			classes[r.Intn(len(classes))], r.Intn(4), r.Intn(4), r.Intn(4))
	}
	return b.String()
}

// runKind executes src on the named backend and returns the firing log.
func runKind(t *testing.T, src, kind string) []string {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	if kind == "sim" {
		res, err := multimax.Simulate(prog, net, multimax.Config{
			Procs: 5, Queues: 2, Scheme: parmatch.SchemeMRSW, Pipelined: true, MaxCycles: 2000,
		})
		if err != nil {
			t.Fatalf("simulate: %v\nsource:\n%s", err, src)
		}
		return res.FiringLog
	}
	cs := conflict.NewSet()
	var m engine.Matcher
	switch kind {
	case "vs1":
		m = seqmatch.New(net, seqmatch.VS1, 0, cs)
	case "vs2":
		m = seqmatch.New(net, seqmatch.VS2, 0, cs)
	case "par":
		pm := parmatch.New(net, parmatch.Config{Procs: 3, Queues: 2, Scheme: parmatch.SchemeSimple}, cs)
		defer pm.Close()
		m = pm
	}
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("init (%s): %v\nsource:\n%s", kind, err, src)
	}
	res, err := e.Run(engine.Options{MaxCycles: 2000, RecordFiring: true, CheckEvery: true})
	if err != nil {
		t.Fatalf("run (%s): %v\nsource:\n%s", kind, err, src)
	}
	out := make([]string, len(res.Firings))
	for i, f := range res.Firings {
		out[i] = fmt.Sprintf("%s@%d", f.Rule, f.Cycle)
	}
	return out
}

// TestRandomProgramsAgreeAcrossMatchers is the big equivalence property:
// for many random (terminating) programs, every backend and the
// simulator must produce the identical firing sequence.
func TestRandomProgramsAgreeAcrossMatchers(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := randomProgram(rand.New(rand.NewSource(int64(seed))))
			want := runKind(t, src, "vs2")
			for _, kind := range []string{"vs1", "par", "sim"} {
				got := runKind(t, src, kind)
				if len(got) != len(want) {
					t.Fatalf("%s: %d firings, want %d\nsource:\n%s", kind, len(got), len(want), src)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: firing %d = %s, want %s\nsource:\n%s", kind, i, got[i], want[i], src)
					}
				}
			}
		})
	}
}
