// Package workload provides the three benchmark programs of the paper's
// evaluation (§4): Tourney, Rubik and Weaver. The originals (Barabash's
// tournament scheduler, James Allen's Rubik solver, Joobbani's 637-rule
// Weaver router) are not distributed, so each is rebuilt to preserve the
// property the paper's analysis relies on: Tourney's cross-product
// joins, Rubik's modify-heavy wide joins, and Weaver's large network of
// selective joins. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"strings"
)

// Tourney generates a round-robin tournament scheduler for the given
// number of teams. Its signature property is the paper's Tourney
// pathology: key rules join condition elements that share no variables
// (team x team pairing, current-round x pair placement), so those
// two-input nodes have no equality tests, every token of each such node
// lands on a single hash line, and the line locks serialize — which is
// why the paper's Tourney never exceeded ~2.7x speed-up (§4.2).
//
// The schedule is built in three phases: generate all pairings (a pure
// cross-product over teams, counted so the phase ends deterministically
// under LEX), assign every pairing to the earliest round where neither
// team is busy (deferring stamped per round), then sweep the busy
// markers and report. With 16 teams the run processes on the order of a
// thousand working-memory changes, the scale of Table 4-1.
func Tourney(teams int) string {
	if teams < 2 {
		teams = 2
	}
	expected := teams * (teams - 1) / 2
	var b strings.Builder
	fmt.Fprintf(&b, `; Tourney: round-robin schedule assignment (%[1]d teams, %[2]d pairings).
(literalize context phase)
(literalize team id)
(literalize paircount n)
(literalize pair t1 t2 round skip)
(literalize current round)
(literalize busy round team)

; Phase gen: the team x team join shares no variables (its only
; inter-element test is the non-equality <b> > <a>), making it a
; cross-product node; so is the join against the pair counter.
(p gen-pairs
  (context ^phase gen)
  (team ^id <a>)
  (team ^id {<b> > <a>})
  (paircount ^n <c>)
  - (pair ^t1 <a> ^t2 <b>)
-->
  (make pair ^t1 <a> ^t2 <b> ^round nil ^skip nil)
  (modify 4 ^n (compute <c> + 1)))

(p start-assign
  (context ^phase gen)
  (paircount ^n %[2]d)
-->
  (modify 1 ^phase assign)
  (make current ^round 1))

; Phase assign: place a pairing into the current round when neither team
; is busy there. The (current) x (pair) join again shares no variables.
(p assign
  (context ^phase assign)
  (current ^round <r>)
  (pair ^t1 <a> ^t2 <b> ^round nil ^skip <> <r>)
  - (busy ^round <r> ^team <a>)
  - (busy ^round <r> ^team <b>)
-->
  (modify 3 ^round <r>)
  (make busy ^round <r> ^team <a>)
  (make busy ^round <r> ^team <b>))

; A pairing whose team is already busy this round is deferred by
; stamping it with the round number; it is retried next round.
(p defer-first
  (context ^phase assign)
  (current ^round <r>)
  (pair ^t1 <a> ^round nil ^skip <> <r>)
  (busy ^round <r> ^team <a>)
-->
  (modify 3 ^skip <r>))

(p defer-second
  (context ^phase assign)
  (current ^round <r>)
  (pair ^t2 <b> ^round nil ^skip <> <r>)
  (busy ^round <r> ^team <b>)
-->
  (modify 3 ^skip <r>))

; When every unassigned pairing is deferred for this round, advance.
(p next-round
  (context ^phase assign)
  (current ^round <r>)
  (pair ^round nil)
  - (pair ^round nil ^skip <> <r>)
-->
  (modify 2 ^round (compute <r> + 1)))

(p all-assigned
  (context ^phase assign)
  - (pair ^round nil)
-->
  (modify 1 ^phase report))

; Phase report: consume the busy markers, verify the schedule, halt.
(p sweep-busy
  (context ^phase report)
  (busy ^round <r> ^team <t>)
-->
  (remove 2))

(p clash-shared-second
  (context ^phase report)
  (pair ^t2 <b> ^round {<r> <> nil} ^t1 <a>)
  (pair ^t2 <b> ^round <r> ^t1 {<c> <> <a>})
-->
  (write clash <a> <c> <b> (crlf)))

(p clash-cross
  (context ^phase report)
  (pair ^t1 <a> ^round {<r> <> nil})
  (pair ^t2 <a> ^round <r>)
-->
  (write clash cross <a> (crlf)))

(p report-done
  (context ^phase report)
  - (busy ^round <rr> ^team <tt>)
-->
  (write schedule-complete (crlf))
  (halt))

(make context ^phase gen)
(make paircount ^n 0)
`, teams, expected)
	for i := 1; i <= teams; i++ {
		fmt.Fprintf(&b, "(make team ^id %d)\n", i)
	}
	return b.String()
}
