package stats

import (
	"math"
	"time"
)

// Server aggregates inference-server counters. Plain int64 fields, like
// Match: the owner synchronizes access (the server updates them under
// its metrics mutex) and Add folds per-session shards together.
type Server struct {
	SessionsCreated int64 `json:"sessions_created"`
	SessionsClosed  int64 `json:"sessions_closed"`
	SessionsLive    int64 `json:"sessions_live"`

	Requests      int64 `json:"requests"`       // API requests handled
	RequestErrors int64 `json:"request_errors"` // requests answered with an error status
	Panics        int64 `json:"panics"`         // session panics recovered
	LimitStops    int64 `json:"limit_stops"`    // runs stopped by a cycle/time budget

	Batches    int64 `json:"batches"`     // assert/retract batches executed
	BatchItems int64 `json:"batch_items"` // WM changes requested across batches
	Asserts    int64 `json:"asserts"`     // elements asserted via the API
	Retracts   int64 `json:"retracts"`    // elements retracted via the API

	Cycles  int64 `json:"cycles"`  // recognize-act cycles run on behalf of requests
	Firings int64 `json:"firings"` // production firings across those cycles

	// Content-addressed program cache: registered entries, session
	// creates that found their compiled program already resident (no
	// parse, no Rete compile), and the compiles actually paid.
	ProgramsRegistered int64 `json:"programs_registered"`
	ProgramHits        int64 `json:"program_hits"`
	ProgramCompiles    int64 `json:"program_compiles"`
}

// Add accumulates o into s.
func (s *Server) Add(o *Server) {
	s.SessionsCreated += o.SessionsCreated
	s.SessionsClosed += o.SessionsClosed
	s.SessionsLive += o.SessionsLive
	s.Requests += o.Requests
	s.RequestErrors += o.RequestErrors
	s.Panics += o.Panics
	s.LimitStops += o.LimitStops
	s.Batches += o.Batches
	s.BatchItems += o.BatchItems
	s.Asserts += o.Asserts
	s.Retracts += o.Retracts
	s.Cycles += o.Cycles
	s.Firings += o.Firings
	s.ProgramsRegistered += o.ProgramsRegistered
	s.ProgramHits += o.ProgramHits
	s.ProgramCompiles += o.ProgramCompiles
}

// histBuckets is the number of power-of-two latency buckets. Bucket i
// covers durations in [2^i, 2^(i+1)) microseconds; bucket 0 also takes
// sub-microsecond observations, the last bucket takes everything above
// ~34 seconds. 26 buckets keep the zero value small enough to embed.
const histBuckets = 26

// Histogram is a fixed-bucket log-2 latency histogram. The zero value
// is ready to use. Like the counter structs, it is not internally
// synchronized.
type Histogram struct {
	Count   int64              `json:"count"`
	SumUs   int64              `json:"sum_us"`
	MaxUs   int64              `json:"max_us"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// bucketOf maps a duration to its bucket index.
func bucketOf(us int64) int {
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Count++
	h.SumUs += us
	if us > h.MaxUs {
		h.MaxUs = us
	}
	h.Buckets[bucketOf(us)]++
}

// Add accumulates o into h.
func (h *Histogram) Add(o *Histogram) {
	h.Count += o.Count
	h.SumUs += o.SumUs
	if o.MaxUs > h.MaxUs {
		h.MaxUs = o.MaxUs
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// ObserveCount records a unitless size observation (batch items, token
// counts) in the same log-2 buckets. Count-valued histograms must use
// this instead of Observe so sizes are not mistaken for durations; they
// render through CountSummary, which labels fields in items rather than
// microseconds.
func (h *Histogram) ObserveCount(n int64) {
	if n < 0 {
		n = 0
	}
	h.Count++
	h.SumUs += n
	if n > h.MaxUs {
		h.MaxUs = n
	}
	h.Buckets[bucketOf(n)]++
}

// Quantile returns an upper bound (the bucket's upper edge, clamped to
// the observed maximum) for the q-quantile, q in [0, 1]. Zero
// observations yield 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	return time.Duration(h.quantileRaw(q)) * time.Microsecond
}

// quantileRaw is Quantile in the histogram's native unit (µs for
// latency histograms, items for count histograms).
func (h *Histogram) quantileRaw(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			upper := int64(1) << uint(i+1) // exclusive upper edge
			if upper > h.MaxUs {
				upper = h.MaxUs
			}
			return upper
		}
	}
	return h.MaxUs
}

// MeanUs returns the mean observation in microseconds.
func (h *Histogram) MeanUs() float64 { return Mean(h.SumUs, h.Count) }

// LatencySummary is the rendered form of a histogram for snapshots.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  int64   `json:"p50_us"`
	P90Us  int64   `json:"p90_us"`
	P99Us  int64   `json:"p99_us"`
	MaxUs  int64   `json:"max_us"`
}

// Summary renders the histogram's headline quantiles.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count,
		MeanUs: h.MeanUs(),
		P50Us:  h.Quantile(0.50).Microseconds(),
		P90Us:  h.Quantile(0.90).Microseconds(),
		P99Us:  h.Quantile(0.99).Microseconds(),
		MaxUs:  h.MaxUs,
	}
}

// CountSummary is the rendered form of a count-valued histogram
// (ObserveCount): same quantile machinery as LatencySummary, but the
// unit is items, not microseconds.
type CountSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_items"`
	P50   int64   `json:"p50_items"`
	P90   int64   `json:"p90_items"`
	P99   int64   `json:"p99_items"`
	Max   int64   `json:"max_items"`
}

// CountSummary renders a count-valued histogram's headline quantiles.
func (h *Histogram) CountSummary() CountSummary {
	return CountSummary{
		Count: h.Count,
		Mean:  Mean(h.SumUs, h.Count),
		P50:   h.quantileRaw(0.50),
		P90:   h.quantileRaw(0.90),
		P99:   h.quantileRaw(0.99),
		Max:   h.MaxUs,
	}
}

// Snapshot is the point-in-time view GET /metrics serves and the bench
// harness writes into BENCH_*.json: server counters, the aggregated
// match counters of every live and closed session, scheduler/lock
// contention from parallel-backend sessions, latency summaries keyed by
// operation ("request", "run", ...) and size summaries keyed by
// quantity ("batch_items").
type Snapshot struct {
	Server     Server                    `json:"server"`
	Match      Match                     `json:"match"`
	Contention Contention                `json:"contention"`
	Conflict   Conflict                  `json:"conflict"`
	Epoch      Epoch                     `json:"epoch"`
	Memory     Memory                    `json:"memory"`
	Act        Act                       `json:"act"`
	Durability Durability                `json:"durability"`
	Latency    map[string]LatencySummary `json:"latency"`
	Counts     map[string]CountSummary   `json:"counts"`
}
