// Package stats defines the instrumentation counters the benchmark
// harness reads to regenerate the paper's tables.
package stats

// Match aggregates per-run match statistics. The sequential matchers
// fill every field; the parallel matchers fill the activation counts and
// leave the memory-scan statistics to the sequential instrumentation
// runs, exactly as the paper derives Tables 4-1..4-3 from uniprocessor
// versions.
type Match struct {
	WMChanges   int64 `json:"wm_changes"`  // working-memory changes processed
	Activations int64 `json:"activations"` // node activations == tasks pushed/popped (Table 4-1 last column)

	LeftActs  int64 `json:"left_acts"`  // two-input node activations from the left
	RightActs int64 `json:"right_acts"` // ... and from the right

	// Tokens examined in the opposite memory, split by activation side,
	// counted only for activations whose opposite memory is non-empty
	// (Table 4-2's convention).
	OppExaminedLeft   int64 `json:"opp_examined_left"`
	OppExaminedRight  int64 `json:"opp_examined_right"`
	OppNonEmptyLeft   int64 `json:"opp_nonempty_left"` // activations contributing to the left mean
	OppNonEmptyRight  int64 `json:"opp_nonempty_right"`
	SameExaminedLeft  int64 `json:"same_examined_left"` // tokens scanned in own memory for deletes (Table 4-3)
	SameExaminedRight int64 `json:"same_examined_right"`
	DeletesLeft       int64 `json:"deletes_left"`
	DeletesRight      int64 `json:"deletes_right"`

	Pairs      int64 `json:"pairs"`       // matching token pairs emitted by two-input nodes
	ConstTests int64 `json:"const_tests"` // constant tests evaluated
	CSInserts  int64 `json:"cs_inserts"`  // conflict-set insertions
	CSDeletes  int64 `json:"cs_deletes"`

	// Beta-unlinking counters: right activations buffered instead of
	// processed because the join's left memory had never been non-empty,
	// and the number of joins that relinked (first left token arrived
	// and the buffered right deliveries were replayed).
	UnlinkSkips int64 `json:"unlink_skips"`
	Relinks     int64 `json:"relinks"`
}

// Add accumulates o into m.
func (m *Match) Add(o *Match) {
	m.WMChanges += o.WMChanges
	m.Activations += o.Activations
	m.LeftActs += o.LeftActs
	m.RightActs += o.RightActs
	m.OppExaminedLeft += o.OppExaminedLeft
	m.OppExaminedRight += o.OppExaminedRight
	m.OppNonEmptyLeft += o.OppNonEmptyLeft
	m.OppNonEmptyRight += o.OppNonEmptyRight
	m.SameExaminedLeft += o.SameExaminedLeft
	m.SameExaminedRight += o.SameExaminedRight
	m.DeletesLeft += o.DeletesLeft
	m.DeletesRight += o.DeletesRight
	m.Pairs += o.Pairs
	m.ConstTests += o.ConstTests
	m.CSInserts += o.CSInserts
	m.CSDeletes += o.CSDeletes
	m.UnlinkSkips += o.UnlinkSkips
	m.Relinks += o.Relinks
}

// Sub subtracts o from m, field by field. The server uses it to fold
// per-session counter deltas into its global totals.
func (m *Match) Sub(o *Match) {
	m.WMChanges -= o.WMChanges
	m.Activations -= o.Activations
	m.LeftActs -= o.LeftActs
	m.RightActs -= o.RightActs
	m.OppExaminedLeft -= o.OppExaminedLeft
	m.OppExaminedRight -= o.OppExaminedRight
	m.OppNonEmptyLeft -= o.OppNonEmptyLeft
	m.OppNonEmptyRight -= o.OppNonEmptyRight
	m.SameExaminedLeft -= o.SameExaminedLeft
	m.SameExaminedRight -= o.SameExaminedRight
	m.DeletesLeft -= o.DeletesLeft
	m.DeletesRight -= o.DeletesRight
	m.Pairs -= o.Pairs
	m.ConstTests -= o.ConstTests
	m.CSInserts -= o.CSInserts
	m.CSDeletes -= o.CSDeletes
	m.UnlinkSkips -= o.UnlinkSkips
	m.Relinks -= o.Relinks
}

// Mean returns num/den or 0 when den is 0.
func Mean(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Contention aggregates spin-lock and work-distribution statistics for
// the parallel runs. "Spins" follows the paper's measure: the number of
// times a process observes the lock busy before acquiring it. The
// local/steal/overflow counters instrument the per-worker deques layered
// over the paper's central queues: LocalPushes/LocalPops never touch a
// lock, Steals move tasks between workers, Overflows count local-deque
// spills back onto the central spin-locked queues.
type Contention struct {
	QueueAcquires int64 `json:"queue_acquires"` // task-queue lock acquisitions
	QueueSpins    int64 `json:"queue_spins"`    // spins observed while acquiring task-queue locks

	LineAcquiresLeft  int64 `json:"line_acquires_left"` // hash-line acquisitions for left activations
	LineSpinsLeft     int64 `json:"line_spins_left"`
	LineAcquiresRight int64 `json:"line_acquires_right"`
	LineSpinsRight    int64 `json:"line_spins_right"`

	Requeues int64 `json:"requeues"` // MRSW wrong-side re-queues

	LocalPushes int64 `json:"local_pushes"` // tasks pushed onto a worker's own deque
	LocalPops   int64 `json:"local_pops"`   // tasks popped back off the owner's deque
	Steals      int64 `json:"steals"`       // tasks taken from another worker's deque
	Overflows   int64 `json:"overflows"`    // local-deque spills onto the central queues
}

// Conflict aggregates sharded conflict-set statistics. The counter
// fields (Inserts..SelectScanned) accumulate monotonically and fold as
// deltas like Match; Live, Fired and Pending are point-in-time gauges,
// and Shards is the configured stripe count. ShardSpins over
// ShardAcquires is the paper's contention measure applied to the
// conflict-set locks; SelectScanned over SelectRescans is the mean
// rescan depth, the residual O(n) cost the cached per-shard bests avoid.
type Conflict struct {
	Inserts       int64 `json:"inserts"`       // terminal + activations
	Deletes       int64 `json:"deletes"`       // terminal − activations
	Annihilations int64 `json:"annihilations"` // parked deletes cancelled by a later insert
	Live          int64 `json:"live"`          // unfired instantiations (gauge)
	Fired         int64 `json:"fired"`         // fired, retained for refraction (gauge)
	Pending       int64 `json:"pending"`       // parked early deletes (gauge)
	ShardAcquires int64 `json:"shard_acquires"`
	ShardSpins    int64 `json:"shard_spins"`
	Selects       int64 `json:"selects"`        // Select calls
	SelectRescans int64 `json:"select_rescans"` // dirty shards recomputed during Select
	SelectScanned int64 `json:"select_scanned"` // live instantiations examined by rescans
	Shards        int64 `json:"shards"`         // configured lock stripes
}

// Add accumulates o into c. Shards is taken from o when set rather than
// summed: it is a configuration value, not a counter.
func (c *Conflict) Add(o *Conflict) {
	c.Inserts += o.Inserts
	c.Deletes += o.Deletes
	c.Annihilations += o.Annihilations
	c.Live += o.Live
	c.Fired += o.Fired
	c.Pending += o.Pending
	c.ShardAcquires += o.ShardAcquires
	c.ShardSpins += o.ShardSpins
	c.Selects += o.Selects
	c.SelectRescans += o.SelectRescans
	c.SelectScanned += o.SelectScanned
	if o.Shards != 0 {
		c.Shards = o.Shards
	}
}

// Sub subtracts o from c, for per-session delta folding like Match.Sub.
// Shards is left alone for the same reason Add copies it.
func (c *Conflict) Sub(o *Conflict) {
	c.Inserts -= o.Inserts
	c.Deletes -= o.Deletes
	c.Annihilations -= o.Annihilations
	c.Live -= o.Live
	c.Fired -= o.Fired
	c.Pending -= o.Pending
	c.ShardAcquires -= o.ShardAcquires
	c.ShardSpins -= o.ShardSpins
	c.Selects -= o.Selects
	c.SelectRescans -= o.SelectRescans
	c.SelectScanned -= o.SelectScanned
}

// Epoch aggregates dynamic program-change statistics: runtime (p ...)
// builds and excises applied to a live engine. Swaps counts network
// epoch transitions a matcher adopted; ReplayedWMEs is the number of
// live working-memory elements pushed back through new topology during
// add replays; RemovedEntries and RemovedInsts are the memory entries
// and conflict-set instantiations dropped by excises. All fields are
// monotonic counters and fold as deltas like Match.
type Epoch struct {
	Swaps          int64 `json:"swaps"`
	RulesAdded     int64 `json:"rules_added"`
	RulesExcised   int64 `json:"rules_excised"`
	ReplayedWMEs   int64 `json:"replayed_wmes"`
	RemovedEntries int64 `json:"removed_entries"`
	RemovedInsts   int64 `json:"removed_insts"`
	// BudgetTrips counts rules quarantined by the per-rule match budget.
	BudgetTrips int64 `json:"budget_trips"`
}

// Add accumulates o into e.
func (e *Epoch) Add(o *Epoch) {
	e.Swaps += o.Swaps
	e.RulesAdded += o.RulesAdded
	e.RulesExcised += o.RulesExcised
	e.ReplayedWMEs += o.ReplayedWMEs
	e.RemovedEntries += o.RemovedEntries
	e.RemovedInsts += o.RemovedInsts
	e.BudgetTrips += o.BudgetTrips
}

// Sub subtracts o from e, for per-session delta folding like Match.Sub.
func (e *Epoch) Sub(o *Epoch) {
	e.Swaps -= o.Swaps
	e.RulesAdded -= o.RulesAdded
	e.RulesExcised -= o.RulesExcised
	e.ReplayedWMEs -= o.ReplayedWMEs
	e.RemovedEntries -= o.RemovedEntries
	e.RemovedInsts -= o.RemovedInsts
	e.BudgetTrips -= o.BudgetTrips
}

// Act aggregates transactional act-phase statistics: the speculative
// multi-fire machinery behind engine.Options.FireBatch. All fields are
// monotonic counters and fold as deltas like Match. SpeculativeFires
// counts right-hand sides staged ahead of their commit decision
// (discarded stagings included); Conflicts counts candidates cut from a
// group at plan time because their read set overlapped an earlier
// member's staged removals (or their RHS was not group-safe); Rollbacks
// counts committed groups undone by the post-drain dominance check,
// with RolledBackFires the firings those undos discarded. OverlapNs is
// the wall-clock during which match work and RHS staging/commit were in
// flight together — the pipelining the paper's control process gets by
// feeding the match processes while the RHS is still being evaluated.
type Act struct {
	SpeculativeFires int64 `json:"speculative_fires"`
	GroupCommits     int64 `json:"group_commits"`
	GroupedFires     int64 `json:"grouped_fires"`
	SerialFires      int64 `json:"serial_fires"`
	Conflicts        int64 `json:"conflicts"`
	Rollbacks        int64 `json:"rollbacks"`
	RolledBackFires  int64 `json:"rolled_back_fires"`
	OverlapNs        int64 `json:"overlap_ns"`
}

// Add accumulates o into a.
func (a *Act) Add(o *Act) {
	a.SpeculativeFires += o.SpeculativeFires
	a.GroupCommits += o.GroupCommits
	a.GroupedFires += o.GroupedFires
	a.SerialFires += o.SerialFires
	a.Conflicts += o.Conflicts
	a.Rollbacks += o.Rollbacks
	a.RolledBackFires += o.RolledBackFires
	a.OverlapNs += o.OverlapNs
}

// Sub subtracts o from a, for per-session delta folding like Match.Sub.
func (a *Act) Sub(o *Act) {
	a.SpeculativeFires -= o.SpeculativeFires
	a.GroupCommits -= o.GroupCommits
	a.GroupedFires -= o.GroupedFires
	a.SerialFires -= o.SerialFires
	a.Conflicts -= o.Conflicts
	a.Rollbacks -= o.Rollbacks
	a.RolledBackFires -= o.RolledBackFires
	a.OverlapNs -= o.OverlapNs
}

// Memory describes the token hash tables backing a matcher: Lines,
// Entries and MaxLineDepth are point-in-time gauges (current line
// count, live token entries, high-water live entries in one line);
// Resizes and Rehashed count adaptive grows and the entries they moved.
// Like Conflict's gauges, multi-session folds sum the gauges of every
// session's table.
type Memory struct {
	Lines        int64 `json:"lines"`
	Entries      int64 `json:"entries"`
	MaxLineDepth int64 `json:"max_line_depth"`
	Resizes      int64 `json:"resizes"`
	Rehashed     int64 `json:"rehashed"`
}

// Add accumulates o into m.
func (m *Memory) Add(o *Memory) {
	m.Lines += o.Lines
	m.Entries += o.Entries
	m.MaxLineDepth += o.MaxLineDepth
	m.Resizes += o.Resizes
	m.Rehashed += o.Rehashed
}

// Sub subtracts o from m, for per-session delta folding like Match.Sub.
func (m *Memory) Sub(o *Memory) {
	m.Lines -= o.Lines
	m.Entries -= o.Entries
	m.MaxLineDepth -= o.MaxLineDepth
	m.Resizes -= o.Resizes
	m.Rehashed -= o.Rehashed
}

// Add accumulates o into c.
func (c *Contention) Add(o *Contention) {
	c.QueueAcquires += o.QueueAcquires
	c.QueueSpins += o.QueueSpins
	c.LineAcquiresLeft += o.LineAcquiresLeft
	c.LineSpinsLeft += o.LineSpinsLeft
	c.LineAcquiresRight += o.LineAcquiresRight
	c.LineSpinsRight += o.LineSpinsRight
	c.Requeues += o.Requeues
	c.LocalPushes += o.LocalPushes
	c.LocalPops += o.LocalPops
	c.Steals += o.Steals
	c.Overflows += o.Overflows
}

// Sub subtracts o from c, for per-session delta folding like Match.Sub.
func (c *Contention) Sub(o *Contention) {
	c.QueueAcquires -= o.QueueAcquires
	c.QueueSpins -= o.QueueSpins
	c.LineAcquiresLeft -= o.LineAcquiresLeft
	c.LineSpinsLeft -= o.LineSpinsLeft
	c.LineAcquiresRight -= o.LineAcquiresRight
	c.LineSpinsRight -= o.LineSpinsRight
	c.Requeues -= o.Requeues
	c.LocalPushes -= o.LocalPushes
	c.LocalPops -= o.LocalPops
	c.Steals -= o.Steals
	c.Overflows -= o.Overflows
}
