package stats

// Cluster aggregates the routing proxy's counters: ring routing,
// health checking, the cluster-wide content-addressed program cache,
// and session migration. Like the other counter structs it is plain
// int64 fields synchronized by its owner (the proxy's metrics mutex).
type Cluster struct {
	BackendsLive int64 `json:"backends_live"` // backends currently passing health checks
	BackendsDown int64 `json:"backends_down"` // backends currently failing health checks

	HealthChecks int64 `json:"health_checks"` // /healthz probes issued
	HealthFails  int64 `json:"health_fails"`  // probes that failed or reported not-ok
	Transitions  int64 `json:"transitions"`   // up<->down state changes observed
	BootChanges  int64 `json:"boot_changes"`  // backend restarts detected (boot_id changed)

	SessionsRouted int64 `json:"sessions_routed"` // session creates placed via the ring
	Forwards       int64 `json:"forwards"`        // session-scoped requests forwarded
	Discoveries    int64 `json:"discoveries"`     // route-cache misses resolved by probing backends
	Retries        int64 `json:"retries"`         // forwards/creates retried after a backend error
	ReRoutes       int64 `json:"reroutes"`        // creates moved off a down or overloaded backend

	// Content-addressed program cache, cluster view: programs registered
	// with the proxy, program bodies pushed to a backend (each push is
	// one parse+Rete compile somewhere in the cluster), and creates that
	// skipped the push because the target backend already held the hash.
	ProgramsRegistered int64 `json:"programs_registered"`
	ProgramPushes      int64 `json:"program_pushes"`
	ProgramCacheHits   int64 `json:"program_cache_hits"`

	Migrations     int64 `json:"migrations"`      // sessions moved between backends
	MigrationFails int64 `json:"migration_fails"` // migrations that failed (session stays put)
}

// Add accumulates o into c.
func (c *Cluster) Add(o *Cluster) {
	c.BackendsLive += o.BackendsLive
	c.BackendsDown += o.BackendsDown
	c.HealthChecks += o.HealthChecks
	c.HealthFails += o.HealthFails
	c.Transitions += o.Transitions
	c.BootChanges += o.BootChanges
	c.SessionsRouted += o.SessionsRouted
	c.Forwards += o.Forwards
	c.Discoveries += o.Discoveries
	c.Retries += o.Retries
	c.ReRoutes += o.ReRoutes
	c.ProgramsRegistered += o.ProgramsRegistered
	c.ProgramPushes += o.ProgramPushes
	c.ProgramCacheHits += o.ProgramCacheHits
	c.Migrations += o.Migrations
	c.MigrationFails += o.MigrationFails
}
