package stats_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/stats"
)

// fillOnes sets every int64 field of a struct to 1 via reflection, so
// Add tests cannot silently miss a newly added counter.
func fillOnes(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(1)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(1)
			}
		}
	}
}

// checkAllTwos verifies every int64 field equals 2 after a self-Add.
func checkAllTwos(t *testing.T, v reflect.Value, name string) {
	t.Helper()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			if f.Int() != 2 {
				t.Errorf("%s.%s = %d after Add, want 2", name, typ.Field(i).Name, f.Int())
			}
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Int() != 2 {
					t.Errorf("%s.%s[%d] = %d after Add, want 2", name, typ.Field(i).Name, j, f.Index(j).Int())
				}
			}
		}
	}
}

// TestAddAccumulatesEveryField folds a struct of ones into a copy of
// itself and demands every counter doubles — for Match, Contention and
// Server alike.
func TestAddAccumulatesEveryField(t *testing.T) {
	var m, mo stats.Match
	fillOnes(reflect.ValueOf(&m).Elem())
	fillOnes(reflect.ValueOf(&mo).Elem())
	m.Add(&mo)
	checkAllTwos(t, reflect.ValueOf(m), "Match")

	var c, co stats.Contention
	fillOnes(reflect.ValueOf(&c).Elem())
	fillOnes(reflect.ValueOf(&co).Elem())
	c.Add(&co)
	checkAllTwos(t, reflect.ValueOf(c), "Contention")

	var s, so stats.Server
	fillOnes(reflect.ValueOf(&s).Elem())
	fillOnes(reflect.ValueOf(&so).Elem())
	s.Add(&so)
	checkAllTwos(t, reflect.ValueOf(s), "Server")
}

// TestConflictAddSub checks the conflict-set counters fold like the
// others, except Shards: a configuration value that Add copies (last
// nonzero wins) and Sub leaves alone, so per-session delta folding
// never zeroes or doubles the configured stripe count.
func TestConflictAddSub(t *testing.T) {
	var c, co stats.Conflict
	fillOnes(reflect.ValueOf(&c).Elem())
	fillOnes(reflect.ValueOf(&co).Elem())
	co.Shards = 64
	c.Add(&co)
	c.Shards-- // counter fields doubled; Shards was copied (64), not summed
	if c.Shards != 63 {
		t.Fatalf("Shards = %d after Add, want copied 64", c.Shards+1)
	}
	c.Shards = 2
	checkAllTwos(t, reflect.ValueOf(c), "Conflict")

	var cur, prev stats.Conflict
	fillOnes(reflect.ValueOf(&cur).Elem())
	cur.Shards = 16
	prev = cur
	cur.Inserts, cur.Live = 5, 3
	delta := cur
	delta.Sub(&prev)
	want := stats.Conflict{Inserts: 4, Live: 2, Shards: 16}
	if delta != want {
		t.Fatalf("delta = %+v, want %+v", delta, want)
	}
}

// TestZeroValues checks the zero values are usable: Add of zeros is a
// no-op, the zero histogram reports empty summaries.
func TestZeroValues(t *testing.T) {
	var m, zero stats.Match
	m.Add(&zero)
	if m != (stats.Match{}) {
		t.Errorf("zero Add mutated Match: %+v", m)
	}
	var h stats.Histogram
	if h.Quantile(0.99) != 0 || h.MeanUs() != 0 {
		t.Errorf("zero histogram quantile/mean nonzero")
	}
	sum := h.Summary()
	if sum.Count != 0 || sum.P99Us != 0 {
		t.Errorf("zero histogram summary = %+v", sum)
	}
	if stats.Mean(5, 0) != 0 {
		t.Errorf("Mean(x, 0) != 0")
	}
	if stats.Mean(6, 3) != 2 {
		t.Errorf("Mean(6,3) = %v", stats.Mean(6, 3))
	}
}

// TestHistogramObserveQuantile checks bucketing, quantile bounds and
// max clamping against a known distribution.
func TestHistogramObserveQuantile(t *testing.T) {
	var h stats.Histogram
	// 99 fast observations and one slow outlier.
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if p50 := h.Quantile(0.50); p50 < 10*time.Microsecond || p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v, want within (10µs, 16µs]", p50)
	}
	// p99 rank (ceil(0.99*100) = 99) still lands in the fast bucket.
	if p99 := h.Quantile(0.99); p99 > 16*time.Microsecond {
		t.Errorf("p99 = %v, want <= 16µs", p99)
	}
	// p100 is clamped to the observed max, not the bucket edge.
	if p100 := h.Quantile(1); p100 != 50*time.Millisecond {
		t.Errorf("p100 = %v, want 50ms", p100)
	}
	if h.MaxUs != 50000 {
		t.Errorf("max = %dµs", h.MaxUs)
	}
	if mean := h.MeanUs(); mean < 500 || mean > 511 {
		t.Errorf("mean = %vµs, want ~509.9", mean)
	}
}

// TestHistogramAdd merges two histograms and checks the combined
// quantiles see both populations.
func TestHistogramAdd(t *testing.T) {
	var a, b stats.Histogram
	for i := 0; i < 50; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	a.Add(&b)
	if a.Count != 100 {
		t.Fatalf("count = %d", a.Count)
	}
	if p25 := a.Quantile(0.25); p25 > 2*time.Microsecond {
		t.Errorf("p25 = %v, want <= 2µs", p25)
	}
	if p90 := a.Quantile(0.90); p90 < 512*time.Microsecond {
		t.Errorf("p90 = %v, want >= 512µs", p90)
	}
}

// TestHistogramNegative checks negative durations clamp to zero
// instead of corrupting the buckets.
func TestHistogramNegative(t *testing.T) {
	var h stats.Histogram
	h.Observe(-time.Second)
	if h.Count != 1 || h.SumUs != 0 || h.MaxUs != 0 {
		t.Errorf("negative observe: %+v", h)
	}
}

// TestSnapshotJSONShape pins the field names BENCH_*.json consumers and
// /metrics scrapers rely on.
func TestSnapshotJSONShape(t *testing.T) {
	snap := stats.Snapshot{
		Server: stats.Server{Requests: 3, SessionsLive: 1},
		Match:  stats.Match{WMChanges: 7, Activations: 9},
		Latency: map[string]stats.LatencySummary{
			"request": {Count: 3, P50Us: 12, P99Us: 40},
		},
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	srv, ok := back["server"].(map[string]any)
	if !ok || srv["requests"] != float64(3) || srv["sessions_live"] != float64(1) {
		t.Errorf("server block = %v", back["server"])
	}
	match, ok := back["match"].(map[string]any)
	if !ok || match["wm_changes"] != float64(7) || match["activations"] != float64(9) {
		t.Errorf("match block = %v", back["match"])
	}
	lat, ok := back["latency"].(map[string]any)
	if !ok {
		t.Fatalf("latency block = %v", back["latency"])
	}
	req, ok := lat["request"].(map[string]any)
	if !ok || req["p50_us"] != float64(12) || req["p99_us"] != float64(40) {
		t.Errorf("request latency = %v", lat["request"])
	}
}
