package stats

// Durability counts the write-ahead-log and snapshot layer's work: log
// I/O (with fsync latency), snapshot compactions, template forks, and
// crash recovery. SnapshotAgeSec is a gauge filled at snapshot time in
// /metrics — seconds since the server last wrote any snapshot.
type Durability struct {
	LogRecords int64 `json:"log_records"` // delta-log records appended
	LogBytes   int64 `json:"log_bytes"`   // delta-log bytes appended
	LogCommits int64 `json:"log_commits"` // commit points (one per batch)
	Fsyncs     int64 `json:"fsyncs"`      // fsync calls issued
	FsyncUs    int64 `json:"fsync_us"`    // wall-clock inside fsync, µs

	Snapshots      int64 `json:"snapshots"`        // snapshots written
	SnapshotBytes  int64 `json:"snapshot_bytes"`   // encoded snapshot bytes written
	SnapshotAgeSec int64 `json:"snapshot_age_sec"` // seconds since the last snapshot (-1: never)

	Forks         int64 `json:"forks"`          // sessions forked from templates
	TemplatesLive int64 `json:"templates_live"` // warm template sessions held

	Recoveries      int64 `json:"recoveries"`       // sessions + templates rebuilt at startup
	ReplayedRecords int64 `json:"replayed_records"` // log records replayed during recovery
	TornTails       int64 `json:"torn_tails"`       // truncated torn log tails detected
}

// Add accumulates o into d.
func (d *Durability) Add(o *Durability) {
	d.LogRecords += o.LogRecords
	d.LogBytes += o.LogBytes
	d.LogCommits += o.LogCommits
	d.Fsyncs += o.Fsyncs
	d.FsyncUs += o.FsyncUs
	d.Snapshots += o.Snapshots
	d.SnapshotBytes += o.SnapshotBytes
	d.Forks += o.Forks
	d.TemplatesLive += o.TemplatesLive
	d.Recoveries += o.Recoveries
	d.ReplayedRecords += o.ReplayedRecords
	d.TornTails += o.TornTails
}
