package seqmatch

import (
	"repro/internal/rete"
	"repro/internal/wm"
)

// Clone returns an independent matcher over a deep copy of the token
// table, for copy-on-write template-session forking. The network is
// shared (immutable per epoch); the table's entries are copied so
// negation counts diverge per fork; token slices and WMEs are shared
// (immutable once emitted). Match counters start at zero in the clone —
// a fork is a new session and its deltas are its own — while the
// per-node live-token gauges are copied because they describe state the
// fork genuinely holds. The matcher must be quiescent (a settled
// template) when cloned.
func (m *Matcher) Clone(sink rete.TerminalSink) *Matcher {
	c := NewWithTable(m.Net, m.Variant, m.Table.Clone(), sink)
	c.Rec.EnsureNodes(m.Net.NumJoinIDs())
	for s := 0; s < 2; s++ {
		copy(c.Rec.NodeCount[s], m.Rec.NodeCount[s])
	}
	// Unlinking state is join-memory state, not a counter: a fork of a
	// template with unlinked joins must keep their buffered right-side
	// WMEs (the WMEs are immutable and shared; the buffers are not).
	if m.unlinked != nil {
		c.unlinked = make([]*rightBuf, len(m.unlinked))
		for id, b := range m.unlinked {
			if b == nil {
				continue
			}
			nb := &rightBuf{
				wmes: append([]*wm.WME(nil), b.wmes...),
				pos:  make(map[*wm.WME]int, len(b.pos)),
			}
			for w, i := range b.pos {
				nb.pos[w] = i
			}
			c.unlinked[id] = nb
		}
	}
	return c
}
