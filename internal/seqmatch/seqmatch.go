// Package seqmatch implements the paper's two optimized uniprocessor
// matchers: vs1, with per-node list memories, and vs2, with the two
// global token hash tables (§4.1). Both run the shared coalesced-node
// step logic from internal/hashmem; they differ only in how a node
// activation locates its memory line, which is exactly the paper's
// distinction. Both are fully instrumented for Tables 4-1, 4-2 and 4-3.
package seqmatch

import (
	"fmt"

	"repro/internal/hashmem"
	"repro/internal/rete"
	"repro/internal/stats"
	"repro/internal/wm"
)

// Variant selects the memory organization.
type Variant int

// Matcher variants.
const (
	VS1 Variant = iota // list-based node memories
	VS2                // global hash-table memories
)

func (v Variant) String() string {
	if v == VS1 {
		return "vs1"
	}
	return "vs2"
}

// Matcher is a sequential Rete matcher.
type Matcher struct {
	Net     *rete.Network
	Variant Variant
	Table   *hashmem.Table
	Rec     *hashmem.Recorder
	Sink    rete.TerminalSink

	pools hashmem.Pools
	// curJoin/curSign carry the context of the innermost activation so
	// emit and deliver can be bound method values instead of a fresh
	// closure per Submit/activate call. Saved and restored around the
	// depth-first recursion.
	curJoin   *rete.JoinNode
	curSign   bool
	curRoot   []*wm.WME
	emitFn    hashmem.Emit
	deliverFn func(rete.AlphaDest)

	// unlinked is the per-join-ID right-unlinking state (EnableUnlink);
	// nil when the optimization is off. A non-nil rightBuf means the
	// join's left memory has never been non-empty, so right-side
	// deliveries are buffered in arrival order instead of being hashed,
	// stored and searched. The first surviving left token relinks the
	// join: the buffer is replayed as ordinary right activations —
	// catching up exactly the deliveries that were skipped — and the
	// join runs normally forever after. Negated joins
	// never unlink (their right side drives the negation counts that
	// must be correct before any left token is scored).
	unlinked []*rightBuf
}

// rightBuf holds the right-side WMEs delivered to an unlinked join, in
// arrival order, with O(1) removal for retractions that arrive while
// the join is still unlinked.
type rightBuf struct {
	wmes []*wm.WME
	pos  map[*wm.WME]int
}

func (b *rightBuf) add(w *wm.WME) {
	b.pos[w] = len(b.wmes)
	b.wmes = append(b.wmes, w)
}

func (b *rightBuf) remove(w *wm.WME) {
	i, ok := b.pos[w]
	if !ok {
		return
	}
	last := len(b.wmes) - 1
	mv := b.wmes[last]
	b.wmes[i] = mv
	b.pos[mv] = i
	b.wmes = b.wmes[:last]
	delete(b.pos, w)
}

// New builds a sequential matcher. nLines sizes the vs2 hash tables
// (ignored for vs1); 0 selects the default of 1024 lines. vs2 tables
// use the adaptive node-segregated layout and grow between submits as
// working memory climbs.
func New(net *rete.Network, v Variant, nLines int, sink rete.TerminalSink) *Matcher {
	var table *hashmem.Table
	if v == VS1 {
		table = hashmem.NewPerNode(net.NumJoinIDs())
	} else {
		if nLines <= 0 {
			nLines = 16384
		}
		table = hashmem.New(nLines)
	}
	return NewWithTable(net, v, table, sink)
}

// NewWithTable builds a sequential matcher over a caller-supplied token
// table — the benchmarks and differential tests use it to pin the
// legacy linked-list layout (hashmem.NewLegacy) against the segregated
// default.
func NewWithTable(net *rete.Network, v Variant, table *hashmem.Table, sink rete.TerminalSink) *Matcher {
	m := &Matcher{
		Net:     net,
		Variant: v,
		Table:   table,
		Rec:     hashmem.NewRecorder(net.NumJoinIDs()),
		Sink:    sink,
	}
	m.emitFn = m.emit
	m.deliverFn = m.deliver
	return m
}

// Submit processes one working-memory change to completion, depth-first
// through the network (the classic sequential Rete discipline). The
// matcher is quiescent between submits, so this is also the adaptive
// table's resize point: an overloaded segregated table is grown and
// rehashed before the change enters the network.
func (m *Matcher) Submit(sign bool, w *wm.WME) {
	if n := m.Table.GrowTarget(); n > 0 {
		m.Table = m.Table.Grow(n)
	}
	m.Rec.M.WMChanges++
	m.curSign = sign
	tok := m.pools.MakeToken(1)
	tok[0] = w
	m.curRoot = tok // one immutable length-1 token shared by all destinations
	tests := m.Net.RootDeliver(w, m.deliverFn)
	m.Rec.M.ConstTests += int64(tests)
}

// deliver routes one alpha destination of the current root change. The
// depth-first recursion under activate never touches curSign/curRoot,
// so they stay valid across RootDeliver's destination loop.
func (m *Matcher) deliver(d rete.AlphaDest) {
	if d.Terminal != nil {
		m.toTerminal(d.Terminal, m.curSign, m.curRoot)
		return
	}
	m.activate(d.Join, d.Side, m.curSign, m.curRoot)
}

// EnableUnlink turns on right-unlinking of empty-left joins. It must be
// called on a fresh matcher, before any working-memory change has been
// submitted: the unlinked state asserts that a join's memories are
// empty, which is only guaranteed from birth.
func (m *Matcher) EnableUnlink() {
	m.unlinked = make([]*rightBuf, m.Net.NumJoinIDs())
	for _, j := range m.Net.Joins {
		if !j.Negated {
			m.unlinked[j.ID] = &rightBuf{pos: make(map[*wm.WME]int)}
		}
	}
}

// UnlinkedJoins reports how many joins are currently unlinked.
func (m *Matcher) UnlinkedJoins() int {
	n := 0
	for _, b := range m.unlinked {
		if b != nil {
			n++
		}
	}
	return n
}

// Drain is a no-op: Submit is synchronous.
func (m *Matcher) Drain() {}

// Close is a no-op: sequential matchers hold no goroutines. It exists so
// every backend satisfies the server's uniform matcher interface.
func (m *Matcher) Close() {}

// MatchStats returns a copy of the accumulated match counters. The
// network a matcher runs over may be shared read-only across many
// matchers (server sessions); the counters here are per-matcher.
func (m *Matcher) MatchStats() stats.Match { return m.Rec.M }

// MemStats returns the token table's memory gauges and resize counters.
func (m *Matcher) MemStats() stats.Memory { return m.Table.MemStats() }

// JoinExamined returns a copy of the cumulative per-join
// opposite-memory candidate counts, indexed by join ID. The engine's
// match budget reads per-cycle deltas of it.
func (m *Matcher) JoinExamined() []int64 {
	return append([]int64(nil), m.Rec.NodeExamined...)
}

// CheckInvariants verifies that no parked conjugate deletes remain. In a
// sequential matcher a parked delete can never legitimately survive a
// change, so any leftover is a bug.
func (m *Matcher) CheckInvariants() error {
	if err := m.Table.CheckDrained(); err != nil {
		return fmt.Errorf("%s: %w", m.Variant, err)
	}
	return nil
}

func (m *Matcher) activate(j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME) {
	if m.unlinked != nil && side == rete.Right {
		// Right delivery into an unlinked join: record the WME in the
		// buffer and do no memory work. The WME arrives here through the
		// alpha chain on every path (root deliveries and epoch replay),
		// so the buffer is exactly the join's would-be right memory.
		if b := m.unlinked[j.ID]; b != nil {
			m.Rec.M.UnlinkSkips++
			if sign {
				b.add(wmes[0])
			} else {
				b.remove(wmes[0])
			}
			return
		}
	}
	m.Rec.M.Activations++
	// The hash is computed for vs1 too: its per-node lines ignore it for
	// line selection, but storing it lets EntryList.Remove short-circuit
	// token comparison on deletes without changing any scan count.
	var hash uint64
	if side == rete.Left {
		hash = j.LeftHash(wmes)
	} else {
		hash = j.RightHash(wmes[0])
	}
	idx := m.Table.LineIndex(j, hash)
	entry, ref, res := m.Table.UpdateOwn(idx, j, side, sign, wmes, hash, m.Rec, &m.pools)
	if !sign {
		hashmem.RecordDelete(m.Rec, side, &res)
	}
	if !res.Proceeded {
		return
	}
	if m.unlinked != nil && side == rete.Left && sign {
		// First surviving left token: relink the join by replaying the
		// buffered right deliveries as ordinary activations. Each replay
		// pairs its WME against the left memory — which holds exactly the
		// token just inserted — so the left token's own opposite search
		// is already covered and is skipped.
		if b := m.unlinked[j.ID]; b != nil {
			m.unlinked[j.ID] = nil
			m.Rec.M.Relinks++
			for _, rw := range b.wmes {
				tok := m.pools.MakeToken(1)
				tok[0] = rw
				m.activate(j, rete.Right, true, tok)
			}
			return
		}
	}
	m.curJoin = j
	m.Table.SearchOpposite(idx, ref, j, side, sign, wmes, entry, m.Rec, &m.pools, m.emitFn)
	if !sign {
		m.pools.FreeEntry(entry) // removed from its memory; nothing else holds it
	}
}

// emit fans one output token of the current join out depth-first. It
// saves and restores curJoin around the recursion: SearchOpposite may
// call it several times, and each nested activate overwrites curJoin.
func (m *Matcher) emit(csign bool, cwmes []*wm.WME) {
	j := m.curJoin
	for _, succ := range m.Net.SuccsOf(j) {
		m.activate(succ, rete.Left, csign, cwmes)
	}
	for _, t := range m.Net.TermsOf(j) {
		m.toTerminal(t, csign, cwmes)
	}
	m.curJoin = j
}

// SwapEpoch adopts a network epoch derived from the matcher's current
// one. For removals it drops every memory entry of the excised joins
// (reporting how many); for additions it replays the live working
// memory through exactly the new topology: phase 1 fills the right
// memories of the new joins (their left memories are still empty, so
// nothing emits), phase 2 seeds their left inputs — root deliveries for
// first-stage joins and terminals, re-derived historical outputs for
// pre-existing joins that gained successors — and lets the ordinary
// depth-first activation propagate from there. The two phases make the
// negation counts of new negated joins correct before any left token is
// scored against them.
func (m *Matcher) SwapEpoch(next *rete.Network, live []*wm.WME) (removed int, err error) {
	if next.Parent() != m.Net {
		return 0, fmt.Errorf("seqmatch: epoch %d is not derived from the current epoch %d", next.Epoch, m.Net.Epoch)
	}
	d := next.Delta
	if d == nil {
		return 0, fmt.Errorf("seqmatch: epoch %d has no delta", next.Epoch)
	}
	if len(d.DeadJoins) > 0 {
		dead := make(map[int]bool, len(d.DeadJoins))
		for _, j := range d.DeadJoins {
			dead[j.ID] = true
			if m.unlinked != nil {
				m.unlinked[j.ID] = nil
			}
		}
		removed = m.Table.ExciseNodes(dead, m.Rec)
	}
	m.Net = next
	m.Table.EnsureNodes(next.NumJoinIDs())
	m.Rec.EnsureNodes(next.NumJoinIDs())
	if m.unlinked != nil {
		// New joins of this epoch start unlinked: phase 1's right fills
		// are buffered, and phase 2's left replay relinks any join that
		// actually has left tokens.
		if n := next.NumJoinIDs(); n > len(m.unlinked) {
			grown := make([]*rightBuf, n)
			copy(grown, m.unlinked)
			m.unlinked = grown
		}
		for _, j := range d.NewJoins {
			if !j.Negated {
				m.unlinked[j.ID] = &rightBuf{pos: make(map[*wm.WME]int)}
			}
		}
	}

	targets := next.ReplayDests()
	// Phase 1: right-side deliveries into the new joins.
	for _, cd := range targets {
		for _, dst := range cd.Dests {
			if dst.Join == nil || dst.Side != rete.Right {
				continue
			}
			for _, w := range live {
				if w.Class() != cd.Chain.Class || !cd.Chain.Matches(w) {
					continue
				}
				tok := m.pools.MakeToken(1)
				tok[0] = w
				m.activate(dst.Join, rete.Right, true, tok)
			}
		}
	}
	// Phase 2: left-side and terminal deliveries, then the historical
	// outputs of grown joins into their new successors and terminals.
	for _, cd := range targets {
		for _, dst := range cd.Dests {
			if dst.Join != nil && dst.Side == rete.Right {
				continue
			}
			for _, w := range live {
				if w.Class() != cd.Chain.Class || !cd.Chain.Matches(w) {
					continue
				}
				tok := m.pools.MakeToken(1)
				tok[0] = w
				if dst.Terminal != nil {
					m.toTerminal(dst.Terminal, true, tok)
				} else {
					m.activate(dst.Join, rete.Left, true, tok)
				}
			}
		}
	}
	for i := range d.GrownJoins {
		g := &d.GrownJoins[i]
		m.Table.ForEachOutput(g.Join, &m.pools, func(tok []*wm.WME) {
			for _, succ := range g.NewSuccs {
				m.activate(succ, rete.Left, true, tok)
			}
			for _, t := range g.NewTerms {
				m.toTerminal(t, true, tok)
			}
		})
	}
	return removed, nil
}

func (m *Matcher) toTerminal(t *rete.Terminal, sign bool, wmes []*wm.WME) {
	m.Rec.M.Activations++
	if sign {
		m.Rec.M.CSInserts++
		m.Sink.InsertInstantiation(t.Rule, wmes)
	} else {
		m.Rec.M.CSDeletes++
		m.Sink.RemoveInstantiation(t.Rule, wmes)
	}
}
