package seqmatch_test

import (
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/wm"
)

func build(t *testing.T, src string, v seqmatch.Variant) (*engine.Engine, *seqmatch.Matcher) {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := conflict.NewSet()
	m := seqmatch.New(net, v, 0, cs)
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

// TestStatsHandComputed verifies the Table 4-2/4-3 instrumentation on a
// program small enough to count by hand.
//
// Rule: (a ^x <v>) (b ^y <v>). Assertions, in order:
//
//	(a ^x 1)  — left activation; opposite (right) memory empty: not counted
//	(b ^y 1)  — right activation; opposite has 1 token: examined 1 (lin)
//	(b ^y 2)  — right activation; opposite has 1 token: examined 1
//	(a ^x 2)  — left activation; opposite has 2 tokens: examined 2 (lin)
//
// vs1 totals: left examined 2 over 1 counted activation; right examined
// 2 over 2 activations. With hashing, each activation examines only the
// matching bucket: left 1, right {1, 0}→1.
func TestStatsHandComputed(t *testing.T) {
	src := `
(literalize a x)
(literalize b y)
(p r (a ^x <v>) (b ^y <v>) --> (halt))
`
	assertAll := func(e *engine.Engine) {
		mk := func(class string, val int64) {
			prog := e.Prog
			id := prog.Symbols.Intern(class)
			fields := make([]wm.Value, prog.ClassOf(id).NumFields())
			fields[0] = wm.Sym(id)
			fields[1] = wm.Int(val)
			if _, err := e.Assert(fields); err != nil {
				t.Fatal(err)
			}
		}
		mk("a", 1)
		mk("b", 1)
		mk("b", 2)
		mk("a", 2)
	}

	e1, m1 := build(t, src, seqmatch.VS1)
	assertAll(e1)
	s1 := m1.Rec.M
	if s1.OppNonEmptyLeft != 1 || s1.OppExaminedLeft != 2 {
		t.Errorf("vs1 left: %d examined over %d activations, want 2 over 1",
			s1.OppExaminedLeft, s1.OppNonEmptyLeft)
	}
	if s1.OppNonEmptyRight != 2 || s1.OppExaminedRight != 2 {
		t.Errorf("vs1 right: %d examined over %d activations, want 2 over 2",
			s1.OppExaminedRight, s1.OppNonEmptyRight)
	}

	e2, m2 := build(t, src, seqmatch.VS2)
	assertAll(e2)
	s2 := m2.Rec.M
	if s2.OppExaminedLeft != 1 {
		t.Errorf("vs2 left examined = %d, want 1 (bucket narrowed)", s2.OppExaminedLeft)
	}
	if s2.OppExaminedRight != 1 {
		t.Errorf("vs2 right examined = %d, want 1", s2.OppExaminedRight)
	}
	// The non-empty activation counts follow the node's whole memory, so
	// they are identical across variants (the paper's convention).
	if s2.OppNonEmptyLeft != s1.OppNonEmptyLeft || s2.OppNonEmptyRight != s1.OppNonEmptyRight {
		t.Errorf("non-empty counts differ across variants: vs1 %d/%d vs2 %d/%d",
			s1.OppNonEmptyLeft, s1.OppNonEmptyRight, s2.OppNonEmptyLeft, s2.OppNonEmptyRight)
	}
}

// TestDeleteScanStats verifies the Table 4-3 counter: deleting the
// second of two same-bucket tokens scans both under vs1.
func TestDeleteScanStats(t *testing.T) {
	src := `
(literalize a x)
(literalize b y)
(p r (a ^x <v>) (b ^y <v>) --> (halt))
`
	e, m := build(t, src, seqmatch.VS1)
	prog := e.Prog
	mk := func(class string, val int64) *wm.WME {
		id := prog.Symbols.Intern(class)
		fields := make([]wm.Value, prog.ClassOf(id).NumFields())
		fields[0] = wm.Sym(id)
		fields[1] = wm.Int(val)
		w, err := e.Assert(fields)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1 := mk("a", 1)
	mk("a", 2)
	// Entries are pushed LIFO, so w1 sits second in the list: its delete
	// scans 2 entries.
	if ok, err := e.Retract(w1.TimeTag); !ok || err != nil {
		t.Fatalf("retract: %v %v", ok, err)
	}
	s := m.Rec.M
	if s.DeletesLeft != 1 || s.SameExaminedLeft != 2 {
		t.Errorf("delete scan: %d examined over %d deletes, want 2 over 1",
			s.SameExaminedLeft, s.DeletesLeft)
	}
}

// TestVS1LinearScanFidelity pins the vs1 memory organization against
// the segregated-table rewrite: per-node list lines, no hashing, no
// adaptive growth, and scan counts that still reflect a full linear walk
// even though entries now carry a stored hash — the hash only
// short-circuits the token comparison inside EntryList.Remove, it never
// changes which entries a scan examines.
func TestVS1LinearScanFidelity(t *testing.T) {
	src := `
(literalize a x)
(literalize b y)
(p r (a ^x <v>) (b ^y <v>) --> (halt))
`
	e, m := build(t, src, seqmatch.VS1)
	if m.Table.Hashed || m.Table.Segregated() {
		t.Fatal("vs1 table must be the per-node list layout")
	}
	if got, want := len(m.Table.Lines), m.Net.NumJoinIDs(); got != want {
		t.Fatalf("vs1 lines = %d, want one per join node (%d)", got, want)
	}
	j := m.Net.Joins[0]
	if idx := m.Table.LineIndex(j, 0xdeadbeef); idx != j.ID {
		t.Fatalf("vs1 LineIndex = %d, want node ID %d regardless of hash", idx, j.ID)
	}

	prog := e.Prog
	mk := func(class string, val int64) *wm.WME {
		id := prog.Symbols.Intern(class)
		fields := make([]wm.Value, prog.ClassOf(id).NumFields())
		fields[0] = wm.Sym(id)
		fields[1] = wm.Int(val)
		w, err := e.Assert(fields)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	first := mk("a", 1)
	for v := int64(2); v <= 5; v++ {
		mk("a", v)
	}
	mk("b", 3)
	// The right activation walks all 5 left tokens, hash or no hash.
	s := m.Rec.M
	if s.OppNonEmptyRight != 1 || s.OppExaminedRight != 5 {
		t.Errorf("vs1 right scan: %d examined over %d activations, want 5 over 1",
			s.OppExaminedRight, s.OppNonEmptyRight)
	}
	// Deleting the oldest left token scans the whole LIFO list: 5 entries
	// examined, exactly as before stored hashes existed.
	if ok, err := e.Retract(first.TimeTag); !ok || err != nil {
		t.Fatalf("retract: %v %v", ok, err)
	}
	s = m.Rec.M
	if s.DeletesLeft != 1 || s.SameExaminedLeft != 5 {
		t.Errorf("vs1 delete scan: %d examined over %d deletes, want 5 over 1",
			s.SameExaminedLeft, s.DeletesLeft)
	}
	// vs1 never participates in adaptive growth.
	if n := m.Table.GrowTarget(); n != 0 {
		t.Errorf("vs1 GrowTarget = %d, want 0", n)
	}
	if ms := m.MemStats(); ms.Resizes != 0 || ms.Lines != int64(m.Net.NumJoinIDs()) {
		t.Errorf("vs1 memory stats = %+v, want 0 resizes and per-node lines", ms)
	}
}

// TestActivationCountsMatchAcrossVariants: vs1 and vs2 process the same
// activations; only the scanning differs.
func TestActivationCountsMatchAcrossVariants(t *testing.T) {
	src := `
(literalize c v w)
(p r1 (c ^v <a> ^w <b>) (c ^v <b>) --> (make out ^o 1))
(p r2 (c ^v <a>) - (c ^w <a>) --> (make out ^o 2))
(make c ^v 1 ^w 2)
(make c ^v 2 ^w 1)
(make c ^v 3 ^w 3)
`
	e1, m1 := build(t, src, seqmatch.VS1)
	if err := e1.Init(); err != nil {
		t.Fatal(err)
	}
	e2, m2 := build(t, src, seqmatch.VS2)
	if err := e2.Init(); err != nil {
		t.Fatal(err)
	}
	if m1.Rec.M.Activations != m2.Rec.M.Activations {
		t.Fatalf("activations differ: vs1 %d vs2 %d", m1.Rec.M.Activations, m2.Rec.M.Activations)
	}
	if m1.Rec.M.Pairs != m2.Rec.M.Pairs {
		t.Fatalf("pairs differ: vs1 %d vs2 %d", m1.Rec.M.Pairs, m2.Rec.M.Pairs)
	}
}
