package conflict_test

import (
	"fmt"
	"testing"

	"repro/internal/conflict"
	"repro/internal/wm"
)

// fillSet populates a set with n single-WME instantiations of distinct
// recency (tags 1..n) across several rules, twice — returning two
// identically populated sets so one can be consumed by repeated Select
// and the other by SelectN.
func fillSet(n int) (a, b *conflict.Set) {
	a, b = lexSet(), lexSet()
	for i := 1; i <= n; i++ {
		r := mkRule(i%3, 1, fmt.Sprintf("r%d", i%3))
		w := []*wm.WME{mkWME(i)}
		a.InsertInstantiation(r, w)
		b.InsertInstantiation(r, w)
	}
	return a, b
}

// TestSelectNMatchesRepeatedSelect: SelectN(k) returns exactly the
// sequence k successive Select+MarkFired calls would, in order.
func TestSelectNMatchesRepeatedSelect(t *testing.T) {
	for _, k := range []int{1, 3, 7, 12, 20} {
		serial, batched := fillSet(12)
		var want []int
		for i := 0; i < k; i++ {
			inst := serial.Select()
			if inst == nil {
				break
			}
			serial.MarkFired(inst)
			want = append(want, inst.Wmes[0].TimeTag)
		}
		got := batched.SelectN(k)
		if len(got) != len(want) {
			t.Fatalf("SelectN(%d): %d results, want %d", k, len(got), len(want))
		}
		for i, inst := range got {
			if inst.Wmes[0].TimeTag != want[i] {
				t.Errorf("SelectN(%d)[%d]: tag %d, want %d", k, i, inst.Wmes[0].TimeTag, want[i])
			}
			if !inst.Fired {
				t.Errorf("SelectN(%d)[%d]: not marked fired", k, i)
			}
		}
	}
}

// TestSelectNRefraction: popped instantiations never come back from a
// later Select or SelectN.
func TestSelectNRefraction(t *testing.T) {
	_, cs := fillSet(6)
	first := cs.SelectN(4)
	if len(first) != 4 {
		t.Fatalf("got %d, want 4", len(first))
	}
	rest := cs.SelectN(4)
	if len(rest) != 2 {
		t.Fatalf("second batch: got %d, want 2", len(rest))
	}
	seen := map[int]bool{}
	for _, inst := range append(first, rest...) {
		tag := inst.Wmes[0].TimeTag
		if seen[tag] {
			t.Fatalf("tag %d popped twice", tag)
		}
		seen[tag] = true
	}
	if cs.Select() != nil {
		t.Error("set should be exhausted")
	}
}

// TestReinsertRestoresLive: a popped instantiation returned by Reinsert
// becomes selectable again with its recency key intact, and Reinsert on
// an instantiation whose fired entry was already retracted (the drain
// raced it away) reports false and does nothing.
func TestReinsertRestoresLive(t *testing.T) {
	_, cs := fillSet(5)
	batch := cs.SelectN(3)
	if len(batch) != 3 {
		t.Fatalf("got %d, want 3", len(batch))
	}
	// Return the tail two in reverse, as a rollback would.
	for i := 2; i >= 1; i-- {
		if !cs.Reinsert(batch[i]) {
			t.Fatalf("Reinsert(%d) = false, want true", i)
		}
	}
	next := cs.Select()
	if next == nil || next != batch[1] {
		t.Fatalf("Select after Reinsert = %v, want the former second pick", next)
	}
	// Retract the still-fired head (a terminal minus during the drain),
	// then Reinsert must refuse it.
	cs.RemoveInstantiation(batch[0].Rule, batch[0].Wmes)
	if cs.Reinsert(batch[0]) {
		t.Error("Reinsert after retraction = true, want false")
	}
	if got := cs.Select(); got != batch[1] {
		t.Errorf("retraction disturbed the live set: Select = %v", got)
	}
}

// TestSelectNDominatesAgreesWithOrder: the exported Dominates predicate
// orders SelectN results consistently (strictly descending).
func TestSelectNDominatesAgreesWithOrder(t *testing.T) {
	_, cs := fillSet(9)
	batch := cs.SelectN(9)
	for i := 1; i < len(batch); i++ {
		if !cs.Dominates(batch[i-1], batch[i]) {
			t.Errorf("batch[%d] does not dominate batch[%d]", i-1, i)
		}
		if cs.Dominates(batch[i], batch[i-1]) {
			t.Errorf("dominance not antisymmetric at %d", i)
		}
	}
}

// TestSelectNZeroAndEmpty: degenerate arguments.
func TestSelectNZeroAndEmpty(t *testing.T) {
	_, cs := fillSet(3)
	if got := cs.SelectN(0); got != nil {
		t.Errorf("SelectN(0) = %v, want nil", got)
	}
	empty := lexSet()
	if got := empty.SelectN(4); len(got) != 0 {
		t.Errorf("SelectN on empty set = %v, want none", got)
	}
}
