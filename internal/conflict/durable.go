package conflict

import (
	"repro/internal/rete"
)

// This file is the conflict set's durability surface: enumerating and
// re-establishing refraction state (which instantiations have fired)
// for the WM delta log, and cloning the whole set for copy-on-write
// template-session forking.

// instKeyTags mirrors instKey for a recorded tag sequence: the hash
// folds only the rule index and the token time tags, so a fired
// instantiation logged as (rule, tags) is findable after replay without
// its WME pointers.
func instKeyTags(rule *rete.CompiledRule, tags []int) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(uint32(rule.Index))) * fnvPrime
	for _, t := range tags {
		h = (h ^ uint64(uint32(t))) * fnvPrime
	}
	return h
}

// MarkFiredByTags finds the live instantiation of rule whose token time
// tags equal tags (in token order) and marks it fired, re-establishing
// refraction during log replay. It reports whether such an
// instantiation existed — a miss is normal when the firing's WMEs were
// later retracted and the instantiation annihilated.
func (s *Set) MarkFiredByTags(rule *rete.CompiledRule, tags []int) bool {
	h := instKeyTags(rule, tags)
	sh := s.enter(h)
	var found *Instantiation
	for cur := sh.live[h]; cur != nil; cur = cur.next {
		if cur.Rule == rule && tagsMatch(cur, tags) {
			found = cur
			break
		}
	}
	sh.lock.Release()
	if found == nil {
		return false
	}
	s.MarkFired(found)
	return true
}

func tagsMatch(inst *Instantiation, tags []int) bool {
	if len(inst.Wmes) != len(tags) {
		return false
	}
	for i, w := range inst.Wmes {
		if w.TimeTag != tags[i] {
			return false
		}
	}
	return true
}

// ForEachFired calls fn for every fired instantiation retained for
// refraction. fn runs under the shard lock and must copy what it keeps;
// it must not call back into the set. Snapshots use this instead of
// Snapshot() so instantiations are not leaked out of the free-list
// discipline just to be counted.
func (s *Set) ForEachFired(fn func(inst *Instantiation)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		for _, head := range sh.fired {
			for cur := head; cur != nil; cur = cur.next {
				fn(cur)
			}
		}
		sh.lock.Release()
	}
}

// Clone returns an independent copy of the set for a forked session:
// same strategy and shard geometry, fresh instantiation objects (Fired
// diverges per session), shared WME pointers and rule metadata (both
// immutable). Chain order within buckets is preserved, so a clone
// behaves identically under the annihilation and selection protocols.
// The caller must hold the set quiescent (a drained template session).
func (s *Set) Clone() *Set {
	ns := New(Config{Strategy: s.strategy, Shards: len(s.shards)})
	for i := range s.shards {
		sh := &s.shards[i]
		nsh := &ns.shards[i]
		sh.lock.Acquire()
		cloneBuckets(nsh.live, sh.live)
		cloneBuckets(nsh.fired, sh.fired)
		cloneBuckets(nsh.pending, sh.pending)
		nsh.nLive.Store(sh.nLive.Load())
		nsh.nFired = sh.nFired
		nsh.nPend = sh.nPend
		// The cached best points at an original object; recompute lazily.
		nsh.best = nil
		nsh.dirty = true
		sh.lock.Release()
	}
	return ns
}

func cloneBuckets(dst, src map[uint64]*Instantiation) {
	for h, head := range src {
		var newHead, tail *Instantiation
		for cur := head; cur != nil; cur = cur.next {
			c := &Instantiation{
				Rule:  cur.Rule,
				Wmes:  cur.Wmes, // token slices are immutable once emitted
				Fired: cur.Fired,
				hash:  cur.hash,
			}
			if len(cur.recency) > 0 {
				c.recency = append([]int(nil), cur.recency...)
			}
			if tail == nil {
				newHead, tail = c, c
			} else {
				tail.next = c
				tail = c
			}
		}
		dst[h] = newHead
	}
}
