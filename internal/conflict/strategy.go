package conflict

import "fmt"

// Strategy selects the conflict-resolution discipline. OPS5 programs
// name it once, in a top-level (strategy ...) form; the engine resolves
// the name to this enum at load time so the per-cycle dominance
// comparisons never touch a string again.
type Strategy uint8

// Conflict-resolution strategies.
const (
	// Lex prefers the instantiation whose descending time-tag list is
	// lexicographically greatest, then the more specific rule.
	Lex Strategy = iota
	// Mea first prefers the instantiation whose first condition element
	// matched the most recent WME (means-ends analysis), falling back to
	// Lex ordering on ties.
	Mea
)

func (s Strategy) String() string {
	if s == Mea {
		return "mea"
	}
	return "lex"
}

// ParseStrategy resolves an OPS5 strategy name ("lex" or "mea").
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "lex":
		return Lex, nil
	case "mea":
		return Mea, nil
	}
	return Lex, fmt.Errorf("conflict: unknown strategy %q (want lex or mea)", name)
}
