// Package conflict implements the OPS5 conflict set and the LEX and MEA
// conflict-resolution strategies, including refraction. The set is one
// of the shared resources of Figure 3-1 and is protected by a mutex so
// terminal-node activations from parallel match processes can update it
// concurrently with each other.
package conflict

import (
	"sync"

	"repro/internal/rete"
	"repro/internal/wm"
)

// Instantiation is one satisfied production: the rule plus the ordered
// WMEs matching its positive condition elements.
type Instantiation struct {
	Rule *rete.CompiledRule
	Wmes []*wm.WME
	// recency holds the WME time tags sorted descending, the key LEX
	// compares lexicographically.
	recency []int
	Fired   bool
}

func newInstantiation(rule *rete.CompiledRule, wmes []*wm.WME) *Instantiation {
	rec := make([]int, len(wmes))
	for i, w := range wmes {
		rec[i] = w.TimeTag
	}
	// Insertion sort, descending: tokens are a handful of WMEs and the
	// sort.Sort interface boxing was 2 heap allocations per conflict-set
	// insert.
	for i := 1; i < len(rec); i++ {
		v := rec[i]
		j := i
		for j > 0 && rec[j-1] < v {
			rec[j] = rec[j-1]
			j--
		}
		rec[j] = v
	}
	return &Instantiation{Rule: rule, Wmes: wmes, recency: rec}
}

// Set is the conflict set. It implements rete.TerminalSink.
type Set struct {
	mu      sync.Mutex
	items   []*Instantiation
	pending []pendingDelete
	// Inserts and Deletes count conflict-set changes for the harness.
	Inserts, Deletes int64
}

// NewSet returns an empty conflict set.
func NewSet() *Set { return &Set{} }

// InsertInstantiation adds an instantiation (terminal + activation).
func (s *Set) InsertInstantiation(rule *rete.CompiledRule, wmes []*wm.WME) {
	inst := newInstantiation(rule, wmes)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Inserts++
	// A parked early delete annihilates with this insert.
	for i, pd := range s.pending {
		if pd.rule == rule && rete.SameWmes(pd.wmes, wmes) {
			s.pending[i] = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			return
		}
	}
	s.items = append(s.items, inst)
}

// RemoveInstantiation removes the instantiation for (rule, wmes)
// (terminal − activation). Removing an absent instantiation is ignored:
// in the parallel matcher a terminal minus can be processed before its
// plus; the set tolerates this by parking a pending delete.
func (s *Set) RemoveInstantiation(rule *rete.CompiledRule, wmes []*wm.WME) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Deletes++
	for i, inst := range s.items {
		if inst.Rule == rule && rete.SameWmes(inst.Wmes, wmes) {
			s.items[i] = s.items[len(s.items)-1]
			s.items = s.items[:len(s.items)-1]
			return
		}
	}
	// Early delete: park it as a negative instantiation that will
	// annihilate with the matching insert.
	s.pending = append(s.pending, pendingDelete{rule: rule, wmes: wmes})
}

type pendingDelete struct {
	rule *rete.CompiledRule
	wmes []*wm.WME
}

// Len reports the number of live instantiations.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Snapshot returns a copy of the live instantiations, for tracing.
func (s *Set) Snapshot() []*Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Instantiation(nil), s.items...)
}

// Drained reports whether any parked conflict-set deletes remain; a
// non-empty pending list after a match phase indicates a matcher bug.
func (s *Set) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) == 0
}

// Select applies the strategy ("lex" or "mea") and returns the dominant
// unfired instantiation, or nil if none (the interpreter then halts).
func (s *Set) Select(strategy string) *Instantiation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Instantiation
	for _, inst := range s.items {
		if inst.Fired {
			continue
		}
		if best == nil || dominates(inst, best, strategy) {
			best = inst
		}
	}
	return best
}

// MarkFired records refraction for the chosen instantiation.
func (s *Set) MarkFired(inst *Instantiation) {
	s.mu.Lock()
	inst.Fired = true
	s.mu.Unlock()
}

// dominates reports whether a should be preferred over b.
func dominates(a, b *Instantiation, strategy string) bool {
	if strategy == "mea" {
		// Means-ends analysis: the instantiation whose first condition
		// element matched the more recent WME wins outright.
		at, bt := firstCETag(a), firstCETag(b)
		if at != bt {
			return at > bt
		}
	}
	// LEX: lexicographic comparison of descending time tags.
	if c := compareRecency(a.recency, b.recency); c != 0 {
		return c > 0
	}
	// Specificity.
	if a.Rule.Specificity != b.Rule.Specificity {
		return a.Rule.Specificity > b.Rule.Specificity
	}
	// Arbitrary but deterministic: rule order, then ascending tags.
	if a.Rule.Index != b.Rule.Index {
		return a.Rule.Index < b.Rule.Index
	}
	for i := range a.Wmes {
		if i >= len(b.Wmes) {
			break
		}
		if a.Wmes[i].TimeTag != b.Wmes[i].TimeTag {
			return a.Wmes[i].TimeTag < b.Wmes[i].TimeTag
		}
	}
	return false
}

func firstCETag(inst *Instantiation) int {
	if len(inst.Wmes) == 0 {
		return 0
	}
	return inst.Wmes[0].TimeTag
}

// compareRecency compares two descending tag lists: positive when a
// dominates. When one list is a prefix of the other, the longer list
// dominates (OPS5 LEX rule).
func compareRecency(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	switch {
	case len(a) > len(b):
		return 1
	case len(a) < len(b):
		return -1
	}
	return 0
}
