// Package conflict implements the OPS5 conflict set and the LEX and MEA
// conflict-resolution strategies, including refraction.
//
// The set is one of the shared resources of the paper's Figure 3-1, and
// through PR 2 it was the last globally-locked structure on the match
// hot path: every terminal (+)/(−) activation from every match worker
// serialized on one mutex and then linearly scanned the whole set. This
// version shards the set instead. Instantiations are keyed by a hash of
// (rule index, WME time tags) into a power-of-two number of spin-locked
// shards, so terminal activations from parallel match processes hit
// disjoint locks, and insert, remove, refraction lookup and
// pending-delete annihilation are all O(1) expected bucket operations.
//
// Selection is incremental: each shard caches its dominant unfired
// instantiation, maintained on insert and lazily invalidated when the
// cached best is removed or fired, so Select is a tournament over the
// shard heads (plus a rescan of the rare dirty shard) instead of a scan
// of the whole set. Fired instantiations are compacted out of the live
// index at MarkFired — they stay findable for the terminal minus that
// eventually retracts them (the conjugate-pair protocol requires it)
// but never cost selection time again. Instantiation objects recycle
// through per-shard free lists, hashmem.Pools-style, except objects
// that were handed out via Select or Snapshot, which are left to the
// garbage collector because the engine may still hold them.
package conflict

import (
	"sync/atomic"

	"repro/internal/rete"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/internal/wm"
)

// Instantiation is one satisfied production: the rule plus the ordered
// WMEs matching its positive condition elements.
type Instantiation struct {
	Rule *rete.CompiledRule
	Wmes []*wm.WME
	// recency holds the WME time tags sorted descending, the key LEX
	// compares lexicographically. Dropped at MarkFired: fired
	// instantiations never compete in selection again.
	recency []int
	Fired   bool

	hash uint64 // full instantiation key; shard index is hash & mask
	next *Instantiation
	// leaked marks objects handed out via Select or Snapshot. They are
	// never recycled onto a free list: the engine reads Wmes during RHS
	// evaluation while match workers may concurrently remove them.
	leaked bool
}

// DefaultShards is the shard count when Config.Shards is zero: enough
// striping for the paper's 1+13 process counts with headroom, small
// enough that an empty-set Select stays trivial.
const DefaultShards = 32

// freeListCap bounds each shard's instantiation free list.
const freeListCap = 256

// Config sizes a Set.
type Config struct {
	// Strategy is the conflict-resolution discipline (default Lex). The
	// engine re-resolves it from the program at load time via
	// UseStrategy, so most callers can leave it zero.
	Strategy Strategy
	// Shards is the number of lock stripes, rounded up to a power of
	// two (0 = DefaultShards). Sequential callers can use 1; parallel
	// matchers want enough stripes that concurrent terminal activations
	// rarely collide.
	Shards int
}

// shard is one lock stripe: bucket chains for live (unfired), fired and
// parked-delete instantiations, the cached dominant unfired entry, a
// free list, and contention counters. All fields are guarded by lock
// except nLive, which is also read without the lock by Select's
// empty-shard skip.
type shard struct {
	lock    spinlock.Lock
	live    map[uint64]*Instantiation
	fired   map[uint64]*Instantiation
	pending map[uint64]*Instantiation
	nLive   atomic.Int64
	nFired  int
	nPend   int

	// best is the dominant unfired instantiation of this shard, nil
	// when the shard is empty. dirty marks it stale (the cached best
	// was removed or fired); the next Select recomputes it.
	best  *Instantiation
	dirty bool

	free  *Instantiation
	nFree int

	c stats.Conflict // per-shard counters (gauge fields unused)
	_ [64]byte       // keep neighbouring shard locks off one cache line
}

// Set is the sharded conflict set. It implements rete.TerminalSink.
type Set struct {
	shards   []shard
	mask     uint64
	strategy Strategy
	selects  atomic.Int64
}

// NewSet returns an empty conflict set with default configuration
// (Lex, DefaultShards stripes).
func NewSet() *Set { return New(Config{}) }

// New returns an empty conflict set sized by cfg.
func New(cfg Config) *Set {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Set{shards: make([]shard, p), mask: uint64(p - 1), strategy: cfg.Strategy}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.live = make(map[uint64]*Instantiation)
		sh.fired = make(map[uint64]*Instantiation)
		sh.pending = make(map[uint64]*Instantiation)
	}
	return s
}

// Shards reports the number of lock stripes.
func (s *Set) Shards() int { return len(s.shards) }

// Strategy reports the current conflict-resolution strategy.
func (s *Set) Strategy() Strategy { return s.strategy }

// UseStrategy re-resolves the strategy, invalidating the cached shard
// bests when it changes. The engine calls it once at program load; it
// must not race with matching or selection.
func (s *Set) UseStrategy(st Strategy) {
	if st == s.strategy {
		return
	}
	s.strategy = st
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		sh.best = nil
		sh.dirty = true
		sh.lock.Release()
	}
}

// fnv-1a, folding the rule index and each time tag in token order
// (token order is part of instantiation identity — SameWmes is
// order-sensitive).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func instKey(rule *rete.CompiledRule, wmes []*wm.WME) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(uint32(rule.Index))) * fnvPrime
	for _, w := range wmes {
		h = (h ^ uint64(uint32(w.TimeTag))) * fnvPrime
	}
	return h
}

// permuteToken maps a network-order token back into the rule's source
// condition-element order (rete.CompiledRule.TokenPerm). The conflict
// set is the single choke point every matcher backend's terminal
// activations flow through, so applying the permutation here keeps
// instantiation keys, recency, MEA's first-CE tag, RHS positions and
// the firing trace byte-identical whether or not the rule's joins were
// reordered at compile time. Plus and minus activations permute the
// same way, so pending-delete annihilation still pairs correctly.
func permuteToken(rule *rete.CompiledRule, wmes []*wm.WME) []*wm.WME {
	p := rule.TokenPerm
	if p == nil {
		return wmes
	}
	out := make([]*wm.WME, len(wmes))
	for i, w := range wmes {
		out[p[i]] = w
	}
	return out
}

// enter locks the shard for key h, recording contention.
func (s *Set) enter(h uint64) *shard {
	sh := &s.shards[h&s.mask]
	spins := sh.lock.Acquire()
	sh.c.ShardAcquires++
	sh.c.ShardSpins += spins
	return sh
}

// unlink removes the first chain node in m[h] matching (rule, wmes) by
// token identity and returns it, or nil.
func unlink(m map[uint64]*Instantiation, h uint64, rule *rete.CompiledRule, wmes []*wm.WME) *Instantiation {
	var prev *Instantiation
	for cur := m[h]; cur != nil; prev, cur = cur, cur.next {
		if cur.Rule == rule && rete.SameWmes(cur.Wmes, wmes) {
			unlinkNode(m, h, prev, cur)
			return cur
		}
	}
	return nil
}

// unlinkPtr removes the chain node equal to inst from m[h], reporting
// whether it was present.
func unlinkPtr(m map[uint64]*Instantiation, h uint64, inst *Instantiation) bool {
	var prev *Instantiation
	for cur := m[h]; cur != nil; prev, cur = cur, cur.next {
		if cur == inst {
			unlinkNode(m, h, prev, cur)
			return true
		}
	}
	return false
}

func unlinkNode(m map[uint64]*Instantiation, h uint64, prev, cur *Instantiation) {
	if prev == nil {
		if cur.next == nil {
			delete(m, h)
		} else {
			m[h] = cur.next
		}
	} else {
		prev.next = cur.next
	}
	cur.next = nil
}

// newInst builds an instantiation from the shard's free list, or
// allocates. withRecency is false for parked pending deletes, which
// never compete in selection.
func (sh *shard) newInst(rule *rete.CompiledRule, wmes []*wm.WME, h uint64, withRecency bool) *Instantiation {
	inst := sh.free
	if inst != nil {
		sh.free = inst.next
		sh.nFree--
		inst.next = nil
	} else {
		inst = &Instantiation{}
	}
	inst.Rule, inst.Wmes, inst.hash = rule, wmes, h
	inst.Fired, inst.leaked = false, false
	if !withRecency {
		inst.recency = inst.recency[:0]
		return inst
	}
	rec := inst.recency[:0]
	for _, w := range wmes {
		rec = append(rec, w.TimeTag)
	}
	// Insertion sort, descending: tokens are a handful of WMEs and the
	// sort.Sort interface boxing was 2 heap allocations per insert.
	for i := 1; i < len(rec); i++ {
		v := rec[i]
		j := i
		for j > 0 && rec[j-1] < v {
			rec[j] = rec[j-1]
			j--
		}
		rec[j] = v
	}
	inst.recency = rec
	return inst
}

// recycle returns an unlinked instantiation to the shard free list.
// Leaked and fired objects are dropped to the garbage collector — the
// engine may still read them.
func (sh *shard) recycle(inst *Instantiation) {
	if inst.leaked || inst.Fired || sh.nFree >= freeListCap {
		return
	}
	inst.Rule, inst.Wmes = nil, nil
	inst.recency = inst.recency[:0]
	inst.next = sh.free
	sh.free = inst
	sh.nFree++
}

// InsertInstantiation adds an instantiation (terminal + activation).
// The token arrives in network join order and is permuted to source
// condition-element order before anything downstream sees it.
func (s *Set) InsertInstantiation(rule *rete.CompiledRule, wmes []*wm.WME) {
	wmes = permuteToken(rule, wmes)
	h := instKey(rule, wmes)
	sh := s.enter(h)
	sh.c.Inserts++
	// A parked early delete annihilates with this insert: O(1) bucket
	// lookup instead of the old O(pending) scan.
	if pd := unlink(sh.pending, h, rule, wmes); pd != nil {
		sh.nPend--
		sh.c.Annihilations++
		sh.recycle(pd)
		sh.lock.Release()
		return
	}
	inst := sh.newInst(rule, wmes, h, true)
	inst.next = sh.live[h]
	sh.live[h] = inst
	sh.nLive.Add(1)
	if !sh.dirty {
		// Incremental best maintenance: O(1) while the cache is valid.
		if sh.best == nil || dominates(inst, sh.best, s.strategy) {
			sh.best = inst
		}
	}
	sh.lock.Release()
}

// RemoveInstantiation removes the instantiation for (rule, wmes)
// (terminal − activation). Removing an absent instantiation parks a
// pending delete: in the parallel matcher a terminal minus can be
// processed before its plus, and the pair annihilates when the plus
// arrives.
func (s *Set) RemoveInstantiation(rule *rete.CompiledRule, wmes []*wm.WME) {
	wmes = permuteToken(rule, wmes)
	h := instKey(rule, wmes)
	sh := s.enter(h)
	sh.c.Deletes++
	if inst := unlink(sh.live, h, rule, wmes); inst != nil {
		sh.nLive.Add(-1)
		if inst == sh.best {
			sh.best = nil
			sh.dirty = true
		}
		sh.recycle(inst)
		sh.lock.Release()
		return
	}
	// Fired instantiations live in their own index; this is the
	// terminal minus that finally retracts a refracted firing.
	if inst := unlink(sh.fired, h, rule, wmes); inst != nil {
		sh.nFired--
		sh.lock.Release()
		return
	}
	pd := sh.newInst(rule, wmes, h, false)
	pd.next = sh.pending[h]
	sh.pending[h] = pd
	sh.nPend++
	sh.lock.Release()
}

// Len reports the number of instantiations in the set, fired included
// (refraction keeps fired entries until their WMEs retract).
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		n += int(sh.nLive.Load()) + sh.nFired
		sh.lock.Release()
	}
	return n
}

// Live reports the number of unfired instantiations.
func (s *Set) Live() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].nLive.Load()
	}
	return int(n)
}

// Fired reports the number of fired instantiations retained for
// refraction (awaiting the terminal minus that retracts them).
func (s *Set) Fired() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		n += sh.nFired
		sh.lock.Release()
	}
	return n
}

// Snapshot returns a copy of the instantiations (fired included), for
// tracing. The returned objects are excluded from pooling.
func (s *Set) Snapshot() []*Instantiation {
	var out []*Instantiation
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		for _, m := range [2]map[uint64]*Instantiation{sh.live, sh.fired} {
			for _, head := range m {
				for cur := head; cur != nil; cur = cur.next {
					cur.leaked = true
					out = append(out, cur)
				}
			}
		}
		sh.lock.Release()
	}
	return out
}

// Drained reports whether any parked conflict-set deletes remain; a
// non-empty pending list after a match phase indicates a matcher bug.
func (s *Set) Drained() bool {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		n := sh.nPend
		sh.lock.Release()
		if n != 0 {
			return false
		}
	}
	return true
}

// Select returns the dominant unfired instantiation under the set's
// strategy, or nil if none (the interpreter then halts). It is a
// tournament over the cached shard bests: a shard rescans its buckets
// only when its cached best was invalidated since the last call, so
// the cost scales with the shard count, not the set size.
func (s *Set) Select() *Instantiation {
	s.selects.Add(1)
	var best *Instantiation
	for i := range s.shards {
		sh := &s.shards[i]
		// Empty shards contribute nothing: removal keeps best nil and a
		// dirty rescan of zero live entries would also yield nil.
		if sh.nLive.Load() == 0 {
			continue
		}
		spins := sh.lock.Acquire()
		sh.c.ShardAcquires++
		sh.c.ShardSpins += spins
		if sh.dirty {
			sh.recomputeBest(s.strategy)
		}
		b := sh.best
		if b != nil {
			// Every tournament candidate escapes this call (the winner
			// goes to the engine): mark it while its shard lock is held
			// so a concurrent remove can never recycle it.
			b.leaked = true
		}
		sh.lock.Release()
		if b != nil && (best == nil || dominates(b, best, s.strategy)) {
			best = b
		}
	}
	return best
}

// SelectN pops up to n dominant unfired instantiations in dominance
// order, marking each fired — the batched form of Select+MarkFired the
// engine's speculative multi-fire act phase runs once per group instead
// of rescanning the shard heads n times. A shard's live chains are
// walked only when they might matter: a shard whose cached best (its
// exact top-1 while clean — insert maintains it incrementally) cannot
// enter the current top n is skipped whole, because dominance is a
// strict total order and everything else in the shard ranks below that
// best. Walked shards feed a bounded insertion sort that keeps the
// global top n and refresh their best cache on the way through, so
// consecutive SelectN calls rescan only the shards the previous group's
// pops dirtied — the same amortization Select gets. The winners then
// move to the fired index like MarkFired does, except their recency
// keys are retained: the engine still needs them for its post-drain
// dominance verification and for Reinsert on rollback. Call CommitFired
// once a firing is final to drop the key.
//
// Like Select, SelectN must run with the matcher drained (the control
// process's conflict-resolution phase).
func (s *Set) SelectN(n int) []*Instantiation {
	if n <= 0 {
		return nil
	}
	s.selects.Add(1)
	cands := make([]*Instantiation, 0, n)
	insert := func(inst *Instantiation) {
		pos := len(cands)
		for pos > 0 && dominates(inst, cands[pos-1], s.strategy) {
			pos--
		}
		if pos >= n {
			return
		}
		if len(cands) < n {
			cands = append(cands, nil)
		}
		copy(cands[pos+1:], cands[pos:])
		cands[pos] = inst
	}
	// Seed pass: rank the clean shards' cached bests. The n-th of them is
	// a sound pruning bar for the walk pass — an unwalked clean shard
	// whose best misses this top n cannot hold any global top-n entry
	// (everything else it has ranks below that best), and the n seeded
	// bests that beat it all live in shards the walk pass does visit.
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.nLive.Load() == 0 {
			continue
		}
		spins := sh.lock.Acquire()
		sh.c.ShardAcquires++
		sh.c.ShardSpins += spins
		if !sh.dirty && sh.best != nil {
			insert(sh.best)
		}
		sh.lock.Release()
	}
	var bar *Instantiation
	if len(cands) == n {
		bar = cands[n-1]
	}
	cands = cands[:0]
	// Walk pass: visit dirty shards (unknown best) and clean shards whose
	// best cleared the bar; refresh each walked shard's best cache so the
	// next SelectN rescans only what this group's pops dirty. Shard state
	// cannot shift between the passes — SelectN runs on the control
	// goroutine with the matcher drained.
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.nLive.Load() == 0 {
			continue
		}
		spins := sh.lock.Acquire()
		sh.c.ShardAcquires++
		sh.c.ShardSpins += spins
		if !sh.dirty && sh.best != nil && bar != nil && sh.best != bar && !dominates(sh.best, bar, s.strategy) {
			sh.lock.Release()
			continue
		}
		var best *Instantiation
		scanned := int64(0)
		for _, head := range sh.live {
			for cur := head; cur != nil; cur = cur.next {
				scanned++
				if best == nil || dominates(cur, best, s.strategy) {
					best = cur
				}
				insert(cur)
			}
		}
		if sh.dirty {
			sh.c.SelectRescans++
			sh.c.SelectScanned += scanned
		}
		sh.best = best
		sh.dirty = false
		sh.lock.Release()
	}
	for _, inst := range cands {
		sh := s.enter(inst.hash)
		inst.Fired = true
		inst.leaked = true
		if unlinkPtr(sh.live, inst.hash, inst) {
			sh.nLive.Add(-1)
			inst.next = sh.fired[inst.hash]
			sh.fired[inst.hash] = inst
			sh.nFired++
		}
		if sh.best == inst {
			sh.best = nil
			sh.dirty = true
		}
		sh.lock.Release()
	}
	return cands
}

// Reinsert returns a SelectN-popped instantiation to the live index,
// unfired — the rollback path of the speculative act phase, undoing a
// MarkFired that never committed. The instantiation must still carry
// its recency key (no CommitFired yet). It reports whether the entry
// was still in the fired index; false means the firing's own working-
// memory removals already retracted it, in which case the undo replay
// re-derives the instantiation through the matcher instead.
func (s *Set) Reinsert(inst *Instantiation) bool {
	sh := s.enter(inst.hash)
	if !unlinkPtr(sh.fired, inst.hash, inst) {
		sh.lock.Release()
		return false
	}
	sh.nFired--
	inst.Fired = false
	inst.next = sh.live[inst.hash]
	sh.live[inst.hash] = inst
	sh.nLive.Add(1)
	if !sh.dirty {
		if sh.best == nil || dominates(inst, sh.best, s.strategy) {
			sh.best = inst
		}
	}
	sh.lock.Release()
	return true
}

// CommitFired finalizes a SelectN firing after its commit verified,
// dropping the recency key exactly as MarkFired does for the serial
// path. Safe to call whether or not the entry is still in the fired
// index (its own removals may already have retracted it).
func (s *Set) CommitFired(inst *Instantiation) {
	sh := s.enter(inst.hash)
	inst.recency = nil
	sh.lock.Release()
}

// Dominates reports whether a should fire before b under the set's
// strategy — the fixed total order the engine's multi-fire verification
// checks group prefixes against.
func (s *Set) Dominates(a, b *Instantiation) bool {
	return dominates(a, b, s.strategy)
}

// recomputeBest rescans the shard's live chains. Called with the shard
// lock held.
func (sh *shard) recomputeBest(st Strategy) {
	var best *Instantiation
	scanned := int64(0)
	for _, head := range sh.live {
		for cur := head; cur != nil; cur = cur.next {
			scanned++
			if best == nil || dominates(cur, best, st) {
				best = cur
			}
		}
	}
	sh.best = best
	sh.dirty = false
	sh.c.SelectRescans++
	sh.c.SelectScanned += scanned
}

// MarkFired records refraction for the chosen instantiation and
// compacts it out of the live index: it moves to the fired index —
// still findable by the terminal minus that will eventually retract it
// — and drops its recency key, so selection never examines it again.
func (s *Set) MarkFired(inst *Instantiation) {
	sh := s.enter(inst.hash)
	inst.Fired = true
	inst.leaked = true
	if unlinkPtr(sh.live, inst.hash, inst) {
		sh.nLive.Add(-1)
		inst.recency = nil
		inst.next = sh.fired[inst.hash]
		sh.fired[inst.hash] = inst
		sh.nFired++
	}
	if sh.best == inst {
		sh.best = nil
		sh.dirty = true
	}
	sh.lock.Release()
}

// StatsSnapshot sums the per-shard counters and gauges into one
// stats.Conflict record. Counter reads take each shard lock once; call
// it between phases, not per terminal activation.
func (s *Set) StatsSnapshot() stats.Conflict {
	out := stats.Conflict{Shards: int64(len(s.shards)), Selects: s.selects.Load()}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		c := sh.c
		c.Live = sh.nLive.Load()
		c.Fired = int64(sh.nFired)
		c.Pending = int64(sh.nPend)
		sh.lock.Release()
		c.Shards, c.Selects = 0, 0 // set-level fields, added once above
		out.Add(&c)
	}
	return out
}

// Inserts reports the total insert count (terminal + activations).
func (s *Set) Inserts() int64 { return s.StatsSnapshot().Inserts }

// Deletes reports the total delete count (terminal − activations).
func (s *Set) Deletes() int64 { return s.StatsSnapshot().Deletes }

// dominates reports whether a should be preferred over b.
func dominates(a, b *Instantiation, strategy Strategy) bool {
	if strategy == Mea {
		// Means-ends analysis: the instantiation whose first condition
		// element matched the more recent WME wins outright.
		at, bt := firstCETag(a), firstCETag(b)
		if at != bt {
			return at > bt
		}
	}
	// LEX: lexicographic comparison of descending time tags.
	if c := compareRecency(a.recency, b.recency); c != 0 {
		return c > 0
	}
	// Specificity.
	if a.Rule.Specificity != b.Rule.Specificity {
		return a.Rule.Specificity > b.Rule.Specificity
	}
	// Arbitrary but deterministic: rule order, then ascending tags.
	if a.Rule.Index != b.Rule.Index {
		return a.Rule.Index < b.Rule.Index
	}
	for i := range a.Wmes {
		if i >= len(b.Wmes) {
			break
		}
		if a.Wmes[i].TimeTag != b.Wmes[i].TimeTag {
			return a.Wmes[i].TimeTag < b.Wmes[i].TimeTag
		}
	}
	return false
}

func firstCETag(inst *Instantiation) int {
	if len(inst.Wmes) == 0 {
		return 0
	}
	return inst.Wmes[0].TimeTag
}

// compareRecency compares two descending tag lists: positive when a
// dominates. When one list is a prefix of the other, the longer list
// dominates (OPS5 LEX rule).
func compareRecency(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	switch {
	case len(a) > len(b):
		return 1
	case len(a) < len(b):
		return -1
	}
	return 0
}

// ExciseRule drops every instantiation of one production from the set —
// live, fired (the refraction ghosts awaiting their terminal minus) and
// parked deletes — and reports how many entries went. OPS5 excise
// semantics: the production's instantiations vanish outright, with no
// retraction traffic through the network (its terminal is already gone
// from the epoch). Dropped objects are never recycled; Select may have
// leaked some to the engine.
func (s *Set) ExciseRule(rule *rete.CompiledRule) (removed int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire()
		nLive := exciseMap(sh.live, rule)
		if nLive > 0 {
			sh.nLive.Add(int64(-nLive))
			if sh.best != nil && sh.best.Rule == rule {
				sh.best = nil
				sh.dirty = true
			}
		}
		nFired := exciseMap(sh.fired, rule)
		sh.nFired -= nFired
		nPend := exciseMap(sh.pending, rule)
		sh.nPend -= nPend
		removed += nLive + nFired + nPend
		sh.lock.Release()
	}
	return removed
}

// exciseMap rebuilds each bucket chain without the rule's entries,
// preserving the order of the survivors.
func exciseMap(m map[uint64]*Instantiation, rule *rete.CompiledRule) (removed int) {
	for h, head := range m {
		var newHead, tail *Instantiation
		n := 0
		for cur := head; cur != nil; {
			next := cur.next
			cur.next = nil
			if cur.Rule == rule {
				n++
			} else if tail == nil {
				newHead, tail = cur, cur
			} else {
				tail.next = cur
				tail = cur
			}
			cur = next
		}
		if n == 0 {
			m[h] = newHead // relinked unchanged
			continue
		}
		removed += n
		if newHead == nil {
			delete(m, h)
		} else {
			m[h] = newHead
		}
	}
	return removed
}
