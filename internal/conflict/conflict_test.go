package conflict_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/wm"
)

// mkRule builds a minimal compiled rule with the given index and
// specificity for conflict-set tests.
func mkRule(idx, spec int, name string) *rete.CompiledRule {
	return &rete.CompiledRule{
		Rule:        &ops5.Rule{Name: name},
		Index:       idx,
		Specificity: spec,
	}
}

func mkWME(tag int) *wm.WME {
	return &wm.WME{TimeTag: tag, Fields: []wm.Value{wm.Sym(1)}}
}

func lexSet() *conflict.Set { return conflict.NewSet() }
func meaSet() *conflict.Set { return conflict.New(conflict.Config{Strategy: conflict.Mea}) }

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]conflict.Strategy{
		"": conflict.Lex, "lex": conflict.Lex, "mea": conflict.Mea,
	} {
		got, err := conflict.ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := conflict.ParseStrategy("dfs"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown strategy")
	}
}

func TestShardCountRounding(t *testing.T) {
	if got := conflict.NewSet().Shards(); got != conflict.DefaultShards {
		t.Fatalf("default shards = %d, want %d", got, conflict.DefaultShards)
	}
	for in, want := range map[int]int{1: 1, 2: 2, 5: 8, 64: 64, 100: 128} {
		if got := conflict.New(conflict.Config{Shards: in}).Shards(); got != want {
			t.Fatalf("Shards:%d rounded to %d, want %d", in, got, want)
		}
	}
}

func TestLEXPrefersRecency(t *testing.T) {
	cs := lexSet()
	old := mkRule(0, 5, "old")
	young := mkRule(1, 5, "young")
	cs.InsertInstantiation(old, []*wm.WME{mkWME(1), mkWME(2)})
	cs.InsertInstantiation(young, []*wm.WME{mkWME(1), mkWME(9)})
	got := cs.Select()
	if got == nil || got.Rule != young {
		t.Fatalf("LEX selected %v, want young", got)
	}
}

func TestLEXComparesSortedDescending(t *testing.T) {
	cs := lexSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	// a: tags {9, 1}; b: tags {9, 5}. First elements tie at 9; b wins on 5 > 1.
	cs.InsertInstantiation(a, []*wm.WME{mkWME(9), mkWME(1)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(5), mkWME(9)}) // order in wmes irrelevant
	if got := cs.Select(); got.Rule != b {
		t.Fatalf("selected %s, want b", got.Rule.Rule.Name)
	}
}

func TestLEXLongerDominatesOnPrefixTie(t *testing.T) {
	cs := lexSet()
	shorter := mkRule(0, 5, "short")
	longer := mkRule(1, 5, "long")
	cs.InsertInstantiation(shorter, []*wm.WME{mkWME(7)})
	cs.InsertInstantiation(longer, []*wm.WME{mkWME(7), mkWME(3)})
	if got := cs.Select(); got.Rule != longer {
		t.Fatalf("selected %s, want longer instantiation", got.Rule.Rule.Name)
	}
}

func TestLEXSpecificityBreaksTies(t *testing.T) {
	cs := lexSet()
	plain := mkRule(0, 2, "plain")
	specific := mkRule(1, 9, "specific")
	w := mkWME(4)
	cs.InsertInstantiation(plain, []*wm.WME{w})
	cs.InsertInstantiation(specific, []*wm.WME{w})
	if got := cs.Select(); got.Rule != specific {
		t.Fatalf("selected %s, want specific", got.Rule.Rule.Name)
	}
}

func TestMEAUsesFirstCE(t *testing.T) {
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	// a's first CE wme is newer (tag 8), but b has higher overall recency.
	insert := func(cs *conflict.Set) {
		cs.InsertInstantiation(a, []*wm.WME{mkWME(8), mkWME(2)})
		cs.InsertInstantiation(b, []*wm.WME{mkWME(3), mkWME(9)})
	}
	mea := meaSet()
	insert(mea)
	if got := mea.Select(); got.Rule != a {
		t.Fatalf("MEA selected %s, want a (first-CE recency)", got.Rule.Rule.Name)
	}
	lex := lexSet()
	insert(lex)
	if got := lex.Select(); got.Rule != b {
		t.Fatalf("LEX selected %s, want b", got.Rule.Rule.Name)
	}
}

// The MEA tie-break chain: equal first-CE tags fall through to LEX
// recency, then specificity, then rule order.
func TestMEATieFallsThroughToLEX(t *testing.T) {
	cs := meaSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	// First CEs tie at tag 7; b's remaining recency {7,9} beats {7,2}.
	cs.InsertInstantiation(a, []*wm.WME{mkWME(7), mkWME(2)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(7), mkWME(9)})
	if got := cs.Select(); got.Rule != b {
		t.Fatalf("MEA first-CE tie selected %s, want b (LEX fallback)", got.Rule.Rule.Name)
	}
}

func TestMEATieFallsThroughToSpecificity(t *testing.T) {
	cs := meaSet()
	plain := mkRule(0, 2, "plain")
	specific := mkRule(1, 9, "specific")
	// Identical WMEs: first-CE and LEX recency both tie.
	w := []*wm.WME{mkWME(6), mkWME(3)}
	cs.InsertInstantiation(plain, w)
	cs.InsertInstantiation(specific, w)
	if got := cs.Select(); got.Rule != specific {
		t.Fatalf("MEA recency tie selected %s, want specific", got.Rule.Rule.Name)
	}
}

func TestMEATieFallsThroughToRuleOrder(t *testing.T) {
	cs := meaSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	w := []*wm.WME{mkWME(6)}
	cs.InsertInstantiation(b, w)
	cs.InsertInstantiation(a, w)
	if got := cs.Select(); got.Rule != a {
		t.Fatalf("full MEA tie selected %s, want a (rule order)", got.Rule.Rule.Name)
	}
}

func TestUseStrategyInvalidatesCachedBests(t *testing.T) {
	cs := lexSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	cs.InsertInstantiation(a, []*wm.WME{mkWME(8), mkWME(2)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(3), mkWME(9)})
	if got := cs.Select(); got.Rule != b {
		t.Fatalf("LEX selected %s, want b", got.Rule.Rule.Name)
	}
	cs.UseStrategy(conflict.Mea)
	if got := cs.Select(); got.Rule != a {
		t.Fatalf("after UseStrategy(Mea) selected %s, want a", got.Rule.Rule.Name)
	}
}

// Refraction and fired compaction: a fired instantiation is never
// selected again, leaves the live index (Live) but stays in the set
// (Len, Fired) until its terminal minus retracts it.
func TestRefractionCompactsFired(t *testing.T) {
	cs := lexSet()
	r := mkRule(0, 5, "r")
	w := []*wm.WME{mkWME(1)}
	cs.InsertInstantiation(r, w)
	inst := cs.Select()
	cs.MarkFired(inst)
	if got := cs.Select(); got != nil {
		t.Fatalf("fired instantiation selected again: %v", got)
	}
	if cs.Live() != 0 || cs.Fired() != 1 || cs.Len() != 1 {
		t.Fatalf("after fire: live=%d fired=%d len=%d, want 0/1/1", cs.Live(), cs.Fired(), cs.Len())
	}
	// The WME retract eventually reaches the terminal: the fired entry
	// must still be findable, and removing it drains the set fully.
	cs.RemoveInstantiation(r, w)
	if cs.Live() != 0 || cs.Fired() != 0 || cs.Len() != 0 || !cs.Drained() {
		t.Fatalf("after retract: live=%d fired=%d len=%d drained=%v, want all zero/true",
			cs.Live(), cs.Fired(), cs.Len(), cs.Drained())
	}
}

// Long-running sessions fire many instantiations; the fired entries
// must not linger once their WMEs retract (the old set kept every
// fired instantiation forever).
func TestFiredSetDoesNotGrowUnbounded(t *testing.T) {
	cs := lexSet()
	r := mkRule(0, 5, "r")
	for i := 1; i <= 1000; i++ {
		w := []*wm.WME{mkWME(i)}
		cs.InsertInstantiation(r, w)
		cs.MarkFired(cs.Select())
		cs.RemoveInstantiation(r, w)
	}
	if cs.Len() != 0 || cs.Fired() != 0 {
		t.Fatalf("len=%d fired=%d after 1000 fire/retract rounds, want 0/0", cs.Len(), cs.Fired())
	}
}

func TestRemoveInstantiation(t *testing.T) {
	cs := lexSet()
	r := mkRule(0, 5, "r")
	w := []*wm.WME{mkWME(1), mkWME(2)}
	cs.InsertInstantiation(r, w)
	cs.RemoveInstantiation(r, w)
	if cs.Len() != 0 {
		t.Fatalf("Len = %d after remove", cs.Len())
	}
	if got := cs.Select(); got != nil {
		t.Fatalf("removed instantiation still selectable")
	}
}

func TestEarlyDeleteAnnihilatesWithInsert(t *testing.T) {
	cs := lexSet()
	r := mkRule(0, 5, "r")
	w := []*wm.WME{mkWME(1)}
	// Out-of-order terminal activations, as the parallel matcher produces.
	cs.RemoveInstantiation(r, w)
	if cs.Drained() {
		t.Fatal("pending delete should be parked")
	}
	cs.InsertInstantiation(r, w)
	if !cs.Drained() {
		t.Fatal("insert should annihilate the parked delete")
	}
	if cs.Len() != 0 {
		t.Fatalf("Len = %d, want 0", cs.Len())
	}
	if st := cs.StatsSnapshot(); st.Annihilations != 1 || st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v, want 1 insert/delete/annihilation", st)
	}
}

func TestDeterministicFinalTieBreak(t *testing.T) {
	cs := lexSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	w := mkWME(3)
	cs.InsertInstantiation(b, []*wm.WME{w})
	cs.InsertInstantiation(a, []*wm.WME{w})
	first := cs.Select()
	for i := 0; i < 10; i++ {
		if got := cs.Select(); got != first {
			t.Fatal("Select is not deterministic under full ties")
		}
	}
	if first.Rule != a {
		t.Fatalf("tie should break to lower rule index, got %s", first.Rule.Rule.Name)
	}
}

// Removing the cached best must surface the runner-up on the next
// Select (lazy invalidation + rescan).
func TestSelectAfterBestRemoved(t *testing.T) {
	cs := conflict.New(conflict.Config{Shards: 4})
	rules := make([]*rete.CompiledRule, 8)
	for i := range rules {
		rules[i] = mkRule(i, 5, fmt.Sprintf("r%d", i))
		cs.InsertInstantiation(rules[i], []*wm.WME{mkWME(i + 1)})
	}
	for i := len(rules) - 1; i >= 0; i-- {
		got := cs.Select()
		if got == nil || got.Rule != rules[i] {
			t.Fatalf("step %d selected %v, want r%d", i, got, i)
		}
		cs.RemoveInstantiation(rules[i], got.Wmes)
	}
	if cs.Select() != nil || cs.Len() != 0 {
		t.Fatal("set should be empty")
	}
}

func TestSnapshotIncludesFired(t *testing.T) {
	cs := lexSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	cs.InsertInstantiation(a, []*wm.WME{mkWME(1)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(2)})
	cs.MarkFired(cs.Select())
	snap := cs.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2 (live + fired)", len(snap))
	}
	fired := 0
	for _, inst := range snap {
		if inst.Fired {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("snapshot has %d fired entries, want 1", fired)
	}
}

// Concurrent terminal plus/minus storm, run under -race by make check:
// every (rule, wmes) key gets exactly one insert and one remove from
// different goroutines in arbitrary order, so every pair must either
// cancel live or annihilate via the pending-delete path, leaving the
// set empty and drained.
func TestConcurrentPlusMinusStorm(t *testing.T) {
	for _, shards := range []int{1, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cs := conflict.New(conflict.Config{Shards: shards})
			const workers = 8
			const perWorker = 500
			rules := [3]*rete.CompiledRule{
				mkRule(0, 1, "r0"), mkRule(1, 2, "r1"), mkRule(2, 3, "r2"),
			}
			// Pre-build the keys so inserter and remover g use identical
			// (rule, wmes) identities.
			keys := make([][][]*wm.WME, workers)
			for g := range keys {
				keys[g] = make([][]*wm.WME, perWorker)
				for i := range keys[g] {
					tag := g*perWorker + i + 1
					keys[g][i] = []*wm.WME{mkWME(tag), mkWME(tag + 1)}
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(2)
				go func(g int) {
					defer wg.Done()
					for i, w := range keys[g] {
						cs.InsertInstantiation(rules[i%len(rules)], w)
					}
				}(g)
				go func(g int) {
					defer wg.Done()
					for i, w := range keys[g] {
						cs.RemoveInstantiation(rules[i%len(rules)], w)
					}
				}(g)
			}
			wg.Wait()
			if !cs.Drained() {
				t.Fatal("pending deletes remain after the storm")
			}
			if cs.Len() != 0 || cs.Live() != 0 {
				t.Fatalf("len=%d live=%d after balanced storm, want 0", cs.Len(), cs.Live())
			}
			st := cs.StatsSnapshot()
			want := int64(workers * perWorker)
			if st.Inserts != want || st.Deletes != want {
				t.Fatalf("stats = %+v, want %d inserts and deletes", st, want)
			}
		})
	}
}

// Concurrent inserts with interleaved Selects: Select may run from the
// control process while this test's activations land, and the final
// state must contain every inserted instantiation.
func TestConcurrentInsertWithSelect(t *testing.T) {
	cs := conflict.New(conflict.Config{Shards: 8})
	const workers = 4
	const perWorker = 300
	r := mkRule(0, 5, "r")
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cs.InsertInstantiation(r, []*wm.WME{mkWME(g*perWorker + i + 1)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			cs.Select()
		}
	}()
	wg.Wait()
	<-done
	if cs.Len() != workers*perWorker {
		t.Fatalf("len=%d, want %d", cs.Len(), workers*perWorker)
	}
	got := cs.Select()
	if got == nil || got.Wmes[0].TimeTag != workers*perWorker {
		t.Fatalf("final Select = %v, want the most recent tag %d", got, workers*perWorker)
	}
}

// TestStripingReducesSpins is the acceptance check for the sharding
// itself: four workers churning disjoint keys against one stripe
// serialize on one spin lock, against 64 stripes they (almost) never
// observe a busy lock. GOMAXPROCS is forced to 4 so the contrast shows
// even on small hosts (preemption while holding the lock makes the
// other workers spin).
func TestStripingReducesSpins(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	spins := func(shards int) (int64, int64) {
		cs := conflict.New(conflict.Config{Shards: shards})
		r := mkRule(0, 5, "r")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				w := []*wm.WME{mkWME(g + 1)}
				for i := 0; i < 200000; i++ {
					cs.InsertInstantiation(r, w)
					cs.RemoveInstantiation(r, w)
				}
			}(g)
		}
		wg.Wait()
		st := cs.StatsSnapshot()
		return st.ShardSpins, st.ShardAcquires
	}
	spins1, acq1 := spins(1)
	spins64, acq64 := spins(64)
	t.Logf("shards=1: %d spins / %d acquires; shards=64: %d spins / %d acquires",
		spins1, acq1, spins64, acq64)
	if spins1 < 1000 {
		t.Skip("host too serial to contend the global stripe; nothing to compare")
	}
	if spins64 >= spins1/2 {
		t.Fatalf("striping did not reduce lock spins: %d at 64 shards vs %d at 1", spins64, spins1)
	}
}

// ExciseRule removes every trace of a rule — live, fired, and parked
// pending deletes — across all shards, leaving other rules intact.
func TestExciseRuleRemovesAllStates(t *testing.T) {
	cs := conflict.New(conflict.Config{Shards: 4})
	doomed := mkRule(0, 5, "doomed")
	keep := mkRule(1, 5, "keep")
	// Live entries for both rules, spread across shards; doomed holds
	// the most recent tags so Select lands on it first.
	for i := 1; i <= 6; i++ {
		cs.InsertInstantiation(doomed, []*wm.WME{mkWME(i + 100)})
		cs.InsertInstantiation(keep, []*wm.WME{mkWME(i)})
	}
	// One fired entry for the doomed rule (it must be purged too).
	inst := cs.Select()
	if inst.Rule != doomed {
		t.Fatalf("setup: Select = %v, want doomed (most recent)", inst)
	}
	cs.MarkFired(inst)
	// And one parked pending delete (out-of-order minus) for it.
	cs.RemoveInstantiation(doomed, []*wm.WME{mkWME(999)})

	removed := cs.ExciseRule(doomed)
	if removed == 0 {
		t.Fatal("ExciseRule removed nothing")
	}
	for _, got := range cs.Snapshot() {
		if got.Rule == doomed {
			t.Fatalf("excised rule still present: %v", got)
		}
	}
	if cs.Live()+cs.Fired() != cs.Len() {
		t.Fatalf("live=%d fired=%d len=%d inconsistent after excise", cs.Live(), cs.Fired(), cs.Len())
	}
	// Only keep's entries survive, and selection still works.
	for i := 0; i < 6; i++ {
		got := cs.Select()
		if got == nil || got.Rule != keep {
			t.Fatalf("post-excise Select = %v, want keep", got)
		}
		cs.RemoveInstantiation(keep, got.Wmes)
	}
	if !cs.Drained() {
		t.Fatal("excise left parked pending deletes behind")
	}
	if cs.Len() != 0 {
		t.Fatalf("len = %d after draining survivors, want 0", cs.Len())
	}
}

// Excising the cached best must not leave a stale Select result.
func TestExciseRuleInvalidatesCachedBest(t *testing.T) {
	cs := lexSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	cs.InsertInstantiation(a, []*wm.WME{mkWME(9)}) // most recent: cached best
	cs.InsertInstantiation(b, []*wm.WME{mkWME(1)})
	if got := cs.Select(); got.Rule != a {
		t.Fatalf("Select = %v, want a", got)
	}
	cs.ExciseRule(a)
	if got := cs.Select(); got == nil || got.Rule != b {
		t.Fatalf("Select after excising cached best = %v, want b", got)
	}
}

// Property: dominance is asymmetric — a and b can never dominate each
// other — across randomized instantiations under both strategies.
func TestDominanceAsymmetric(t *testing.T) {
	f := func(tagsA, tagsB []uint8, specA, specB uint8, mea bool) bool {
		st := conflict.Lex
		if mea {
			st = conflict.Mea
		}
		mkWmes := func(tags []uint8) []*wm.WME {
			wmes := make([]*wm.WME, 0, len(tags)%5+1)
			for i := 0; i <= len(tags)%5 && i < len(tags); i++ {
				wmes = append(wmes, mkWME(int(tags[i])+1))
			}
			if len(wmes) == 0 {
				wmes = append(wmes, mkWME(1))
			}
			return wmes
		}
		// Use a shared set so Select's dominance drives the comparison.
		cs := conflict.New(conflict.Config{Strategy: st})
		cs.InsertInstantiation(mkRule(0, int(specA), "a"), mkWmes(tagsA))
		cs.InsertInstantiation(mkRule(1, int(specB), "b"), mkWmes(tagsB))
		first := cs.Select()
		// Selecting repeatedly is stable (deterministic total preorder).
		for i := 0; i < 3; i++ {
			if cs.Select() != first {
				return false
			}
		}
		return first != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
