package conflict_test

import (
	"testing"
	"testing/quick"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/wm"
)

// mkRule builds a minimal compiled rule with the given index and
// specificity for conflict-set tests.
func mkRule(idx, spec int, name string) *rete.CompiledRule {
	return &rete.CompiledRule{
		Rule:        &ops5.Rule{Name: name},
		Index:       idx,
		Specificity: spec,
	}
}

func mkWME(tag int) *wm.WME {
	return &wm.WME{TimeTag: tag, Fields: []wm.Value{wm.Sym(1)}}
}

func TestLEXPrefersRecency(t *testing.T) {
	cs := conflict.NewSet()
	old := mkRule(0, 5, "old")
	young := mkRule(1, 5, "young")
	cs.InsertInstantiation(old, []*wm.WME{mkWME(1), mkWME(2)})
	cs.InsertInstantiation(young, []*wm.WME{mkWME(1), mkWME(9)})
	got := cs.Select("lex")
	if got == nil || got.Rule != young {
		t.Fatalf("LEX selected %v, want young", got)
	}
}

func TestLEXComparesSortedDescending(t *testing.T) {
	cs := conflict.NewSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	// a: tags {9, 1}; b: tags {9, 5}. First elements tie at 9; b wins on 5 > 1.
	cs.InsertInstantiation(a, []*wm.WME{mkWME(9), mkWME(1)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(5), mkWME(9)}) // order in wmes irrelevant
	if got := cs.Select("lex"); got.Rule != b {
		t.Fatalf("selected %s, want b", got.Rule.Rule.Name)
	}
}

func TestLEXLongerDominatesOnPrefixTie(t *testing.T) {
	cs := conflict.NewSet()
	shorter := mkRule(0, 5, "short")
	longer := mkRule(1, 5, "long")
	cs.InsertInstantiation(shorter, []*wm.WME{mkWME(7)})
	cs.InsertInstantiation(longer, []*wm.WME{mkWME(7), mkWME(3)})
	if got := cs.Select("lex"); got.Rule != longer {
		t.Fatalf("selected %s, want longer instantiation", got.Rule.Rule.Name)
	}
}

func TestLEXSpecificityBreaksTies(t *testing.T) {
	cs := conflict.NewSet()
	plain := mkRule(0, 2, "plain")
	specific := mkRule(1, 9, "specific")
	w := mkWME(4)
	cs.InsertInstantiation(plain, []*wm.WME{w})
	cs.InsertInstantiation(specific, []*wm.WME{w})
	if got := cs.Select("lex"); got.Rule != specific {
		t.Fatalf("selected %s, want specific", got.Rule.Rule.Name)
	}
}

func TestMEAUsesFirstCE(t *testing.T) {
	cs := conflict.NewSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	// a's first CE wme is newer (tag 8), but b has higher overall recency.
	cs.InsertInstantiation(a, []*wm.WME{mkWME(8), mkWME(2)})
	cs.InsertInstantiation(b, []*wm.WME{mkWME(3), mkWME(9)})
	if got := cs.Select("mea"); got.Rule != a {
		t.Fatalf("MEA selected %s, want a (first-CE recency)", got.Rule.Rule.Name)
	}
	if got := cs.Select("lex"); got.Rule != b {
		t.Fatalf("LEX selected %s, want b", got.Rule.Rule.Name)
	}
}

func TestRefraction(t *testing.T) {
	cs := conflict.NewSet()
	r := mkRule(0, 5, "r")
	cs.InsertInstantiation(r, []*wm.WME{mkWME(1)})
	inst := cs.Select("lex")
	cs.MarkFired(inst)
	if got := cs.Select("lex"); got != nil {
		t.Fatalf("fired instantiation selected again: %v", got)
	}
}

func TestRemoveInstantiation(t *testing.T) {
	cs := conflict.NewSet()
	r := mkRule(0, 5, "r")
	w := []*wm.WME{mkWME(1), mkWME(2)}
	cs.InsertInstantiation(r, w)
	cs.RemoveInstantiation(r, w)
	if cs.Len() != 0 {
		t.Fatalf("Len = %d after remove", cs.Len())
	}
	if got := cs.Select("lex"); got != nil {
		t.Fatalf("removed instantiation still selectable")
	}
}

func TestEarlyDeleteAnnihilatesWithInsert(t *testing.T) {
	cs := conflict.NewSet()
	r := mkRule(0, 5, "r")
	w := []*wm.WME{mkWME(1)}
	// Out-of-order terminal activations, as the parallel matcher produces.
	cs.RemoveInstantiation(r, w)
	if cs.Drained() {
		t.Fatal("pending delete should be parked")
	}
	cs.InsertInstantiation(r, w)
	if !cs.Drained() {
		t.Fatal("insert should annihilate the parked delete")
	}
	if cs.Len() != 0 {
		t.Fatalf("Len = %d, want 0", cs.Len())
	}
}

func TestDeterministicFinalTieBreak(t *testing.T) {
	cs := conflict.NewSet()
	a := mkRule(0, 5, "a")
	b := mkRule(1, 5, "b")
	w := mkWME(3)
	cs.InsertInstantiation(b, []*wm.WME{w})
	cs.InsertInstantiation(a, []*wm.WME{w})
	first := cs.Select("lex")
	for i := 0; i < 10; i++ {
		if got := cs.Select("lex"); got != first {
			t.Fatal("Select is not deterministic under full ties")
		}
	}
	if first.Rule != a {
		t.Fatalf("tie should break to lower rule index, got %s", first.Rule.Rule.Name)
	}
}

// Property: dominance is asymmetric — a and b can never dominate each
// other — across randomized instantiations under both strategies.
func TestDominanceAsymmetric(t *testing.T) {
	f := func(tagsA, tagsB []uint8, specA, specB uint8, mea bool) bool {
		mk := func(tags []uint8, idx int, spec uint8) *conflict.Instantiation {
			wmes := make([]*wm.WME, 0, len(tags)%5+1)
			for i := 0; i <= len(tags)%5 && i < len(tags); i++ {
				wmes = append(wmes, mkWME(int(tags[i])+1))
			}
			if len(wmes) == 0 {
				wmes = append(wmes, mkWME(1))
			}
			cs := conflict.NewSet()
			cs.InsertInstantiation(mkRule(idx, int(spec), "r"), wmes)
			return cs.Snapshot()[0]
		}
		a := mk(tagsA, 0, specA)
		b := mk(tagsB, 1, specB)
		strategy := "lex"
		if mea {
			strategy = "mea"
		}
		// Use a shared set so Select's dominance drives the comparison.
		cs := conflict.NewSet()
		cs.InsertInstantiation(a.Rule, a.Wmes)
		cs.InsertInstantiation(b.Rule, b.Wmes)
		first := cs.Select(strategy)
		// Selecting repeatedly is stable (deterministic total preorder).
		for i := 0; i < 3; i++ {
			if cs.Select(strategy) != first {
				return false
			}
		}
		return first != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
