// Session-spawn and crash-recovery benchmarks for the durability
// layer. These drive the real session manager (internal/server), not a
// bare matcher: the fork-vs-cold comparison measures exactly what a
// client sees — time from "I want a session over this warm rule base"
// to "my first WM batch has been served" — and the recovery benchmark
// measures delta-log replay throughput on restart. cmd/psmbench
// -durability runs on top of this file and records the results in
// BENCH_durability.json; the bench-smoke gate pins the fork-vs-cold
// ratio, which is a host-independent structural property (a fork skips
// parse, network compile, RHS compile and the base-fact match).
package tables

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

// DurabilityBenchOptions sizes the durability benchmarks.
type DurabilityBenchOptions struct {
	// Items is the warm rule base: that many (item ...) facts asserted
	// into the template before it settles (default 2000).
	Items int
	// Rules is the generated rule count (default 64). Cold spawn scales
	// with it (parse, network compile, RHS compile, alpha fan-out of the
	// base-fact match); fork does not — the network is shared.
	Rules int
	// Reps per spawn mode; the median is recorded (default 5).
	Reps int
	// Batches of WM churn written to the delta log before the simulated
	// crash in the recovery benchmark (default 50).
	Batches int
	// DataDir hosts the durable phase; empty = a throwaway temp dir.
	DataDir string
	// Backend picks the matcher (default "vs2", the fork fast path).
	Backend string
}

func (o *DurabilityBenchOptions) fill() {
	if o.Items <= 0 {
		o.Items = 2000
	}
	if o.Rules <= 0 {
		o.Rules = 64
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.Batches <= 0 {
		o.Batches = 50
	}
	if o.Backend == "" {
		o.Backend = "vs2"
	}
}

// DurabilityReport is the BENCH_durability.json payload.
type DurabilityReport struct {
	Backend string `json:"backend"`
	Items   int    `json:"items"`
	Rules   int    `json:"rules"`
	Reps    int    `json:"reps"`

	// Session spawn: median µs from the create/fork call to the first
	// served WM batch. Cold pays parse+compile+RHS+base-fact match (the
	// parse/compile half on a cache-defeating program variant, as a real
	// new rule base would); fork structure-copies the template.
	ColdSpawnUs  int64   `json:"cold_spawn_us"`
	ForkSpawnUs  int64   `json:"fork_spawn_us"`
	ForkSpeedup  float64 `json:"fork_speedup"`
	ForkWMShared int     `json:"fork_wm_size"` // WM size every fork starts with

	// Crash recovery: delta-log replay on restart.
	RecoveryBatches   int     `json:"recovery_batches"`
	RecoveryRecords   int64   `json:"recovery_records"`
	RecoveryUs        int64   `json:"recovery_us"`
	RecoveryRecPerSec float64 `json:"recovery_records_per_sec"`
	LogBytes          int64   `json:"log_bytes"`
}

// durBenchSrc generates the spawn workload: rules two-way joins over
// the warm item base, each rule keyed to one item by constant tests so
// a probe fires exactly one of them. Every base-fact assertion runs the
// full alpha fan-out (one constant test per rule), so the cold match
// cost scales with rules × items while the fork cost does not. The
// variant comment defeats the byte-identical program cache for cold
// spawns — a genuinely new rule base never gets a cache hit.
func durBenchSrc(rules, variant int) string {
	var b strings.Builder
	b.WriteString("(literalize item n val)\n(literalize probe n)\n")
	for r := 1; r <= rules; r++ {
		fmt.Fprintf(&b, `(p bump-%d
  (probe ^n %d)
  (item ^n %d ^val <v>)
-->
  (modify 2 ^val (compute <v> + 1))
  (remove 1))
`, r, r, r)
	}
	fmt.Fprintf(&b, "; variant %d\n", variant)
	return b.String()
}

func durItems(n int) []server.WMEInput {
	out := make([]server.WMEInput, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, server.WMEInput{Class: "item", Attrs: map[string]any{"n": i, "val": 0}})
	}
	return out
}

func durProbe(n int) *server.BatchRequest {
	return &server.BatchRequest{
		Asserts:   []server.WMEInput{{Class: "probe", Attrs: map[string]any{"n": n}}},
		NoFirings: true,
	}
}

func median(us []int64) int64 {
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	return us[len(us)/2]
}

// RunDurabilityBench measures fork-vs-cold session spawn and
// crash-recovery replay. Fast enough at default sizes for CI smoke use.
func RunDurabilityBench(opt DurabilityBenchOptions) (*DurabilityReport, error) {
	opt.fill()
	rep := &DurabilityReport{Backend: opt.Backend, Items: opt.Items, Rules: opt.Rules, Reps: opt.Reps, RecoveryBatches: opt.Batches}

	// ---- Spawn comparison (memory-only server: isolates spawn cost
	// from the fsync policy, which is a separate axis).
	srv := server.New(server.Options{MaxSessions: 4096, DefaultTimeout: time.Minute})
	defer srv.Close()

	items := durItems(opt.Items)
	tinfo, err := srv.CreateTemplate(&server.TemplateConfig{
		SessionConfig: server.SessionConfig{Program: durBenchSrc(opt.Rules, 0), Matcher: opt.Backend},
		Asserts:       items,
	})
	if err != nil {
		return nil, fmt.Errorf("create template: %w", err)
	}

	// One unmeasured warm-up per mode: the first cold create pays
	// one-time lazy initialisation and the first fork warms the clone
	// path's allocator size classes; neither belongs in the median.
	if info, err := srv.CreateSession(server.SessionConfig{
		Program: durBenchSrc(opt.Rules, -1), Matcher: opt.Backend,
	}); err == nil {
		_ = srv.DeleteSession(info.ID)
	}
	if fr, err := srv.Fork(tinfo.ID); err == nil {
		_ = srv.DeleteSession(fr.ID)
	}

	cold := make([]int64, 0, opt.Reps)
	for r := 1; r <= opt.Reps; r++ {
		start := time.Now()
		info, err := srv.CreateSession(server.SessionConfig{
			Program: durBenchSrc(opt.Rules, r), Matcher: opt.Backend,
		})
		if err != nil {
			return nil, fmt.Errorf("cold create: %w", err)
		}
		if _, err := srv.Batch(info.ID, &server.BatchRequest{Asserts: items, NoFirings: true}); err != nil {
			return nil, fmt.Errorf("cold base facts: %w", err)
		}
		if _, err := srv.Batch(info.ID, durProbe(r%opt.Rules+1)); err != nil {
			return nil, fmt.Errorf("cold probe: %w", err)
		}
		cold = append(cold, time.Since(start).Microseconds())
		_ = srv.DeleteSession(info.ID)
	}

	fork := make([]int64, 0, opt.Reps)
	for r := 1; r <= opt.Reps; r++ {
		start := time.Now()
		fr, err := srv.Fork(tinfo.ID)
		if err != nil {
			return nil, fmt.Errorf("fork: %w", err)
		}
		if _, err := srv.Batch(fr.ID, durProbe(r%opt.Rules+1)); err != nil {
			return nil, fmt.Errorf("fork probe: %w", err)
		}
		fork = append(fork, time.Since(start).Microseconds())
		rep.ForkWMShared = fr.WMSize
		_ = srv.DeleteSession(fr.ID)
	}

	rep.ColdSpawnUs = median(cold)
	rep.ForkSpawnUs = median(fork)
	if rep.ForkSpawnUs > 0 {
		rep.ForkSpeedup = float64(rep.ColdSpawnUs) / float64(rep.ForkSpawnUs)
	}

	// ---- Crash recovery: churn a durable session, abandon the server,
	// time the replay a fresh server pays on startup.
	dir := opt.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "opsdurbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	dsrv := server.New(server.Options{
		DataDir: dir, Durability: "none", DefaultTimeout: time.Minute,
	})
	defer dsrv.Close()
	if _, err := dsrv.EnableDurability(); err != nil {
		return nil, err
	}
	info, err := dsrv.CreateSession(server.SessionConfig{
		Program: durBenchSrc(opt.Rules, 0), Matcher: opt.Backend,
	})
	if err != nil {
		return nil, err
	}
	if _, err := dsrv.Batch(info.ID, &server.BatchRequest{Asserts: items, NoFirings: true}); err != nil {
		return nil, err
	}
	for b := 0; b < opt.Batches; b++ {
		var req server.BatchRequest
		req.NoFirings = true
		for k := 0; k < 8; k++ {
			req.Asserts = append(req.Asserts, server.WMEInput{
				Class: "probe", Attrs: map[string]any{"n": (b*8+k)%opt.Rules + 1},
			})
		}
		if _, err := dsrv.Batch(info.ID, &req); err != nil {
			return nil, fmt.Errorf("churn batch %d: %w", b, err)
		}
	}
	dsnap := dsrv.Snapshot()
	rep.LogBytes = dsnap.Durability.LogBytes

	rsrv := server.New(server.Options{DataDir: dir, Durability: "none", DefaultTimeout: time.Minute})
	defer rsrv.Close()
	start := time.Now()
	if _, err := rsrv.EnableDurability(); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	rep.RecoveryUs = time.Since(start).Microseconds()
	rep.RecoveryRecords = rsrv.Snapshot().Durability.ReplayedRecords
	if rep.RecoveryUs > 0 {
		rep.RecoveryRecPerSec = float64(rep.RecoveryRecords) / (float64(rep.RecoveryUs) / 1e6)
	}
	return rep, nil
}
