package tables

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// baselinePath is the checked-in regression baseline for `make
// bench-smoke` (repo root, next to BENCH_match.json).
const baselinePath = "../../BENCH_baseline.json"

// benchBaseline is the BENCH_baseline.json schema. Wall-clock numbers
// are useless as CI gates on shared hosts, so the smoke test checks
// host-independent invariants instead: scaling ratios (conflict-set op
// cost must not grow with the live-set size) and allocation discipline
// (allocs/op of the match kernels and conflict ops are deterministic
// properties of the code, not the machine).
type benchBaseline struct {
	// MaxChurnRatio bounds churn ns/op at live=10000 over live=1000 for
	// the same shard/proc point: O(1) insert+remove means ~1.0; the old
	// O(n) scans put it near 10.
	MaxChurnRatio float64 `json:"max_churn_ratio"`
	// MaxSelectRatio bounds warm Select ns/op at live=10000 over
	// live=1000 at the same shard count: cached shard bests mean ~1.0;
	// the old full scan put it near 10.
	MaxSelectRatio float64 `json:"max_select_ratio"`
	// MaxChurnAllocs caps steady-state allocs per churn op (pooled
	// instantiations make it 0).
	MaxChurnAllocs int64 `json:"max_churn_allocs_per_op"`
	// KernelAllocs maps "kernel/pN" to baseline allocs/op of one
	// assert-all/retract-all round; the gate allows 25%+2 headroom.
	KernelAllocs map[string]int64 `json:"kernel_allocs_per_op"`
	// MaxBigmemOppPerPair bounds the segregated layout's selectivity on
	// the bigmem kernel: opposite-memory tokens examined per emitted
	// pair. The (node, hash) runs make this ~1.0; a broken sub-index
	// falls back toward the whole-line scan and blows past it.
	MaxBigmemOppPerPair float64 `json:"max_bigmem_opp_per_pair"`
	// MinBigmemGain is the minimum list/runs ratio of opposite-memory
	// tokens examined on the same bigmem workload — the line-scan work
	// the segregated layout must eliminate.
	MinBigmemGain float64 `json:"min_bigmem_gain"`
	// MaxBigmemDepth caps the segregated table's high-water line depth:
	// adaptive growth must keep lines shallow as the WM climbs.
	MaxBigmemDepth int64 `json:"max_bigmem_line_depth"`
	// ActGroupedShare maps workload name to the minimum fraction of
	// cycles a FireBatch=8 run must retire inside committed multi-fire
	// groups. Group formation depends only on the program's rule
	// structure (GroupSafe RHS, disjoint read/write sets), so the share
	// is a deterministic property of the workload — a drop means the
	// planner stopped admitting members, not that the host got slow.
	ActGroupedShare map[string]float64 `json:"act_grouped_share"`
	// MaxActRollbackRatio caps rolled-back speculative fires over all
	// speculative fires at FireBatch=8. These workloads group only
	// provably non-conflicting firings, so rollbacks should be rare;
	// a climb means the planner is admitting members the post-drain
	// dominance check keeps rejecting (wasted staging work).
	MaxActRollbackRatio float64 `json:"max_act_rollback_ratio"`
	// MinSkewGain is the minimum source/planned ratio of opposite-memory
	// tokens examined on the skewed-value join kernel. The join-order
	// planner moves the constant-tested conf element ahead of the skewed
	// item x part join, so the ratio is a structural property of the
	// compiled order (measured ~14x); falling under the floor means the
	// planner stopped reordering or the reordered network re-grew the
	// cross-like token memory.
	MinSkewGain float64 `json:"min_skew_gain"`
	// MinCrossContainment is the minimum unbudgeted/budgeted ratio of
	// opposite-memory tokens examined on the no-equality-test cross
	// product kernel. The match budget quarantines the quadratic rule on
	// its first over-budget cycle, so a collapse toward 1 means the
	// budget stopped tripping (measured ~400x).
	MinCrossContainment float64 `json:"min_cross_containment"`
	// MaxChainNullActRatio caps unlinked/linked buffered activations on
	// the gated dependent-chain kernel: with the head gate closed, every
	// right activation into the chain is a null update that unlinking
	// must avoid outright (measured ~0.11).
	MaxChainNullActRatio float64 `json:"max_chain_null_act_ratio"`
	// MinChainUnlinkSkips is the minimum unlink-skip count on the same
	// gated chain run — the activations the dead joins never saw.
	MinChainUnlinkSkips int64 `json:"min_chain_unlink_skips"`
	// MinClusterScalingX2 is the minimum 2-backend/1-backend aggregate
	// batches/sec ratio on the cluster sweep's best workload. Only
	// enforced when the host has enough CPUs for the fleet
	// (ClusterReport.Oversubscribed false); on a starved host the ratio
	// measures timesharing, not the fabric, and the gate skips.
	MinClusterScalingX2 float64 `json:"min_cluster_scaling_x2"`
	// MinClusterCacheHitRate is the minimum content-addressed program
	// cache hit rate over the multi-backend cells: every session after
	// the first per backend must create by hash without re-shipping or
	// recompiling the source. Structural — a drop means the proxy
	// stopped tracking which backends hold which hashes.
	MinClusterCacheHitRate float64 `json:"min_cluster_cache_hit_rate"`
	// MinForkSpeedup is the minimum fork-vs-cold session-spawn ratio
	// (time to a served first WM batch). Forking a warm template
	// structure-copies its state and skips parse, network compile, RHS
	// compile and the base-fact match, so the ratio is a structural
	// property — losing the copy-on-write fast path (falling back to a
	// re-match) collapses it toward 1. Measured ~10-25x; gated well
	// below to absorb shared-host noise.
	MinForkSpeedup float64 `json:"min_fork_speedup"`
}

// TestBenchSmoke is the `make bench-smoke` gate: a 1-rep match-kernel +
// conflict sweep that fails on regression against BENCH_baseline.json.
// Skipped unless BENCH_SMOKE is set (it costs ~1 minute);
// BENCH_SMOKE=update rewrites the baseline from measurement instead of
// checking.
func TestBenchSmoke(t *testing.T) {
	mode := os.Getenv("BENCH_SMOKE")
	if mode == "" {
		t.Skip("set BENCH_SMOKE=1 (make bench-smoke) to run")
	}
	var base benchBaseline
	if mode != "update" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			t.Fatalf("read baseline (regenerate with BENCH_SMOKE=update): %v", err)
		}
		if err := json.Unmarshal(data, &base); err != nil {
			t.Fatalf("parse baseline: %v", err)
		}
	}

	pts := RunConflictBench(ConflictBenchOptions{
		Lives: []int{1000, 10000}, Shards: []int{1, 64}, Procs: []int{1, 4},
	})
	ns := map[string]int64{}
	for _, p := range pts {
		ns[fmt.Sprintf("%s/live%d/s%d/p%d", p.Op, p.Live, p.Shards, p.Procs)] = p.NsPerOp
		t.Logf("conflict %s", FormatConflictPoint(p))
		if mode != "update" && p.Op == "churn" && p.AllocsPerOp > base.MaxChurnAllocs {
			t.Errorf("churn live=%d shards=%d procs=%d: %d allocs/op, baseline cap %d",
				p.Live, p.Shards, p.Procs, p.AllocsPerOp, base.MaxChurnAllocs)
		}
	}
	ratio := func(op string, shards, procs int) float64 {
		lo := ns[fmt.Sprintf("%s/live1000/s%d/p%d", op, shards, procs)]
		hi := ns[fmt.Sprintf("%s/live10000/s%d/p%d", op, shards, procs)]
		if lo == 0 {
			return 0
		}
		return float64(hi) / float64(lo)
	}
	for _, shards := range []int{1, 64} {
		for _, procs := range []int{1, 4} {
			if r := ratio("churn", shards, procs); mode != "update" && r > base.MaxChurnRatio {
				t.Errorf("churn shards=%d procs=%d: 10k-live/1k-live ns ratio %.2f > %.2f — insert/remove is scaling with the live set",
					shards, procs, r, base.MaxChurnRatio)
			}
		}
		if r := ratio("select", shards, 1); mode != "update" && r > base.MaxSelectRatio {
			t.Errorf("select shards=%d: 10k-live/1k-live ns ratio %.2f > %.2f — Select is scaling with the live set",
				shards, r, base.MaxSelectRatio)
		}
	}

	kernels := map[string]int64{}
	for _, name := range KernelNames() {
		k, err := NewKernel(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 4} {
			pt, err := benchKernel(k, procs)
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("%s/p%d", name, procs)
			kernels[key] = pt.AllocsPerOp
			t.Logf("kernel %-10s %8d ns/op  %6d allocs/op", key, pt.NsPerOp, pt.AllocsPerOp)
			if mode == "update" {
				continue
			}
			want, ok := base.KernelAllocs[key]
			if !ok {
				t.Errorf("kernel %s missing from baseline (regenerate with BENCH_SMOKE=update)", key)
				continue
			}
			if cap := want + want/4 + 2; pt.AllocsPerOp > cap {
				t.Errorf("kernel %s: %d allocs/op > %d (baseline %d +25%%+2) — allocation discipline regressed",
					key, pt.AllocsPerOp, cap, want)
			}
		}
	}

	// Bigmem layout gate: counter-based (deterministic for a fixed
	// workload), so it holds on any host. 2000 pairs from 128 lines
	// crosses the lazy growth trigger and forces an adaptive resize.
	big, err := RunBigmemBench(2000, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	byLayout := map[string]BigmemPoint{}
	for _, p := range big {
		byLayout[p.Layout] = p
		t.Logf("bigmem %-5s opp/pair %6.2f  opp %8d  lines %5d  resizes %d  maxdepth %d",
			p.Layout, p.OppPerPair, p.OppExamined, p.Memory.Lines, p.Memory.Resizes, p.Memory.MaxLineDepth)
	}
	list, runs := byLayout["list"], byLayout["runs"]
	if runs.PairsEmitted != list.PairsEmitted || runs.Activations != list.Activations {
		t.Errorf("layouts disagree on the workload: list %d pairs/%d acts, runs %d pairs/%d acts",
			list.PairsEmitted, list.Activations, runs.PairsEmitted, runs.Activations)
	}
	if runs.Memory.Resizes == 0 {
		t.Errorf("segregated bigmem table never resized (lines %d) — adaptive growth is not firing", runs.Memory.Lines)
	}
	if mode != "update" {
		if runs.OppPerPair > base.MaxBigmemOppPerPair {
			t.Errorf("bigmem runs layout examines %.2f opposite tokens per pair > %.2f — sub-index selectivity regressed",
				runs.OppPerPair, base.MaxBigmemOppPerPair)
		}
		if gain := float64(list.OppExamined) / float64(runs.OppExamined); runs.OppExamined == 0 || gain < base.MinBigmemGain {
			t.Errorf("bigmem list/runs scan ratio %.2f < %.2f — the segregated layout is not narrowing the line scan",
				gain, base.MinBigmemGain)
		}
		if runs.Memory.MaxLineDepth > base.MaxBigmemDepth {
			t.Errorf("bigmem runs high-water line depth %d > %d — growth is lagging the load",
				runs.Memory.MaxLineDepth, base.MaxBigmemDepth)
		}
	}

	// Act-phase gate: run the act workloads at FireBatch 1 and 8 and
	// check the structural properties of the batched path — the batched
	// run must retire exactly the serial run's cycle count (speculative
	// multi-fire is an optimization, never a semantic change), groups
	// must actually form where the workload allows them, and rollbacks
	// must stay rare. All counter-based, so host-independent.
	actRep, err := RunActBench(ActBenchOptions{
		Scale: 0.5, FireBatches: []int{1, 8}, Procs: []int{1, 4},
		Reps: 1, SweepItems: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	actCycles := map[string]int{}
	actShare := map[string]float64{}
	for _, p := range actRep.Points {
		t.Logf("act %-8s fb=%d procs=%d  cycles %5d  grouped %.2f  rollback %.2f",
			p.Workload, p.FireBatch, p.Procs, p.Cycles, p.GroupedShare, p.RollbackRatio)
		key := fmt.Sprintf("%s/p%d", p.Workload, p.Procs)
		if p.FireBatch <= 1 {
			actCycles[key] = p.Cycles
			continue
		}
		if got, want := p.Cycles, actCycles[key]; got != want {
			t.Errorf("act %s fb=%d: %d cycles, serial run took %d — multi-fire changed the computation",
				key, p.FireBatch, got, want)
		}
		if s, ok := actShare[p.Workload]; !ok || p.GroupedShare < s {
			actShare[p.Workload] = p.GroupedShare
		}
		if mode != "update" && p.RollbackRatio > base.MaxActRollbackRatio {
			t.Errorf("act %s fb=%d: rollback ratio %.2f > %.2f — speculation is being wasted",
				key, p.FireBatch, p.RollbackRatio, base.MaxActRollbackRatio)
		}
	}
	if mode != "update" {
		for wl, min := range base.ActGroupedShare {
			if got, ok := actShare[wl]; !ok || got < min {
				t.Errorf("act %s: grouped share %.2f < %.2f — the batched act path stopped engaging",
					wl, got, min)
			}
		}
	}

	// Join-planner gate: the adversarial kernels from BENCH_join.json at
	// reduced proc counts. All three checks are counter-based ratios of
	// the same workload under two compilation/runtime modes, so they are
	// deterministic properties of the planner, budget and unlinking code.
	joinRep, err := RunJoinBench(JoinBenchOptions{Procs: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var crossTrips, crossQuarantined int
	for _, p := range joinRep.Points {
		t.Logf("join %-9s %-7s %-8s p%d  examined %8d  acts %5d  skips %4d  trips %d  quarantined %v",
			p.Kernel, p.Mode, p.Backend, p.Procs, p.OppExamined, p.Activations,
			p.UnlinkSkips, p.BudgetTrips, p.Quarantined)
		if p.Kernel == "crossprod" && p.Budget > 0 {
			crossTrips += int(p.BudgetTrips)
			for _, q := range p.Quarantined {
				if q == "crossp" {
					crossQuarantined++
				}
			}
		}
	}
	t.Logf("join skew gain %.1fx  cross containment %.1fx  chain null-act ratio %.3f (%d skips)",
		joinRep.SkewGain, joinRep.CrossContainment, joinRep.ChainNullActRatio, joinRep.ChainUnlinkSkips)
	if crossTrips == 0 || crossQuarantined == 0 {
		t.Errorf("crossprod budgeted runs: %d trips, %d crossp quarantines — the match budget never fired",
			crossTrips, crossQuarantined)
	}
	if mode != "update" {
		if joinRep.SkewGain < base.MinSkewGain {
			t.Errorf("skew join gain %.2fx < %.2fx — the planner is not beating source order on the skewed join",
				joinRep.SkewGain, base.MinSkewGain)
		}
		if joinRep.CrossContainment < base.MinCrossContainment {
			t.Errorf("cross-product containment %.2fx < %.2fx — the match budget is not containing the quadratic rule",
				joinRep.CrossContainment, base.MinCrossContainment)
		}
		if joinRep.ChainNullActRatio > base.MaxChainNullActRatio {
			t.Errorf("chain null-activation ratio %.3f > %.3f — unlinking stopped suppressing dead-join activations",
				joinRep.ChainNullActRatio, base.MaxChainNullActRatio)
		}
		if joinRep.ChainUnlinkSkips < base.MinChainUnlinkSkips {
			t.Errorf("chain unlink skips %d < %d — the dead chain joins are being probed",
				joinRep.ChainUnlinkSkips, base.MinChainUnlinkSkips)
		}
	}

	// Cluster fabric gate: a reduced 1-vs-2-backend sweep through the
	// routing proxy. The migrate-under-load differential (identical
	// firing traces and WM across a mid-run migration, on every matcher
	// backend) and the program-cache hit rate are structural properties;
	// the 2-backend scaling ratio is wall-clock and only gated when the
	// host actually has CPUs for both backends.
	cl, err := RunClusterBench(ClusterBenchOptions{
		BackendCounts: []int{1, 2}, Clients: 4, Batches: 10, Migrations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var clusterHits, clusterPushes int64
	for _, r := range cl.Runs {
		t.Logf("cluster %-8s nb=%d  %7.1f batches/s  pushes %d  hits %d  hit-rate %.0f%%",
			r.Workload, r.Backends, r.BatchesPerSec, r.ProgramPushes, r.ProgramCacheHits, r.CacheHitRate*100)
		if r.Backends > 1 {
			clusterHits += r.ProgramCacheHits
			clusterPushes += r.ProgramPushes
		}
	}
	for m, ok := range cl.MigrateDifferential {
		if !ok {
			t.Errorf("cluster migrate differential diverged on matcher %q — migration changed the computation", m)
		}
	}
	if len(cl.MigrateDifferential) < 3 {
		t.Errorf("cluster migrate differential covered %d matchers, want all 3", len(cl.MigrateDifferential))
	}
	if cl.Migration.Count == 0 {
		t.Error("cluster sweep performed no under-load migrations")
	}
	t.Logf("cluster migration p50 %d us p99 %d us (%d migrations); 2-backend scaling %v (oversubscribed=%v)",
		cl.Migration.P50Us, cl.Migration.P99Us, cl.Migration.Count, cl.ScalingX2, cl.Oversubscribed)
	clusterHitRate := 0.0
	if clusterHits+clusterPushes > 0 {
		clusterHitRate = float64(clusterHits) / float64(clusterHits+clusterPushes)
	}
	if mode != "update" {
		if clusterHitRate < base.MinClusterCacheHitRate {
			t.Errorf("cluster program-cache hit rate %.2f < %.2f — sessions are re-shipping source to warm backends",
				clusterHitRate, base.MinClusterCacheHitRate)
		}
		if cl.Oversubscribed {
			t.Logf("host has %d CPUs for a 2-backend fleet: skipping the scaling gate", cl.HostCPUs)
		} else {
			best := 0.0
			for _, x := range cl.ScalingX2 {
				if x > best {
					best = x
				}
			}
			if best < base.MinClusterScalingX2 {
				t.Errorf("best 2-backend scaling %.2fx < %.2fx — the fabric is not spreading load",
					best, base.MinClusterScalingX2)
			}
		}
	}

	// Session-spawn gate: fork a warm template vs build the same session
	// cold. Sized down from the recorded BENCH_durability.json run but
	// the same structural comparison.
	dur, err := RunDurabilityBench(DurabilityBenchOptions{Items: 1000, Rules: 48, Reps: 5, Batches: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spawn cold %d us  fork %d us  speedup %.1fx  (recovery %d records in %d us)",
		dur.ColdSpawnUs, dur.ForkSpawnUs, dur.ForkSpeedup, dur.RecoveryRecords, dur.RecoveryUs)
	if mode != "update" && dur.ForkSpeedup < base.MinForkSpeedup {
		t.Errorf("fork spawn only %.2fx faster than cold (< %.2fx) — the template fork fast path regressed",
			dur.ForkSpeedup, base.MinForkSpeedup)
	}

	if mode == "update" {
		out := benchBaseline{
			MaxChurnRatio:       3,
			MaxSelectRatio:      3,
			MaxChurnAllocs:      0,
			KernelAllocs:        kernels,
			MaxBigmemOppPerPair: 2,
			MinBigmemGain:       2,
			MaxBigmemDepth:      64,
			ActGroupedShare: map[string]float64{
				"Sweep": 0.9, "Tourney": 0.05, "Weaver": 0.3,
			},
			MaxActRollbackRatio:    0.25,
			MinSkewGain:            5,
			MinCrossContainment:    10,
			MaxChainNullActRatio:   0.5,
			MinChainUnlinkSkips:    64,
			MinClusterScalingX2:    1.2,
			MinClusterCacheHitRate: 0.5,
			MinForkSpeedup:         3,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", baselinePath)
	}
}
