// Cluster fabric benchmark: aggregate throughput of the routing proxy
// over 1/2/4 in-process ops5d backends on the paper's Tourney and
// Weaver workloads, program-cache hit accounting, and migration
// latency under load. cmd/psmbench -cluster runs this file and records
// BENCH_cluster.json; the bench-smoke gates pin the host-independent
// structural properties (cache hit rate, migration differential, and —
// only on hosts with enough CPUs for the backends to actually run in
// parallel — a minimum 2-backend scaling ratio).
package tables

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ClusterBenchOptions size the cluster benchmark.
type ClusterBenchOptions struct {
	// BackendCounts are the fleet sizes swept (default 1, 2, 4).
	BackendCounts []int
	// Clients is the concurrent session-driving client count (default 8).
	Clients int
	// Batches each client executes across its sessions (default 30).
	Batches int
	// MaxCycles is the recognize-act budget per batch (default 25).
	MaxCycles int
	// Migrations timed per fleet size ≥ 2 (default 8).
	Migrations int
}

func (o *ClusterBenchOptions) fill() {
	if len(o.BackendCounts) == 0 {
		o.BackendCounts = []int{1, 2, 4}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Batches <= 0 {
		o.Batches = 30
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 25
	}
	if o.Migrations <= 0 {
		o.Migrations = 8
	}
}

// ClusterRun is one (workload, fleet size) cell of the sweep.
type ClusterRun struct {
	Workload string `json:"workload"`
	Backends int    `json:"backends"`
	Clients  int    `json:"clients"`

	Batches   int   `json:"batches"` // executed across all clients
	Cycles    int64 `json:"cycles"`
	Sessions  int64 `json:"sessions_created"`
	ElapsedUs int64 `json:"elapsed_us"`

	BatchesPerSec float64 `json:"batches_per_sec"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`

	// Program cache, cluster view for this cell: every backend compiles
	// the workload at most once, every later create is a hit.
	ProgramPushes    int64   `json:"program_pushes"`
	ProgramCacheHits int64   `json:"program_cache_hits"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	BackendCompiles  int64   `json:"backend_compiles"`
}

// ClusterReport is the BENCH_cluster.json payload.
type ClusterReport struct {
	HostCPUs int `json:"host_cpus"`
	// Oversubscribed: the host hasn't enough CPUs for even two backends
	// to run concurrently, so wall-clock scaling ratios measure
	// scheduling noise, not the fabric. Scaling gates skip when set.
	Oversubscribed bool `json:"oversubscribed"`

	Clients   int `json:"clients"`
	Batches   int `json:"batches_per_client"`
	MaxCycles int `json:"max_cycles_per_batch"`

	Runs []ClusterRun `json:"runs"`
	// ScalingX2 is per-workload aggregate batches/sec at 2 backends over
	// 1 backend (the tentpole ratio the smoke gate pins on capable hosts).
	ScalingX2 map[string]float64 `json:"scaling_x2"`

	// Migration latency under concurrent batch load, all fleet sizes
	// pooled (export + import + route flip, µs).
	Migration stats.LatencySummary `json:"migration_latency"`
	// MigrateDifferential: per matcher backend, whether a migrated
	// session's firing trace and final WM stayed byte-identical to an
	// unmigrated control fed the same batches.
	MigrateDifferential map[string]bool `json:"migrate_differential_ok"`
}

// clusterWorkloads are the benched programs: self-driving (top-level
// makes kick them) so each batch is a pure cycle budget, no input
// generation in the measured path. Sized down from the Table 4-1
// configs to keep the full sweep in CI-smoke time.
func clusterWorkloads() []Spec {
	return []Spec{
		{Name: "Tourney", Src: workload.Tourney(10)},
		{Name: "Weaver", Src: workload.Weaver(8, 8)},
	}
}

// postJSON/getJSON are the bench's minimal HTTP helpers: issue one
// JSON request, decode the response when out is non-nil, return the
// status code.
func postJSON(c *http.Client, url string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if out != nil && len(raw) > 0 && resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func getJSON(c *http.Client, url string, out any) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if out != nil && len(raw) > 0 && resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// benchFleet is B in-process backends plus a proxy, the same topology
// the cluster smoke test uses (httptest servers: real HTTP, no ports).
type benchFleet struct {
	servers []*server.Server
	tss     []*httptest.Server
	proxy   *cluster.Proxy
	front   *httptest.Server
	client  *http.Client
}

func newBenchFleet(n int) (*benchFleet, error) {
	f := &benchFleet{client: &http.Client{Timeout: time.Minute}}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{
			MaxSessions: 4096, DefaultTimeout: time.Minute, DefaultMaxCycles: 1 << 20,
		})
		ts := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.tss = append(f.tss, ts)
		urls = append(urls, ts.URL)
	}
	p, err := cluster.New(cluster.Options{Backends: urls, HealthEvery: time.Hour, Client: f.client})
	if err != nil {
		f.close()
		return nil, err
	}
	f.proxy = p
	f.front = httptest.NewServer(p.Handler())
	return f, nil
}

func (f *benchFleet) close() {
	if f.front != nil {
		f.front.Close()
	}
	if f.proxy != nil {
		f.proxy.Close()
	}
	for i := range f.tss {
		f.tss[i].Close()
		f.servers[i].Close()
	}
}

// clusterClient drives sessions to their halt point through the proxy:
// create by hash, run cycle-budget batches until halted or the quota is
// spent, delete, recreate. Returns executed batches, cycles, sessions.
func clusterClient(c *http.Client, base, hash string, batches, maxCycles int) (int, int64, int64, error) {
	var nBatches int
	var nCycles, nSessions int64
	for nBatches < batches {
		var info server.SessionInfo
		code, err := postJSON(c, base+"/sessions", &server.SessionConfig{ProgramHash: hash}, &info)
		if err != nil || code != http.StatusCreated {
			return nBatches, nCycles, nSessions, fmt.Errorf("create: status %d err %v", code, err)
		}
		nSessions++
		halted := false
		for !halted && nBatches < batches {
			var res server.BatchResult
			req := server.BatchRequest{MaxCycles: maxCycles, NoFirings: true}
			code, err := postJSON(c, base+"/sessions/"+info.ID+"/assert", &req, &res)
			if err != nil || code != http.StatusOK {
				return nBatches, nCycles, nSessions, fmt.Errorf("batch: status %d err %v", code, err)
			}
			nBatches++
			nCycles += int64(res.Cycles)
			halted = res.Halted
		}
		req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/"+info.ID, nil)
		if resp, err := c.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	return nBatches, nCycles, nSessions, nil
}

// RunClusterBench sweeps fleet sizes × workloads, measures migration
// latency under load, and runs the migrate differential across matcher
// backends.
func RunClusterBench(opt ClusterBenchOptions) (*ClusterReport, error) {
	opt.fill()
	rep := &ClusterReport{
		HostCPUs:            runtime.NumCPU(),
		Oversubscribed:      runtime.NumCPU() < 2,
		Clients:             opt.Clients,
		Batches:             opt.Batches,
		MaxCycles:           opt.MaxCycles,
		ScalingX2:           map[string]float64{},
		MigrateDifferential: map[string]bool{},
	}

	var migHist stats.Histogram
	base1 := map[string]float64{} // workload -> 1-backend batches/sec
	for _, nb := range opt.BackendCounts {
		for _, wl := range clusterWorkloads() {
			run, mig, err := runClusterCell(&opt, nb, wl)
			if err != nil {
				return nil, fmt.Errorf("%s @ %d backends: %w", wl.Name, nb, err)
			}
			rep.Runs = append(rep.Runs, *run)
			migHist.Add(mig)
			switch nb {
			case 1:
				base1[wl.Name] = run.BatchesPerSec
			case 2:
				if b := base1[wl.Name]; b > 0 {
					rep.ScalingX2[wl.Name] = run.BatchesPerSec / b
				}
			}
		}
	}
	rep.Migration = migHist.Summary()

	for _, matcher := range []string{"vs1", "vs2", "parallel"} {
		ok, err := clusterMigrateDifferential(matcher)
		if err != nil {
			return nil, fmt.Errorf("migrate differential (%s): %w", matcher, err)
		}
		rep.MigrateDifferential[matcher] = ok
	}
	return rep, nil
}

// runClusterCell measures one (fleet size, workload) cell, timing
// opt.Migrations migrations under the concurrent load when the fleet
// has somewhere to migrate to.
func runClusterCell(opt *ClusterBenchOptions, nb int, wl Spec) (*ClusterRun, *stats.Histogram, error) {
	f, err := newBenchFleet(nb)
	if err != nil {
		return nil, nil, err
	}
	defer f.close()
	base := f.front.URL

	var reg struct {
		Hash string `json:"hash"`
	}
	if code, err := postJSON(f.client, base+"/programs", map[string]string{"program": wl.Src}, &reg); err != nil || code != http.StatusCreated {
		return nil, nil, fmt.Errorf("register: status %d err %v", code, err)
	}

	run := &ClusterRun{Workload: wl.Name, Backends: nb, Clients: opt.Clients}
	var mu sync.Mutex
	var firstErr error
	var totBatches int
	var totCycles, totSessions int64
	mig := &stats.Histogram{}

	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < opt.Clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, cy, se, err := clusterClient(f.client, base, reg.Hash, opt.Batches, opt.MaxCycles)
			mu.Lock()
			totBatches += b
			totCycles += cy
			totSessions += se
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	// Migration under load: one long-lived session keeps bouncing
	// between backends while the clients hammer the fleet.
	if nb >= 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var info server.SessionInfo
			if code, err := postJSON(f.client, base+"/sessions", &server.SessionConfig{ProgramHash: reg.Hash}, &info); err != nil || code != http.StatusCreated {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("migration session create: status %d err %v", code, err)
				}
				mu.Unlock()
				return
			}
			for i := 0; i < opt.Migrations; i++ {
				t0 := time.Now()
				code, err := postJSON(f.client, base+"/sessions/"+info.ID+"/migrate", map[string]string{}, nil)
				if err != nil || code != http.StatusOK {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("migrate %d: status %d err %v", i, code, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				mig.Observe(time.Since(t0))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	run.ElapsedUs = time.Since(start).Microseconds()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	run.Batches = totBatches
	run.Cycles = totCycles
	run.Sessions = totSessions
	sec := float64(run.ElapsedUs) / 1e6
	if sec > 0 {
		run.BatchesPerSec = float64(run.Batches) / sec
		run.CyclesPerSec = float64(run.Cycles) / sec
	}
	m := f.proxy.Metrics()
	run.ProgramPushes = m.Cluster.ProgramPushes
	run.ProgramCacheHits = m.Cluster.ProgramCacheHits
	if tot := run.ProgramCacheHits + run.ProgramPushes; tot > 0 {
		run.CacheHitRate = float64(run.ProgramCacheHits) / float64(tot)
	}
	for _, s := range f.servers {
		run.BackendCompiles += s.Snapshot().Server.ProgramCompiles
	}
	return run, mig, nil
}

// clusterMigrateDifferential runs the correctness check the smoke gate
// asserts: over a 2-backend fleet, a session on the given matcher is
// migrated mid-sequence while an unmigrated control receives the same
// batches; both firing traces and final WM must match exactly.
func clusterMigrateDifferential(matcher string) (bool, error) {
	f, err := newBenchFleet(2)
	if err != nil {
		return false, err
	}
	defer f.close()
	base := f.front.URL
	src := workload.Tourney(8)

	mk := func() (string, error) {
		var info server.SessionInfo
		code, err := postJSON(f.client, base+"/sessions", &server.SessionConfig{Program: src, Matcher: matcher}, &info)
		if err != nil || code != http.StatusCreated {
			return "", fmt.Errorf("create: status %d err %v", code, err)
		}
		return info.ID, nil
	}
	migID, err := mk()
	if err != nil {
		return false, err
	}
	ctlID, err := mk()
	if err != nil {
		return false, err
	}

	runSeq := func(id string, batches, budget int) (string, bool, error) {
		var trace string
		halted := false
		for i := 0; i < batches && !halted; i++ {
			var res server.BatchResult
			req := server.BatchRequest{MaxCycles: budget}
			code, err := postJSON(f.client, base+"/sessions/"+id+"/assert", &req, &res)
			if err != nil || code != http.StatusOK {
				return "", false, fmt.Errorf("batch: status %d err %v", code, err)
			}
			for _, fi := range res.Firings {
				trace += fmt.Sprintf("%s%v;", fi.Rule, fi.TimeTags)
			}
			halted = res.Halted
		}
		return trace, halted, nil
	}
	wmOf := func(id string) (string, error) {
		var snap struct {
			WMEs []server.WMEOut `json:"wmes"`
		}
		code, err := getJSON(f.client, base+"/sessions/"+id+"/wm", &snap)
		if err != nil || code != http.StatusOK {
			return "", fmt.Errorf("wm: status %d err %v", code, err)
		}
		var s string
		for _, w := range snap.WMEs {
			s += fmt.Sprintf("%d:%s;", w.TimeTag, w.Text)
		}
		return s, nil
	}

	t1m, _, err := runSeq(migID, 4, 20)
	if err != nil {
		return false, err
	}
	t1c, _, err := runSeq(ctlID, 4, 20)
	if err != nil {
		return false, err
	}
	if code, err := postJSON(f.client, base+"/sessions/"+migID+"/migrate", map[string]string{}, nil); err != nil || code != http.StatusOK {
		return false, fmt.Errorf("migrate: status %d err %v", code, err)
	}
	t2m, _, err := runSeq(migID, 200, 50)
	if err != nil {
		return false, err
	}
	t2c, _, err := runSeq(ctlID, 200, 50)
	if err != nil {
		return false, err
	}
	wmM, err := wmOf(migID)
	if err != nil {
		return false, err
	}
	wmC, err := wmOf(ctlID)
	if err != nil {
		return false, err
	}
	return t1m+t2m == t1c+t2c && wmM == wmC, nil
}
