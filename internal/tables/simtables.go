package tables

import (
	"fmt"

	"repro/internal/multimax"
	"repro/internal/parmatch"
)

// ProcCols are the paper's match-process counts (the k of "1+k").
var ProcCols = []int{1, 3, 5, 7, 11, 13}

// QueueCols are the task-queue counts paired with ProcCols in Tables
// 4-6 and 4-8.
var QueueCols = []int{1, 2, 4, 8, 8, 8}

// ContProcs are the process counts of the contention Table 4-9.
var ContProcs = []int{6, 12}

// SimResults caches every simulated configuration Tables 4-5..4-9
// derive from.
type SimResults struct {
	Specs []Spec
	// BaseSimple and BaseMRSW are the non-pipelined single-match-process
	// runs whose match time is each table's "uniproc execution time"
	// column (the paper's §4.2 baseline; MRSW has its own because the
	// complex locks slow the one-process case down, Table 4-8).
	BaseSimple map[string]*multimax.Result
	BaseMRSW   map[string]*multimax.Result
	// Simple1Q[name][i] is the pipelined run with ProcCols[i] match
	// processes and a single queue (Tables 4-5, 4-7).
	Simple1Q map[string][]*multimax.Result
	// SimpleMQ and MRSWMQ pair ProcCols[i] with QueueCols[i] (4-6, 4-8).
	SimpleMQ map[string][]*multimax.Result
	MRSWMQ   map[string][]*multimax.Result
	// ContSimple/ContMRSW are 8-queue runs at ContProcs (Table 4-9).
	ContSimple map[string][]*multimax.Result
	ContMRSW   map[string][]*multimax.Result
}

// RunSimAll executes the whole simulation grid.
func RunSimAll(specs []Spec) (*SimResults, error) {
	out := &SimResults{
		Specs:      specs,
		BaseSimple: map[string]*multimax.Result{},
		BaseMRSW:   map[string]*multimax.Result{},
		Simple1Q:   map[string][]*multimax.Result{},
		SimpleMQ:   map[string][]*multimax.Result{},
		MRSWMQ:     map[string][]*multimax.Result{},
		ContSimple: map[string][]*multimax.Result{},
		ContMRSW:   map[string][]*multimax.Result{},
	}
	for _, spec := range specs {
		base, err := RunSim(spec, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple})
		if err != nil {
			return nil, err
		}
		out.BaseSimple[spec.Name] = base
		baseM, err := RunSim(spec, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeMRSW})
		if err != nil {
			return nil, err
		}
		out.BaseMRSW[spec.Name] = baseM
		for i, procs := range ProcCols {
			r, err := RunSim(spec, multimax.Config{
				Procs: procs, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true,
			})
			if err != nil {
				return nil, err
			}
			out.Simple1Q[spec.Name] = append(out.Simple1Q[spec.Name], r)
			r, err = RunSim(spec, multimax.Config{
				Procs: procs, Queues: QueueCols[i], Scheme: parmatch.SchemeSimple, Pipelined: true,
			})
			if err != nil {
				return nil, err
			}
			out.SimpleMQ[spec.Name] = append(out.SimpleMQ[spec.Name], r)
			r, err = RunSim(spec, multimax.Config{
				Procs: procs, Queues: QueueCols[i], Scheme: parmatch.SchemeMRSW, Pipelined: true,
			})
			if err != nil {
				return nil, err
			}
			out.MRSWMQ[spec.Name] = append(out.MRSWMQ[spec.Name], r)
		}
		for _, procs := range ContProcs {
			r, err := RunSim(spec, multimax.Config{
				Procs: procs, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true,
			})
			if err != nil {
				return nil, err
			}
			out.ContSimple[spec.Name] = append(out.ContSimple[spec.Name], r)
			r, err = RunSim(spec, multimax.Config{
				Procs: procs, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true,
			})
			if err != nil {
				return nil, err
			}
			out.ContMRSW[spec.Name] = append(out.ContMRSW[spec.Name], r)
		}
	}
	return out, nil
}

func speedupTable(id, title string, specs []Spec, base map[string]*multimax.Result,
	cells map[string][]*multimax.Result, queues []int) *Table {
	header := []string{"PROGRAM", "Uniproc (s)"}
	for i, p := range ProcCols {
		q := 1
		if queues != nil {
			q = queues[i]
		}
		header = append(header, fmt.Sprintf("1+%d/%dQ", p, q))
	}
	t := &Table{ID: id, Title: title, Header: header}
	costs := multimax.DefaultCosts()
	for _, spec := range specs {
		b := base[spec.Name]
		row := []string{spec.Name, f1(b.MatchSeconds(costs))}
		for _, r := range cells[spec.Name] {
			row = append(row, f2(float64(b.MatchInstr)/float64(r.MatchInstr)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table45 reproduces Table 4-5: speed-up with a single task queue and
// simple hash-table locks.
func Table45(sr *SimResults) *Table {
	ones := make([]int, len(ProcCols))
	for i := range ones {
		ones[i] = 1
	}
	return speedupTable("4-5", "Speed-up for single task queue and simple hash-table locks (simulated Multimax)",
		sr.Specs, sr.BaseSimple, sr.Simple1Q, ones)
}

// Table46 reproduces Table 4-6: speed-up with multiple task queues and
// simple hash-table locks.
func Table46(sr *SimResults) *Table {
	return speedupTable("4-6", "Speed-up for multiple task queues and simple hash-table locks (simulated Multimax)",
		sr.Specs, sr.BaseSimple, sr.SimpleMQ, QueueCols)
}

// Table47 reproduces Table 4-7: contention for the centralized task
// queue — mean spins before a process gets access.
func Table47(sr *SimResults) *Table {
	header := []string{"PROGRAM"}
	for _, p := range ProcCols {
		header = append(header, fmt.Sprintf("1+%d/1Q", p))
	}
	// The paper reports in-text that the 13-process contention drops to
	// ~5-6 with eight queues; the last column reproduces that remark.
	header = append(header, "1+13/8Q")
	t := &Table{
		ID:     "4-7",
		Title:  "Contention for the centralized task queue (spins before access)",
		Header: header,
	}
	for _, spec := range sr.Specs {
		row := []string{spec.Name}
		for _, r := range sr.Simple1Q[spec.Name] {
			c := r.Contention
			row = append(row, f2(mean(c.QueueSpins, c.QueueAcquires)))
		}
		mq := sr.SimpleMQ[spec.Name]
		c := mq[len(mq)-1].Contention
		row = append(row, f2(mean(c.QueueSpins, c.QueueAcquires)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table48 reproduces Table 4-8: speed-up with multiple task queues and
// multiple-reader-single-writer hash-table locks.
func Table48(sr *SimResults) *Table {
	return speedupTable("4-8", "Speed-up for multiple task queues and MRSW hash-table locks (simulated Multimax)",
		sr.Specs, sr.BaseMRSW, sr.MRSWMQ, QueueCols)
}

// Table49 reproduces Table 4-9: contention for the token hash-table
// lines — mean spins before access, by activation side, simple vs MRSW
// locks at 6 and 12 match processes.
func Table49(sr *SimResults) *Table {
	header := []string{"PROGRAM",
		"simple 6p left", "simple 6p right", "simple 12p left", "simple 12p right",
		"mrsw 6p left", "mrsw 6p right", "mrsw 12p left", "mrsw 12p right"}
	t := &Table{
		ID:     "4-9",
		Title:  "Contention for token hash-table locks (spins before access)",
		Header: header,
	}
	for _, spec := range sr.Specs {
		row := []string{spec.Name}
		for _, set := range [][]*multimax.Result{sr.ContSimple[spec.Name], sr.ContMRSW[spec.Name]} {
			for _, r := range set {
				c := r.Contention
				row = append(row,
					f1(mean(c.LineSpinsLeft, c.LineAcquiresLeft)),
					f1(mean(c.LineSpinsRight, c.LineAcquiresRight)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
