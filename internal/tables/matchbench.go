// Match-kernel and multicore match benchmarks. The kernels drive a
// matcher backend directly — no engine, no RHS evaluation — so that
// ns/op and allocs/op measure the steady-state match hot path alone:
// Submit, the task-queue round trip, the hash-line update/search, and
// the terminal sink. cmd/psmbench -match and the BenchmarkMatch*
// family in bench_test.go both run on top of this file, and the
// recorded results land in BENCH_match.json.
package tables

import (
	"fmt"
	"strings"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/wm"
)

// Kernel is one steady-state micro-workload: a compiled network plus a
// fixed block of WMEs. One Round asserts every WME, drains, retracts
// every WME and drains again, leaving all matcher state empty — so a
// benchmark can run rounds forever without growth.
type Kernel struct {
	Name string
	Prog *ops5.Program
	Net  *rete.Network
	Wmes []*wm.WME
}

// KernelNames lists the available kernels: "join" exercises multi-level
// two-input joins, "alpha" the constant-test fan-out with terminal
// tasks, "neg" negated-node count maintenance, "term" the conflict-set
// hot path (every WM change is one terminal activation), "bigmem" a
// single equality join meant to run at 10k+ WMEs, where token-memory
// layout selectivity dominates the match cost.
func KernelNames() []string { return []string{"join", "alpha", "neg", "term", "bigmem"} }

// kernelSrc returns the OPS5 source of a kernel.
func kernelSrc(name string) (string, error) {
	var b strings.Builder
	switch name {
	case "join":
		// Three-way join on a shared value: items of kinds a, b, c with
		// the same ^val pair up through two join levels to a terminal.
		b.WriteString("(literalize item kind val)\n")
		b.WriteString(`(p triple
  (item ^kind a ^val <v>)
  (item ^kind b ^val <v>)
  (item ^kind c ^val <v>)
-->
  (halt))
`)
	case "alpha":
		// Sixteen single-CE productions with disjoint constant tests: a
		// WM change runs every chain, passes one, and produces a direct
		// alpha-to-terminal task.
		b.WriteString("(literalize ev tag)\n")
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&b, "(p r%d (ev ^tag %d) --> (halt))\n", i, i)
		}
	case "neg":
		// A negated CE whose blockers arrive after the positive side:
		// right activations of the negated node walk the left memory and
		// flip instantiations on count transitions.
		b.WriteString("(literalize slot id)\n(literalize block id)\n")
		b.WriteString(`(p free
  (slot ^id <i>)
  - (block ^id <i>)
-->
  (halt))
`)
	case "term":
		// One single-CE production that every fact satisfies: each WM
		// change goes straight alpha-to-terminal, so the round's cost is
		// dominated by conflict-set insert/remove, and the live set grows
		// to n instantiations at the assert/retract turnaround.
		b.WriteString("(literalize fact id)\n")
		b.WriteString("(p seen (fact ^id <i>) --> (halt))\n")
	case "bigmem":
		// n accounts and n transactions pair one-to-one through a single
		// equality join. At large n the cost is entirely how the token
		// memories narrow each activation's opposite-memory scan, which
		// is what the list-vs-runs layout comparison measures.
		b.WriteString("(literalize acct id)\n(literalize txn id)\n")
		b.WriteString(`(p pay
  (acct ^id <i>)
  (txn ^id <i>)
-->
  (halt))
`)
	default:
		return "", fmt.Errorf("unknown kernel %q (have %v)", name, KernelNames())
	}
	return b.String(), nil
}

// kernelWME builds one WME by hand; the kernels bypass the engine and
// working-memory store entirely.
func kernelWME(prog *ops5.Program, tag int, class string, attrs map[string]wm.Value) *wm.WME {
	cls := prog.ClassOf(prog.Symbols.Intern(class))
	fields := make([]wm.Value, cls.NumFields())
	fields[0] = wm.Sym(cls.Name)
	for a, v := range attrs {
		i, err := prog.FieldIndex(cls, prog.Symbols.Intern(a))
		if err != nil {
			panic(err) // kernels only use literalized attributes
		}
		fields[i] = v
	}
	return &wm.WME{TimeTag: tag, Fields: fields}
}

// NewKernel compiles a kernel at size n (number of distinct join
// values / events / slots; 0 selects the default of 64).
func NewKernel(name string, n int) (*Kernel, error) {
	if n <= 0 {
		n = 64
	}
	src, err := kernelSrc(name)
	if err != nil {
		return nil, err
	}
	prog, err := ops5.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("kernel %s: parse: %w", name, err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("kernel %s: compile: %w", name, err)
	}
	k := &Kernel{Name: name, Prog: prog, Net: net}
	tag := 1
	add := func(class string, attrs map[string]wm.Value) {
		k.Wmes = append(k.Wmes, kernelWME(prog, tag, class, attrs))
		tag++
	}
	sym := func(s string) wm.Value { return wm.Sym(prog.Symbols.Intern(s)) }
	switch name {
	case "join":
		for v := 0; v < n; v++ {
			add("item", map[string]wm.Value{"kind": sym("a"), "val": wm.Int(int64(v))})
			add("item", map[string]wm.Value{"kind": sym("b"), "val": wm.Int(int64(v))})
			add("item", map[string]wm.Value{"kind": sym("c"), "val": wm.Int(int64(v))})
		}
	case "alpha":
		for v := 0; v < n; v++ {
			add("ev", map[string]wm.Value{"tag": wm.Int(int64(v % 16))})
		}
	case "neg":
		for v := 0; v < n; v++ {
			add("slot", map[string]wm.Value{"id": wm.Int(int64(v))})
		}
		for v := 0; v < n; v += 2 {
			add("block", map[string]wm.Value{"id": wm.Int(int64(v))})
		}
	case "term":
		for v := 0; v < n; v++ {
			add("fact", map[string]wm.Value{"id": wm.Int(int64(v))})
		}
	case "bigmem":
		for v := 0; v < n; v++ {
			add("acct", map[string]wm.Value{"id": wm.Int(int64(v))})
			add("txn", map[string]wm.Value{"id": wm.Int(int64(v))})
		}
	}
	return k, nil
}

// Round pushes one assert-all / retract-all cycle through a matcher.
// The sink (the matcher's conflict set) returns to empty, as do the
// node memories, so consecutive rounds see identical state.
func (k *Kernel) Round(m engine.Matcher) {
	for _, w := range k.Wmes {
		m.Submit(true, w)
	}
	m.Drain()
	for _, w := range k.Wmes {
		m.Submit(false, w)
	}
	m.Drain()
}

// KernelSink returns a fresh conflict set to use as the terminal sink
// for kernel runs (it is internally synchronized, like the server's).
func KernelSink() *conflict.Set { return conflict.NewSet() }
