// Package tables regenerates every table of the paper's evaluation
// (§4, Tables 4-1 through 4-9) from this repository's implementations:
// the sequential matchers supply Tables 4-1..4-4, the Multimax simulator
// supplies the speed-up and contention tables 4-5..4-9. cmd/psmbench
// prints them; bench_test.go exposes one benchmark per table.
package tables

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/hashmem"
	"repro/internal/lispemu"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/stats"
	"repro/internal/workload"
)

// maxCycles bounds every benchmark run; the workloads halt well before.
const maxCycles = 200000

// Spec is one benchmark program.
type Spec struct {
	Name string
	Src  string
}

// Programs returns the three evaluation programs at roughly the paper's
// workload scale (Table 4-1's WM-change and node-activation counts).
// scale < 1.0 shrinks them for quick runs.
func Programs(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []Spec{
		{Name: "Weaver", Src: workload.Weaver(s(20), 9)},
		{Name: "Rubik", Src: workload.Rubik(s(60))},
		{Name: "Tourney", Src: workload.Tourney(s(16))},
	}
}

// Table is a rendered result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func compile(spec Spec) (*ops5.Program, *rete.Network, error) {
	prog, err := ops5.Parse(spec.Src)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: parse: %w", spec.Name, err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: compile: %w", spec.Name, err)
	}
	return prog, net, nil
}

// SeqRun is one instrumented sequential execution.
type SeqRun struct {
	Spec    Spec
	Variant string
	Elapsed time.Duration
	Match   time.Duration
	Rec     *hashmem.Recorder
	Cycles  int
	// Activations counts node activations for every variant: the
	// Recorder supplies it for vs1/vs2, the interpreter itself for lisp.
	Activations int64
	// InterpOps counts the lisp emulator's interpreted work items
	// (dispatches, boxings, predicate applications); zero for the
	// compiled variants. Together with Activations it gives the table
	// tests a deterministic stand-in for the Table 4-4 wall-clock ratio.
	InterpOps int64
}

// RunSeq executes a spec on vs1, vs2 or the lisp emulator and returns
// the instrumented result.
func RunSeq(spec Spec, variant string) (*SeqRun, error) {
	prog, net, err := compile(spec)
	if err != nil {
		return nil, err
	}
	// Sequential variants: one conflict-set stripe keeps Select trivial.
	cs := conflict.New(conflict.Config{Shards: 1})
	var m engine.Matcher
	var rec *hashmem.Recorder
	var lm *lispemu.Matcher
	switch variant {
	case "vs1":
		sm := seqmatch.New(net, seqmatch.VS1, 0, cs)
		rec = sm.Rec
		m = sm
	case "vs2":
		sm := seqmatch.New(net, seqmatch.VS2, 0, cs)
		rec = sm.Rec
		m = sm
	case "lisp":
		lm = lispemu.New(prog, net, cs)
		m = lm
	default:
		return nil, fmt.Errorf("unknown variant %q", variant)
	}
	e, err := engine.New(prog, net, cs, m, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := e.Init(); err != nil {
		return nil, fmt.Errorf("%s/%s: %w", spec.Name, variant, err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", spec.Name, variant, err)
	}
	if !res.Halted {
		return nil, fmt.Errorf("%s/%s: run did not halt (%d cycles)", spec.Name, variant, res.Cycles)
	}
	run := &SeqRun{
		Spec:    spec,
		Variant: variant,
		Elapsed: time.Since(start),
		Match:   res.MatchTime,
		Rec:     rec,
		Cycles:  res.Cycles,
	}
	if rec != nil {
		run.Activations = rec.M.Activations
	}
	if lm != nil {
		run.Activations = lm.Activations
		run.InterpOps = lm.Ops
	}
	return run, nil
}

// ParRun is one execution on the real goroutine matcher: the engine
// result plus the matcher's own counters, read after the final drain.
type ParRun struct {
	Res   *engine.Result
	Match stats.Match
	Cont  stats.Contention
	Conf  stats.Conflict
}

// RunPar executes a spec on the real goroutine matcher, for the on-host
// parallel sanity numbers reported alongside the simulation.
func RunPar(spec Spec, cfg parmatch.Config) (*ParRun, error) {
	prog, net, err := compile(spec)
	if err != nil {
		return nil, err
	}
	cs := conflict.NewSet()
	pm := parmatch.New(net, cfg, cs)
	defer pm.Close()
	e, err := engine.New(prog, net, cs, pm, nil)
	if err != nil {
		return nil, err
	}
	if err := e.Init(); err != nil {
		return nil, err
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles})
	if err != nil {
		return nil, err
	}
	return &ParRun{Res: res, Match: pm.MatchStats(), Cont: pm.Contention(), Conf: cs.StatsSnapshot()}, nil
}

// RunSim executes a spec on the Multimax simulator.
func RunSim(spec Spec, cfg multimax.Config) (*multimax.Result, error) {
	prog, net, err := compile(spec)
	if err != nil {
		return nil, err
	}
	cfg.MaxCycles = maxCycles
	res, err := multimax.Simulate(prog, net, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: simulate: %w", spec.Name, err)
	}
	if !res.Halted {
		return nil, fmt.Errorf("%s: simulation did not halt (%d cycles)", spec.Name, res.Cycles)
	}
	return res, nil
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func mean(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
