package tables

import (
	"fmt"

	"repro/internal/multimax"
	"repro/internal/parmatch"
)

// AblationRow is one design-variation measurement at 1+13 processes.
type AblationRow struct {
	Label   string
	Config  multimax.Config
	Speedup map[string]float64 // per program
}

// RunAblations measures the design choices DESIGN.md calls out, all at
// 1+13 match processes against the non-pipelined single-process
// baseline: the paper's best configuration, the hardware task scheduler
// the paper proposed but never built (§3.2), FIFO scheduling, no
// pipelining, starved hash tables, and the MRSW locks.
func RunAblations(specs []Spec) ([]AblationRow, error) {
	rows := []AblationRow{
		{Label: "8 queues, simple locks (paper best)", Config: multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true}},
		{Label: "hardware task scheduler (Gupta's proposal)", Config: multimax.Config{
			Procs: 13, Hardware: true, Scheme: parmatch.SchemeSimple, Pipelined: true}},
		{Label: "8 queues, FIFO instead of LIFO", Config: multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true, FIFO: true}},
		{Label: "single queue (the paper's bottleneck)", Config: multimax.Config{
			Procs: 13, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true}},
		{Label: "no RHS/match pipelining", Config: multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple}},
		{Label: "starved hash tables (64 lines)", Config: multimax.Config{
			Procs: 13, Queues: 8, Lines: 64, Scheme: parmatch.SchemeSimple, Pipelined: true}},
		{Label: "MRSW line locks", Config: multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true}},
	}
	for i := range rows {
		rows[i].Speedup = map[string]float64{}
	}
	for _, spec := range specs {
		base, err := RunSim(spec, multimax.Config{Procs: 1, Queues: 1, Scheme: parmatch.SchemeSimple})
		if err != nil {
			return nil, err
		}
		for i := range rows {
			r, err := RunSim(spec, rows[i].Config)
			if err != nil {
				return nil, fmt.Errorf("%s / %s: %w", spec.Name, rows[i].Label, err)
			}
			rows[i].Speedup[spec.Name] = float64(base.MatchInstr) / float64(r.MatchInstr)
		}
	}
	return rows, nil
}

// ControlOverlapTable measures the first optimization of the paper's
// footnote 3 — conflict resolution overlapped with the match wait — on
// total run time (match speed-up is unaffected; the win is on the
// control process's critical path).
func ControlOverlapTable(specs []Spec) (*Table, error) {
	t := &Table{
		ID:     "A-2",
		Title:  "Overlapped conflict resolution (paper footnote 3): total virtual seconds at 1+13/8Q",
		Header: []string{"PROGRAM", "baseline (s)", "overlapped CR (s)", "saved"},
	}
	costs := multimax.DefaultCosts()
	for _, spec := range specs {
		base, err := RunSim(spec, multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
		if err != nil {
			return nil, err
		}
		over, err := RunSim(spec, multimax.Config{
			Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true, OverlapCR: true})
		if err != nil {
			return nil, err
		}
		saved := float64(base.TotalInstr-over.TotalInstr) / float64(base.TotalInstr) * 100
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f2(costs.Seconds(base.TotalInstr)),
			f2(costs.Seconds(over.TotalInstr)),
			fmt.Sprintf("%.1f%%", saved),
		})
	}
	return t, nil
}

// AblationTable renders the ablation results.
func AblationTable(specs []Spec, rows []AblationRow) *Table {
	t := &Table{
		ID:     "A-1",
		Title:  "Design-choice ablations, speed-up at 1+13 processes (simulated Multimax)",
		Header: []string{"CONFIGURATION"},
	}
	for _, s := range specs {
		t.Header = append(t.Header, s.Name)
	}
	for _, row := range rows {
		cells := []string{row.Label}
		for _, s := range specs {
			cells = append(cells, f2(row.Speedup[s.Name]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
