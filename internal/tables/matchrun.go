// RunMatchBench drives the multicore match benchmarks recorded in
// BENCH_match.json: the three paper workloads on the goroutine matcher
// at several proc counts, plus the allocation-discipline kernels of
// matchbench.go measured through the testing.Benchmark harness.
package tables

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/hashmem"
	"repro/internal/parmatch"
	"repro/internal/seqmatch"
	"repro/internal/stats"
)

// MatchBenchOptions configures RunMatchBench.
type MatchBenchOptions struct {
	Scale   float64 // workload scale (1.0 = paper scale)
	Procs   []int   // match-process counts to sweep (default 1,2,4,8)
	KernelN int     // kernel size (default 64)
	// Reps runs each workload point this many times and records the
	// fastest (default 3): min-of-N is the standard low-noise estimator
	// for a fixed workload on a shared host. Reps are interleaved across
	// the proc sweep (1,2,4,8, 2,4,8,1, ...) with the order rotated each
	// rep, so slow host phases hit every proc count and no proc count
	// systematically inherits the cache/GC state of a cycle position.
	Reps int
	// BigmemPairs sizes the bigmem layout comparison: that many
	// (acct, txn) pairs, i.e. 2× that many WMEs (default 20000 — deep
	// enough that the list layout's line scan dominates and the
	// segregated table crosses its lazy growth trigger).
	// BigmemLines is the starting line count for both layouts (default
	// 1024): the legacy table is pinned there while the segregated table
	// grows adaptively from it.
	BigmemPairs int
	BigmemLines int
}

// MatchWorkloadPoint is one (workload, procs) measurement of the real
// goroutine matcher. GOMAXPROCS is raised to procs+1 for the point (the
// +1 is the control process) but never past the host CPU count — extra
// Ps on a smaller host just add runtime thrash (spinning Ms, more GC
// mark workers) without any parallelism. On hosts with fewer cores the
// sweep therefore measures match processes timesharing the real CPUs;
// HostCPUs and GoMaxProcs in the report say which regime a point ran in.
type MatchWorkloadPoint struct {
	Workload     string           `json:"workload"`
	Procs        int              `json:"procs"`
	GoMaxProcs   int              `json:"gomaxprocs"`
	Scheme       string           `json:"scheme"`
	Cycles       int              `json:"cycles"`
	MatchSeconds float64          `json:"match_seconds"`
	Activations  int64            `json:"activations"`
	ActsPerSec   float64          `json:"acts_per_sec"`
	Contention   stats.Contention `json:"contention"`
	// Oversubscribed marks points whose proc count exceeds the host's
	// CPUs: the match processes timeshared real cores, so wall-clock
	// speedup numbers measure scheduling overhead, not parallelism.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// MatchKernelPoint is one (kernel, procs) steady-state hot-path
// measurement; procs 0 is the sequential vs2 matcher baseline.
type MatchKernelPoint struct {
	Kernel      string  `json:"kernel"`
	Procs       int     `json:"procs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ActsPerOp   float64 `json:"acts_per_op"`
	// Oversubscribed: see MatchWorkloadPoint.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// BigmemPoint is one side of the token-memory layout comparison: the
// bigmem kernel run on the sequential vs2 matcher with either the
// legacy linked-list lines ("list") or the node-segregated adaptive
// runs ("runs"). OppPerPair is the selectivity measure — opposite-memory
// tokens examined per emitted pair; the hash sub-index drives it to ~1
// while the list layout scans every colliding token.
type BigmemPoint struct {
	Layout       string       `json:"layout"` // "list" or "runs"
	Pairs        int          `json:"pairs"`  // WMEs asserted per round = 2×Pairs
	InitialLines int          `json:"initial_lines"`
	Rounds       int          `json:"rounds"`
	Seconds      float64      `json:"seconds"`
	Activations  int64        `json:"activations"`
	ActsPerSec   float64      `json:"acts_per_sec"`
	OppExamined  int64        `json:"opp_examined"`
	PairsEmitted int64        `json:"pairs_emitted"`
	OppPerPair   float64      `json:"opp_per_pair"`
	Memory       stats.Memory `json:"memory"`
}

// MatchBenchReport is the BENCH_match.json payload.
type MatchBenchReport struct {
	HostCPUs  int                  `json:"host_cpus"`
	Scale     float64              `json:"scale"`
	ProcsSwep []int                `json:"procs_swept"`
	Workloads []MatchWorkloadPoint `json:"workloads"`
	Kernels   []MatchKernelPoint   `json:"kernels"`
	// Bigmem is the token-memory layout comparison: the bigmem kernel at
	// production scale under the legacy list lines vs the segregated runs.
	Bigmem []BigmemPoint `json:"bigmem"`
	// Conflict is the terminal-heavy conflict-set sweep (live × shards ×
	// procs) from conflictbench.go.
	Conflict []ConflictBenchPoint `json:"conflict"`
}

// RunMatchBench runs the full multicore match sweep. It temporarily
// adjusts GOMAXPROCS per point and restores it before returning.
func RunMatchBench(opt MatchBenchOptions) (*MatchBenchReport, error) {
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if len(opt.Procs) == 0 {
		opt.Procs = []int{1, 2, 4, 8}
	}
	if opt.KernelN <= 0 {
		opt.KernelN = 64
	}
	if opt.Reps <= 0 {
		opt.Reps = 3
	}
	rep := &MatchBenchReport{
		HostCPUs:  runtime.NumCPU(),
		Scale:     opt.Scale,
		ProcsSwep: opt.Procs,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, spec := range Programs(opt.Scale) {
		best := make([]*ParRun, len(opt.Procs))
		for rep := 0; rep < opt.Reps; rep++ {
			for j := range opt.Procs {
				i := (j + rep) % len(opt.Procs)
				p := opt.Procs[i]
				gm := p + 1 // +1: the control process
				if n := runtime.NumCPU(); gm > n {
					gm = n
				}
				runtime.GOMAXPROCS(gm)
				r, err := RunPar(spec, parmatch.Config{
					Procs: p, Queues: 4, Scheme: parmatch.SchemeSimple,
				})
				if err != nil {
					return nil, fmt.Errorf("%s procs=%d: %w", spec.Name, p, err)
				}
				if best[i] == nil || r.Res.MatchTime < best[i].Res.MatchTime {
					best[i] = r
				}
			}
		}
		for i, p := range opt.Procs {
			run := best[i]
			gm := p + 1
			if n := runtime.NumCPU(); gm > n {
				gm = n
			}
			secs := run.Res.MatchTime.Seconds()
			pt := MatchWorkloadPoint{
				Workload:       spec.Name,
				Procs:          p,
				GoMaxProcs:     gm,
				Scheme:         parmatch.SchemeSimple.String(),
				Cycles:         run.Res.Cycles,
				MatchSeconds:   secs,
				Activations:    run.Match.Activations,
				Contention:     run.Cont,
				Oversubscribed: p > rep.HostCPUs,
			}
			if secs > 0 {
				pt.ActsPerSec = float64(run.Match.Activations) / secs
			}
			rep.Workloads = append(rep.Workloads, pt)
		}
	}

	runtime.GOMAXPROCS(prev)
	for _, name := range KernelNames() {
		k, err := NewKernel(name, opt.KernelN)
		if err != nil {
			return nil, err
		}
		for _, p := range append([]int{0}, opt.Procs...) {
			pt, err := benchKernel(k, p)
			if err != nil {
				return nil, err
			}
			rep.Kernels = append(rep.Kernels, pt)
		}
	}
	big, err := RunBigmemBench(opt.BigmemPairs, opt.BigmemLines, 0)
	if err != nil {
		return nil, err
	}
	rep.Bigmem = big
	rep.Conflict = RunConflictBench(ConflictBenchOptions{})
	return rep, nil
}

// RunBigmemBench runs the bigmem kernel on the sequential vs2 matcher
// under both token-memory layouts, starting each at the same line count:
// the legacy list table stays there (the paper's fixed-size design, the
// degradation baseline), the segregated table resizes adaptively as the
// working memory climbs. Defaults: 20000 pairs (40k WMEs), 1024 lines,
// 3 rounds.
func RunBigmemBench(pairs, lines, rounds int) ([]BigmemPoint, error) {
	if pairs <= 0 {
		pairs = 20000
	}
	if lines <= 0 {
		lines = 1024
	}
	if rounds <= 0 {
		rounds = 3
	}
	k, err := NewKernel("bigmem", pairs)
	if err != nil {
		return nil, err
	}
	var out []BigmemPoint
	for _, layout := range []string{"list", "runs"} {
		var table *hashmem.Table
		if layout == "list" {
			table = hashmem.NewLegacy(lines)
		} else {
			table = hashmem.New(lines)
		}
		m := seqmatch.NewWithTable(k.Net, seqmatch.VS2, table, KernelSink())
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			k.Round(m)
		}
		secs := time.Since(t0).Seconds()
		ms := m.MatchStats()
		opp := ms.OppExaminedLeft + ms.OppExaminedRight
		pt := BigmemPoint{
			Layout:       layout,
			Pairs:        pairs,
			InitialLines: lines,
			Rounds:       rounds,
			Seconds:      secs,
			Activations:  ms.Activations,
			OppExamined:  opp,
			PairsEmitted: ms.Pairs,
			Memory:       m.MemStats(),
		}
		if secs > 0 {
			pt.ActsPerSec = float64(ms.Activations) / secs
		}
		if ms.Pairs > 0 {
			pt.OppPerPair = float64(opp) / float64(ms.Pairs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// kernelBackend is the slice of the matcher surface the kernel
// benchmarks need.
type kernelBackend interface {
	engine.Matcher
	Close()
	Activations() int64
}

// seqKernelBackend adapts the sequential matcher's recorder-based
// activation count to the parallel matcher's accessor.
type seqKernelBackend struct{ *seqmatch.Matcher }

func (s seqKernelBackend) Activations() int64 { return s.Matcher.MatchStats().Activations }

// kernelMatcher builds the backend for one kernel point: procs 0 is
// the sequential vs2 baseline, anything else the goroutine matcher.
func kernelMatcher(k *Kernel, procs int) (kernelBackend, error) {
	if procs <= 0 {
		return seqKernelBackend{seqmatch.New(k.Net, seqmatch.VS2, 0, KernelSink())}, nil
	}
	return parmatch.New(k.Net, parmatch.Config{
		Procs: procs, Queues: 4, Scheme: parmatch.SchemeSimple,
	}, KernelSink()), nil
}

// benchKernel measures one kernel at one proc count (0 = sequential
// vs2) via the standard benchmark harness.
func benchKernel(k *Kernel, procs int) (MatchKernelPoint, error) {
	var acts int64
	r := testing.Benchmark(func(b *testing.B) {
		m, err := kernelMatcher(k, procs)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Round(m)
		}
		b.StopTimer()
		acts = m.Activations() / int64(b.N)
	})
	return MatchKernelPoint{
		Kernel:         k.Name,
		Procs:          procs,
		Iterations:     r.N,
		NsPerOp:        r.NsPerOp(),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
		ActsPerOp:      float64(acts),
		Oversubscribed: procs > runtime.NumCPU(),
	}, nil
}
