package tables

import "fmt"

// SeqResults caches the instrumented sequential runs all of Tables
// 4-1..4-4 derive from.
type SeqResults struct {
	Specs []Spec
	VS1   map[string]*SeqRun
	VS2   map[string]*SeqRun
	Lisp  map[string]*SeqRun
}

// RunSeqAll executes every spec on vs1 and vs2, and optionally on the
// interpreted baseline (slow; only Table 4-4 needs it).
func RunSeqAll(specs []Spec, withLisp bool) (*SeqResults, error) {
	out := &SeqResults{
		Specs: specs,
		VS1:   map[string]*SeqRun{},
		VS2:   map[string]*SeqRun{},
		Lisp:  map[string]*SeqRun{},
	}
	for _, spec := range specs {
		r1, err := RunSeq(spec, "vs1")
		if err != nil {
			return nil, err
		}
		out.VS1[spec.Name] = r1
		r2, err := RunSeq(spec, "vs2")
		if err != nil {
			return nil, err
		}
		out.VS2[spec.Name] = r2
		if withLisp {
			rl, err := RunSeq(spec, "lisp")
			if err != nil {
				return nil, err
			}
			out.Lisp[spec.Name] = rl
		}
	}
	return out, nil
}

// Table41 reproduces Table 4-1: uniprocessor vs1 (list memories) versus
// vs2 (hash memories), with total WM changes and node activations.
func Table41(sr *SeqResults) *Table {
	t := &Table{
		ID:    "4-1",
		Title: "Uniprocessor versions (host wall-clock; paper: MicroVAX-II seconds)",
		Header: []string{"PROGRAM", "VS1 list-mem (s)", "VS2 hash-mem (s)",
			"WM-changes", "Node activations"},
	}
	for _, spec := range sr.Specs {
		v1, v2 := sr.VS1[spec.Name], sr.VS2[spec.Name]
		t.Rows = append(t.Rows, []string{
			spec.Name,
			secs(v1.Match),
			secs(v2.Match),
			fmt.Sprint(v2.Rec.M.WMChanges),
			fmt.Sprint(v2.Rec.M.Activations),
		})
	}
	return t
}

// Table42 reproduces Table 4-2: mean tokens examined in the opposite
// memory per activation (counted only when the opposite memory is
// non-empty), for left and right activations, list vs hash memories.
func Table42(sr *SeqResults) *Table {
	t := &Table{
		ID:    "4-2",
		Title: "Number of tokens examined in opposite memory",
		Header: []string{"PROGRAM",
			"left lin", "left hash", "right lin", "right hash"},
	}
	for _, spec := range sr.Specs {
		m1, m2 := &sr.VS1[spec.Name].Rec.M, &sr.VS2[spec.Name].Rec.M
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f1(mean(m1.OppExaminedLeft, m1.OppNonEmptyLeft)),
			f1(mean(m2.OppExaminedLeft, m2.OppNonEmptyLeft)),
			f1(mean(m1.OppExaminedRight, m1.OppNonEmptyRight)),
			f1(mean(m2.OppExaminedRight, m2.OppNonEmptyRight)),
		})
	}
	return t
}

// Table43 reproduces Table 4-3: mean tokens examined in the same memory
// to locate the token a delete removes, list vs hash memories.
func Table43(sr *SeqResults) *Table {
	t := &Table{
		ID:    "4-3",
		Title: "Number of tokens examined in same memory for deletes",
		Header: []string{"PROGRAM",
			"left lin", "left hash", "right lin", "right hash"},
	}
	for _, spec := range sr.Specs {
		m1, m2 := &sr.VS1[spec.Name].Rec.M, &sr.VS2[spec.Name].Rec.M
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f1(mean(m1.SameExaminedLeft, m1.DeletesLeft)),
			f1(mean(m2.SameExaminedLeft, m2.DeletesLeft)),
			f1(mean(m1.SameExaminedRight, m1.DeletesRight)),
			f1(mean(m2.SameExaminedRight, m2.DeletesRight)),
		})
	}
	return t
}

// Table44 reproduces Table 4-4: speed-up of the compiled matcher (vs2)
// over the interpreted Lisp-style baseline.
func Table44(sr *SeqResults) *Table {
	t := &Table{
		ID:     "4-4",
		Title:  "Speed-up of compiled (vs2) over interpreted (lisp-style) matcher",
		Header: []string{"PROGRAM", "interp (s)", "VS2 (s)", "Speed-up"},
	}
	for _, spec := range sr.Specs {
		rl, r2 := sr.Lisp[spec.Name], sr.VS2[spec.Name]
		if rl == nil {
			continue
		}
		ratio := rl.Match.Seconds() / r2.Match.Seconds()
		t.Rows = append(t.Rows, []string{
			spec.Name, secs(rl.Match), secs(r2.Match), f1(ratio),
		})
	}
	return t
}
