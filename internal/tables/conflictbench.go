// Conflict-set microbenchmarks: the terminal-heavy counterpart of
// matchbench.go, driving the sharded conflict set directly so ns/op
// isolates the conflict-resolution shared resource the paper's §4
// Amdahl analysis worries about. Two claims are under test, both at
// large live sets: insert/remove cost is independent of the number of
// resident instantiations (O(1) bucket ops, not the old O(n) scans),
// and Select cost follows the shard count, not the set size (cached
// per-shard bests, not the old full-set scan). cmd/psmbench -match and
// BenchmarkConflict* in bench_test.go run on top of this file; results
// land in BENCH_match.json next to the kernel rows.
package tables

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/conflict"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/stats"
	"repro/internal/wm"
)

// ConflictBenchPoint is one (op, live, shards, procs) measurement.
type ConflictBenchPoint struct {
	// Op is "churn" (one steady-state insert+remove pair per op, with
	// Live instantiations resident) or "select" (one Select per op).
	Op          string  `json:"op"`
	Live        int     `json:"live"`
	Shards      int     `json:"shards"`
	Procs       int     `json:"procs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpinsPerAcquire is conflict-set lock contention over the timed
	// region: ShardSpins/ShardAcquires, the paper's busy-lock measure.
	SpinsPerAcquire float64 `json:"spins_per_acquire"`
}

// ConflictBenchOptions configures RunConflictBench.
type ConflictBenchOptions struct {
	Lives  []int // resident live-set sizes (default 1000, 10000)
	Shards []int // shard counts to sweep (default 1, 4, 16, 64)
	Procs  []int // concurrent churner counts (default 1, 4)
}

// benchRule compiles one single-CE rule to hang instantiations off; the
// conflict set only reads its Index and Specificity.
func benchRule() *rete.CompiledRule {
	prog, err := ops5.Parse("(literalize fact id)\n(p seen (fact ^id <i>) --> (halt))")
	if err != nil {
		panic(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		panic(err)
	}
	return net.Rules[0]
}

// preloadSet fills a fresh set with live single-WME instantiations
// tagged 1..live and returns it.
func preloadSet(rule *rete.CompiledRule, shards, live int) *conflict.Set {
	cs := conflict.New(conflict.Config{Shards: shards})
	for tag := 1; tag <= live; tag++ {
		cs.InsertInstantiation(rule, []*wm.WME{{TimeTag: tag}})
	}
	return cs
}

// benchConflictChurn measures one insert+remove pair per op against a
// set holding live resident instantiations. procs>1 runs that many
// concurrent churners on disjoint keys — the lock-striping case; the
// op count then stays b.N pairs total, split across churners.
// GOMAXPROCS is raised to procs (even past the host CPU count —
// preemption while holding a stripe is what makes spins/acquire
// informative on small hosts) and restored afterwards.
func benchConflictChurn(rule *rete.CompiledRule, live, shards, procs int) ConflictBenchPoint {
	if procs > 1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	var conf stats.Conflict
	r := testing.Benchmark(func(b *testing.B) {
		cs := preloadSet(rule, shards, live)
		before := cs.StatsSnapshot()
		// Churn keys sit above the resident tags so they never collide
		// with preloaded instantiations.
		keys := make([][]*wm.WME, procs)
		for g := range keys {
			keys[g] = []*wm.WME{{TimeTag: live + 1 + g}}
		}
		b.ReportAllocs()
		b.ResetTimer()
		if procs <= 1 {
			w := keys[0]
			for i := 0; i < b.N; i++ {
				cs.InsertInstantiation(rule, w)
				cs.RemoveInstantiation(rule, w)
			}
		} else {
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					w := keys[g]
					for i := g; i < b.N; i += procs {
						cs.InsertInstantiation(rule, w)
						cs.RemoveInstantiation(rule, w)
					}
				}(g)
			}
			wg.Wait()
		}
		b.StopTimer()
		conf = cs.StatsSnapshot()
		conf.Sub(&before)
	})
	return ConflictBenchPoint{
		Op: "churn", Live: live, Shards: shards, Procs: procs,
		Iterations: r.N, NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		SpinsPerAcquire: stats.Mean(conf.ShardSpins, conf.ShardAcquires),
	}
}

// benchConflictSelect measures Select against a set holding live
// resident instantiations with a warm cache: the steady state of the
// recognize-act loop, where at most a few shards are dirty per cycle.
func benchConflictSelect(rule *rete.CompiledRule, live, shards int) ConflictBenchPoint {
	r := testing.Benchmark(func(b *testing.B) {
		cs := preloadSet(rule, shards, live)
		if cs.Select() == nil {
			b.Fatal("preloaded set selected nil")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs.Select()
		}
	})
	return ConflictBenchPoint{
		Op: "select", Live: live, Shards: shards, Procs: 1,
		Iterations: r.N, NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}
}

// RunConflictBench runs the conflict-set sweep: churn at every
// (live, shards, procs) point, Select at every (live, shards) point.
func RunConflictBench(opt ConflictBenchOptions) []ConflictBenchPoint {
	if len(opt.Lives) == 0 {
		opt.Lives = []int{1000, 10000}
	}
	if len(opt.Shards) == 0 {
		opt.Shards = []int{1, 4, 16, 64}
	}
	if len(opt.Procs) == 0 {
		opt.Procs = []int{1, 4}
	}
	rule := benchRule()
	var out []ConflictBenchPoint
	for _, live := range opt.Lives {
		for _, shards := range opt.Shards {
			for _, procs := range opt.Procs {
				out = append(out, benchConflictChurn(rule, live, shards, procs))
			}
			out = append(out, benchConflictSelect(rule, live, shards))
		}
	}
	return out
}

// FormatConflictPoint renders one sweep row for psmbench's output.
func FormatConflictPoint(p ConflictBenchPoint) string {
	return fmt.Sprintf("%-7s %6d %7d %6d  %8d  %9d  %8d  %14.3f",
		p.Op, p.Live, p.Shards, p.Procs, p.NsPerOp, p.AllocsPerOp, p.BytesPerOp, p.SpinsPerAcquire)
}
