// RunJoinBench drives the adversarial join kernels recorded in
// BENCH_join.json: the skewed-value join (what cost-based reordering
// fixes), the no-equality-test cross product (what the match budget
// contains), and the long dependent chain (what left/right unlinking
// skips). Every point is counter-based — opposite-memory candidates
// examined, unlink skips, budget trips — so the interesting numbers are
// deterministic for a fixed kernel size and gate cleanly in
// benchsmoke_test.go.
package tables

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

// JoinBenchOptions configures RunJoinBench.
type JoinBenchOptions struct {
	Procs []int // parallel proc counts to sweep (default 1,2,4)
	// Modes restricts the join-order sweep: "planned", "source", or both
	// (the default).
	Modes []string
	// SkewItems sizes the skew kernel (parts = items/2; default 64).
	// SkewTicks is the number of conf modifications (default 40).
	SkewItems int
	SkewTicks int
	// CrossObjs sizes the cross-product kernel (default 24 objs);
	// CrossTicks probes (default 30); CrossBudget the per-cycle match
	// budget of the contained runs (default 300 — below one probe's
	// objs^2 scan).
	CrossObjs   int
	CrossTicks  int
	CrossBudget int64
	// ChainVals x ChainDepth sizes the dependent chain (default 32 x 8).
	ChainVals  int
	ChainDepth int
}

func (o *JoinBenchOptions) fill() {
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4}
	}
	if len(o.Modes) == 0 {
		o.Modes = []string{"planned", "source"}
	}
	if o.SkewItems <= 0 {
		o.SkewItems = 64
	}
	if o.SkewTicks <= 0 {
		o.SkewTicks = 40
	}
	if o.CrossObjs <= 0 {
		o.CrossObjs = 24
	}
	if o.CrossTicks <= 0 {
		o.CrossTicks = 30
	}
	if o.CrossBudget <= 0 {
		o.CrossBudget = 300
	}
	if o.ChainVals <= 0 {
		o.ChainVals = 32
	}
	if o.ChainDepth <= 0 {
		o.ChainDepth = 8
	}
}

// JoinPoint is one kernel execution. OppExamined is the sum of
// opposite-memory candidates examined across every live join —
// the planner's object function, and the quantity the skew gate
// ratios between modes.
type JoinPoint struct {
	Kernel  string `json:"kernel"`
	Mode    string `json:"mode"`    // "planned" or "source" join order
	Backend string `json:"backend"` // "vs2" or "parallel"
	Procs   int    `json:"procs,omitempty"`
	Unlink  bool   `json:"unlink,omitempty"`
	Budget  int64  `json:"budget,omitempty"`

	Seconds     float64  `json:"seconds"`
	Cycles      int      `json:"cycles"`
	Firings     int      `json:"firings"`
	OppExamined int64    `json:"opp_examined"`
	Activations int64    `json:"activations"`
	UnlinkSkips int64    `json:"unlink_skips,omitempty"`
	Relinks     int64    `json:"relinks,omitempty"`
	BudgetTrips int64    `json:"budget_trips,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	// Oversubscribed: see MatchWorkloadPoint.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// JoinBenchReport is the BENCH_join.json payload. The derived ratios
// are computed from the sequential points (deterministic counters):
// SkewGain is source/planned opposite-memory candidates on the skew
// kernel, CrossContainment is unbudgeted/budgeted candidates on the
// cross kernel, ChainNullActRatio is with-unlink/without-unlink
// activations on the never-relinked chainidle kernel (the head-on
// chain kernel replays its buffered work, so its trace-equality check
// is the interesting part there).
type JoinBenchReport struct {
	HostCPUs          int         `json:"host_cpus"`
	SkewGain          float64     `json:"skew_gain"`
	CrossContainment  float64     `json:"cross_containment"`
	ChainNullActRatio float64     `json:"chain_null_act_ratio"`
	ChainUnlinkSkips  int64       `json:"chain_unlink_skips"`
	Points            []JoinPoint `json:"points"`
}

// joinRunConfig is one execution request against a kernel source.
type joinRunConfig struct {
	mode   string // "planned" or "source"
	procs  int    // 0 = sequential vs2
	unlink bool
	budget int64
}

// runJoinKernel compiles src in the requested join order and executes
// it to completion on the requested backend.
func runJoinKernel(kernel, src string, rc joinRunConfig) (*JoinPoint, error) {
	spec := Spec{Name: kernel, Src: src}
	prog, _, err := compile(spec)
	if err != nil {
		return nil, err
	}
	var net *rete.Network
	if rc.mode == "planned" {
		net, err = rete.CompileWithPlan(prog, rete.PlanConfig{Reorder: true})
	} else {
		net, err = rete.Compile(prog)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: compile (%s): %w", kernel, rc.mode, err)
	}

	pt := &JoinPoint{
		Kernel: kernel, Mode: rc.mode, Backend: "vs2",
		Unlink: rc.unlink, Budget: rc.budget,
	}
	var (
		examined func() []int64
		unlinked func() (int64, int64)
		acts     func() int64
	)
	if rc.procs <= 0 {
		cs := conflict.New(conflict.Config{Shards: 1})
		sm := seqmatch.New(net, seqmatch.VS2, 0, cs)
		if rc.unlink {
			sm.EnableUnlink()
		}
		examined = sm.JoinExamined
		unlinked = func() (int64, int64) { ms := sm.MatchStats(); return ms.UnlinkSkips, ms.Relinks }
		acts = func() int64 { return sm.MatchStats().Activations }
		e, err := engine.New(prog, net, cs, sm, nil)
		if err != nil {
			return nil, err
		}
		return finishJoinRun(pt, e, rc, examined, unlinked, acts)
	}

	pt.Backend = "parallel"
	pt.Procs = rc.procs
	pt.Oversubscribed = rc.procs > runtime.NumCPU()
	cs := conflict.NewSet()
	pm := parmatch.New(net, parmatch.Config{
		Procs: rc.procs, Queues: 4, Scheme: parmatch.SchemeSimple, Unlink: rc.unlink,
	}, cs)
	defer pm.Close()
	examined = pm.JoinExamined
	unlinked = func() (int64, int64) { ms := pm.MatchStats(); return ms.UnlinkSkips, ms.Relinks }
	acts = func() int64 { return pm.MatchStats().Activations }
	e, err := engine.New(prog, net, cs, pm, nil)
	if err != nil {
		return nil, err
	}
	return finishJoinRun(pt, e, rc, examined, unlinked, acts)
}

func finishJoinRun(pt *JoinPoint, e *engine.Engine, rc joinRunConfig,
	examined func() []int64, unlinked func() (int64, int64), acts func() int64) (*JoinPoint, error) {
	start := time.Now()
	if err := e.Init(); err != nil {
		return nil, fmt.Errorf("%s/%s: init: %w", pt.Kernel, pt.Mode, err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, MatchBudget: rc.budget, RecordFiring: true})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", pt.Kernel, pt.Mode, err)
	}
	if !res.Halted {
		return nil, fmt.Errorf("%s/%s: run did not halt (%d cycles)", pt.Kernel, pt.Mode, res.Cycles)
	}
	pt.Seconds = time.Since(start).Seconds()
	pt.Cycles = res.Cycles
	pt.Firings = len(res.Firings)
	for _, n := range examined() {
		pt.OppExamined += n
	}
	pt.UnlinkSkips, pt.Relinks = unlinked()
	pt.Activations = acts()
	pt.BudgetTrips = e.EpochStats().BudgetTrips
	for _, q := range e.Quarantined() {
		pt.Quarantined = append(pt.Quarantined, q.Rule)
	}
	return pt, nil
}

// RunJoinBench runs the full join-kernel sweep.
func RunJoinBench(opt JoinBenchOptions) (*JoinBenchReport, error) {
	opt.fill()
	rep := &JoinBenchReport{HostCPUs: runtime.NumCPU()}
	add := func(kernel, src string, rc joinRunConfig) (*JoinPoint, error) {
		pt, err := runJoinKernel(kernel, src, rc)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *pt)
		return pt, nil
	}

	// Skew: the join-order sweep. Firing traces must agree between
	// modes — reordering is an optimization, never a semantic change.
	skew := workload.SkewJoin(opt.SkewItems, opt.SkewTicks)
	seqExamined := map[string]int64{}
	seqFirings := map[string]int{}
	for _, mode := range opt.Modes {
		pt, err := add("skew", skew, joinRunConfig{mode: mode})
		if err != nil {
			return nil, err
		}
		seqExamined[mode] = pt.OppExamined
		seqFirings[mode] = pt.Firings
		for _, p := range opt.Procs {
			if _, err := add("skew", skew, joinRunConfig{mode: mode, procs: p}); err != nil {
				return nil, err
			}
		}
	}
	if len(opt.Modes) == 2 {
		if seqFirings["planned"] != seqFirings["source"] {
			return nil, fmt.Errorf("skew: planned fired %d, source %d — reordering changed the computation",
				seqFirings["planned"], seqFirings["source"])
		}
		if p := seqExamined["planned"]; p > 0 {
			rep.SkewGain = float64(seqExamined["source"]) / float64(p)
		}
	}

	// Cross product: unbudgeted vs contained. The planner cannot help
	// (no order fixes a cross product), so the mode is source for both.
	cross := workload.CrossProduct(opt.CrossObjs, opt.CrossTicks)
	free, err := add("crossprod", cross, joinRunConfig{mode: "source"})
	if err != nil {
		return nil, err
	}
	capped, err := add("crossprod", cross, joinRunConfig{mode: "source", budget: opt.CrossBudget})
	if err != nil {
		return nil, err
	}
	for _, p := range opt.Procs {
		if _, err := add("crossprod", cross, joinRunConfig{mode: "source", procs: p, budget: opt.CrossBudget}); err != nil {
			return nil, err
		}
	}
	if capped.OppExamined > 0 {
		rep.CrossContainment = float64(free.OppExamined) / float64(capped.OppExamined)
	}

	// Chain, head on: the correctness shape. The head arrives last, the
	// chain relinks and replays everything it buffered, and the firing
	// trace must match the always-linked run exactly.
	chain := workload.DepChain(opt.ChainVals, opt.ChainDepth, true)
	linked, err := add("chain", chain, joinRunConfig{mode: "planned"})
	if err != nil {
		return nil, err
	}
	unlinkedPt, err := add("chain", chain, joinRunConfig{mode: "planned", unlink: true})
	if err != nil {
		return nil, err
	}
	for _, p := range opt.Procs {
		if _, err := add("chain", chain, joinRunConfig{mode: "planned", procs: p, unlink: true}); err != nil {
			return nil, err
		}
	}
	if linked.Firings != unlinkedPt.Firings {
		return nil, fmt.Errorf("chain: unlinked fired %d, linked %d — unlinking changed the computation",
			unlinkedPt.Firings, linked.Firings)
	}

	// Chain, head off: the gate never opens, so what the linked run
	// spends on null right activations the unlinked run skips outright.
	idle := workload.DepChain(opt.ChainVals, opt.ChainDepth, false)
	idleLinked, err := add("chainidle", idle, joinRunConfig{mode: "planned"})
	if err != nil {
		return nil, err
	}
	idleUnlinked, err := add("chainidle", idle, joinRunConfig{mode: "planned", unlink: true})
	if err != nil {
		return nil, err
	}
	for _, p := range opt.Procs {
		if _, err := add("chainidle", idle, joinRunConfig{mode: "planned", procs: p, unlink: true}); err != nil {
			return nil, err
		}
	}
	if idleLinked.Activations > 0 {
		rep.ChainNullActRatio = float64(idleUnlinked.Activations) / float64(idleLinked.Activations)
	}
	rep.ChainUnlinkSkips = idleUnlinked.UnlinkSkips
	return rep, nil
}
