package tables_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/tables"
)

// TestProgramsParseAtScales guards the spec generator across scales.
func TestProgramsParseAtScales(t *testing.T) {
	for _, scale := range []float64{0.1, 0.5, 1.0} {
		specs := tables.Programs(scale)
		if len(specs) != 3 {
			t.Fatalf("scale %v: %d specs", scale, len(specs))
		}
		for _, s := range specs {
			if _, err := tables.RunSeq(s, "vs2"); err != nil {
				t.Fatalf("scale %v %s: %v", scale, s.Name, err)
			}
		}
	}
}

// TestSeqTablesShape builds Tables 4-1..4-4 at small scale and checks
// the qualitative relations the paper reports.
func TestSeqTablesShape(t *testing.T) {
	specs := tables.Programs(0.4)
	sr, err := tables.RunSeqAll(specs, true)
	if err != nil {
		t.Fatal(err)
	}
	t41 := tables.Table41(sr)
	if len(t41.Rows) != 3 {
		t.Fatalf("table 4-1 rows = %d", len(t41.Rows))
	}
	// Table 4-1's claim — hash memories beat list memories — is checked
	// on deterministic counters, not wall-clock: vs2 never examines more
	// memory tokens than vs1 on identical work (same activation count).
	for _, spec := range specs {
		v1, v2 := sr.VS1[spec.Name], sr.VS2[spec.Name]
		if v1.Activations != v2.Activations {
			t.Errorf("%s: activations differ, vs1 %d vs2 %d",
				spec.Name, v1.Activations, v2.Activations)
		}
		scan1 := v1.Rec.M.OppExaminedLeft + v1.Rec.M.OppExaminedRight +
			v1.Rec.M.SameExaminedLeft + v1.Rec.M.SameExaminedRight
		scan2 := v2.Rec.M.OppExaminedLeft + v2.Rec.M.OppExaminedRight +
			v2.Rec.M.SameExaminedLeft + v2.Rec.M.SameExaminedRight
		if scan2 > scan1 {
			t.Errorf("%s: vs2 examined %d tokens, vs1 only %d",
				spec.Name, scan2, scan1)
		}
	}
	// Table 4-2: hash never examines more than list memories (left side).
	t42 := tables.Table42(sr)
	for _, row := range t42.Rows {
		lin, _ := strconv.ParseFloat(row[1], 64)
		hash, _ := strconv.ParseFloat(row[2], 64)
		if hash > lin {
			t.Errorf("%s: hash left (%v) exceeds lin (%v)", row[0], hash, lin)
		}
	}
	// Table 4-4: the interpreter always loses. The rendered table still
	// reports the wall-clock ratio, but the test asserts the claim on
	// deterministic counters: both matchers compute the same match
	// (activation parity), and the interpreter spends several counted
	// work items — dispatches, boxings, predicate applications — for
	// every work item vs2 counts. Those counts depend only on the
	// program, never on machine load.
	t44 := tables.Table44(sr)
	if len(t44.Rows) != 3 {
		t.Fatalf("table 4-4 rows = %d", len(t44.Rows))
	}
	for _, spec := range specs {
		rl, r2 := sr.Lisp[spec.Name], sr.VS2[spec.Name]
		if rl.Activations != r2.Activations {
			t.Errorf("%s: interp activations %d != vs2 %d",
				spec.Name, rl.Activations, r2.Activations)
		}
		m2 := &r2.Rec.M
		vs2Work := m2.Activations + m2.ConstTests + m2.Pairs +
			m2.OppExaminedLeft + m2.OppExaminedRight +
			m2.SameExaminedLeft + m2.SameExaminedRight
		if rl.InterpOps < 2*vs2Work {
			t.Errorf("%s: interp ops %d < 2x vs2 work %d",
				spec.Name, rl.InterpOps, vs2Work)
		}
		t.Logf("%s: interp ops %d, vs2 work %d (ratio %.1f)",
			spec.Name, rl.InterpOps, vs2Work,
			float64(rl.InterpOps)/float64(vs2Work))
	}
}

// TestRenderAligns checks the plain-text renderer.
func TestRenderAligns(t *testing.T) {
	tb := &tables.Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"A", "LONGCOL"},
		Rows:   [][]string{{"aaaa", "b"}, {"c", "dd"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Table X: demo") {
		t.Fatalf("title line %q", lines[0])
	}
	// Column positions align across rows.
	pos := strings.Index(lines[1], "LONGCOL")
	if strings.Index(lines[2], "b") != pos || strings.Index(lines[3], "dd") != pos {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

// TestSimTableSmall runs the simulation grid at tiny scale end to end.
func TestSimTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	specs := tables.Programs(0.2)
	sim, err := tables.RunSimAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*tables.Table{
		tables.Table45(sim), tables.Table46(sim), tables.Table47(sim),
		tables.Table48(sim), tables.Table49(sim),
	} {
		if len(tab.Rows) != 3 {
			t.Fatalf("table %s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("table %s: row width %d vs header %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
	// Monotone headline: Table 4-6 speed-up at 1+13 exceeds 1+1 for all.
	t46 := tables.Table46(sim)
	for _, row := range t46.Rows {
		first, _ := strconv.ParseFloat(row[2], 64)
		last, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if last <= first {
			t.Errorf("%s: no scaling, 1+1=%v 1+13=%v", row[0], first, last)
		}
	}
}

// TestAblationsSmall exercises the ablation harness.
func TestAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	specs := tables.Programs(0.2)
	rows, err := tables.RunAblations(specs)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables.AblationTable(specs, rows)
	if len(tab.Rows) != len(rows) {
		t.Fatalf("ablation table rows = %d, want %d", len(tab.Rows), len(rows))
	}
	if _, err := tables.ControlOverlapTable(specs); err != nil {
		t.Fatal(err)
	}
}
