package tables_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/tables"
)

// TestProgramsParseAtScales guards the spec generator across scales.
func TestProgramsParseAtScales(t *testing.T) {
	for _, scale := range []float64{0.1, 0.5, 1.0} {
		specs := tables.Programs(scale)
		if len(specs) != 3 {
			t.Fatalf("scale %v: %d specs", scale, len(specs))
		}
		for _, s := range specs {
			if _, err := tables.RunSeq(s, "vs2"); err != nil {
				t.Fatalf("scale %v %s: %v", scale, s.Name, err)
			}
		}
	}
}

// TestSeqTablesShape builds Tables 4-1..4-4 at small scale and checks
// the qualitative relations the paper reports.
func TestSeqTablesShape(t *testing.T) {
	specs := tables.Programs(0.4)
	sr, err := tables.RunSeqAll(specs, true)
	if err != nil {
		t.Fatal(err)
	}
	t41 := tables.Table41(sr)
	if len(t41.Rows) != 3 {
		t.Fatalf("table 4-1 rows = %d", len(t41.Rows))
	}
	// vs2 is never slower than 2x vs1 (it should generally be faster).
	for _, row := range t41.Rows {
		v1, _ := strconv.ParseFloat(row[1], 64)
		v2, _ := strconv.ParseFloat(row[2], 64)
		if v2 > 2*v1 {
			t.Errorf("%s: vs2 (%v) much slower than vs1 (%v)", row[0], v2, v1)
		}
	}
	// Table 4-2: hash never examines more than list memories (left side).
	t42 := tables.Table42(sr)
	for _, row := range t42.Rows {
		lin, _ := strconv.ParseFloat(row[1], 64)
		hash, _ := strconv.ParseFloat(row[2], 64)
		if hash > lin {
			t.Errorf("%s: hash left (%v) exceeds lin (%v)", row[0], hash, lin)
		}
	}
	// Table 4-4: the interpreter always loses, at every scale.
	t44 := tables.Table44(sr)
	for _, row := range t44.Rows {
		sp, _ := strconv.ParseFloat(row[3], 64)
		if sp < 2 {
			t.Errorf("%s: interp speed-up only %v", row[0], sp)
		}
	}
}

// TestRenderAligns checks the plain-text renderer.
func TestRenderAligns(t *testing.T) {
	tb := &tables.Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"A", "LONGCOL"},
		Rows:   [][]string{{"aaaa", "b"}, {"c", "dd"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Table X: demo") {
		t.Fatalf("title line %q", lines[0])
	}
	// Column positions align across rows.
	pos := strings.Index(lines[1], "LONGCOL")
	if strings.Index(lines[2], "b") != pos || strings.Index(lines[3], "dd") != pos {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

// TestSimTableSmall runs the simulation grid at tiny scale end to end.
func TestSimTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is slow")
	}
	specs := tables.Programs(0.2)
	sim, err := tables.RunSimAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*tables.Table{
		tables.Table45(sim), tables.Table46(sim), tables.Table47(sim),
		tables.Table48(sim), tables.Table49(sim),
	} {
		if len(tab.Rows) != 3 {
			t.Fatalf("table %s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("table %s: row width %d vs header %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
	// Monotone headline: Table 4-6 speed-up at 1+13 exceeds 1+1 for all.
	t46 := tables.Table46(sim)
	for _, row := range t46.Rows {
		first, _ := strconv.ParseFloat(row[2], 64)
		last, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if last <= first {
			t.Errorf("%s: no scaling, 1+1=%v 1+13=%v", row[0], first, last)
		}
	}
}

// TestAblationsSmall exercises the ablation harness.
func TestAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	specs := tables.Programs(0.2)
	rows, err := tables.RunAblations(specs)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables.AblationTable(specs, rows)
	if len(tab.Rows) != len(rows) {
		t.Fatalf("ablation table rows = %d, want %d", len(tab.Rows), len(rows))
	}
	if _, err := tables.ControlOverlapTable(specs); err != nil {
		t.Fatal(err)
	}
}
