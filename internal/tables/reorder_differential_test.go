package tables

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/workload"
)

// bigmemDiffSrc is an engine-runnable version of the bigmem kernel: n
// account/transaction pairs consumed through the single equality join,
// with a control element adding a third condition so the rule is
// eligible for reordering.
func bigmemDiffSrc(n int) string {
	var b strings.Builder
	b.WriteString(`; bigmem differential: pair off accts and txns through one eq join.
(literalize ctl on)
(literalize acct id)
(literalize txn id)
(p pay
  (ctl ^on yes)
  (acct ^id <i>)
  (txn ^id <i>)
-->
  (remove 3))
(p done
  (ctl ^on yes)
  - (txn)
-->
  (halt))
(make ctl ^on yes)
`)
	for v := 1; v <= n; v++ {
		fmt.Fprintf(&b, "(make acct ^id %d)\n(make txn ^id %d)\n", v, v)
	}
	return b.String()
}

// reorderFingerprint runs spec on one backend under one compile mode
// and returns a canonical transcript: every firing with its time tags,
// the final WM (tag + fields, sorted), the next time tag, and the
// program's write output. Any semantic divergence between join orders
// shows up as a fingerprint mismatch.
func reorderFingerprint(t *testing.T, spec Spec, backend string, reorder, unlink bool) string {
	t.Helper()
	prog, err := ops5.Parse(spec.Src)
	if err != nil {
		t.Fatalf("%s: parse: %v", spec.Name, err)
	}
	net, err := rete.CompileWithPlan(prog, rete.PlanConfig{Reorder: reorder})
	if err != nil {
		t.Fatalf("%s: compile (reorder=%v): %v", spec.Name, reorder, err)
	}
	var m engine.Matcher
	var cs *conflict.Set
	switch backend {
	case "vs1", "vs2":
		variant := seqmatch.VS1
		if backend == "vs2" {
			variant = seqmatch.VS2
		}
		cs = conflict.New(conflict.Config{Shards: 1})
		sm := seqmatch.New(net, variant, 0, cs)
		if unlink {
			sm.EnableUnlink()
		}
		m = sm
	case "parallel":
		cs = conflict.NewSet()
		pm := parmatch.New(net, parmatch.Config{
			Procs: 4, Queues: 2, Scheme: parmatch.SchemeSimple, Unlink: unlink,
		}, cs)
		defer pm.Close()
		m = pm
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	var out strings.Builder
	e, err := engine.New(prog, net, cs, m, &out)
	if err != nil {
		t.Fatalf("%s: engine: %v", spec.Name, err)
	}
	if err := e.Init(); err != nil {
		t.Fatalf("%s: init: %v", spec.Name, err)
	}
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, RecordFiring: true})
	if err != nil {
		t.Fatalf("%s/%s (reorder=%v): run: %v", spec.Name, backend, reorder, err)
	}
	if !res.Halted {
		t.Fatalf("%s/%s (reorder=%v): did not halt in %d cycles", spec.Name, backend, reorder, res.Cycles)
	}
	var b strings.Builder
	for _, f := range res.Firings {
		fmt.Fprintf(&b, "fire %s @%d %v\n", f.Rule, f.Cycle, f.TimeTags)
	}
	snap := e.CaptureState()
	wmes := make([]string, len(snap.Wmes))
	for i, w := range snap.Wmes {
		wmes[i] = fmt.Sprintf("wm %d %v", w.Tag, w.Fields)
	}
	sort.Strings(wmes)
	b.WriteString(strings.Join(wmes, "\n"))
	fmt.Fprintf(&b, "\nnexttag %d\nout %q\n", snap.NextTag, out.String())
	return b.String()
}

// TestReorderDifferential is the `make reorder-differential` gate:
// every workload compiled with the join-order planner must produce
// byte-identical firing traces (rules + time tags + cycles), final
// working memory and program output as the source-order compile, on
// every matcher backend, with and without beta unlinking. This is the
// semantic contract of the planner's TokenPerm remapping — reordering
// may change how much work the match does, never what it computes.
func TestReorderDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("reorder differential sweep is slow")
	}
	specs := []Spec{
		{Name: "Tourney", Src: workload.Tourney(8)},
		{Name: "Weaver", Src: workload.Weaver(4, 7)},
		{Name: "Sweep", Src: SweepSrc(200)},
		{Name: "bigmem", Src: bigmemDiffSrc(64)},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, backend := range []string{"vs1", "vs2", "parallel"} {
				backend := backend
				t.Run(backend, func(t *testing.T) {
					ref := reorderFingerprint(t, spec, backend, false, false)
					for _, mode := range []struct {
						name            string
						reorder, unlink bool
					}{
						{"reorder", true, false},
						{"reorder+unlink", true, true},
						{"unlink", false, true},
					} {
						got := reorderFingerprint(t, spec, backend, mode.reorder, mode.unlink)
						if got == ref {
							continue
						}
						refLines, gotLines := strings.Split(ref, "\n"), strings.Split(got, "\n")
						for i := range refLines {
							line := "<missing>"
							if i < len(gotLines) {
								line = gotLines[i]
							}
							if refLines[i] != line {
								t.Fatalf("%s diverges from source order at line %d:\n source %q\n %-6s %q",
									mode.name, i, refLines[i], mode.name, line)
							}
						}
						t.Fatalf("%s transcript longer than source order: %d vs %d lines",
							mode.name, len(gotLines), len(refLines))
					}
				})
			}
		})
	}
}
