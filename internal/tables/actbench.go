// Act-phase benchmarks for the speculative multi-fire engine. These run
// the full recognize-act loop — parse, compile, Init, Run — on the real
// goroutine matcher and sweep FireBatch × procs, so the headline number
// is whole-run cycles/sec: how much faster the engine retires rule
// firings when the act phase pops a batch of non-conflicting dominant
// instantiations per drain instead of one. cmd/psmbench -act runs on
// top of this file and records the results in BENCH_act.json; the
// bench-smoke gate checks the host-independent structural properties
// (FireBatch-equivalence of the run, group-formation share, rollback
// ratio) rather than wall-clock.
package tables

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/parmatch"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ActBenchOptions sizes the act-phase sweep.
type ActBenchOptions struct {
	// Scale shrinks the Tourney/Weaver workloads (1.0 = paper scale).
	Scale float64
	// FireBatches is the act-batch sweep (default 1,4,8). 1 is the
	// serial baseline every other point is compared against.
	FireBatches []int
	// Procs is the match-process sweep (default 1,2,4,8).
	Procs []int
	// Reps per point; the fastest run is recorded (default 3).
	Reps int
	// SweepItems sizes the Sweep workload: that many (item) elements
	// removed one rule firing each (default 2000). Sweep is the
	// term-style stress for the batched act path — every cycle is a
	// pure-removal firing, so grouping is the whole run.
	SweepItems int
}

func (o *ActBenchOptions) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.FireBatches) == 0 {
		o.FireBatches = []int{1, 4, 8}
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4, 8}
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.SweepItems <= 0 {
		o.SweepItems = 2000
	}
}

// ActBenchPoint is one (workload, fire-batch, procs) run of the full
// engine on the goroutine matcher.
type ActBenchPoint struct {
	Workload     string    `json:"workload"`
	FireBatch    int       `json:"fire_batch"`
	Procs        int       `json:"procs"`
	GoMaxProcs   int       `json:"gomaxprocs"`
	Cycles       int       `json:"cycles"`
	Seconds      float64   `json:"seconds"`
	CyclesPerSec float64   `json:"cycles_per_sec"`
	Act          stats.Act `json:"act"`
	// GroupedShare is the fraction of all cycles retired inside a
	// committed multi-fire group — how often the batched path actually
	// engaged. Structural for a fixed workload, so smoke-gateable.
	GroupedShare float64 `json:"grouped_share"`
	// RollbackRatio is rolled-back speculative fires over all
	// speculative fires — wasted staging work.
	RollbackRatio float64 `json:"rollback_ratio"`
	// Speedup is CyclesPerSec over the FireBatch=1 point of the same
	// (workload, procs); 0 for the baseline points themselves.
	Speedup float64 `json:"speedup,omitempty"`
	// Oversubscribed: procs exceeded host CPUs, see MatchWorkloadPoint.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// ActBenchReport is the BENCH_act.json payload.
type ActBenchReport struct {
	HostCPUs    int             `json:"host_cpus"`
	Scale       float64         `json:"scale"`
	FireBatches []int           `json:"fire_batches"`
	Procs       []int           `json:"procs_swept"`
	SweepItems  int             `json:"sweep_items"`
	Points      []ActBenchPoint `json:"points"`
}

// SweepSrc generates the Sweep workload: a context element plus n items,
// one pure-removal rule that clears them, and a halt rule that fires
// once the last item is gone. Every cycle but the final halt is a
// GroupSafe removal whose read set is disjoint from every other
// firing's write set, so a FireBatch-k engine retires the run in ~n/k
// drains — the best case the batched act phase is built for, analogous
// to the term match-kernel's every-change-is-a-terminal property.
func SweepSrc(items int) string {
	var b strings.Builder
	b.WriteString("; Sweep: act-phase removal storm.\n")
	b.WriteString("(literalize ctx phase)\n(literalize item n)\n")
	b.WriteString(`(p sweep
  (ctx ^phase go)
  (item ^n <n>)
-->
  (remove 2))
(p done
  (ctx ^phase go)
- (item ^n <nn>)
-->
  (halt))
(make ctx ^phase go)
`)
	for i := 1; i <= items; i++ {
		fmt.Fprintf(&b, "(make item ^n %d)\n", i)
	}
	return b.String()
}

// ActPrograms returns the act-phase workloads: the two paper programs
// whose runs include removal bursts (Tourney's busy-marker sweep,
// Weaver's cleanup) plus the synthetic Sweep stress.
func ActPrograms(scale float64, sweepItems int) []Spec {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []Spec{
		{Name: "Tourney", Src: workload.Tourney(s(16))},
		{Name: "Weaver", Src: workload.Weaver(s(20), 9)},
		{Name: "Sweep", Src: SweepSrc(sweepItems)},
	}
}

// RunActPoint executes one spec on the goroutine matcher with the given
// act batch and returns the measured point (without Speedup, which
// needs the matching baseline).
func RunActPoint(spec Spec, procs, fireBatch int) (*ActBenchPoint, error) {
	prog, net, err := compile(spec)
	if err != nil {
		return nil, err
	}
	cs := conflict.NewSet()
	pm := parmatch.New(net, parmatch.Config{Procs: procs, Queues: 4, Scheme: parmatch.SchemeSimple}, cs)
	defer pm.Close()
	e, err := engine.New(prog, net, cs, pm, nil)
	if err != nil {
		return nil, err
	}
	if err := e.Init(); err != nil {
		return nil, fmt.Errorf("%s: init: %w", spec.Name, err)
	}
	start := time.Now()
	res, err := e.Run(engine.Options{MaxCycles: maxCycles, FireBatch: fireBatch})
	if err != nil {
		return nil, fmt.Errorf("%s fb=%d procs=%d: %w", spec.Name, fireBatch, procs, err)
	}
	secs := time.Since(start).Seconds()
	if !res.Halted {
		return nil, fmt.Errorf("%s fb=%d procs=%d: run did not halt (%d cycles)", spec.Name, fireBatch, procs, res.Cycles)
	}
	act := e.ActStats()
	pt := &ActBenchPoint{
		Workload:       spec.Name,
		FireBatch:      fireBatch,
		Procs:          procs,
		Cycles:         res.Cycles,
		Seconds:        secs,
		Act:            act,
		Oversubscribed: procs > runtime.NumCPU(),
	}
	if secs > 0 {
		pt.CyclesPerSec = float64(res.Cycles) / secs
	}
	if res.Cycles > 0 {
		pt.GroupedShare = float64(act.GroupedFires) / float64(res.Cycles)
	}
	if act.SpeculativeFires > 0 {
		pt.RollbackRatio = float64(act.RolledBackFires) / float64(act.SpeculativeFires)
	}
	return pt, nil
}

// RunActBench runs the FireBatch × procs sweep over the act workloads.
// Like RunMatchBench it adjusts GOMAXPROCS per point (procs+1 for the
// control process, capped at the host CPUs) and restores it; reps are
// interleaved across the sweep so host phases don't bias one point.
func RunActBench(opt ActBenchOptions) (*ActBenchReport, error) {
	opt.fill()
	rep := &ActBenchReport{
		HostCPUs:    runtime.NumCPU(),
		Scale:       opt.Scale,
		FireBatches: opt.FireBatches,
		Procs:       opt.Procs,
		SweepItems:  opt.SweepItems,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type combo struct{ procs, batch int }
	var combos []combo
	for _, p := range opt.Procs {
		for _, fb := range opt.FireBatches {
			combos = append(combos, combo{p, fb})
		}
	}
	for _, spec := range ActPrograms(opt.Scale, opt.SweepItems) {
		best := make([]*ActBenchPoint, len(combos))
		for r := 0; r < opt.Reps; r++ {
			for j := range combos {
				i := (j + r) % len(combos)
				c := combos[i]
				gm := c.procs + 1
				if n := runtime.NumCPU(); gm > n {
					gm = n
				}
				runtime.GOMAXPROCS(gm)
				pt, err := RunActPoint(spec, c.procs, c.batch)
				if err != nil {
					return nil, err
				}
				pt.GoMaxProcs = gm
				if best[i] == nil || pt.Seconds < best[i].Seconds {
					best[i] = pt
				}
			}
		}
		// Attach speedups against the FireBatch=1 point at equal procs.
		base := map[int]*ActBenchPoint{}
		for _, pt := range best {
			if pt.FireBatch <= 1 {
				base[pt.Procs] = pt
			}
		}
		for _, pt := range best {
			if b := base[pt.Procs]; pt.FireBatch > 1 && b != nil && pt.Seconds > 0 {
				pt.Speedup = b.Seconds / pt.Seconds
			}
			rep.Points = append(rep.Points, *pt)
		}
	}
	return rep, nil
}
