// Package wmlog is the durability layer under the inference server: an
// append-only, per-session working-memory delta log plus periodic
// snapshots, stored in a data directory the daemon owns.
//
// The log is the unit of recovery. Every record is one event of the
// recognize-act history — a make or remove with its time tag, a
// production firing (the refraction event conflict resolution needs), a
// halt, or a runtime program change — framed with a length prefix and a
// CRC so a torn tail from a crash is detected and dropped instead of
// corrupting replay. Replaying the log through the ordinary match
// machinery *is* crash recovery: the engine rebuilds working memory,
// node memories and the conflict set (fired instantiations included) to
// the exact state of the last durable record.
//
// Snapshots bound replay time: a snapshot serializes the session's
// settled state (tagged WMEs, fired-instantiation keys, the time-tag
// counter, the halt flag) together with the program hash that pins its
// identity and the log offset it covers, so recovery is snapshot +
// log-suffix. The same snapshot encoding is what the server's warm
// template sessions share with their copy-on-write forks.
//
// Values are serialized symbolically (symbol names, not interned IDs),
// so a recovered session re-interns them against its freshly parsed
// program and the log survives daemon restarts.
package wmlog

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/symbols"
	"repro/internal/wm"
)

// RecType discriminates log records.
type RecType uint8

// Log record types. The zero value is invalid so a zeroed frame can
// never decode as a record.
const (
	RecMake       RecType = 1 // WM assert: time tag + field vector
	RecRemove     RecType = 2 // WM retract: time tag
	RecFire       RecType = 3 // production firing: rule name + token tags
	RecHalt       RecType = 4 // (halt) executed
	RecProgram    RecType = 5 // runtime build/excise: one canonical form
	RecAccept     RecType = 6 // input supplied to the accept queue: value vector
	RecAcceptTake RecType = 7 // input consumed by (accept)/(acceptline): count in Tag
)

func (t RecType) String() string {
	switch t {
	case RecMake:
		return "make"
	case RecRemove:
		return "remove"
	case RecFire:
		return "fire"
	case RecHalt:
		return "halt"
	case RecProgram:
		return "program"
	case RecAccept:
		return "accept"
	case RecAcceptTake:
		return "accept-take"
	default:
		return fmt.Sprintf("rectype(%d)", int(t))
	}
}

// FieldVal is one working-memory field serialized independently of any
// symbol table: symbols travel by name and are re-interned on replay.
type FieldVal struct {
	Kind wm.Kind
	Str  string  // KindSym: symbol name
	Num  int64   // KindInt
	F    float64 // KindFloat
}

// EncodeValue lifts a runtime value out of its symbol table.
func EncodeValue(v wm.Value, tab *symbols.Table) FieldVal {
	switch v.Kind {
	case wm.KindSym:
		return FieldVal{Kind: wm.KindSym, Str: tab.Name(v.Sym)}
	case wm.KindInt:
		return FieldVal{Kind: wm.KindInt, Num: v.Num}
	case wm.KindFloat:
		return FieldVal{Kind: wm.KindFloat, F: v.F}
	default:
		return FieldVal{Kind: wm.KindNil}
	}
}

// Value re-interns the field against tab.
func (f FieldVal) Value(tab *symbols.Table) wm.Value {
	switch f.Kind {
	case wm.KindSym:
		return wm.Sym(tab.Intern(f.Str))
	case wm.KindInt:
		return wm.Int(f.Num)
	case wm.KindFloat:
		return wm.Float(f.F)
	default:
		return wm.Nil
	}
}

// EncodeFields serializes a whole field vector.
func EncodeFields(fields []wm.Value, tab *symbols.Table) []FieldVal {
	out := make([]FieldVal, len(fields))
	for i, v := range fields {
		out[i] = EncodeValue(v, tab)
	}
	return out
}

// DecodeFields re-interns a field vector.
func DecodeFields(fields []FieldVal, tab *symbols.Table) []wm.Value {
	out := make([]wm.Value, len(fields))
	for i, f := range fields {
		out[i] = f.Value(tab)
	}
	return out
}

// Record is one decoded log record. Which fields are meaningful depends
// on Type (see the RecType constants).
type Record struct {
	Type   RecType
	Tag    int        // Make, Remove
	Fields []FieldVal // Make
	Rule   string     // Fire
	Tags   []int      // Fire: instantiation token tags in token order
	Src    string     // Program: one canonical (p ...) or (excise ...) form
}

// appendUvarint / appendString are the primitive encoders; records use
// unsigned varints throughout (time tags and lengths are non-negative).
func appendUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPayload encodes the record body (everything after the type
// byte) onto b.
func (r *Record) appendPayload(b []byte) []byte {
	switch r.Type {
	case RecMake:
		b = appendUvarint(b, uint64(r.Tag))
		b = appendFieldVec(b, r.Fields)
	case RecAccept:
		b = appendFieldVec(b, r.Fields)
	case RecRemove, RecAcceptTake:
		b = appendUvarint(b, uint64(r.Tag))
	case RecFire:
		b = appendString(b, r.Rule)
		b = appendUvarint(b, uint64(len(r.Tags)))
		for _, t := range r.Tags {
			b = appendUvarint(b, uint64(t))
		}
	case RecHalt:
		// no payload
	case RecProgram:
		b = appendString(b, r.Src)
	}
	return b
}

// appendFieldVec encodes a field vector: count, then kind-tagged values.
func appendFieldVec(b []byte, fields []FieldVal) []byte {
	b = appendUvarint(b, uint64(len(fields)))
	for _, f := range fields {
		b = append(b, byte(f.Kind))
		switch f.Kind {
		case wm.KindSym:
			b = appendString(b, f.Str)
		case wm.KindInt:
			var tmp [binary.MaxVarintLen64]byte
			n := binary.PutVarint(tmp[:], f.Num)
			b = append(b, tmp[:n]...)
		case wm.KindFloat:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f.F))
			b = append(b, tmp[:]...)
		}
	}
	return b
}

// payloadReader decodes record bodies with bounds checking.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wmlog: bad uvarint at payload offset %d", p.off)
	}
	p.off += n
	return x, nil
}

func (p *payloadReader) varint() (int64, error) {
	x, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wmlog: bad varint at payload offset %d", p.off)
	}
	p.off += n
	return x, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(p.b)-p.off) < n {
		return "", fmt.Errorf("wmlog: string of %d bytes overruns payload", n)
	}
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

func (p *payloadReader) bytes(n int) ([]byte, error) {
	if len(p.b)-p.off < n {
		return nil, fmt.Errorf("wmlog: %d bytes overrun payload", n)
	}
	s := p.b[p.off : p.off+n]
	p.off += n
	return s, nil
}

// fieldVec decodes a field vector written by appendFieldVec.
func (p *payloadReader) fieldVec() ([]FieldVal, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)) { // each field is at least one byte
		return nil, fmt.Errorf("wmlog: field count %d exceeds payload", n)
	}
	fields := make([]FieldVal, n)
	for i := range fields {
		kb, err := p.bytes(1)
		if err != nil {
			return nil, err
		}
		f := FieldVal{Kind: wm.Kind(kb[0])}
		switch f.Kind {
		case wm.KindNil:
		case wm.KindSym:
			if f.Str, err = p.str(); err != nil {
				return nil, err
			}
		case wm.KindInt:
			if f.Num, err = p.varint(); err != nil {
				return nil, err
			}
		case wm.KindFloat:
			fb, err := p.bytes(8)
			if err != nil {
				return nil, err
			}
			f.F = math.Float64frombits(binary.LittleEndian.Uint64(fb))
		default:
			return nil, fmt.Errorf("wmlog: unknown value kind %d", f.Kind)
		}
		fields[i] = f
	}
	return fields, nil
}

// decodeRecord rebuilds a record from a verified frame body.
func decodeRecord(typ RecType, payload []byte) (*Record, error) {
	r := &Record{Type: typ}
	p := &payloadReader{b: payload}
	var err error
	switch typ {
	case RecMake:
		var tag uint64
		if tag, err = p.uvarint(); err != nil {
			return nil, err
		}
		r.Tag = int(tag)
		if r.Fields, err = p.fieldVec(); err != nil {
			return nil, err
		}
	case RecAccept:
		if r.Fields, err = p.fieldVec(); err != nil {
			return nil, err
		}
	case RecRemove, RecAcceptTake:
		var tag uint64
		if tag, err = p.uvarint(); err != nil {
			return nil, err
		}
		r.Tag = int(tag)
	case RecFire:
		if r.Rule, err = p.str(); err != nil {
			return nil, err
		}
		var n uint64
		if n, err = p.uvarint(); err != nil {
			return nil, err
		}
		if n > uint64(len(payload)) {
			return nil, fmt.Errorf("wmlog: tag count %d exceeds payload", n)
		}
		r.Tags = make([]int, n)
		for i := range r.Tags {
			t, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			r.Tags[i] = int(t)
		}
	case RecHalt:
	case RecProgram:
		if r.Src, err = p.str(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wmlog: unknown record type %d", typ)
	}
	if p.off != len(payload) {
		return nil, fmt.Errorf("wmlog: %d trailing payload bytes in %s record", len(payload)-p.off, typ)
	}
	return r, nil
}
